(** Serialized soak-harness state: everything a resumed run needs to
    continue byte-identically from an epoch boundary.

    The format is a versioned, digest-protected text file
    ([apple-soak-ckpt/1]).  Two flavors exist, told apart by
    {!t.reconstruct}:

    + {b reconstructing} checkpoints (written at quiescent mid-window
      epochs under the oracle load source) carry the heal ledger, the
      Dynamic Handler's event counters and a canonical dump of the
      assignment plus a digest of the rule tables.  Restore re-runs the
      window's re-optimization, replays the ledger through the
      production heal path and then {e proves} the reconstruction by
      comparing the dumps.
    + {b boundary} checkpoints (written when the next epoch is a
      re-optimization, the only flavor under the polled load source)
      carry no controller state at all: the upcoming [run_epoch]
      rebuilds everything from the scenario, which is itself derived
      from the seed. *)

type open_fault =
  | Link of { u : int; v : int; since : int; sym : bool }
      (** a failed link; [sym] marks a symbolic [busiest] injection so a
          symbolic link-up can pair with it *)
  | Switch of { sw : int; since : int; sym : bool }

type t = {
  fingerprint : string;  (** config digest; restore refuses a mismatch *)
  epoch : int;  (** next epoch to execute *)
  window_start : int;  (** epoch of the window's re-optimization *)
  reconstruct : bool;  (** see above *)
  stream_bytes : int;
      (** bytes of the deterministic stream emitted so far; resume
          truncates the stream file here *)
  blind_until : int;  (** poller-blackout horizon (epoch) *)
  mem_baseline : int;  (** live-words baseline (0 = unset; perf only) *)
  mem_peak : int;  (** live-words peak so far (perf only) *)
  ledger : (int * int) list;  (** heal ledger, oldest first *)
  open_faults : open_fault list;
  counters : (string * int) list;
      (** Dynamic Handler event counters at checkpoint time *)
  totals : (string * float) list;  (** soak aggregate counters *)
  violations : string list;  (** invariant violations so far *)
  windows : string list;  (** completed window rows, serialized *)
  rates : (int * float) list;  (** class rates at [epoch - 1] *)
  tables_digest : string;  (** digest of the canonical TCAM dump *)
  assignment : string;  (** canonical assignment dump *)
}

val to_string : t -> string
(** Render, ending in a [digest] line protecting everything above it. *)

val of_string : string -> (t, string) result
(** Parse and verify the digest; errors name what was wrong. *)

val save : path:string -> t -> unit
(** Atomic write: a temporary file in the same directory, then rename. *)

val load : path:string -> (t, string) result
