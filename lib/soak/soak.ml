(* The soak harness: see soak.mli for the model.  Everything that ends
   up in the stream or the summary is a pure function of the config, so
   a resumed run reproduces both byte-for-byte; wall clock and GC data
   are quarantined in the perf report. *)

module Builders = Apple_topology.Builders
module Synth = Apple_traffic.Synth
module Matrix = Apple_traffic.Matrix
module Rng = Apple_prelude.Rng
module Instance = Apple_vnf.Instance
module Nf = Apple_vnf.Nf
module Tcam = Apple_dataplane.Tcam
module Rule = Apple_dataplane.Rule
module Failmask = Apple_dataplane.Failmask
module Counters = Apple_obs.Counters
module Poller = Apple_obs.Poller
module Types = Apple_core.Types
module Scenario = Apple_core.Scenario
module Controller = Apple_core.Controller
module Netstate = Apple_core.Netstate
module Subclass = Apple_core.Subclass
module Dynamic_handler = Apple_core.Dynamic_handler
module Resource_orchestrator = Apple_core.Resource_orchestrator
module Rule_generator = Apple_core.Rule_generator
module Optimization_engine = Apple_core.Optimization_engine
module Verify = Apple_verify.Verify
module Fault = Apple_chaos.Fault
module Tr = Apple_trace.Trace

let tr_step = Tr.span ~cat:"epoch" "soak.epoch"

type load_source = Oracle | Polled

type config = {
  topo : Builders.named;
  seed : int;
  epochs : int;
  reopt_every : int;
  checkpoint_every : int;
  cycle : int;
  total_rate : float;
  max_classes : int;
  heal_after : int;
  loss_band : float;
  window_band : float;
  mem_slack : float;
  engine : Controller.engine;
  jobs : int option;
  load_source : load_source;
  schedule : Fault.schedule;
  gate : bool;
}

let default_config topo =
  {
    topo;
    seed = 42;
    epochs = 2000;
    reopt_every = 96;
    checkpoint_every = 48;
    cycle = 672;
    total_rate = 3_000.0;
    max_classes = 40;
    heal_after = 2;
    loss_band = 0.15;
    window_band = 0.02;
    mem_slack = 1.5;
    engine = `Best;
    jobs = None;
    load_source = Oracle;
    schedule = Fault.empty;
    gate = true;
  }

let engine_name = function
  | `Best -> "best"
  | `Lp -> "lp"
  | `Per_class -> "per-class"
  | `Greedy -> "greedy"

let load_name = function Oracle -> "oracle" | Polled -> "polled"

let validate_config c =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if c.epochs <= 0 then err "epochs must be positive"
  else if c.reopt_every <= 0 then err "reopt_every must be positive"
  else if c.checkpoint_every <= 0 then err "checkpoint_every must be positive"
  else if c.cycle <= 0 then err "cycle must be positive"
  else if c.total_rate <= 0.0 then err "total_rate must be positive"
  else if c.max_classes <= 0 then err "max_classes must be positive"
  else if c.heal_after < 1 then err "heal_after must be at least 1"
  else if c.loss_band <= 0.0 then err "loss_band must be positive"
  else if c.window_band <= 0.0 then err "window_band must be positive"
  else if c.mem_slack < 1.0 then err "mem_slack must be at least 1"
  else
    match Fault.validate c.schedule with
    | Error m -> err "schedule: %s" m
    | Ok () ->
        let bad =
          List.find_opt
            (fun (e : Fault.event) ->
              (not (Float.is_integer e.Fault.at))
              ||
              match e.Fault.fault with
              | Fault.Poller_blackout d -> not (Float.is_integer d)
              | _ -> false)
            c.schedule
        in
        (match bad with
        | Some e ->
            err "schedule: event times and blackout durations are epochs \
                 and must be integral (at %g)" e.Fault.at
        | None -> Ok ())

let config_fingerprint c =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "topo=%s seed=%d epochs=%d reopt=%d cycle=%d total=%h classes=%d \
     heal=%d loss=%h wband=%h engine=%s load=%s gate=%b\n"
    c.topo.Builders.label c.seed c.epochs c.reopt_every c.cycle c.total_rate
    c.max_classes c.heal_after c.loss_band c.window_band
    (engine_name c.engine) (load_name c.load_source) c.gate;
  Buffer.add_string b (Fault.to_string c.schedule);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---- session state ------------------------------------------------ *)

type window_stat = {
  w_start : int;
  mutable w_epochs : int;
  mutable w_loss_sum : float;
  mutable w_ff_loss_sum : float;
  mutable w_ff_epochs : int;
  mutable w_max_loss : float;
  mutable w_stranded : float;
  mutable w_reverifies : int;
  w_instances : int;
  w_cores : int;
  w_tcam : int;
}

type totals = {
  mutable t_loss_sum : float;
  mutable t_ff_loss_sum : float;
  mutable t_ff_epochs : int;
  mutable t_max_loss : float;
  mutable t_stranded : float;
  mutable t_faults : int;
  mutable t_heals : int;
  mutable t_reverifies : int;
  mutable t_rejected : int;
  mutable t_dropped : int;
  mutable t_checkpoints : int;
  mutable t_deferred : int;
}

type session = {
  cfg : config;
  fp : string;
  scenario : Types.scenario;
  snapshots : Matrix.t array;
  ctrl : Controller.t;
  mutable epoch : int;  (* next epoch to execute *)
  mutable window_start : int;
  mutable blind_until : int;
  mutable faulted : bool;  (* a fault fired this epoch *)
  mutable pending : (int * Instance.t) list;  (* (due epoch, dead), FIFO *)
  mutable open_faults : Checkpoint.open_fault list;  (* newest first *)
  mutable cur : window_stat option;
  mutable windows : string list;  (* rendered rows, newest first *)
  mutable violations : string list;  (* newest first *)
  tot : totals;
  stream : Buffer.t;
  mutable stream_out : out_channel option;
  mutable poller : Poller.t option;
  mutable mem_baseline : int;
  mutable mem_peak : int;
  mutable wall : float;  (* seconds inside [run], this process *)
  mutable ran : int;  (* epochs executed by this process *)
  mutable ckpt_epochs : int list;  (* newest first, this process *)
  mutable last_ckpt : Checkpoint.t option;
  mutable deferred : bool;
  mutable state_dir : string option;
  mutable aborted : bool;  (* first-epoch rejection / infeasible *)
  mutable finished : bool;  (* final S line already emitted *)
}

let epoch sess = sess.epoch
let checkpoint_epochs sess = List.rev sess.ckpt_epochs

let no_pending sess = match sess.pending with [] -> true | _ -> false

let state sess =
  match Controller.netstate sess.ctrl with
  | Some st -> st
  | None -> invalid_arg "Soak: no installed epoch"

let oneline s =
  String.concat " | "
    (List.filter
       (fun l -> not (String.equal l ""))
       (String.split_on_char '\n' s))

let emit sess fmt =
  Printf.ksprintf
    (fun line ->
      Buffer.add_string sess.stream line;
      Buffer.add_char sess.stream '\n';
      match sess.stream_out with
      | Some oc ->
          output_string oc line;
          output_char oc '\n';
          flush oc
      | None -> ())
    fmt

let violation sess e fmt =
  Printf.ksprintf
    (fun msg ->
      let m = Printf.sprintf "epoch %d: %s" e (oneline msg) in
      sess.violations <- m :: sess.violations;
      emit sess "V %s" m)
    fmt

(* ---- canonical dumps (checkpoint proof + state fingerprint) ------- *)

let assignment_dump sess =
  match (Controller.assignment sess.ctrl, Controller.netstate sess.ctrl) with
  | Some asg, Some st ->
      let b = Buffer.create 4096 in
      List.iter
        (fun inst ->
          Printf.bprintf b "inst %d %s %d\n" (Instance.id inst)
            (Nf.name (Instance.kind inst))
            (Instance.host inst))
        (Resource_orchestrator.instances st.Netstate.orchestrator);
      List.iter
        (fun (sc : Subclass.subclass) ->
          Printf.bprintf b "sub %d %d %h" sc.Subclass.class_id
            sc.Subclass.sub_id sc.Subclass.weight;
          Array.iter (fun h -> Printf.bprintf b " %d" h) sc.Subclass.hops;
          Array.iter
            (fun io ->
              Printf.bprintf b " %s"
                (match io with
                | Some i -> string_of_int (Instance.id i)
                | None -> "-"))
            (Subclass.pinned asg sc);
          Buffer.add_char b '\n')
        asg.Subclass.subclasses;
      Array.iter
        (fun pins ->
          List.iter
            (fun (p : Netstate.pinned) ->
              Printf.bprintf b "pin %d %d %h %h" p.Netstate.p_class
                p.Netstate.p_sub p.Netstate.weight p.Netstate.baseline;
              Array.iter
                (fun i -> Printf.bprintf b " %d" (Instance.id i))
                p.Netstate.stage_instances;
              Buffer.add_char b '\n')
            pins)
        st.Netstate.per_class;
      List.iter
        (fun i -> Printf.bprintf b "extra %d\n" (Instance.id i))
        st.Netstate.extra_instances;
      let mask = st.Netstate.mask in
      List.iter
        (fun i -> Printf.bprintf b "mask-inst %d\n" i)
        (Failmask.failed_instances mask);
      List.iter
        (fun s -> Printf.bprintf b "mask-switch %d\n" s)
        (Failmask.failed_switches mask);
      List.iter
        (fun (u, v) -> Printf.bprintf b "mask-link %d %d\n" u v)
        (Failmask.failed_links mask);
      Buffer.contents b
  | _ -> ""

let tables_dump sess =
  match Controller.last_report sess.ctrl with
  | None -> ""
  | Some r ->
      let b = Buffer.create 4096 in
      Array.iter
        (fun table ->
          Printf.bprintf b "sw %d\n" (Tcam.switch table);
          List.iter
            (fun (uid, rule) ->
              Printf.bprintf b "p %d %s\n" uid
                (Format.asprintf "%a" Rule.pp_phys_rule rule))
            (Tcam.phys_entries table);
          List.iter
            (fun rule ->
              Printf.bprintf b "v %s\n"
                (Format.asprintf "%a" Rule.pp_vswitch_rule rule))
            (Tcam.vswitch_rules table))
        r.Controller.rules.Rule_generator.network;
      Buffer.contents b

let tables_digest sess = Digest.to_hex (Digest.string (tables_dump sess))

let rates_list sess =
  Array.to_list
    (Array.map
       (fun (c : Types.flow_class) -> (c.Types.id, c.Types.rate))
       sess.scenario.Types.classes)

let handler_events sess =
  match Controller.handler sess.ctrl with
  | Some h -> Dynamic_handler.events h
  | None -> []

let state_fingerprint sess =
  let b = Buffer.create 4096 in
  Buffer.add_string b (assignment_dump sess);
  Buffer.add_string b "--\n";
  Buffer.add_string b (tables_dump sess);
  Printf.bprintf b "--\nblind %d\n" sess.blind_until;
  List.iter (fun (k, v) -> Printf.bprintf b "%s %d\n" k v)
    (handler_events sess);
  List.iter (fun (id, r) -> Printf.bprintf b "rate %d %h\n" id r)
    (rates_list sess);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---- construction ------------------------------------------------- *)

let build_scenario cfg =
  let rng = Rng.create cfg.seed in
  let profile =
    {
      Synth.default_profile with
      Synth.snapshots = cfg.cycle;
      total_rate = cfg.total_rate;
    }
  in
  let snapshots = Synth.for_topology rng profile cfg.topo in
  let scenario =
    Scenario.build
      ~config:
        {
          Scenario.default_config with
          Scenario.max_classes = cfg.max_classes;
          min_path_hops = 2;
        }
      ~seed:cfg.seed cfg.topo (Matrix.mean_of snapshots)
  in
  (scenario, Array.of_list snapshots)

let make_session ?stream_path cfg =
  let scenario, snapshots = build_scenario cfg in
  let gate = if cfg.gate then Some Verify.gate else None in
  let ctrl =
    Controller.create ~engine:cfg.engine ?jobs:cfg.jobs ?gate scenario
  in
  if (match cfg.load_source with Polled -> true | Oracle -> false) then
    Counters.set_enabled true;
  let stream_out =
    match stream_path with Some p -> Some (open_out p) | None -> None
  in
  {
    cfg;
    fp = config_fingerprint cfg;
    scenario;
    snapshots;
    ctrl;
    epoch = 0;
    window_start = 0;
    blind_until = 0;
    faulted = false;
    pending = [];
    open_faults = [];
    cur = None;
    windows = [];
    violations = [];
    tot =
      {
        t_loss_sum = 0.0;
        t_ff_loss_sum = 0.0;
        t_ff_epochs = 0;
        t_max_loss = 0.0;
        t_stranded = 0.0;
        t_faults = 0;
        t_heals = 0;
        t_reverifies = 0;
        t_rejected = 0;
        t_dropped = 0;
        t_checkpoints = 0;
        t_deferred = 0;
      };
    stream = Buffer.create 65536;
    stream_out;
    poller = None;
    mem_baseline = 0;
    mem_peak = 0;
    wall = 0.0;
    ran = 0;
    ckpt_epochs = [];
    last_ckpt = None;
    deferred = false;
    state_dir = None;
    aborted = false;
    finished = false;
  }

let create ?stream_path cfg =
  match validate_config cfg with
  | Error _ as e -> e
  | Ok () -> Ok (make_session ?stream_path cfg)

(* ---- symbolic target resolution (mirrors the chaos engine) -------- *)

let norm (u, v) = if u <= v then (u, v) else (v, u)

let hottest_instance sess =
  let st = state sess in
  Netstate.recompute_loads st;
  List.fold_left
    (fun acc inst ->
      if Failmask.instance_down st.Netstate.mask (Instance.id inst) then acc
      else
        match acc with
        | None -> Some inst
        | Some best ->
            let c =
              Float.compare (Instance.offered inst) (Instance.offered best)
            in
            if c > 0 || (c = 0 && Instance.id inst < Instance.id best) then
              Some inst
            else acc)
    None
    (Netstate.instances_in_use st)

let rate_weighted sess fold =
  let weights = Hashtbl.create 32 in
  Array.iter
    (fun (c : Types.flow_class) ->
      if c.Types.rate > 0.0 then
        fold c (fun key ->
            Hashtbl.replace weights key
              (c.Types.rate
              +. Option.value ~default:0.0 (Hashtbl.find_opt weights key))))
    sess.scenario.Types.classes;
  (* lint: L3 — order erased: consumers sort by (rate, key) *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) weights []

let busiest_link sess =
  let mask = (state sess).Netstate.mask in
  rate_weighted sess (fun c add ->
      let p = c.Types.path in
      for i = 1 to Array.length p - 1 do
        add (norm (p.(i - 1), p.(i)))
      done)
  |> List.filter (fun ((u, v), _) -> not (Failmask.link_down mask u v))
  |> List.sort (fun ((a1, a2), va) ((b1, b2), vb) ->
         match Float.compare vb va with
         | 0 -> ( match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)
         | c -> c)
  |> function
  | (k, _) :: _ -> Some k
  | [] -> None

let busiest_switch sess =
  let mask = (state sess).Netstate.mask in
  rate_weighted sess (fun c add -> Array.iter add c.Types.path)
  |> List.filter (fun (sw, _) -> not (Failmask.switch_down mask sw))
  |> List.sort (fun (a, va) (b, vb) ->
         match Float.compare vb va with 0 -> Int.compare a b | c -> c)
  |> function
  | (k, _) :: _ -> Some k
  | [] -> None

let is_busiest = function Fault.Busiest -> true | _ -> false

(* Pop the newest symbolic open fault of the wanted kind. *)
let pop_sym sess ~link =
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | f :: rest -> (
        match f with
        | Checkpoint.Link { u; v; sym = true; _ } when link ->
            (Some (u, v), List.rev_append acc rest)
        | Checkpoint.Switch { sw; sym = true; _ } when not link ->
            (Some (sw, sw), List.rev_append acc rest)
        | _ -> go (f :: acc) rest)
  in
  let hit, rest = go [] sess.open_faults in
  (match hit with Some _ -> sess.open_faults <- rest | None -> ());
  hit

let remove_open_link sess u v =
  sess.open_faults <-
    List.filter
      (function
        | Checkpoint.Link { u = a; v = b; _ } -> not (a = u && b = v)
        | Checkpoint.Switch _ -> true)
      sess.open_faults

let remove_open_switch sess sw =
  sess.open_faults <-
    List.filter
      (function
        | Checkpoint.Switch { sw = s; _ } -> s <> sw
        | Checkpoint.Link _ -> true)
      sess.open_faults

let apply_open_faults sess =
  let mask = (state sess).Netstate.mask in
  List.iter
    (function
      | Checkpoint.Link { u; v; _ } -> Failmask.fail_link mask u v
      | Checkpoint.Switch { sw; _ } -> Failmask.fail_switch mask sw)
    sess.open_faults

(* ---- invariant helpers -------------------------------------------- *)

let recheck sess e what =
  sess.tot.t_reverifies <- sess.tot.t_reverifies + 1;
  (match sess.cur with
  | Some w -> w.w_reverifies <- w.w_reverifies + 1
  | None -> ());
  (* The placement's capacity contract is against the window-start rates
     it was solved (and gated) for; mid-window diurnal drift is the
     Dynamic Handler's to absorb, not a structural fault.  Pin the rates
     to the window's snapshot for the re-check, then restore them. *)
  let cfg = sess.cfg in
  Scenario.update_rates sess.scenario
    sess.snapshots.(sess.window_start mod cfg.cycle);
  let r = Controller.recheck_gate sess.ctrl in
  Scenario.update_rates sess.scenario sess.snapshots.(e mod cfg.cycle);
  Netstate.recompute_loads (state sess);
  match r with
  | Ok () -> ()
  | Error m -> violation sess e "%s gate recheck failed: %s" what (oneline m)

let weights_at_baseline sess =
  let st = state sess in
  Array.for_all
    (fun pins ->
      List.for_all
        (fun (p : Netstate.pinned) ->
          Float.abs (p.Netstate.weight -. p.Netstate.baseline) < 1e-9)
        pins)
    st.Netstate.per_class

(* ---- fault injection ---------------------------------------------- *)

let inject_one sess e (ev : Fault.event) =
  let cfg = sess.cfg in
  let fault () =
    sess.faulted <- true;
    sess.tot.t_faults <- sess.tot.t_faults + 1
  in
  match ev.Fault.fault with
  | Fault.Kill_instance target -> (
      let victim =
        match target with
        | Fault.Hottest -> hottest_instance sess
        | Fault.Id i ->
            List.find_opt
              (fun inst -> Instance.id inst = i)
              (Resource_orchestrator.instances
                 (state sess).Netstate.orchestrator)
        | Fault.Busiest | Fault.Pair _ -> None
      in
      match victim with
      | None -> emit sess "F %d kill-instance ignored" e
      | Some dead -> (
          fault ();
          let st = state sess in
          Failmask.fail_instance st.Netstate.mask (Instance.id dead);
          match Controller.handler sess.ctrl with
          | None -> ()
          | Some h ->
              let stranded = Dynamic_handler.repair h ~dead in
              sess.tot.t_stranded <- sess.tot.t_stranded +. stranded;
              (match sess.cur with
              | Some w -> w.w_stranded <- w.w_stranded +. stranded
              | None -> ());
              sess.pending <-
                sess.pending @ [ (e + cfg.heal_after, dead) ];
              emit sess "F %d kill-instance id=%d host=%d stranded=%.6f" e
                (Instance.id dead) (Instance.host dead) stranded))
  | Fault.Link_down target -> (
      let link =
        match target with
        | Fault.Pair (u, v) -> Some (norm (u, v))
        | Fault.Busiest -> busiest_link sess
        | Fault.Hottest | Fault.Id _ -> None
      in
      match link with
      | None -> emit sess "F %d link-down ignored" e
      | Some (u, v) ->
          fault ();
          Failmask.fail_link (state sess).Netstate.mask u v;
          sess.open_faults <-
            Checkpoint.Link { u; v; since = e; sym = is_busiest target }
            :: sess.open_faults;
          emit sess "F %d link-down %d-%d" e u v)
  | Fault.Link_up target -> (
      let link =
        match target with
        | Fault.Pair (u, v) ->
            let u, v = norm (u, v) in
            remove_open_link sess u v;
            Some (u, v)
        | Fault.Busiest -> (
            match pop_sym sess ~link:true with
            | Some (u, v) -> Some (u, v)
            | None -> None)
        | Fault.Hottest | Fault.Id _ -> None
      in
      match link with
      | None -> emit sess "F %d link-up ignored" e
      | Some (u, v) ->
          fault ();
          Failmask.restore_link (state sess).Netstate.mask u v;
          emit sess "F %d link-up %d-%d" e u v;
          recheck sess e "post-link-restore")
  | Fault.Switch_crash target -> (
      let sw =
        match target with
        | Fault.Id i -> Some i
        | Fault.Busiest -> busiest_switch sess
        | Fault.Hottest | Fault.Pair _ -> None
      in
      match sw with
      | None -> emit sess "F %d switch-crash ignored" e
      | Some sw ->
          fault ();
          Failmask.fail_switch (state sess).Netstate.mask sw;
          sess.open_faults <-
            Checkpoint.Switch { sw; since = e; sym = is_busiest target }
            :: sess.open_faults;
          emit sess "F %d switch-crash %d" e sw)
  | Fault.Switch_restart target -> (
      let sw =
        match target with
        | Fault.Id i ->
            remove_open_switch sess i;
            Some i
        | Fault.Busiest -> (
            match pop_sym sess ~link:false with
            | Some (sw, _) -> Some sw
            | None -> None)
        | Fault.Hottest | Fault.Pair _ -> None
      in
      match sw with
      | None -> emit sess "F %d switch-restart ignored" e
      | Some sw ->
          fault ();
          Failmask.restore_switch (state sess).Netstate.mask sw;
          emit sess "F %d switch-restart %d" e sw;
          recheck sess e "post-switch-restart")
  | Fault.Tcam_loss (target, p) -> (
      let sw =
        match target with
        | Fault.Id i -> Some i
        | Fault.Busiest -> busiest_switch sess
        | Fault.Hottest | Fault.Pair _ -> None
      in
      match (sw, Controller.last_report sess.ctrl) with
      | None, _ | _, None -> emit sess "F %d tcam-loss ignored" e
      | Some sw, Some report ->
          fault ();
          (* A fresh generator keyed on (seed, epoch, switch): stateless,
             so the draw is identical on a resumed run. *)
          let rng = Rng.create (cfg.seed + (e * 1021) + sw) in
          let table = report.Controller.rules.Rule_generator.network.(sw) in
          let doomed =
            List.filter_map
              (fun (uid, _) ->
                if Rng.float rng 1.0 < p then Some uid else None)
              (Tcam.phys_entries table)
          in
          let lost =
            Tcam.retain_phys table ~keep:(fun uid ->
                not (List.mem uid doomed))
          in
          emit sess "F %d tcam-loss sw=%d lost=%d" e sw lost;
          (* The controller notices within the epoch: full reinstall plus
             a gate re-check. *)
          ignore (Controller.reinstall_rules sess.ctrl);
          recheck sess e "post-tcam-reinstall")
  | Fault.Poller_blackout d ->
      fault ();
      sess.blind_until <- max sess.blind_until (e + int_of_float d);
      emit sess "F %d poller-blackout until=%d" e sess.blind_until

let inject sess e =
  List.iter
    (fun (ev : Fault.event) ->
      if int_of_float ev.Fault.at = e then inject_one sess e ev)
    sess.cfg.schedule

(* ---- heals -------------------------------------------------------- *)

let process_heals sess e =
  let due, rest = List.partition (fun (d, _) -> d <= e) sess.pending in
  sess.pending <- rest;
  List.iter
    (fun (_, dead) ->
      let st = state sess in
      let replacement =
        Resource_orchestrator.respawn st.Netstate.orchestrator dead
      in
      Controller.heal_instance sess.ctrl ~dead ~replacement;
      sess.tot.t_heals <- sess.tot.t_heals + 1;
      emit sess "H %d heal id=%d -> id=%d" e (Instance.id dead)
        (Instance.id replacement);
      recheck sess e "post-heal")
    due

(* ---- polled measurement plane ------------------------------------- *)

let credit_and_poll sess e =
  match sess.poller with
  | None -> ()
  | Some p ->
      let st = state sess in
      Netstate.recompute_loads st;
      let period = Poller.period p in
      List.iter
        (fun inst ->
          let bytes = Instance.offered inst *. 1e6 /. 8.0 *. period in
          Counters.inst_traffic ~id:(Instance.id inst)
            ~packets:(int_of_float (bytes /. 1500.0))
            ~bytes:(int_of_float bytes))
        (Netstate.instances_in_use st);
      Poller.poll p ~now:(float_of_int e *. period)

(* ---- windows ------------------------------------------------------ *)

let open_window sess e ~instances ~cores ~tcam =
  sess.cur <-
    Some
      {
        w_start = e;
        w_epochs = 0;
        w_loss_sum = 0.0;
        w_ff_loss_sum = 0.0;
        w_ff_epochs = 0;
        w_max_loss = 0.0;
        w_stranded = 0.0;
        w_reverifies = 0;
        w_instances = instances;
        w_cores = cores;
        w_tcam = tcam;
      }

let render_window (w : window_stat) =
  let mean =
    if w.w_epochs > 0 then w.w_loss_sum /. float_of_int w.w_epochs else 0.0
  in
  let ff =
    if w.w_ff_epochs > 0 then
      Printf.sprintf "%9.6f" (w.w_ff_loss_sum /. float_of_int w.w_ff_epochs)
    else Printf.sprintf "%9s" "-"
  in
  Printf.sprintf "%6d %6d %9.6f %s %9.6f %5d %5d %5d %9.6f %7d" w.w_start
    w.w_epochs mean ff w.w_max_loss w.w_instances w.w_cores w.w_tcam
    w.w_stranded w.w_reverifies

let flush_window sess =
  match sess.cur with
  | None -> ()
  | Some w ->
      (if w.w_ff_epochs > 0 then
         let ff = w.w_ff_loss_sum /. float_of_int w.w_ff_epochs in
         if ff > sess.cfg.window_band then
           violation sess sess.epoch
             "window %d fault-free mean loss %.6f above band %.6f" w.w_start
             ff sess.cfg.window_band);
      sess.windows <- render_window w :: sess.windows;
      sess.cur <- None

let sample_mem sess =
  Gc.full_major ();
  let live = (Gc.stat ()).Gc.live_words in
  if sess.mem_baseline = 0 then sess.mem_baseline <- live;
  if live > sess.mem_peak then sess.mem_peak <- live

let start_window sess e =
  let cfg = sess.cfg in
  sess.window_start <- e;
  Scenario.update_rates sess.scenario sess.snapshots.(e mod cfg.cycle);
  (match cfg.load_source with
  | Polled ->
      (* The measurement plane never straddles a re-optimization: fresh
         counters and a fresh poller per window. *)
      Counters.reset ();
      let p = Poller.create () in
      sess.poller <- Some p;
      Controller.set_load_source sess.ctrl (Dynamic_handler.Polled p)
  | Oracle -> ());
  match Controller.run_epoch sess.ctrl with
  | report ->
      apply_open_faults sess;
      open_window sess e ~instances:report.Controller.instances
        ~cores:report.Controller.cores ~tcam:report.Controller.tcam_entries;
      emit sess "W %d inst=%d cores=%d tcam=%d" e report.Controller.instances
        report.Controller.cores report.Controller.tcam_entries
  | exception Controller.Rejected msg ->
      if (match Controller.netstate sess.ctrl with None -> true | Some _ -> false)
      then begin
        violation sess e "initial re-optimization rejected: %s" msg;
        sess.aborted <- true
      end
      else begin
        sess.tot.t_rejected <- sess.tot.t_rejected + 1;
        violation sess e "re-optimization rejected: %s" msg;
        emit sess "X %d rejected" e;
        (* Keep serving the previous epoch for this window. *)
        let i, c, t =
          match Controller.last_report sess.ctrl with
          | Some r ->
              (r.Controller.instances, r.Controller.cores,
               r.Controller.tcam_entries)
          | None -> (0, 0, 0)
        in
        open_window sess e ~instances:i ~cores:c ~tcam:t
      end
  | exception Optimization_engine.Infeasible msg ->
      violation sess e "optimization infeasible: %s" msg;
      sess.aborted <- true

(* ---- checkpoints -------------------------------------------------- *)

let at_boundary sess = sess.epoch mod sess.cfg.reopt_every = 0

let checkpointable sess =
  (not sess.aborted)
  && sess.tot.t_rejected = 0
  && no_pending sess
  &&
  if at_boundary sess then true
  else
    match sess.cfg.load_source with
    | Polled -> false
    | Oracle -> (
        match Controller.handler sess.ctrl with
        | None -> false
        | Some h -> Dynamic_handler.quiescent h && weights_at_baseline sess)

let totals_list sess =
  let t = sess.tot in
  let base =
    [
      ("loss-sum", t.t_loss_sum);
      ("ff-loss-sum", t.t_ff_loss_sum);
      ("ff-epochs", float_of_int t.t_ff_epochs);
      ("max-loss", t.t_max_loss);
      ("stranded", t.t_stranded);
      ("faults", float_of_int t.t_faults);
      ("heals", float_of_int t.t_heals);
      ("reverifies", float_of_int t.t_reverifies);
      ("rejected", float_of_int t.t_rejected);
      ("dropped", float_of_int t.t_dropped);
      ("checkpoints", float_of_int t.t_checkpoints);
      ("deferred", float_of_int t.t_deferred);
    ]
  in
  match sess.cur with
  | None -> base
  | Some w ->
      base
      @ [
          ("cur-start", float_of_int w.w_start);
          ("cur-epochs", float_of_int w.w_epochs);
          ("cur-loss-sum", w.w_loss_sum);
          ("cur-ff-loss-sum", w.w_ff_loss_sum);
          ("cur-ff-epochs", float_of_int w.w_ff_epochs);
          ("cur-max-loss", w.w_max_loss);
          ("cur-stranded", w.w_stranded);
          ("cur-reverifies", float_of_int w.w_reverifies);
          ("cur-instances", float_of_int w.w_instances);
          ("cur-cores", float_of_int w.w_cores);
          ("cur-tcam", float_of_int w.w_tcam);
        ]

let checkpoint_now sess =
  if not (checkpointable sess) then
    Error
      "not checkpointable here (transient failover state, a rejected \
       re-optimization, or a polled mid-window epoch)"
  else begin
    let reconstruct = not (at_boundary sess) in
    let counters =
      if reconstruct then
        ( "orch-next-id",
          Resource_orchestrator.next_id
            (state sess).Netstate.orchestrator )
        :: handler_events sess
      else []
    in
    Ok
      {
        Checkpoint.fingerprint = sess.fp;
        epoch = sess.epoch;
        window_start = sess.window_start;
        reconstruct;
        stream_bytes = Buffer.length sess.stream;
        blind_until = sess.blind_until;
        mem_baseline = sess.mem_baseline;
        mem_peak = sess.mem_peak;
        ledger =
          (if reconstruct then Controller.heal_ledger sess.ctrl else []);
        open_faults = List.rev sess.open_faults;
        counters;
        totals = totals_list sess;
        violations = List.rev sess.violations;
        windows = List.rev sess.windows;
        rates = (if reconstruct then rates_list sess else []);
        tables_digest = (if reconstruct then tables_digest sess else "");
        assignment = (if reconstruct then assignment_dump sess else "");
      }
  end

let maybe_checkpoint sess =
  let cfg = sess.cfg in
  let due = sess.deferred || sess.epoch mod cfg.checkpoint_every = 0 in
  if due && sess.epoch > 0 then begin
    if checkpointable sess then (
      (* Count the checkpoint before serializing so the snapshot includes
         itself; a resumed run then reports the same tally. *)
      sess.tot.t_checkpoints <- sess.tot.t_checkpoints + 1;
      match checkpoint_now sess with
      | Ok ck ->
          sess.deferred <- false;
          sess.last_ckpt <- Some ck;
          sess.ckpt_epochs <- sess.epoch :: sess.ckpt_epochs;
          (match sess.state_dir with
          | Some dir ->
              Checkpoint.save ~path:(Filename.concat dir "checkpoint.apple") ck
          | None -> ())
      | Error _ -> ())
    else begin
      if not sess.deferred then sess.tot.t_deferred <- sess.tot.t_deferred + 1;
      sess.deferred <- true
    end
  end

(* ---- the epoch step ----------------------------------------------- *)

let end_window sess ~boundary =
  (* A re-optimization supersedes any heal still in flight: the new
     epoch re-provisions every instance from scratch. *)
  if boundary then begin
    List.iter
      (fun (_, dead) ->
        sess.tot.t_dropped <- sess.tot.t_dropped + 1;
        emit sess "D %d drop-heal id=%d" sess.epoch (Instance.id dead))
      sess.pending;
    sess.pending <- []
  end;
  (match handler_events sess with
  | [] -> ()
  | evs ->
      emit sess "C %d %s" sess.epoch
        (String.concat " "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) evs)));
  flush_window sess;
  sample_mem sess

let step sess =
  let cfg = sess.cfg in
  let e = sess.epoch in
  Tr.with_ ~cls:e tr_step @@ fun () ->
  if e mod cfg.reopt_every = 0 then start_window sess e
  else Scenario.update_rates sess.scenario sess.snapshots.(e mod cfg.cycle);
  if not sess.aborted then begin
    sess.faulted <- false;
    process_heals sess e;
    inject sess e;
    let blind = e < sess.blind_until in
    (match cfg.load_source with
    | Polled when not blind -> credit_and_poll sess e
    | _ -> ());
    let st = state sess in
    let loss =
      if blind then begin
        (* Control rounds are skipped while the poller is dark; the data
           plane still forwards with the last installed weights. *)
        Netstate.recompute_loads st;
        Netstate.network_loss st
      end
      else
        match Controller.handler sess.ctrl with
        | Some h ->
            Dynamic_handler.step h;
            Netstate.network_loss st
        | None ->
            Netstate.recompute_loads st;
            Netstate.network_loss st
    in
    if not (Netstate.weights_valid st) then
      violation sess e "invalid weight distribution";
    let fault_free =
      Failmask.is_clear st.Netstate.mask
      && no_pending sess && (not blind) && not sess.faulted
    in
    if fault_free && loss > cfg.loss_band then
      violation sess e "fault-free loss %.6f above band %.6f" loss
        cfg.loss_band;
    (match sess.cur with
    | Some w ->
        w.w_epochs <- w.w_epochs + 1;
        w.w_loss_sum <- w.w_loss_sum +. loss;
        if loss > w.w_max_loss then w.w_max_loss <- loss;
        if fault_free then begin
          w.w_ff_epochs <- w.w_ff_epochs + 1;
          w.w_ff_loss_sum <- w.w_ff_loss_sum +. loss
        end
    | None -> ());
    sess.tot.t_loss_sum <- sess.tot.t_loss_sum +. loss;
    if loss > sess.tot.t_max_loss then sess.tot.t_max_loss <- loss;
    if fault_free then begin
      sess.tot.t_ff_epochs <- sess.tot.t_ff_epochs + 1;
      sess.tot.t_ff_loss_sum <- sess.tot.t_ff_loss_sum +. loss
    end;
    emit sess "E %d loss=%.6f" e loss;
    sess.epoch <- e + 1;
    sess.ran <- sess.ran + 1;
    let boundary = at_boundary sess in
    if boundary || sess.epoch = cfg.epochs then end_window sess ~boundary;
    maybe_checkpoint sess
  end

(* ---- outcome ------------------------------------------------------ *)

type outcome = {
  completed : bool;
  epochs_run : int;
  violations : string list;
  mem_flat : bool;
  peak_live_words : int;
  epochs_per_sec : float;
  summary : string;
  perf : string;
  stream : string;
}

let mem_flat sess =
  sess.mem_baseline = 0
  || float_of_int sess.mem_peak
     <= sess.cfg.mem_slack *. float_of_int sess.mem_baseline

let summary_text sess ~completed =
  let cfg = sess.cfg in
  let t = sess.tot in
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "soak %s seed=%d epochs=%d/%d engine=%s load=%s reopt=%d cycle=%d \
     heal-after=%d events=%d\n"
    cfg.topo.Builders.label cfg.seed sess.epoch cfg.epochs
    (engine_name cfg.engine) (load_name cfg.load_source) cfg.reopt_every
    cfg.cycle cfg.heal_after
    (List.length cfg.schedule);
  Printf.bprintf b "status: %s\n"
    (if sess.aborted then "aborted"
     else if completed then "completed"
     else Printf.sprintf "halted at epoch %d" sess.epoch);
  Printf.bprintf b
    "window epochs mean-loss   ff-mean  max-loss  inst cores  tcam  \
     stranded reverify\n";
  List.iter (fun row -> Printf.bprintf b "%s\n" row) (List.rev sess.windows);
  let epochs_seen = sess.epoch in
  let mean =
    if epochs_seen > 0 then t.t_loss_sum /. float_of_int epochs_seen else 0.0
  in
  let ff_mean =
    if t.t_ff_epochs > 0 then t.t_ff_loss_sum /. float_of_int t.t_ff_epochs
    else 0.0
  in
  Printf.bprintf b
    "totals: mean-loss=%.6f ff-mean=%.6f max-loss=%.6f stranded=%.6f \
     faults=%d heals=%d reverifies=%d rejected=%d dropped-heals=%d \
     checkpoints=%d deferred=%d\n"
    mean ff_mean t.t_max_loss t.t_stranded t.t_faults t.t_heals t.t_reverifies
    t.t_rejected t.t_dropped t.t_checkpoints t.t_deferred;
  (match List.rev sess.violations with
  | [] -> Printf.bprintf b "violations: none\n"
  | vs ->
      Printf.bprintf b "violations: %d\n" (List.length vs);
      List.iter (fun v -> Printf.bprintf b "  %s\n" v) vs);
  Buffer.contents b

let perf_text sess =
  let eps =
    if sess.wall > 0.0 then float_of_int sess.ran /. sess.wall else 0.0
  in
  Printf.sprintf
    "epochs/sec %.1f (%d epoch(s) in %.2fs this process)\n\
     live words: baseline %d peak %d (%.2fx, %.2fx allowed) %s\n"
    eps sess.ran sess.wall sess.mem_baseline sess.mem_peak
    (if sess.mem_baseline > 0 then
       float_of_int sess.mem_peak /. float_of_int sess.mem_baseline
     else 1.0)
    sess.cfg.mem_slack
    (if mem_flat sess then "flat" else "GROWING")

let run ?halt_at ?state_dir sess =
  (match state_dir with
  | Some d ->
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      sess.state_dir <- Some d
  | None -> ());
  let t0 = Unix.gettimeofday () in (* lint: L5 — wall runtime for the summary's perf line only *)
  let stop =
    match halt_at with
    | Some h -> min (max h 0) sess.cfg.epochs
    | None -> sess.cfg.epochs
  in
  while sess.epoch < stop && not sess.aborted do
    step sess
  done;
  sess.wall <- sess.wall +. (Unix.gettimeofday () -. t0); (* lint: L5 — wall runtime for the summary's perf line only *)
  let completed = (not sess.aborted) && sess.epoch >= sess.cfg.epochs in
  if completed && not sess.finished then begin
    sess.finished <- true;
    emit sess "S epochs=%d violations=%d" sess.epoch
      (List.length sess.violations)
  end;
  {
    completed;
    epochs_run = sess.epoch;
    violations = List.rev sess.violations;
    mem_flat = mem_flat sess;
    peak_live_words = sess.mem_peak;
    epochs_per_sec =
      (if sess.wall > 0.0 then float_of_int sess.ran /. sess.wall else 0.0);
    summary = summary_text sess ~completed;
    perf = perf_text sess;
    stream = Buffer.contents sess.stream;
  }

(* BENCH_soak.json: the committed bench trajectory.  Everything under
   "trajectory" and "totals" is deterministic for a config; "perf" is
   machine-dependent and expected to drift when the snapshot is
   refreshed (schema documented in EXPERIMENTS.md). *)
let bench_json sess (o : outcome) =
  let cfg = sess.cfg in
  let t = sess.tot in
  let b = Buffer.create 4096 in
  let add fmt = Printf.bprintf b fmt in
  add "{\n";
  add "  \"schema\": \"apple-bench-soak/1\",\n";
  add "  \"topology\": \"%s\",\n" cfg.topo.Builders.label;
  add "  \"seed\": %d,\n" cfg.seed;
  add "  \"epochs\": %d,\n" cfg.epochs;
  add "  \"reopt_every\": %d,\n" cfg.reopt_every;
  add "  \"cycle\": %d,\n" cfg.cycle;
  add "  \"engine\": \"%s\",\n" (engine_name cfg.engine);
  add "  \"load_source\": \"%s\",\n" (load_name cfg.load_source);
  add "  \"events\": %d,\n" (List.length cfg.schedule);
  add "  \"fingerprint\": \"%s\",\n" sess.fp;
  add "  \"completed\": %b,\n" o.completed;
  add "  \"violations\": %d,\n" (List.length o.violations);
  let epochs_seen = sess.epoch in
  let mean =
    if epochs_seen > 0 then t.t_loss_sum /. float_of_int epochs_seen else 0.0
  in
  let ff_mean =
    if t.t_ff_epochs > 0 then t.t_ff_loss_sum /. float_of_int t.t_ff_epochs
    else 0.0
  in
  add "  \"totals\": {";
  add "\"mean_loss\": %.6f, " mean;
  add "\"ff_mean_loss\": %.6f, " ff_mean;
  add "\"max_loss\": %.6f, " t.t_max_loss;
  add "\"stranded_mbps\": %.6f, " t.t_stranded;
  add "\"faults\": %d, " t.t_faults;
  add "\"heals\": %d, " t.t_heals;
  add "\"reverifies\": %d, " t.t_reverifies;
  add "\"rejected\": %d, " t.t_rejected;
  add "\"dropped_heals\": %d, " t.t_dropped;
  add "\"checkpoints\": %d, " t.t_checkpoints;
  add "\"deferred\": %d},\n" t.t_deferred;
  add "  \"trajectory\": [\n";
  let rows = List.rev sess.windows in
  List.iteri
    (fun i row ->
      Scanf.sscanf row " %d %d %f %s %f %d %d %d %f %d"
        (fun w epochs mean ff maxl inst cores tcam stranded reverify ->
          add
            "    {\"window\": %d, \"epochs\": %d, \"mean_loss\": %.6f, \
             \"ff_mean_loss\": %s, \"max_loss\": %.6f, \"instances\": %d, \
             \"cores\": %d, \"tcam\": %d, \"stranded_mbps\": %.6f, \
             \"reverifies\": %d}%s\n"
            w epochs mean
            (if String.equal ff "-" then "null" else ff)
            maxl inst cores tcam stranded reverify
            (if i = List.length rows - 1 then "" else ",")))
    rows;
  add "  ],\n";
  add "  \"perf\": {";
  add "\"epochs_per_sec\": %.1f, " o.epochs_per_sec;
  add "\"peak_live_words\": %d, " o.peak_live_words;
  add "\"mem_flat\": %b}\n" o.mem_flat;
  add "}\n";
  Buffer.contents b

(* ---- restore ------------------------------------------------------ *)

let total sess key =
  match
    List.find_opt (fun (k, _) -> String.equal k key) sess
  with
  | Some (_, v) -> v
  | None -> 0.0

let restore_totals sess (ck : Checkpoint.t) =
  let l = ck.Checkpoint.totals in
  let f k = total l k in
  let i k = int_of_float (f k) in
  let t = sess.tot in
  t.t_loss_sum <- f "loss-sum";
  t.t_ff_loss_sum <- f "ff-loss-sum";
  t.t_ff_epochs <- i "ff-epochs";
  t.t_max_loss <- f "max-loss";
  t.t_stranded <- f "stranded";
  t.t_faults <- i "faults";
  t.t_heals <- i "heals";
  t.t_reverifies <- i "reverifies";
  t.t_rejected <- i "rejected";
  t.t_dropped <- i "dropped";
  t.t_checkpoints <- i "checkpoints";
  t.t_deferred <- i "deferred";
  if List.exists (fun (k, _) -> String.equal k "cur-start") l then
    sess.cur <-
      Some
        {
          w_start = i "cur-start";
          w_epochs = i "cur-epochs";
          w_loss_sum = f "cur-loss-sum";
          w_ff_loss_sum = f "cur-ff-loss-sum";
          w_ff_epochs = i "cur-ff-epochs";
          w_max_loss = f "cur-max-loss";
          w_stranded = f "cur-stranded";
          w_reverifies = i "cur-reverifies";
          w_instances = i "cur-instances";
          w_cores = i "cur-cores";
          w_tcam = i "cur-tcam";
        }

let reconstruct_controller sess (ck : Checkpoint.t) =
  let cfg = sess.cfg in
  let err fmt = Printf.ksprintf (fun m -> Error ("checkpoint: " ^ m)) fmt in
  Scenario.update_rates sess.scenario
    sess.snapshots.(ck.Checkpoint.window_start mod cfg.cycle);
  match Controller.run_epoch sess.ctrl with
  | exception Controller.Rejected m ->
      err "window re-optimization rejected on restore: %s" (oneline m)
  | exception Optimization_engine.Infeasible m ->
      err "window re-optimization infeasible on restore: %s" (oneline m)
  | _report -> (
      apply_open_faults sess;
      match Controller.replay_heals sess.ctrl ck.Checkpoint.ledger with
      | exception Invalid_argument m -> err "%s" m
      | () ->
          let st = state sess in
          let next_id =
            int_of_float
              (total
                 (List.map (fun (k, v) -> (k, float_of_int v))
                    ck.Checkpoint.counters)
                 "orch-next-id")
          in
          if next_id > 0 then
            Resource_orchestrator.set_next_id st.Netstate.orchestrator next_id;
          (match Controller.handler sess.ctrl with
          | Some h ->
              Dynamic_handler.restore_counters h
                (List.filter
                   (fun (k, _) -> not (String.equal k "orch-next-id"))
                   ck.Checkpoint.counters)
          | None -> ());
          Scenario.update_rates sess.scenario
            sess.snapshots.((ck.Checkpoint.epoch - 1) mod cfg.cycle);
          Netstate.recompute_loads st;
          (* Prove the reconstruction before trusting it. *)
          if not (String.equal (assignment_dump sess) ck.Checkpoint.assignment)
          then err "reconstructed assignment differs from the recorded dump"
          else if
            not (String.equal (tables_digest sess) ck.Checkpoint.tables_digest)
          then err "reconstructed rule tables differ from the recorded digest"
          else
            let live = rates_list sess in
            let same =
              List.length live = List.length ck.Checkpoint.rates
              && List.for_all2
                   (fun (i1, r1) (i2, r2) -> i1 = i2 && Float.equal r1 r2)
                   live ck.Checkpoint.rates
            in
            if not same then
              err "reconstructed class rates differ from the recorded ones"
            else Ok ())

let restore ?stream_path ?stream_prefix cfg (ck : Checkpoint.t) =
  let err fmt = Printf.ksprintf (fun m -> Error ("checkpoint: " ^ m)) fmt in
  match validate_config cfg with
  | Error _ as e -> e
  | Ok () ->
      let fp = config_fingerprint cfg in
      if not (String.equal fp ck.Checkpoint.fingerprint) then
        err "config fingerprint mismatch (the run used different parameters)"
      else if ck.Checkpoint.epoch < 0 || ck.Checkpoint.epoch > cfg.epochs then
        err "epoch %d out of range" ck.Checkpoint.epoch
      else if
        (not ck.Checkpoint.reconstruct)
        && ck.Checkpoint.epoch mod cfg.reopt_every <> 0
      then err "boundary checkpoint at a non-boundary epoch"
      else if
        ck.Checkpoint.reconstruct
        && (match cfg.load_source with Polled -> true | Oracle -> false)
      then err "reconstructing checkpoint under the polled load source"
      else
        let prefix =
          match stream_prefix with
          | Some s ->
              if String.length s < ck.Checkpoint.stream_bytes then
                Error
                  "checkpoint: stream prefix shorter than the checkpoint \
                   records"
              else Ok (String.sub s 0 ck.Checkpoint.stream_bytes)
          | None ->
              if ck.Checkpoint.stream_bytes = 0 then Ok ""
              else
                Error
                  "checkpoint: the interrupted run's stream prefix is \
                   required to resume"
        in
        (match prefix with
        | Error _ as e -> e
        | Ok prefix ->
            let sess = make_session ?stream_path cfg in
            sess.epoch <- ck.Checkpoint.epoch;
            sess.window_start <- ck.Checkpoint.window_start;
            sess.blind_until <- ck.Checkpoint.blind_until;
            sess.open_faults <- List.rev ck.Checkpoint.open_faults;
            sess.windows <- List.rev ck.Checkpoint.windows;
            sess.violations <- List.rev ck.Checkpoint.violations;
            sess.mem_baseline <- ck.Checkpoint.mem_baseline;
            sess.mem_peak <- ck.Checkpoint.mem_peak;
            restore_totals sess ck;
            Buffer.add_string sess.stream prefix;
            (match sess.stream_out with
            | Some oc ->
                output_string oc prefix;
                flush oc
            | None -> ());
            if ck.Checkpoint.reconstruct then (
              match reconstruct_controller sess ck with
              | Error _ as e ->
                  (match sess.stream_out with
                  | Some oc -> close_out oc
                  | None -> ());
                  e
              | Ok () -> Ok sess)
            else
              (* Boundary flavor: the next step's re-optimization rebuilds
                 everything from the (seed-derived) scenario. *)
              Ok sess)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let resume_dir ?stream_path cfg ~dir =
  match Checkpoint.load ~path:(Filename.concat dir "checkpoint.apple") with
  | Error _ as e -> e
  | Ok ck ->
      let sp =
        match stream_path with
        | Some p -> p
        | None -> Filename.concat dir "stream.log"
      in
      let prefix = if Sys.file_exists sp then Some (read_file sp) else None in
      restore ~stream_path:sp ?stream_prefix:prefix cfg ck
