(* Versioned, digest-protected text serialization of the soak state.
   Floats travel as hex literals (%h) so parse/print round-trips exactly;
   embedded multi-line blocks are length-prefixed so arbitrary content
   (assignment dumps, violation messages) survives. *)

let version = "apple-soak-ckpt/1"

type open_fault =
  | Link of { u : int; v : int; since : int; sym : bool }
  | Switch of { sw : int; since : int; sym : bool }

type t = {
  fingerprint : string;
  epoch : int;
  window_start : int;
  reconstruct : bool;
  stream_bytes : int;
  blind_until : int;
  mem_baseline : int;
  mem_peak : int;
  ledger : (int * int) list;
  open_faults : open_fault list;
  counters : (string * int) list;
  totals : (string * float) list;
  violations : string list;
  windows : string list;
  rates : (int * float) list;
  tables_digest : string;
  assignment : string;
}

let to_string t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" version;
  line "fingerprint %s" t.fingerprint;
  line "epoch %d" t.epoch;
  line "window-start %d" t.window_start;
  line "reconstruct %d" (if t.reconstruct then 1 else 0);
  line "stream-bytes %d" t.stream_bytes;
  line "blind-until %d" t.blind_until;
  line "mem-baseline %d" t.mem_baseline;
  line "mem-peak %d" t.mem_peak;
  line "ledger %d" (List.length t.ledger);
  List.iter (fun (d, r) -> line "%d %d" d r) t.ledger;
  line "open-faults %d" (List.length t.open_faults);
  List.iter
    (function
      | Link { u; v; since; sym } ->
          line "link %d %d %d %d" u v since (if sym then 1 else 0)
      | Switch { sw; since; sym } ->
          line "switch %d %d %d" sw since (if sym then 1 else 0))
    t.open_faults;
  line "counters %d" (List.length t.counters);
  List.iter (fun (k, v) -> line "%s %d" k v) t.counters;
  line "totals %d" (List.length t.totals);
  List.iter (fun (k, v) -> line "%s %h" k v) t.totals;
  line "violations %d" (List.length t.violations);
  List.iter (fun v -> line "%s" v) t.violations;
  line "windows %d" (List.length t.windows);
  List.iter (fun w -> line "%s" w) t.windows;
  line "rates %d" (List.length t.rates);
  List.iter (fun (id, r) -> line "%d %h" id r) t.rates;
  line "tables-digest %s" t.tables_digest;
  let asg_lines =
    if String.equal t.assignment "" then []
    else String.split_on_char '\n' t.assignment
  in
  line "assignment %d" (List.length asg_lines);
  List.iter (fun l -> line "%s" l) asg_lines;
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "digest %s\n" (Digest.to_hex (Digest.string body))

exception Bad of string

let of_string s =
  let lines = Array.of_list (String.split_on_char '\n' s) in
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length lines then raise (Bad "truncated checkpoint")
    else begin
      let l = lines.(!pos) in
      incr pos;
      l
    end
  in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let keyed key l =
    let p = key ^ " " in
    let n = String.length p in
    if String.length l >= n && String.equal (String.sub l 0 n) p then
      String.sub l n (String.length l - n)
    else fail "expected %S line, got %S" key l
  in
  let int_of l = try int_of_string l with Failure _ -> fail "bad integer %S" l in
  let keyed_int key = int_of (keyed key (next ())) in
  let block key parse =
    let n = keyed_int key in
    if n < 0 then fail "negative %s count" key;
    List.init n (fun _ -> parse (next ()))
  in
  let two_ints l =
    match String.split_on_char ' ' l with
    | [ a; b ] -> (int_of a, int_of b)
    | _ -> fail "expected two integers, got %S" l
  in
  let last_word l =
    (* counters / totals keys never contain spaces; split on the last. *)
    match String.rindex_opt l ' ' with
    | Some i ->
        (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
    | None -> fail "expected \"key value\", got %S" l
  in
  let float_of l = try float_of_string l with Failure _ -> fail "bad float %S" l in
  try
    (* Verify the digest first: everything before the final digest line. *)
    (match String.rindex_opt (String.trim s) '\n' with
    | None -> fail "truncated checkpoint"
    | Some i ->
        let body = String.sub s 0 (i + 1) in
        let dline = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
        let expect = keyed "digest" dline in
        let got = Digest.to_hex (Digest.string body) in
        if not (String.equal expect got) then
          fail "digest mismatch (file corrupt): recorded %s, computed %s"
            expect got);
    let v = next () in
    if not (String.equal v version) then
      fail "unsupported checkpoint version %S (want %s)" v version;
    let fingerprint = keyed "fingerprint" (next ()) in
    let epoch = keyed_int "epoch" in
    let window_start = keyed_int "window-start" in
    let reconstruct = keyed_int "reconstruct" <> 0 in
    let stream_bytes = keyed_int "stream-bytes" in
    let blind_until = keyed_int "blind-until" in
    let mem_baseline = keyed_int "mem-baseline" in
    let mem_peak = keyed_int "mem-peak" in
    let ledger = block "ledger" two_ints in
    let open_faults =
      block "open-faults" (fun l ->
          match String.split_on_char ' ' l with
          | [ "link"; u; v; since; sym ] ->
              Link
                {
                  u = int_of u;
                  v = int_of v;
                  since = int_of since;
                  sym = int_of sym <> 0;
                }
          | [ "switch"; sw; since; sym ] ->
              Switch
                { sw = int_of sw; since = int_of since; sym = int_of sym <> 0 }
          | _ -> fail "bad open-fault line %S" l)
    in
    let counters =
      block "counters" (fun l ->
          let k, v = last_word l in
          (k, int_of v))
    in
    let totals =
      block "totals" (fun l ->
          let k, v = last_word l in
          (k, float_of v))
    in
    let violations = block "violations" (fun l -> l) in
    let windows = block "windows" (fun l -> l) in
    let rates =
      block "rates" (fun l ->
          let k, v = last_word l in
          (int_of k, float_of v))
    in
    let tables_digest = keyed "tables-digest" (next ()) in
    let assignment = String.concat "\n" (block "assignment" (fun l -> l)) in
    Ok
      {
        fingerprint;
        epoch;
        window_start;
        reconstruct;
        stream_bytes;
        blind_until;
        mem_baseline;
        mem_peak;
        ledger;
        open_faults;
        counters;
        totals;
        violations;
        windows;
        rates;
        tables_digest;
        assignment;
      }
  with Bad m -> Error ("checkpoint: " ^ m)

let save ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t));
  Sys.rename tmp path

let load ~path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "checkpoint: no file at %s" path)
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_string s
  end
