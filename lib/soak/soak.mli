(** The soak harness: thousands-of-epochs endurance runs of the full
    controller pipeline, with checkpoint/restore and invariant gates.

    One {e epoch} is one traffic snapshot of the diurnal generator (the
    paper's 672-snapshot, 96-per-day sequence, cycled).  Every
    [reopt_every] epochs the controller re-optimizes globally
    ({!Apple_core.Controller.run_epoch}, gated by the static verifier);
    in between, each epoch refreshes class rates, injects any scheduled
    faults, runs one Dynamic-Handler round and samples network loss.

    Everything observable is deterministic for a given config: the
    {e stream} (one line per epoch / fault / re-optimization) and the
    final {e summary} contain no wall-clock or GC data, so an
    interrupted run resumed from its last checkpoint reproduces them
    byte-for-byte.  Wall-clock throughput and memory flatness go to a
    separate perf report and to [BENCH_soak.json].

    Fault schedules reuse {!Apple_chaos.Fault}, with [at] valued in
    {e epochs} (integral); [poller-blackout]'s duration is likewise a
    number of epochs.  Kill faults heal after [heal_after] epochs via
    the orchestrator respawn + {!Apple_core.Controller.heal_instance}
    path; TCAM loss reinstalls and re-verifies within its epoch;
    link/switch faults stay open (and survive re-optimizations) until
    their paired up/restart event.

    {b Invariants} checked while running, collected into
    {!outcome.violations}:
    + the verifier gate passes every re-optimization and every healed
      epoch (post-heal and post-TCAM-reinstall rechecks);
    + {!Apple_core.Netstate.weights_valid} holds every epoch;
    + fault-free epochs lose at most [loss_band] of offered traffic;
    + per window, the fault-free mean loss stays under [window_band];
    + (perf, reported separately) live words at window boundaries stay
      under [mem_slack] x the first boundary's sample. *)

type load_source = Oracle | Polled

type config = {
  topo : Apple_topology.Builders.named;
  seed : int;
  epochs : int;  (** total epochs to run *)
  reopt_every : int;  (** re-optimization period (epochs) *)
  checkpoint_every : int;  (** checkpoint cadence (epochs) *)
  cycle : int;  (** traffic snapshots before the sequence repeats *)
  total_rate : float;  (** network-wide offered load (Mbps, diurnal mean) *)
  max_classes : int;
  heal_after : int;  (** epochs between a kill and its respawn heal *)
  loss_band : float;  (** per-epoch fault-free loss bound *)
  window_band : float;  (** per-window fault-free mean loss bound *)
  mem_slack : float;  (** live-words growth factor tolerated (perf) *)
  engine : Apple_core.Controller.engine;
  jobs : int option;
  load_source : load_source;
  schedule : Apple_chaos.Fault.schedule;  (** [at] in epochs *)
  gate : bool;  (** verify every configuration before install *)
}

val default_config : Apple_topology.Builders.named -> config
(** 2000 epochs, re-opt every 96 (one diurnal day), checkpoint every 48,
    672-snapshot cycle, oracle load source, gate on. *)

val validate_config : config -> (unit, string) result

val config_fingerprint : config -> string
(** Digest of every determinism-relevant config field; stored in
    checkpoints so a resume with a different config is refused. *)

type session

type outcome = {
  completed : bool;  (** false when halted early ([halt_at]) *)
  epochs_run : int;  (** absolute epoch reached *)
  violations : string list;  (** deterministic invariant violations *)
  mem_flat : bool;  (** live-words bound held (perf verdict) *)
  peak_live_words : int;
  epochs_per_sec : float;  (** this process's epochs / wall seconds *)
  summary : string;  (** deterministic; byte-comparable across resumes *)
  perf : string;  (** wall clock + GC report; not byte-comparable *)
  stream : string;  (** full deterministic stream, from epoch 0 *)
}

val create : ?stream_path:string -> config -> (session, string) result
(** Fresh run.  [stream_path] additionally streams every line to a file
    (truncated), so a killed process leaves a resumable prefix. *)

val restore :
  ?stream_path:string ->
  ?stream_prefix:string ->
  config ->
  Checkpoint.t ->
  (session, string) result
(** Resume from a checkpoint.  The config must fingerprint-match.
    [stream_prefix] is the interrupted run's stream content; it is
    truncated to the checkpoint's [stream_bytes] (refused if shorter)
    and re-written to [stream_path].  Reconstructing checkpoints replay
    the window's re-optimization and heal ledger, then prove the rebuilt
    assignment and rule tables match the checkpointed dumps. *)

val resume_dir :
  ?stream_path:string -> config -> dir:string -> (session, string) result
(** {!restore} from [dir]/checkpoint.apple, reading the stream prefix
    from [stream_path] (or [dir]/stream.log) when present. *)

val run : ?halt_at:int -> ?state_dir:string -> session -> outcome
(** Execute epochs until [config.epochs] (or [halt_at]).  With
    [state_dir], write [checkpoint.apple] there at every checkpointable
    epoch on the cadence (deferred to the next quiescent epoch when
    transient failover state is open).  Raises nothing: even a
    first-epoch gate rejection is reported as a violation with
    [completed = false]. *)

val bench_json : session -> outcome -> string
(** Render the [BENCH_soak.json] trajectory snapshot for a finished
    [run]: schema [apple-bench-soak/1], per-window trajectory and
    deterministic totals, plus a machine-dependent ["perf"] object
    (documented in EXPERIMENTS.md). *)

(** {2 Introspection (tests)} *)

val epoch : session -> int
val checkpoint_epochs : session -> int list
(** Epochs at which a checkpoint was taken, oldest first. *)

val checkpointable : session -> bool
(** The current epoch boundary admits a checkpoint (see module doc). *)

val checkpoint_now : session -> (Checkpoint.t, string) result
(** Serialize the current state; [Error] when not {!checkpointable}. *)

val state_fingerprint : session -> string
(** Digest of the live controller state (assignment dump, rule-table
    digest, handler counters, failure mask) — equal across a
    checkpoint/restore round-trip. *)
