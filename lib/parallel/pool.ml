(* Work-sharing domain pool.

   One job at a time: the submitter publishes a [job] (chunked index
   range + slot writer), workers and the submitter race on an atomic
   cursor for chunks, and the submitter waits until every chunk has
   drained.  Determinism comes from writing result [i] into slot [i]:
   scheduling decides only who computes a chunk, never what is computed
   or where it lands. *)

module T = Apple_telemetry.Telemetry
module Trace = Apple_trace.Trace

(* Telemetry is observation-only: chunk claiming still goes through the
   single atomic cursor and results land in their slots, so enabling
   metrics cannot perturb the determinism contract. *)
let m_jobs = T.Counter.create "apple.pool.jobs"
let m_items = T.Counter.create "apple.pool.items"
let m_chunks_by_worker = T.Counter.create "apple.pool.chunks_by_worker"
let m_chunks_by_submitter = T.Counter.create "apple.pool.chunks_by_submitter"
let m_seq_fallbacks = T.Counter.create "apple.pool.sequential_fallbacks"
let m_pool_size = T.Gauge.create "apple.pool.size"
let m_utilization = T.Gauge.create "apple.pool.utilization"
let m_job_seconds = T.Histogram.create "apple.pool.job_seconds"

type job = {
  n : int;
  chunk : int;
  total_chunks : int;
  cursor : int Atomic.t;  (* next chunk index to claim *)
  worker_chunks : int Atomic.t;  (* chunks drained by pool workers *)
  mutable outstanding : int;  (* chunks not yet drained; under [mutex] *)
  mutable failed : (int * exn) option;  (* lowest failing chunk start *)
  abort : bool Atomic.t;  (* skip remaining work after a failure *)
  run_chunk : int -> int -> unit;  (* [lo, hi) *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  cond : Condition.t;  (* new job posted / job drained / shutdown *)
  mutable current : job option;
  mutable generation : int;  (* bumped per posted job *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "APPLE_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> min j 128
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.jobs

(* Claim and drain chunks of [job] until the cursor runs dry.  Safe to
   call from any domain; every claimed chunk is accounted exactly once. *)
let drain ?(as_worker = false) t job =
  let continue = ref true in
  while !continue do
    let c = Atomic.fetch_and_add job.cursor 1 in
    if c >= job.total_chunks then continue := false
    else begin
      if T.enabled () then
        if as_worker then begin
          ignore (Atomic.fetch_and_add job.worker_chunks 1);
          T.Counter.incr m_chunks_by_worker
        end
        else T.Counter.incr m_chunks_by_submitter;
      let lo = c * job.chunk in
      let hi = min job.n (lo + job.chunk) in
      (try if not (Atomic.get job.abort) then job.run_chunk lo hi
       with e ->
         Atomic.set job.abort true;
         Mutex.lock t.mutex;
         (match job.failed with
         | Some (lo0, _) when lo0 <= lo -> ()
         | Some _ | None -> job.failed <- Some (lo, e));
         Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      job.outstanding <- job.outstanding - 1;
      if job.outstanding = 0 then Condition.broadcast t.cond;
      Mutex.unlock t.mutex
    end
  done

let worker t =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while
      (not t.stop) && (t.generation = !last_gen || t.current = None)
    do
      Condition.wait t.cond t.mutex
    done;
    if t.stop then begin
      running := false;
      Mutex.unlock t.mutex
    end
    else begin
      let job = Option.get t.current in
      last_gen := t.generation;
      Mutex.unlock t.mutex;
      drain ~as_worker:true t job
    end
  done

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      cond = Condition.create ();
      current = None;
      generation = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let ds = t.domains in
  t.stop <- true;
  t.domains <- [];
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join ds

(* Sequential fallback: plain left-to-right loop, so the first failing
   index raises first (matches the documented exception order). *)
let seq_map_range ~n ~f =
  if n = 0 then [||]
  else begin
    let r = Array.make n (f 0) in
    for i = 1 to n - 1 do
      r.(i) <- f i
    done;
    r
  end

let map_range t ~n ~f =
  if n = 0 then [||]
  else
  (* Tracing: capture the submitter's span context once per map; every
     item then runs as a [pool.item] child span wherever it is
     scheduled.  The capture happens on every path (parallel and the
     sequential fallbacks) so trace-id allocation is --jobs-invariant. *)
  let f = Trace.wrap_items f in
  if t.jobs <= 1 || n = 1 || t.stop then begin
    T.Counter.incr m_seq_fallbacks;
    seq_map_range ~n ~f
  end
  else begin
    let results = Array.make n None in
    (* Small chunks keep workers busy when item costs are skewed; the
       4x-jobs factor bounds the imbalance to ~1/4 of one worker's
       share while keeping cursor traffic negligible. *)
    let chunk = max 1 (n / (t.jobs * 4)) in
    let total_chunks = (n + chunk - 1) / chunk in
    let job =
      {
        n;
        chunk;
        total_chunks;
        cursor = Atomic.make 0;
        worker_chunks = Atomic.make 0;
        outstanding = total_chunks;
        failed = None;
        abort = Atomic.make false;
        run_chunk =
          (fun lo hi ->
            for i = lo to hi - 1 do
              results.(i) <- Some (f i)
            done);
      }
    in
    Mutex.lock t.mutex;
    if t.current <> None || t.stop then begin
      (* Nested/concurrent submission or racing shutdown: degrade. *)
      Mutex.unlock t.mutex;
      T.Counter.incr m_seq_fallbacks;
      seq_map_range ~n ~f
    end
    else begin
      (* lint: L5 — telemetry span timing; never feeds results *)
      let t0 = if T.enabled () then Unix.gettimeofday () else 0.0 in
      t.current <- Some job;
      t.generation <- t.generation + 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      drain t job;
      Mutex.lock t.mutex;
      while job.outstanding > 0 do
        Condition.wait t.cond t.mutex
      done;
      t.current <- None;
      Mutex.unlock t.mutex;
      if T.enabled () then begin
        T.Counter.incr m_jobs;
        T.Counter.add m_items n;
        T.Gauge.set m_pool_size (float_of_int t.jobs);
        T.Gauge.set m_utilization
          (float_of_int (Atomic.get job.worker_chunks)
          /. float_of_int job.total_chunks);
        (* lint: L5 — telemetry span timing; never feeds results *)
        T.Histogram.observe m_job_seconds (Unix.gettimeofday () -. t0)
      end;
      match job.failed with
      | Some (_, e) -> raise e
      | None ->
          Array.map
            (function Some v -> v | None -> assert false (* abort skipped it *))
            results
    end
  end

let map t f arr = map_range t ~n:(Array.length arr) ~f:(fun i -> f arr.(i))

(* ---- process-wide shared pool ------------------------------------- *)

let shared_mutex = Mutex.create ()
let shared : t option ref = ref None

let shared_pool ~jobs =
  Mutex.lock shared_mutex;
  let pool =
    match !shared with
    | Some p when p.jobs = jobs -> p
    | existing ->
        Option.iter
          (fun p ->
            (* Release the old size's domains before re-provisioning. *)
            Mutex.unlock shared_mutex;
            shutdown p;
            Mutex.lock shared_mutex)
          existing;
        let p = create ~jobs in
        shared := Some p;
        p
  in
  Mutex.unlock shared_mutex;
  pool

let run_range ?jobs ~n ~f () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if jobs <= 1 then
    (* Mirror [map_range]'s capture exactly (after the n = 0 cutoff) so
       trace-id allocation does not depend on the jobs count. *)
    if n = 0 then [||] else seq_map_range ~n ~f:(Trace.wrap_items f)
  else map_range (shared_pool ~jobs) ~n ~f

let run ?jobs f arr =
  run_range ?jobs ~n:(Array.length arr) ~f:(fun i -> f arr.(i)) ()
