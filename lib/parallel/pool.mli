(** A fixed pool of OCaml 5 domains with work-sharing [map] over index
    ranges.

    Built for the engines' per-class fan-out: the items of a map are
    independent pure computations, workers grab contiguous chunks of the
    index range from a shared cursor, and results land in a pre-allocated
    slot array {e by index} — so the merged output is byte-identical no
    matter how many workers ran or how chunks interleaved.  The
    {b determinism contract} the engines rely on is exactly this: for a
    deterministic [f], [map] with any [jobs] equals the sequential map.

    Uses only the stdlib ([Domain], [Mutex], [Condition], [Atomic]); no
    external dependency.  A pool holds [jobs - 1] worker domains (the
    submitting domain works too), so [jobs = 1] degenerates to an inline
    sequential loop with no domain traffic at all. *)

type t

val default_jobs : unit -> int
(** The [APPLE_JOBS] environment variable when set to a positive integer
    (clamped to [1, 128]), otherwise {!Domain.recommended_domain_count}. *)

val create : jobs:int -> t
(** Spawn a pool with [jobs] workers in total ([jobs - 1] domains plus
    the caller).  [jobs] is clamped below at 1. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f arr] = [Array.map f arr], computed by up to [jobs t]
    domains.  If any [f] raises, the first exception (by lowest chunk
    index among failing chunks) is re-raised after every in-flight chunk
    has drained — the pool stays usable.  Nested or concurrent calls on
    the same pool degrade to the sequential loop rather than deadlock. *)

val map_range : t -> n:int -> f:(int -> 'b) -> 'b array
(** [map_range t ~n ~f] = [[| f 0; ...; f (n-1) |]]; {!map} is built on
    it. *)

val shutdown : t -> unit
(** Join and release the worker domains.  Idempotent; a shut-down pool
    runs subsequent [map]s sequentially. *)

val run : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map] on a process-wide shared pool of size [jobs] (default
    {!default_jobs}); the shared pool is created on first use and
    recreated when a different [jobs] is requested.  [jobs <= 1] runs
    inline without touching the shared pool. *)

val run_range : ?jobs:int -> n:int -> f:(int -> 'b) -> unit -> 'b array
(** Range analogue of {!run}. *)
