module Builders = Apple_topology.Builders
module Synth = Apple_traffic.Synth
module Matrix = Apple_traffic.Matrix
module Rng = Apple_prelude.Rng
module Table = Apple_prelude.Text_table
module Lifecycle = Apple_vnf.Lifecycle
module Scenario = Apple_core.Scenario
module Core_exp = Apple_core.Experiments

type rendered = Core_exp.rendered = { title : string; body : string }
type opts = Core_exp.opts = { seed : int; scale : float }

let default_opts = Core_exp.default_opts

(* Same scenario recipe as the core ablations: synthetic snapshots for
   the topology, averaged into one matrix, paths at least two hops so
   link faults have something to darken. *)
let scenario_for opts (named : Builders.named) =
  let rng = Rng.create opts.seed in
  let profile =
    {
      Synth.default_profile with
      Synth.snapshots = 8;
      (* [scale] shrinks the offered load, not the topology: smoke runs
         still exercise every fault kind and repair path, just with
         proportionally fewer packets at stake. *)
      total_rate = 3_000.0 *. opts.scale;
      burst_probability = 0.06;
      burst_factor = 25.0;
      burst_length = 6;
    }
  in
  let snapshots = Synth.for_topology rng profile named in
  Scenario.build
    ~config:{ Scenario.default_config with Scenario.min_path_hops = 2 }
    ~seed:opts.seed named (Matrix.mean_of snapshots)

(* One schedule per (fault kind, density).  Densities stagger repeats so
   repairs overlap: that is exactly the regime the repair path's
   bookkeeping has to survive. *)
let schedules =
  let f = Fault.add in
  [
    ( "kill-instance",
      [
        ("sparse", f Fault.empty ~at:0.5 (Fault.Kill_instance Fault.Hottest));
        ( "dense",
          f
            (f
               (f Fault.empty ~at:0.5 (Fault.Kill_instance Fault.Hottest))
               ~at:1.2 (Fault.Kill_instance Fault.Hottest))
            ~at:1.9
            (Fault.Kill_instance Fault.Hottest) );
      ] );
    ( "link-down",
      [
        ( "sparse",
          f
            (f Fault.empty ~at:0.5 (Fault.Link_down Fault.Busiest))
            ~at:1.5 (Fault.Link_up Fault.Busiest) );
        ( "dense",
          List.fold_left
            (fun s (at, fault) -> f s ~at fault)
            Fault.empty
            [
              (0.5, Fault.Link_down Fault.Busiest);
              (0.9, Fault.Link_down Fault.Busiest);
              (1.5, Fault.Link_up Fault.Busiest);
              (1.9, Fault.Link_up Fault.Busiest);
            ] );
      ] );
    ( "switch-crash",
      [
        ( "sparse",
          f
            (f Fault.empty ~at:0.5 (Fault.Switch_crash Fault.Busiest))
            ~at:1.5 (Fault.Switch_restart Fault.Busiest) );
        ( "dense",
          List.fold_left
            (fun s (at, fault) -> f s ~at fault)
            Fault.empty
            [
              (0.5, Fault.Switch_crash Fault.Busiest);
              (0.9, Fault.Switch_crash Fault.Busiest);
              (1.5, Fault.Switch_restart Fault.Busiest);
              (1.9, Fault.Switch_restart Fault.Busiest);
            ] );
      ] );
    ( "tcam-loss",
      [
        ("sparse", f Fault.empty ~at:0.5 (Fault.Tcam_loss (Fault.Busiest, 0.3)));
        ( "dense",
          List.fold_left
            (fun s (at, fault) -> f s ~at fault)
            Fault.empty
            [
              (0.5, Fault.Tcam_loss (Fault.Busiest, 0.3));
              (0.8, Fault.Tcam_loss (Fault.Busiest, 0.3));
              (1.1, Fault.Tcam_loss (Fault.Busiest, 0.3));
            ] );
      ] );
    ( "poller-blackout",
      [
        ("sparse", f Fault.empty ~at:0.5 (Fault.Poller_blackout 0.4));
        ( "dense",
          List.fold_left
            (fun s (at, fault) -> f s ~at fault)
            Fault.empty
            [
              (0.5, Fault.Poller_blackout 0.4);
              (1.0, Fault.Poller_blackout 0.4);
              (1.5, Fault.Poller_blackout 0.4);
            ] );
      ] );
  ]

let chaos_config =
  {
    Chaos.default_config with
    (* ClickOS boots keep the table about recovery mechanics, not about
       waiting out a 30 s VM boot; fig. uses the boot-delay sweep for
       that axis. *)
    Chaos.boot = Some Lifecycle.Raw_clickos;
  }

let fig_failover opts =
  let t =
    Table.create
      [
        "Topology";
        "Fault";
        "Density";
        "Events";
        "Mean recovery";
        "Pkts lost";
        "Verifier";
      ]
  in
  List.iter
    (fun make ->
      let named : Builders.named = make () in
      let s = scenario_for opts named in
      List.iter
        (fun (kind, densities) ->
          List.iter
            (fun (density, schedule) ->
              let o =
                Chaos.run ~config:chaos_config ~seed:opts.seed ~schedule s
              in
              let recoveries =
                List.filter_map (fun f -> f.Chaos.o_recovery) o.Chaos.faults
              in
              let mean_recovery =
                match recoveries with
                | [] -> "-"
                | rs ->
                    Printf.sprintf "%.3f s"
                      (List.fold_left ( +. ) 0.0 rs
                      /. float_of_int (List.length rs))
              in
              let n = List.length o.Chaos.faults in
              let verifier =
                if o.Chaos.heals_rejected > 0 then
                  Printf.sprintf "REJECTED %d/%d" o.Chaos.heals_rejected n
                else if o.Chaos.heals_ok = n then
                  Printf.sprintf "ok %d/%d" o.Chaos.heals_ok n
                else Printf.sprintf "ok %d/%d (open %d)" o.Chaos.heals_ok n
                       (n - o.Chaos.heals_ok)
              in
              Table.add_row t
                [
                  named.Builders.label;
                  kind;
                  density;
                  string_of_int n;
                  mean_recovery;
                  string_of_int o.Chaos.total_lost;
                  verifier;
                ])
            densities)
        schedules)
    [ Builders.internet2; Builders.geant ];
  {
    title = "Failover under injected faults (chaos engine)";
    body = Table.render t;
  }
