(** The failover artifact: recovery behaviour under the chaos engine.

    Lives here rather than in {!Apple_core.Experiments} because the
    dependency points this way — the chaos engine is built on top of the
    core (and the verifier), so the core's experiment table cannot refer
    to it. *)

type rendered = Apple_core.Experiments.rendered = {
  title : string;
  body : string;
}

type opts = Apple_core.Experiments.opts = { seed : int; scale : float }

val default_opts : opts

val scenario_for : opts -> Apple_topology.Builders.named -> Apple_core.Types.scenario
(** The scenario recipe shared by {!fig_failover}, the CLI and the
    tests: averaged synthetic snapshots, paths at least two hops. *)

val fig_failover : opts -> rendered
(** Recovery time, packets lost and verifier status per fault kind and
    schedule density (one sparse and one dense schedule per kind), on
    Internet2 and GEANT.  Fully deterministic for a given seed. *)
