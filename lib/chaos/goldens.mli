(** Differential regression goldens.

    Each entry renders one canonical artifact (experiment tables and a
    chaos drill) deterministically at the default seed.
    [tools/make_goldens.exe] records them under [test/goldens/]; the
    tier-1 suite re-renders each entry and fails with a readable unified
    diff when the output drifts.  Refresh intentionally with
    [make goldens] and review the diff like any other code change. *)

val entries : (string * (unit -> string)) list
(** [(name, render)] pairs; the golden file is [test/goldens/NAME.txt]. *)

val fig6_packet : mode:Apple_dataplane.Compiled.mode -> unit -> string
(** The Fig-6 packet experiment (packet-level ablation, reduced scale)
    rendered under the given dataplane engine.  The [fig6_compiled]
    golden records the compiled engine's output; the test suite renders
    the interpreter against the same file to pin byte-identity. *)

val drill_schedule : Fault.schedule
(** The all-fault-kinds drill behind the [chaos_internet2] entry —
    the programmatic twin of [examples/chaos_internet2.sched]. *)

val diff : expected:string -> actual:string -> string
(** [""] when equal; otherwise a line-by-line unified diff
    ([- expected] / [+ actual], common lines indented). *)

val check : path:string -> actual:string -> (unit, string) result
(** Compare [actual] against the golden recorded at [path].  [Error]
    carries either a missing-golden message or the drift diff; both
    name [make goldens] as the refresh path. *)
