(** Declarative fault schedules for the chaos engine.

    A schedule is a time-ordered list of fault events on the simulation
    clock.  Targets are either explicit element ids or the symbolic
    selectors [hottest] (the VNF instance carrying the most offered
    load) and [busiest] (the link/switch carrying the most rate-weighted
    class paths), resolved deterministically at injection time.

    Schedules can be built programmatically ({!empty}/{!add}) or loaded
    from a small line-based text format:

    {v
    # comment; blank lines ignored; times in sim seconds
    at 0.5 kill-instance hottest
    at 0.5 link-down busiest
    at 1.5 link-up busiest
    at 0.9 switch-crash 3
    at 1.9 switch-restart 3
    at 0.7 tcam-loss busiest 0.5
    at 1.1 poller-blackout 0.25
    v}

    [link-down]/[link-up] and [switch-crash]/[switch-restart] come in
    pairs: the up event heals the element the matching down event
    failed (a symbolic up heals the most recent symbolic down).  Kill,
    TCAM-loss and poller-blackout events heal themselves (respawn,
    reinstall, window end). *)

type target =
  | Hottest  (** instance with the most offered load at injection time *)
  | Busiest  (** link/switch with the most rate-weighted paths *)
  | Id of int  (** explicit switch or instance id *)
  | Pair of int * int  (** explicit undirected link *)

type fault =
  | Kill_instance of target  (** VM death; target [Hottest] or [Id] *)
  | Link_down of target  (** target [Busiest] or [Pair] *)
  | Link_up of target
  | Switch_crash of target  (** target [Busiest] or [Id] *)
  | Switch_restart of target
  | Tcam_loss of target * float
      (** lose each APPLE-table entry of the switch with the given
          probability (0 < p <= 1); target [Busiest] or [Id] *)
  | Poller_blackout of float
      (** the counter poller goes blind for this many seconds: control
          rounds are skipped, detection is delayed *)

type event = { at : float; fault : fault }

type schedule = event list
(** Kept sorted by time (stable: same-time events keep insertion
    order). *)

val empty : schedule

val add : schedule -> at:float -> fault -> schedule
(** Insert keeping the time order; same-time events stay in insertion
    order. *)

val validate : schedule -> (unit, string) result
(** Checks: non-negative times; TCAM-loss probability in (0, 1];
    positive blackout durations; targets legal for their fault kind
    (e.g. [Hottest] only kills instances); and pairing — at every prefix
    of the schedule, up/restart events never outnumber the matching
    down/crash events (per explicit element, and in aggregate for the
    symbolic [Busiest]). *)

val parse : string -> (schedule, string) result
(** Parse the text format above; errors name the offending line.  The
    result is validated. *)

val to_string : schedule -> string
(** Render back to the text format ([parse]-roundtrippable). *)

val fault_name : fault -> string
(** Short kind name: ["kill-instance"], ["link-down"], ... *)

val pp_fault : Format.formatter -> fault -> unit
val pp_event : Format.formatter -> event -> unit
