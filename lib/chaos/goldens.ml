module Core_exp = Apple_core.Experiments
module Lifecycle = Apple_vnf.Lifecycle
module Builders = Apple_topology.Builders

(* The drill mirrors examples/chaos_internet2.sched; test_chaos pins the
   two against each other so they cannot drift apart. *)
let drill_schedule =
  List.fold_left
    (fun s (at, fault) -> Fault.add s ~at fault)
    Fault.empty
    [
      (0.5, Fault.Kill_instance Fault.Hottest);
      (0.8, Fault.Link_down Fault.Busiest);
      (1.6, Fault.Link_up Fault.Busiest);
      (2.0, Fault.Switch_crash Fault.Busiest);
      (2.8, Fault.Switch_restart Fault.Busiest);
      (3.2, Fault.Tcam_loss (Fault.Busiest, 0.3));
      (3.6, Fault.Poller_blackout 0.4);
    ]

let chaos_internet2 () =
  let opts = Core_exp.default_opts in
  let s = Experiments.scenario_for opts (Builders.internet2 ()) in
  let config =
    { Chaos.default_config with Chaos.boot = Some Lifecycle.Raw_clickos }
  in
  Chaos.render (Chaos.run ~config ~seed:opts.Core_exp.seed ~schedule:drill_schedule s)

(* The same drill under the causal tracer: the sim-mode Chrome render
   zeroes every host-dependent field (wall stamps, domain ids, GC
   words), so the export is itself a deterministic artifact worth
   pinning — it guards event set, causality links and timestamps at
   once. *)
let trace_sim () =
  let module Trace = Apple_trace.Trace in
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      ignore (chaos_internet2 ());
      Trace.render_chrome ~mode:Trace.Sim ())

let of_rendered (r : Core_exp.rendered) =
  Printf.sprintf "== %s ==\n%s\n" r.Core_exp.title r.Core_exp.body

(* The Fig-6 packet experiment (packet-level ablation) under a chosen
   dataplane engine, at a reduced scale so runtest stays fast.  The
   recorded golden uses the compiled engine; test_goldens additionally
   renders the interpreter's output against the same file, so the golden
   pins byte-identity of the two engines end-to-end, not just the
   compiled engine's stability. *)
let fig6_packet_opts = { Core_exp.default_opts with Core_exp.scale = 0.1 }

let fig6_packet ~mode () =
  let module Compiled = Apple_dataplane.Compiled in
  let saved = Compiled.mode () in
  Compiled.set_mode mode;
  Fun.protect
    ~finally:(fun () -> Compiled.set_mode saved)
    (fun () -> of_rendered (Core_exp.ablation_packet_level fig6_packet_opts))

let entries =
  [
    ("table3", fun () -> of_rendered (Core_exp.table3 Core_exp.default_opts));
    ("table4", fun () -> of_rendered (Core_exp.table4 Core_exp.default_opts));
    ("fig6", fun () -> of_rendered (Core_exp.fig6 Core_exp.default_opts));
    ( "fig6_compiled",
      fig6_packet ~mode:Apple_dataplane.Compiled.Compiled );
    ("chaos_internet2", chaos_internet2);
    ("trace_sim", trace_sim);
  ]

(* ------------------------------------------------------------------ *)
(* Unified diff (LCS over lines; goldens are small, O(nm) is fine).    *)

let split_lines s =
  let lines = String.split_on_char '\n' s in
  (* A trailing newline yields a final "" pseudo-line; drop it so equal
     texts with/without it still show the real difference only. *)
  match List.rev lines with
  | "" :: rest -> Array.of_list (List.rev rest)
  | _ -> Array.of_list lines

let diff ~expected ~actual =
  if String.equal expected actual then ""
  else begin
    let a = split_lines expected and b = split_lines actual in
    if Array.length a = Array.length b && Array.for_all2 String.equal a b then
      (* Same lines, different bytes: the only way split_lines loses
         information is the final newline.  A -/+ dump would show two
         identical-looking texts; say what actually differs. *)
      "(no line differs: the texts disagree only on the trailing newline)\n"
    else begin
    let n = Array.length a and m = Array.length b in
    let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
    for i = n - 1 downto 0 do
      for j = m - 1 downto 0 do
        lcs.(i).(j) <-
          (if String.equal a.(i) b.(j) then 1 + lcs.(i + 1).(j + 1)
           else max lcs.(i + 1).(j) lcs.(i).(j + 1))
      done
    done;
    let buf = Buffer.create 256 in
    (* Emit the full diff body (no hunk headers: goldens are short and a
       complete, readable picture beats saving lines). *)
    let rec walk i j =
      if i < n && j < m && String.equal a.(i) b.(j) then begin
        Buffer.add_string buf ("  " ^ a.(i) ^ "\n");
        walk (i + 1) (j + 1)
      end
      else if i < n && (j = m || lcs.(i + 1).(j) >= lcs.(i).(j + 1)) then begin
        Buffer.add_string buf ("- " ^ a.(i) ^ "\n");
        walk (i + 1) j
      end
      else if j < m then begin
        Buffer.add_string buf ("+ " ^ b.(j) ^ "\n");
        walk i (j + 1)
      end
    in
    walk 0 0;
    Buffer.contents buf
    end
  end

(* Shared check used by the test suite: [Error] messages carry the
   refresh instruction (`make goldens`) so a stale or missing golden
   tells the reader how to fix it. *)
let check ~path ~actual =
  if not (Sys.file_exists path) then
    Error
      (Printf.sprintf "missing golden %s — record it with `make goldens`" path)
  else begin
    let ic = open_in_bin path in
    let expected =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let d = diff ~expected ~actual in
    if String.equal d "" then Ok ()
    else
      Error
        (Printf.sprintf
           "golden %s drifted (- recorded / + current); if intentional, \
            refresh with `make goldens` and commit the diff:\n%s"
           path d)
  end
