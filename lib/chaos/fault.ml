type target = Hottest | Busiest | Id of int | Pair of int * int

type fault =
  | Kill_instance of target
  | Link_down of target
  | Link_up of target
  | Switch_crash of target
  | Switch_restart of target
  | Tcam_loss of target * float
  | Poller_blackout of float

type event = { at : float; fault : fault }
type schedule = event list

let empty = []

(* Insert before the first strictly-later event, so same-time events
   keep insertion order (the engine breaks ties the same way). *)
let add sched ~at fault =
  let e = { at; fault } in
  let rec ins = function
    | [] -> [ e ]
    | x :: rest when x.at <= at -> x :: ins rest
    | later -> e :: later
  in
  ins sched

let fault_name = function
  | Kill_instance _ -> "kill-instance"
  | Link_down _ -> "link-down"
  | Link_up _ -> "link-up"
  | Switch_crash _ -> "switch-crash"
  | Switch_restart _ -> "switch-restart"
  | Tcam_loss _ -> "tcam-loss"
  | Poller_blackout _ -> "poller-blackout"

let target_to_string = function
  | Hottest -> "hottest"
  | Busiest -> "busiest"
  | Id i -> string_of_int i
  | Pair (u, v) -> Printf.sprintf "%d-%d" u v

let pp_fault ppf f =
  match f with
  | Kill_instance t | Link_down t | Link_up t | Switch_crash t
  | Switch_restart t ->
      Format.fprintf ppf "%s %s" (fault_name f) (target_to_string t)
  | Tcam_loss (t, p) ->
      Format.fprintf ppf "%s %s %g" (fault_name f) (target_to_string t) p
  | Poller_blackout d -> Format.fprintf ppf "%s %g" (fault_name f) d

let pp_event ppf e = Format.fprintf ppf "at %g %a" e.at pp_fault e.fault

let to_string sched =
  String.concat ""
    (List.map (fun e -> Format.asprintf "%a\n" pp_event e) sched)

(* ------------------------------------------------------------------ *)
(* Validation.                                                         *)

let legal_target = function
  | Kill_instance (Hottest | Id _) -> true
  | Kill_instance (Busiest | Pair _) -> false
  | (Link_down t | Link_up t) -> ( match t with Busiest | Pair _ -> true | Hottest | Id _ -> false)
  | (Switch_crash t | Switch_restart t) -> (
      match t with Busiest | Id _ -> true | Hottest | Pair _ -> false)
  | Tcam_loss (t, _) -> (
      match t with Busiest | Id _ -> true | Hottest | Pair _ -> false)
  | Poller_blackout _ -> true

(* Link keys are undirected. *)
let norm_pair (u, v) = if u <= v then (u, v) else (v, u)

let validate sched =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.at <= b.at && sorted rest
    | [ _ ] | [] -> true
  in
  if not (sorted sched) then err "schedule is not sorted by time"
  else begin
    (* Per-element (and aggregate symbolic) pairing counts, checked at
       every prefix so an up never precedes its down. *)
    let link_downs = Hashtbl.create 8 and sym_links = ref 0 in
    let sw_downs = Hashtbl.create 8 and sym_sw = ref 0 in
    let bump tbl k d = Hashtbl.replace tbl k (d + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
    let count tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
    let rec check i = function
      | [] -> Ok ()
      | e :: rest ->
          let fail fmt =
            Format.kasprintf
              (fun m -> err "event %d (at %g): %s" i e.at m)
              fmt
          in
          if e.at < 0.0 then fail "negative time"
          else if not (legal_target e.fault) then
            fail "target not legal for %s" (fault_name e.fault)
          else begin
            let r =
              match e.fault with
              | Tcam_loss (_, p) when not (p > 0.0 && p <= 1.0) ->
                  fail "loss probability %g outside (0, 1]" p
              | Poller_blackout d when not (d > 0.0) ->
                  fail "blackout duration %g not positive" d
              | Link_down (Pair (u, v)) ->
                  bump link_downs (norm_pair (u, v)) 1;
                  Ok ()
              | Link_down Busiest -> incr sym_links; Ok ()
              | Link_up (Pair (u, v)) ->
                  let k = norm_pair (u, v) in
                  if count link_downs k <= 0 then
                    fail "link-up %s before its link-down"
                      (target_to_string (Pair (u, v)))
                  else begin bump link_downs k (-1); Ok () end
              | Link_up Busiest ->
                  if !sym_links <= 0 then fail "link-up busiest before its link-down"
                  else begin decr sym_links; Ok () end
              | Switch_crash (Id s) -> bump sw_downs s 1; Ok ()
              | Switch_crash Busiest -> incr sym_sw; Ok ()
              | Switch_restart (Id s) ->
                  if count sw_downs s <= 0 then
                    fail "switch-restart %d before its switch-crash" s
                  else begin bump sw_downs s (-1); Ok () end
              | Switch_restart Busiest ->
                  if !sym_sw <= 0 then
                    fail "switch-restart busiest before its switch-crash"
                  else begin decr sym_sw; Ok () end
              | Kill_instance _ | Tcam_loss _ | Poller_blackout _
              | Link_down (Hottest | Id _)
              | Link_up (Hottest | Id _)
              | Switch_crash (Hottest | Pair _)
              | Switch_restart (Hottest | Pair _) ->
                  Ok ()
            in
            match r with Ok () -> check (i + 1) rest | Error _ as e -> e
          end
    in
    check 0 sched
  end

(* ------------------------------------------------------------------ *)
(* Text format.                                                        *)

let parse_target word =
  match word with
  | "hottest" -> Ok Hottest
  | "busiest" -> Ok Busiest
  | w -> (
      match String.index_opt w '-' with
      | Some i when i > 0 -> (
          match
            ( int_of_string_opt (String.sub w 0 i),
              int_of_string_opt (String.sub w (i + 1) (String.length w - i - 1))
            )
          with
          | Some u, Some v -> Ok (Pair (u, v))
          | _ -> Error (Printf.sprintf "bad link %S" w))
      | _ -> (
          match int_of_string_opt w with
          | Some i -> Ok (Id i)
          | None -> Error (Printf.sprintf "bad target %S" w)))

let parse_line line =
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  let ( let* ) = Result.bind in
  match words with
  | "at" :: time :: kind :: args -> (
      let* at =
        match float_of_string_opt time with
        | Some t -> Ok t
        | None -> Error (Printf.sprintf "bad time %S" time)
      in
      let one mk = function
        | [ t ] ->
            let* target = parse_target t in
            Ok { at; fault = mk target }
        | _ -> Error (Printf.sprintf "%s takes one target" kind)
      in
      match (kind, args) with
      | "kill-instance", args -> one (fun t -> Kill_instance t) args
      | "link-down", args -> one (fun t -> Link_down t) args
      | "link-up", args -> one (fun t -> Link_up t) args
      | "switch-crash", args -> one (fun t -> Switch_crash t) args
      | "switch-restart", args -> one (fun t -> Switch_restart t) args
      | "tcam-loss", [ t; p ] -> (
          let* target = parse_target t in
          match float_of_string_opt p with
          | Some p -> Ok { at; fault = Tcam_loss (target, p) }
          | None -> Error (Printf.sprintf "bad probability %S" p))
      | "tcam-loss", _ -> Error "tcam-loss takes a target and a probability"
      | "poller-blackout", [ d ] -> (
          match float_of_string_opt d with
          | Some d -> Ok { at; fault = Poller_blackout d }
          | None -> Error (Printf.sprintf "bad duration %S" d))
      | "poller-blackout", _ -> Error "poller-blackout takes a duration"
      | k, _ -> Error (Printf.sprintf "unknown fault kind %S" k))
  | _ -> Error "expected: at TIME KIND ARGS"

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let stripped = String.trim line in
        if stripped = "" || stripped.[0] = '#' then go (n + 1) acc rest
        else (
          match parse_line stripped with
          | Ok e -> go (n + 1) (e :: acc) rest
          | Error m -> Error (Printf.sprintf "line %d: %s" n m))
  in
  match go 1 [] lines with
  | Error _ as e -> e
  | Ok events -> (
      let sched = List.fold_left (fun s e -> add s ~at:e.at e.fault) empty events in
      match validate sched with Ok () -> Ok sched | Error m -> Error m)
