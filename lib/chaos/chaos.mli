(** The chaos engine: seeded, fully deterministic fault injection
    against a running scenario, on the simulation clock.

    A run installs one controller epoch (gated by the static verifier),
    then replays a {!Fault.schedule} while a periodic control round
    drives the Dynamic Handler and integrates blackhole losses:

    - {b kill-instance} marks the instance dead in the failure mask,
      runs the Dynamic Handler's repair path (weight shifted to live
      siblings, the unabsorbable remainder visibly blackholed), and asks
      the Resource Orchestrator to respawn the VM with capped
      exponential backoff; when the replacement boots, the controller
      heals the epoch (pinnings swapped, rules reinstalled) and the
      healed tables are re-checked by the verifier gate.
    - {b link-down} / {b switch-crash} darken every class path crossing
      the element until the paired up/restart event; the verifier
      re-checks the (unchanged) tables at heal time.
    - {b tcam-loss} deletes a seeded-random subset of a switch's APPLE
      table; the controller reinstalls the full tables one rule-install
      latency later and the gate re-checks them.
    - {b poller-blackout} suspends control rounds (the controller is
      blind while counters don't arrive).

    Packets lost while each fault is open are integrated from the
    flow-level blackhole rate at the configured packet size, credited to
    {!Apple_obs.Counters.blackhole} at the failed element, and reported
    per fault.  Everything runs on {!Apple_sim.Engine}'s virtual clock
    with a seeded {!Apple_prelude.Rng}, so a run is byte-identical
    across repeats and [--jobs] values. *)

type config = {
  round : float;  (** control-round period, seconds (default 0.05) *)
  duration : float;
      (** run length, sim seconds; 0 (the default) auto-extends to the
          last scheduled event plus a grace window covering the slowest
          respawn *)
  packet_bytes : int;  (** packet size for loss accounting (1500) *)
  jobs : int option;  (** forwarded to the placement engine *)
  boot : Apple_vnf.Lifecycle.boot_path option;
      (** respawn boot path; [None] picks per-kind (ClickOS kinds boot
          in 30 ms, the rest as normal VMs) *)
  backoff : Apple_core.Resource_orchestrator.backoff;
      (** respawn backoff policy *)
}

val default_config : config

type verdict =
  [ `Ok  (** healed tables passed the verifier gate *)
  | `Rejected of string  (** gate refused the healed tables *)
  | `Skipped  (** fault still open when the run ended *) ]

type fault_outcome = {
  o_at : float;  (** injection time *)
  o_label : string;  (** rendered fault with its resolved element *)
  o_recovery : float option;
      (** seconds from injection to healed; [None] if never healed *)
  o_lost : int;  (** packets lost to this fault's element while open *)
  o_verdict : verdict;
}

type outcome = {
  scenario_label : string;
  seed : int;
  faults : fault_outcome list;  (** in schedule order *)
  total_lost : int;  (** sum of per-fault losses *)
  heals_ok : int;  (** healed epochs that passed the gate *)
  heals_rejected : int;
  final_loss : float;  (** {!Apple_core.Netstate.network_loss} at the end *)
  log : string list;  (** chronological timeline, rendered *)
}

val run :
  ?config:config ->
  seed:int ->
  schedule:Fault.schedule ->
  Apple_core.Types.scenario ->
  outcome
(** Raises [Invalid_argument] on a schedule {!Fault.validate} rejects,
    and propagates {!Apple_core.Controller.Rejected} if the initial
    epoch itself fails the gate. *)

val render : outcome -> string
(** Multi-line report: header, timeline, and a per-fault recovery
    table. *)
