module Engine = Apple_sim.Engine
module Rng = Apple_prelude.Rng
module Table = Apple_prelude.Text_table
module Instance = Apple_vnf.Instance
module Lifecycle = Apple_vnf.Lifecycle
module Failmask = Apple_dataplane.Failmask
module Tcam = Apple_dataplane.Tcam
module Walk = Apple_dataplane.Walk
module Counters = Apple_obs.Counters
module Types = Apple_core.Types
module Subclass = Apple_core.Subclass
module Netstate = Apple_core.Netstate
module Controller = Apple_core.Controller
module Dynamic_handler = Apple_core.Dynamic_handler
module Resource_orchestrator = Apple_core.Resource_orchestrator
module Rule_generator = Apple_core.Rule_generator
module T = Apple_telemetry.Telemetry
module Tr = Apple_trace.Trace

let tr_fault = Tr.span ~cat:"heal" "chaos.fault"

let log = Logs.Src.create "apple.chaos" ~doc:"Chaos engine"

module Log = (val Logs.src_log log : Logs.LOG)

type config = {
  round : float;
  duration : float;
  packet_bytes : int;
  jobs : int option;
  boot : Lifecycle.boot_path option;
  backoff : Resource_orchestrator.backoff;
}

let default_config =
  {
    round = 0.05;
    duration = 0.0;
    packet_bytes = 1500;
    jobs = None;
    boot = None;
    backoff = Resource_orchestrator.default_backoff;
  }

type verdict = [ `Ok | `Rejected of string | `Skipped ]

type fault_outcome = {
  o_at : float;
  o_label : string;
  o_recovery : float option;
  o_lost : int;
  o_verdict : verdict;
}

type outcome = {
  scenario_label : string;
  seed : int;
  faults : fault_outcome list;
  total_lost : int;
  heals_ok : int;
  heals_rejected : int;
  final_loss : float;
  log : string list;
}

(* Failed element a fault owns, the key under which round-by-round
   blackhole losses are attributed back to the fault. *)
type elem = L of int * int | S of int | I of int | T of int | B

let elem_equal a b =
  match (a, b) with
  | L (u, v), L (u', v') -> u = u' && v = v'
  | S a, S b | I a, I b | T a, T b -> a = b
  | B, B -> true
  | (L _ | S _ | I _ | T _ | B), _ -> false

(* Mutable in-flight record; frozen into [fault_outcome] at the end. *)
type fo = {
  fo_at : float;
  mutable fo_label : string;
  mutable fo_recovery : float option;
  mutable fo_lost : int;
  mutable fo_carry : float;
  mutable fo_rate : float;  (* extra dark rate (TCAM loss), Mbps *)
  mutable fo_verdict : verdict;
}

let norm (u, v) = if u <= v then (u, v) else (v, u)

let run ?(config = default_config) ~seed ~schedule (s : Types.scenario) =
  (match Fault.validate schedule with
  | Ok () -> ()
  | Error m -> invalid_arg ("Chaos.run: invalid schedule: " ^ m));
  let ctrl =
    Controller.create ?jobs:config.jobs ~gate:Apple_verify.Verify.gate s
  in
  ignore (Controller.run_epoch ctrl);
  let state =
    match Controller.netstate ctrl with Some st -> st | None -> assert false
  in
  let handler =
    match Controller.handler ctrl with Some h -> h | None -> assert false
  in
  let mask = state.Netstate.mask in
  let world = Engine.create () in
  let rng = Rng.create seed in
  let duration =
    if config.duration > 0.0 then config.duration
    else
      let last = List.fold_left (fun acc e -> max acc e.Fault.at) 0.0 schedule in
      (* Grace window covering the slowest heal: capped backoff plus a
         normal-VM boot. *)
      last +. config.backoff.Resource_orchestrator.cap
      +. Lifecycle.normal_vm_boot +. 2.0
  in
  let lines = ref [] in
  let logf w fmt =
    Format.kasprintf
      (fun m ->
        let line = Printf.sprintf "[%8.3f] %s" (Engine.now w) m in
        lines := line :: !lines;
        T.Journal.recordf ~kind:"chaos" "%s" m;
        Log.info (fun f -> f "%s" line))
      fmt
  in
  (* Chronological list of fault records, and the active set keyed by
     failed element (assoc list: deterministic order, tiny sizes). *)
  let all = ref [] in
  let active = ref [] in
  let open_fault w ~elem ~label =
    let fo =
      {
        fo_at = Engine.now w;
        fo_label = label;
        fo_recovery = None;
        fo_lost = 0;
        fo_carry = 0.0;
        fo_rate = 0.0;
        fo_verdict = `Skipped;
      }
    in
    all := fo :: !all;
    active := (elem, fo) :: !active;
    fo
  in
  let close_fault w elem =
    match List.find_opt (fun (e, _) -> elem_equal e elem) !active with
    | None -> ()
    | Some (_, fo) ->
        active := List.filter (fun (e, _) -> not (elem_equal e elem)) !active;
        fo.fo_recovery <- Some (Engine.now w -. fo.fo_at);
        (* Every healed epoch is re-checked by the verifier gate. *)
        (match Controller.recheck_gate ctrl with
        | Ok () -> fo.fo_verdict <- `Ok
        | Error m -> fo.fo_verdict <- `Rejected m);
        logf w "healed: %s after %.3fs (%d packet(s) lost, verifier %s)"
          fo.fo_label
          (Engine.now w -. fo.fo_at)
          fo.fo_lost
          (match fo.fo_verdict with
          | `Ok -> "ok"
          | `Rejected _ -> "REJECTED"
          | `Skipped -> "skipped")
  in
  (* ---- symbolic target resolution (at injection time) ------------- *)
  let hottest_instance () =
    Netstate.recompute_loads state;
    List.fold_left
      (fun acc inst ->
        if Failmask.instance_down mask (Instance.id inst) then acc
        else
          match acc with
          | None -> Some inst
          | Some best ->
              let c = Float.compare (Instance.offered inst) (Instance.offered best) in
              if c > 0 || (c = 0 && Instance.id inst < Instance.id best) then
                Some inst
              else acc)
      None
      (Netstate.instances_in_use state)
  in
  let rate_weighted fold =
    (* max element by accumulated class rate; ties by smallest key *)
    let weights = Hashtbl.create 32 in
    Array.iter
      (fun (c : Types.flow_class) ->
        if c.Types.rate > 0.0 then
          fold c (fun key ->
              Hashtbl.replace weights key
                (c.Types.rate
                +. Option.value ~default:0.0 (Hashtbl.find_opt weights key))))
      s.Types.classes;
    (* lint: L3 — order erased: consumers sort by (rate, key) *)
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) weights []
  in
  let busiest_link () =
    rate_weighted (fun c add ->
        let p = c.Types.path in
        for i = 1 to Array.length p - 1 do
          add (norm (p.(i - 1), p.(i)))
        done)
    |> List.filter (fun ((u, v), _) -> not (Failmask.link_down mask u v))
    |> List.sort (fun ((a1, a2), va) ((b1, b2), vb) ->
           match Float.compare vb va with
           | 0 -> ( match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)
           | c -> c)
    |> function
    | (k, _) :: _ -> Some k
    | [] -> None
  in
  let busiest_switch () =
    rate_weighted (fun c add -> Array.iter add c.Types.path)
    |> List.filter (fun (sw, _) -> not (Failmask.switch_down mask sw))
    |> List.sort (fun (a, va) (b, vb) ->
           match Float.compare vb va with 0 -> Int.compare a b | c -> c)
    |> function
    | (k, _) :: _ -> Some k
    | [] -> None
  in
  (* Stacks pairing symbolic up/restart events with the element their
     down/crash actually hit. *)
  let sym_links = ref [] and sym_switches = ref [] in
  (* Respawn attempt counter per host (repeated crashes back off). *)
  let attempts = Hashtbl.create 8 in
  let blind_until = ref neg_infinity in
  (* ---- per-fault injection ---------------------------------------- *)
  let kill_instance w target =
    let victim =
      match target with
      | Fault.Hottest -> hottest_instance ()
      | Fault.Id i ->
          List.find_opt
            (fun inst -> Instance.id inst = i)
            (Resource_orchestrator.instances state.Netstate.orchestrator)
      | Fault.Busiest | Fault.Pair _ -> None
    in
    match victim with
    | None -> logf w "kill-instance: no eligible instance; ignored"
    | Some dead ->
        let id = Instance.id dead and host = Instance.host dead in
        Failmask.fail_instance mask id;
        let fo =
          open_fault w ~elem:(I id)
            ~label:
              (Printf.sprintf "kill-instance %d (%s at switch %d)" id
                 (Apple_vnf.Nf.name (Instance.kind dead))
                 host)
        in
        logf w "%s" fo.fo_label;
        let stranded = Dynamic_handler.repair handler ~dead in
        logf w "repair: stranded weight %.3f across classes (%.1f Mbps blackholed)"
          stranded
          (Netstate.blackholed_rate state);
        let attempt =
          Option.value ~default:0 (Hashtbl.find_opt attempts host)
        in
        Hashtbl.replace attempts host (attempt + 1);
        ignore
          (Resource_orchestrator.respawn state.Netstate.orchestrator ~world:w
             ~rng ?boot:config.boot ~policy:config.backoff ~attempt
             ~on_ready:(fun replacement ->
               Controller.heal_instance ctrl ~dead ~replacement;
               logf world "instance %d respawned as %d (attempt %d)" id
                 (Instance.id replacement) attempt;
               close_fault world (I id))
             dead)
  in
  let link_down w target =
    let link =
      match target with
      | Fault.Pair (u, v) -> Some (norm (u, v))
      | Fault.Busiest -> busiest_link ()
      | Fault.Hottest | Fault.Id _ -> None
    in
    match link with
    | None -> logf w "link-down: no eligible link; ignored"
    | Some (u, v) ->
        Failmask.fail_link mask u v;
        if target = Fault.Busiest then sym_links := (u, v) :: !sym_links;
        let fo =
          open_fault w ~elem:(L (u, v))
            ~label:(Printf.sprintf "link-down %d-%d" u v)
        in
        logf w "%s" fo.fo_label
  in
  let link_up w target =
    let link =
      match target with
      | Fault.Pair (u, v) -> Some (norm (u, v))
      | Fault.Busiest -> (
          match !sym_links with
          | l :: rest ->
              sym_links := rest;
              Some l
          | [] -> None)
      | Fault.Hottest | Fault.Id _ -> None
    in
    match link with
    | None -> logf w "link-up: nothing to heal; ignored"
    | Some (u, v) ->
        Failmask.restore_link mask u v;
        logf w "link-up %d-%d" u v;
        close_fault w (L (u, v))
  in
  let switch_crash w target =
    let sw =
      match target with
      | Fault.Id i -> Some i
      | Fault.Busiest -> busiest_switch ()
      | Fault.Hottest | Fault.Pair _ -> None
    in
    match sw with
    | None -> logf w "switch-crash: no eligible switch; ignored"
    | Some sw ->
        Failmask.fail_switch mask sw;
        if target = Fault.Busiest then sym_switches := sw :: !sym_switches;
        let fo =
          open_fault w ~elem:(S sw) ~label:(Printf.sprintf "switch-crash %d" sw)
        in
        logf w "%s" fo.fo_label
  in
  let switch_restart w target =
    let sw =
      match target with
      | Fault.Id i -> Some i
      | Fault.Busiest -> (
          match !sym_switches with
          | sw :: rest ->
              sym_switches := rest;
              Some sw
          | [] -> None)
      | Fault.Hottest | Fault.Pair _ -> None
    in
    match sw with
    | None -> logf w "switch-restart: nothing to heal; ignored"
    | Some sw ->
        Failmask.restore_switch mask sw;
        logf w "switch-restart %d" sw;
        close_fault w (S sw)
  in
  (* Rate of traffic whose representative walk fails against the current
     tables (excluding mask-induced blackholes, which are attributed to
     their own faults). *)
  let walk_dark_rate () =
    match (Controller.last_report ctrl, Controller.assignment ctrl) with
    | Some report, Some asg ->
        let net = report.Controller.rules.Rule_generator.network in
        let depth = report.Controller.rules.Rule_generator.split_depth in
        Array.fold_left
          (fun acc (c : Types.flow_class) ->
            let subs =
              List.filter
                (fun sub -> sub.Subclass.class_id = c.Types.id)
                asg.Subclass.subclasses
            in
            let prefixes = Rule_generator.subclass_prefixes c subs ~depth in
            let dark = ref 0.0 in
            List.iteri
              (fun idx (sub : Subclass.subclass) ->
                match prefixes.(idx) with
                | [] -> ()
                | p :: _ -> (
                    match
                      Walk.run net
                        ~path:(Array.to_list c.Types.path)
                        ~cls:c.Types.id ~src_ip:p.Types.Prefix.addr ()
                    with
                    | Ok _ -> ()
                    | Error _ ->
                        dark := !dark +. (c.Types.rate *. sub.Subclass.weight)))
              subs;
            acc +. !dark)
          0.0 s.Types.classes
    | _ -> 0.0
  in
  let tcam_loss w target p =
    let sw =
      match target with
      | Fault.Id i -> Some i
      | Fault.Busiest -> busiest_switch ()
      | Fault.Hottest | Fault.Pair _ -> None
    in
    match sw with
    | None -> logf w "tcam-loss: no eligible switch; ignored"
    | Some sw ->
        (match Controller.last_report ctrl with
        | None -> ()
        | Some report ->
            let table = report.Controller.rules.Rule_generator.network.(sw) in
            let doomed =
              List.filter_map
                (fun (uid, _) -> if Rng.float rng 1.0 < p then Some uid else None)
                (Tcam.phys_entries table)
            in
            let lost =
              Tcam.retain_phys table ~keep:(fun uid ->
                  not (List.mem uid doomed))
            in
            let fo =
              open_fault w ~elem:(T sw)
                ~label:
                  (Printf.sprintf "tcam-loss at switch %d (%d rule(s), p=%g)"
                     sw lost p)
            in
            fo.fo_rate <- walk_dark_rate ();
            logf w "%s, %.1f Mbps dark" fo.fo_label fo.fo_rate;
            (* The controller reinstalls the full tables one rule-install
               latency later and the gate re-checks them. *)
            Engine.schedule w ~delay:Lifecycle.rule_install_time (fun w' ->
                ignore (Controller.reinstall_rules ctrl);
                logf w' "tcam reinstall at switch %d" sw;
                close_fault w' (T sw)))
  in
  let poller_blackout w d =
    blind_until := max !blind_until (Engine.now w +. d);
    let fo =
      open_fault w ~elem:B ~label:(Printf.sprintf "poller-blackout %gs" d)
    in
    logf w "%s" fo.fo_label;
    Engine.schedule w ~delay:d (fun w' ->
        logf w' "poller back";
        close_fault w' B)
  in
  let inject w fault =
    Tr.with_ tr_fault @@ fun () ->
    match fault with
    | Fault.Kill_instance t -> kill_instance w t
    | Fault.Link_down t -> link_down w t
    | Fault.Link_up t -> link_up w t
    | Fault.Switch_crash t -> switch_crash w t
    | Fault.Switch_restart t -> switch_restart w t
    | Fault.Tcam_loss (t, p) -> tcam_loss w t p
    | Fault.Poller_blackout d -> poller_blackout w d
  in
  (* ---- control rounds + loss integration -------------------------- *)
  let bytes_per_mbps_s = 1e6 /. 8.0 in
  let credit fo ~sw mbps_s =
    fo.fo_carry <-
      fo.fo_carry
      +. (mbps_s *. bytes_per_mbps_s /. float_of_int config.packet_bytes);
    let whole = int_of_float fo.fo_carry in
    if whole > 0 then begin
      fo.fo_carry <- fo.fo_carry -. float_of_int whole;
      fo.fo_lost <- fo.fo_lost + whole;
      Counters.blackhole ~sw ~packets:whole
    end
  in
  (* First failed element on the sub-class's route, in traversal order:
     mirrors the packet simulator's emit-time check. *)
  let first_dead (p : Netstate.pinned) (c : Types.flow_class) =
    let path = c.Types.path in
    let n = Array.length path in
    let rec scan i =
      if i >= n then None
      else if i > 0 && Failmask.link_down mask path.(i - 1) path.(i) then
        let u, v = norm (path.(i - 1), path.(i)) in
        Some (L (u, v), path.(i - 1))
      else if Failmask.switch_down mask path.(i) then
        Some (S path.(i), path.(i))
      else scan (i + 1)
    in
    match scan 0 with
    | Some hit -> Some hit
    | None ->
        Array.fold_left
          (fun acc inst ->
            match acc with
            | Some _ -> acc
            | None ->
                if Failmask.instance_down mask (Instance.id inst) then
                  Some (I (Instance.id inst), Instance.host inst)
                else None)
          None p.Netstate.stage_instances
  in
  let round_tick w =
    if Engine.now w >= !blind_until then Dynamic_handler.step handler
    else Netstate.recompute_loads state;
    if !active <> [] then begin
      let dt = config.round in
      Array.iteri
        (fun h subs ->
          let c = s.Types.classes.(h) in
          if c.Types.rate > 0.0 then
            List.iter
              (fun (p : Netstate.pinned) ->
                if p.Netstate.weight > 0.0 then
                  match first_dead p c with
                  | None -> ()
                  | Some (elem, sw) -> (
                      match
                        List.find_opt (fun (e, _) -> elem_equal e elem) !active
                      with
                      | Some (_, fo) ->
                          credit fo ~sw (c.Types.rate *. p.Netstate.weight *. dt)
                      | None -> ()))
              subs)
        state.Netstate.per_class;
      (* TCAM-loss dark traffic (rule misses, not mask faults). *)
      List.iter
        (fun (e, fo) ->
          match e with
          | T sw when fo.fo_rate > 0.0 -> credit fo ~sw (fo.fo_rate *. dt)
          | T _ | L _ | S _ | I _ | B -> ())
        !active
    end
  in
  Engine.every world ~period:config.round ~until:duration round_tick;
  List.iter
    (fun e ->
      Engine.schedule_at world ~time:e.Fault.at (fun w -> inject w e.Fault.fault))
    schedule;
  Engine.run ~until:(duration +. 1e-9) world;
  (* Freeze. *)
  let faults =
    List.rev_map
      (fun fo ->
        {
          o_at = fo.fo_at;
          o_label = fo.fo_label;
          o_recovery = fo.fo_recovery;
          o_lost = fo.fo_lost;
          o_verdict = fo.fo_verdict;
        })
      !all
  in
  Netstate.recompute_loads state;
  {
    scenario_label = s.Types.topo.Apple_topology.Builders.label;
    seed;
    faults;
    total_lost = List.fold_left (fun acc f -> acc + f.o_lost) 0 faults;
    heals_ok =
      List.length (List.filter (fun f -> f.o_verdict = `Ok) faults);
    heals_rejected =
      List.length
        (List.filter
           (fun f -> match f.o_verdict with `Rejected _ -> true | _ -> false)
           faults);
    final_loss = Netstate.network_loss state;
    log = List.rev !lines;
  }

let render o =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "chaos run: %s, seed %d\n" o.scenario_label o.seed);
  Buffer.add_string b
    (Printf.sprintf
       "%d fault(s), %d packet(s) lost, %d/%d heals verified, final loss %.4f\n"
       (List.length o.faults) o.total_lost o.heals_ok
       (o.heals_ok + o.heals_rejected)
       o.final_loss);
  List.iter (fun line -> Buffer.add_string b (line ^ "\n")) o.log;
  let t =
    Table.create [ "fault"; "t_inject"; "recovery_s"; "pkts_lost"; "verifier" ]
  in
  List.iter
    (fun f ->
      Table.add_row t
        [
          f.o_label;
          Printf.sprintf "%.3f" f.o_at;
          (match f.o_recovery with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-");
          string_of_int f.o_lost;
          (match f.o_verdict with
          | `Ok -> "ok"
          | `Rejected m -> "REJECTED: " ^ m
          | `Skipped -> "open");
        ])
    o.faults;
  Buffer.add_string b (Table.render t);
  if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '\n' then
    Buffer.add_char b '\n';
  Buffer.contents b
