module Engine = Apple_sim.Engine
module T = Apple_telemetry.Telemetry

let m_detections = T.Counter.create "apple.overload.detections"
let m_recoveries = T.Counter.create "apple.overload.recoveries"

type state = Normal | Overloaded

type t = {
  poll_period : float;
  high_watermark : float;
  low_watermark : float;
  mutable state : state;
}

let create ?(poll_period = 0.05) ~high_watermark ~low_watermark () =
  if low_watermark > high_watermark then
    invalid_arg "Overload.create: low watermark above high watermark";
  if poll_period <= 0.0 then invalid_arg "Overload.create: bad poll period";
  { poll_period; high_watermark; low_watermark; state = Normal }

let poll_period t = t.poll_period
let state t = t.state

let observe t ~rate =
  match t.state with
  | Normal when rate > t.high_watermark ->
      t.state <- Overloaded;
      T.Counter.incr m_detections;
      T.Journal.recordf ~kind:"overload" "detector tripped at rate %.3f (high %.3f)"
        rate t.high_watermark;
      (Overloaded, `Went_overloaded)
  | Overloaded when rate <= t.low_watermark ->
      t.state <- Normal;
      T.Counter.incr m_recoveries;
      T.Journal.recordf ~kind:"overload" "detector recovered at rate %.3f (low %.3f)"
        rate t.low_watermark;
      (Normal, `Recovered)
  | s -> (s, `No_change)

let attach t world ~rate ~on_overload ~on_recover ~until =
  Engine.every world ~period:t.poll_period ~until (fun w ->
      match observe t ~rate:(rate ()) with
      | _, `Went_overloaded -> on_overload w
      | _, `Recovered -> on_recover w
      | _, `No_change -> ())
