let src = Logs.Src.create "apple.lp.simplex" ~doc:"APPLE revised simplex solver"

module Log = (val Logs.src_log src : Logs.LOG)
module T = Apple_telemetry.Telemetry

(* Counters mirror the [apple.lp.*] debug trace points so solver
   behaviour is visible without enabling debug logging.  All updates go
   through Atomics, so concurrent per-class solves in pool workers are
   safe. *)
let m_solves = T.Counter.create "apple.lp.solves"
let m_pivots = T.Counter.create "apple.lp.pivots"
let m_phase1_solves = T.Counter.create "apple.lp.phase1_solves"
let m_phase1_skipped = T.Counter.create "apple.lp.phase1_skipped"
let m_bland = T.Counter.create "apple.lp.bland_engagements"
let m_infeasible = T.Counter.create "apple.lp.infeasible"
let m_iter_limit = T.Counter.create "apple.lp.iteration_limit"
let m_pivots_per_solve = T.Histogram.create ~lo:1.0 "apple.lp.pivots_per_solve"

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type problem = {
  num_vars : int;
  num_rows : int;
  col_index : int array array;
  col_value : float array array;
  rhs : float array;
  obj : float array;
  lower : float array;
  upper : float array;
}

type result = {
  status : status;
  objective : float;
  primal : float array;
  duals : float array;
  iterations : int;
}

let eps_reduced = 1e-9
let eps_pivot = 1e-8
let eps_bound = 1e-8

(* Position of a nonbasic variable. *)
type nb_pos = At_lower | At_upper

type state = {
  p : problem;
  (* total columns including artificials appended after p.num_vars *)
  total : int;
  m : int;
  lower : float array;
  upper : float array;
  cost : float array;  (* current-phase cost vector *)
  basis : int array;  (* length m: column index basic in each row *)
  in_basis : bool array;
  nb : nb_pos array;  (* meaningful for nonbasic columns *)
  binv : float array;  (* dense m*m row-major basis inverse *)
  xb : float array;  (* values of basic variables, length m *)
  art_first : int;  (* first artificial column index *)
  art_sign : float array;  (* length m: +-1 sign of artificial of row i *)
}

let col_dot st j y =
  (* y . A_j for a structural/slack column, or the artificial pattern. *)
  if j < st.art_first then begin
    let idx = st.p.col_index.(j) and v = st.p.col_value.(j) in
    let acc = ref 0.0 in
    for k = 0 to Array.length idx - 1 do
      acc := !acc +. (y.(idx.(k)) *. v.(k))
    done;
    !acc
  end
  else
    let row = j - st.art_first in
    y.(row) *. st.art_sign.(row)

(* d := Binv * A_j  (ftran) *)
let ftran st j d =
  Array.fill d 0 st.m 0.0;
  if j < st.art_first then begin
    let idx = st.p.col_index.(j) and v = st.p.col_value.(j) in
    for k = 0 to Array.length idx - 1 do
      let row = idx.(k) and value = v.(k) in
      for i = 0 to st.m - 1 do
        d.(i) <- d.(i) +. (st.binv.((i * st.m) + row) *. value)
      done
    done
  end
  else begin
    let row = j - st.art_first and s = st.art_sign.(j - st.art_first) in
    for i = 0 to st.m - 1 do
      d.(i) <- st.binv.((i * st.m) + row) *. s
    done
  end

let nonbasic_value st j = match st.nb.(j) with
  | At_lower -> st.lower.(j)
  | At_upper -> st.upper.(j)

(* Recompute basic variable values from scratch: xb = Binv (b - N x_N). *)
let refresh_xb st =
  let r = Array.copy st.p.rhs in
  for j = 0 to st.total - 1 do
    if not st.in_basis.(j) then begin
      let x = nonbasic_value st j in
      if x <> 0.0 then
        if j < st.art_first then begin
          let idx = st.p.col_index.(j) and v = st.p.col_value.(j) in
          for k = 0 to Array.length idx - 1 do
            r.(idx.(k)) <- r.(idx.(k)) -. (v.(k) *. x)
          done
        end
        else begin
          let row = j - st.art_first in
          r.(row) <- r.(row) -. (st.art_sign.(row) *. x)
        end
    end
  done;
  for i = 0 to st.m - 1 do
    let acc = ref 0.0 in
    for k = 0 to st.m - 1 do
      acc := !acc +. (st.binv.((i * st.m) + k) *. r.(k))
    done;
    st.xb.(i) <- !acc
  done

(* y = c_B Binv (btran with basic costs). *)
let dual_prices st y =
  for k = 0 to st.m - 1 do
    y.(k) <- 0.0
  done;
  for i = 0 to st.m - 1 do
    let cb = st.cost.(st.basis.(i)) in
    if cb <> 0.0 then
      for k = 0 to st.m - 1 do
        y.(k) <- y.(k) +. (cb *. st.binv.((i * st.m) + k))
      done
  done

exception Found of int

(* Choose the entering column.  [bland] forces smallest-index selection to
   break cycling. *)
let price st y ~bland =
  dual_prices st y;
  if bland then begin
    try
      for j = 0 to st.total - 1 do
        if not st.in_basis.(j) && st.lower.(j) < st.upper.(j) then begin
          let r = st.cost.(j) -. col_dot st j y in
          match st.nb.(j) with
          | At_lower -> if r < -.eps_reduced then raise (Found j)
          | At_upper -> if r > eps_reduced then raise (Found j)
        end
      done;
      None
    with Found j -> Some j
  end
  else begin
    let best = ref (-1) and best_score = ref eps_reduced in
    for j = 0 to st.total - 1 do
      if not st.in_basis.(j) && st.lower.(j) < st.upper.(j) then begin
        let r = st.cost.(j) -. col_dot st j y in
        let score =
          match st.nb.(j) with
          | At_lower -> -.r
          | At_upper -> r
        in
        if score > !best_score then begin
          best := j;
          best_score := score
        end
      end
    done;
    if !best >= 0 then Some !best else None
  end

type ratio_outcome =
  | Unbounded_dir
  | Bound_flip of float  (* step equals entering variable's own range *)
  | Pivot of int * float * nb_pos
      (* leaving row, step, bound the leaving variable settles at *)

(* Ratio test for entering column [j] moving with direction sign [sigma]
   (+1 when increasing from lower bound, -1 when decreasing from upper).
   Basic values move as xb - sigma * t * d. *)
let ratio_test st j sigma d =
  let t_best = ref infinity and row_best = ref (-1) in
  let pivot_best = ref 0.0 in
  let settle = ref At_lower in
  for i = 0 to st.m - 1 do
    let rate = sigma *. d.(i) in
    (* xb_i(t) = xb_i - rate * t *)
    if rate > eps_pivot then begin
      let lb = st.lower.(st.basis.(i)) in
      if lb > neg_infinity then begin
        let t = (st.xb.(i) -. lb) /. rate in
        let t = if t < 0.0 then 0.0 else t in
        if
          t < !t_best -. 1e-12
          || (t < !t_best +. 1e-12 && abs_float rate > abs_float !pivot_best)
        then begin
          t_best := t;
          row_best := i;
          pivot_best := rate;
          settle := At_lower
        end
      end
    end
    else if rate < -.eps_pivot then begin
      let ub = st.upper.(st.basis.(i)) in
      if ub < infinity then begin
        let t = (st.xb.(i) -. ub) /. rate in
        let t = if t < 0.0 then 0.0 else t in
        if
          t < !t_best -. 1e-12
          || (t < !t_best +. 1e-12 && abs_float rate > abs_float !pivot_best)
        then begin
          t_best := t;
          row_best := i;
          pivot_best := rate;
          settle := At_upper
        end
      end
    end
  done;
  let own_range = st.upper.(j) -. st.lower.(j) in
  if own_range < !t_best then Bound_flip own_range
  else if !row_best < 0 then Unbounded_dir
  else Pivot (!row_best, !t_best, !settle)

(* Apply a basis change: entering column j (direction d, sign sigma, step t)
   replaces the basic variable of row r. *)
let pivot st j sigma d r t ~leaving_pos =
  let entering_value =
    (match st.nb.(j) with At_lower -> st.lower.(j) | At_upper -> st.upper.(j))
    +. (sigma *. t)
  in
  (* Move the other basic variables. *)
  for i = 0 to st.m - 1 do
    if i <> r then st.xb.(i) <- st.xb.(i) -. (sigma *. t *. d.(i))
  done;
  let leaving = st.basis.(r) in
  st.in_basis.(leaving) <- false;
  st.nb.(leaving) <- leaving_pos;
  st.basis.(r) <- j;
  st.in_basis.(j) <- true;
  st.xb.(r) <- entering_value;
  (* Product-form update of the dense inverse: row r scaled by 1/d_r, other
     rows get multiples subtracted. *)
  let dr = d.(r) in
  let base_r = r * st.m in
  for k = 0 to st.m - 1 do
    st.binv.(base_r + k) <- st.binv.(base_r + k) /. dr
  done;
  for i = 0 to st.m - 1 do
    if i <> r && d.(i) <> 0.0 then begin
      let f = d.(i) and base_i = i * st.m in
      for k = 0 to st.m - 1 do
        st.binv.(base_i + k) <- st.binv.(base_i + k) -. (f *. st.binv.(base_r + k))
      done
    end
  done

let bound_flip st j range =
  (match st.nb.(j) with
  | At_lower -> st.nb.(j) <- At_upper
  | At_upper -> st.nb.(j) <- At_lower);
  let sigma = match st.nb.(j) with At_upper -> 1.0 | At_lower -> -1.0 in
  let d = Array.make st.m 0.0 in
  ftran st j d;
  for i = 0 to st.m - 1 do
    st.xb.(i) <- st.xb.(i) -. (sigma *. range *. d.(i))
  done

type phase_outcome = Phase_optimal | Phase_unbounded | Phase_iter_limit

(* Run simplex iterations with the current cost vector until optimal. *)
let optimize st ~max_iters iter_count =
  let y = Array.make st.m 0.0 in
  let d = Array.make st.m 0.0 in
  let stall = ref 0 in
  let bland = ref false in
  let outcome = ref None in
  while !outcome = None do
    if !iter_count >= max_iters then outcome := Some Phase_iter_limit
    else begin
      incr iter_count;
      if !iter_count mod 64 = 0 then refresh_xb st;
      match price st y ~bland:!bland with
      | None -> outcome := Some Phase_optimal
      | Some j ->
          let sigma = match st.nb.(j) with At_lower -> 1.0 | At_upper -> -1.0 in
          ftran st j d;
          (match ratio_test st j sigma d with
          | Unbounded_dir -> outcome := Some Phase_unbounded
          | Bound_flip range ->
              bound_flip st j range;
              stall := 0
          | Pivot (r, t, leaving_pos) ->
              if t <= 1e-12 then begin
                incr stall;
                if !stall > 2 * (st.m + 16) && not !bland then begin
                  Log.debug (fun m ->
                      m "anti-cycling: Bland's rule engaged after %d stalled pivots"
                        !stall);
                  T.Counter.incr m_bland;
                  bland := true
                end
              end
              else stall := 0;
              pivot st j sigma d r t ~leaving_pos)
    end
  done;
  match !outcome with Some o -> o | None -> assert false

let objective_value st cost =
  let acc = ref 0.0 in
  for j = 0 to st.total - 1 do
    if not st.in_basis.(j) then begin
      let x = nonbasic_value st j in
      if x <> 0.0 then acc := !acc +. (cost.(j) *. x)
    end
  done;
  for i = 0 to st.m - 1 do
    acc := !acc +. (cost.(st.basis.(i)) *. st.xb.(i))
  done;
  !acc

let extract_primal st =
  let x = Array.make st.p.num_vars 0.0 in
  for j = 0 to st.p.num_vars - 1 do
    if not st.in_basis.(j) then x.(j) <- nonbasic_value st j
  done;
  for i = 0 to st.m - 1 do
    if st.basis.(i) < st.p.num_vars then x.(st.basis.(i)) <- st.xb.(i)
  done;
  x

(* Try to pivot zero-valued artificial variables out of the basis so that
   phase 2 can fix their bounds to [0,0] without losing a basis. *)
let expel_artificials st =
  let d = Array.make st.m 0.0 in
  let y = Array.make st.m 0.0 in
  for i = 0 to st.m - 1 do
    if st.basis.(i) >= st.art_first then begin
      (* Row i of Binv lets us probe pivot magnitudes in O(nnz) per column
         instead of a full ftran. *)
      for k = 0 to st.m - 1 do
        y.(k) <- st.binv.((i * st.m) + k)
      done;
      let found = ref (-1) in
      let j = ref 0 in
      while !found < 0 && !j < st.art_first do
        if
          (not st.in_basis.(!j))
          && st.lower.(!j) < st.upper.(!j)
          && abs_float (col_dot st !j y) > 1e-6
        then found := !j;
        incr j
      done;
      match !found with
      | -1 -> () (* row is redundant; artificial stays basic at 0 *)
      | j ->
          ftran st j d;
          (* Step-0 pivot: swap the basis without moving the solution. *)
          pivot st j 1.0 d i 0.0 ~leaving_pos:At_lower
    end
  done

let solve ?max_iters (p : problem) : result =
  let m = p.num_rows in
  let max_iters =
    match max_iters with Some k -> k | None -> 200 * (m + p.num_vars) + 2000
  in
  let total = p.num_vars + m in
  let lower = Array.make total 0.0 and upper = Array.make total infinity in
  Array.blit p.lower 0 lower 0 p.num_vars;
  Array.blit p.upper 0 upper 0 p.num_vars;
  let cost = Array.make total 0.0 in
  let nb = Array.make total At_lower in
  (* Nonbasic start: every structural/slack at its finite bound closest to
     zero, or zero for free variables (free variables are modelled with
     infinite bounds; they start At_lower with lower=-inf only if upper is
     finite, otherwise we pin them via a zero-width detour).  The models we
     generate always have a finite lower bound, which keeps this simple. *)
  for j = 0 to p.num_vars - 1 do
    if lower.(j) > neg_infinity then nb.(j) <- At_lower
    else if upper.(j) < infinity then nb.(j) <- At_upper
    else begin
      (* Free variable: split into a zero lower bound by shifting is not
         implemented; treat as at value 0 via temporary bounds. *)
      lower.(j) <- 0.0;
      nb.(j) <- At_lower
    end
  done;
  let st =
    {
      p;
      total;
      m;
      lower;
      upper;
      cost;
      basis = Array.init m (fun i -> p.num_vars + i);
      in_basis =
        Array.init total (fun j -> j >= p.num_vars);
      nb;
      binv = Array.init (m * m) (fun k -> if k / m = k mod m then 1.0 else 0.0);
      xb = Array.make m 0.0;
      art_first = p.num_vars;
      art_sign = Array.make m 1.0;
    }
  in
  (* Residual with all structural columns at their nonbasic bounds decides
     each artificial's sign so the initial basis is feasible. *)
  let resid = Array.copy p.rhs in
  for j = 0 to p.num_vars - 1 do
    let x = nonbasic_value st j in
    if x <> 0.0 then begin
      let idx = p.col_index.(j) and v = p.col_value.(j) in
      for k = 0 to Array.length idx - 1 do
        resid.(idx.(k)) <- resid.(idx.(k)) -. (v.(k) *. x)
      done
    end
  done;
  for i = 0 to m - 1 do
    st.art_sign.(i) <- (if resid.(i) >= 0.0 then 1.0 else -1.0);
    st.xb.(i) <- abs_float resid.(i);
    (* The initial basis matrix is diag(art_sign); its inverse is itself,
       not the identity. *)
    st.binv.((i * m) + i) <- st.art_sign.(i)
  done;
  let iter_count = ref 0 in
  (* Phase 1: minimize the sum of artificials. *)
  let phase1_needed = Array.exists (fun v -> abs_float v > eps_bound) st.xb in
  let status = ref Optimal in
  if phase1_needed then begin
    T.Counter.incr m_phase1_solves;
    for i = 0 to m - 1 do
      cost.(p.num_vars + i) <- 1.0
    done;
    (match optimize st ~max_iters iter_count with
    | Phase_iter_limit -> status := Iteration_limit
    | Phase_unbounded ->
        (* Phase-1 objective is bounded below by 0; cannot happen unless
           numerics break down. *)
        status := Infeasible
    | Phase_optimal ->
        let inf = objective_value st cost in
        if inf > 1e-6 then status := Infeasible);
    Log.debug (fun k ->
        k "phase1: %d pivots over %d rows x %d cols, residual infeasibility %g"
          !iter_count m p.num_vars
          (objective_value st cost));
    if !status = Optimal then begin
      expel_artificials st;
      refresh_xb st
    end
  end
  else begin
    T.Counter.incr m_phase1_skipped;
    Log.debug (fun k ->
        k "phase1 skipped: all-bound start already feasible (%d rows x %d cols)"
          m p.num_vars)
  end;
  let phase1_iters = !iter_count in
  if !status = Optimal then begin
    (* Phase 2: real costs, artificials pinned to zero. *)
    Array.fill cost 0 total 0.0;
    Array.blit p.obj 0 cost 0 p.num_vars;
    for i = 0 to m - 1 do
      let a = p.num_vars + i in
      st.lower.(a) <- 0.0;
      st.upper.(a) <- 0.0
    done;
    (match optimize st ~max_iters iter_count with
    | Phase_iter_limit -> status := Iteration_limit
    | Phase_unbounded -> status := Unbounded
    | Phase_optimal -> ());
    Log.debug (fun k ->
        k "phase2: %d pivots (%d total)" (!iter_count - phase1_iters) !iter_count)
  end;
  if !status = Iteration_limit then
    Log.warn (fun k ->
        k "iteration limit hit after %d pivots (%d rows x %d cols); returning \
           the incumbent basis"
          !iter_count m p.num_vars);
  refresh_xb st;
  let primal = extract_primal st in
  let duals = Array.make m 0.0 in
  if !status = Optimal then dual_prices st duals;
  let objective =
    match !status with
    | Optimal | Iteration_limit ->
        let acc = ref 0.0 in
        for j = 0 to p.num_vars - 1 do
          acc := !acc +. (p.obj.(j) *. primal.(j))
        done;
        !acc
    | Infeasible | Unbounded -> nan
  in
  if T.enabled () then begin
    T.Counter.incr m_solves;
    T.Counter.add m_pivots !iter_count;
    T.Histogram.observe m_pivots_per_solve (float_of_int !iter_count);
    (match !status with
    | Infeasible -> T.Counter.incr m_infeasible
    | Iteration_limit -> T.Counter.incr m_iter_limit
    | Optimal | Unbounded -> ())
  end;
  { status = !status; objective; primal; duals; iterations = !iter_count }
