let src = Logs.Src.create "apple.lp.model" ~doc:"APPLE LP/ILP model layer"

module Log = (val Logs.src_log src : Logs.LOG)

type var = int

type sense = Le | Ge | Eq

type status = Optimal | Infeasible | Unbounded | Limit

type solution = {
  status : status;
  objective : float;
  values : float array;
  duals : float array;
}

type constr = {
  c_name : string;
  terms : (float * var) list;  (* duplicates already merged *)
  sense : sense;
  rhs : float;
}

type t = {
  maximize : bool;
  mutable lbs : float list;  (* reversed declaration order *)
  mutable ubs : float list;
  mutable objs : float list;
  mutable ints : bool list;
  mutable names : string list;
  mutable n : int;
  mutable constrs : constr list;  (* reversed *)
  mutable num_constrs : int;
}

let create ?(maximize = false) () =
  {
    maximize;
    lbs = [];
    ubs = [];
    objs = [];
    ints = [];
    names = [];
    n = 0;
    constrs = [];
    num_constrs = 0;
  }

let add_var t ?(lb = 0.0) ?(ub = infinity) ?(integer = false) ?(obj = 0.0)
    ?name () =
  if lb > ub then invalid_arg "Model.add_var: lb > ub";
  let id = t.n in
  let name = match name with Some s -> s | None -> Printf.sprintf "x%d" id in
  t.lbs <- lb :: t.lbs;
  t.ubs <- ub :: t.ubs;
  t.objs <- obj :: t.objs;
  t.ints <- integer :: t.ints;
  t.names <- name :: t.names;
  t.n <- id + 1;
  id

let merge_terms terms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (coef, v) ->
      let prev = try Hashtbl.find tbl v with Not_found -> 0.0 in
      Hashtbl.replace tbl v (prev +. coef))
    terms;
  (* lint: L3 — order erased: terms sorted by variable id below *)
  Hashtbl.fold (fun v coef acc -> if coef = 0.0 then acc else (coef, v) :: acc) tbl []
  |> List.sort (fun (_, v) (_, v') -> Int.compare v v')

let add_constraint t ?name terms sense rhs =
  let c_name =
    match name with Some s -> s | None -> Printf.sprintf "c%d" t.num_constrs
  in
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= t.n then invalid_arg "Model.add_constraint: unknown var")
    terms;
  t.constrs <- { c_name; terms = merge_terms terms; sense; rhs } :: t.constrs;
  t.num_constrs <- t.num_constrs + 1

let set_obj t v coef =
  if v < 0 || v >= t.n then invalid_arg "Model.set_obj: unknown var";
  let objs = Array.of_list t.objs in
  (* objs is reversed: index of var v is (n - 1 - v). *)
  objs.(t.n - 1 - v) <- coef;
  t.objs <- Array.to_list objs

let var_index v = v

let var_name t v =
  if v < 0 || v >= t.n then invalid_arg "Model.var_name: unknown var";
  List.nth t.names (t.n - 1 - v)

let num_vars t = t.n
let num_constraints t = t.num_constrs
let value sol v = sol.values.(v)

let arrays_of t =
  let to_arr l = Array.of_list (List.rev l) in
  (to_arr t.lbs, to_arr t.ubs, to_arr t.objs, to_arr t.ints)

(* Lower the model to Simplex standard form: one slack column per row. *)
let standardize t ~lbs ~ubs ~objs =
  let m = t.num_constrs in
  let n = t.n in
  let total = n + m in
  let cols_idx = Array.make total [||] and cols_val = Array.make total [||] in
  let rhs = Array.make m 0.0 in
  let lower = Array.make total 0.0 and upper = Array.make total infinity in
  Array.blit lbs 0 lower 0 n;
  Array.blit ubs 0 upper 0 n;
  let obj = Array.make total 0.0 in
  let sign = if t.maximize then -1.0 else 1.0 in
  Array.iteri (fun j c -> obj.(j) <- sign *. c) objs;
  (* Collect per-variable row lists. *)
  let acc = Array.make n [] in
  let rows = Array.of_list (List.rev t.constrs) in
  Array.iteri
    (fun i c ->
      rhs.(i) <- c.rhs;
      List.iter (fun (coef, v) -> acc.(v) <- (i, coef) :: acc.(v)) c.terms;
      (* slack column for row i *)
      let sj = n + i in
      cols_idx.(sj) <- [| i |];
      cols_val.(sj) <- [| 1.0 |];
      match c.sense with
      | Le ->
          lower.(sj) <- 0.0;
          upper.(sj) <- infinity
      | Ge ->
          lower.(sj) <- neg_infinity;
          upper.(sj) <- 0.0
      | Eq ->
          lower.(sj) <- 0.0;
          upper.(sj) <- 0.0)
    rows;
  for v = 0 to n - 1 do
    let entries = List.rev acc.(v) in
    cols_idx.(v) <- Array.of_list (List.map fst entries);
    cols_val.(v) <- Array.of_list (List.map snd entries)
  done;
  {
    Simplex.num_vars = total;
    num_rows = m;
    col_index = cols_idx;
    col_value = cols_val;
    rhs;
    obj;
    lower;
    upper;
  }

let solution_of t (res : Simplex.result) =
  let values = Array.sub res.primal 0 t.n in
  let sign = if t.maximize then -1.0 else 1.0 in
  let status =
    match res.status with
    | Simplex.Optimal -> Optimal
    | Simplex.Infeasible -> Infeasible
    | Simplex.Unbounded -> Unbounded
    | Simplex.Iteration_limit -> Limit
  in
  (* The simplex multipliers price the minimization standard form; flip
     them back into the user's objective sense. *)
  let duals = Array.map (fun y -> sign *. y) res.duals in
  { status; objective = sign *. res.objective; values; duals }

let solve_lp_bounds ?max_iters t ~lbs ~ubs ~objs =
  let problem = standardize t ~lbs ~ubs ~objs in
  let res = Simplex.solve ?max_iters problem in
  Log.debug (fun k ->
      k "lp solve: %d vars x %d constraints -> %s in %d pivots" t.n
        t.num_constrs
        (match res.Simplex.status with
        | Simplex.Optimal -> "optimal"
        | Simplex.Infeasible -> "infeasible"
        | Simplex.Unbounded -> "unbounded"
        | Simplex.Iteration_limit -> "iteration-limit")
        res.Simplex.iterations);
  solution_of t res

let solve_lp ?max_iters t =
  let lbs, ubs, objs, _ = arrays_of t in
  solve_lp_bounds ?max_iters t ~lbs ~ubs ~objs

let objective_at t x =
  let _, _, objs, _ = arrays_of t in
  let acc = ref 0.0 in
  Array.iteri (fun j c -> acc := !acc +. (c *. x.(j))) objs;
  !acc

let feasible_with t x =
  let tol = 1e-6 in
  let lbs, ubs, _, ints = arrays_of t in
  let bounds_ok = ref true in
  Array.iteri
    (fun j v ->
      if v < lbs.(j) -. tol || v > ubs.(j) +. tol then bounds_ok := false;
      if ints.(j) && abs_float (v -. Float.round v) > tol then bounds_ok := false)
    x;
  !bounds_ok
  && List.for_all
       (fun c ->
         let lhs =
           List.fold_left (fun acc (coef, v) -> acc +. (coef *. x.(v))) 0.0 c.terms
         in
         match c.sense with
         | Le -> lhs <= c.rhs +. tol
         | Ge -> lhs >= c.rhs -. tol
         | Eq -> abs_float (lhs -. c.rhs) <= tol)
       t.constrs

let solve_round_up ?max_iters t =
  let lbs, ubs, objs, ints = arrays_of t in
  let relax = solve_lp_bounds ?max_iters t ~lbs ~ubs ~objs in
  match relax.status with
  | Optimal | Limit ->
      let values = Array.copy relax.values in
      Array.iteri
        (fun j is_int ->
          if is_int then begin
            let v = values.(j) in
            let rounded =
              (* Snap near-integers instead of inflating them. *)
              if abs_float (v -. Float.round v) < 1e-6 then Float.round v
              else ceil v
            in
            values.(j) <- min rounded ubs.(j)
          end)
        ints;
      { relax with values; objective = objective_at t values }
  | Infeasible | Unbounded -> relax

let fractional_int_var ~ints values =
  (* Most fractional integer variable, if any. *)
  let best = ref (-1) and best_frac = ref 1e-6 in
  Array.iteri
    (fun j is_int ->
      if is_int then begin
        let v = values.(j) in
        let frac = abs_float (v -. Float.round v) in
        let dist = min (v -. floor v) (ceil v -. v) in
        if frac > 1e-6 && dist > !best_frac then begin
          best := j;
          best_frac := dist
        end
      end)
    ints;
  if !best >= 0 then Some !best else None

let solve_ilp ?(max_nodes = 10_000) ?max_iters t =
  let lbs0, ubs0, objs, ints = arrays_of t in
  let sign = if t.maximize then -1.0 else 1.0 in
  (* Internally minimize sign*objective. *)
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  let nodes = ref 0 in
  let truncated = ref false in
  let rec branch lbs ubs =
    if !nodes >= max_nodes then truncated := true
    else begin
      incr nodes;
      let sol = solve_lp_bounds ?max_iters t ~lbs ~ubs ~objs in
      match sol.status with
      | Infeasible -> ()
      | Unbounded ->
          (* An unbounded relaxation makes the ILP unbounded too (our
             models never hit this; be conservative and record nothing). *)
          truncated := true
      | Limit -> truncated := true
      | Optimal ->
          let relax_obj = sign *. sol.objective in
          if relax_obj < !incumbent_obj -. 1e-9 then begin
            match fractional_int_var ~ints sol.values with
            | None ->
                incumbent := Some sol.values;
                incumbent_obj := relax_obj
            | Some j ->
                let v = sol.values.(j) in
                let down_ub = Array.copy ubs and up_lb = Array.copy lbs in
                down_ub.(j) <- floor v;
                up_lb.(j) <- ceil v;
                (* Explore the side closest to the relaxation first. *)
                if v -. floor v <= ceil v -. v then begin
                  if lbs.(j) <= down_ub.(j) then branch lbs down_ub;
                  if up_lb.(j) <= ubs.(j) then branch up_lb ubs
                end
                else begin
                  if up_lb.(j) <= ubs.(j) then branch up_lb ubs;
                  if lbs.(j) <= down_ub.(j) then branch lbs down_ub
                end
          end
    end
  in
  branch lbs0 ubs0;
  match !incumbent with
  | Some values ->
      {
        status = (if !truncated then Limit else Optimal);
        objective = objective_at t values;
        values = Array.map (fun v -> v) values;
        duals = Array.make t.num_constrs 0.0;
      }
  | None ->
      if !truncated then
        let fallback = solve_round_up ?max_iters t in
        { fallback with status = Limit }
      else
        {
          status = Infeasible;
          objective = nan;
          values = Array.make t.n 0.0;
          duals = Array.make t.num_constrs 0.0;
        }

let pp_stats ppf t =
  let _, _, _, ints = arrays_of t in
  let n_int = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 ints in
  let nnz =
    List.fold_left (fun acc c -> acc + List.length c.terms) 0 t.constrs
  in
  Format.fprintf ppf "vars=%d (int=%d) constraints=%d nnz=%d" t.n n_int
    t.num_constrs nnz
