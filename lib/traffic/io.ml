let to_csv tm =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# traffic matrix, Mbps; row = origin, column = destination\n";
  Array.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.6g") row)));
      Buffer.add_char buf '\n')
    tm;
  Buffer.contents buf

let of_csv text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let parse_line lineno line =
    let cells = String.split_on_char ',' line in
    let values =
      List.map
        (fun cell ->
          match float_of_string_opt (String.trim cell) with
          | Some v when Float.is_finite v && v >= 0.0 -> Ok v
          | Some _ -> Error (Printf.sprintf "line %d: negative or non-finite demand" lineno)
          | None -> Error (Printf.sprintf "line %d: %S is not a number" lineno cell))
        cells
    in
    List.fold_right
      (fun v acc ->
        match (v, acc) with
        | Ok x, Ok xs -> Ok (x :: xs)
        | Error e, _ -> Error e
        | _, Error e -> Error e)
      values (Ok [])
  in
  let rec parse lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Ok row -> parse (lineno + 1) (Array.of_list row :: acc) rest
        | Error e -> Error e)
  in
  match parse 1 [] lines with
  | Error e -> Error e
  | Ok [] -> Error "empty matrix"
  | Ok rows ->
      let n = List.length rows in
      if List.for_all (fun r -> Array.length r = n) rows then
        Ok (Array.of_list rows)
      else Error (Printf.sprintf "matrix is not square (%d rows)" n)

let save tm ~path =
  let oc = open_out path in
  output_string oc (to_csv tm);
  close_out oc

let load ~path =
  try
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    of_csv text
  with Sys_error e -> Error e

let save_sequence tms ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iteri
    (fun i tm -> save tm ~path:(Filename.concat dir (Printf.sprintf "tm_%04d.csv" i)))
    tms

let load_sequence ~dir =
  try
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 3
             && String.sub f 0 3 = "tm_"
             && Filename.check_suffix f ".csv")
      |> List.sort String.compare
    in
    if files = [] then Error (Printf.sprintf "no tm_*.csv files in %s" dir)
    else
      List.fold_right
        (fun f acc ->
          match (load ~path:(Filename.concat dir f), acc) with
          | Ok tm, Ok tms -> Ok (tm :: tms)
          | Error e, _ -> Error (f ^ ": " ^ e)
          | _, Error e -> Error e)
        files (Ok [])
  with Sys_error e -> Error e
