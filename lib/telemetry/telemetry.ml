(* Global observability registry.

   Design constraints, in order: (1) the disabled path is one boolean
   load and a branch, so instrumentation can sit on hot paths (simplex
   pivots, pool chunk claims) without moving Table-V timings; (2) every
   update is safe from any domain — counters are atomic, everything
   else takes a short per-metric mutex; (3) nothing here is read back by
   the engines, so telemetry can never change a placement. *)

(* A plain ref, not an Atomic: bool loads cannot tear, and a worker
   domain reading a stale value for a few instructions only delays
   metric visibility, never correctness. *)
let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let sim_clock : (unit -> float) option ref = ref None
let set_sim_clock c = sim_clock := c
let sim_now () = match !sim_clock with Some c -> Some (c ()) | None -> None
let current_sim_clock () = !sim_clock

(* ---- metric structures ------------------------------------------- *)

type counter = { c_name : string; c_value : int Atomic.t }

type gauge = { g_name : string; g_mutex : Mutex.t; mutable g_value : float }

type histogram = {
  h_name : string;
  h_upper : float array;  (* inclusive upper bounds; last is infinity *)
  h_counts : int Atomic.t array;
  h_mutex : Mutex.t;  (* guards the float accumulators below *)
  mutable h_sum : float;
  mutable h_max : float;
}

type span = {
  s_name : string;
  s_mutex : Mutex.t;
  mutable s_count : int;
  mutable s_wall : float;
  mutable s_wall_max : float;
  mutable s_sim : float;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram
  | M_span of span

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* Look up [name], build-and-register with [make] when absent; [cast]
   rejects a name already registered as a different metric type. *)
let intern name ~make ~cast =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match cast m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Telemetry: %S is already registered as a different metric \
                    type"
                   name))
      | None ->
          let v, m = make () in
          Hashtbl.add registry name m;
          v)

module Counter = struct
  type t = counter

  let create name =
    intern name
      ~make:(fun () ->
        let c = { c_name = name; c_value = Atomic.make 0 } in
        (c, M_counter c))
      ~cast:(function M_counter c -> Some c | _ -> None)

  let add c n = if !enabled_flag then ignore (Atomic.fetch_and_add c.c_value n)
  let incr c = add c 1
  let value c = Atomic.get c.c_value
  let name c = c.c_name
end

module Gauge = struct
  type t = gauge

  let create name =
    intern name
      ~make:(fun () ->
        let g = { g_name = name; g_mutex = Mutex.create (); g_value = 0.0 } in
        (g, M_gauge g))
      ~cast:(function M_gauge g -> Some g | _ -> None)

  let set g v =
    if !enabled_flag then begin
      Mutex.lock g.g_mutex;
      g.g_value <- v;
      Mutex.unlock g.g_mutex
    end

  let set_max g v =
    if !enabled_flag then begin
      Mutex.lock g.g_mutex;
      if v > g.g_value then g.g_value <- v;
      Mutex.unlock g.g_mutex
    end

  let value g = g.g_value
  let name g = g.g_name
end

module Histogram = struct
  type t = histogram

  let make_bounds ~lo ~buckets_per_decade ~decades =
    if lo <= 0.0 then invalid_arg "Telemetry.Histogram: lo must be positive";
    if buckets_per_decade < 1 || decades < 1 then
      invalid_arg "Telemetry.Histogram: bucket shape must be positive";
    let n = (buckets_per_decade * decades) + 1 in
    Array.init n (fun i ->
        if i = n - 1 then infinity
        else lo *. (10.0 ** (float_of_int (i + 1) /. float_of_int buckets_per_decade)))

  let create ?(lo = 1e-6) ?(buckets_per_decade = 4) ?(decades = 12) name =
    intern name
      ~make:(fun () ->
        let upper = make_bounds ~lo ~buckets_per_decade ~decades in
        let h =
          {
            h_name = name;
            h_upper = upper;
            h_counts = Array.init (Array.length upper) (fun _ -> Atomic.make 0);
            h_mutex = Mutex.create ();
            h_sum = 0.0;
            h_max = neg_infinity;
          }
        in
        (h, M_histogram h))
      ~cast:(function M_histogram h -> Some h | _ -> None)

  (* Smallest bucket whose inclusive upper bound covers [v]; the
     boundaries are precomputed so membership is exact. *)
  let bucket_index h v =
    let n = Array.length h.h_upper in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= h.h_upper.(mid) then hi := mid else lo := mid + 1
    done;
    !lo

  let observe h v =
    (* NaN would fail every [v <= upper] comparison, land in the overflow
       bucket and poison [h_sum] forever; drop it.  Zero and negative
       values are real observations (an instant duration, a clock that
       went backwards) and land in the smallest bucket, which the binary
       search already guarantees. *)
    if !enabled_flag && not (Float.is_nan v) then begin
      ignore (Atomic.fetch_and_add h.h_counts.(bucket_index h v) 1);
      Mutex.lock h.h_mutex;
      h.h_sum <- h.h_sum +. v;
      if v > h.h_max then h.h_max <- v;
      Mutex.unlock h.h_mutex
    end

  let count h = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.h_counts
  let sum h = h.h_sum
  let max_value h = h.h_max
  let num_buckets h = Array.length h.h_upper
  let bucket_upper h i = h.h_upper.(i)
  let bucket_count h i = Atomic.get h.h_counts.(i)

  let percentile h p =
    let total = count h in
    if total = 0 then nan
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100.0 *. float_of_int total)) in
        if r < 1 then 1 else if r > total then total else r
      in
      let i = ref 0 and cum = ref 0 in
      while !cum < rank do
        cum := !cum + Atomic.get h.h_counts.(!i);
        if !cum < rank then incr i
      done;
      (* The overflow bucket has no finite bound; report the true max. *)
      if h.h_upper.(!i) = infinity then h.h_max else h.h_upper.(!i)
    end

  let name h = h.h_name
end

module Span = struct
  type t = span

  let create name =
    intern name
      ~make:(fun () ->
        let s =
          {
            s_name = name;
            s_mutex = Mutex.create ();
            s_count = 0;
            s_wall = 0.0;
            s_wall_max = 0.0;
            s_sim = 0.0;
          }
        in
        (s, M_span s))
      ~cast:(function M_span s -> Some s | _ -> None)

  let record s ~wall ~sim =
    Mutex.lock s.s_mutex;
    s.s_count <- s.s_count + 1;
    s.s_wall <- s.s_wall +. wall;
    if wall > s.s_wall_max then s.s_wall_max <- wall;
    (match sim with Some d -> s.s_sim <- s.s_sim +. d | None -> ());
    Mutex.unlock s.s_mutex

  let with_ s f =
    if not !enabled_flag then f ()
    else begin
      let w0 = Unix.gettimeofday () in
      let sim0 = sim_now () in
      let finish () =
        let wall = Unix.gettimeofday () -. w0 in
        let sim =
          match (sim0, sim_now ()) with
          | Some a, Some b -> Some (b -. a)
          | _ -> None
        in
        record s ~wall ~sim
      in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e
    end

  let time name f = with_ (create name) f
  let count s = s.s_count
  let wall_seconds s = s.s_wall
  let wall_max s = s.s_wall_max
  let sim_seconds s = s.s_sim
  let name s = s.s_name
end

module Journal = struct
  type entry = {
    seq : int;
    wall : float;
    sim : float option;
    kind : string;
    detail : string;
  }

  let mutex = Mutex.create ()
  let default_capacity = 1024
  let ring : entry option array ref = ref (Array.make default_capacity None)
  let total_recorded = ref 0

  let set_capacity n =
    if n < 1 then invalid_arg "Telemetry.Journal.set_capacity";
    Mutex.lock mutex;
    ring := Array.make n None;
    total_recorded := 0;
    Mutex.unlock mutex

  let capacity () = Array.length !ring

  let clear () =
    Mutex.lock mutex;
    Array.fill !ring 0 (Array.length !ring) None;
    total_recorded := 0;
    Mutex.unlock mutex

  let record ~kind detail =
    if !enabled_flag then begin
      let wall = Unix.gettimeofday () in
      let sim = sim_now () in
      Mutex.lock mutex;
      let seq = !total_recorded in
      !ring.(seq mod Array.length !ring) <- Some { seq; wall; sim; kind; detail };
      total_recorded := seq + 1;
      Mutex.unlock mutex
    end

  let recordf ~kind fmt = Printf.ksprintf (fun s -> record ~kind s) fmt

  let entries () =
    Mutex.lock mutex;
    let cap = Array.length !ring in
    let total = !total_recorded in
    let first = if total > cap then total - cap else 0 in
    let out =
      List.filter_map
        (fun seq -> !ring.(seq mod cap))
        (List.init (total - first) (fun i -> first + i))
    in
    Mutex.unlock mutex;
    out

  let total () = !total_recorded
  let length () = min !total_recorded (Array.length !ring)
  let dropped () = max 0 (!total_recorded - Array.length !ring)
end

(* ---- snapshots ---------------------------------------------------- *)

let sorted_metrics () =
  (* lint: L3 — order erased: sorted by metric name below *)
  let all = with_registry (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry []) in
  let name_of = function
    | M_counter c -> c.c_name
    | M_gauge g -> g.g_name
    | M_histogram h -> h.h_name
    | M_span s -> s.s_name
  in
  List.sort (fun a b -> String.compare (name_of a) (name_of b)) all

let counters () =
  List.filter_map
    (function M_counter c -> Some (c.c_name, Counter.value c) | _ -> None)
    (sorted_metrics ())

let gauges () =
  List.filter_map
    (function M_gauge g -> Some (g.g_name, g.g_value) | _ -> None)
    (sorted_metrics ())

type histogram_summary = {
  h_count : int;
  h_sum : float;
  h_max : float;
  h_p50 : float;
  h_p95 : float;
}

let histograms () =
  List.filter_map
    (function
      | M_histogram h ->
          Some
            ( h.h_name,
              {
                h_count = Histogram.count h;
                h_sum = h.h_sum;
                h_max = h.h_max;
                h_p50 = Histogram.percentile h 50.0;
                h_p95 = Histogram.percentile h 95.0;
              } )
      | _ -> None)
    (sorted_metrics ())

type span_summary = {
  sp_count : int;
  sp_wall : float;
  sp_wall_max : float;
  sp_sim : float;
}

let spans () =
  List.filter_map
    (function
      | M_span s ->
          Some
            ( s.s_name,
              {
                sp_count = s.s_count;
                sp_wall = s.s_wall;
                sp_wall_max = s.s_wall_max;
                sp_sim = s.s_sim;
              } )
      | _ -> None)
    (sorted_metrics ())

let reset () =
  with_registry (fun () ->
      (* lint: L3 — independent per-metric resets; order cannot leak *)
      Hashtbl.iter
        (fun _ m ->
          match m with
          | M_counter c -> Atomic.set c.c_value 0
          | M_gauge g -> g.g_value <- 0.0
          | M_histogram h ->
              Array.iter (fun c -> Atomic.set c 0) h.h_counts;
              h.h_sum <- 0.0;
              h.h_max <- neg_infinity
          | M_span s ->
              s.s_count <- 0;
              s.s_wall <- 0.0;
              s.s_wall_max <- 0.0;
              s.s_sim <- 0.0)
        registry);
  Journal.clear ()

(* ---- exporters ---------------------------------------------------- *)

type format = Text | Json | Prom

let format_of_string = function
  | "text" -> Ok Text
  | "json" -> Ok Json
  | "prom" | "prometheus" -> Ok Prom
  | s -> Error (Printf.sprintf "unknown metrics format %S (expected text|json|prom)" s)

let format_to_string = function Text -> "text" | Json -> "json" | Prom -> "prom"

module Table = Apple_prelude.Text_table

let journal_tail_shown = 20

let render_text () =
  let buf = Buffer.create 1024 in
  let section title table rows =
    if rows <> [] then begin
      Buffer.add_string buf (Printf.sprintf "-- %s --\n" title);
      List.iter (Table.add_row table) rows;
      Buffer.add_string buf (Table.render table);
      Buffer.add_char buf '\n'
    end
  in
  Buffer.add_string buf "== APPLE telemetry report ==\n";
  section "counters"
    (Table.create [ "counter"; "value" ])
    (List.map (fun (n, v) -> [ n; string_of_int v ]) (counters ()));
  section "gauges"
    (Table.create [ "gauge"; "value" ])
    (List.map (fun (n, v) -> [ n; Printf.sprintf "%.4g" v ]) (gauges ()));
  section "histograms"
    (Table.create [ "histogram"; "count"; "mean"; "p50"; "p95"; "max" ])
    (List.filter_map
       (fun (n, s) ->
         if s.h_count = 0 then None
         else
           Some
             [
               n;
               string_of_int s.h_count;
               Printf.sprintf "%.4g" (s.h_sum /. float_of_int s.h_count);
               Printf.sprintf "%.4g" s.h_p50;
               Printf.sprintf "%.4g" s.h_p95;
               Printf.sprintf "%.4g" s.h_max;
             ])
       (histograms ()));
  section "spans"
    (Table.create [ "span"; "count"; "wall total"; "wall mean"; "wall max"; "sim total" ])
    (List.filter_map
       (fun (n, s) ->
         if s.sp_count = 0 then None
         else
           Some
             [
               n;
               string_of_int s.sp_count;
               Printf.sprintf "%.4f s" s.sp_wall;
               Printf.sprintf "%.4f s" (s.sp_wall /. float_of_int s.sp_count);
               Printf.sprintf "%.4f s" s.sp_wall_max;
               (if s.sp_sim > 0.0 then Printf.sprintf "%.4f s" s.sp_sim else "-");
             ])
       (spans ()));
  let entries = Journal.entries () in
  let tail =
    let n = List.length entries in
    if n <= journal_tail_shown then entries
    else List.filteri (fun i _ -> i >= n - journal_tail_shown) entries
  in
  if tail <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "-- journal (last %d of %d, %d dropped) --\n"
         (List.length tail) (Journal.total ()) (Journal.dropped ()));
    let t = Table.create [ "seq"; "sim"; "kind"; "event" ] in
    List.iter
      (fun (e : Journal.entry) ->
        Table.add_row t
          [
            string_of_int e.Journal.seq;
            (match e.Journal.sim with
            | Some s -> Printf.sprintf "%.3f" s
            | None -> "-");
            e.Journal.kind;
            e.Journal.detail;
          ])
      tail;
    Buffer.add_string buf (Table.render t);
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

(* Minimal JSON helpers: we only emit, never parse. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.9g" v
  else if v = infinity then "1e308"
  else if v = neg_infinity then "-1e308"
  else "null"

let render_json_lines () =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (n, v) ->
      line "{\"type\":\"counter\",\"name\":%s,\"value\":%d}" (json_string n) v)
    (counters ());
  List.iter
    (fun (n, v) ->
      line "{\"type\":\"gauge\",\"name\":%s,\"value\":%s}" (json_string n)
        (json_float v))
    (gauges ());
  List.iter
    (fun (n, s) ->
      line
        "{\"type\":\"histogram\",\"name\":%s,\"count\":%d,\"sum\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s}"
        (json_string n) s.h_count (json_float s.h_sum)
        (json_float (if s.h_count = 0 then 0.0 else s.h_max))
        (json_float (if s.h_count = 0 then 0.0 else s.h_p50))
        (json_float (if s.h_count = 0 then 0.0 else s.h_p95)))
    (histograms ());
  List.iter
    (fun (n, s) ->
      line
        "{\"type\":\"span\",\"name\":%s,\"count\":%d,\"wall_seconds\":%s,\"wall_max\":%s,\"sim_seconds\":%s}"
        (json_string n) s.sp_count (json_float s.sp_wall)
        (json_float s.sp_wall_max) (json_float s.sp_sim))
    (spans ());
  List.iter
    (fun (e : Journal.entry) ->
      line
        "{\"type\":\"journal\",\"seq\":%d,\"wall\":%s,\"sim\":%s,\"kind\":%s,\"detail\":%s}"
        e.Journal.seq
        (json_float e.Journal.wall)
        (match e.Journal.sim with Some s -> json_float s | None -> "null")
        (json_string e.Journal.kind)
        (json_string e.Journal.detail))
    (Journal.entries ());
  Buffer.contents buf

let prom_name n =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    n

(* Exposition-format label values escape backslash, double quote and
   newline (and nothing else). *)
let prom_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_prometheus () =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let raw_name = function
    | M_counter c -> c.c_name
    | M_gauge g -> g.g_name
    | M_histogram h -> h.h_name
    | M_span s -> s.s_name
  in
  let emit = function
    | M_counter c ->
        let n = prom_name c.c_name in
        line "# TYPE %s counter" n;
        line "%s %d" n (Counter.value c)
    | M_gauge g ->
        let n = prom_name g.g_name in
        line "# TYPE %s gauge" n;
        line "%s %s" n (json_float g.g_value)
    | M_histogram h ->
        (* Raw cumulative buckets, not the summary. *)
        let n = prom_name h.h_name in
        line "# TYPE %s histogram" n;
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + Atomic.get c;
            let le =
              if h.h_upper.(i) = infinity then "+Inf"
              else json_float h.h_upper.(i)
            in
            line "%s_bucket{le=\"%s\"} %d" n (prom_label_value le) !cum)
          h.h_counts;
        line "%s_sum %s" n (json_float h.h_sum);
        line "%s_count %d" n !cum
    | M_span s ->
        let n = prom_name s.s_name in
        line "# TYPE %s_seconds_total counter" n;
        line "%s_seconds_total %s" n (json_float s.s_wall);
        line "# TYPE %s_count counter" n;
        line "%s_count %d" n s.s_count
  in
  (* One pass, globally ordered by exposition name (raw name breaks
     ties): the output is byte-stable regardless of metric kind or
     registry insertion order.  Sorting by [prom_name] rather than the
     raw name matters — the sanitizer maps '.'/'-' to '_', which does
     not preserve [String.compare] order. *)
  sorted_metrics ()
  |> List.map (fun m -> ((prom_name (raw_name m), raw_name m), m))
  |> List.sort (fun ((pa, ra), _) ((pb, rb), _) ->
         match String.compare pa pb with
         | 0 -> String.compare ra rb
         | c -> c)
  |> List.iter (fun (_, m) -> emit m);
  Buffer.contents buf

let render = function
  | Text -> render_text ()
  | Json -> render_json_lines ()
  | Prom -> render_prometheus ()
