(** Process-wide observability: a metrics registry, timed spans and a
    bounded event journal, with text / JSON-lines / Prometheus exporters.

    The subsystem is {b off by default} and every update site first reads
    one boolean, so instrumented hot paths (simplex pivots, pool chunk
    claims, sim events) cost a load-and-branch when telemetry is
    disabled — the engines' [--jobs] determinism contract and the
    Table-V timings are unaffected.  When enabled, counters use
    [Atomic] and the remaining structures take a short per-metric lock,
    so updates are safe from any domain of the worker pool.

    Telemetry is a side channel: nothing in here feeds back into engine
    decisions, so enabling it never changes placements, rule tables or
    simulation results (enforced by [test/test_parallel.ml]). *)

val enabled : unit -> bool
(** Current state of the global switch (default [false]). *)

val set_enabled : bool -> unit

val reset : unit -> unit
(** Zero every registered metric and span and clear the journal.
    Registered metric handles stay valid (the registry itself is kept). *)

val set_sim_clock : (unit -> float) option -> unit
(** Install (or remove) a virtual-time source.  While installed, spans
    additionally record sim-time durations and journal entries carry a
    sim timestamp.  [Apple_sim.Engine.run] installs its own clock for
    the duration of a run. *)

val sim_now : unit -> float option
(** Current virtual time, when a sim clock is installed. *)

val current_sim_clock : unit -> (unit -> float) option
(** The installed clock itself, for save/restore around nested runs. *)

(** Monotone integer counters (events, pivots, rules, chunks...). *)
module Counter : sig
  type t

  val create : string -> t
  (** Registry-idempotent: [create name] twice returns the same counter.
      Raises [Invalid_argument] if [name] is registered as another
      metric type. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

(** Last-value gauges with an optional high-watermark update. *)
module Gauge : sig
  type t

  val create : string -> t
  val set : t -> float -> unit

  val set_max : t -> float -> unit
  (** Keep the maximum of the current and the given value. *)

  val value : t -> float
  val name : t -> string
end

(** Log-spaced-bucket histograms.

    Bucket [i] holds values [v] with [upper (i-1) < v <= upper i] where
    [upper i = lo * 10^((i+1) / buckets_per_decade)]; values at or below
    [lo] land in bucket 0 and the last bucket is an overflow catching
    everything above the covered decades.  Boundaries are precomputed,
    so membership is exact (no per-observation [log]). *)
module Histogram : sig
  type t

  val create : ?lo:float -> ?buckets_per_decade:int -> ?decades:int -> string -> t
  (** Defaults: [lo = 1e-6], [buckets_per_decade = 4], [decades = 12] —
      1 us to 1 Ms when observing seconds.  Registry-idempotent; the
      shape parameters of the first creation win. *)

  val observe : t -> float -> unit
  (** Count one observation.  NaN is dropped (it would poison the sum and
      misbucket into the overflow bucket); zero and negative values land
      in the smallest bucket; a value exactly on a bucket's upper bound
      lands in that bucket (bounds are inclusive). *)

  val count : t -> int
  val sum : t -> float
  val max_value : t -> float
  (** Largest observed value; [neg_infinity] when empty. *)

  val num_buckets : t -> int

  val bucket_index : t -> float -> int
  (** Bucket an observation of [v] would land in. *)

  val bucket_upper : t -> int -> float
  (** Inclusive upper bound of bucket [i]; [infinity] for the last. *)

  val bucket_count : t -> int -> int

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [0,100]: the upper bound of the first
      bucket whose cumulative count reaches the rank (an upper
      estimate); [nan] when empty. *)

  val name : t -> string
end

(** Named, nestable timed regions, aggregated per name.  Each completed
    region adds its wall-clock duration — and its sim-time duration when
    a sim clock is installed — to the span's totals. *)
module Span : sig
  type t

  val create : string -> t
  val with_ : t -> (unit -> 'a) -> 'a
  (** Time [f] (exceptions included) and record the duration.  When
      telemetry is disabled this is [f ()] with no clock reads. *)

  val time : string -> (unit -> 'a) -> 'a
  (** [with_ (create name) f]. *)

  val count : t -> int
  val wall_seconds : t -> float
  val wall_max : t -> float
  val sim_seconds : t -> float
  val name : t -> string
end

(** Bounded ring-buffer event journal.  When full, the oldest entries
    are overwritten; [dropped] counts the overwritten ones. *)
module Journal : sig
  type entry = {
    seq : int;  (** 0-based global sequence number *)
    wall : float;  (** [Unix.gettimeofday] at record time *)
    sim : float option;  (** virtual time, when a sim clock is installed *)
    kind : string;  (** e.g. ["epoch"], ["lp"], ["failover"] *)
    detail : string;
  }

  val set_capacity : int -> unit
  (** Resize (and clear) the ring.  Default capacity: 1024. *)

  val capacity : unit -> int

  val record : kind:string -> string -> unit

  val recordf : kind:string -> ('a, unit, string, unit) format4 -> 'a
  (** [recordf ~kind fmt ...]: like {!record} with a format string.  The
      arguments are still evaluated when telemetry is disabled; prefer
      {!record} with a literal (or guard with {!enabled}) on hot
      paths. *)

  val entries : unit -> entry list
  (** Chronological (oldest surviving entry first). *)

  val length : unit -> int
  val total : unit -> int
  val dropped : unit -> int
  val clear : unit -> unit
end

(** Snapshot accessors (all sorted by metric name). *)

val counters : unit -> (string * int) list
val gauges : unit -> (string * float) list

type histogram_summary = {
  h_count : int;
  h_sum : float;
  h_max : float;
  h_p50 : float;
  h_p95 : float;
}

val histograms : unit -> (string * histogram_summary) list

type span_summary = {
  sp_count : int;
  sp_wall : float;
  sp_wall_max : float;
  sp_sim : float;
}

val spans : unit -> (string * span_summary) list

(** Exporters. *)

type format = Text | Json | Prom

val format_of_string : string -> (format, string) result
val format_to_string : format -> string

val render : format -> string
(** {!render Text}: aligned tables (counters, gauges, histograms, spans,
    journal tail) via [Apple_prelude.Text_table].  {!render Json}: one
    JSON object per line — metrics first, then journal entries.
    {!render Prom}: Prometheus text exposition format (names sanitized
    to [[a-zA-Z0-9_]], histograms as cumulative [_bucket{le=...}]
    series). *)
