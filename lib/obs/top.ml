module Table = Apple_prelude.Text_table

let render ?(capacities = []) ~now poller =
  let b = Buffer.create 1024 in
  let stale = Poller.staleness poller ~now in
  Buffer.add_string b
    (Printf.sprintf "APPLE dataplane load -- poll #%d, period %.3fs, staleness %s\n"
       (Poller.polls poller) (Poller.period poller)
       (if stale = infinity then "never polled" else Printf.sprintf "%.3fs" stale));
  let switches = Poller.known_switches poller in
  if switches <> [] then begin
    let t = Table.create [ "Switch"; "Match rate"; "Matches"; "Bytes" ] in
    let totals = Counters.switch_totals () in
    List.iter
      (fun sw ->
        let st =
          match List.assoc_opt sw totals with
          | Some st -> st
          | None -> { Counters.r_matches = 0; r_bytes = 0 }
        in
        Table.add_row t
          [
            string_of_int sw;
            Printf.sprintf "%.1f pps" (Poller.switch_match_pps poller sw);
            string_of_int st.Counters.r_matches;
            string_of_int st.Counters.r_bytes;
          ])
      switches;
    Buffer.add_string b (Table.render t);
    Buffer.add_char b '\n'
  end;
  let instances = Poller.known_instances poller in
  if instances = [] then Buffer.add_string b "no instance traffic sampled yet\n"
  else begin
    let t =
      Table.create
        [ "Instance"; "Rate"; "Offered"; "Util"; "Packets"; "Drops"; "Queue"; "Peak" ]
    in
    List.iter
      (fun id ->
        let st = Counters.inst_stats ~id in
        let mbps = Poller.offered_mbps poller id in
        let util =
          match List.assoc_opt id capacities with
          | Some cap when cap > 0.0 -> Printf.sprintf "%.0f%%" (100.0 *. mbps /. cap)
          | Some _ | None -> "-"
        in
        Table.add_row t
          [
            string_of_int id;
            Printf.sprintf "%.1f pps" (Poller.inst_rate_pps poller id);
            Printf.sprintf "%.2f Mbps" mbps;
            util;
            string_of_int st.Counters.i_packets;
            string_of_int st.Counters.i_drops;
            string_of_int st.Counters.i_queue_depth;
            string_of_int st.Counters.i_queue_peak;
          ])
      instances;
    Buffer.add_string b (Table.render t);
    Buffer.add_char b '\n'
  end;
  Buffer.contents b

let summary ~now poller =
  let total_pps =
    List.fold_left
      (fun acc id -> acc +. Poller.inst_rate_pps poller id)
      0.0
      (Poller.known_instances poller)
  in
  Printf.sprintf "poll #%d t=%.3f instances=%d total=%.2f Kpps"
    (Poller.polls poller) now
    (List.length (Poller.known_instances poller))
    (total_pps /. 1000.0)
