module T = Apple_telemetry.Telemetry
module Engine = Apple_sim.Engine

let m_polls = T.Counter.create "apple.obs.polls"

type sample = {
  mutable last_packets : int;
  mutable last_bytes : int;
  mutable pps : float;
  mutable bps : float;
  mutable primed : bool;  (* a rate estimate exists (not just a baseline) *)
}

type t = {
  p_period : float;
  alpha : float;
  insts : (int, sample) Hashtbl.t;
  switches : (int, sample) Hashtbl.t;
  mutable p_last_poll : float option;
  mutable n_polls : int;
}

let create ?(period = 0.05) ?(alpha = 0.5) () =
  if period <= 0.0 then invalid_arg "Poller.create: period must be positive";
  if alpha <= 0.0 || alpha > 1.0 then
    invalid_arg "Poller.create: alpha must be in (0, 1]";
  {
    p_period = period;
    alpha;
    insts = Hashtbl.create 64;
    switches = Hashtbl.create 32;
    p_last_poll = None;
    n_polls = 0;
  }

let period t = t.p_period
let polls t = t.n_polls
let last_poll t = t.p_last_poll

let staleness t ~now =
  match t.p_last_poll with Some p -> now -. p | None -> infinity

let fresh_sample () =
  { last_packets = 0; last_bytes = 0; pps = 0.0; bps = 0.0; primed = false }

let sample_of table key =
  match Hashtbl.find_opt table key with
  | Some s -> s
  | None ->
      let s = fresh_sample () in
      Hashtbl.replace table key s;
      s

(* One counter observation: update the EWMA from the delta when a
   previous poll exists, else just record the baseline. *)
let observe t dt s ~packets ~bytes =
  (match dt with
  | Some dt when dt > 0.0 ->
      let raw_pps = float_of_int (packets - s.last_packets) /. dt in
      let raw_bps = 8.0 *. float_of_int (bytes - s.last_bytes) /. dt in
      if s.primed then begin
        s.pps <- (t.alpha *. raw_pps) +. ((1.0 -. t.alpha) *. s.pps);
        s.bps <- (t.alpha *. raw_bps) +. ((1.0 -. t.alpha) *. s.bps)
      end
      else begin
        s.pps <- raw_pps;
        s.bps <- raw_bps;
        s.primed <- true
      end
  | Some _ | None -> ());
  s.last_packets <- packets;
  s.last_bytes <- bytes

let poll t ~now =
  let dt =
    match t.p_last_poll with Some prev -> Some (now -. prev) | None -> None
  in
  t.p_last_poll <- Some now;
  t.n_polls <- t.n_polls + 1;
  let inst_rows = Counters.inst_snapshot () in
  List.iter
    (fun (id, st) ->
      observe t dt (sample_of t.insts id) ~packets:st.Counters.i_packets
        ~bytes:st.Counters.i_bytes)
    inst_rows;
  List.iter
    (fun (sw, st) ->
      observe t dt (sample_of t.switches sw) ~packets:st.Counters.r_matches
        ~bytes:st.Counters.r_bytes)
    (Counters.switch_totals ());
  if T.enabled () then begin
    T.Counter.incr m_polls;
    List.iter
      (fun (id, _) ->
        match Hashtbl.find_opt t.insts id with
        | Some s when s.primed ->
            T.Gauge.set (T.Gauge.create (Printf.sprintf "apple.obs.inst.%d.pps" id)) s.pps;
            T.Gauge.set
              (T.Gauge.create (Printf.sprintf "apple.obs.inst.%d.mbps" id))
              (s.bps /. 1e6)
        | Some _ | None -> ())
      inst_rows
  end;
  Flight.record Poll ~a:t.n_polls ~b:(List.length inst_rows) ()

let attach t engine ~until =
  Engine.every engine ~period:t.p_period ~until (fun w -> poll t ~now:(Engine.now w))

let rate_of table key f =
  match Hashtbl.find_opt table key with
  | Some s when s.primed -> f s
  | Some _ | None -> 0.0

let inst_rate_pps t id = rate_of t.insts id (fun s -> s.pps)
let inst_rate_bps t id = rate_of t.insts id (fun s -> s.bps)
let offered_mbps t id = inst_rate_bps t id /. 1e6
let switch_match_pps t sw = rate_of t.switches sw (fun s -> s.pps)

let sorted_keys table =
  (* lint: L3 — order erased by the sort *)
  Hashtbl.fold (fun k _ acc -> k :: acc) table [] |> List.sort Int.compare

let known_instances t = sorted_keys t.insts
let known_switches t = sorted_keys t.switches
