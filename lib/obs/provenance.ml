type step =
  | Started of { cls : int; src_ip : int; ingress : int }
  | Matched of { switch : int; rule_uid : int; action : int }
  | Tagged of { subclass : int; host : int }
  | Entered of { switch : int; instance : int }
  | Dropped of { instance : int }
  | Blackholed of { switch : int; detail : int; reason : int }
  | Finished of { error : int; switch : int }

type chain = {
  flow : int;
  steps : (float * step) list;
  rules : (int * int) list;
  instances : int list;
  subclass : int option;
  drops : int;
  outcome : [ `Ok | `Failed of string | `Unknown ];
}

let action_name = function
  | 0 -> "deliver to local host"
  | 1 -> "tag sub-class + deliver to local host"
  | 2 -> "tag sub-class + tag host ID, go to next table"
  | 3 -> "set host ID, go to next table"
  | 4 -> "pass by (go to next table)"
  | n -> Printf.sprintf "action?%d" n

let host_name = function
  | -1 -> "Empty"
  | -2 -> "Fin"
  | h -> Printf.sprintf "host %d" h

let error_name = function
  | 0 -> "ok"
  | 1 -> "no matching rule"
  | 2 -> "vSwitch lookup miss"
  | 3 -> "vSwitch rule loop"
  | 4 -> "delivery to non-local host"
  | 5 -> "link down"
  | 6 -> "switch down"
  | 7 -> "VNF instance dead"
  | n -> Printf.sprintf "error?%d" n

let blackhole_reason = function
  | 0 -> "link down"
  | 1 -> "switch down"
  | 2 -> "VNF instance dead"
  | n -> Printf.sprintf "reason?%d" n

let step_of (e : Flight.event) =
  match e.Flight.kind with
  | Flight.Walk_start ->
      Some (Started { cls = e.Flight.b; src_ip = e.Flight.c; ingress = e.Flight.d })
  | Flight.Rule_match ->
      Some (Matched { switch = e.Flight.b; rule_uid = e.Flight.c; action = e.Flight.d })
  | Flight.Tag_set -> Some (Tagged { subclass = e.Flight.b; host = e.Flight.c })
  | Flight.Inst_enter ->
      Some (Entered { switch = e.Flight.b; instance = e.Flight.c })
  | Flight.Pkt_drop -> Some (Dropped { instance = e.Flight.b })
  | Flight.Blackhole ->
      Some
        (Blackholed { switch = e.Flight.b; detail = e.Flight.c; reason = e.Flight.d })
  | Flight.Walk_end -> Some (Finished { error = e.Flight.b; switch = e.Flight.c })
  | Flight.Poll | Flight.Overload | Flight.Recover | Flight.Epoch
  | Flight.Rules | Flight.Violation | Flight.Note ->
      None

(* The per-flow event kinds all carry the flow id in operand [a]. *)
let flow_of (e : Flight.event) =
  match step_of e with Some _ -> Some e.Flight.a | None -> None

let of_events events ~flow =
  let steps =
    List.filter_map
      (fun e ->
        match step_of e with
        | Some s when e.Flight.a = flow -> Some (e.Flight.time, s)
        | Some _ | None -> None)
      events
  in
  let rules =
    List.filter_map
      (function _, Matched { switch; rule_uid; _ } -> Some (switch, rule_uid) | _ -> None)
      steps
  in
  let instances =
    List.filter_map
      (function _, Entered { instance; _ } -> Some instance | _ -> None)
      steps
  in
  let subclass =
    List.fold_left
      (fun acc -> function _, Tagged { subclass; _ } -> Some subclass | _ -> acc)
      None steps
  in
  let drops =
    List.length
      (List.filter
         (function _, Dropped _ | _, Blackholed _ -> true | _ -> false)
         steps)
  in
  let outcome =
    List.fold_left
      (fun acc -> function
        | _, Finished { error = 0; _ } -> `Ok
        | _, Finished { error; _ } -> `Failed (error_name error)
        | _ -> acc)
      `Unknown steps
  in
  { flow; steps; rules; instances; subclass; drops; outcome }

let flows events =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match flow_of e with
      | Some f ->
          Hashtbl.replace counts f
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts f))
      | None -> ())
    events;
  (* lint: L3 — order erased by the sort below *)
  Hashtbl.fold (fun f n acc -> (f, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let render_step = function
  | Started { cls; src_ip; ingress } ->
      Printf.sprintf "walk start: class %d, src 0x%08x, ingress switch %d" cls
        src_ip ingress
  | Matched { switch; rule_uid; action } ->
      Printf.sprintf "switch %d: TCAM rule #%d matched -> %s" switch rule_uid
        (action_name action)
  | Tagged { subclass; host } ->
      Printf.sprintf "tagged: sub-class %d, host ID %s" subclass (host_name host)
  | Entered { switch; instance } ->
      Printf.sprintf "host at switch %d: entered VNF instance %d" switch instance
  | Dropped { instance } ->
      Printf.sprintf "packet dropped at instance %d (buffer full)" instance
  | Blackholed { switch; detail; reason } ->
      Printf.sprintf "BLACKHOLE at switch %d (%s%s)" switch
        (blackhole_reason reason)
        (match reason with
        | 0 when detail >= 0 -> Printf.sprintf ", peer switch %d" detail
        | 2 when detail >= 0 -> Printf.sprintf ", instance %d" detail
        | _ -> "")
  | Finished { error = 0; _ } -> "walk end: delivered"
  | Finished { error; switch } ->
      Printf.sprintf "walk end: FAILED at switch %d (%s)" switch
        (error_name error)

let render chain =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "flow %d: %d rule match(es), %d instance(s)%s, outcome %s\n"
       chain.flow
       (List.length chain.rules)
       (List.length chain.instances)
       (match chain.subclass with
       | Some s -> Printf.sprintf ", sub-class %d" s
       | None -> "")
       (match chain.outcome with
       | `Ok -> "ok"
       | `Failed e -> "FAILED (" ^ e ^ ")"
       | `Unknown -> "unknown"));
  if chain.drops > 0 then
    Buffer.add_string b (Printf.sprintf "  %d packet drop(s) recorded\n" chain.drops);
  List.iter
    (fun (time, step) ->
      Buffer.add_string b (Printf.sprintf "  [%12.6f] %s\n" time (render_step step)))
    chain.steps;
  Buffer.contents b
