(** Dataplane statistics: per-TCAM-rule match/byte counters and
    per-VNF-instance packet/byte/drop/queue counters, the measurement
    plane an SDN controller actually has (OpenFlow per-rule counters,
    per-port stats).  {!Apple_dataplane.Tcam} bumps rule counters on
    every lookup, {!Apple_packetsim.Packet_sim} bumps instance counters
    on every packet event, and {!Poller} samples both periodically.

    The whole observability subsystem ({!Counters}, {!Flight}) is
    {b off by default} behind one global switch; every update site reads
    one boolean first, so the disabled path costs a load-and-branch and
    enabling it never changes placements, rule tables or simulation
    results (the determinism property of [test/test_obs.ml]).

    Keys are plain ints so the store has no dependency on the dataplane
    types: rules are identified by [(switch, rule uid)] — the uid is
    assigned by {!Apple_dataplane.Tcam} at install time — and instances
    by their {!Apple_vnf.Instance.id}. *)

val enabled : unit -> bool
(** Current state of the global observability switch (default [false]).
    Also gates {!Flight} recording. *)

val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop every rule and instance counter (a fresh measurement epoch). *)

(** {2 Per-rule counters} *)

type rule_stats = {
  r_matches : int;  (** lookups that selected this rule *)
  r_bytes : int;  (** bytes credited to those matches *)
}

val rule_hit : sw:int -> uid:int -> bytes:int -> unit
(** Count one match of rule [uid] on switch [sw] carrying [bytes]. *)

val rule_stats : sw:int -> uid:int -> rule_stats
(** Zeros for rules never hit. *)

val rule_snapshot : unit -> ((int * int) * rule_stats) list
(** All counted rules, sorted by [(switch, uid)]. *)

val switch_totals : unit -> (int * rule_stats) list
(** Per-switch sums over its rules, sorted by switch. *)

(** {2 Per-instance counters} *)

type inst_stats = {
  i_packets : int;
  i_bytes : int;
  i_drops : int;  (** packets lost to the drop-tail buffer *)
  i_queue_depth : int;  (** current queue length *)
  i_queue_peak : int;  (** high watermark of the queue length *)
}

val inst_packet : id:int -> bytes:int -> unit
(** Count one packet served by instance [id]. *)

val inst_traffic : id:int -> packets:int -> bytes:int -> unit
(** Bulk variant for flow-level integrators (many packets at once). *)

val inst_drop : id:int -> unit
val inst_queue : id:int -> depth:int -> unit

val inst_stats : id:int -> inst_stats
(** Zeros for instances never seen. *)

val inst_snapshot : unit -> (int * inst_stats) list
(** All counted instances, sorted by id. *)

(** {2 Blackhole counters}

    Packets lost to a failed network element (dead link, crashed switch,
    dead VNF instance) during a fault window — the chaos engine and the
    packet simulator credit these so [apple trace]/[apple top] can
    explain healing-window loss, distinct from drop-tail drops. *)

val blackhole : sw:int -> packets:int -> unit
(** Credit [packets] blackholed at switch [sw]. *)

val blackhole_snapshot : unit -> (int * int) list
(** Per-switch blackholed packets, sorted by switch. *)
