(** Controller-side counter poller: samples {!Counters} on a period and
    turns cumulative counts into rates, the way a real controller turns
    OpenFlow counter polls into load estimates (paper Sec. VII-B polls
    Open vSwitch per-port packet counters).

    Each poll takes the delta against the previous sample and smooths it
    with an EWMA ([rate <- alpha * raw + (1 - alpha) * rate]); the first
    delta seeds the estimate directly and the very first sight of a
    counter only records a baseline.  Rates are therefore delayed by a
    few poll periods — exactly the detection-latency-vs-poll-period
    trade-off the Fig. 9 polled mode measures.

    When telemetry is enabled, every poll also publishes
    [apple.obs.inst.<id>.pps] / [.mbps] gauges and bumps the
    [apple.obs.polls] counter, so the existing exporters
    ([--metrics text|json|prom]) carry the measurement plane. *)

type t

val create : ?period:float -> ?alpha:float -> unit -> t
(** [period] defaults to 0.05 s (the per-port counter refresh
    granularity of the prototype), [alpha] to 0.5. *)

val period : t -> float

val poll : t -> now:float -> unit
(** Take one sample of every rule and instance counter at time [now]. *)

val attach : t -> Apple_sim.Engine.t -> until:float -> unit
(** Install the polling loop on a simulation world: one {!poll} every
    {!period} until the given absolute time. *)

val polls : t -> int
(** Samples taken so far. *)

(** {2 Instance load estimates} *)

val inst_rate_pps : t -> int -> float
(** Smoothed packet rate of an instance; 0 before two samples. *)

val inst_rate_bps : t -> int -> float
val offered_mbps : t -> int -> float
(** [inst_rate_bps / 1e6] — comparable to
    {!Apple_vnf.Instance.offered}. *)

val known_instances : t -> int list
(** Instance ids ever seen in a sample, sorted. *)

(** {2 Switch load estimates} *)

val switch_match_pps : t -> int -> float
(** Smoothed TCAM match rate of a switch's APPLE table. *)

val known_switches : t -> int list

(** {2 Staleness} *)

val staleness : t -> now:float -> float
(** Seconds since the last poll; [infinity] before the first. *)

val last_poll : t -> float option
