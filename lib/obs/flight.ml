module T = Apple_telemetry.Telemetry

type kind =
  | Walk_start
  | Rule_match
  | Tag_set
  | Inst_enter
  | Walk_end
  | Pkt_drop
  | Poll
  | Overload
  | Recover
  | Epoch
  | Rules
  | Violation
  | Note
  | Blackhole

let kind_code = function
  | Walk_start -> 0
  | Rule_match -> 1
  | Tag_set -> 2
  | Inst_enter -> 3
  | Walk_end -> 4
  | Pkt_drop -> 5
  | Poll -> 6
  | Overload -> 7
  | Recover -> 8
  | Epoch -> 9
  | Rules -> 10
  | Violation -> 11
  | Note -> 12
  | Blackhole -> 13

(* Unknown codes (a newer dump read by older code) decode as [Note]
   rather than failing the whole load. *)
let kind_of_code = function
  | 0 -> Walk_start
  | 1 -> Rule_match
  | 2 -> Tag_set
  | 3 -> Inst_enter
  | 4 -> Walk_end
  | 5 -> Pkt_drop
  | 6 -> Poll
  | 7 -> Overload
  | 8 -> Recover
  | 9 -> Epoch
  | 10 -> Rules
  | 11 -> Violation
  | 13 -> Blackhole
  | _ -> Note

let kind_name = function
  | Walk_start -> "walk-start"
  | Rule_match -> "rule-match"
  | Tag_set -> "tag-set"
  | Inst_enter -> "inst-enter"
  | Walk_end -> "walk-end"
  | Pkt_drop -> "pkt-drop"
  | Poll -> "poll"
  | Overload -> "overload"
  | Recover -> "recover"
  | Epoch -> "epoch"
  | Rules -> "rules"
  | Violation -> "violation"
  | Note -> "note"
  | Blackhole -> "blackhole"

type event = {
  seq : int;
  time : float;
  kind : kind;
  a : int;
  b : int;
  c : int;
  d : int;
}

let slot_bytes = 56
let magic = "APPLFR1\n"
let default_capacity = 4096
let lock = Mutex.create ()
let cap = ref default_capacity
let buf = ref (Bytes.create (default_capacity * slot_bytes))
let total_events = ref 0

let set_capacity n =
  if n <= 0 then invalid_arg "Flight.set_capacity: capacity must be positive";
  Mutex.lock lock;
  cap := n;
  buf := Bytes.create (n * slot_bytes);
  total_events := 0;
  Mutex.unlock lock

let capacity () = !cap
let total () = !total_events
let length () = min !total_events !cap

let clear () =
  Mutex.lock lock;
  total_events := 0;
  Mutex.unlock lock

let now () =
  (* lint: L5 — wall fallback when no sim clock; timestamps are diagnostic metadata *)
  match T.sim_now () with Some t -> t | None -> Unix.gettimeofday ()

let write_slot bytes ~off ~seq ~time ~kcode ~a ~b ~c ~d =
  Bytes.set_int64_le bytes off (Int64.of_int seq);
  Bytes.set_int64_le bytes (off + 8) (Int64.bits_of_float time);
  Bytes.set_int64_le bytes (off + 16) (Int64.of_int kcode);
  Bytes.set_int64_le bytes (off + 24) (Int64.of_int a);
  Bytes.set_int64_le bytes (off + 32) (Int64.of_int b);
  Bytes.set_int64_le bytes (off + 40) (Int64.of_int c);
  Bytes.set_int64_le bytes (off + 48) (Int64.of_int d)

let read_slot bytes ~off =
  {
    seq = Int64.to_int (Bytes.get_int64_le bytes off);
    time = Int64.float_of_bits (Bytes.get_int64_le bytes (off + 8));
    kind = kind_of_code (Int64.to_int (Bytes.get_int64_le bytes (off + 16)));
    a = Int64.to_int (Bytes.get_int64_le bytes (off + 24));
    b = Int64.to_int (Bytes.get_int64_le bytes (off + 32));
    c = Int64.to_int (Bytes.get_int64_le bytes (off + 40));
    d = Int64.to_int (Bytes.get_int64_le bytes (off + 48));
  }

let record ?(a = 0) ?(b = 0) ?(c = 0) ?(d = 0) kind () =
  if Counters.enabled () then begin
    let time = now () in
    Mutex.lock lock;
    let seq = !total_events in
    let off = seq mod !cap * slot_bytes in
    write_slot !buf ~off ~seq ~time ~kcode:(kind_code kind) ~a ~b ~c ~d;
    total_events := seq + 1;
    Mutex.unlock lock
  end

(* Surviving slot offsets, oldest first. *)
let iter_slots f =
  Mutex.lock lock;
  let n = min !total_events !cap in
  let first = !total_events - n in
  for i = 0 to n - 1 do
    f (((first + i) mod !cap) * slot_bytes)
  done;
  Mutex.unlock lock

let events () =
  let acc = ref [] in
  iter_slots (fun off -> acc := read_slot !buf ~off :: !acc);
  List.rev !acc

let dump ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let header = Bytes.create 8 in
      Bytes.set_int64_le header 0 (Int64.of_int (length ()));
      output_bytes oc header;
      iter_slots (fun off -> output_bytes oc (Bytes.sub !buf off slot_bytes)))

let load ~path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let file_len = in_channel_length ic in
          let head_len = String.length magic + 8 in
          if file_len < head_len then Error (path ^ ": truncated flight dump")
          else begin
            let head = really_input_string ic (String.length magic) in
            if head <> magic then Error (path ^ ": not a flight-recorder dump")
            else begin
              let count_bytes = Bytes.create 8 in
              really_input ic count_bytes 0 8;
              let count = Int64.to_int (Bytes.get_int64_le count_bytes 0) in
              if count < 0 || file_len - head_len < count * slot_bytes then
                Error (path ^ ": truncated flight dump")
              else begin
                let body = Bytes.create (count * slot_bytes) in
                really_input ic body 0 (count * slot_bytes);
                let acc = ref [] in
                for i = count - 1 downto 0 do
                  acc := read_slot body ~off:(i * slot_bytes) :: !acc
                done;
                Ok !acc
              end
            end
          end)
