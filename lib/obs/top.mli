(** Rendering for [apple top]: per-switch and per-instance load tables
    built from a {!Poller}'s current estimates.  Pure string rendering —
    printing is the CLI's job (the no-stdout-in-lib gate of
    [tools/lint.sh] holds unconditionally for [lib/obs]). *)

val render :
  ?capacities:(int * float) list ->
  now:float ->
  Poller.t ->
  string
(** Two aligned tables: TCAM match rates per switch, then packet/bit
    rates, drops and queue depths per instance.  [capacities] maps
    instance ids to Mbps so utilization can be shown. *)

val summary : now:float -> Poller.t -> string
(** One status line ("poll #N t=... instances=... total=... Kpps") for
    live refresh loops. *)
