(** Flow provenance: reconstruct "why did this packet take this path?"
    from flight-recorder events — the classification rule that matched,
    the sub-class tag it received, the hosts and VNF instances it
    traversed, and where (if anywhere) the walk went wrong.

    Works on live {!Flight.events} or on a dump reloaded with
    {!Flight.load}, so [apple trace <flow>] can explain a flow from the
    file [apple verify] wrote at violation time. *)

type step =
  | Started of { cls : int; src_ip : int; ingress : int }
  | Matched of { switch : int; rule_uid : int; action : int }
      (** [action] is the {!Flight} action code *)
  | Tagged of { subclass : int; host : int }  (** [host] is a host code *)
  | Entered of { switch : int; instance : int }
  | Dropped of { instance : int }
  | Blackholed of { switch : int; detail : int; reason : int }
      (** a fault-window loss: [reason] 0 = link down (detail = peer
          switch), 1 = switch down, 2 = VNF instance dead (detail =
          instance id) *)
  | Finished of { error : int; switch : int }  (** [error] 0 = clean *)

type chain = {
  flow : int;
  steps : (float * step) list;  (** (time, step), chronological *)
  rules : (int * int) list;  (** (switch, rule uid) matched, in order *)
  instances : int list;  (** instances entered, in order *)
  subclass : int option;  (** last sub-class tag applied *)
  drops : int;  (** buffer drops plus blackholed packets *)
  outcome : [ `Ok | `Failed of string | `Unknown ];
}

val of_events : Flight.event list -> flow:int -> chain
(** Decode the causal chain of one flow.  [outcome] is [`Unknown] when
    no walk-end event survived in the ring. *)

val flows : Flight.event list -> (int * int) list
(** Flow ids appearing in per-flow events, with their event counts,
    sorted by flow id. *)

val action_name : int -> string
(** Human name of a {!Flight.Rule_match} action code. *)

val host_name : int -> string
(** Human name of a host code (id, "Empty" or "Fin"). *)

val error_name : int -> string
(** Human name of a walk error code ("ok" for 0). *)

val blackhole_reason : int -> string
(** Human name of a {!Flight.Blackhole} reason code. *)

val render : chain -> string
(** Multi-line report: one line per step plus a summary header. *)
