(** Flight recorder: a bounded binary ring of dataplane and controller
    events, dumped to disk on a verifier violation or an uncaught CLI
    exception so the causal chain leading to a fault survives the crash
    (same idea as an avionics flight recorder, or Envoy's crash-dump
    trace ring).

    Recording is gated on {!Counters.enabled} (one boolean per event)
    and each event is a fixed 56-byte slot — sequence number, timestamp,
    kind, four integer operands — written into a preallocated ring, so
    the enabled path allocates nothing and the disabled path is a
    load-and-branch.  Timestamps come from the simulation clock when one
    is installed ({!Apple_telemetry.Telemetry.set_sim_clock}), else from
    [Unix.gettimeofday].

    The operand meaning per kind (decoded by {!Provenance}):
    - [Walk_start]: a=flow, b=class, c=src_ip, d=ingress switch
    - [Rule_match]: a=flow, b=switch, c=rule uid, d=action code
      (0 deliver-to-host, 1 tag-and-deliver, 2 tag-and-forward,
      3 set-host-and-forward, 4 pass-by)
    - [Tag_set]: a=flow, b=sub-class tag, c=host code
      (>= 0 host id, -1 Empty, -2 Fin)
    - [Inst_enter]: a=flow, b=switch, c=instance id
    - [Walk_end]: a=flow, b=error code (0 ok, 1 no-matching-rule,
      2 vswitch-miss, 3 host-loop, 4 wrong-host), c=faulting switch
    - [Pkt_drop]: a=flow, b=instance id
    - [Poll]: a=poll ordinal, b=instances sampled
    - [Overload]: a=instance id, b=utilization in 0.1%% units
    - [Recover]: a=instance id
    - [Epoch]: a=classes, b=instances, c=cores
    - [Rules]: a=TCAM entries, b=vSwitch rules, c=global tags
    - [Violation]: a=verifier code ordinal, b=class, c=sub-class,
      d=switch
    - [Blackhole]: a=flow, b=switch, c=detail (peer switch for a dead
      link, instance id for a dead instance, -1 otherwise), d=reason
      (0 link down, 1 switch down, 2 instance dead)
    - [Note]: free-form (also the decode fallback for unknown codes) *)

type kind =
  | Walk_start
  | Rule_match
  | Tag_set
  | Inst_enter
  | Walk_end
  | Pkt_drop
  | Poll
  | Overload
  | Recover
  | Epoch
  | Rules
  | Violation
  | Note
  | Blackhole

val kind_name : kind -> string

type event = {
  seq : int;  (** 0-based global sequence number *)
  time : float;  (** sim time when a sim clock is installed, else wall *)
  kind : kind;
  a : int;
  b : int;
  c : int;
  d : int;
}

val record : ?a:int -> ?b:int -> ?c:int -> ?d:int -> kind -> unit -> unit
(** Append one event when {!Counters.enabled}; otherwise a no-op.
    Omitted operands are 0. *)

val set_capacity : int -> unit
(** Resize (and clear) the ring.  Default capacity: 4096 events. *)

val capacity : unit -> int

val events : unit -> event list
(** Surviving events, oldest first. *)

val length : unit -> int
val total : unit -> int
(** Events ever recorded (>= [length]; the excess was overwritten). *)

val clear : unit -> unit

(** {2 Disk round-trip} *)

val dump : path:string -> unit
(** Write the surviving events to [path] ("APPLFR1\n" magic, little-
    endian 64-bit count, then 56-byte slots oldest first). *)

val load : path:string -> (event list, string) result
(** Read a dump back; [Error] on a missing file or bad magic. *)
