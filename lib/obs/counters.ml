let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled v = enabled_flag := v

type rule_stats = { r_matches : int; r_bytes : int }

type inst_stats = {
  i_packets : int;
  i_bytes : int;
  i_drops : int;
  i_queue_depth : int;
  i_queue_peak : int;
}

(* Mutable cells behind the immutable snapshot types, so a counter bump
   is two field writes under the lock — no allocation. *)
type rule_cell = { mutable c_matches : int; mutable c_bytes : int }

type inst_cell = {
  mutable c_packets : int;
  mutable c_bytes : int;
  mutable c_drops : int;
  mutable c_depth : int;
  mutable c_peak : int;
}

let lock = Mutex.create ()
let rules : (int * int, rule_cell) Hashtbl.t = Hashtbl.create 256
let insts : (int, inst_cell) Hashtbl.t = Hashtbl.create 64

(* Per-switch blackhole tally: packets lost to a failed link, switch or
   instance (a fault-window loss, distinct from a drop-tail drop). *)
let blackholes : (int, int ref) Hashtbl.t = Hashtbl.create 16

let reset () =
  Mutex.lock lock;
  Hashtbl.reset rules;
  Hashtbl.reset insts;
  Hashtbl.reset blackholes;
  Mutex.unlock lock

let rule_cell key =
  match Hashtbl.find_opt rules key with
  | Some c -> c
  | None ->
      let c = { c_matches = 0; c_bytes = 0 } in
      Hashtbl.replace rules key c;
      c

let inst_cell id =
  match Hashtbl.find_opt insts id with
  | Some c -> c
  | None ->
      let c = { c_packets = 0; c_bytes = 0; c_drops = 0; c_depth = 0; c_peak = 0 } in
      Hashtbl.replace insts id c;
      c

let rule_hit ~sw ~uid ~bytes =
  if !enabled_flag then begin
    Mutex.lock lock;
    let c = rule_cell (sw, uid) in
    c.c_matches <- c.c_matches + 1;
    c.c_bytes <- c.c_bytes + bytes;
    Mutex.unlock lock
  end

let inst_traffic ~id ~packets ~bytes =
  if !enabled_flag then begin
    Mutex.lock lock;
    let c = inst_cell id in
    c.c_packets <- c.c_packets + packets;
    c.c_bytes <- c.c_bytes + bytes;
    Mutex.unlock lock
  end

let inst_packet ~id ~bytes = inst_traffic ~id ~packets:1 ~bytes

let inst_drop ~id =
  if !enabled_flag then begin
    Mutex.lock lock;
    let c = inst_cell id in
    c.c_drops <- c.c_drops + 1;
    Mutex.unlock lock
  end

let inst_queue ~id ~depth =
  if !enabled_flag then begin
    Mutex.lock lock;
    let c = inst_cell id in
    c.c_depth <- depth;
    if depth > c.c_peak then c.c_peak <- depth;
    Mutex.unlock lock
  end

let blackhole ~sw ~packets =
  if !enabled_flag then begin
    Mutex.lock lock;
    (match Hashtbl.find_opt blackholes sw with
    | Some r -> r := !r + packets
    | None -> Hashtbl.replace blackholes sw (ref packets));
    Mutex.unlock lock
  end

let blackhole_snapshot () =
  Mutex.lock lock;
  (* lint: L3 — order erased by the sort below *)
  let all = Hashtbl.fold (fun sw r acc -> (sw, !r) :: acc) blackholes [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> Int.compare a b) all

let freeze_rule c = { r_matches = c.c_matches; r_bytes = c.c_bytes }

let freeze_inst c =
  {
    i_packets = c.c_packets;
    i_bytes = c.c_bytes;
    i_drops = c.c_drops;
    i_queue_depth = c.c_depth;
    i_queue_peak = c.c_peak;
  }

let rule_stats ~sw ~uid =
  Mutex.lock lock;
  let r =
    match Hashtbl.find_opt rules (sw, uid) with
    | Some c -> freeze_rule c
    | None -> { r_matches = 0; r_bytes = 0 }
  in
  Mutex.unlock lock;
  r

let inst_stats ~id =
  Mutex.lock lock;
  let r =
    match Hashtbl.find_opt insts id with
    | Some c -> freeze_inst c
    | None ->
        { i_packets = 0; i_bytes = 0; i_drops = 0; i_queue_depth = 0; i_queue_peak = 0 }
  in
  Mutex.unlock lock;
  r

let compare_rule_key (sw, uid) (sw', uid') =
  match Int.compare sw sw' with 0 -> Int.compare uid uid' | n -> n

let rule_snapshot () =
  Mutex.lock lock;
  (* lint: L3 — order erased by the sort below *)
  let all = Hashtbl.fold (fun k c acc -> (k, freeze_rule c) :: acc) rules [] in
  Mutex.unlock lock;
  List.sort (fun (k, _) (k', _) -> compare_rule_key k k') all

let inst_snapshot () =
  Mutex.lock lock;
  (* lint: L3 — order erased by the sort below *)
  let all = Hashtbl.fold (fun k c acc -> (k, freeze_inst c) :: acc) insts [] in
  Mutex.unlock lock;
  List.sort (fun (k, _) (k', _) -> Int.compare k k') all

let switch_totals () =
  let sums = Hashtbl.create 32 in
  List.iter
    (fun ((sw, _), st) ->
      let m, b =
        match Hashtbl.find_opt sums sw with Some (m, b) -> (m, b) | None -> (0, 0)
      in
      Hashtbl.replace sums sw (m + st.r_matches, b + st.r_bytes))
    (rule_snapshot ());
  (* lint: L3 — order erased by the sort below *)
  Hashtbl.fold (fun sw (m, b) acc -> (sw, { r_matches = m; r_bytes = b }) :: acc) sums []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
