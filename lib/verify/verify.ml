module Header = Apple_classifier.Header
module Prefix = Apple_classifier.Prefix_split
module P = Apple_classifier.Predicate
module Rule = Apple_dataplane.Rule
module Tag = Apple_dataplane.Tag
module Tcam = Apple_dataplane.Tcam
module Nf = Apple_vnf.Nf
module Instance = Apple_vnf.Instance
module Types = Apple_core.Types
module Subclass = Apple_core.Subclass
module Rule_generator = Apple_core.Rule_generator
module T = Apple_telemetry.Telemetry

let sp_check = T.Span.create "verify.check"
let tr_check = Apple_trace.Trace.span ~cat:"verify" "verify.check"
let m_walks = T.Counter.create "apple.verify.walks"
let m_violations = T.Counter.create "apple.verify.violations"
let m_certified = T.Counter.create "apple.verify.certified"

type code =
  | Chain_order
  | Path_deviation
  | Blackhole
  | Forwarding_loop
  | Shadowed_rule
  | Tag_collision
  | Isolation
  | Capacity
  | Unverified

let code_name = function
  | Chain_order -> "chain-order"
  | Path_deviation -> "path-deviation"
  | Blackhole -> "blackhole"
  | Forwarding_loop -> "forwarding-loop"
  | Shadowed_rule -> "shadowed-rule"
  | Tag_collision -> "tag-collision"
  | Isolation -> "isolation"
  | Capacity -> "capacity"
  | Unverified -> "unverified"

let all_codes =
  [
    Chain_order; Path_deviation; Blackhole; Forwarding_loop; Shadowed_rule;
    Tag_collision; Isolation; Capacity; Unverified;
  ]

type witness =
  | Packet of Header.packet
  | Block of Prefix.prefix
  | Note of string

type violation = {
  code : code;
  class_id : int option;
  sub_id : int option;
  switch : int option;
  witness : witness;
  detail : string;
}

type report = {
  violations : violation list;
  subclasses : int;
  walks : int;
  phys_rules : int;
  vswitch_rules : int;
  instances : int;
}

let pp_witness ppf = function
  | Packet p -> Format.fprintf ppf "packet %a" Header.pp_packet p
  | Block b -> Format.fprintf ppf "block %a" Prefix.pp_prefix b
  | Note s -> Format.pp_print_string ppf s

let pp_violation ppf v =
  Format.fprintf ppf "[%s]" (code_name v.code);
  Option.iter (fun c -> Format.fprintf ppf " class %d" c) v.class_id;
  Option.iter (fun s -> Format.fprintf ppf " sub %d" s) v.sub_id;
  Option.iter (fun sw -> Format.fprintf ppf " switch %d" sw) v.switch;
  Format.fprintf ppf ": %s (witness: %a)" v.detail pp_witness v.witness

let ok r = r.violations = []
let count r code = List.length (List.filter (fun v -> v.code = code) r.violations)

let summary r =
  if ok r then
    Printf.sprintf
      "certified: %d sub-classes, %d walks, %d+%d rules, %d instances — 0 \
       violations"
      r.subclasses r.walks r.phys_rules r.vswitch_rules r.instances
  else
    let tally =
      List.filter_map
        (fun c ->
          match count r c with
          | 0 -> None
          | n -> Some (Printf.sprintf "%d %s" n (code_name c)))
        all_codes
    in
    Printf.sprintf "%d violation(s): %s"
      (List.length r.violations)
      (String.concat ", " tally)

let pp_report ppf r =
  Format.fprintf ppf "%s@." (summary r);
  List.iter (fun v -> Format.fprintf ppf "  %a@." pp_violation v) r.violations

(* ------------------------------------------------------------------ *)

(* Symbolic walk state: the predicate is the only symbolic dimension
   (rules stamp concrete tags), so tags/instances stay concrete per
   branch. *)
type walk_state = {
  pred : P.t;  (* header points still following this branch *)
  host : Tag.host_field;
  subcls : int option;
  header_valid : bool;  (* false once a rewriting NF touched the packet *)
  insts : int list;  (* visited instances, reverse order *)
}

let host_matches pattern (host : Tag.host_field) =
  match (pattern, host) with
  | `Any, _ -> true
  | `Empty, Tag.Empty -> true
  | `Fin, Tag.Fin -> true
  | `Host h, Tag.Host h' -> h = h'
  | (`Empty | `Fin | `Host _), _ -> false

let subclass_matches pattern sub =
  match (pattern, sub) with
  | `Any, _ -> true
  | `Subclass s, Some s' -> s = s'
  | `Subclass _, None -> false

(* [a] claims every packet [b] can match, over the tag dimensions. *)
let pattern_subsumes (a : Rule.phys_match) (b : Rule.phys_match) =
  (match (a.Rule.m_host, b.Rule.m_host) with
  | `Any, _ -> true
  | `Empty, `Empty | `Fin, `Fin -> true
  | `Host x, `Host y -> x = y
  | (`Empty | `Fin | `Host _), _ -> false)
  &&
  match (a.Rule.m_subclass, b.Rule.m_subclass) with
  | `Any, _ -> true
  | `Subclass x, `Subclass y -> x = y
  | `Subclass _, `Any -> false

(* Some packet can match both [a] and [b] (tag dimensions only). *)
let patterns_overlap (a : Rule.phys_match) (b : Rule.phys_match) =
  (match (a.Rule.m_host, b.Rule.m_host) with
  | `Any, _ | _, `Any -> true
  | `Empty, `Empty | `Fin, `Fin -> true
  | `Host x, `Host y -> x = y
  | (`Empty | `Fin | `Host _), _ -> false)
  &&
  match (a.Rule.m_subclass, b.Rule.m_subclass) with
  | `Any, _ | _, `Any -> true
  | `Subclass x, `Subclass y -> x = y

let phys_action_equal (a : Rule.phys_action) (b : Rule.phys_action) =
  match (a, b) with
  | Rule.Fwd_to_host x, Rule.Fwd_to_host y -> x = y
  | ( Rule.Tag_and_deliver { subclass = s1; host = h1 },
      Rule.Tag_and_deliver { subclass = s2; host = h2 } ) ->
      s1 = s2 && h1 = h2
  | ( Rule.Tag_and_forward { subclass = s1; host = h1 },
      Rule.Tag_and_forward { subclass = s2; host = h2 } ) ->
      s1 = s2 && h1 = h2
  | Rule.Set_host_and_forward x, Rule.Set_host_and_forward y -> x = y
  | Rule.Goto_next, Rule.Goto_next -> true
  | ( ( Rule.Fwd_to_host _ | Rule.Tag_and_deliver _ | Rule.Tag_and_forward _
      | Rule.Set_host_and_forward _ | Rule.Goto_next ),
      _ ) ->
      false

let vswitch_port_id = function
  | Rule.From_network -> -1
  | Rule.From_production_vm -> -2
  | Rule.From_instance i -> i

let vswitch_key_id = function
  | Rule.Per_class { cls; subclass } -> (cls, subclass)
  | Rule.Global g -> (-1, g)

let walk_branch_budget = 4096

let check ?(slack = 1.0001) (s : Types.scenario) (asg : Subclass.assignment)
    (built : Rule_generator.built) =
  T.Span.with_ sp_check @@ fun () ->
  Apple_trace.Trace.with_ tr_check @@ fun () ->
  let env = P.env () in
  let net = built.Rule_generator.network in
  let violations = ref [] in
  let nviol = ref 0 in
  let add ?class_id ?sub_id ?switch ~witness code detail =
    incr nviol;
    violations := { code; class_id; sub_id; switch; witness; detail } :: !violations
  in
  (* A rule with no prefixes matches any source address; a sub-class with
     no prefixes owns no traffic. *)
  let rule_pred prefixes =
    match prefixes with
    | [] -> P.always env
    | ps ->
        List.fold_left
          (fun acc p ->
            P.( ||| ) acc (P.src_prefix_int env p.Prefix.addr p.Prefix.len))
          (P.never env) ps
  in
  let block_pred prefixes =
    match prefixes with [] -> P.never env | ps -> rule_pred ps
  in
  let packet_witness pred =
    match P.witness pred with
    | Some p -> Packet p
    | None -> Note "empty header set"
  in
  (* Per-switch (rule, predicate) arrays in match order, built once. *)
  let table_preds =
    Array.map
      (fun table ->
        lazy
          (Array.of_list
             (List.map
                (fun r -> (r, rule_pred r.Rule.pmatch.Rule.m_prefixes))
                (Tcam.phys_rules table))))
      net
  in
  let preds_of sw = Lazy.force table_preds.(sw) in

  (* --- table well-formedness: fully-shadowed physical rules --------- *)
  Array.iteri
    (fun sw _ ->
      let preds = preds_of sw in
      Array.iteri
        (fun i (r, p) ->
          let covered = ref (P.never env) in
          for j = 0 to i - 1 do
            let rj, pj = preds.(j) in
            if pattern_subsumes rj.Rule.pmatch r.Rule.pmatch then
              covered := P.(!covered ||| pj)
          done;
          if P.subset p !covered then
            add ~switch:sw
              ~witness:(Note (Format.asprintf "%a" Rule.pp_phys_rule r))
              Shadowed_rule
              "rule can never match: higher-priority rules claim its entire \
               match set")
        preds)
    net;

  (* --- table well-formedness: vSwitch pipelines --------------------- *)
  Array.iteri
    (fun sw table ->
      let rules = Tcam.vswitch_rules table in
      (* Group by key, preserving first-seen key order and per-key match
         order. *)
      let groups : (int * int, (int * Rule.vswitch_action) list ref) Hashtbl.t =
        Hashtbl.create 16
      in
      let key_order = ref [] in
      List.iter
        (fun r ->
          let k = vswitch_key_id r.Rule.v_key in
          let port = vswitch_port_id r.Rule.v_port in
          match Hashtbl.find_opt groups k with
          | Some l ->
              if List.mem_assoc port !l then
                add ~switch:sw
                  ~witness:(Note (Format.asprintf "%a" Rule.pp_vswitch_rule r))
                  Shadowed_rule
                  "vSwitch rule repeats an earlier (port, key) match and can \
                   never fire"
              else l := (port, r.Rule.v_action) :: !l
          | None ->
              Hashtbl.add groups k (ref [ (port, r.Rule.v_action) ]);
              key_order := k :: !key_order)
        rules;
      List.iter
        (fun k ->
          let l = List.rev !(Hashtbl.find groups k) in
          let entries = List.filter (fun (p, _) -> p = -1 || p = -2) l in
          List.iter
            (fun (entry, _) ->
              let visited = ref [] in
              let rec step port =
                if List.mem port !visited then
                  add ~switch:sw
                    ~witness:
                      (Note
                         (Printf.sprintf "key (%d,%d) revisits port %d"
                            (fst k) (snd k) port))
                    Forwarding_loop "vSwitch pipeline loops between instances"
                else begin
                  visited := port :: !visited;
                  match List.assoc_opt port l with
                  | None ->
                      add ~switch:sw
                        ~witness:
                          (Note
                             (Printf.sprintf
                                "key (%d,%d) has no rule for instance port %d"
                                (fst k) (snd k) port))
                        Blackhole
                        "vSwitch pipeline dead-ends before Back_to_network"
                  | Some (Rule.To_instance i) -> step i
                  | Some (Rule.Back_to_network _) -> ()
                end
              in
              step entry)
            entries)
        (List.rev !key_order))
    net;

  (* --- tag space ---------------------------------------------------- *)
  let tag_of sub =
    match Hashtbl.find_opt built.Rule_generator.tag_of (Subclass.key sub) with
    | Some t -> t
    | None -> (
        match built.Rule_generator.tag_mode with
        | `Local -> sub.Subclass.sub_id
        | `Global -> -1)
  in
  let seen_tags : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (sub : Subclass.subclass) ->
      let t = tag_of sub in
      let class_id = sub.Subclass.class_id and sub_id = sub.Subclass.sub_id in
      if t < 0 || t >= Tag.max_subclasses then
        add ~class_id ~sub_id
          ~witness:(Note (Printf.sprintf "tag value %d" t))
          Tag_collision
          (Printf.sprintf "sub-class tag outside the %d-bit tag field"
             Tag.subclass_bits);
      let bucket =
        match built.Rule_generator.tag_mode with
        | `Global -> (-1, t)
        | `Local -> (class_id, t)
      in
      match Hashtbl.find_opt seen_tags bucket with
      | Some owner when owner <> Subclass.key sub ->
          add ~class_id ~sub_id
            ~witness:(Note (Printf.sprintf "tag value %d" t))
            Tag_collision
            (Printf.sprintf
               "tag already stamped for sub-class key %d: pipelines would mix"
               owner)
      | Some _ -> ()
      | None -> Hashtbl.add seen_tags bucket (Subclass.key sub))
    asg.Subclass.subclasses;
  (* Overlapping classification rules stamping different tags capture
     each other's traffic no matter the priority tie-break. *)
  Array.iteri
    (fun sw _ ->
      let preds = preds_of sw in
      let classify =
        Array.to_list preds
        |> List.filter (fun ((r : Rule.phys_rule), _) ->
               match r.Rule.action with
               | Rule.Tag_and_deliver _ | Rule.Tag_and_forward _ -> true
               | Rule.Fwd_to_host _ | Rule.Set_host_and_forward _
               | Rule.Goto_next ->
                   false)
      in
      let rec pairs = function
        | [] -> ()
        | (r1, p1) :: rest ->
            List.iter
              (fun (r2, p2) ->
                if
                  patterns_overlap r1.Rule.pmatch r2.Rule.pmatch
                  && not (phys_action_equal r1.Rule.action r2.Rule.action)
                then begin
                  let inter = P.(p1 &&& p2) in
                  if not (P.is_empty inter) then
                    add ~switch:sw ~witness:(packet_witness inter)
                      Tag_collision
                      (Format.asprintf
                         "classification rules overlap with different \
                          actions: {%a} vs {%a}"
                         Rule.pp_phys_rule r1 Rule.pp_phys_rule r2)
                end)
              rest;
            pairs rest
      in
      pairs classify)
    net;

  (* --- per-sub-class symbolic walks --------------------------------- *)
  let inst_by_id = Hashtbl.create 64 in
  List.iter
    (fun i -> Hashtbl.replace inst_by_id (Instance.id i) i)
    asg.Subclass.instances;
  let walks = ref 0 in
  Array.iter
    (fun (c : Types.flow_class) ->
      let class_id = c.Types.id in
      let subs =
        List.filter
          (fun (sub : Subclass.subclass) -> sub.Subclass.class_id = class_id)
          asg.Subclass.subclasses
      in
      if subs <> [] then begin
        let prefixes =
          Rule_generator.subclass_prefixes c subs
            ~depth:built.Rule_generator.split_depth
        in
        let chain = Array.to_list c.Types.chain in
        let plen = Array.length c.Types.path in
        let on_remaining_path h i =
          let rec go j = j < plen && (c.Types.path.(j) = h || go (j + 1)) in
          go (i + 1)
        in
        List.iteri
          (fun s_idx (sub : Subclass.subclass) ->
            let sub_id = sub.Subclass.sub_id in
            let pred0 = block_pred prefixes.(s_idx) in
            if not (P.is_empty pred0) then begin
              let expected_tag = tag_of sub in
              let expected_insts = Subclass.pinned asg sub in
              let budget = ref walk_branch_budget in
              let deviation st sw detail =
                add ~class_id ~sub_id ~switch:sw
                  ~witness:(packet_witness st.pred) Path_deviation detail
              in
              let finish st =
                incr walks;
                let got = List.rev st.insts in
                List.iter
                  (fun id ->
                    if not (Hashtbl.mem inst_by_id id) then
                      add ~class_id ~sub_id ~witness:(packet_witness st.pred)
                        Isolation
                        (Printf.sprintf
                           "walk visits instance %d, which the assignment \
                            never provisioned"
                           id))
                  got;
                let kinds =
                  List.filter_map
                    (fun id ->
                      Option.map Instance.kind (Hashtbl.find_opt inst_by_id id))
                    got
                in
                if kinds <> chain then
                  add ~class_id ~sub_id ~witness:(packet_witness st.pred)
                    Chain_order
                    (Printf.sprintf "chain %s enforced as %s"
                       (Nf.chain_to_string chain)
                       (Nf.chain_to_string kinds));
                (match st.subcls with
                | Some t when t <> expected_tag ->
                    add ~class_id ~sub_id ~witness:(packet_witness st.pred)
                      Tag_collision
                      (Printf.sprintf
                         "traffic classified with tag %d but this sub-class \
                          owns tag %d"
                         t expected_tag)
                | Some _ ->
                    (* Correctly tagged: the walk must use exactly the
                       pinned instances (isolation at the walk level). *)
                    if List.length got = Array.length expected_insts then
                      List.iteri
                        (fun j id ->
                          match expected_insts.(j) with
                          | Some inst when Instance.id inst <> id ->
                              add ~class_id ~sub_id
                                ~witness:(packet_witness st.pred) Isolation
                                (Printf.sprintf
                                   "stage %d served by instance %d instead \
                                    of pinned instance %d"
                                   j id (Instance.id inst))
                          | Some _ | None -> ())
                        got
                | None -> ());
                match (st.subcls, st.host) with
                | Some _, Tag.Fin -> ()
                | Some _, h ->
                    add ~class_id ~sub_id
                      ~witness:(packet_witness st.pred) Path_deviation
                      (Format.asprintf
                         "classified walk ends with host tag %a instead of \
                          fin: remaining processing would leave the routing \
                          path"
                         Tag.pp_host_field h)
                | None, _ -> ()
              in
              let rec hop st i =
                if !budget <= 0 then ()
                else if i >= plen then finish st
                else begin
                  let sw = c.Types.path.(i) in
                  let preds = preds_of sw in
                  let residual = ref st.pred in
                  Array.iter
                    (fun ((r : Rule.phys_rule), rp) ->
                      if
                        (not (P.is_empty !residual))
                        && host_matches r.Rule.pmatch.Rule.m_host st.host
                        && subclass_matches r.Rule.pmatch.Rule.m_subclass
                             st.subcls
                      then begin
                        let hit = P.(!residual &&& rp) in
                        if not (P.is_empty hit) then begin
                          residual := P.diff !residual hit;
                          decr budget;
                          apply { st with pred = hit } r.Rule.action sw i
                        end
                      end)
                    preds;
                  if not (P.is_empty !residual) then
                    add ~class_id ~sub_id ~switch:sw
                      ~witness:(packet_witness !residual) Blackhole
                      (Printf.sprintf "no rule matches at switch %d (hop %d)"
                         sw i)
                end
              and apply st action sw i =
                match action with
                | Rule.Goto_next -> hop st (i + 1)
                | Rule.Fwd_to_host h ->
                    if h <> sw then
                      deviation st sw
                        (Printf.sprintf
                           "switch %d asked to deliver to non-local host %d"
                           sw h)
                    else host_walk st sw i
                | Rule.Tag_and_deliver { subclass; host } ->
                    let st = { st with subcls = Some subclass } in
                    if host <> sw then
                      deviation st sw
                        (Printf.sprintf
                           "switch %d asked to deliver to non-local host %d"
                           sw host)
                    else host_walk st sw i
                | Rule.Tag_and_forward { subclass; host } ->
                    forward { st with subcls = Some subclass } host sw i
                | Rule.Set_host_and_forward host -> forward st host sw i
              and forward st target sw i =
                match target with
                | Tag.Host h when not (on_remaining_path h i) ->
                    deviation st sw
                      (Printf.sprintf
                         "forwarding tag rewires the next hop to host %d, \
                          off the remaining routing path"
                         h)
                | _ -> hop { st with host = target } (i + 1)
              and host_walk st sw i =
                match st.subcls with
                | None ->
                    add ~class_id ~sub_id ~switch:sw
                      ~witness:(packet_witness st.pred) Blackhole
                      "untagged packet delivered to an APPLE host"
                | Some tag ->
                    let table = net.(sw) in
                    let insts = ref st.insts in
                    let header_valid = ref st.header_valid in
                    let steps = ref 0 in
                    let rec step port =
                      incr steps;
                      if !steps > 64 then
                        add ~class_id ~sub_id ~switch:sw
                          ~witness:(packet_witness st.pred) Forwarding_loop
                          "vSwitch pipeline never returns the packet to the \
                           network"
                      else begin
                        let cls =
                          if !header_valid then Some class_id else None
                        in
                        match
                          Tcam.lookup_vswitch table port ~cls ~subclass:tag
                        with
                        | None ->
                            add ~class_id ~sub_id ~switch:sw
                              ~witness:(packet_witness st.pred) Blackhole
                              (Printf.sprintf
                                 "vSwitch miss at switch %d for tag %d" sw tag)
                        | Some (Rule.To_instance inst) ->
                            insts := inst :: !insts;
                            (match Hashtbl.find_opt inst_by_id inst with
                            | Some i
                              when Nf.rewrites_header (Instance.kind i) ->
                                header_valid := false
                            | Some _ | None -> ());
                            step (Rule.From_instance inst)
                        | Some (Rule.Back_to_network target) ->
                            forward
                              {
                                st with
                                insts = !insts;
                                header_valid = !header_valid;
                              }
                              target sw i
                      end
                    in
                    step Rule.From_network
              in
              hop
                {
                  pred = pred0;
                  host = Tag.Empty;
                  subcls = None;
                  header_valid = true;
                  insts = [];
                }
                0;
              if !budget <= 0 then
                add ~class_id ~sub_id ~witness:(Block (List.hd prefixes.(s_idx)))
                  Unverified
                  "symbolic branch budget exhausted before certifying the \
                   sub-class"
            end)
          subs
      end)
    s.Types.classes;

  (* --- isolation & capacity ----------------------------------------- *)
  let offered : (int, float ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (sub : Subclass.subclass) ->
      let class_id = sub.Subclass.class_id and sub_id = sub.Subclass.sub_id in
      let c = s.Types.classes.(class_id) in
      let share = c.Types.rate *. sub.Subclass.weight in
      let pins = Subclass.pinned asg sub in
      let seen_stage = ref [] in
      Array.iteri
        (fun j pin ->
          match pin with
          | None ->
              add ~class_id ~sub_id
                ~witness:(Note (Printf.sprintf "stage %d" j))
                Isolation "chain stage has no pinned instance"
          | Some inst ->
              let id = Instance.id inst in
              if Instance.kind inst <> c.Types.chain.(j) then
                add ~class_id ~sub_id
                  ~witness:
                    (Note
                       (Printf.sprintf "instance %d is a %s" id
                          (Nf.name (Instance.kind inst))))
                  Isolation
                  (Printf.sprintf "stage %d needs a %s instance" j
                     (Nf.name c.Types.chain.(j)));
              let hop_sw = c.Types.path.(sub.Subclass.hops.(j)) in
              if Instance.host inst <> hop_sw then
                add ~class_id ~sub_id ~switch:hop_sw
                  ~witness:
                    (Note
                       (Printf.sprintf "instance %d lives at switch %d" id
                          (Instance.host inst)))
                  Isolation
                  (Printf.sprintf
                     "stage %d pinned to an instance off its hop switch %d" j
                     hop_sw);
              if List.mem id !seen_stage then
                add ~class_id ~sub_id
                  ~witness:(Note (Printf.sprintf "instance %d" id))
                  Isolation "one instance serves two positions of the chain";
              seen_stage := id :: !seen_stage;
              let cell =
                match Hashtbl.find_opt offered id with
                | Some r -> r
                | None ->
                    let r = ref 0.0 in
                    Hashtbl.add offered id r;
                    r
              in
              cell := !cell +. share)
        pins)
    asg.Subclass.subclasses;
  List.iter
    (fun inst ->
      let id = Instance.id inst in
      let load =
        match Hashtbl.find_opt offered id with Some r -> !r | None -> 0.0
      in
      let cap = (Instance.spec inst).Nf.capacity_mbps in
      if load > (slack *. cap) +. 1e-6 then
        add
          ~witness:
            (Note
               (Printf.sprintf "instance %d at switch %d: %.1f / %.1f Mbps" id
                  (Instance.host inst) load cap))
          Capacity
          "summed sub-class portions exceed the instance's capacity")
    asg.Subclass.instances;

  let report =
    {
      violations = List.rev !violations;
      subclasses = List.length asg.Subclass.subclasses;
      walks = !walks;
      phys_rules =
        Array.fold_left
          (fun acc t -> acc + List.length (Tcam.phys_rules t))
          0 net;
      vswitch_rules = Tcam.total_vswitch net;
      instances = List.length asg.Subclass.instances;
    }
  in
  if T.enabled () then begin
    T.Counter.add m_walks report.walks;
    T.Counter.add m_violations (List.length report.violations);
    if ok report then T.Counter.incr m_certified;
    T.Journal.recordf ~kind:"verify" "verify: %s" (summary report)
  end;
  report

let gate s asg built =
  let r = check s asg built in
  if ok r then Ok ()
  else
    let head =
      match r.violations with
      | v :: _ -> Format.asprintf " — first: %a" pp_violation v
      | [] -> ""
    in
    Error (summary r ^ head)
