(** Static dataplane verifier: machine-checks APPLE's three guarantees
    (paper Sec. III) over a generated configuration {e before} it is
    installed.

    The Rule Generator emits physical-switch and vSwitch tables realizing
    a sub-class assignment.  {!check} proves, per sub-class, by symbolic
    header-space exploration (reusing the BDD predicate machinery of
    [apple_classifier]):

    - {b chain order} — every packet walk reachable from the sub-class's
      source block visits its policy chain's NF kinds in order, exactly
      once each;
    - {b interference freedom} — the switch-level projection of every walk
      equals the routing path chosen before placement: deliveries happen
      only at local hops, every forwarding tag points to a later hop of
      the path, and classified traffic finishes with the [Fin] tag;
    - {b isolation & capacity} — each pinned instance has the NF kind of
      its chain stage, lives at the hop switch it serves, never serves two
      positions of one walk, and the summed pinned traffic portions
      respect instance capacity.

    On top of the per-sub-class invariants, the tables themselves are
    checked for well-formedness: fully-shadowed TCAM rules (a rule whose
    whole match set is claimed by higher-priority rules), vSwitch
    forwarding loops and dead-end pipelines, and tag-space collisions
    (12-bit overflow, duplicate tag values, overlapping classification
    rules that stamp different tags).

    Every failure is reported as a structured {!violation} carrying a
    concrete witness — a header point produced by the BDD [any_sat], a
    source block, or the offending rule — so a rejected configuration is
    debuggable without replaying traffic.

    The symbolic walk mirrors {!Apple_dataplane.Walk.run}: switch tables
    are consulted highest priority first, the residual (unmatched) header
    space flows to the next rule, and every non-empty intersection forks
    one branch.  Tag state is concrete (rules stamp constants), so the
    only symbolic dimension is the source address: the walk count stays
    linear in practice — one branch per sub-class plus one pass-by branch
    — and the whole analysis is O(rules²) BDD operations per switch in
    the worst case. *)

module Types = Apple_core.Types
module Subclass = Apple_core.Subclass
module Rule_generator = Apple_core.Rule_generator

(** Fault classes.  Mutation tests inject one fault per class and assert
    the verifier flags exactly that class with a witness. *)
type code =
  | Chain_order  (** walk skips, repeats or reorders chain stages *)
  | Path_deviation
      (** delivery to a non-local host, a forwarding tag pointing off the
          remaining routing path, or classified traffic ending without
          [Fin] — the walk cannot complete on the chosen path *)
  | Blackhole
      (** a reachable packet matches no physical rule, or a vSwitch
          pipeline dead-ends before [Back_to_network] *)
  | Forwarding_loop  (** a vSwitch pipeline revisits a port *)
  | Shadowed_rule
      (** a rule (physical or vSwitch) that can never match because
          earlier rules claim its entire match set *)
  | Tag_collision
      (** tag outside the 12-bit field, two sub-classes sharing a tag,
          overlapping classification rules stamping different tags, or a
          walk classified into a foreign sub-class's tag *)
  | Isolation
      (** a stage without a pinned instance, a pinned instance of the
          wrong NF kind or living off its hop switch, one instance
          serving two positions of a walk, or a walk processed by
          instances the assignment never pinned for it *)
  | Capacity  (** summed pinned portions exceed an instance's capacity *)
  | Unverified
      (** the analysis budget was exhausted before certifying the
          sub-class; the configuration must not be trusted *)

val code_name : code -> string
(** Stable kebab-case identifier, e.g. ["chain-order"]. *)

type witness =
  | Packet of Apple_classifier.Header.packet
      (** concrete header reaching the fault *)
  | Block of Apple_classifier.Prefix_split.prefix
      (** source block exhibiting the fault *)
  | Note of string  (** offending rule or load figure, pretty-printed *)

type violation = {
  code : code;
  class_id : int option;
  sub_id : int option;
  switch : int option;
  witness : witness;
  detail : string;
}

type report = {
  violations : violation list;  (** detection order; empty = certified *)
  subclasses : int;  (** sub-classes analyzed *)
  walks : int;  (** symbolic walks completed *)
  phys_rules : int;  (** physical rules inspected *)
  vswitch_rules : int;  (** vSwitch rules inspected *)
  instances : int;  (** provisioned instances audited *)
}

val check :
  ?slack:float ->
  Types.scenario ->
  Subclass.assignment ->
  Rule_generator.built ->
  report
(** Run the full static analysis.  [slack] (default 1.0001) is the
    multiplicative headroom allowed on instance capacity, matching
    {!Subclass.instance_load_ok}.  Deterministic: violations come out in
    a fixed order for a given configuration. *)

val ok : report -> bool
val count : report -> code -> int
(** Violations of one fault class in the report. *)

val summary : report -> string
(** One line: certification or the violation tally by fault class. *)

val gate :
  Types.scenario ->
  Subclass.assignment ->
  Rule_generator.built ->
  (unit, string) result
(** {!check} shaped as a {!Apple_core.Controller.gate}: [Ok ()] on a
    certified configuration, [Error (summary ^ first violations)]
    otherwise.  Install with
    [Controller.create ~gate:Verify.gate scenario]. *)

val pp_witness : Format.formatter -> witness -> unit
val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
(** Full human-readable report: the scorecard then every violation. *)
