(** Online VNF placement for newly-arriving flows (the future-work
    extension sketched in Sec. IV: the Optimization Engine handles the
    global problem; new classes between optimization epochs are placed
    greedily without disturbing existing assignments).

    For each arriving class the engine walks its path once per chain
    stage, preferring (in order):

    + an existing instance of the right kind on the path with spare
      capacity at or after the previous stage's hop;
    + a new instance at a switch that already runs instances (consolidate
      hardware);
    + a new instance at any switch on the path with spare cores.

    The result extends a {!Netstate.t} in place — the same state the
    Dynamic Handler operates on — so online arrivals and fast failover
    compose.  A competitive-ratio harness against the global ILP lives in
    the bench. *)

type outcome = {
  accepted : bool;
  new_instances : Apple_vnf.Instance.t list;  (** spawned for this class *)
  subclass : Netstate.pinned option;  (** the class's single sub-class *)
}

val admit : Netstate.t -> Types.flow_class -> outcome
(** Place one new class.  On success the class's sub-class (full weight)
    is appended to the state and instance loads are updated.  On failure
    (no feasible placement without violating capacity or core budgets)
    the state is unchanged and [accepted = false].

    The class must already carry its routing path and must use a class id
    that does not collide with existing entries of the state's scenario
    (the caller extends [scenario.classes] first — see {!extend_scenario}). *)

val admit_batch : ?jobs:int -> Netstate.t -> Types.flow_class array -> outcome array
(** Admit a burst of arrivals.  Placements are {e planned} in parallel
    across [jobs] domains (default {!Apple_parallel.Pool.default_jobs})
    against a snapshot of the state, then validated and committed
    serially in arrival order; a plan invalidated by an earlier arrival
    in the batch is re-planned against the live state.  The outcomes —
    acceptances, launched instances, sub-classes — are identical for
    every [jobs] value.  Classes must carry consecutive ids continuing
    the state's scenario, exactly as a sequential [admit] fold would
    require. *)

val extend_scenario : Types.scenario -> Types.flow_class -> Types.scenario
(** Functional append of a class (fresh arrays; shared topology). *)

val total_instances : Netstate.t -> int
(** Instances currently provisioned in the state's orchestrator. *)

val total_cores : Netstate.t -> int
