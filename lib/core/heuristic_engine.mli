(** Greedy VNF placement heuristic — the paper's future-work answer for
    "gigantic networks including hundreds of switches" where even the
    LP relaxation gets slow (end of Sec. IV-D).

    Classes are processed in descending rate.  Each class is placed in
    {e slices}: a slice picks one hop per chain stage (non-decreasing, so
    chain order holds by construction), preferring hops whose site
    already has spare instance capacity, then sites needing the fewest
    new cores, breaking ties toward the most-traversed switch (hub
    consolidation).  The slice size is the bottleneck spare capacity, so
    each slice either fills an instance or opens exactly one new site.

    Produces the same {!Optimization_engine.placement} record as the LP
    engine, so all downstream machinery (sub-classes, rules, failover)
    and the {!Optimization_engine.check_distribution} validator apply
    unchanged.  Quality vs. the LP engine is quantified by the bench's
    ablation table. *)

val solve :
  ?objective:Optimization_engine.objective ->
  ?jobs:int ->
  Types.scenario ->
  Optimization_engine.placement
(** Raises {!Optimization_engine.Infeasible} when the host core budgets
    cannot accommodate the load.  [jobs] (default
    {!Apple_parallel.Pool.default_jobs}) parallelizes the pure per-class
    precomputation; the greedy placement itself is serial and the result
    is identical for every [jobs]. *)
