(** The APPLE controller: the top-level façade gluing the Optimization
    Engine, Resource Orchestrator, Rule Generator and Dynamic Handler
    together (Fig. 1 of the paper).

    Typical use:
    {[
      let controller = Controller.create scenario in
      let report = Controller.run_epoch controller in
      (* ... traffic arrives ... *)
      Controller.handle_snapshot controller tm;  (* per snapshot *)
    ]}

    [run_epoch] is the large-time-scale loop (periodic global
    re-optimization); [handle_snapshot] is the small-time-scale loop
    (rate refresh + fast failover). *)

type t

type epoch_report = {
  placement : Optimization_engine.placement;
  rules : Rule_generator.built;
  instances : int;
  cores : int;
  tcam_entries : int;
  solve_seconds : float;
}

type engine = [ `Best | `Lp | `Per_class | `Greedy ]
(** Placement engine for the epoch: the LP/greedy selector (default),
    the monolithic LP pipeline, the parallel per-class decomposition, or
    the greedy heuristic alone. *)

val create :
  ?objective:Optimization_engine.objective ->
  ?engine:engine ->
  ?jobs:int ->
  ?failover:Dynamic_handler.config ->
  Types.scenario ->
  t
(** [jobs] bounds the domains used by the [`Per_class] and [`Greedy]
    engines' parallel sections (default
    {!Apple_parallel.Pool.default_jobs}); placements are identical for
    every value. *)

val run_epoch : t -> epoch_report
(** Global optimization for the scenario's current rates: solve, pin
    sub-classes, generate rules, (re)build the network state.  Raises
    {!Optimization_engine.Infeasible} if the hosts cannot carry the load. *)

val handle_snapshot : t -> Apple_traffic.Matrix.t -> float
(** Update class rates from a snapshot, run one Dynamic-Handler round, and
    return the network loss rate for this snapshot.  Requires a prior
    {!run_epoch}. *)

val scenario : t -> Types.scenario
val netstate : t -> Netstate.t option
val last_report : t -> epoch_report option

val verify : t -> (unit, string) result
(** End-to-end self-check of the current epoch: distribution constraints
    (Eq. 2–6), sub-class weight consistency, instance-capacity respect,
    and packet walks proving policy enforcement and interference freedom
    for every sub-class. *)
