(** The APPLE controller: the top-level façade gluing the Optimization
    Engine, Resource Orchestrator, Rule Generator and Dynamic Handler
    together (Fig. 1 of the paper).

    Typical use:
    {[
      let controller = Controller.create scenario in
      let report = Controller.run_epoch controller in
      (* ... traffic arrives ... *)
      Controller.handle_snapshot controller tm;  (* per snapshot *)
    ]}

    [run_epoch] is the large-time-scale loop (periodic global
    re-optimization); [handle_snapshot] is the small-time-scale loop
    (rate refresh + fast failover). *)

type t

type epoch_report = {
  placement : Optimization_engine.placement;
  rules : Rule_generator.built;
  instances : int;
  cores : int;
  tcam_entries : int;
  solve_seconds : float;
}

type engine = [ `Best | `Lp | `Per_class | `Greedy ]
(** Placement engine for the epoch: the LP/greedy selector (default),
    the monolithic LP pipeline, the parallel per-class decomposition, or
    the greedy heuristic alone. *)

type gate =
  Types.scenario ->
  Subclass.assignment ->
  Rule_generator.built ->
  (unit, string) result
(** Admission check run on every generated configuration before it is
    installed.  [Apple_verify.Verify.gate] is the intended instance (the
    dependency points the other way, so the verifier is injected rather
    than imported). *)

type shape = Types.scenario -> Subclass.assignment -> Subclass.assignment
(** Post-placement assignment rewrite applied between {!Subclass.assign}
    and rule generation — the slicing layer's tenant-isolation pass
    re-homes isolated slices onto dedicated instance clones here, so the
    generated tables (and the gate's proofs) see the final pinning. *)

exception Rejected of string
(** Raised by {!run_epoch} when the gate refuses the configuration; the
    previously installed epoch (if any) stays live. *)

val create :
  ?objective:Optimization_engine.objective ->
  ?engine:engine ->
  ?jobs:int ->
  ?failover:Dynamic_handler.config ->
  ?load_source:Dynamic_handler.load_source ->
  ?gate:gate ->
  ?shape:shape ->
  Types.scenario ->
  t
(** [jobs] bounds the domains used by the [`Per_class] and [`Greedy]
    engines' parallel sections (default
    {!Apple_parallel.Pool.default_jobs}); placements are identical for
    every value.  [load_source] (default [Oracle]) is forwarded to the
    Dynamic Handler built on each epoch.  [gate] (none by default) vets
    each epoch's rule tables before installation; [shape] (none by
    default) rewrites the assignment before rules are generated. *)

val run_epoch : t -> epoch_report
(** Global optimization for the scenario's current rates: solve, pin
    sub-classes, generate rules, gate-check them (when a gate was given),
    and (re)build the network state.  Raises
    {!Optimization_engine.Infeasible} if the hosts cannot carry the load
    and {!Rejected} if the gate refuses the configuration. *)

val handle_snapshot : t -> Apple_traffic.Matrix.t -> float
(** Update class rates from a snapshot, run one Dynamic-Handler round, and
    return the network loss rate for this snapshot.  Requires a prior
    {!run_epoch}. *)

val scenario : t -> Types.scenario
val netstate : t -> Netstate.t option
val last_report : t -> epoch_report option

val assignment : t -> Subclass.assignment option
(** Sub-class assignment of the last installed epoch, if any — the
    ground truth [apple top] and [apple trace] need to synthesize
    representative flows per sub-class. *)

val handler : t -> Dynamic_handler.t option
(** The Dynamic Handler of the current epoch — the chaos engine drives
    its repair path directly. *)

val reinstall_rules : t -> Rule_generator.built
(** Regenerate and install the rule tables from the current scenario and
    assignment — the recovery action after TCAM rule loss or a heal.
    The epoch report is updated in place; previously obtained
    {!epoch_report.rules} values are stale afterwards.  Requires a prior
    {!run_epoch}. *)

val recheck_gate : t -> (unit, string) result
(** Re-run the admission gate against the currently installed tables
    (trivially [Ok] when no gate was configured) — every healed epoch
    must pass before the chaos engine calls recovery complete. *)

val heal_instance :
  t ->
  dead:Apple_vnf.Instance.t ->
  replacement:Apple_vnf.Instance.t ->
  unit
(** Complete recovery from a VM death once the respawned [replacement]
    is ready: heal the Dynamic Handler (swap pinnings, restore repaired
    weights), update the assignment records, clear [dead] from the
    failure mask and {!reinstall_rules}.  Requires a prior
    {!run_epoch}. *)

(** {2 Checkpoint hooks}

    The soak harness reconstructs a mid-window controller by re-running
    {!run_epoch} (deterministic for the window-start rates) and replaying
    the heal ledger through the exact production heal path, so the
    rebuilt assignment, orchestrator ids and rule tables are
    byte-identical to the checkpointed ones. *)

val set_load_source : t -> Dynamic_handler.load_source -> unit
(** Change where the {e next} epoch's Dynamic Handler reads loads from —
    the soak harness resets the measurement plane (counters + a fresh
    poller) at every re-optimization so polled state never straddles a
    window boundary. *)

val heal_ledger : t -> (int * int) list
(** [(dead id, replacement id)] pairs healed via {!heal_instance} since
    the last {!run_epoch}, oldest first. *)

val replay_heals : t -> (int * int) list -> unit
(** Re-apply a serialized heal ledger after a fresh {!run_epoch}:
    respawn each dead instance through the orchestrator and run
    {!heal_instance}.  Raises [Invalid_argument] when a ledger entry
    does not match the reconstructed state (a corrupt checkpoint). *)

val verify : t -> (unit, string) result
(** End-to-end self-check of the current epoch: distribution constraints
    (Eq. 2–6), sub-class weight consistency, instance-capacity respect,
    and packet walks proving policy enforcement and interference freedom
    for every sub-class. *)
