module Nf = Apple_vnf.Nf
module Rng = Apple_prelude.Rng

type mix = (Nf.kind list * float) list

let default_mix =
  [
    ([ Nf.Firewall ], 0.20);
    ([ Nf.Firewall; Nf.Proxy ], 0.20);
    ([ Nf.Firewall; Nf.Ids ], 0.20);
    ([ Nf.Firewall; Nf.Ids; Nf.Proxy ], 0.15);
    ([ Nf.Nat; Nf.Firewall ], 0.15);
    ([ Nf.Nat; Nf.Firewall; Nf.Ids ], 0.10);
  ]

let validate mix =
  if mix = [] then invalid_arg "Policy.validate: empty mix";
  List.iter
    (fun (chain, w) ->
      if w <= 0.0 then invalid_arg "Policy.validate: non-positive weight";
      if chain = [] then invalid_arg "Policy.validate: empty chain";
      let sorted =
        List.sort_uniq
          (fun a b -> Int.compare (Nf.kind_index a) (Nf.kind_index b))
          chain
      in
      if List.length sorted <> List.length chain then
        invalid_arg "Policy.validate: NF repeated within a chain")
    mix

let draw rng mix = Rng.sample_weighted rng mix

let mix_of_strings entries =
  let mix =
    List.map (fun (s, w) -> (Nf.chain_of_string s, w)) entries
  in
  validate mix;
  mix
