(** Mutable network state during a traffic replay: sub-class weights,
    instance pinnings and per-instance offered loads.

    This is the state the Dynamic Handler manipulates during fast failover
    and that the simulation samples for loss (Fig. 12).  It starts from an
    Optimization-Engine placement and {!Subclass.assign} assignment and
    evolves as snapshots arrive and sub-class weights are rebalanced. *)

type pinned = {
  mutable weight : float;  (** share of the class's traffic *)
  baseline : float;
      (** the weight the Optimization Engine assigned; fast failover
          perturbs [weight] and rolls back to [baseline] (0 for sub-classes
          created by failover itself) *)
  hops : int array;
  stage_instances : Apple_vnf.Instance.t array;  (** one per chain stage *)
  p_class : int;
  p_sub : int;
}

type t = {
  mutable scenario : Types.scenario;
  orchestrator : Resource_orchestrator.t;
  mutable per_class : pinned list array;  (** index = class id *)
  mutable extra_instances : Apple_vnf.Instance.t list;
      (** instances spawned by fast failover, still alive *)
  mask : Apple_dataplane.Failmask.t;
      (** current failure mask: dead links/switches/instances injected by
          the chaos engine; consulted by {!network_loss}, the packet
          simulator and data-plane walks until repair clears it *)
}

val of_assignment :
  Types.scenario -> Subclass.assignment -> t
(** Adopt the assignment's instances into a fresh orchestrator and pin
    sub-classes. *)

val recompute_loads : t -> unit
(** Reset every instance's offered load from current class rates and
    sub-class weights. *)

val blackholed : t -> pinned -> bool
(** The sub-class currently forwards into a failed element: one of its
    pinned instances is dead, or its class's routing path crosses a dead
    switch or link. *)

val network_loss : t -> float
(** Fraction of total offered traffic dropped, given current loads: a
    sub-class's delivered share is the product over its stages of
    (1 - instance loss); a {!blackholed} sub-class delivers nothing. *)

val blackholed_rate : t -> float
(** Offered Mbps currently falling into blackholes — the integrand of
    the chaos engine's packets-lost accounting. *)

val subclass_utilization : t -> pinned -> float
(** Max utilization across the sub-class's pinned instances. *)

val instances_in_use : t -> Apple_vnf.Instance.t list
(** Distinct instances referenced by at least one positive-weight
    sub-class. *)

val extra_cores : t -> int
(** Cores currently held by failover-spawned instances. *)

val weights_valid : t -> bool
(** Per class, weights are non-negative and sum to 1 (1e-6). *)
