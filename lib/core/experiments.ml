module Builders = Apple_topology.Builders
module Synth = Apple_traffic.Synth
module Matrix = Apple_traffic.Matrix
module Rng = Apple_prelude.Rng
module Stats = Apple_prelude.Stats
module Table = Apple_prelude.Text_table
module Nf = Apple_vnf.Nf

type rendered = { title : string; body : string }

let print r =
  Printf.printf "== %s ==\n%s\n\n%!" r.title r.body (* lint: L6 — experiment reports print by contract; callers are CLIs *)

type opts = { seed : int; scale : float }

let default_opts = { seed = 20160627; scale = 1.0 }

let scaled opts n = max 1 (int_of_float (float_of_int n *. opts.scale))

let check = function true -> "yes" | false -> "NO"

(* Small scenario shared by a few artifacts. *)
let small_scenario opts =
  let named = Builders.internet2 () in
  let rng = Rng.create opts.seed in
  let tm =
    Synth.gravity rng
      ~n:(Apple_topology.Graph.num_nodes named.Builders.graph)
      ~total:18_000.0
  in
  Scenario.build ~seed:opts.seed named tm

(* ------------------------------------------------------------------ *)

let table1 opts =
  let scenario = small_scenario opts in
  let rows = Baselines.properties_table scenario in
  let t = Table.create [ "Framework"; "Policy Enforcement"; "Interference Free"; "Isolation" ] in
  List.iter
    (fun (name, pe, ifree, iso) ->
      Table.add_row t [ name; check pe; check ifree; check iso ])
    rows;
  let steering = Baselines.steering_stats ~seed:opts.seed scenario in
  let footer =
    Printf.sprintf
      "steering interference on this scenario: %.0f%% of traffic rerouted, mean path stretch %.2fx (max %.2fx)"
      (100.0 *. steering.Baselines.flows_rerouted)
      steering.Baselines.mean_stretch steering.Baselines.max_stretch
  in
  {
    title = "Table I: comparison of NF orchestration frameworks";
    body = Table.render t ^ "\n" ^ footer;
  }

let table3 opts =
  let scenario = small_scenario opts in
  let placement = Engine_select.solve_best scenario in
  let asg = Subclass.assign scenario placement in
  let built = Rule_generator.build scenario asg in
  (* Show the busiest ingress switch's APPLE table. *)
  let network = built.Rule_generator.network in
  let busiest = ref network.(0) in
  Array.iter
    (fun table ->
      if
        Apple_dataplane.Tcam.tcam_entries table
        > Apple_dataplane.Tcam.tcam_entries !busiest
      then busiest := table)
    network;
  let t = Table.create [ "Type"; "Host ID field"; "Match"; "Action" ] in
  let add_rule (r : Apple_dataplane.Rule.phys_rule) =
    let host_str =
      match r.Apple_dataplane.Rule.pmatch.Apple_dataplane.Rule.m_host with
      | `Empty -> "Empty"
      | `Host h -> Printf.sprintf "Host %d" h
      | `Fin -> "Fin"
      | `Any -> "*"
    in
    let n_prefixes =
      List.length r.Apple_dataplane.Rule.pmatch.Apple_dataplane.Rule.m_prefixes
    in
    let match_str =
      if n_prefixes = 0 then "*" else Printf.sprintf "%d prefix(es)" n_prefixes
    in
    let type_str, action_str =
      match r.Apple_dataplane.Rule.action with
      | Apple_dataplane.Rule.Fwd_to_host h ->
          ("Host match", Printf.sprintf "Fwd to APPLE host %d" h)
      | Apple_dataplane.Rule.Tag_and_deliver { subclass; host } ->
          ( "Classification",
            Printf.sprintf "Tag sub-class %d, Fwd to APPLE host %d" subclass host )
      | Apple_dataplane.Rule.Tag_and_forward { subclass; _ } ->
          ( "Classification",
            Printf.sprintf "Tag sub-class %d, Tag host ID, Go to next table"
              subclass )
      | Apple_dataplane.Rule.Set_host_and_forward _ ->
          ("Retag", "Set host ID, Go to next table")
      | Apple_dataplane.Rule.Goto_next -> ("Pass by", "Go to next table")
    in
    Table.add_row t [ type_str; host_str; match_str; action_str ]
  in
  let rules = Apple_dataplane.Tcam.phys_rules !busiest in
  let shown = List.filteri (fun i _ -> i < 12) rules in
  List.iter add_rule shown;
  let footer =
    Printf.sprintf "switch %d: %d rules total (%d TCAM entries), %d shown"
      (Apple_dataplane.Tcam.switch !busiest)
      (List.length rules)
      (Apple_dataplane.Tcam.tcam_entries !busiest)
      (List.length shown)
  in
  {
    title = "Table III: TCAM layout at a physical switch (tagging scheme)";
    body = Table.render t ^ "\n" ^ footer;
  }

let table4 _opts =
  let t = Table.create [ "Network Function"; "Cores Required"; "Capacity"; "ClickOS" ] in
  List.iter
    (fun kind ->
      let spec = Nf.spec kind in
      Table.add_row t
        [
          String.capitalize_ascii (Nf.name kind);
          string_of_int spec.Nf.cores;
          Printf.sprintf "%.0fMbps" spec.Nf.capacity_mbps;
          (if spec.Nf.clickos then "yes" else "no");
        ])
    Nf.all_kinds;
  { title = "Table IV: VNF data sheets"; body = Table.render t }

let table5 opts =
  (* Second per-class column always runs jobs>1 so the parallel path is
     exercised even where recommended_domain_count is 1. *)
  let jobs = max 2 (Apple_parallel.Pool.default_jobs ()) in
  let t =
    Table.create
      [
        "Topology"; "Nodes"; "Links"; "Classes"; "Time";
        "Per-class j=1"; Printf.sprintf "Per-class j=%d" jobs;
      ]
  in
  let raw = ref [] in
  List.iter
    (fun (named : Builders.named) ->
      let rng = Rng.create opts.seed in
      let n = Apple_topology.Graph.num_nodes named.Builders.graph in
      let tm = Synth.gravity rng ~n ~total:18_000.0 in
      let scenario = Scenario.build ~seed:opts.seed named tm in
      let placement = Engine_select.solve_best scenario in
      let pc1 =
        Optimization_engine.solve ~method_:Optimization_engine.Per_class
          ~jobs:1 scenario
      in
      let pcn =
        Optimization_engine.solve ~method_:Optimization_engine.Per_class ~jobs
          scenario
      in
      raw := (named.Builders.label, placement.Optimization_engine.solve_seconds) :: !raw;
      Table.add_row t
        [
          named.Builders.label;
          string_of_int n;
          string_of_int (Apple_topology.Graph.num_edges named.Builders.graph);
          string_of_int (Array.length scenario.Types.classes);
          Printf.sprintf "%.3f second%s"
            placement.Optimization_engine.solve_seconds
            (if placement.Optimization_engine.solve_seconds >= 2.0 then "s" else "");
          Printf.sprintf "%.3f s" pc1.Optimization_engine.solve_seconds;
          Printf.sprintf "%.3f s" pcn.Optimization_engine.solve_seconds;
        ])
    (Builders.all_paper_topologies ());
  ( {
      title = "Table V: average computation time of different topologies";
      body = Table.render t;
    },
    List.rev !raw )

(* Serial vs parallel study for the decomposed engine: per-class solve
   times at several [jobs] values against the monolithic LP, with a
   mechanical check that every jobs value produced the same placement.
   Minimum of [repeat] runs per cell — timing noise shrinks, results
   cannot change (the engine is deterministic). *)
let jobs_table ?(jobs_list = [ 1; 2; 4 ]) ?(repeat = 3) opts =
  let t =
    Table.create
      ([ "Topology"; "Classes"; "Monolithic LP" ]
      @ List.map (fun j -> Printf.sprintf "Per-class j=%d" j) jobs_list
      @ [ "Decomposition speedup"; "Identical" ])
  in
  let raw = ref [] in
  List.iter
    (fun (named : Builders.named) ->
      let rng = Rng.create opts.seed in
      let n = Apple_topology.Graph.num_nodes named.Builders.graph in
      let tm = Synth.gravity rng ~n ~total:18_000.0 in
      let scenario = Scenario.build ~seed:opts.seed named tm in
      let lp = Optimization_engine.solve scenario in
      let per_class j =
        let best = ref infinity and result = ref None in
        for _ = 1 to max 1 repeat do
          let p =
            Optimization_engine.solve
              ~method_:Optimization_engine.Per_class ~jobs:j scenario
          in
          if p.Optimization_engine.solve_seconds < !best then
            best := p.Optimization_engine.solve_seconds;
          result := Some p
        done;
        (Option.get !result, !best)
      in
      let runs = List.map per_class jobs_list in
      let identical =
        match runs with
        | [] -> true
        | (first, _) :: rest ->
            List.for_all
              (fun ((p : Optimization_engine.placement), _) ->
                p.Optimization_engine.counts
                  = first.Optimization_engine.counts
                && p.Optimization_engine.distribution
                   = first.Optimization_engine.distribution)
              rest
      in
      let t1 = match runs with (_, s) :: _ -> s | [] -> nan in
      raw :=
        ( named.Builders.label,
          lp.Optimization_engine.solve_seconds,
          List.map2 (fun j (_, s) -> (j, s)) jobs_list runs,
          identical )
        :: !raw;
      Table.add_row t
        ([
           named.Builders.label;
           string_of_int (Array.length scenario.Types.classes);
           Printf.sprintf "%.3f s (%d inst)"
             lp.Optimization_engine.solve_seconds
             (Optimization_engine.instance_count lp);
         ]
        @ List.map (fun (_, s) -> Printf.sprintf "%.3f s" s) runs
        @ [
            Printf.sprintf "%.1fx (%d inst)"
              (lp.Optimization_engine.solve_seconds /. max 1e-9 t1)
              (Optimization_engine.instance_count
                 (fst (List.hd runs)));
            check identical;
          ]))
    (Builders.all_paper_topologies ());
  ( {
      title =
        "Jobs study: monolithic LP vs parallel per-class decomposition (APPLE_JOBS)";
      body = Table.render t;
    },
    List.rev !raw )

(* ------------------------------------------------------------------ *)

let fig6 _opts =
  let points = Prototype.monitor_loss_curve () in
  let t = Table.create [ "Rate (Kpps)"; "Loss (64B)"; "Loss (512B)"; "Loss (1500B)" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          Printf.sprintf "%.1f" p.Prototype.rate_kpps;
          Printf.sprintf "%.3f" p.Prototype.loss_64;
          Printf.sprintf "%.3f" p.Prototype.loss_512;
          Printf.sprintf "%.3f" p.Prototype.loss_1500;
        ])
    points;
  {
    title = "Fig 6: ClickOS passive monitor loss rate vs packet receiving rate";
    body =
      Table.render t
      ^ "\nloss depends on the packet rate, not the packet size (curves coincide)";
  }

let fig7 opts =
  let runs = scaled opts 10 in
  let results = Prototype.vm_setup_experiment ~seed:opts.seed ~runs in
  let blackouts =
    Array.of_list (List.map (fun r -> r.Prototype.blackout_seconds) results)
  in
  let t = Table.create [ "Run"; "Blackout (s)" ] in
  List.iteri
    (fun i r ->
      Table.add_row t
        [ string_of_int (i + 1); Printf.sprintf "%.2f" r.Prototype.blackout_seconds ])
    results;
  let summary =
    Printf.sprintf "range [%.2f, %.2f] s, mean %.2f s (paper: 3.9-4.6, avg 4.2)"
      (Stats.minimum blackouts) (Stats.maximum blackouts) (Stats.mean blackouts)
  in
  {
    title = "Fig 7: throughput blackout while a ClickOS VM boots via OpenStack";
    body = Table.render t ^ "\n" ^ summary;
  }

let fig8 opts =
  let runs = scaled opts 10 in
  let results = Prototype.file_transfer_experiment ~seed:opts.seed ~runs in
  let t = Table.create [ "Variant"; "Min (s)"; "Median (s)"; "Max (s)"; "UDP loss" ] in
  List.iter
    (fun (variant, durations) ->
      Table.add_row t
        [
          Prototype.variant_name variant;
          Printf.sprintf "%.2f" (Stats.minimum durations);
          Printf.sprintf "%.2f" (Stats.median durations);
          Printf.sprintf "%.2f" (Stats.maximum durations);
          Printf.sprintf "%.0f%%" (100.0 *. Prototype.udp_loss_during_failover variant);
        ])
    results;
  let cdf_lines =
    List.map
      (fun (variant, durations) ->
        let cdf = Stats.cdf durations in
        Printf.sprintf "%s CDF: %s"
          (Prototype.variant_name variant)
          (String.concat " "
             (List.map (fun (x, p) -> Printf.sprintf "(%.2f,%.1f)" x p) cdf)))
      results
  in
  let naive = Prototype.naive_switch_transfer ~seed:opts.seed in
  let footer =
    Printf.sprintf
      "naive contrast (rules switched before the VM is up): %.2f s with %d \
       TCP timeouts -- the overhead APPLE's wait/reconfigure designs avoid"
      naive.Apple_packetsim.Tcp_model.completion_time
      naive.Apple_packetsim.Tcp_model.timeouts
  in
  {
    title = "Fig 8: distribution of 20MB file transfer time (3 variants)";
    body = Table.render t ^ "\n" ^ String.concat "\n" cdf_lines ^ "\n" ^ footer;
  }

let fig9 opts =
  let run = Prototype.overload_detection_experiment ~seed:opts.seed () in
  let t = Table.create [ "Time (s)"; "Event" ] in
  List.iter
    (fun e ->
      let name =
        match e.Prototype.kind with
        | `Overload_detected -> "overload detected (rate > 8.5 Kpps)"
        | `New_instance_ready -> "new ClickOS monitor configured, traffic split"
        | `Rolled_back -> "rolled back to normal state (rate <= 4 Kpps)"
      in
      Table.add_row t [ Printf.sprintf "%.2f" e.Prototype.time; name ])
    run.Prototype.det_events;
  let sample_at series time =
    let rec nearest best = function
      | [] -> best
      | (t, v) :: rest ->
          let best =
            match best with
            | Some (bt, _) when abs_float (bt -. time) <= abs_float (t -. time) ->
                best
            | _ -> Some (t, v)
          in
          nearest best rest
    in
    match nearest None series with Some (_, v) -> v | None -> 0.0
  in
  let timeline =
    String.concat "\n"
      (List.map
         (fun time ->
           Printf.sprintf
             "t=%.1fs send=%.1f Kpps master=%.1f Kpps sibling=%.1f Kpps" time
             (sample_at run.Prototype.send_rate time)
             (sample_at run.Prototype.master_rate time)
             (sample_at run.Prototype.sibling_rate time))
         [ 0.5; 1.5; 2.5; 3.5; 5.0; 6.5; 7.5; 9.0 ])
  in
  {
    title = "Fig 9: overload detection (1 -> 10 -> 1 Kpps source)";
    body =
      Table.render t ^ "\n" ^ timeline
      ^ Printf.sprintf "\nend-to-end packet loss: %.2f%% (paper: 0%%)"
          (100.0 *. run.Prototype.packet_loss);
  }

let fig9_polled opts =
  let event_name = function
    | `Overload_detected -> "overload detected (rate > 8.5 Kpps)"
    | `New_instance_ready -> "new ClickOS monitor configured, traffic split"
    | `Rolled_back -> "rolled back to normal state (rate <= 4 Kpps)"
  in
  let poll_period = 0.05 in
  let oracle = Prototype.overload_detection_experiment ~seed:opts.seed () in
  let polled =
    Prototype.overload_detection_experiment ~load_source:(`Polled poll_period)
      ~seed:opts.seed ()
  in
  let t = Table.create [ "Load source"; "Time (s)"; "Event" ] in
  List.iter
    (fun (label, (run : Prototype.detection_run)) ->
      List.iter
        (fun e ->
          Table.add_row t
            [
              label;
              Printf.sprintf "%.2f" e.Prototype.time;
              event_name e.Prototype.kind;
            ])
        run.Prototype.det_events)
    [ ("oracle", oracle); (Printf.sprintf "polled %.0fms" (1000.0 *. poll_period), polled) ];
  let periods = [ 0.01; 0.02; 0.05; 0.1; 0.2 ] in
  let latencies = Prototype.detection_latency_vs_poll ~seed:opts.seed ~periods in
  let lt = Table.create [ "Poll period"; "Detection latency"; "Polls to detect" ] in
  List.iter
    (fun (p, l) ->
      Table.add_row lt
        [
          Printf.sprintf "%.0f ms" (1000.0 *. p);
          (if l = infinity then "missed"
           else Printf.sprintf "%.0f ms" (1000.0 *. l));
          (if l = infinity then "--"
           else Printf.sprintf "%.1f" (l /. p));
        ])
    latencies;
  let oracle_latency =
    Option.value ~default:infinity (Prototype.detection_latency oracle)
  in
  let polled_latency =
    Option.value ~default:infinity (Prototype.detection_latency polled)
  in
  let footer =
    Printf.sprintf
      "detection latency after the t=2.0s rate jump: oracle %.0f ms, counter \
       polling %.0f ms (measurement delay = EWMA warm-up x poll period); \
       loss oracle %.2f%% vs polled %.2f%%"
      (1000.0 *. oracle_latency)
      (1000.0 *. polled_latency)
      (100.0 *. oracle.Prototype.packet_loss)
      (100.0 *. polled.Prototype.packet_loss)
  in
  {
    title =
      "Fig 9 (polled): counter-driven overload detection vs the oracle detector";
    body =
      Table.render t ^ "\n" ^ Table.render lt ^ "\n" ^ footer;
  }

(* ------------------------------------------------------------------ *)

(* The paper's regime: per-class demands are small relative to one
   instance's capacity, so the ingress strawman wastes most of every
   instance it allocates while APPLE consolidates across the network, and
   ceil-rounding leaves the headroom that lets fast failover absorb bursts
   with few extra ClickOS instances.  Policies attach to transit traffic
   (paths of at least 2 links), matching the long-haul dominance of the
   measured WAN matrices. *)
let sim_profile ?(label = "") opts =
  {
    Synth.default_profile with
    Synth.snapshots = scaled opts 672;
    (* The data-center network runs hotter than the WAN backbones, as the
       UNIV1 packet trace does relative to the Abilene/GEANT matrices. *)
    total_rate = (if label = "UNIV1" then 9_000.0 else 3_000.0);
    (* UNIV1 snapshots are one second apart (Sec. IX-A): at that timescale
       data-center traffic shows bursts, not diurnal cycles. *)
    diurnal_depth = (if label = "UNIV1" then 0.05 else 0.35);
    (* Fierce small-time-scale dynamics (Sec. IX-E): individual demands
       burst to many times their base rate for a few seconds. *)
    burst_probability = 0.06;
    burst_factor = 25.0;
    burst_length = 6;
  }

let sim_config = { Scenario.default_config with Scenario.min_path_hops = 2 }

let fig10 opts =
  let runs = scaled opts 12 in
  let t = Table.create [ "Topology"; "5th pct"; "Q1"; "Median"; "Q3"; "95th pct" ] in
  let raw = ref [] in
  List.iter
    (fun (named : Builders.named) ->
      let samples =
        Simulation.tcam_samples ~config:sim_config ~seed:opts.seed ~runs named
          ~profile:(sim_profile ~label:named.Builders.label opts)
      in
      let box = Stats.boxplot samples in
      raw := (named.Builders.label, box) :: !raw;
      Table.add_row t
        [
          named.Builders.label;
          Printf.sprintf "%.1fx" box.Stats.whisker_low;
          Printf.sprintf "%.1fx" box.Stats.q1;
          Printf.sprintf "%.1fx" box.Stats.med;
          Printf.sprintf "%.1fx" box.Stats.q3;
          Printf.sprintf "%.1fx" box.Stats.whisker_high;
        ])
    (Builders.simulation_topologies ());
  ( {
      title = "Fig 10: TCAM usage reduction ratio of the tagging scheme (boxplot)";
      body = Table.render t;
    },
    List.rev !raw )

let replay_results opts =
  List.map
    (fun (named : Builders.named) ->
      Simulation.replay ~config:sim_config ~seed:opts.seed named
        ~profile:(sim_profile ~label:named.Builders.label opts))
    (Builders.simulation_topologies ())

let fig11 opts =
  let results = replay_results opts in
  let t =
    Table.create [ "Topology"; "APPLE cores"; "Ingress cores"; "Reduction" ]
  in
  let raw = ref [] in
  List.iter
    (fun (r : Simulation.replay_result) ->
      raw := (r.Simulation.label, r.Simulation.apple_cores, r.Simulation.ingress_cores) :: !raw;
      Table.add_row t
        [
          r.Simulation.label;
          string_of_int r.Simulation.apple_cores;
          string_of_int r.Simulation.ingress_cores;
          Printf.sprintf "%.1fx"
            (float_of_int r.Simulation.ingress_cores
            /. float_of_int (max 1 r.Simulation.apple_cores));
        ])
    results;
  ( {
      title = "Fig 11: average CPU core usage, APPLE vs ingress strawman";
      body = Table.render t;
    },
    List.rev !raw )

let fig12 opts =
  let results = replay_results opts in
  let t =
    Table.create
      [
        "Topology";
        "Mean loss (failover)";
        "Mean loss (static)";
        "P95 loss (failover)";
        "P95 loss (static)";
        "Extra cores (avg)";
      ]
  in
  let raw = ref [] in
  List.iter
    (fun (r : Simulation.replay_result) ->
      let mw = Stats.mean r.Simulation.loss_with_failover in
      let mo = Stats.mean r.Simulation.loss_without_failover in
      raw := (r.Simulation.label, mw, mo, r.Simulation.mean_extra_cores) :: !raw;
      Table.add_row t
        [
          r.Simulation.label;
          Printf.sprintf "%.3f%%" (100.0 *. mw);
          Printf.sprintf "%.3f%%" (100.0 *. mo);
          Printf.sprintf "%.3f%%"
            (100.0 *. Stats.percentile r.Simulation.loss_with_failover 95.0);
          Printf.sprintf "%.3f%%"
            (100.0 *. Stats.percentile r.Simulation.loss_without_failover 95.0);
          Printf.sprintf "%.1f" r.Simulation.mean_extra_cores;
        ])
    results;
  ( {
      title = "Fig 12: packet loss over time, with vs without fast failover";
      body = Table.render t;
    },
    List.rev !raw )

let all opts =
  let t5, _ = table5 opts in
  let f10, _ = fig10 opts in
  let f11, _ = fig11 opts in
  let f12, _ = fig12 opts in
  [
    table1 opts;
    table3 opts;
    table4 opts;
    t5;
    fig6 opts;
    fig7 opts;
    fig8 opts;
    fig9 opts;
    f10;
    f11;
    f12;
  ]

(* ------------------------------------------------------------------ *)
(* Ablations: design-choice studies beyond the paper's own figures.    *)

let scenario_for opts (named : Builders.named) =
  let rng = Rng.create opts.seed in
  let profile = { (sim_profile ~label:named.Builders.label opts) with Synth.snapshots = 8 } in
  let snapshots = Synth.for_topology rng profile named in
  Scenario.build ~config:sim_config ~seed:opts.seed named (Matrix.mean_of snapshots)

let ablation_engines opts =
  let t =
    Table.create
      [ "Topology"; "Engine"; "Instances"; "Cores"; "Solve time" ]
  in
  List.iter
    (fun (named : Builders.named) ->
      let s = scenario_for opts named in
      let time f =
        let t0 = Unix.gettimeofday () in (* lint: L5 — wall-clock solve timing, reported as perf metadata only *)
        let r = f () in
        (r, Unix.gettimeofday () -. t0) (* lint: L5 — wall-clock solve timing, reported as perf metadata only *)
      in
      let lp, lp_t = time (fun () -> Optimization_engine.solve s) in
      let greedy, greedy_t = time (fun () -> Heuristic_engine.solve s) in
      let best, best_t = time (fun () -> Engine_select.solve_best s) in
      List.iter
        (fun (name, p, seconds) ->
          Table.add_row t
            [
              named.Builders.label;
              name;
              string_of_int (Optimization_engine.instance_count p);
              string_of_int (Optimization_engine.core_count p);
              Printf.sprintf "%.3f s" seconds;
            ])
        [
          ("LP relax + round", lp, lp_t);
          ("greedy heuristic", greedy, greedy_t);
          ("selector (best)", best, best_t);
        ])
    (Builders.all_paper_topologies ());
  {
    title = "Ablation: placement engines (LP pipeline vs greedy vs selector)";
    body = Table.render t;
  }

let ablation_passes opts =
  let t =
    Table.create [ "Topology"; "Variant"; "Instances"; "vs full pipeline" ]
  in
  List.iter
    (fun (named : Builders.named) ->
      let s = scenario_for opts named in
      let full = Optimization_engine.solve s in
      let base = Optimization_engine.instance_count full in
      let variant name ~reweight ~consolidate =
        let p = Optimization_engine.solve ~reweight ~consolidate s in
        let k = Optimization_engine.instance_count p in
        Table.add_row t
          [
            named.Builders.label;
            name;
            string_of_int k;
            Printf.sprintf "%+d" (k - base);
          ]
      in
      Table.add_row t
        [ named.Builders.label; "full (reweight + consolidate)"; string_of_int base; "--" ];
      variant "no reweighted 2nd LP" ~reweight:false ~consolidate:true;
      variant "no consolidation pass" ~reweight:true ~consolidate:false;
      variant "plain LP + ceil only" ~reweight:false ~consolidate:false)
    (Builders.simulation_topologies ());
  {
    title = "Ablation: contribution of the rounding post-passes";
    body = Table.render t;
  }

let ablation_split_depth opts =
  (* Needs fractional sub-class weights, so run at heavy load where the
     Optimization Engine genuinely splits classes across instances. *)
  let s = small_scenario opts in
  let placement = Engine_select.solve_best s in
  let asg = Subclass.assign s placement in
  let t =
    Table.create
      [ "Realization"; "Classifier rules"; "Max weight error"; "Mean weight error" ]
  in
  (* Prefix splitting at several quantization depths. *)
  List.iter
    (fun depth ->
      let rules = ref 0 in
      let errors = ref [] in
      Array.iter
        (fun c ->
          let subs =
            List.filter
              (fun sub -> sub.Subclass.class_id = c.Types.id)
              asg.Subclass.subclasses
          in
          if subs <> [] then begin
            let split = Rule_generator.subclass_prefixes c subs ~depth in
            rules := !rules + Types.Prefix.rule_count split;
            let realized =
              Types.Prefix.realized_weights split ~base:c.Types.src_block
            in
            List.iteri
              (fun i sub ->
                errors := abs_float (realized.(i) -. sub.Subclass.weight) :: !errors)
              subs
          end)
        s.Types.classes;
      let arr = Array.of_list !errors in
      Table.add_row t
        [
          Printf.sprintf "prefix split, depth %d" depth;
          string_of_int !rules;
          Printf.sprintf "%.4f" (Stats.maximum arr);
          Printf.sprintf "%.4f" (Stats.mean arr);
        ])
    [ 4; 6; 8 ];
  (* Consistent hashing: one range rule per sub-class; weight fidelity
     measured by hashing 20k synthetic flows per class. *)
  let rng = Rng.create opts.seed in
  let rules = ref 0 in
  let errors = ref [] in
  Array.iter
    (fun c ->
      let subs =
        List.filter
          (fun sub -> sub.Subclass.class_id = c.Types.id)
          asg.Subclass.subclasses
      in
      if subs <> [] then begin
        rules := !rules + List.length subs;
        let weights =
          Array.of_list (List.map (fun sub -> sub.Subclass.weight) subs)
        in
        let ring = Apple_classifier.Consistent_hash.create ~weights in
        let samples = 20_000 in
        let hits = Array.make (Array.length weights) 0 in
        for _ = 1 to samples do
          let packet =
            {
              Apple_classifier.Header.src_ip =
                c.Types.src_block.Types.Prefix.addr + Rng.int rng 256;
              dst_ip = Rng.int rng 0x3FFFFFFF;
              proto = 6;
              src_port = Rng.int rng 65536;
              dst_port = Rng.int rng 65536;
            }
          in
          let b = Apple_classifier.Consistent_hash.assign ring packet in
          hits.(b) <- hits.(b) + 1
        done;
        Array.iteri
          (fun i w ->
            errors :=
              abs_float ((float_of_int hits.(i) /. float_of_int samples) -. w)
              :: !errors)
          weights
      end)
    s.Types.classes;
  let arr = Array.of_list !errors in
  Table.add_row t
    [
      "consistent hashing";
      string_of_int !rules;
      Printf.sprintf "%.4f" (Stats.maximum arr);
      Printf.sprintf "%.4f" (Stats.mean arr);
    ];
  {
    title =
      "Ablation: sub-class realization (prefix splitting depth vs consistent hashing)";
    body = Table.render t;
  }

let ablation_tag_mode opts =
  (* NAT-heavy scenario so header rewriting is pervasive. *)
  let mix =
    Policy.mix_of_strings
      [ ("nat -> firewall", 0.5); ("nat -> firewall -> ids", 0.5) ]
  in
  let config =
    { Scenario.default_config with Scenario.policy_mix = mix; max_classes = 40 }
  in
  let named = Builders.internet2 () in
  let rng = Rng.create opts.seed in
  let tm = Synth.gravity rng ~n:12 ~total:4000.0 in
  let s = Scenario.build ~config ~seed:opts.seed named tm in
  let placement = Engine_select.solve_best s in
  let asg = Subclass.assign s placement in
  let t =
    Table.create
      [ "Tag mode"; "TCAM"; "vSwitch rules"; "Tag ids"; "Walks OK under NAT" ]
  in
  let rewriters i =
    List.exists
      (fun inst ->
        Apple_vnf.Instance.id inst = i
        && Nf.rewrites_header (Apple_vnf.Instance.kind inst))
      asg.Subclass.instances
  in
  List.iter
    (fun mode ->
      let built = Rule_generator.build ~tag_mode:mode s asg in
      let ok = ref 0 and total = ref 0 in
      Array.iter
        (fun c ->
          let subs =
            List.filter
              (fun sub -> sub.Subclass.class_id = c.Types.id)
              asg.Subclass.subclasses
          in
          let prefixes =
            Rule_generator.subclass_prefixes c subs
              ~depth:built.Rule_generator.split_depth
          in
          List.iteri
            (fun idx _ ->
              match prefixes.(idx) with
              | [] -> ()
              | p :: _ -> (
                  incr total;
                  match
                    Apple_dataplane.Walk.run built.Rule_generator.network
                      ~path:(Array.to_list c.Types.path)
                      ~cls:c.Types.id ~src_ip:p.Types.Prefix.addr ~rewriters ()
                  with
                  | Ok _ -> incr ok
                  | Error _ -> ()))
            subs)
        s.Types.classes;
      Table.add_row t
        [
          (match built.Rule_generator.tag_mode with
          | `Local -> "local (class-multiplexed)"
          | `Global -> "global (network-unique)");
          string_of_int built.Rule_generator.tcam_with_tagging;
          string_of_int built.Rule_generator.vswitch_rules;
          string_of_int built.Rule_generator.global_tags_used;
          Printf.sprintf "%d/%d" !ok !total;
        ])
    [ `Local; `Global ];
  {
    title = "Ablation: sub-class tag modes under header-rewriting NFs (Sec. X)";
    body = Table.render t;
  }

let ablation_packet_level opts =
  (* A single ClickOS-style monitor (firewall spec: 900 Mbps = 75 Kpps at
     1500 B) driven at increasing CBR rates, packet by packet. *)
  let module PS = Apple_packetsim.Packet_sim in
  let module Rule = Apple_dataplane.Rule in
  let module Tcam = Apple_dataplane.Tcam in
  let module Tag = Apple_dataplane.Tag in
  let net = Tcam.network ~num_switches:1 in
  let pfx = Types.Prefix.prefix_of_string "10.0.0.0/24" in
  Tcam.add_phys net.(0)
    {
      Rule.priority = 100;
      pmatch = { Rule.m_host = `Empty; m_subclass = `Any; m_prefixes = [ pfx ] };
      action = Rule.Tag_and_deliver { subclass = 0; host = 0 };
    };
  Tcam.add_phys net.(0)
    {
      Rule.priority = 0;
      pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
      action = Rule.Goto_next;
    };
  Tcam.add_vswitch net.(0)
    { Rule.v_port = Rule.From_network;
      v_key = Rule.Per_class { cls = 0; subclass = 0 };
      v_action = Rule.To_instance 1 };
  Tcam.add_vswitch net.(0)
    { Rule.v_port = Rule.From_instance 1;
      v_key = Rule.Per_class { cls = 0; subclass = 0 };
      v_action = Rule.Back_to_network Tag.Fin };
  let inst =
    Apple_vnf.Instance.create ~id:1 ~spec:(Nf.spec Nf.Firewall) ~host:0
  in
  let t =
    Table.create
      [ "Rate (Kpps)"; "Packet-level loss"; "Analytic loss"; "p50 latency" ]
  in
  let duration = max 0.2 (2.0 *. opts.scale) in
  List.iter
    (fun pps ->
      let flows =
        [
          {
            PS.flow_name = "probe";
            cls = 0;
            src_ip = pfx.Types.Prefix.addr + 5;
            path = [ 0 ];
            source = PS.Cbr pps;
            start_at = 0.0;
            stop_at = duration;
          };
        ]
      in
      let r =
        PS.run ~seed:opts.seed ~network:net ~instances:[ inst ] ~flows ~duration ()
      in
      let analytic =
        Apple_vnf.Instance.loss_at_pps ~capacity_pps:75_000.0 ~offered_pps:pps
      in
      Table.add_row t
        [
          Printf.sprintf "%.0f" (pps /. 1000.0);
          Printf.sprintf "%.4f" (PS.loss_of r "probe");
          Printf.sprintf "%.4f" analytic;
          Printf.sprintf "%.0f us" (1e6 *. PS.latency_percentile r "probe" 50.0);
        ])
    [ 40_000.; 60_000.; 74_000.; 80_000.; 90_000.; 110_000. ];
  {
    title =
      "Ablation: packet-level queueing vs the analytic loss model (Fig 6 validation)";
    body =
      Table.render t
      ^ "\nsame knee at 75 Kpps; the packet simulator adds the queueing latency";
  }

let ablation_failure_recovery opts =
  let named = Builders.internet2 () in
  let rng = Rng.create opts.seed in
  let tm = Synth.gravity rng ~n:12 ~total:4000.0 in
  let s = Scenario.build ~seed:opts.seed named tm in
  let controller = Controller.create s in
  let before = Controller.run_epoch controller in
  let verify_tag c =
    match Controller.verify c with Ok () -> "verified" | Error _ -> "FAILED"
  in
  let before_ok = verify_tag controller in
  (* Fail the most-traversed link. *)
  let g = named.Builders.graph in
  let link_use = Hashtbl.create 32 in
  Array.iter
    (fun c ->
      let p = c.Types.path in
      for i = 0 to Array.length p - 2 do
        let key = (min p.(i) p.(i + 1), max p.(i) p.(i + 1)) in
        Hashtbl.replace link_use key
          (c.Types.rate +. Option.value ~default:0.0 (Hashtbl.find_opt link_use key))
      done)
    s.Types.classes;
  let by_load ((u1, v1), w1) ((u2, v2), w2) =
    match Float.compare w2 w1 with
    | 0 -> ( match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)
    | c -> c
  in
  let (fu, fv), failed_load =
    (* lint: L3 — order erased: deterministic max (load, then link id) below *)
    match List.sort by_load (Hashtbl.fold (fun k v acc -> (k, v) :: acc) link_use []) with
    | best :: _ -> best
    | [] -> ((0, 0), 0.0)
  in
  Apple_topology.Graph.remove_edge g fu fv;
  (* Routing recomputes paths; APPLE follows (it never reroutes itself). *)
  let rerouted = ref 0 in
  let classes' =
    Array.map
      (fun c ->
        let on_failed =
          let p = c.Types.path in
          let hit = ref false in
          for i = 0 to Array.length p - 2 do
            if
              (p.(i) = fu && p.(i + 1) = fv) || (p.(i) = fv && p.(i + 1) = fu)
            then hit := true
          done;
          !hit
        in
        if on_failed then begin
          incr rerouted;
          match Apple_topology.Graph.shortest_path g c.Types.src c.Types.dst with
          | Some path -> { c with Types.path = Array.of_list path }
          | None -> c (* disconnected pair keeps its stale path *)
        end
        else c)
      s.Types.classes
  in
  let s' = { s with Types.classes = classes' } in
  let controller' = Controller.create s' in
  let after = Controller.run_epoch controller' in
  let after_ok = verify_tag controller' in
  let t = Table.create [ "Phase"; "Instances"; "Cores"; "Solve time"; "Walks" ] in
  Table.add_row t
    [
      "before failure";
      string_of_int before.Controller.instances;
      string_of_int before.Controller.cores;
      Printf.sprintf "%.2f s" before.Controller.solve_seconds;
      before_ok;
    ];
  Table.add_row t
    [
      "after failure + re-epoch";
      string_of_int after.Controller.instances;
      string_of_int after.Controller.cores;
      Printf.sprintf "%.2f s" after.Controller.solve_seconds;
      after_ok;
    ];
  {
    title = "Ablation: link failure -> routing change -> global re-epoch";
    body =
      Table.render t
      ^ Printf.sprintf
          "\nfailed link %d-%d (%.0f Mbps crossing); %d classes re-routed by \
           routing, zero by APPLE (interference freedom holds by construction)"
          fu fv failed_load !rerouted;
  }

let ablation_scale opts =
  (* The "gigantic networks" regime the paper defers to heuristics
     (Sec. IV-D): LP pipeline vs greedy across Rocketfuel-scale ISPs. *)
  let t =
    Table.create
      [ "Topology"; "Nodes"; "Links"; "Classes";
        "LP time"; "LP inst"; "Greedy time"; "Greedy inst" ]
  in
  List.iter
    (fun (named : Builders.named) ->
      let rng = Rng.create opts.seed in
      let n = Apple_topology.Graph.num_nodes named.Builders.graph in
      let tm = Synth.gravity rng ~n ~total:8_000.0 in
      let config = { Scenario.default_config with Scenario.max_classes = 100 } in
      let s = Scenario.build ~config ~seed:opts.seed named tm in
      let t0 = Unix.gettimeofday () in (* lint: L5 — wall-clock solve timing, reported as perf metadata only *)
      let lp = Optimization_engine.solve s in
      let lp_t = Unix.gettimeofday () -. t0 in (* lint: L5 — wall-clock solve timing, reported as perf metadata only *)
      let t1 = Unix.gettimeofday () in (* lint: L5 — wall-clock solve timing, reported as perf metadata only *)
      let greedy = Heuristic_engine.solve s in
      let greedy_t = Unix.gettimeofday () -. t1 in (* lint: L5 — wall-clock solve timing, reported as perf metadata only *)
      Table.add_row t
        [
          named.Builders.label;
          string_of_int n;
          string_of_int (Apple_topology.Graph.num_edges named.Builders.graph);
          string_of_int (Array.length s.Types.classes);
          Printf.sprintf "%.2f s" lp_t;
          string_of_int (Optimization_engine.instance_count lp);
          Printf.sprintf "%.1f ms" (1000.0 *. greedy_t);
          string_of_int (Optimization_engine.instance_count greedy);
        ])
    [ Builders.as3679 (); Builders.as1221 (); Builders.as1755 (); Builders.as3257 () ];
  {
    title =
      "Ablation: gigantic networks (Rocketfuel ISPs) — LP pipeline vs greedy heuristic";
    body = Table.render t;
  }

let ablation_path_stretch opts =
  (* Intro motivation (2): traffic steering adds path length; APPLE's
     on-path placement adds none.  Quantified per topology with a 50 us
     per-hop latency. *)
  let per_hop_us = 50.0 in
  let t =
    Table.create
      [
        "Topology";
        "Rerouted traffic";
        "Mean stretch";
        "Max stretch";
        "Added latency (mean)";
        "APPLE detour";
      ]
  in
  List.iter
    (fun (named : Builders.named) ->
      let s = scenario_for opts named in
      let st = Baselines.steering_stats ~seed:opts.seed s in
      (* mean added hops = (stretch - 1) * mean path hops *)
      let mean_hops =
        let acc = ref 0.0 in
        Array.iter
          (fun c ->
            acc := !acc +. float_of_int (Array.length c.Types.path - 1))
          s.Types.classes;
        !acc /. float_of_int (max 1 (Array.length s.Types.classes))
      in
      let added_us =
        (st.Baselines.mean_stretch -. 1.0) *. mean_hops *. per_hop_us
      in
      Table.add_row t
        [
          named.Builders.label;
          Printf.sprintf "%.0f%%" (100.0 *. st.Baselines.flows_rerouted);
          Printf.sprintf "%.2fx" st.Baselines.mean_stretch;
          Printf.sprintf "%.2fx" st.Baselines.max_stretch;
          Printf.sprintf "%.0f us" added_us;
          "0 (on-path)";
        ])
    (Builders.simulation_topologies ());
  {
    title =
      "Ablation: steering path stretch vs APPLE's on-path placement (interference)";
    body = Table.render t;
  }

let ablations opts =
  [
    ablation_engines opts;
    ablation_passes opts;
    ablation_split_depth opts;
    ablation_tag_mode opts;
    ablation_packet_level opts;
    ablation_failure_recovery opts;
    ablation_scale opts;
    ablation_path_stretch opts;
  ]
