module Instance = Apple_vnf.Instance
module Nf = Apple_vnf.Nf

let log = Logs.Src.create "apple.failover" ~doc:"Dynamic Handler (fast failover)"

module Log = (val Logs.src_log log : Logs.LOG)
module T = Apple_telemetry.Telemetry
module Flight = Apple_obs.Flight

(* Global mirrors of the per-handler counters, so one report covers a
   whole replay with many handlers; weight_moves counts each individual
   sub-class weight reassignment inside an episode. *)
let m_overloads = T.Counter.create "apple.failover.overloads"
let m_spawns = T.Counter.create "apple.failover.spawns"
let m_rollbacks = T.Counter.create "apple.failover.rollbacks"
let m_rebalances = T.Counter.create "apple.failover.rebalances"
let m_weight_moves = T.Counter.create "apple.failover.weight_moves"
let m_repairs = T.Counter.create "apple.failover.repairs"
let m_heals = T.Counter.create "apple.failover.heals"

type config = {
  high_watermark : float;
  low_watermark : float;
  spawn_allowed : bool;
}

(* The sub-class assignment packs instances up to nominal capacity, and
   the loss knee sits at ~1.02x (Fig. 6), so "overloaded" means offered
   strictly above capacity: 1.001 leaves the packed base state quiet while
   catching every loss-causing burst before the knee. *)
let default_config =
  { high_watermark = 1.001; low_watermark = 0.45; spawn_allowed = true }

(* One overload episode per hot instance.  [touched] lists the sub-classes
   whose weight the episode changed; rollback restores each to its
   assignment-time {!Netstate.pinned.baseline}, which is immune to
   interference between concurrent episodes (any residual imbalance is
   re-detected and re-handled on the next control round). *)
type episode = {
  instance : Instance.t;
  mutable touched : Netstate.pinned list;
  mutable spawned : (Instance.t * Netstate.pinned list ref) list;
      (** failover instances (pool) and the sub-classes pinned to each *)
}

(* Where the detector reads instance load from.  [Oracle] is the seed
   behaviour: the simulator's own ground-truth offered load, state no
   real controller has.  [Polled] reads the measured rates of an
   {!Apple_obs.Poller} — overloads are detected from dataplane counter
   deltas, delayed and smoothed exactly as an OpenFlow controller would
   see them.  Rollback bookkeeping (weights, baselines) always uses the
   controller's own state: that part is control-plane state, not a
   measurement. *)
type load_source = Oracle | Polled of Apple_obs.Poller.t

(* One repair episode per dead instance (chaos-injected VM death).
   Unlike overload episodes, repair does not spawn: the stranded share
   stays on the victims — visibly blackholed — until the orchestrator's
   respawned replacement comes up and {!heal} swaps it in. *)
type repair_episode = {
  dead : Instance.t;
  mutable r_touched : Netstate.pinned list;
      (** victims and siblings whose weight the repair changed; healing
          restores each to its baseline *)
}

type t = {
  config : config;
  state : Netstate.t;
  load_source : load_source;
  mutable episodes : episode list;
  mutable repairs : repair_episode list;
  mutable n_overloads : int;
  mutable n_spawns : int;
  mutable n_rollbacks : int;
  mutable n_rebalances : int;
  mutable n_repairs : int;
  mutable n_heals : int;
  mutable next_sub : int array;
}

let create ?(config = default_config) ?(load_source = Oracle) state =
  let next_sub =
    Array.map
      (fun subs ->
        1 + List.fold_left (fun acc p -> max acc p.Netstate.p_sub) (-1) subs)
      state.Netstate.per_class
  in
  {
    config;
    state;
    load_source;
    episodes = [];
    repairs = [];
    n_overloads = 0;
    n_spawns = 0;
    n_rollbacks = 0;
    n_rebalances = 0;
    n_repairs = 0;
    n_heals = 0;
    next_sub;
  }

(* Detection-side utilization: ground truth under [Oracle], the poller's
   smoothed counter-derived estimate under [Polled]. *)
let measured_utilization t inst =
  match t.load_source with
  | Oracle -> Instance.utilization inst
  | Polled p ->
      let cap = (Instance.spec inst).Nf.capacity_mbps in
      if cap <= 0.0 then 0.0
      else Apple_obs.Poller.offered_mbps p (Instance.id inst) /. cap

let find_episode t inst =
  List.find_opt
    (fun e -> Instance.id e.instance = Instance.id inst)
    t.episodes

let remember_weight episode p =
  if not (List.exists (fun q -> q == p) episode.touched) then
    episode.touched <- p :: episode.touched

(* Headroom (Mbps) a sub-class can absorb before one of its instances
   crosses the high watermark. *)
let absorbable t p =
  Array.fold_left
    (fun acc inst ->
      let cap = (Instance.spec inst).Nf.capacity_mbps in
      min acc ((t.config.high_watermark *. cap) -. Instance.offered inst))
    infinity p.Netstate.stage_instances

let spare_on t inst =
  let cap = (Instance.spec inst).Nf.capacity_mbps in
  (t.config.high_watermark *. cap) -. Instance.offered inst

(* Chain stage the hot instance serves for a victim sub-class. *)
let hot_stage template hot =
  let stage = ref 0 in
  Array.iteri
    (fun j i -> if Instance.id i = Instance.id hot then stage := j)
    template.Netstate.stage_instances;
  !stage

(* Hop indices stage [stage] may legally occupy: between the neighbouring
   stages' hops (chain order must survive the redirection). *)
let hop_window template stage ~path_len =
  let hops = template.Netstate.hops in
  let lo = if stage = 0 then 0 else hops.(stage - 1) in
  let hi =
    if stage = Array.length hops - 1 then path_len - 1 else hops.(stage + 1)
  in
  (lo, hi)

(* Hop index at which [host] can serve [stage] of [template], if any. *)
let host_hop t template stage host =
  let c = t.state.Netstate.scenario.Types.classes.(template.Netstate.p_class) in
  let lo, hi = hop_window template stage ~path_len:(Array.length c.Types.path) in
  let rec scan i =
    if i > hi then None
    else if c.Types.path.(i) = host then Some i
    else scan (i + 1)
  in
  scan lo

(* Spawn a pool instance for the episode: same kind as the hot instance,
   at the hot instance's own host when cores allow, otherwise at any
   switch of the victim's legal hop window. *)
let spawn_pool_instance t episode template stage =
  if not t.config.spawn_allowed then None
  else begin
    let hot = episode.instance in
    let kind = Instance.kind hot in
    let spec = Nf.spec kind in
    let orch = t.state.Netstate.orchestrator in
    let c = t.state.Netstate.scenario.Types.classes.(template.Netstate.p_class) in
    let lo, hi = hop_window template stage ~path_len:(Array.length c.Types.path) in
    let candidates =
      Instance.host hot :: List.init (hi - lo + 1) (fun k -> c.Types.path.(lo + k))
    in
    let rec try_hosts = function
      | [] -> None
      | host :: rest ->
          if
            Resource_orchestrator.available_cores orch host >= spec.Nf.cores
            && host_hop t template stage host <> None
          then begin
            let inst = Resource_orchestrator.launch orch kind ~host in
            t.n_spawns <- t.n_spawns + 1;
            T.Counter.incr m_spawns;
            T.Journal.recordf ~kind:"failover" "spawned %s pool instance at switch %d"
              (Nf.name kind) host;
            t.state.Netstate.extra_instances <-
              inst :: t.state.Netstate.extra_instances;
            episode.spawned <- (inst, ref []) :: episode.spawned;
            Some inst
          end
          else try_hosts rest
    in
    try_hosts candidates
  end

(* Pin [amount] weight of the victim's class onto pool instance [inst] by
   cloning [template] with stage [stage] redirected to [inst]'s host.
   Returns false when the host is not on the class's legal window. *)
let pin_to_pool t episode inst template stage amount =
  match host_hop t template stage (Instance.host inst) with
  | None -> false
  | Some hop ->
      let h = template.Netstate.p_class in
      let rate = t.state.Netstate.scenario.Types.classes.(h).Types.rate in
      let members =
        match
          List.find_opt
            (fun (i, _) -> Instance.id i = Instance.id inst)
            episode.spawned
        with
        | Some (_, members) -> members
        | None -> ref []
      in
      (* Reuse an existing clone of this template on this instance. *)
      let existing =
        List.find_opt
          (fun p ->
            p.Netstate.p_class = h
            && Instance.id p.Netstate.stage_instances.(stage) = Instance.id inst
            && Array.for_all2
                 (fun a b -> Instance.id a = Instance.id b)
                 (Array.mapi
                    (fun j i -> if j = stage then p.Netstate.stage_instances.(j) else i)
                    template.Netstate.stage_instances)
                 p.Netstate.stage_instances)
          !members
      in
      let target =
        match existing with
        | Some p -> p
        | None ->
            let stage_instances = Array.copy template.Netstate.stage_instances in
            stage_instances.(stage) <- inst;
            let hops = Array.copy template.Netstate.hops in
            hops.(stage) <- hop;
            let fresh =
              {
                Netstate.weight = 0.0;
                baseline = 0.0;
                hops;
                stage_instances;
                p_class = h;
                p_sub = t.next_sub.(h);
              }
            in
            t.next_sub.(h) <- t.next_sub.(h) + 1;
            t.state.Netstate.per_class.(h) <-
              t.state.Netstate.per_class.(h) @ [ fresh ];
            members := fresh :: !members;
            fresh
      in
      target.Netstate.weight <- target.Netstate.weight +. amount;
      T.Counter.incr m_weight_moves;
      Array.iter
        (fun i -> Instance.add_offered i (rate *. amount))
        target.Netstate.stage_instances;
      true

(* Handle an overload of [hot] (fresh or repeated). *)
let failover t hot =
  t.n_overloads <- t.n_overloads + 1;
  T.Counter.incr m_overloads;
  Flight.record Flight.Overload ~a:(Instance.id hot)
    ~b:(int_of_float (1000.0 *. Instance.utilization hot)) ();
  T.Journal.recordf ~kind:"failover" "episode opened: %s#%d at switch %d (%.0f/%.0f Mbps)"
    (Nf.name (Instance.kind hot)) (Instance.id hot) (Instance.host hot)
    (Instance.offered hot)
    (Instance.spec hot).Nf.capacity_mbps;
  Log.info (fun m ->
      m "overload: %s#%d at switch %d (%.0f/%.0f Mbps)"
        (Nf.name (Instance.kind hot)) (Instance.id hot) (Instance.host hot)
        (Instance.offered hot)
        (Instance.spec hot).Nf.capacity_mbps);
  let episode =
    match find_episode t hot with
    | Some e -> e
    | None ->
        let e = { instance = hot; touched = []; spawned = [] } in
        t.episodes <- e :: t.episodes;
        e
  in
  Array.iteri
    (fun h subs ->
      let rate = t.state.Netstate.scenario.Types.classes.(h).Types.rate in
      let uses_hot p =
        Array.exists
          (fun inst -> Instance.id inst = Instance.id hot)
          p.Netstate.stage_instances
      in
      let victims =
        List.filter (fun p -> p.Netstate.weight > 1e-12 && uses_hot p) subs
      in
      if victims <> [] && rate > 0.0 then begin
        t.n_rebalances <- t.n_rebalances + 1;
        T.Counter.incr m_rebalances;
        (* Halve every victim. *)
        let freed = ref 0.0 in
        List.iter
          (fun p ->
            remember_weight episode p;
            T.Counter.incr m_weight_moves;
            let half = p.Netstate.weight /. 2.0 in
            p.Netstate.weight <- half;
            Array.iter
              (fun inst -> Instance.add_offered inst (-.rate *. half))
              p.Netstate.stage_instances;
            freed := !freed +. half)
          victims;
        (* Spread onto least-loaded siblings first.  Pool sub-classes of
           other episodes (baseline 0) are excluded: weight parked there
           would evaporate when their episode rolls back. *)
        let siblings =
          List.filter
            (fun p ->
              p.Netstate.weight > 0.0
              && p.Netstate.baseline > 0.0
              && not (uses_hot p))
            subs
          |> List.sort (fun a b ->
                 Float.compare
                   (Netstate.subclass_utilization t.state a)
                   (Netstate.subclass_utilization t.state b))
        in
        List.iter
          (fun p ->
            if !freed > 1e-9 then begin
              let headroom = absorbable t p in
              let amount = min !freed (max 0.0 (headroom /. rate)) in
              if amount > 1e-9 then begin
                remember_weight episode p;
                T.Counter.incr m_weight_moves;
                p.Netstate.weight <- p.Netstate.weight +. amount;
                Array.iter
                  (fun inst -> Instance.add_offered inst (rate *. amount))
                  p.Netstate.stage_instances;
                freed := !freed -. amount
              end
            end)
          siblings;
        (* Remaining share goes to the episode's ClickOS pool. *)
        let template = List.hd victims in
        let stage = hot_stage template hot in
        let rec to_pool pool =
          if !freed > 1e-9 then
            match pool with
            | (inst, _) :: rest ->
                let amount = min !freed (max 0.0 (spare_on t inst /. rate)) in
                if amount > 1e-9 && pin_to_pool t episode inst template stage amount
                then freed := !freed -. amount;
                to_pool rest
            | [] -> (
                match spawn_pool_instance t episode template stage with
                | Some inst ->
                    let amount = min !freed (max 0.0 (spare_on t inst /. rate)) in
                    if
                      amount > 1e-9
                      && pin_to_pool t episode inst template stage amount
                    then begin
                      freed := !freed -. amount;
                      to_pool []
                    end
                    (* else: capacity exhausted; the leftover returns to
                       the victims below *)
                | None -> () (* out of cores: leftover returns below *))
        in
        to_pool episode.spawned;
        (* Anything unabsorbed returns to the victims. *)
        if !freed > 1e-9 then begin
          let back = !freed /. float_of_int (List.length victims) in
          List.iter
            (fun p ->
              p.Netstate.weight <- p.Netstate.weight +. back;
              Array.iter
                (fun inst -> Instance.add_offered inst (rate *. back))
                p.Netstate.stage_instances)
            victims
        end
      end)
    t.state.Netstate.per_class

(* Load the hot instance would carry if every sub-class ran at its
   assignment-time baseline weight, at current class rates.  Baselines are
   global, so this estimate is immune to interference between concurrent
   episodes. *)
let would_be_load t episode =
  let hot = episode.instance in
  let acc = ref 0.0 in
  Array.iteri
    (fun h subs ->
      let rate = t.state.Netstate.scenario.Types.classes.(h).Types.rate in
      List.iter
        (fun p ->
          let uses_hot =
            Array.exists
              (fun inst -> Instance.id inst = Instance.id hot)
              p.Netstate.stage_instances
          in
          if uses_hot then acc := !acc +. (rate *. p.Netstate.baseline))
        subs)
    t.state.Netstate.per_class;
  !acc

let rec rollback t episode =
  Log.info (fun m ->
      m "rollback: instance %d recovers; cancelling %d failover instance(s)"
        (Instance.id episode.instance)
        (List.length episode.spawned));
  (* A spawned instance can itself have become overloaded and own an
     episode; that child must unwind before its instance is destroyed. *)
  List.iter
    (fun (inst, _) ->
      match
        List.find_opt
          (fun e -> Instance.id e.instance = Instance.id inst)
          t.episodes
      with
      | Some child when not (child == episode) -> rollback t child
      | Some _ | None -> ())
    episode.spawned;
  t.n_rollbacks <- t.n_rollbacks + 1;
  T.Counter.incr m_rollbacks;
  Flight.record Flight.Recover ~a:(Instance.id episode.instance) ();
  T.Journal.recordf ~kind:"failover"
    "rollback: instance %d recovered, %d failover instance(s) cancelled"
    (Instance.id episode.instance)
    (List.length episode.spawned);
  List.iter
    (fun p -> p.Netstate.weight <- p.Netstate.baseline)
    episode.touched;
  List.iter
    (fun (inst, members) ->
      List.iter
        (fun fresh ->
          fresh.Netstate.weight <- 0.0;
          let h = fresh.Netstate.p_class in
          t.state.Netstate.per_class.(h) <-
            List.filter (fun p -> not (p == fresh)) t.state.Netstate.per_class.(h))
        !members;
      t.state.Netstate.extra_instances <-
        List.filter
          (fun i -> Instance.id i <> Instance.id inst)
          t.state.Netstate.extra_instances;
      Resource_orchestrator.destroy t.state.Netstate.orchestrator inst)
    episode.spawned;
  t.episodes <- List.filter (fun e -> not (e == episode)) t.episodes

(* Re-run admission for only the sub-classes pinned to [dead], warm
   started from current weights: shift as much of each victim's share as
   the live sibling sub-classes can absorb under the high watermark; the
   unabsorbable remainder stays on the victim, where it is visibly
   blackholed (honest loss accounting) until {!heal} swaps in the
   respawned replacement.  Returns the weight fraction left stranded,
   summed over classes. *)
let repair t ~dead =
  Netstate.recompute_loads t.state;
  let dead_id = Instance.id dead in
  let episode =
    match
      List.find_opt (fun r -> Instance.id r.dead = dead_id) t.repairs
    with
    | Some r -> r
    | None ->
        let r = { dead; r_touched = [] } in
        t.repairs <- r :: t.repairs;
        r
  in
  let touch p =
    if not (List.exists (fun q -> q == p) episode.r_touched) then
      episode.r_touched <- p :: episode.r_touched
  in
  t.n_repairs <- t.n_repairs + 1;
  T.Counter.incr m_repairs;
  let stranded = ref 0.0 in
  Array.iteri
    (fun h subs ->
      let rate = t.state.Netstate.scenario.Types.classes.(h).Types.rate in
      let uses_dead p =
        Array.exists
          (fun inst -> Instance.id inst = dead_id)
          p.Netstate.stage_instances
      in
      let victims =
        List.filter (fun p -> p.Netstate.weight > 1e-12 && uses_dead p) subs
      in
      if victims <> [] && rate > 0.0 then begin
        let siblings =
          List.filter
            (fun p ->
              p.Netstate.weight > 0.0
              && p.Netstate.baseline > 0.0
              && (not (uses_dead p))
              && not (Netstate.blackholed t.state p))
            subs
          |> List.sort (fun a b ->
                 Float.compare
                   (Netstate.subclass_utilization t.state a)
                   (Netstate.subclass_utilization t.state b))
        in
        List.iter
          (fun p ->
            touch p;
            let freed = ref p.Netstate.weight in
            p.Netstate.weight <- 0.0;
            Array.iter
              (fun inst -> Instance.add_offered inst (-.rate *. !freed))
              p.Netstate.stage_instances;
            T.Counter.incr m_weight_moves;
            List.iter
              (fun s ->
                if !freed > 1e-9 then begin
                  let headroom = absorbable t s in
                  let amount = min !freed (max 0.0 (headroom /. rate)) in
                  if amount > 1e-9 then begin
                    touch s;
                    T.Counter.incr m_weight_moves;
                    s.Netstate.weight <- s.Netstate.weight +. amount;
                    Array.iter
                      (fun inst -> Instance.add_offered inst (rate *. amount))
                      s.Netstate.stage_instances;
                    freed := !freed -. amount
                  end
                end)
              siblings;
            (* The unabsorbable remainder stays on the victim: those
               flows keep forwarding into the dead instance and are
               counted as blackholed, not silently dropped. *)
            if !freed > 1e-9 then begin
              p.Netstate.weight <- p.Netstate.weight +. !freed;
              Array.iter
                (fun inst -> Instance.add_offered inst (rate *. !freed))
                p.Netstate.stage_instances;
              stranded := !stranded +. !freed
            end)
          victims
      end)
    t.state.Netstate.per_class;
  T.Journal.recordf ~kind:"repair"
    "repair: instance %d dead, %d sub-class(es) touched, %.3f stranded"
    dead_id
    (List.length episode.r_touched)
    !stranded;
  Log.info (fun m ->
      m "repair: instance %d dead, %d sub-class(es) touched, %.3f stranded"
        dead_id
        (List.length episode.r_touched)
        !stranded);
  Netstate.recompute_loads t.state;
  !stranded

(* The respawned [replacement] is up: swap it into every sub-class stage
   still pinned to [dead] and restore the repair's touched weights to
   their baselines. *)
let heal t ~dead ~replacement =
  let dead_id = Instance.id dead in
  Array.iter
    (fun subs ->
      List.iter
        (fun p ->
          Array.iteri
            (fun j inst ->
              if Instance.id inst = dead_id then
                p.Netstate.stage_instances.(j) <- replacement)
            p.Netstate.stage_instances)
        subs)
    t.state.Netstate.per_class;
  (match
     List.find_opt (fun r -> Instance.id r.dead = dead_id) t.repairs
   with
  | Some episode ->
      List.iter
        (fun p -> p.Netstate.weight <- p.Netstate.baseline)
        episode.r_touched;
      t.repairs <- List.filter (fun r -> not (r == episode)) t.repairs
  | None -> ());
  t.n_heals <- t.n_heals + 1;
  T.Counter.incr m_heals;
  Flight.record Flight.Recover ~a:dead_id ~b:(Instance.id replacement) ();
  T.Journal.recordf ~kind:"repair" "heal: instance %d replaced by %d" dead_id
    (Instance.id replacement);
  Log.info (fun m ->
      m "heal: instance %d replaced by %d" dead_id (Instance.id replacement));
  Netstate.recompute_loads t.state

let step t =
  Netstate.recompute_loads t.state;
  (* Roll back episodes whose would-be load has subsided: restoring the
     saved weights must not re-overload the instance — the 8.5/4 Kpps
     hysteresis of Sec. VIII-E generalized to instances whose base load is
     close to capacity. *)
  let rollback_level = max t.config.low_watermark t.config.high_watermark in
  let recovered =
    List.filter
      (fun e ->
        let cap = (Instance.spec e.instance).Nf.capacity_mbps in
        would_be_load t e <= rollback_level *. cap)
      t.episodes
  in
  List.iter (rollback t) recovered;
  if recovered <> [] then Netstate.recompute_loads t.state;
  (* Detect (new or continued) overloads. *)
  let hot =
    List.filter
      (fun inst ->
        measured_utilization t inst > t.config.high_watermark
        (* A dead instance is blackholed, not overloaded: its traffic is
           the repair path's problem, not fast failover's. *)
        && not
             (Apple_dataplane.Failmask.instance_down t.state.Netstate.mask
                (Instance.id inst)))
      (Netstate.instances_in_use t.state)
  in
  let hot =
    List.sort (fun a b -> Int.compare (Instance.id a) (Instance.id b)) hot
  in
  List.iter (fun inst -> failover t inst) hot;
  (* Safety net: concurrent episodes can transiently unbalance a class's
     distribution (a rollback reclaims weight another episode parked);
     renormalizing keeps the data plane semantics — every packet of the
     class goes somewhere — while the next rounds converge. *)
  Array.iter
    (fun subs ->
      let total = List.fold_left (fun acc p -> acc +. p.Netstate.weight) 0.0 subs in
      if subs <> [] && total > 1e-9 && abs_float (total -. 1.0) > 1e-9 then
        List.iter
          (fun p -> p.Netstate.weight <- p.Netstate.weight /. total)
          subs)
    t.state.Netstate.per_class;
  Netstate.recompute_loads t.state

let overloaded_instances t = List.map (fun e -> e.instance) t.episodes

let spawned_cores t = Netstate.extra_cores t.state

let pending_repairs t = List.map (fun r -> r.dead) t.repairs

let quiescent t =
  match (t.episodes, t.repairs) with [], [] -> true | _ -> false

let restore_counters t counters =
  List.iter
    (fun (name, v) ->
      match name with
      | "overloads" -> t.n_overloads <- v
      | "spawns" -> t.n_spawns <- v
      | "rollbacks" -> t.n_rollbacks <- v
      | "rebalances" -> t.n_rebalances <- v
      | "repairs" -> t.n_repairs <- v
      | "heals" -> t.n_heals <- v
      | other ->
          invalid_arg
            ("Dynamic_handler.restore_counters: unknown counter " ^ other))
    counters

let events t =
  [
    ("overloads", t.n_overloads);
    ("spawns", t.n_spawns);
    ("rollbacks", t.n_rollbacks);
    ("rebalances", t.n_rebalances);
    ("repairs", t.n_repairs);
    ("heals", t.n_heals);
  ]
