module Nf = Apple_vnf.Nf
module Instance = Apple_vnf.Instance

type subclass = {
  class_id : int;
  sub_id : int;
  hops : int array;
  weight : float;
}

let eps = 1e-9

let decompose (cls : Types.flow_class) d =
  let plen = Array.length cls.Types.path in
  let clen = Array.length cls.Types.chain in
  if clen = 0 then
    [ { class_id = cls.Types.id; sub_id = 0; hops = [||]; weight = 1.0 } ]
  else begin
    let remaining = Array.map Array.copy d in
    let total_left () =
      let acc = ref 0.0 in
      for i = 0 to plen - 1 do
        acc := !acc +. remaining.(i).(0)
      done;
      !acc
    in
    let subclasses = ref [] in
    let sub_id = ref 0 in
    (* Peel while mass remains.  Each iteration zeroes at least one cell,
       so at most plen*clen rounds. *)
    while total_left () > 1e-7 do
      let hops = Array.make clen 0 in
      let ok = ref true in
      let min_hop = ref 0 in
      for j = 0 to clen - 1 do
        (* earliest hop >= min_hop with remaining mass for stage j *)
        let rec find i =
          if i >= plen then None
          else if remaining.(i).(j) > eps then Some i
          else find (i + 1)
        in
        match find !min_hop with
        | Some i ->
            hops.(j) <- i;
            min_hop := i
        | None -> (
            (* Numerical slack: Eq. (3) guarantees existence analytically;
               fall back to the last hop holding mass and shift that mass
               forward to keep monotonicity. *)
            let rec find_any i best =
              if i >= plen then best
              else if remaining.(i).(j) > eps then find_any (i + 1) (Some i)
              else find_any (i + 1) best
            in
            match find_any 0 None with
            | Some i ->
                let mass = remaining.(i).(j) in
                remaining.(i).(j) <- 0.0;
                remaining.(!min_hop).(j) <- remaining.(!min_hop).(j) +. mass;
                hops.(j) <- !min_hop
            | None -> ok := false)
      done;
      if !ok then begin
        let weight = ref infinity in
        for j = 0 to clen - 1 do
          weight := min !weight remaining.(hops.(j)).(j)
        done;
        let w = !weight in
        if w <= eps then
          (* Defensive: avoid livelock on degenerate numerics. *)
          Array.iteri
            (fun j i -> remaining.(i).(j) <- 0.0)
            hops
        else begin
          for j = 0 to clen - 1 do
            remaining.(hops.(j)).(j) <- remaining.(hops.(j)).(j) -. w
          done;
          subclasses :=
            { class_id = cls.Types.id; sub_id = !sub_id; hops; weight = w }
            :: !subclasses;
          incr sub_id
        end
      end
      else begin
        (* No stage mass anywhere: terminate. *)
        for i = 0 to plen - 1 do
          for j = 0 to clen - 1 do
            remaining.(i).(j) <- 0.0
          done
        done
      end
    done;
    let subclasses = List.rev !subclasses in
    (* Normalize: numerical peeling can leave the total a hair under 1. *)
    let total = List.fold_left (fun acc s -> acc +. s.weight) 0.0 subclasses in
    if total <= 0.0 then
      [ { class_id = cls.Types.id; sub_id = 0; hops = Array.make clen 0; weight = 1.0 } ]
    else List.map (fun s -> { s with weight = s.weight /. total }) subclasses
  end

let weights_consistent (cls : Types.flow_class) d subclasses =
  let plen = Array.length cls.Types.path in
  let clen = Array.length cls.Types.chain in
  let realized = Array.make_matrix plen clen 0.0 in
  List.iter
    (fun s ->
      Array.iteri
        (fun j i -> realized.(i).(j) <- realized.(i).(j) +. s.weight)
        s.hops)
    subclasses;
  let ok = ref true in
  for i = 0 to plen - 1 do
    for j = 0 to clen - 1 do
      if abs_float (realized.(i).(j) -. d.(i).(j)) > 1e-5 then ok := false
    done
  done;
  !ok

type assignment = {
  subclasses : subclass list;
  instance_of : (int * int, Instance.t) Hashtbl.t;
  instances : Instance.t list;
}

let key s = (s.class_id * 1024) + s.sub_id

let assign (s : Types.scenario) (placement : Optimization_engine.placement) =
  let classes = s.Types.classes in
  (* Provision instances per the placement counts. *)
  let next_instance = ref 0 in
  let by_site : (int * int, Instance.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let all_instances = ref [] in
  let used_cores = Array.make (Array.length s.Types.host_cores) 0 in
  let provision v k =
    let spec = Nf.spec (Nf.kind_of_index k) in
    let inst = Instance.create ~id:!next_instance ~spec ~host:v in
    incr next_instance;
    used_cores.(v) <- used_cores.(v) + spec.Nf.cores;
    all_instances := inst :: !all_instances;
    (match Hashtbl.find_opt by_site (v, k) with
    | Some bucket -> bucket := inst :: !bucket
    | None -> Hashtbl.replace by_site (v, k) (ref [ inst ]));
    inst
  in
  Array.iteri
    (fun v row ->
      Array.iteri
        (fun k count ->
          for _ = 1 to count do
            ignore (provision v k)
          done)
        row)
    placement.Optimization_engine.counts;
  let site_of (c : Types.flow_class) sub stage =
    let v = c.Types.path.(sub.hops.(stage)) in
    let k = Nf.kind_index c.Types.chain.(stage) in
    (v, k)
  in
  let bucket_at site =
    match Hashtbl.find_opt by_site site with
    | None | Some { contents = [] } ->
        invalid_arg
          (Printf.sprintf
             "Subclass.assign: no instance provisioned at switch %d for kind %d"
             (fst site) (snd site))
    | Some bucket -> !bucket
  in
  let cap inst = (Instance.spec inst).Nf.capacity_mbps in
  let spare inst = cap inst -. Instance.offered inst in
  let best_instance site =
    (* Most spare capacity first: fills bottleneck instances evenly and
       makes the split-and-retry loop converge. *)
    List.fold_left
      (fun best inst -> if spare inst > spare best then inst else best)
      (List.hd (bucket_at site))
      (List.tl (bucket_at site))
  in
  let instance_of = Hashtbl.create 256 in
  let final_subclasses = ref [] in
  (* Place one class's sub-classes; when a sub-class's demand does not fit
     inside single instances at every stage, split it into a fitting part
     and a remainder (creating a new sub-class), as Sec. V-A allows —
     sub-classes are just finer flow aggregates. *)
  let place_class (c : Types.flow_class) subs =
    let next_sub_id = ref (List.length subs) in
    let queue = Queue.create () in
    List.iter (fun sub -> Queue.add sub queue) subs;
    let guard = ref 0 in
    while not (Queue.is_empty queue) do
      incr guard;
      if !guard > 100_000 then
        invalid_arg "Subclass.assign: splitting failed to converge";
      let sub = Queue.pop queue in
      let rate = c.Types.rate *. sub.weight in
      let n_stages = Array.length sub.hops in
      if n_stages = 0 then final_subclasses := sub :: !final_subclasses
      else if rate <= 1e-9 then begin
        (* A zero-rate sub-class (the class's demand vanished in this
           snapshot) still needs pinned instances: rule generation emits
           a vSwitch chain for every sub-class with stages.  The
           placement may have provisioned nothing for it (counts scale
           with load), so pin to an existing instance when one is there,
           lazily provision one when the host has spare cores, and fall
           back to any instance of the right kind — zero demand charges
           no load wherever it lands. *)
        let idle_instance ((v, k) as site) =
          match Hashtbl.find_opt by_site site with
          | Some { contents = _ :: _ } -> best_instance site
          | _ ->
              let cores = (Nf.spec (Nf.kind_of_index k)).Nf.cores in
              if s.Types.host_cores.(v) - used_cores.(v) >= cores then
                provision v k
              else begin
                match
                  List.find_opt
                    (fun i -> Nf.kind_index (Instance.kind i) = k)
                    !all_instances
                with
                | Some inst -> inst
                | None -> (
                    let rec free v' =
                      if v' >= Array.length s.Types.host_cores then None
                      else if s.Types.host_cores.(v') - used_cores.(v') >= cores
                      then Some v'
                      else free (v' + 1)
                    in
                    match free 0 with
                    | Some v' -> provision v' k
                    | None ->
                        invalid_arg
                          (Printf.sprintf
                             "Subclass.assign: no instance provisioned at \
                              switch %d for kind %d"
                             v k))
              end
        in
        Array.iteri
          (fun j site -> Hashtbl.replace instance_of (key sub, j) (idle_instance site))
          (Array.init n_stages (site_of c sub));
        final_subclasses := sub :: !final_subclasses
      end
      else begin
        (* The placeable amount is limited by the emptiest instance at the
           tightest stage. *)
        let chosen = Array.init n_stages (fun j -> best_instance (site_of c sub j)) in
        let placeable =
          Array.fold_left (fun acc inst -> min acc (spare inst)) infinity chosen
        in
        if placeable >= rate -. 1e-6 then begin
          Array.iteri
            (fun j inst ->
              Instance.add_offered inst rate;
              Hashtbl.replace instance_of (key sub, j) inst)
            chosen;
          final_subclasses := sub :: !final_subclasses
        end
        else if placeable <= 1e-9 then
          (* All instances briefly full from float dust; force-place on the
             emptiest to avoid livelock (overload is bounded by epsilon). *)
          begin
            Array.iteri
              (fun j inst ->
                Instance.add_offered inst rate;
                Hashtbl.replace instance_of (key sub, j) inst)
              chosen;
            final_subclasses := sub :: !final_subclasses
          end
        else begin
          let fit_fraction = placeable /. rate in
          let fit_weight = sub.weight *. fit_fraction in
          let rem_weight = sub.weight -. fit_weight in
          let fitted = { sub with weight = fit_weight } in
          Array.iteri
            (fun j inst ->
              Instance.add_offered inst (c.Types.rate *. fit_weight);
              Hashtbl.replace instance_of (key fitted, j) inst)
            chosen;
          final_subclasses := fitted :: !final_subclasses;
          let remainder =
            { sub with sub_id = !next_sub_id; weight = rem_weight }
          in
          incr next_sub_id;
          Queue.add remainder queue
        end
      end
    done
  in
  Array.iter
    (fun c ->
      let subs =
        decompose c placement.Optimization_engine.distribution.(c.Types.id)
      in
      place_class c subs)
    classes;
  {
    subclasses = List.rev !final_subclasses;
    instance_of;
    instances = List.rev !all_instances;
  }

let pinned t sub =
  Array.init (Array.length sub.hops) (fun j ->
      Hashtbl.find_opt t.instance_of (key sub, j))

let repin t sub ~stage ~rate inst =
  (match Hashtbl.find_opt t.instance_of (key sub, stage) with
  | Some old -> Instance.add_offered old (-.rate)
  | None -> ());
  Instance.add_offered inst rate;
  Hashtbl.replace t.instance_of (key sub, stage) inst

let max_instance_id t =
  List.fold_left (fun acc i -> max acc (Instance.id i)) (-1) t.instances

let instance_load_ok t ~slack =
  List.for_all
    (fun inst ->
      Instance.offered inst
      <= (slack *. (Instance.spec inst).Nf.capacity_mbps) +. 1e-6)
    t.instances
