(** The Dynamic Handler (paper Sec. III and VI): fast failover for
    small-time-scale traffic dynamics.

    On an overload notification from a VNF instance it (1) halves the
    weight of every sub-class traversing that instance, (2) spreads the
    freed share onto the least-loaded sibling sub-classes of the same
    class, and (3) if that would overload the siblings, spawns new
    lightweight ClickOS instances and creates new sub-classes to absorb
    the excess.  When the instance's rate falls back under the low
    watermark, the distribution rolls back and the spawned instances are
    cancelled.  Only TCAM rule updates (~70 ms) and ClickOS boots
    (~30 ms) are involved, which is what makes the reaction fast. *)

type config = {
  high_watermark : float;  (** overload when utilization exceeds this *)
  low_watermark : float;  (** roll back when utilization falls below *)
  spawn_allowed : bool;  (** disallow to study pure rebalancing *)
}

val default_config : config
(** high 0.95, low 0.45 — the 8.5/4 Kpps thresholds of Sec. VIII-E scaled
    to the monitor's ~9 Kpps capacity. *)

type load_source =
  | Oracle
      (** read {!Apple_vnf.Instance.offered} directly — simulator ground
          truth, the seed behaviour *)
  | Polled of Apple_obs.Poller.t
      (** read the poller's counter-derived rate estimates, delayed and
          EWMA-smoothed exactly as a real controller's measurement plane
          would be *)

type t

val create : ?config:config -> ?load_source:load_source -> Netstate.t -> t
(** [load_source] (default [Oracle]) selects where overload {e detection}
    reads instance load from.  Rollback bookkeeping always uses the
    controller's own weights and baselines — that is control-plane
    state, not a measurement. *)

val step : t -> unit
(** One control round against current instance loads: detect overloads,
    fail over, and roll back recovered instances.  Loads are recomputed
    before and after.  Call once per traffic snapshot. *)

(** {2 Crash repair}

    The chaos engine's VM-death fault is handled by a separate repair
    path, not by fast failover: a dead instance is a blackhole, not an
    overload. *)

val repair : t -> dead:Apple_vnf.Instance.t -> float
(** Re-run admission for only the sub-classes pinned to [dead], warm
    started from current weights: shift as much of each victim's share
    as live sibling sub-classes absorb under the high watermark.  The
    unabsorbable remainder stays on the victim — visibly blackholed (see
    {!Netstate.blackholed}) — until {!heal}.  Returns the stranded
    weight fraction summed over classes.  Idempotent per dead instance:
    repeated calls extend the same repair episode. *)

val heal : t -> dead:Apple_vnf.Instance.t -> replacement:Apple_vnf.Instance.t -> unit
(** The respawned replacement is ready: swap it into every sub-class
    stage still pinned to [dead], restore the repair episode's touched
    weights to their baselines and close the episode.  The caller must
    clear [dead] from the failure mask and reinstall rules (the
    replacement has a new instance id). *)

val pending_repairs : t -> Apple_vnf.Instance.t list
(** Dead instances with an open repair episode. *)

val quiescent : t -> bool
(** No open overload episode and no open repair episode — the handler
    holds no transient state beyond its event counters, so the epoch is
    reconstructible from the assignment alone (the soak harness only
    checkpoints at such points). *)

val restore_counters : t -> (string * int) list -> unit
(** Overwrite the event counters from a serialized {!events} list — the
    checkpoint-restore hook.  Raises [Invalid_argument] on an unknown
    counter name. *)

val overloaded_instances : t -> Apple_vnf.Instance.t list
(** Instances currently in the overloaded state (for inspection). *)

val spawned_cores : t -> int
(** Cores held by failover-spawned instances right now. *)

val events : t -> (string * int) list
(** Counters: [("overloads", n); ("spawns", n); ("rollbacks", n);
    ("rebalances", n); ("repairs", n); ("heals", n)]. *)
