(** The Resource Orchestrator (paper Sec. III): allocates host resources,
    launches and cancels VNF instances, and reports availability to the
    Optimization Engine.

    In the prototype this is OpenStack + libvirt; here it is an exact
    accountant of per-host CPU cores with the measured launch latencies
    attached when a simulation world is provided. *)

type t

val create : host_cores:int array -> t
(** One APPLE host per switch with the given core budgets. *)

val total_cores : t -> int
val used_cores : t -> int -> int
val available_cores : t -> int -> int
(** [A_v] of Eq. (6): free cores at switch [v]'s host. *)

val instances : t -> Apple_vnf.Instance.t list
(** All running instances, launch order. *)

val instances_at : t -> int -> Apple_vnf.Instance.t list

exception Out_of_resources of { host : int; wanted : int; available : int }

val launch :
  t ->
  ?world:Apple_sim.Engine.t ->
  ?rng:Apple_prelude.Rng.t ->
  ?boot:Apple_vnf.Lifecycle.boot_path ->
  ?on_ready:(Apple_vnf.Instance.t -> unit) ->
  Apple_vnf.Nf.kind ->
  host:int ->
  Apple_vnf.Instance.t
(** Reserve cores immediately and return the instance.  When [world] is
    given, the instance is only marked ready (see {!is_ready}) after the
    boot latency of [boot] (default: [Raw_clickos] for ClickOS-able kinds,
    [Normal_vm] otherwise) has elapsed on the simulation clock; [on_ready]
    fires at that moment (immediately without a world).  Raises
    {!Out_of_resources} when the host lacks cores. *)

val is_ready : t -> Apple_vnf.Instance.t -> bool
(** Instances launched without a world are ready at once. *)

val destroy : t -> Apple_vnf.Instance.t -> unit
(** Release the instance's cores.  Idempotent. *)

(** {2 Crash recovery}

    When the chaos engine kills a VNF instance's VM, the orchestrator
    respawns a replacement of the same kind on the same host.  Repeated
    crashes of the same slot back off exponentially (capped), modelling a
    supervisor that avoids hammering a sick hypervisor. *)

type backoff = {
  base : float;  (** delay before the first respawn attempt, seconds *)
  factor : float;  (** multiplier per subsequent attempt *)
  cap : float;  (** upper bound on the delay, seconds *)
}

val default_backoff : backoff
(** base 0.5 s, factor 2, cap 8 s. *)

val backoff_delay : ?policy:backoff -> attempt:int -> unit -> float
(** Pure: [min cap (base *. factor ** attempt)].  Attempt 0 is the first
    respawn.  Raises [Invalid_argument] on a negative attempt. *)

val respawn :
  t ->
  ?world:Apple_sim.Engine.t ->
  ?rng:Apple_prelude.Rng.t ->
  ?boot:Apple_vnf.Lifecycle.boot_path ->
  ?policy:backoff ->
  ?attempt:int ->
  ?on_ready:(Apple_vnf.Instance.t -> unit) ->
  Apple_vnf.Instance.t ->
  Apple_vnf.Instance.t
(** Destroy the dead instance and launch a same-kind replacement on the
    same host.  With a [world], the boot only {e starts} after
    {!backoff_delay} for [attempt] (default 0) has elapsed on the sim
    clock, then takes the usual boot latency; [on_ready] fires when the
    replacement is up.  Without a world the replacement is ready at
    once.  Raises {!Out_of_resources} only if the host cannot even hold
    the replacement after the corpse's cores are released. *)

val next_id : t -> int
(** The id the next {!launch} or {!respawn} will assign. *)

val set_next_id : t -> int -> unit
(** Checkpoint-restore hook: force the id counter.  Fast-failover
    episodes that opened and closed advance the counter without leaving
    instances behind, so a restored run replaying only the heal ledger
    must re-align it (to each recorded replacement id before its
    respawn, and to the checkpointed counter afterwards) to mint the
    same ids the original run did.  Raises [Invalid_argument] when a
    live instance already uses an id at or above [n]. *)

val adopt : t -> Apple_vnf.Instance.t list -> unit
(** Register instances created elsewhere (e.g. {!Subclass.assign}) so
    their cores are accounted.  Raises {!Out_of_resources} if they do not
    fit. *)

val snapshot_available : t -> int array
(** Available cores per switch — what the Optimization Engine polls. *)
