module Nf = Apple_vnf.Nf
module Instance = Apple_vnf.Instance
module Lifecycle = Apple_vnf.Lifecycle
module Engine = Apple_sim.Engine

type t = {
  host_cores : int array;
  used : int array;
  mutable all : Instance.t list;  (* reverse launch order *)
  mutable next_id : int;
  ready : (int, bool) Hashtbl.t;  (* instance id -> booted *)
}

exception Out_of_resources of { host : int; wanted : int; available : int }

let create ~host_cores =
  {
    host_cores = Array.copy host_cores;
    used = Array.make (Array.length host_cores) 0;
    all = [];
    next_id = 0;
    ready = Hashtbl.create 64;
  }

let total_cores t = Array.fold_left ( + ) 0 t.host_cores
let used_cores t v = t.used.(v)
let available_cores t v = t.host_cores.(v) - t.used.(v)
let instances t = List.rev t.all
let instances_at t v = List.filter (fun i -> Instance.host i = v) (instances t)

let reserve t ~host ~cores =
  if cores > available_cores t host then
    raise (Out_of_resources { host; wanted = cores; available = available_cores t host });
  t.used.(host) <- t.used.(host) + cores

let launch t ?world ?rng ?boot ?on_ready kind ~host =
  let spec = Nf.spec kind in
  reserve t ~host ~cores:spec.Nf.cores;
  let inst = Instance.create ~id:t.next_id ~spec ~host in
  t.next_id <- t.next_id + 1;
  t.all <- inst :: t.all;
  let ready () =
    Hashtbl.replace t.ready (Instance.id inst) true;
    match on_ready with Some f -> f inst | None -> ()
  in
  (match world with
  | None -> ready ()
  | Some w ->
      Hashtbl.replace t.ready (Instance.id inst) false;
      let path =
        match boot with
        | Some p -> p
        | None ->
            if spec.Nf.clickos then Lifecycle.Raw_clickos else Lifecycle.Normal_vm
      in
      let rng =
        match rng with Some r -> r | None -> Apple_prelude.Rng.create 0
      in
      Lifecycle.provision w rng path ~on_ready:(fun _ -> ready ()));
  inst

let is_ready t inst =
  match Hashtbl.find_opt t.ready (Instance.id inst) with
  | Some r -> r
  | None -> false

let destroy t inst =
  if Hashtbl.mem t.ready (Instance.id inst) then begin
    Hashtbl.remove t.ready (Instance.id inst);
    let host = Instance.host inst in
    t.used.(host) <- t.used.(host) - (Instance.spec inst).Nf.cores;
    t.all <- List.filter (fun i -> Instance.id i <> Instance.id inst) t.all
  end

(* Capped exponential backoff for VM respawn after a crash: attempt 0
   waits [base], each further attempt multiplies by [factor], never
   exceeding [cap].  Pure so the schedule is unit-testable. *)
type backoff = { base : float; factor : float; cap : float }

let default_backoff = { base = 0.5; factor = 2.0; cap = 8.0 }

let backoff_delay ?(policy = default_backoff) ~attempt () =
  if attempt < 0 then invalid_arg "Resource_orchestrator.backoff_delay";
  let d = policy.base *. (policy.factor ** float_of_int attempt) in
  if d < policy.cap then d else policy.cap

let respawn t ?world ?rng ?boot ?(policy = default_backoff) ?(attempt = 0)
    ?on_ready dead =
  let kind = (Instance.spec dead).Nf.kind in
  let host = Instance.host dead in
  (* Release the corpse's cores first so the replacement fits on the
     same host even when it is full. *)
  destroy t dead;
  match world with
  | None -> launch t ?rng ?boot ?on_ready kind ~host
  | Some w ->
      (* Reserve cores and mint the replacement now, but only start the
         boot after the backoff delay has elapsed on the sim clock. *)
      let spec = Nf.spec kind in
      reserve t ~host ~cores:spec.Nf.cores;
      let inst = Instance.create ~id:t.next_id ~spec ~host in
      t.next_id <- t.next_id + 1;
      t.all <- inst :: t.all;
      Hashtbl.replace t.ready (Instance.id inst) false;
      let path =
        match boot with
        | Some p -> p
        | None ->
            if spec.Nf.clickos then Lifecycle.Raw_clickos else Lifecycle.Normal_vm
      in
      let rng =
        match rng with Some r -> r | None -> Apple_prelude.Rng.create 0
      in
      Engine.schedule w ~delay:(backoff_delay ~policy ~attempt ()) (fun w ->
          Lifecycle.provision w rng path ~on_ready:(fun _ ->
              (* The crash may have been healed by other means meanwhile;
                 only flip readiness if the replacement still exists. *)
              if Hashtbl.mem t.ready (Instance.id inst) then begin
                Hashtbl.replace t.ready (Instance.id inst) true;
                match on_ready with Some f -> f inst | None -> ()
              end));
      inst

let next_id t = t.next_id

let set_next_id t n =
  List.iter
    (fun inst ->
      if Instance.id inst >= n then
        invalid_arg
          (Printf.sprintf
             "Resource_orchestrator.set_next_id: live instance %d >= %d"
             (Instance.id inst) n))
    t.all;
  t.next_id <- n

let adopt t insts =
  List.iter
    (fun inst ->
      reserve t ~host:(Instance.host inst) ~cores:(Instance.spec inst).Nf.cores;
      t.all <- inst :: t.all;
      t.next_id <- max t.next_id (Instance.id inst + 1);
      Hashtbl.replace t.ready (Instance.id inst) true)
    insts

let snapshot_available t =
  Array.mapi (fun v cores -> cores - t.used.(v)) t.host_cores
