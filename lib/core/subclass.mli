(** Sub-classes (paper Sec. V-A): realizing the fractional distribution.

    The Optimization Engine emits, per class, a matrix [d.(i).(j)] — the
    portion of the class processed for chain stage [j] at path hop [i].
    Actual flows must each traverse one concrete instance per stage, so
    the matrix is decomposed into {e sub-classes}: groups of flows that
    share one non-decreasing hop sequence (one hop per stage), with a
    weight.  The decomposition peels the lexicographically-earliest
    feasible sequence off the remaining mass; Eq. (3)'s prefix dominance
    guarantees a monotone sequence always exists while mass remains.

    Each sub-class is then pinned to concrete instances (first-fit
    decreasing into the provisioned instances at each hop) and realized in
    the data plane either by consistent hashing or by source-prefix
    splitting (the prototype's method). *)

type subclass = {
  class_id : int;
  sub_id : int;  (** local to the class; the sub-class tag value *)
  hops : int array;  (** hop index per chain stage, non-decreasing *)
  weight : float;  (** fraction of the class's traffic *)
}

val decompose : Types.flow_class -> float array array -> subclass list
(** [decompose cls d] peels [d] (hops x stages) into sub-classes.
    Weights sum to 1 (1e-6 tolerance); classes with empty chains yield a
    single full-weight sub-class with no hops. *)

val weights_consistent :
  Types.flow_class -> float array array -> subclass list -> bool
(** Σ_{s : hops_s(j) = i} weight_s = d.(i).(j) for every cell (1e-6). *)

(** Concrete instance pinning. *)
type assignment = {
  subclasses : subclass list;
  instance_of : (int * int, Apple_vnf.Instance.t) Hashtbl.t;
      (** (class_id * 1024 + sub_id, stage) -> instance — see {!key} *)
  instances : Apple_vnf.Instance.t list;  (** all provisioned instances *)
}

val key : subclass -> int
(** Dense key for [instance_of]: [class_id * 1024 + sub_id]. *)

val assign :
  Types.scenario ->
  Optimization_engine.placement ->
  assignment
(** Provision [placement.counts] instances and pin every sub-class stage
    to one, balancing load first-fit-decreasing.  Instance offered loads
    are initialized to the pinned sub-class rates. *)

val repin :
  assignment ->
  subclass ->
  stage:int ->
  rate:float ->
  Apple_vnf.Instance.t ->
  unit
(** Move the pinned instance of [sub]'s chain [stage] to the given
    instance, transferring [rate] Mbps of offered load away from the old
    pinnee (when one exists).  The slicing layer's tenant-isolation pass
    uses this to re-home an isolated slice's stages onto dedicated
    clones before rule generation. *)

val max_instance_id : assignment -> int
(** Largest provisioned instance id ([-1] when none) — clones minted by
    shaping passes must allocate ids above it. *)

val pinned : assignment -> subclass -> Apple_vnf.Instance.t option array
(** Per-stage pinned instance of a sub-class ([None] marks a stage the
    assignment failed to pin — a verifier-reportable fault). *)

val instance_load_ok : assignment -> slack:float -> bool
(** No instance is offered more than [slack * capacity]. *)
