module Instance = Apple_vnf.Instance
module Nf = Apple_vnf.Nf
module Failmask = Apple_dataplane.Failmask

type pinned = {
  mutable weight : float;
  baseline : float;
  hops : int array;
  stage_instances : Instance.t array;
  p_class : int;
  p_sub : int;
}

type t = {
  mutable scenario : Types.scenario;
  orchestrator : Resource_orchestrator.t;
  mutable per_class : pinned list array;
  mutable extra_instances : Instance.t list;
  mask : Failmask.t;
}

let of_assignment (s : Types.scenario) (asg : Subclass.assignment) =
  let orchestrator =
    Resource_orchestrator.create ~host_cores:s.Types.host_cores
  in
  Resource_orchestrator.adopt orchestrator asg.Subclass.instances;
  let per_class = Array.make (Array.length s.Types.classes) [] in
  List.iter
    (fun (sub : Subclass.subclass) ->
      let n_stages = Array.length sub.Subclass.hops in
      let stage_instances =
        Array.init n_stages (fun j ->
            match
              Hashtbl.find_opt asg.Subclass.instance_of (Subclass.key sub, j)
            with
            | Some inst -> inst
            | None ->
                invalid_arg "Netstate.of_assignment: unpinned sub-class stage")
      in
      let pinned =
        {
          weight = sub.Subclass.weight;
          baseline = sub.Subclass.weight;
          hops = sub.Subclass.hops;
          stage_instances;
          p_class = sub.Subclass.class_id;
          p_sub = sub.Subclass.sub_id;
        }
      in
      per_class.(sub.Subclass.class_id) <-
        pinned :: per_class.(sub.Subclass.class_id))
    asg.Subclass.subclasses;
  Array.iteri (fun h subs -> per_class.(h) <- List.rev subs) per_class;
  {
    scenario = s;
    orchestrator;
    per_class;
    extra_instances = [];
    mask = Failmask.create ();
  }

let recompute_loads t =
  List.iter
    (fun inst -> Instance.set_offered inst 0.0)
    (Resource_orchestrator.instances t.orchestrator);
  (* A chaos-killed instance leaves the orchestrator when its
     replacement is requested but stays pinned (and load-bearing) until
     the heal swaps it out — zero those too or their offered load would
     accumulate across recomputes. *)
  Array.iter
    (fun subs ->
      List.iter
        (fun p ->
          Array.iter (fun inst -> Instance.set_offered inst 0.0) p.stage_instances)
        subs)
    t.per_class;
  Array.iteri
    (fun h subs ->
      let rate = t.scenario.Types.classes.(h).Types.rate in
      List.iter
        (fun p ->
          if p.weight > 0.0 then
            Array.iter
              (fun inst -> Instance.add_offered inst (rate *. p.weight))
              p.stage_instances)
        subs)
    t.per_class

(* A routing path is dark when any of its switches, or any link between
   consecutive hops, is failed.  All sub-classes of a class share the
   class's path, so a path fault blackholes the whole class. *)
let path_down m (path : int array) =
  Array.exists (Failmask.switch_down m) path
  ||
  let n = Array.length path in
  let rec go i =
    i < n && (Failmask.link_down m path.(i - 1) path.(i) || go (i + 1))
  in
  n > 1 && go 1

let blackholed t p =
  let m = t.mask in
  (not (Failmask.is_clear m))
  && (Array.exists
        (fun inst -> Failmask.instance_down m (Instance.id inst))
        p.stage_instances
     || path_down m t.scenario.Types.classes.(p.p_class).Types.path)

let network_loss t =
  let offered = ref 0.0 and delivered = ref 0.0 in
  Array.iteri
    (fun h subs ->
      let rate = t.scenario.Types.classes.(h).Types.rate in
      List.iter
        (fun p ->
          if p.weight > 0.0 then begin
            let share = rate *. p.weight in
            let through =
              if blackholed t p then 0.0
              else
                Array.fold_left
                  (fun acc inst -> acc *. (1.0 -. Instance.loss_fraction inst))
                  1.0 p.stage_instances
            in
            offered := !offered +. share;
            delivered := !delivered +. (share *. through)
          end)
        subs)
    t.per_class;
  if !offered <= 0.0 then 0.0 else 1.0 -. (!delivered /. !offered)

let blackholed_rate t =
  let lost = ref 0.0 in
  Array.iteri
    (fun h subs ->
      let rate = t.scenario.Types.classes.(h).Types.rate in
      List.iter
        (fun p ->
          if p.weight > 0.0 && blackholed t p then
            lost := !lost +. (rate *. p.weight))
        subs)
    t.per_class;
  !lost

let subclass_utilization _t p =
  Array.fold_left
    (fun acc inst -> max acc (Instance.utilization inst))
    0.0 p.stage_instances

let instances_in_use t =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun subs ->
      List.iter
        (fun p ->
          if p.weight > 0.0 then
            Array.iter
              (fun inst -> Hashtbl.replace seen (Instance.id inst) inst)
              p.stage_instances)
        subs)
    t.per_class;
  (* lint: L3 — consumers take explicit maxes, sort, or credit per-instance *)
  Hashtbl.fold (fun _ inst acc -> inst :: acc) seen []

let extra_cores t =
  List.fold_left
    (fun acc inst -> acc + (Instance.spec inst).Nf.cores)
    0 t.extra_instances

let weights_valid t =
  Array.for_all
    (fun subs ->
      let total = List.fold_left (fun acc p -> acc +. p.weight) 0.0 subs in
      List.for_all (fun p -> p.weight >= -1e-9) subs
      && (subs = [] || abs_float (total -. 1.0) < 1e-6))
    t.per_class
