module Nf = Apple_vnf.Nf
module Model = Apple_lp.Model
module Graph = Apple_topology.Graph
module Builders = Apple_topology.Builders
module Pool = Apple_parallel.Pool
module T = Apple_telemetry.Telemetry

(* Per-phase spans around the solve pipeline and an "lp" journal entry
   per relaxation solved.  Span bodies are the existing phase code; the
   engine never reads telemetry back, so placements are unaffected. *)
module Tr = Apple_trace.Trace

let sp_relax = T.Span.create "opt.relax"
let sp_reweight = T.Span.create "opt.reweight"
let sp_round = T.Span.create "opt.round"
let sp_repair = T.Span.create "opt.repair"
let sp_consolidate = T.Span.create "opt.consolidate"
let sp_ilp = T.Span.create "opt.ilp"
let tr_relax = Tr.span ~cat:"solve" "opt.relax"
let tr_reweight = Tr.span ~cat:"solve" "opt.reweight"
let tr_round = Tr.span ~cat:"solve" "opt.round"
let tr_repair = Tr.span ~cat:"solve" "opt.repair"
let tr_consolidate = Tr.span ~cat:"solve" "opt.consolidate"
let tr_ilp = Tr.span ~cat:"solve" "opt.ilp"
let tr_class = Tr.span ~cat:"solve" "opt.class_lp"

(* Telemetry aggregates and the causal trace observe the same region:
   one combinator keeps every phase's two spans in lockstep. *)
let timed tr sp f = Tr.with_ tr (fun () -> T.Span.with_ sp f)
let m_per_class_rounds = T.Counter.create "apple.opt.per_class_rounds"
let m_class_lps = T.Counter.create "apple.opt.class_lps"
let m_lp_pivots = T.Counter.create "apple.lp.pivots"

type objective = Min_instances | Min_cores

type method_ = Lp_round | Ilp of int | Per_class

type placement = {
  counts : int array array;
  distribution : float array array array;
  objective_value : float;
  lp_objective : float;
  solve_seconds : float;
  model_size : string;
}

exception Infeasible of string

let kind_weight objective k =
  match objective with
  | Min_instances -> 1.0
  | Min_cores -> float_of_int (Nf.spec (Nf.kind_of_index k)).Nf.cores

(* Index of NF kind k in class h's chain, or None. *)
let chain_stage (c : Types.flow_class) k =
  let result = ref None in
  Array.iteri
    (fun j kind -> if Nf.kind_index kind = k then result := Some j)
    c.Types.chain;
  !result

(* The set of (v, k) pairs that can host useful instances: switch v lies on
   the path of some class whose chain contains kind k. *)
let useful_sites (s : Types.scenario) =
  let n = Graph.num_nodes s.Types.topo.Builders.graph in
  let useful = Array.make_matrix n Nf.num_kinds false in
  Array.iter
    (fun c ->
      Array.iter
        (fun v ->
          Array.iter
            (fun kind -> useful.(v).(Nf.kind_index kind) <- true)
            c.Types.chain)
        c.Types.path)
    s.Types.classes;
  useful

let build_model ?site_weights (s : Types.scenario) ~objective ~integer =
  let n = Graph.num_nodes s.Types.topo.Builders.graph in
  let classes = s.Types.classes in
  let model = Model.create () in
  let useful = useful_sites s in
  let site_weight v k =
    match site_weights with None -> 1.0 | Some w -> w.(v).(k)
  in
  (* q variables. *)
  let q = Array.make_matrix n Nf.num_kinds None in
  for v = 0 to n - 1 do
    for k = 0 to Nf.num_kinds - 1 do
      if useful.(v).(k) then
        q.(v).(k) <-
          Some
            (Model.add_var model ~integer
               ~obj:(kind_weight objective k *. site_weight v k)
               ~name:(Printf.sprintf "q_v%d_%s" v (Nf.name (Nf.kind_of_index k)))
               ())
    done
  done;
  (* d variables: d.(h).(i).(j). *)
  let d =
    Array.map
      (fun c ->
        let plen = Array.length c.Types.path in
        let clen = Array.length c.Types.chain in
        Array.init plen (fun i ->
            Array.init clen (fun j ->
                Model.add_var model ~lb:0.0 ~ub:1.0
                  ~name:(Printf.sprintf "d_h%d_i%d_j%d" c.Types.id i j)
                  ())))
      classes
  in
  (* Chain order, Eq. (3) with sigma substituted: for every prefix of the
     path, stage j-1's cumulative portion dominates stage j's. *)
  Array.iteri
    (fun h c ->
      let plen = Array.length c.Types.path in
      let clen = Array.length c.Types.chain in
      for j = 1 to clen - 1 do
        for i = 0 to plen - 1 do
          let terms = ref [] in
          for i' = 0 to i do
            terms := (1.0, d.(h).(i').(j - 1)) :: (-1.0, d.(h).(i').(j)) :: !terms
          done;
          Model.add_constraint model !terms Model.Ge 0.0
        done
      done;
      (* Completion, Eq. (4): every stage processes 100% of the class. *)
      for j = 0 to clen - 1 do
        let terms = List.init plen (fun i -> (1.0, d.(h).(i).(j))) in
        Model.add_constraint model terms Model.Eq 1.0
      done)
    classes;
  (* Capacity, Eq. (5): per useful (v, k). *)
  let n_kinds = Nf.num_kinds in
  for v = 0 to n - 1 do
    for k = 0 to n_kinds - 1 do
      match q.(v).(k) with
      | None -> ()
      | Some qv ->
          let cap = (Nf.spec (Nf.kind_of_index k)).Nf.capacity_mbps in
          let terms = ref [ (-.cap, qv) ] in
          Array.iteri
            (fun h c ->
              match chain_stage c k with
              | None -> ()
              | Some j ->
                  Array.iteri
                    (fun i sw ->
                      if sw = v then
                        terms := (c.Types.rate, d.(h).(i).(j)) :: !terms)
                    c.Types.path)
            classes;
          if List.length !terms > 1 then
            Model.add_constraint model !terms Model.Le 0.0
    done
  done;
  (* Host resources, Eq. (6): core budget per switch. *)
  for v = 0 to n - 1 do
    let terms = ref [] in
    for k = 0 to n_kinds - 1 do
      match q.(v).(k) with
      | None -> ()
      | Some qv ->
          let cores = float_of_int (Nf.spec (Nf.kind_of_index k)).Nf.cores in
          terms := (cores, qv) :: !terms
    done;
    if !terms <> [] then
      Model.add_constraint model !terms Model.Le
        (float_of_int s.Types.host_cores.(v))
  done;
  (model, q, d)

let extract_distribution (s : Types.scenario) d sol =
  Array.mapi
    (fun h c ->
      let plen = Array.length c.Types.path in
      let clen = Array.length c.Types.chain in
      Array.init plen (fun i ->
          Array.init clen (fun j ->
              let v = Model.value sol d.(h).(i).(j) in
              if v < 1e-9 then 0.0 else if v > 1.0 then 1.0 else v)))
    s.Types.classes

let load_of_distribution (s : Types.scenario) dist ~v ~k =
  let acc = ref 0.0 in
  Array.iteri
    (fun h c ->
      match chain_stage c k with
      | None -> ()
      | Some j ->
          Array.iteri
            (fun i sw ->
              if sw = v then acc := !acc +. (c.Types.rate *. dist.(h).(i).(j)))
            c.Types.path)
    s.Types.classes;
  !acc

(* Minimal feasible instance counts for a fixed distribution. *)
let counts_for_distribution (s : Types.scenario) dist =
  let n = Graph.num_nodes s.Types.topo.Builders.graph in
  let counts = Array.make_matrix n Nf.num_kinds 0 in
  for v = 0 to n - 1 do
    for k = 0 to Nf.num_kinds - 1 do
      let cap = (Nf.spec (Nf.kind_of_index k)).Nf.capacity_mbps in
      let load = load_of_distribution s dist ~v ~k in
      if load > 1e-9 then
        counts.(v).(k) <- int_of_float (ceil ((load /. cap) -. 1e-9))
    done
  done;
  counts

let cores_at counts v =
  let acc = ref 0 in
  for k = 0 to Nf.num_kinds - 1 do
    acc := !acc + (counts.(v).(k) * (Nf.spec (Nf.kind_of_index k)).Nf.cores)
  done;
  !acc

(* Chain-order feasibility of one class's distribution matrix. *)
let order_ok dist_h =
  let plen = Array.length dist_h in
  if plen = 0 then true
  else begin
    let clen = Array.length dist_h.(0) in
    let ok = ref true in
    for j = 1 to clen - 1 do
      let prefix_prev = ref 0.0 and prefix_cur = ref 0.0 in
      for i = 0 to plen - 1 do
        prefix_prev := !prefix_prev +. dist_h.(i).(j - 1);
        prefix_cur := !prefix_cur +. dist_h.(i).(j);
        if !prefix_cur > !prefix_prev +. 1e-6 then ok := false
      done
    done;
    !ok
  end

(* Repair pass: if rounding the counts up violates a host's core budget,
   shed just enough distribution mass from the violating switch to drop
   instances there, moving it to hops whose own budget tolerates the
   arrival, preserving chain order. *)
let repair_resources (s : Types.scenario) dist =
  let n = Graph.num_nodes s.Types.topo.Builders.graph in
  let cap_of k = (Nf.spec (Nf.kind_of_index k)).Nf.capacity_mbps in
  let cores_of k = (Nf.spec (Nf.kind_of_index k)).Nf.cores in
  let counts = ref (counts_for_distribution s dist) in
  let violated v = cores_at !counts v > s.Types.host_cores.(v) in
  let exists_violation () =
    let rec scan v =
      if v >= n then None else if violated v then Some v else scan (v + 1)
    in
    scan 0
  in
  (* Would switch v' stay within budget if its load of kind k grew by
     [extra] Mbps? *)
  let target_fits v' k extra =
    let load = load_of_distribution s dist ~v:v' ~k in
    let new_count = int_of_float (ceil (((load +. extra) /. cap_of k) -. 1e-9)) in
    let delta = new_count - !counts.(v').(k) in
    delta <= 0
    || cores_at !counts v' + (delta * cores_of k) <= s.Types.host_cores.(v')
  in
  (* Move up to [want] Mbps of kind-k mass away from switch v.  Returns the
     amount actually moved. *)
  let shed v k want =
    let moved = ref 0.0 in
    Array.iteri
      (fun h c ->
        if !moved < want -. 1e-9 then
          match chain_stage c k with
          | None -> ()
          | Some j ->
              Array.iteri
                (fun i sw ->
                  if sw = v && dist.(h).(i).(j) > 1e-9 && !moved < want -. 1e-9
                  then begin
                    let portion = dist.(h).(i).(j) in
                    let rate = c.Types.rate in
                    let amount_mass = min (rate *. portion) (want -. !moved) in
                    let amount = if rate > 0.0 then amount_mass /. rate else 0.0 in
                    let plen = Array.length c.Types.path in
                    let rec try_hop i' =
                      if i' >= plen then ()
                      else if i' = i || c.Types.path.(i') = v then try_hop (i' + 1)
                      else begin
                        let v' = c.Types.path.(i') in
                        if target_fits v' k amount_mass then begin
                          dist.(h).(i).(j) <- portion -. amount;
                          dist.(h).(i').(j) <- dist.(h).(i').(j) +. amount;
                          if order_ok dist.(h) then begin
                            moved := !moved +. amount_mass;
                            (* Keep counts fresh for later target checks. *)
                            counts := counts_for_distribution s dist
                          end
                          else begin
                            dist.(h).(i).(j) <- portion;
                            dist.(h).(i').(j) <- dist.(h).(i').(j) -. amount;
                            try_hop (i' + 1)
                          end
                        end
                        else try_hop (i' + 1)
                      end
                    in
                    try_hop 0
                  end)
                c.Types.path)
      s.Types.classes;
    !moved
  in
  let guard = ref 0 in
  let rec fix () =
    incr guard;
    if !guard > 16 * n then ()
    else
      match exists_violation () with
      | None -> ()
      | Some v ->
          let excess_cores = cores_at !counts v - s.Types.host_cores.(v) in
          (* Kinds at v ordered by how little load must move to drop one
             instance. *)
          let options = ref [] in
          for k = 0 to Nf.num_kinds - 1 do
            if !counts.(v).(k) > 0 then begin
              let load = load_of_distribution s dist ~v ~k in
              let need =
                load -. (float_of_int (!counts.(v).(k) - 1) *. cap_of k)
              in
              options := (need, k) :: !options
            end
          done;
          let progressed = ref false in
          List.iter
            (fun (need, k) ->
              if (not !progressed) && cores_at !counts v > s.Types.host_cores.(v)
              then begin
                let want = max need (1e-6 *. float_of_int excess_cores) in
                let moved = shed v k want in
                if moved > 1e-9 then progressed := true
              end)
            (List.sort
               (fun (n1, k1) (n2, k2) ->
                 match Float.compare n1 n2 with
                 | 0 -> Int.compare k1 k2
                 | c -> c)
               !options);
          if !progressed then fix ()
  in
  fix ();
  match exists_violation () with
  | Some v ->
      raise
        (Infeasible
           (Printf.sprintf
              "host at switch %d needs %d cores but only has %d after repair"
              v (cores_at !counts v) s.Types.host_cores.(v)))
  | None -> !counts

(* Consolidation pass: the LP spreads load thinly, so ceil-rounding wastes
   an instance at every site with a sliver of load.  Greedily try to empty
   lightly-loaded (switch, kind) sites by relocating their class-stage
   contributions into spare capacity at sites that keep their instances,
   preserving chain order.  Each successful relocation can only lower the
   objective, so the loop terminates. *)
let consolidate_pass (s : Types.scenario) dist counts =
  let n = Graph.num_nodes s.Types.topo.Builders.graph in
  let cap_of k = (Nf.spec (Nf.kind_of_index k)).Nf.capacity_mbps in
  let load = Array.make_matrix n Nf.num_kinds 0.0 in
  let recompute_loads () =
    for v = 0 to n - 1 do
      for k = 0 to Nf.num_kinds - 1 do
        load.(v).(k) <- load_of_distribution s dist ~v ~k
      done
    done
  in
  recompute_loads ();
  let cores_used v =
    let acc = ref 0 in
    for k = 0 to Nf.num_kinds - 1 do
      acc := !acc + (counts.(v).(k) * (Nf.spec (Nf.kind_of_index k)).Nf.cores)
    done;
    !acc
  in
  (* Contributions at a site: (mass, class, hop, stage). *)
  let contributions v k =
    let acc = ref [] in
    Array.iteri
      (fun h c ->
        match chain_stage c k with
        | None -> ()
        | Some j ->
            Array.iteri
              (fun i sw ->
                if sw = v && dist.(h).(i).(j) > 1e-9 then
                  acc := (c.Types.rate *. dist.(h).(i).(j), h, i, j) :: !acc)
              c.Types.path)
      s.Types.classes;
    !acc
  in
  (* Move one contribution to any other hop of the class with spare
     capacity at the same kind; returns true on success. *)
  let relocate k (mass, h, i, j) =
    let c = s.Types.classes.(h) in
    let plen = Array.length c.Types.path in
    let rec try_hop i' =
      if i' >= plen then false
      else if i' = i then try_hop (i' + 1)
      else begin
        let v' = c.Types.path.(i') in
        let spare =
          (float_of_int counts.(v').(k) *. cap_of k) -. load.(v').(k)
        in
        if counts.(v').(k) > 0 && spare >= mass -. 1e-9 then begin
          let portion = dist.(h).(i).(j) in
          dist.(h).(i).(j) <- 0.0;
          dist.(h).(i').(j) <- dist.(h).(i').(j) +. portion;
          if order_ok dist.(h) then begin
            load.(c.Types.path.(i)).(k) <- load.(c.Types.path.(i)).(k) -. mass;
            load.(v').(k) <- load.(v').(k) +. mass;
            true
          end
          else begin
            dist.(h).(i').(j) <- dist.(h).(i').(j) -. portion;
            dist.(h).(i).(j) <- portion;
            try_hop (i' + 1)
          end
        end
        else try_hop (i' + 1)
      end
    in
    try_hop 0
  in
  let improved = ref true in
  while !improved do
    improved := false;
    (* Sites ascending by load: cheapest to empty first. *)
    let sites = ref [] in
    for v = 0 to n - 1 do
      for k = 0 to Nf.num_kinds - 1 do
        if counts.(v).(k) > 0 && load.(v).(k) > 0.0 then
          sites := (load.(v).(k), v, k) :: !sites
      done
    done;
    let sorted =
      List.sort
        (fun (l1, v1, k1) (l2, v2, k2) ->
          match Float.compare l1 l2 with
          | 0 -> (
              match Int.compare v1 v2 with 0 -> Int.compare k1 k2 | c -> c)
          | c -> c)
        !sites
    in
    List.iter
      (fun (_, v, k) ->
        if counts.(v).(k) > 0 then begin
          (* Try to empty the site's last instance worth of load. *)
          let over =
            load.(v).(k) -. (float_of_int (counts.(v).(k) - 1) *. cap_of k)
          in
          if over > 0.0 then begin
            let moved = ref 0.0 in
            let contribs =
              List.sort
                (fun (m1, h1, i1, j1) (m2, h2, i2, j2) ->
                  match Float.compare m1 m2 with
                  | 0 -> (
                      match Int.compare h1 h2 with
                      | 0 -> (
                          match Int.compare i1 i2 with
                          | 0 -> Int.compare j1 j2
                          | c -> c)
                      | c -> c)
                  | c -> c)
                (contributions v k)
            in
            List.iter
              (fun ((mass, _, _, _) as contrib) ->
                if !moved < over -. 1e-9 && relocate k contrib then
                  moved := !moved +. mass)
              contribs;
            (* Did the load drop below the next-lower instance count? *)
            let needed =
              if load.(v).(k) <= 1e-9 then 0
              else int_of_float (ceil ((load.(v).(k) /. cap_of k) -. 1e-9))
            in
            if needed < counts.(v).(k) then begin
              counts.(v).(k) <- needed;
              improved := true
            end
          end
        end)
      sorted
  done;
  (* Also shrink any site whose count exceeds its needs (defensive). *)
  for v = 0 to n - 1 do
    for k = 0 to Nf.num_kinds - 1 do
      let needed =
        if load.(v).(k) <= 1e-9 then 0
        else int_of_float (ceil ((load.(v).(k) /. cap_of k) -. 1e-9))
      in
      if needed < counts.(v).(k) then counts.(v).(k) <- needed;
      (* Never shrink below resource feasibility: ceil can only reduce. *)
      ignore (cores_used v)
    done
  done;
  counts

let objective_of_counts ~objective counts =
  let acc = ref 0.0 in
  Array.iter
    (fun row ->
      Array.iteri (fun k c -> acc := !acc +. (float_of_int c *. kind_weight objective k)) row)
    counts;
  !acc

let check_status (sol : Model.solution) =
  match sol.Model.status with
  | Model.Infeasible ->
      raise (Infeasible "LP relaxation is infeasible: host budgets too small")
  | Model.Unbounded -> raise (Infeasible "unexpected unbounded model")
  | Model.Optimal | Model.Limit -> ()

(* Per-site price of routing a unit of load through (v, k) given the
   current distribution: ceil(load/cap)/(load/cap), the ratio rounding
   pays when the last instance there is nearly empty.  Used both by the
   Lp_round reweighting pass and between Per_class rounds. *)
let site_prices (s : Types.scenario) dist =
  let n = Graph.num_nodes s.Types.topo.Builders.graph in
  let weights = Array.make_matrix n Nf.num_kinds 1.0 in
  for v = 0 to n - 1 do
    for k = 0 to Nf.num_kinds - 1 do
      let cap = (Nf.spec (Nf.kind_of_index k)).Nf.capacity_mbps in
      let load = load_of_distribution s dist ~v ~k in
      let units = load /. cap in
      let w = if load <= 1e-9 then 8.0 else min 8.0 (ceil units /. units) in
      weights.(v).(k) <- w
    done
  done;
  weights

(* Between Per_class rounds: {!site_prices} plus a core-budget surcharge
   on switches whose projected instance counts exceed their host budget.
   The per-class LPs carry no Eq. (6), so the budget has to bite through
   the price: overloaded hosts get steeply more expensive each round,
   pushing mass to hops with spare cores before the final repair pass. *)
let per_class_prices (s : Types.scenario) dist =
  let weights = site_prices s dist in
  let counts = counts_for_distribution s dist in
  let n = Graph.num_nodes s.Types.topo.Builders.graph in
  for v = 0 to n - 1 do
    let used = cores_at counts v in
    let budget = max 1 s.Types.host_cores.(v) in
    if used > budget then begin
      let over = float_of_int used /. float_of_int budget in
      for k = 0 to Nf.num_kinds - 1 do
        weights.(v).(k) <- weights.(v).(k) *. 4.0 *. over
      done
    end
  done;
  weights

(* One class's stage-distribution LP under fixed site prices: only the
   class's own order and completion constraints (Eq. 3–4) appear, so the
   model has plen*clen variables instead of the whole scenario's.  The
   capacity coupling (Eq. 5) is priced into the objective instead of
   constrained, which is what makes the classes independent — and
   therefore solvable in parallel.  The function touches nothing mutable
   outside its own model. *)
let solve_class_lp ~objective ~prices (c : Types.flow_class) =
  let plen = Array.length c.Types.path in
  let clen = Array.length c.Types.chain in
  if clen = 0 then Array.init plen (fun _ -> [||])
  else begin
    let model = Model.create () in
    let d =
      Array.init plen (fun i ->
          Array.init clen (fun j ->
              let k = Nf.kind_index c.Types.chain.(j) in
              let cap = (Nf.spec (Nf.kind_of_index k)).Nf.capacity_mbps in
              let v = c.Types.path.(i) in
              let obj =
                kind_weight objective k *. prices.(v).(k) *. c.Types.rate
                /. cap
                (* Tiny hop bias keeps ties deterministic and early. *)
                +. (1e-7 *. float_of_int i)
              in
              Model.add_var model ~lb:0.0 ~ub:1.0 ~obj
                ~name:(Printf.sprintf "d_i%d_j%d" i j)
                ()))
    in
    for j = 1 to clen - 1 do
      for i = 0 to plen - 1 do
        let terms = ref [] in
        for i' = 0 to i do
          terms := (1.0, d.(i').(j - 1)) :: (-1.0, d.(i').(j)) :: !terms
        done;
        Model.add_constraint model !terms Model.Ge 0.0
      done
    done;
    for j = 0 to clen - 1 do
      let terms = List.init plen (fun i -> (1.0, d.(i).(j))) in
      Model.add_constraint model terms Model.Eq 1.0
    done;
    let sol = Model.solve_lp model in
    match sol.Model.status with
    | Model.Optimal | Model.Limit ->
        Array.init plen (fun i ->
            Array.init clen (fun j ->
                let v = Model.value sol d.(i).(j) in
                if v < 1e-9 then 0.0 else if v > 1.0 then 1.0 else v))
    | Model.Infeasible | Model.Unbounded ->
        (* The order/completion polytope is never empty; if the solver
           stumbles anyway, park the whole class at its first hop. *)
        Array.init plen (fun i ->
            Array.init clen (fun _ -> if i = 0 then 1.0 else 0.0))
  end

let solve ?(objective = Min_instances) ?(method_ = Lp_round) ?(reweight = true)
    ?(consolidate = true) ?jobs ?(rounds = 3) (s : Types.scenario) =
  let t0 = Unix.gettimeofday () in (* lint: L5 — wall-clock solve timing, reported as perf metadata only *)
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  match method_ with
  | Ilp max_nodes ->
      let model, q, d = build_model s ~objective ~integer:true in
      let model_size = Format.asprintf "%a" Model.pp_stats model in
      let p0 = T.Counter.value m_lp_pivots in
      let sol = timed tr_ilp sp_ilp (fun () -> Model.solve_ilp ~max_nodes model) in
      T.Journal.recordf ~kind:"lp" "ilp solved: %s, %d pivots" model_size
        (T.Counter.value m_lp_pivots - p0);
      check_status sol;
      let dist = extract_distribution s d sol in
      let n = Graph.num_nodes s.Types.topo.Builders.graph in
      let counts = Array.make_matrix n Nf.num_kinds 0 in
      for v = 0 to n - 1 do
        for k = 0 to Nf.num_kinds - 1 do
          match q.(v).(k) with
          | None -> ()
          | Some var ->
              counts.(v).(k) <- int_of_float (Float.round (Model.value sol var))
        done
      done;
      {
        counts;
        distribution = dist;
        objective_value = objective_of_counts ~objective counts;
        lp_objective = sol.Model.objective;
        solve_seconds = Unix.gettimeofday () -. t0; (* lint: L5 — wall-clock solve timing, reported as perf metadata only *)
        model_size;
      }
  | Lp_round ->
      let model1, _, d1 = build_model s ~objective ~integer:false in
      let model_size = Format.asprintf "%a" Model.pp_stats model1 in
      let p0 = T.Counter.value m_lp_pivots in
      let sol1 = timed tr_relax sp_relax (fun () -> Model.solve_lp model1) in
      T.Journal.recordf ~kind:"lp" "relaxation solved: %s, %d pivots" model_size
        (T.Counter.value m_lp_pivots - p0);
      check_status sol1;
      let dist1 = extract_distribution s d1 sol1 in
      (* The fractional objective is degenerate — spreading load across
         sites costs the same as consolidating it — so follow-up passes
         make under-utilized sites expensive, steering the LP toward
         vertices that ceil-rounding wastes little on (a concave-cost
         Frank–Wolfe style reweighting). *)
      let refine dist =
        let model', _, d' =
          build_model ~site_weights:(site_prices s dist) s ~objective
            ~integer:false
        in
        let sol' = Model.solve_lp model' in
        match sol'.Model.status with
        | Model.Optimal | Model.Limit -> extract_distribution s d' sol'
        | Model.Infeasible | Model.Unbounded -> dist
      in
      let dist =
        if reweight then timed tr_reweight sp_reweight (fun () -> refine dist1)
        else dist1
      in
      let counts = timed tr_repair sp_repair (fun () -> repair_resources s dist) in
      let counts =
        if consolidate then
          timed tr_consolidate sp_consolidate (fun () -> consolidate_pass s dist counts)
        else counts
      in
      {
        counts;
        distribution = dist;
        objective_value = objective_of_counts ~objective counts;
        lp_objective = sol1.Model.objective;
        solve_seconds = Unix.gettimeofday () -. t0; (* lint: L5 — wall-clock solve timing, reported as perf metadata only *)
        model_size;
      }
  | Per_class ->
      (* Price-directed decomposition: each round solves every class's
         small LP independently (fanned across [jobs] domains), merges
         the distributions in class order, then reprices the sites from
         the merged load.  The parallel map writes each class's result
         into its own slot, so the merged distribution — and everything
         downstream — is byte-identical for any [jobs]. *)
      let n = Graph.num_nodes s.Types.topo.Builders.graph in
      let classes = s.Types.classes in
      let nclasses = Array.length classes in
      (* Hub-biased start: hops carrying much traffic begin cheap, so
         the first round already consolidates mass where sharing is
         likely instead of spreading uniformly. *)
      let hub = Array.make n 0.0 in
      Array.iter
        (fun c ->
          Array.iter (fun v -> hub.(v) <- hub.(v) +. c.Types.rate) c.Types.path)
        classes;
      let max_hub = Array.fold_left max 1e-9 hub in
      let prices =
        ref
          (Array.init n (fun v ->
               Array.make Nf.num_kinds
                 (1.0 +. (0.25 *. (1.0 -. (hub.(v) /. max_hub))))))
      in
      let rounds = if reweight then max 1 rounds else 1 in
      let dist = ref [||] in
      for round = 1 to rounds do
        let p = !prices in
        let p0 = T.Counter.value m_lp_pivots in
        timed tr_round sp_round (fun () ->
            dist :=
              Pool.run ~jobs
                (fun c ->
                  Tr.with_ ~cls:c.Types.id tr_class (fun () ->
                      solve_class_lp ~objective ~prices:p c))
                classes);
        T.Counter.incr m_per_class_rounds;
        T.Counter.add m_class_lps nclasses;
        T.Journal.recordf ~kind:"lp" "per-class round %d/%d: %d class LPs, %d pivots"
          round rounds nclasses
          (T.Counter.value m_lp_pivots - p0);
        (* Repricing reads the merged distribution sequentially — float
           accumulation order is fixed regardless of [jobs]. *)
        prices := per_class_prices s !dist
      done;
      let dist = !dist in
      (* Fractional lower bound of the coupled problem: q >= load/cap. *)
      let lp_objective =
        let acc = ref 0.0 in
        for v = 0 to n - 1 do
          for k = 0 to Nf.num_kinds - 1 do
            let cap = (Nf.spec (Nf.kind_of_index k)).Nf.capacity_mbps in
            let load = load_of_distribution s dist ~v ~k in
            acc := !acc +. (kind_weight objective k *. load /. cap)
          done
        done;
        !acc
      in
      let counts = timed tr_repair sp_repair (fun () -> repair_resources s dist) in
      let counts =
        if consolidate then
          timed tr_consolidate sp_consolidate (fun () -> consolidate_pass s dist counts)
        else counts
      in
      {
        counts;
        distribution = dist;
        objective_value = objective_of_counts ~objective counts;
        lp_objective;
        solve_seconds = Unix.gettimeofday () -. t0; (* lint: L5 — wall-clock solve timing, reported as perf metadata only *)
        model_size =
          Printf.sprintf "per-class decomposition: %d classes x %d rounds (jobs=%d)"
            nclasses rounds jobs;
      }

let load (s : Types.scenario) placement ~v ~k =
  load_of_distribution s placement.distribution ~v ~k

let check_distribution (s : Types.scenario) placement =
  let tol = 1e-6 in
  let errors = ref [] in
  let fail fmt = Format.kasprintf (fun msg -> errors := msg :: !errors) fmt in
  Array.iteri
    (fun h c ->
      let dist_h = placement.distribution.(h) in
      let plen = Array.length c.Types.path in
      let clen = Array.length c.Types.chain in
      if not (order_ok dist_h) then fail "class %d: chain order violated" h;
      for j = 0 to clen - 1 do
        let total = ref 0.0 in
        for i = 0 to plen - 1 do
          let portion = dist_h.(i).(j) in
          if portion < -.tol || portion > 1.0 +. tol then
            fail "class %d: d[%d][%d]=%f out of [0,1]" h i j portion;
          total := !total +. portion
        done;
        if abs_float (!total -. 1.0) > 1e-4 then
          fail "class %d stage %d: portions sum to %f, not 1" h j !total
      done)
    s.Types.classes;
  let n = Graph.num_nodes s.Types.topo.Builders.graph in
  for v = 0 to n - 1 do
    for k = 0 to Nf.num_kinds - 1 do
      let cap = (Nf.spec (Nf.kind_of_index k)).Nf.capacity_mbps in
      let offered = load s placement ~v ~k in
      let provided = float_of_int placement.counts.(v).(k) *. cap in
      if offered > provided +. 1e-3 then
        fail "switch %d kind %d: offered %.3f exceeds provisioned %.3f" v k
          offered provided
    done;
    if cores_at placement.counts v > s.Types.host_cores.(v) then
      fail "switch %d: core budget exceeded" v
  done;
  match !errors with
  | [] -> Ok ()
  | msgs -> Error (String.concat "; " (List.rev msgs))

let instance_count placement =
  Array.fold_left
    (fun acc row -> Array.fold_left ( + ) acc row)
    0 placement.counts

let core_count placement =
  let acc = ref 0 in
  Array.iter
    (fun row ->
      Array.iteri
        (fun k c -> acc := !acc + (c * (Nf.spec (Nf.kind_of_index k)).Nf.cores))
        row)
    placement.counts;
  !acc
