module Nf = Apple_vnf.Nf
module Instance = Apple_vnf.Instance

type outcome = {
  accepted : bool;
  new_instances : Instance.t list;
  subclass : Netstate.pinned option;
}

let extend_scenario (s : Types.scenario) cls =
  if cls.Types.id <> Array.length s.Types.classes then
    invalid_arg "Online_engine.extend_scenario: class id must be the next index";
  { s with Types.classes = Array.append s.Types.classes [| cls |] }

let total_instances (state : Netstate.t) =
  List.length (Resource_orchestrator.instances state.Netstate.orchestrator)

let total_cores (state : Netstate.t) =
  let orch = state.Netstate.orchestrator in
  List.fold_left
    (fun acc inst -> acc + (Instance.spec inst).Nf.cores)
    0
    (Resource_orchestrator.instances orch)

(* A placement plan for one stage: reuse an existing instance or create a
   new one at a switch. *)
type stage_plan = Reuse of Instance.t | Create of int (* switch *)

(* Plan a placement for [cls] against the current state WITHOUT mutating
   anything: the DFS keeps its tentative commitments in local tables.
   Pure with respect to [state], so a batch of arrivals can be planned
   concurrently from different domains against the same snapshot. *)
let plan_class (state : Netstate.t) (cls : Types.flow_class) =
  let orch = state.Netstate.orchestrator in
  let rate = cls.Types.rate in
  let plen = Array.length cls.Types.path in
  let clen = Array.length cls.Types.chain in
  (* Planned extra offered load per existing instance and planned cores
     per switch, so DFS branches see their own tentative commitments. *)
  let planned_load : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let planned_cores : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let spare inst =
    let extra = Option.value ~default:0.0 (Hashtbl.find_opt planned_load (Instance.id inst)) in
    (Instance.spec inst).Nf.capacity_mbps -. Instance.offered inst -. extra
  in
  let cores_free v =
    Resource_orchestrator.available_cores orch v
    - Option.value ~default:0 (Hashtbl.find_opt planned_cores v)
  in
  let instances_at v kind =
    List.filter
      (fun inst -> Instance.kind inst = kind)
      (Resource_orchestrator.instances_at orch v)
  in
  (* Does any instance (of any kind) already run at v?  Preferring active
     switches consolidates hardware like the global engine's objective. *)
  let switch_active v = Resource_orchestrator.instances_at orch v <> [] in
  let rec dfs stage min_hop plan =
    if stage = clen then Some (List.rev plan)
    else begin
      let kind = cls.Types.chain.(stage) in
      let spec = Nf.spec kind in
      (* Candidate moves at each hop, graded: 0 = reuse, 1 = create at an
         active switch, 2 = create anywhere.  Try grades in order; within
         a grade, hops ascending. *)
      let try_grade grade =
        let rec hops i =
          if i >= plen then None
          else begin
            let v = cls.Types.path.(i) in
            let attempt =
              match grade with
              | 0 -> (
                  let candidates =
                    List.filter (fun inst -> spare inst >= rate -. 1e-9) (instances_at v kind)
                  in
                  match candidates with
                  | [] -> None
                  | best :: rest ->
                      let best =
                        List.fold_left
                          (fun acc inst -> if spare inst > spare acc then inst else acc)
                          best rest
                      in
                      Some (Reuse best)
                  )
              | 1
                when switch_active v
                     && cores_free v >= spec.Nf.cores
                     && rate <= spec.Nf.capacity_mbps +. 1e-9 ->
                  (* Online placement pins the whole class to one instance
                     per stage; flows beyond one instance's capacity need
                     the global engine's fractional splitting. *)
                  Some (Create v)
              | 2
                when cores_free v >= spec.Nf.cores
                     && rate <= spec.Nf.capacity_mbps +. 1e-9 ->
                  Some (Create v)
              | _ -> None
            in
            match attempt with
            | None -> hops (i + 1)
            | Some move -> (
                (* Tentatively commit the move, recurse, undo on failure. *)
                (match move with
                | Reuse inst ->
                    Hashtbl.replace planned_load (Instance.id inst)
                      (rate
                      +. Option.value ~default:0.0
                           (Hashtbl.find_opt planned_load (Instance.id inst)))
                | Create v ->
                    Hashtbl.replace planned_cores v
                      (spec.Nf.cores
                      + Option.value ~default:0 (Hashtbl.find_opt planned_cores v)));
                match dfs (stage + 1) i ((i, move) :: plan) with
                | Some solution -> Some solution
                | None ->
                    (match move with
                    | Reuse inst ->
                        Hashtbl.replace planned_load (Instance.id inst)
                          (Option.value ~default:0.0
                             (Hashtbl.find_opt planned_load (Instance.id inst))
                          -. rate)
                    | Create v ->
                        Hashtbl.replace planned_cores v
                          (Option.value ~default:0 (Hashtbl.find_opt planned_cores v)
                          - spec.Nf.cores));
                    hops (i + 1))
          end
        in
        (* Only hops >= min_hop keep the chain order. *)
        hops min_hop
      in
      match try_grade 0 with
      | Some s -> Some s
      | None -> (
          match try_grade 1 with
          | Some s -> Some s
          | None -> try_grade 2)
    end
  in
  dfs 0 0 []

(* Does a previously-computed plan still fit the (possibly advanced)
   state?  Re-checks every capacity and core-budget condition with local
   accumulation, so a plan reusing one instance at two stages is judged
   on its total demand. *)
let plan_applies (state : Netstate.t) (cls : Types.flow_class) plan =
  let orch = state.Netstate.orchestrator in
  let rate = cls.Types.rate in
  let planned_load : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let planned_cores : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let ok = ref true in
  List.iteri
    (fun stage (_hop, move) ->
      if !ok then
        match move with
        | Reuse inst ->
            let extra =
              Option.value ~default:0.0
                (Hashtbl.find_opt planned_load (Instance.id inst))
            in
            let spare =
              (Instance.spec inst).Nf.capacity_mbps
              -. Instance.offered inst -. extra
            in
            if spare >= rate -. 1e-9 then
              Hashtbl.replace planned_load (Instance.id inst) (extra +. rate)
            else ok := false
        | Create v ->
            let spec = Nf.spec cls.Types.chain.(stage) in
            let planned =
              Option.value ~default:0 (Hashtbl.find_opt planned_cores v)
            in
            if
              Resource_orchestrator.available_cores orch v - planned
              >= spec.Nf.cores
            then Hashtbl.replace planned_cores v (planned + spec.Nf.cores)
            else ok := false)
    plan;
  !ok

let commit (state : Netstate.t) (cls : Types.flow_class) plan =
  let orch = state.Netstate.orchestrator in
  let rate = cls.Types.rate in
  let clen = Array.length cls.Types.chain in
  (* Commit: extend the scenario, launch planned instances, pin the
     class's single full-weight sub-class. *)
  state.Netstate.scenario <- extend_scenario state.Netstate.scenario cls;
  let created = ref [] in
  let hops = Array.make clen 0 in
  let stage_instances =
    Array.of_list
      (List.mapi
         (fun stage (hop, move) ->
           hops.(stage) <- hop;
           match move with
           | Reuse inst -> inst
           | Create v ->
               let inst =
                 Resource_orchestrator.launch orch cls.Types.chain.(stage)
                   ~host:v
               in
               created := inst :: !created;
               inst)
         plan)
  in
  let pinned =
    {
      Netstate.weight = 1.0;
      baseline = 1.0;
      hops;
      stage_instances;
      p_class = cls.Types.id;
      p_sub = 0;
    }
  in
  state.Netstate.per_class <-
    Array.append state.Netstate.per_class [| [ pinned ] |];
  Array.iter (fun inst -> Instance.add_offered inst rate) stage_instances;
  {
    accepted = true;
    new_instances = List.rev !created;
    subclass = Some pinned;
  }

let admit (state : Netstate.t) (cls : Types.flow_class) =
  match plan_class state cls with
  | None -> { accepted = false; new_instances = []; subclass = None }
  | Some plan -> commit state cls plan

let admit_batch ?jobs (state : Netstate.t) (classes : Types.flow_class array) =
  (* Phase 1: plan every arrival in parallel against the same snapshot —
     plan_class never writes, and results land in slots by index, so the
     plan vector is independent of [jobs].  Phase 2: walk arrivals in
     order; a snapshot plan that still fits is committed as-is, anything
     stale (an earlier arrival consumed the capacity) or unplanned is
     re-planned against the live state.  Both phases are deterministic,
     so the outcomes equal the sequential [admit] fold whenever every
     snapshot plan survives validation, and remain [jobs]-independent
     even when some don't. *)
  let plans =
    Apple_parallel.Pool.run ?jobs (fun cls -> plan_class state cls) classes
  in
  Array.mapi
    (fun i cls ->
      let plan =
        match plans.(i) with
        | Some plan when plan_applies state cls plan -> Some plan
        | Some _ | None -> plan_class state cls
      in
      match plan with
      | None -> { accepted = false; new_instances = []; subclass = None }
      | Some plan -> commit state cls plan)
    classes
