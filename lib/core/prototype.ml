module Engine = Apple_sim.Engine
module Lifecycle = Apple_vnf.Lifecycle
module Instance = Apple_vnf.Instance
module Overload = Apple_vnf.Overload
module Rng = Apple_prelude.Rng

(* ------------------------------------------------------------------ *)
(* Fig. 6: passive-monitor loss vs packet rate, by packet size.        *)

type monitor_point = {
  rate_kpps : float;
  loss_64 : float;
  loss_512 : float;
  loss_1500 : float;
}

let monitor_loss_curve ?(capacity_kpps = 9.0) ?(max_kpps = 15.0) ?(steps = 29)
    () =
  (* The measured bottleneck is per-packet processing, so the knee sits at
     the same pps for every packet size. *)
  List.init steps (fun i ->
      let rate =
        1.0 +. (float_of_int i *. (max_kpps -. 1.0) /. float_of_int (steps - 1))
      in
      let loss = Instance.loss_at_pps ~capacity_pps:capacity_kpps ~offered_pps:rate in
      { rate_kpps = rate; loss_64 = loss; loss_512 = loss; loss_1500 = loss })

(* ------------------------------------------------------------------ *)
(* Fig. 7: blackout while a ClickOS VM boots through OpenStack.        *)

type setup_run = {
  blackout_seconds : float;
  throughput : (float * float) list;
}

let vm_setup_experiment ~seed ~runs =
  List.init runs (fun r ->
      let world = Engine.create () in
      let rng = Rng.create (seed + r) in
      let send_kpps = 10.0 in
      let sample_period = 0.1 in
      let vm_ready = ref infinity in
      let rules_active = ref infinity in
      (* t=1.0: new forwarding rules are installed (70 ms) pointing at the
         VM, and the boot request is issued simultaneously. *)
      Engine.schedule world ~delay:1.0 (fun w ->
          Engine.schedule w ~delay:Lifecycle.rule_install_time (fun w' ->
              rules_active := Engine.now w');
          Lifecycle.provision w rng Lifecycle.Openstack ~on_ready:(fun w' ->
              vm_ready := Engine.now w'));
      let series = ref [] in
      Engine.every world ~period:sample_period ~until:8.0 (fun w ->
          let t = Engine.now w in
          let delivered =
            if t >= !rules_active && t < !vm_ready then 0.0 else send_kpps
          in
          series := (t, delivered) :: !series);
      Engine.run ~until:8.5 world;
      let throughput = List.rev !series in
      let blackout = !vm_ready -. !rules_active in
      { blackout_seconds = blackout; throughput })

(* ------------------------------------------------------------------ *)
(* Fig. 8: 20 MB transfer durations under three failover strategies.   *)

type transfer_variant = No_failover | Wait_five_seconds | Reconfigure_existing

let variant_name = function
  | No_failover -> "no failover"
  | Wait_five_seconds -> "failover (wait 5 s)"
  | Reconfigure_existing -> "failover (reconfigure)"

(* Per-variant seed salt.  Hashtbl.hash of a constructor is
   representation-dependent (unstable across compiler versions); an
   explicit tag keeps every run's RNG seed identical everywhere. *)
let variant_salt = function
  | No_failover -> 1
  | Wait_five_seconds -> 2
  | Reconfigure_existing -> 3

let udp_loss_during_failover = function
  | No_failover | Wait_five_seconds | Reconfigure_existing -> 0.0

let file_bytes = 20 * 1024 * 1024

let tcp_params_for rng =
  (* Per-run statistical fluctuation of the monitor-limited bottleneck,
     which is what spreads the paper's CDFs. *)
  {
    Apple_packetsim.Tcp_model.default_params with
    Apple_packetsim.Tcp_model.bottleneck_mbps = 95.0 *. (0.95 +. Rng.float rng 0.10);
  }

let file_transfer_experiment ~seed ~runs =
  let variants = [ No_failover; Wait_five_seconds; Reconfigure_existing ] in
  List.map
    (fun variant ->
      let durations =
        Array.init runs (fun r ->
            let rng = Rng.create (seed + (17 * r) + variant_salt variant) in
            let params = tcp_params_for rng in
            (* In all three strategies the forwarding rules only change
               once the replacement VNF is live (wait-5s) or reconfigured
               (30 ms on a running ClickOS VM), so TCP never sees an
               outage; the paper measures exactly this non-effect. *)
            let outcome =
              Apple_packetsim.Tcp_model.transfer ~params ~bytes:file_bytes ()
            in
            outcome.Apple_packetsim.Tcp_model.completion_time)
      in
      (variant, durations))
    variants

(* The contrast the paper's design avoids: switching the rules *before*
   the replacement VM is up puts the Fig-7 blackout in the middle of the
   transfer — TCP times out, backs off exponentially and restarts from
   slow start. *)
let naive_switch_transfer ~seed =
  let rng = Rng.create seed in
  let params = tcp_params_for rng in
  let outage =
    {
      Apple_packetsim.Tcp_model.outage_start = 0.3 +. Rng.float rng 0.5;
      outage_duration = 3.9 +. Rng.float rng 0.7;
    }
  in
  Apple_packetsim.Tcp_model.transfer ~params ~outage ~bytes:file_bytes ()

(* ------------------------------------------------------------------ *)
(* Fig. 7 companion: blackout when the orchestrator respawns a crashed *)
(* VM — supervisor backoff plus the boot path's latency.               *)

type respawn_run = {
  attempt : int;
  backoff_s : float;
  blackout_s : float;
}

let respawn_blackout ?(policy = Resource_orchestrator.default_backoff)
    ?(boot = Lifecycle.Raw_clickos) ~seed ~attempts () =
  List.init attempts (fun a ->
      let world = Engine.create () in
      let rng = Rng.create (seed + a) in
      let orch = Resource_orchestrator.create ~host_cores:[| 8 |] in
      let victim =
        Resource_orchestrator.launch orch Apple_vnf.Nf.Firewall ~host:0
      in
      let killed_at = 1.0 in
      let ready_at = ref infinity in
      Engine.schedule world ~delay:killed_at (fun w ->
          ignore
            (Resource_orchestrator.respawn orch ~world:w ~rng ~boot ~policy
               ~attempt:a
               ~on_ready:(fun _ -> ready_at := Engine.now world)
               victim));
      Engine.run world;
      {
        attempt = a;
        backoff_s = Resource_orchestrator.backoff_delay ~policy ~attempt:a ();
        blackout_s = !ready_at -. killed_at;
      })

(* ------------------------------------------------------------------ *)
(* Fig. 9: overload detection and rollback timeline.                   *)

type detection_event = {
  time : float;
  kind : [ `Overload_detected | `New_instance_ready | `Rolled_back ];
}

type detection_run = {
  send_rate : (float * float) list;
  master_rate : (float * float) list;
  sibling_rate : (float * float) list;
  det_events : detection_event list;
  packet_loss : float;
}

module Obs = Apple_obs.Counters
module Poller = Apple_obs.Poller

let overload_detection_experiment ?(load_source = `Oracle) ~seed () =
  let world = Engine.create () in
  let rng = Rng.create seed in
  let capacity_kpps = 10.5 in
  (* Source program of the experiment: 1 Kpps, soaring to 10 at t=2,
     back to 1 at t=7. *)
  let source_rate t = if t >= 2.0 && t < 7.0 then 10.0 else 1.0 in
  (* Split of the source between master and the failover sibling. *)
  let master_share = ref 1.0 in
  let sibling_live = ref false in
  let events = ref [] in
  let record kind w = events := { time = Engine.now w; kind } :: !events in
  let detector =
    Overload.create ~high_watermark:8.5 ~low_watermark:4.0 ()
  in
  let master_rate w = source_rate (Engine.now w) *. !master_share in
  let react w = function
    | `Went_overloaded ->
        record `Overload_detected w;
        (* Reconfigure a pre-booted ClickOS VM (30 ms) and install the
           new sub-class rules (70 ms); then half the traffic moves. *)
        Engine.schedule w
          ~delay:(Lifecycle.reconfigure_time +. Lifecycle.rule_install_time)
          (fun w' ->
            sibling_live := true;
            master_share := 0.5;
            record `New_instance_ready w')
    | `Recovered ->
        record `Rolled_back w;
        master_share := 1.0;
        sibling_live := false
    | `No_change -> ()
  in
  (* Detector drive: the oracle reads the instantaneous master rate (the
     seed behaviour, simulator ground truth); polled mode credits real
     dataplane counters from a fine-grained traffic integrator and reads
     them back through a {!Poller}, so detection sees exactly what a
     counter-polling controller would — delayed and EWMA-smoothed. *)
  let install_detector () =
    match load_source with
    | `Oracle ->
        Engine.every world ~period:(Overload.poll_period detector) ~until:10.0
          (fun w ->
            let _, transition = Overload.observe detector ~rate:(master_rate w) in
            react w transition)
    | `Polled period ->
        let master_inst = 0 in
        let dt = 0.005 in
        let carry = ref 0.0 in
        (* Integrator first: the engine breaks same-time ties by insertion
           order, so traffic up to t is counted before the poll at t. *)
        Engine.every world ~period:dt ~until:10.0 (fun w ->
            let pkts = (master_rate w *. 1000.0 *. dt) +. !carry in
            let whole = int_of_float pkts in
            carry := pkts -. float_of_int whole;
            if whole > 0 then
              Obs.inst_traffic ~id:master_inst ~packets:whole
                ~bytes:(whole * 1500));
        let poller = Poller.create ~period () in
        Engine.every world ~period ~until:10.0 (fun w ->
            Poller.poll poller ~now:(Engine.now w);
            let rate = Poller.inst_rate_pps poller master_inst /. 1000.0 in
            let _, transition = Overload.observe detector ~rate in
            react w transition)
  in
  (* Sample the rates and accumulate loss. *)
  let send = ref [] and master = ref [] and sibling = ref [] in
  let offered = ref 0.0 and dropped = ref 0.0 in
  let sample_period = 0.05 in
  let install_sampler () =
    Engine.every world ~period:sample_period ~until:10.0 (fun w ->
        let t = Engine.now w in
        let rate = source_rate t in
        let m = rate *. !master_share in
        let s = rate -. m in
        send := (t, rate) :: !send;
        master := (t, m) :: !master;
        sibling := (t, s) :: !sibling;
        let loss_m =
          Instance.loss_at_pps ~capacity_pps:capacity_kpps ~offered_pps:m
        in
        let loss_s =
          if s > 0.0 && not !sibling_live then 1.0
          else Instance.loss_at_pps ~capacity_pps:capacity_kpps ~offered_pps:s
        in
        offered := !offered +. (rate *. sample_period);
        dropped :=
          !dropped +. (((m *. loss_m) +. (s *. loss_s)) *. sample_period))
  in
  let simulate () =
    install_detector ();
    install_sampler ();
    ignore rng;
    Engine.run ~until:10.5 world
  in
  (match load_source with
  | `Oracle -> simulate ()
  | `Polled _ ->
      (* Counters on for the duration of the run only, previous state
         (and a clean slate) restored either way. *)
      let saved = Obs.enabled () in
      Obs.reset ();
      Obs.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs.set_enabled saved;
          Obs.reset ())
        simulate);
  {
    send_rate = List.rev !send;
    master_rate = List.rev !master;
    sibling_rate = List.rev !sibling;
    det_events = List.rev !events;
    packet_loss = (if !offered > 0.0 then !dropped /. !offered else 0.0);
  }

let detection_latency run =
  let onset = 2.0 in
  List.find_map
    (fun e ->
      match e.kind with
      | `Overload_detected -> Some (e.time -. onset)
      | _ -> None)
    run.det_events

let detection_latency_vs_poll ~seed ~periods =
  List.map
    (fun p ->
      let run = overload_detection_experiment ~load_source:(`Polled p) ~seed () in
      match detection_latency run with
      | Some l -> (p, l)
      | None -> (p, infinity))
    periods
