module Prefix = Apple_classifier.Prefix_split
module Tcam = Apple_dataplane.Tcam
module Rule = Apple_dataplane.Rule
module Tag = Apple_dataplane.Tag
module Graph = Apple_topology.Graph
module Builders = Apple_topology.Builders
module Instance = Apple_vnf.Instance
module T = Apple_telemetry.Telemetry

let m_tcam_tagged = T.Counter.create "apple.rules.tcam_tagged"
let m_tcam_untagged = T.Counter.create "apple.rules.tcam_untagged"
let m_vswitch = T.Counter.create "apple.rules.vswitch"

type tag_mode = [ `Local | `Global ]

type built = {
  network : Tcam.network;
  tcam_with_tagging : int;
  tcam_without_tagging : int;
  vswitch_rules : int;
  split_depth : int;
  tag_mode : tag_mode;
  global_tags_used : int;
  tag_of : (int, int) Hashtbl.t;
}

let needs_global_tags (s : Types.scenario) =
  Array.exists
    (fun c -> Array.exists Apple_vnf.Nf.rewrites_header c.Types.chain)
    s.Types.classes

let subclass_prefixes (cls : Types.flow_class) subs ~depth =
  let weights = Array.of_list (List.map (fun s -> s.Subclass.weight) subs) in
  Prefix.split ~base:cls.Types.src_block ~weights ~depth

(* Distinct hops of a sub-class, in traversal order, with per-hop stage
   lists (consecutive stages processed in the same host). *)
let hop_groups (sub : Subclass.subclass) =
  let groups = ref [] in
  Array.iteri
    (fun j i ->
      match !groups with
      | (i', stages) :: rest when i' = i -> groups := (i', j :: stages) :: rest
      | _ -> groups := (i, [ j ]) :: !groups)
    sub.Subclass.hops;
  List.rev_map (fun (i, stages) -> (i, List.rev stages)) !groups

let tr_build = Apple_trace.Trace.span ~cat:"rulegen" "rulegen.build"

let build ?(split_depth = 6) ?(tag_mode = `Auto) (s : Types.scenario)
    (assignment : Subclass.assignment) =
  Apple_trace.Trace.with_ tr_build @@ fun () ->
  let mode : tag_mode =
    match tag_mode with
    | `Local -> `Local
    | `Global -> `Global
    | `Auto -> if needs_global_tags s then `Global else `Local
  in
  let g = s.Types.topo.Builders.graph in
  let n = Graph.num_nodes g in
  let network = Tcam.network ~num_switches:n in
  let classes = s.Types.classes in
  (* Dense global sub-class ids, allocated lazily in [`Global] mode so
     they fit the 12-bit tag field. *)
  let global_ids : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let tag_table : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let next_global = ref 0 in
  let tag_value (sub : Subclass.subclass) =
    let key = Subclass.key sub in
    let value =
      match mode with
      | `Local -> sub.Subclass.sub_id
      | `Global -> (
          match Hashtbl.find_opt global_ids key with
          | Some gid -> gid
          | None ->
              let gid = !next_global in
              incr next_global;
              Hashtbl.add global_ids key gid;
              gid)
    in
    if not (Hashtbl.mem tag_table key) then Hashtbl.add tag_table key value;
    value
  in
  let vswitch_key (c : Types.flow_class) sub =
    match mode with
    | `Local ->
        Rule.Per_class { cls = c.Types.id; subclass = sub.Subclass.sub_id }
    | `Global -> Rule.Global (tag_value sub)
  in
  (* Group sub-classes by class. *)
  let by_class = Array.make (Array.length classes) [] in
  List.iter
    (fun sub ->
      by_class.(sub.Subclass.class_id) <- sub :: by_class.(sub.Subclass.class_id))
    assignment.Subclass.subclasses;
  Array.iteri (fun h subs -> by_class.(h) <- List.rev subs) by_class;
  (* Which hosts are referenced at each switch (for host-match rules). *)
  let host_used = Array.make n false in
  let vswitch_count = ref 0 in
  let no_tag_entries = ref 0 in
  (* Pre-compute ECMP sibling groups: classes sharing an (src,dst) pair. *)
  let siblings = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      let kp = Types.pair_group c in
      Hashtbl.replace siblings kp
        (c :: Option.value ~default:[] (Hashtbl.find_opt siblings kp)))
    classes;
  Array.iteri
    (fun h c ->
      let subs = by_class.(h) in
      if subs <> [] then begin
        let prefixes = subclass_prefixes c subs ~depth:split_depth in
        let ingress = c.Types.path.(0) in
        let ingress_table = network.(ingress) in
        List.iteri
          (fun s_idx sub ->
            let groups = hop_groups sub in
            (match groups with
            | [] ->
                (* Empty chain: tag Fin at ingress; forwarding continues. *)
                Tcam.add_phys ingress_table
                  {
                    Rule.priority = 100;
                    pmatch =
                      {
                        Rule.m_host = `Empty;
                        m_subclass = `Any;
                        m_prefixes = prefixes.(s_idx);
                      };
                    action =
                      Rule.Tag_and_forward
                        { subclass = tag_value sub; host = Tag.Fin };
                  }
            | (first_hop, _) :: _ ->
                let first_switch = c.Types.path.(first_hop) in
                let action =
                  if first_switch = ingress then
                    Rule.Tag_and_deliver
                      { subclass = tag_value sub; host = ingress }
                  else
                    Rule.Tag_and_forward
                      {
                        subclass = tag_value sub;
                        host = Tag.Host first_switch;
                      }
                in
                Tcam.add_phys ingress_table
                  {
                    Rule.priority = 100;
                    pmatch =
                      {
                        Rule.m_host = `Empty;
                        m_subclass = `Any;
                        m_prefixes = prefixes.(s_idx);
                      };
                    action;
                  });
            (* vSwitch pipelines per visited host. *)
            let rec emit_groups = function
              | [] -> ()
              | (hop, stages) :: rest ->
                  let v = c.Types.path.(hop) in
                  host_used.(v) <- true;
                  let next_host =
                    match rest with
                    | [] -> Tag.Fin
                    | (hop', _) :: _ -> Tag.Host c.Types.path.(hop')
                  in
                  let table = network.(v) in
                  let inst_of stage =
                    match
                      Hashtbl.find_opt assignment.Subclass.instance_of
                        (Subclass.key sub, stage)
                    with
                    | Some inst -> Instance.id inst
                    | None ->
                        invalid_arg
                          "Rule_generator.build: sub-class stage missing an instance"
                  in
                  let rec chain_rules port = function
                    | [] ->
                        Tcam.add_vswitch table
                          {
                            Rule.v_port = port;
                            v_key = vswitch_key c sub;
                            v_action = Rule.Back_to_network next_host;
                          };
                        incr vswitch_count
                    | stage :: more ->
                        let inst = inst_of stage in
                        Tcam.add_vswitch table
                          {
                            Rule.v_port = port;
                            v_key = vswitch_key c sub;
                            v_action = Rule.To_instance inst;
                          };
                        incr vswitch_count;
                        chain_rules (Rule.From_instance inst) more
                  in
                  chain_rules Rule.From_network stages;
                  (* Traffic born in a production VM inside the ingress
                     host (Fig. 3, ip3 -> ip4) enters the pipeline from a
                     VM port instead of the network port; the vSwitch
                     classifies it with a mirrored rule. *)
                  if v = ingress then begin
                    match stages with
                    | first_stage :: _ ->
                        Tcam.add_vswitch table
                          {
                            Rule.v_port = Rule.From_production_vm;
                            v_key = vswitch_key c sub;
                            v_action = Rule.To_instance (inst_of first_stage);
                          };
                        incr vswitch_count
                    | [] -> ()
                  end;
                  emit_groups rest
            in
            emit_groups groups;
            (* No-tagging baseline accounting (SIMPLE-style steering):
               without tags, every switch from the ingress to the last
               processing hop must recognize the sub-class by its prefix
               rules to keep steering it, processing hops additionally
               need a second copy to tell diverted from resumed traffic,
               and the rules are replicated on every ECMP sibling path of
               the pair because wildcard rules cannot tell siblings
               apart. *)
            let sibling_count =
              List.length
                (Option.value ~default:[ c ]
                   (Hashtbl.find_opt siblings (Types.pair_group c)))
            in
            let n_prefixes = max 1 (List.length prefixes.(s_idx)) in
            let processing_hops = List.length groups in
            let span =
              match List.rev groups with
              | [] -> 0
              | (last_hop, _) :: _ -> last_hop + 1
            in
            no_tag_entries :=
              !no_tag_entries
              + (n_prefixes * (span + processing_hops) * sibling_count))
          subs
      end)
    classes;
  (* Host-match and pass-by rules per switch. *)
  for v = 0 to n - 1 do
    if host_used.(v) then
      Tcam.add_phys network.(v)
        {
          Rule.priority = 200;
          pmatch = { Rule.m_host = `Host v; m_subclass = `Any; m_prefixes = [] };
          action = Rule.Fwd_to_host v;
        };
    Tcam.add_phys network.(v)
      {
        Rule.priority = 0;
        pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
        action = Rule.Goto_next;
      }
  done;
  let built =
    {
      network;
      tcam_with_tagging = Tcam.total_tcam network;
      tcam_without_tagging = !no_tag_entries;
      vswitch_rules = !vswitch_count;
      split_depth;
      tag_mode = mode;
      global_tags_used = !next_global;
      tag_of = tag_table;
    }
  in
  if T.enabled () then begin
    T.Counter.add m_tcam_tagged built.tcam_with_tagging;
    T.Counter.add m_tcam_untagged built.tcam_without_tagging;
    T.Counter.add m_vswitch built.vswitch_rules;
    T.Journal.recordf ~kind:"rules"
      "rules installed: %d TCAM tagged (%d untagged), %d vswitch, %d global tags"
      built.tcam_with_tagging built.tcam_without_tagging built.vswitch_rules
      built.global_tags_used
  end;
  Apple_obs.Flight.record Apple_obs.Flight.Rules ~a:built.tcam_with_tagging
    ~b:built.vswitch_rules ~c:built.global_tags_used ();
  built

let reduction_ratio built =
  if built.tcam_with_tagging = 0 then 0.0
  else float_of_int built.tcam_without_tagging /. float_of_int built.tcam_with_tagging

let tags_left built =
  match built.tag_mode with
  | `Global -> Tag.max_subclasses - built.global_tags_used
  | `Local ->
      (* lint: L3 — commutative max over tag ids *)
      let max_tag = Hashtbl.fold (fun _ v acc -> max acc v) built.tag_of (-1) in
      Tag.max_subclasses - (max_tag + 1)
