(** Experiment drivers: one per table/figure of the paper's evaluation.

    Each function runs the corresponding workload and returns the rendered
    rows (plus raw numbers where tests need them).  The bench executable
    and the CLI both print these, so the reproduction is a single command
    per artifact. *)

type rendered = { title : string; body : string }

val print : rendered -> unit

(** Global knobs, kept deliberately small.  [scale] < 1 shrinks snapshot
    counts/runs for quick smoke runs. *)
type opts = { seed : int; scale : float }

val default_opts : opts

val table1 : opts -> rendered
(** Framework property comparison, APPLE's column verified mechanically. *)

val table3 : opts -> rendered
(** TCAM layout of a representative ingress switch (Table III shape). *)

val table4 : opts -> rendered
(** VNF data sheets. *)

val table5 : opts -> rendered * (string * float) list
(** Optimization Engine computation time per topology (monolithic LP and
    the per-class decomposition at jobs=1 / jobs=N); also returns the raw
    [(topology, seconds)] pairs of the monolithic solve. *)

val jobs_table :
  ?jobs_list:int list ->
  ?repeat:int ->
  opts ->
  rendered * (string * float * (int * float) list * bool) list
(** Serial-vs-parallel study of the [Per_class] engine: per topology, the
    monolithic LP time, the per-class time at each jobs value (minimum of
    [repeat] runs), and whether every jobs value produced the identical
    placement.  Raw rows are [(topology, lp_seconds, (jobs, seconds)
    list, identical)]. *)

val fig6 : opts -> rendered
val fig7 : opts -> rendered
val fig8 : opts -> rendered
val fig9 : opts -> rendered

val fig9_polled : opts -> rendered
(** The Fig. 9 experiment with detection driven by polled dataplane
    counters ({!Apple_obs.Poller}) instead of the oracle rate: event
    timelines for both modes side by side, plus detection latency as a
    function of the poll period (10–200 ms).  The oracle run stays the
    ground truth; the gap is the measurement plane's delay. *)

val fig10 : opts -> rendered * (string * Apple_prelude.Stats.boxplot) list
(** TCAM reduction ratio boxplots per topology. *)

val fig11 : opts -> rendered * (string * int * int) list
(** Average CPU cores: [(topology, apple_cores, ingress_cores)]. *)

val fig12 : opts -> rendered * (string * float * float * float) list
(** Loss over time: [(topology, mean loss with failover, mean loss
    without, mean extra cores)]. *)

val all : opts -> rendered list
(** Every artifact in paper order. *)

(** {2 Ablations — design-choice studies beyond the paper's figures} *)

val ablation_engines : opts -> rendered
(** LP pipeline vs greedy heuristic vs selector, per topology:
    instances, cores, solve time. *)

val ablation_passes : opts -> rendered
(** Contribution of the reweighted second LP and the consolidation pass
    to the rounded objective. *)

val ablation_split_depth : opts -> rendered
(** Prefix-split quantization depth vs TCAM entries and weight error,
    compared against the consistent-hashing realization (one rule per
    sub-class, sampled weight error). *)

val ablation_tag_mode : opts -> rendered
(** Local vs global sub-class tags on a NAT-heavy scenario: table sizes,
    tag-space consumption, and how many packet walks survive header
    rewriting under each mode. *)

val ablation_packet_level : opts -> rendered
(** Validate the analytic Fig-6 loss model against the packet-level
    simulator (single-server queue, drop-tail), including the queueing
    latency the analytic model cannot show. *)

val ablation_failure_recovery : opts -> rendered
(** Fail the most-loaded link, let routing recompute paths, and re-run a
    global epoch: APPLE follows the new routing (never reroutes on its
    own) and re-verifies every class end-to-end.  Reports re-routed
    classes, placement delta and recovery solve time. *)

val ablation_scale : opts -> rendered
(** Rocketfuel-scale ISPs (79-161 routers): LP pipeline time/quality vs
    the greedy heuristic — the "gigantic networks" future work of
    Sec. IV-D quantified. *)

val ablation_path_stretch : opts -> rendered
(** The interference APPLE avoids, quantified: path stretch and added
    latency of SIMPLE/StEERING-style steering vs zero detour on-path. *)

val ablations : opts -> rendered list
(** All eight, in the order above. *)
