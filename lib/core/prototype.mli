(** Discrete-event reproductions of the prototype experiments
    (paper Sec. VIII).

    The original testbed was an all-in-one OpenStack + OpenDaylight + Xen
    box with two network namespaces exchanging UDP/TCP traffic through a
    ClickOS passive monitor.  Each experiment below drives the same
    control logic (rule installation, VM boot, counter polling, sub-class
    rebalancing) on the simulation clock with the measured latency
    constants from {!Apple_vnf.Lifecycle}. *)

(** Fig. 6 — loss rate of a ClickOS passive monitor vs packet rate, for
    several packet sizes (loss tracks the packet rate, not size). *)
type monitor_point = {
  rate_kpps : float;
  loss_64 : float;
  loss_512 : float;
  loss_1500 : float;
}

val monitor_loss_curve :
  ?capacity_kpps:float -> ?max_kpps:float -> ?steps:int -> unit -> monitor_point list

(** Fig. 7 — VM setup time approximated by the throughput blackout when
    forwarding rules point at a ClickOS VM still booting through
    OpenStack. *)
type setup_run = {
  blackout_seconds : float;  (** throughput-zero window *)
  throughput : (float * float) list;  (** (time, delivered kpps) series *)
}

val vm_setup_experiment : seed:int -> runs:int -> setup_run list
(** Paper: 10 runs, blackouts in [3.9, 4.6] s, mean ~4.2 s. *)

(** Fig. 7 companion — throughput blackout when the Resource Orchestrator
    respawns a crashed VM: the supervisor's capped exponential backoff
    plus the boot path's latency (plus rule installation). *)
type respawn_run = {
  attempt : int;  (** which respawn attempt of the same slot *)
  backoff_s : float;  (** supervisor delay before the boot starts *)
  blackout_s : float;  (** kill -> replacement ready, seconds *)
}

val respawn_blackout :
  ?policy:Resource_orchestrator.backoff ->
  ?boot:Apple_vnf.Lifecycle.boot_path ->
  seed:int ->
  attempts:int ->
  unit ->
  respawn_run list
(** One isolated kill-and-respawn world per attempt number 0..n-1.
    [blackout_s] is expected to equal backoff + boot + rule install, and
    to stop growing once the backoff hits [policy.cap]. *)

(** Fig. 8 — CDF of the time to transfer a 20 MB file under three
    failover strategies. *)
type transfer_variant = No_failover | Wait_five_seconds | Reconfigure_existing

val variant_name : transfer_variant -> string

val file_transfer_experiment :
  seed:int -> runs:int -> (transfer_variant * float array) list
(** Transfer durations (seconds) per variant, from the Reno model of
    {!Apple_packetsim.Tcp_model}; the paper finds the three distributions
    statistically indistinguishable and UDP loss 0%. *)

val naive_switch_transfer :
  seed:int -> Apple_packetsim.Tcp_model.outcome
(** The contrast APPLE's design avoids: forwarding rules switched before
    the replacement VM is ready, so the Fig-7 blackout hits the transfer
    mid-flight (timeouts, exponential backoff, slow-start restart). *)

val udp_loss_during_failover : transfer_variant -> float
(** 0.0 for [Wait_five_seconds] and [Reconfigure_existing] — the rules
    only switch after the replacement is ready. *)

(** Fig. 9 — overload detection timeline: source rate 1 -> 10 -> 1 Kpps,
    watermarks 8.5 / 4 Kpps. *)
type detection_event = {
  time : float;
  kind : [ `Overload_detected | `New_instance_ready | `Rolled_back ];
}

type detection_run = {
  send_rate : (float * float) list;  (** (time, source kpps) *)
  master_rate : (float * float) list;  (** monitor instance receive rate *)
  sibling_rate : (float * float) list;  (** failover instance receive rate *)
  det_events : detection_event list;
  packet_loss : float;  (** end-to-end, expected 0 *)
}

val overload_detection_experiment :
  ?load_source:[ `Oracle | `Polled of float ] ->
  seed:int ->
  unit ->
  detection_run
(** [`Oracle] (the default) drives the detector from the instantaneous
    master rate — simulator ground truth, the seed behaviour.  [`Polled
    period] instead credits dataplane counters ({!Apple_obs.Counters})
    from a fine-grained traffic integrator and reads them back through an
    {!Apple_obs.Poller} on the given period, so the detector sees the
    delayed, EWMA-smoothed estimate a counter-polling controller would.
    Counters are enabled only for the duration of the run and restored
    afterwards. *)

val detection_latency : detection_run -> float option
(** Seconds from the overload onset (t = 2.0) to the first
    [`Overload_detected] event; [None] if the run never detected it. *)

val detection_latency_vs_poll :
  seed:int -> periods:float list -> (float * float) list
(** One polled run per period: [(period, detection latency)] pairs, with
    [infinity] marking a missed detection.  The latency is expected to
    grow monotonically with the poll period — the measurement-granularity
    trade-off of Sec. VII-B. *)
