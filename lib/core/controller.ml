module Matrix = Apple_traffic.Matrix
module Instance = Apple_vnf.Instance

let log = Logs.Src.create "apple.controller" ~doc:"APPLE controller"

module Log = (val Logs.src_log log : Logs.LOG)
module T = Apple_telemetry.Telemetry

module Tr = Apple_trace.Trace

let sp_epoch = T.Span.create "controller.epoch"
let sp_gate = T.Span.create "controller.verify_gate"
let tr_epoch = Tr.span ~cat:"epoch" "controller.epoch"
let tr_gate = Tr.span ~cat:"verify" "controller.verify_gate"
let tr_heal = Tr.span ~cat:"heal" "controller.heal"
let m_epochs = T.Counter.create "apple.controller.epochs"
let m_rejected = T.Counter.create "apple.controller.rejected_epochs"

type epoch_report = {
  placement : Optimization_engine.placement;
  rules : Rule_generator.built;
  instances : int;
  cores : int;
  tcam_entries : int;
  solve_seconds : float;
}

type engine = [ `Best | `Lp | `Per_class | `Greedy ]

type gate =
  Types.scenario ->
  Subclass.assignment ->
  Rule_generator.built ->
  (unit, string) result

type shape = Types.scenario -> Subclass.assignment -> Subclass.assignment

exception Rejected of string

type t = {
  s : Types.scenario;
  objective : Optimization_engine.objective;
  engine : engine;
  jobs : int option;
  failover : Dynamic_handler.config;
  mutable load_source : Dynamic_handler.load_source;
  gate : gate option;
  shape : shape option;
  mutable report : epoch_report option;
  mutable state : Netstate.t option;
  mutable handler : Dynamic_handler.t option;
  mutable assignment : Subclass.assignment option;
  mutable heals : (int * int) list;
      (** (dead id, replacement id) pairs healed since the last
          [run_epoch], newest first — the soak checkpoint's heal ledger *)
}

let create ?(objective = Optimization_engine.Min_instances) ?(engine = `Best)
    ?jobs ?(failover = Dynamic_handler.default_config)
    ?(load_source = Dynamic_handler.Oracle) ?gate ?shape s =
  {
    s;
    objective;
    engine;
    jobs;
    failover;
    load_source;
    gate;
    shape;
    report = None;
    state = None;
    handler = None;
    assignment = None;
    heals = [];
  }

let set_load_source t src = t.load_source <- src

let run_epoch t =
  T.Journal.recordf ~kind:"epoch" "epoch started: %d classes"
    (Array.length t.s.Types.classes);
  T.Span.with_ sp_epoch @@ fun () ->
  Tr.with_ tr_epoch @@ fun () ->
  let placement =
    match t.engine with
    | `Best -> Engine_select.solve_best ~objective:t.objective t.s
    | `Lp -> Optimization_engine.solve ~objective:t.objective t.s
    | `Per_class ->
        Optimization_engine.solve ~objective:t.objective
          ~method_:Optimization_engine.Per_class ?jobs:t.jobs t.s
    | `Greedy -> Heuristic_engine.solve ~objective:t.objective ?jobs:t.jobs t.s
  in
  let assignment = Subclass.assign t.s placement in
  let assignment =
    match t.shape with None -> assignment | Some f -> f t.s assignment
  in
  let rules = Rule_generator.build t.s assignment in
  (* Static admission gate: a rejected configuration never reaches the
     data plane (no netstate, no handler — the previous epoch stays
     installed). *)
  (match t.gate with
  | None -> ()
  | Some gate -> (
      match
        Tr.with_ tr_gate (fun () ->
            T.Span.with_ sp_gate (fun () -> gate t.s assignment rules))
      with
      | Ok () -> ()
      | Error msg ->
          T.Counter.incr m_rejected;
          T.Journal.recordf ~kind:"epoch" "epoch rejected by verify gate: %s"
            msg;
          Log.err (fun m -> m "epoch rejected by verify gate: %s" msg);
          raise (Rejected msg)));
  let state = Netstate.of_assignment t.s assignment in
  Netstate.recompute_loads state;
  let report =
    {
      placement;
      rules;
      instances = Optimization_engine.instance_count placement;
      cores = Optimization_engine.core_count placement;
      tcam_entries = rules.Rule_generator.tcam_with_tagging;
      solve_seconds = placement.Optimization_engine.solve_seconds;
    }
  in
  t.report <- Some report;
  t.state <- Some state;
  t.assignment <- Some assignment;
  t.heals <- [];
  t.handler <-
    Some
      (Dynamic_handler.create ~config:t.failover ~load_source:t.load_source
         state);
  T.Counter.incr m_epochs;
  (* Dataplane epoch hook: the compiled engine accounts (switch, epoch)
     compiles against this; the epoch's fresh tables carry fresh caches,
     so stale compiles cannot survive an install. *)
  Apple_dataplane.Compiled.note_epoch ();
  Apple_obs.Flight.record Apple_obs.Flight.Epoch
    ~a:(Array.length t.s.Types.classes)
    ~b:report.instances ~c:report.cores ();
  T.Journal.recordf ~kind:"epoch"
    "epoch done: %d instances, %d cores, %d TCAM entries in %.2fs"
    report.instances report.cores report.tcam_entries report.solve_seconds;
  Log.info (fun m ->
      m "epoch: %d classes -> %d instances (%d cores), %d TCAM entries, %.2fs"
        (Array.length t.s.Types.classes)
        report.instances report.cores report.tcam_entries report.solve_seconds);
  report

let handle_snapshot t tm =
  match (t.state, t.handler) with
  | Some state, Some handler ->
      Scenario.update_rates t.s tm;
      Dynamic_handler.step handler;
      Netstate.network_loss state
  | _ -> invalid_arg "Controller.handle_snapshot: run_epoch first"

let scenario t = t.s
let netstate t = t.state
let last_report t = t.report
let assignment t = t.assignment
let handler t = t.handler

let reinstall_rules t =
  match (t.report, t.assignment) with
  | Some report, Some assignment ->
      let rules = Rule_generator.build t.s assignment in
      t.report <-
        Some
          { report with rules; tcam_entries = rules.Rule_generator.tcam_with_tagging };
      T.Journal.recordf ~kind:"epoch" "rules reinstalled: %d TCAM entries"
        rules.Rule_generator.tcam_with_tagging;
      Apple_dataplane.Compiled.note_epoch ();
      rules
  | _ -> invalid_arg "Controller.reinstall_rules: run_epoch first"

let recheck_gate t =
  match t.gate with
  | None -> Ok ()
  | Some gate -> (
      match (t.assignment, t.report) with
      | Some assignment, Some report ->
          Tr.with_ tr_gate (fun () ->
              T.Span.with_ sp_gate (fun () -> gate t.s assignment report.rules))
      | _ -> Error "no epoch has been run")

let heal_instance t ~dead ~replacement =
  match (t.state, t.handler, t.assignment) with
  | Some state, Some handler, Some assignment ->
      Tr.with_ ~cls:(Instance.id dead) tr_heal @@ fun () ->
      Dynamic_handler.heal handler ~dead ~replacement;
      (* Point the assignment's pinning records at the replacement so
         regenerated rules (and [verify]'s walks) name the live id. *)
      let stale =
        (* lint: L3 — independent per-key re-pins; order cannot leak *)
        Hashtbl.fold
          (fun k inst acc ->
            if Instance.id inst = Instance.id dead then k :: acc else acc)
          assignment.Subclass.instance_of []
      in
      List.iter
        (fun k -> Hashtbl.replace assignment.Subclass.instance_of k replacement)
        stale;
      let instances =
        List.map
          (fun i -> if Instance.id i = Instance.id dead then replacement else i)
          assignment.Subclass.instances
      in
      t.assignment <- Some { assignment with Subclass.instances };
      Apple_dataplane.Failmask.restore_instance state.Netstate.mask
        (Instance.id dead);
      t.heals <- (Instance.id dead, Instance.id replacement) :: t.heals;
      ignore (reinstall_rules t)
  | _ -> invalid_arg "Controller.heal_instance: run_epoch first"

let heal_ledger t = List.rev t.heals

let replay_heals t ledger =
  List.iter
    (fun (dead_id, expect_id) ->
      match t.state with
      | None -> invalid_arg "Controller.replay_heals: run_epoch first"
      | Some state -> (
          let orch = state.Netstate.orchestrator in
          match
            List.find_opt
              (fun i -> Instance.id i = dead_id)
              (Resource_orchestrator.instances orch)
          with
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Controller.replay_heals: no instance %d to heal" dead_id)
          | Some dead ->
              (* Closed failover episodes advanced the original run's id
                 counter without leaving instances behind; re-align so the
                 replayed respawn mints the id the ledger recorded. *)
              Resource_orchestrator.set_next_id orch expect_id;
              let replacement = Resource_orchestrator.respawn orch dead in
              if Instance.id replacement <> expect_id then
                invalid_arg
                  (Printf.sprintf
                     "Controller.replay_heals: replacement got id %d, ledger \
                      recorded %d"
                     (Instance.id replacement) expect_id);
              heal_instance t ~dead ~replacement))
    ledger

let verify t =
  match (t.report, t.assignment) with
  | Some report, Some assignment -> (
      let errors = ref [] in
      let fail fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
      (match Optimization_engine.check_distribution t.s report.placement with
      | Ok () -> ()
      | Error e -> fail "distribution: %s" e);
      (* Sub-class weights realize the distribution. *)
      Array.iter
        (fun c ->
          let subs =
            List.filter
              (fun sub -> sub.Subclass.class_id = c.Types.id)
              assignment.Subclass.subclasses
          in
          let d = report.placement.Optimization_engine.distribution.(c.Types.id) in
          if not (Subclass.weights_consistent c d subs) then
            fail "class %d: sub-class weights drift from distribution" c.Types.id)
        t.s.Types.classes;
      if not (Subclass.instance_load_ok assignment ~slack:1.0001) then
        fail "an instance is pinned above its capacity";
      (* Packet walks: policy enforcement + interference freedom. *)
      let inst_kind = Hashtbl.create 64 in
      List.iter
        (fun i -> Hashtbl.replace inst_kind (Instance.id i) (Instance.kind i))
        assignment.Subclass.instances;
      Array.iter
        (fun c ->
          let subs =
            List.filter
              (fun sub -> sub.Subclass.class_id = c.Types.id)
              assignment.Subclass.subclasses
          in
          let prefixes =
            Rule_generator.subclass_prefixes c subs
              ~depth:report.rules.Rule_generator.split_depth
          in
          List.iteri
            (fun idx _ ->
              match prefixes.(idx) with
              | [] -> ()
              | p :: _ -> (
                  let path = Array.to_list c.Types.path in
                  match
                    Apple_dataplane.Walk.run report.rules.Rule_generator.network
                      ~path ~cls:c.Types.id ~src_ip:p.Types.Prefix.addr ()
                  with
                  | Error e ->
                      fail "class %d: walk failed (%s)" c.Types.id
                        (Format.asprintf "%a" Apple_dataplane.Walk.pp_error e)
                  | Ok trace ->
                      if
                        not
                          (Apple_dataplane.Walk.policy_enforced trace
                             ~instance_kind:(Hashtbl.find inst_kind)
                             ~chain:(Array.to_list c.Types.chain))
                      then fail "class %d: policy chain violated" c.Types.id;
                      if
                        not (Apple_dataplane.Walk.interference_free trace ~path)
                      then fail "class %d: forwarding path changed" c.Types.id))
            subs)
        t.s.Types.classes;
      (match !errors with
      | [] -> Ok ()
      | msgs -> Error (String.concat "; " (List.rev msgs))))
  | _ -> Error "no epoch has been run"
