(** The Optimization Engine (paper Sec. IV): traffic-aware VNF placement.

    Builds the ILP of Eq. (1)–(8) over flow classes — decision variables
    [d.(h).(i).(j)] (portion of class [h] processed for chain stage [j] at
    path hop [i]) and [q.(v).(k)] (instances of NF kind [k] at switch [v])
    — and solves it either exactly (branch and bound, small instances) or
    with the paper's LP-relaxation + rounding, followed by a repair pass
    that restores per-host resource feasibility and a shrink pass that
    removes provably unneeded instances. *)

type objective =
  | Min_instances  (** Eq. (1): minimize the instance count *)
  | Min_cores  (** weight each instance by its core requirement (Fig. 11) *)

type method_ =
  | Lp_round  (** LP relaxation + round + repair (the paper's choice) *)
  | Ilp of int  (** exact branch and bound with the given node budget *)
  | Per_class
      (** price-directed decomposition: rounds of independent per-class
          LPs (order + completion constraints only, capacity priced into
          the objective) solved in parallel across domains, merged in
          class order and repriced between rounds.  Deterministic for
          any [jobs]. *)

type placement = {
  counts : int array array;
      (** [counts.(v).(k)] = instances of {!Apple_vnf.Nf.kind_of_index}[ k]
          at switch [v] *)
  distribution : float array array array;
      (** [distribution.(h).(i).(j)] = d^i_{h,j}; dimensions follow each
          class's path and chain lengths *)
  objective_value : float;  (** of the integral solution *)
  lp_objective : float;  (** relaxation bound *)
  solve_seconds : float;  (** wall-clock spent in the solver *)
  model_size : string;  (** vars/constraints summary for reporting *)
}

exception Infeasible of string
(** No placement satisfies capacity/resource constraints (e.g. the host
    budget cannot host the chains of the offered load). *)

val solve :
  ?objective:objective ->
  ?method_:method_ ->
  ?reweight:bool ->
  ?consolidate:bool ->
  ?jobs:int ->
  ?rounds:int ->
  Types.scenario ->
  placement
(** Defaults: [Min_instances], [Lp_round], both post-passes on.
    [reweight] enables the second LP pass that prices under-utilized
    sites (for [Per_class] it gates the repricing rounds: [false] means a
    single round); [consolidate] enables the post-rounding
    instance-merging pass.  Both exist for the bench's ablation study —
    disable them only to measure their contribution.

    [jobs] (default {!Apple_parallel.Pool.default_jobs}, i.e. the
    [APPLE_JOBS] environment variable or the machine's domain count)
    bounds the domains used by [Per_class]'s parallel class fan-out; the
    result is byte-identical for every [jobs] value.  [rounds] (default
    3) is the number of [Per_class] price-directed rounds. *)

val check_distribution : Types.scenario -> placement -> (unit, string) result
(** Verifies Eq. (2)–(4) (chain order and completion) and Eq. (5)–(6)
    (capacity and host resources) at 1e-6 tolerance. *)

val instance_count : placement -> int
val core_count : placement -> int
(** Total CPU cores consumed by the placement. *)

val load : Types.scenario -> placement -> v:int -> k:int -> float
(** Offered load (Mbps) on NF kind [k] at switch [v] under the placement's
    distribution: the left side of Eq. (5). *)
