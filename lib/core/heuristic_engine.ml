module Nf = Apple_vnf.Nf
module Graph = Apple_topology.Graph
module Builders = Apple_topology.Builders

let solve ?(objective = Optimization_engine.Min_instances) ?jobs
    (s : Types.scenario) =
  let t0 = Unix.gettimeofday () in (* lint: L5 — wall-clock solve timing, reported as perf metadata only *)
  let g = s.Types.topo.Builders.graph in
  let n = Graph.num_nodes g in
  let classes = s.Types.classes in
  let cap_of k = (Nf.spec (Nf.kind_of_index k)).Nf.capacity_mbps in
  let cores_of k = (Nf.spec (Nf.kind_of_index k)).Nf.cores in
  (* Per-class chain kind indices, resolved up front across domains: the
     greedy loop below is inherently serial (each placement reads the
     state earlier placements left), but this pure per-class lookup fans
     out — and lands in slots by class id, so results never depend on
     [jobs]. *)
  let kind_idx =
    Apple_parallel.Pool.run ?jobs
      (fun c -> Array.map Nf.kind_index c.Types.chain)
      classes
  in
  (* Hub score: how many classes traverse each switch — consolidating on
     hubs maximizes sharing opportunities for later classes. *)
  let hub_score = Array.make n 0 in
  Array.iter
    (fun c -> Array.iter (fun v -> hub_score.(v) <- hub_score.(v) + 1) c.Types.path)
    classes;
  (* Mutable provisioning state. *)
  let counts = Array.make_matrix n Nf.num_kinds 0 in
  let load = Array.make_matrix n Nf.num_kinds 0.0 in
  let cores_used = Array.make n 0 in
  let spare v k = (float_of_int counts.(v).(k) *. cap_of k) -. load.(v).(k) in
  let can_open v k = cores_used.(v) + cores_of k <= s.Types.host_cores.(v) in
  let open_instance v k =
    counts.(v).(k) <- counts.(v).(k) + 1;
    cores_used.(v) <- cores_used.(v) + cores_of k
  in
  let distribution =
    Array.map
      (fun c ->
        let plen = Array.length c.Types.path in
        let clen = Array.length c.Types.chain in
        Array.init plen (fun _ -> Array.make clen 0.0))
      classes
  in
  (* Hop preference for stage [k] of class [c] at or after [min_hop]:
     grade 0 = spare capacity exists; grade 1 = a new instance fits.
     Within a grade prefer more spare (grade 0) / higher hub score
     (grade 1). *)
  let choose_hop c ~min_hop k =
    let plen = Array.length c.Types.path in
    let best = ref None in
    for i = min_hop to plen - 1 do
      let v = c.Types.path.(i) in
      let sp = spare v k in
      let candidate =
        if sp > 1e-9 then Some (0, -.sp, i)
        else if can_open v k then Some (1, -.float_of_int hub_score.(v), i)
        else None
      in
      match (candidate, !best) with
      | Some cand, Some b when cand < b -> best := Some cand
      | Some cand, None -> best := Some cand
      | _ -> ()
    done;
    match !best with Some (_, _, i) -> Some i | None -> None
  in
  (* Place one class in slices. *)
  let place (c : Types.flow_class) =
    let clen = Array.length c.Types.chain in
    if clen > 0 && c.Types.rate > 0.0 then begin
      let remaining = ref 1.0 in
      let guard = ref 0 in
      while !remaining > 1e-9 do
        incr guard;
        if !guard > 10_000 then
          raise
            (Optimization_engine.Infeasible
               (Printf.sprintf "heuristic: class %d failed to converge" c.Types.id));
        (* Pick the hop vector for this slice. *)
        let hops = Array.make clen 0 in
        let min_hop = ref 0 in
        (try
           for j = 0 to clen - 1 do
             let k = kind_idx.(c.Types.id).(j) in
             match choose_hop c ~min_hop:!min_hop k with
             | Some i ->
                 hops.(j) <- i;
                 min_hop := i
             | None ->
                 raise
                   (Optimization_engine.Infeasible
                      (Printf.sprintf
                         "heuristic: no feasible hop for class %d stage %d"
                         c.Types.id j))
           done
         with Optimization_engine.Infeasible _ as e -> raise e);
        (* Open instances where needed, then size the slice by the
           bottleneck spare. *)
        Array.iteri
          (fun j i ->
            let v = c.Types.path.(i) in
            let k = kind_idx.(c.Types.id).(j) in
            if spare v k <= 1e-9 then open_instance v k)
          hops;
        let slice = ref !remaining in
        Array.iteri
          (fun j i ->
            let v = c.Types.path.(i) in
            let k = kind_idx.(c.Types.id).(j) in
            slice := min !slice (spare v k /. c.Types.rate))
          hops;
        let slice = max !slice 1e-9 in
        Array.iteri
          (fun j i ->
            let v = c.Types.path.(i) in
            let k = kind_idx.(c.Types.id).(j) in
            load.(v).(k) <- load.(v).(k) +. (c.Types.rate *. slice);
            distribution.(c.Types.id).(i).(j) <-
              distribution.(c.Types.id).(i).(j) +. slice)
          hops;
        remaining := !remaining -. slice
      done;
      (* Normalize tiny residue so each stage sums to exactly 1. *)
      let plen = Array.length c.Types.path in
      for j = 0 to clen - 1 do
        let total = ref 0.0 in
        for i = 0 to plen - 1 do
          total := !total +. distribution.(c.Types.id).(i).(j)
        done;
        if !total > 0.0 && abs_float (!total -. 1.0) > 1e-12 then
          for i = 0 to plen - 1 do
            distribution.(c.Types.id).(i).(j) <-
              distribution.(c.Types.id).(i).(j) /. !total
          done
      done
    end
  in
  (* Largest classes first: they dominate capacity and their hub choices
     guide the rest. *)
  let order = Array.init (Array.length classes) (fun i -> i) in
  Array.sort
    (fun a b -> Float.compare classes.(b).Types.rate classes.(a).Types.rate)
    order;
  Array.iter (fun h -> place classes.(h)) order;
  let objective_of counts =
    let acc = ref 0.0 in
    Array.iter
      (fun row ->
        Array.iteri
          (fun k cnt ->
            let w =
              match objective with
              | Optimization_engine.Min_instances -> 1.0
              | Optimization_engine.Min_cores -> float_of_int (cores_of k)
            in
            acc := !acc +. (float_of_int cnt *. w))
          row)
      counts;
    !acc
  in
  {
    Optimization_engine.counts;
    distribution;
    objective_value = objective_of counts;
    lp_objective = objective_of counts;
    solve_seconds = Unix.gettimeofday () -. t0; (* lint: L5 — wall-clock solve timing, reported as perf metadata only *)
    model_size =
      Printf.sprintf "greedy heuristic over %d classes" (Array.length classes);
  }
