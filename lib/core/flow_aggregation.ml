module P = Apple_classifier.Predicate
module Atoms = Apple_classifier.Atoms
module Graph = Apple_topology.Graph
module Builders = Apple_topology.Builders
module Nf = Apple_vnf.Nf

type raw_flow = {
  description : string;
  predicate : P.t;
  ingress : int;
  egress : int;
  chain : Nf.kind list;
  rate : float;
}

type class_info = {
  class_id : int;
  members : int list;
  class_predicate : P.t;
  tcam_rules : int;
}

type result = {
  scenario : Types.scenario;
  classes_info : class_info list;
  atoms : P.t list;
}

exception No_route of string

let aggregate ?(host_cores = Types.default_host_cores) ~env
    (named : Builders.named) flows =
  let g = named.Builders.graph in
  (* Route each flow; group by (path, chain). *)
  let groups : (int list * Nf.kind list, (int * raw_flow) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iteri
    (fun idx flow ->
      if flow.rate < 0.0 then invalid_arg "Flow_aggregation: negative rate";
      if flow.chain = [] then invalid_arg "Flow_aggregation: empty chain";
      match Graph.shortest_path g flow.ingress flow.egress with
      | None ->
          raise
            (No_route
               (Printf.sprintf "%s: no path %d -> %d" flow.description
                  flow.ingress flow.egress))
      | Some path ->
          let key = (path, flow.chain) in
          Hashtbl.replace groups key
            ((idx, flow) :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    flows;
  (* Deterministic class order: by smallest member index. *)
  let grouped =
    (* lint: L3 — order erased: sorted by least member index below *)
    Hashtbl.fold (fun key members acc -> (key, List.rev members) :: acc) groups []
    |> List.sort (fun (_, a) (_, b) ->
           Int.compare (fst (List.hd a)) (fst (List.hd b)))
  in
  let classes_info = ref [] in
  let classes = ref [] in
  List.iteri
    (fun class_id ((path, chain), members) ->
      let rate = List.fold_left (fun acc (_, f) -> acc +. f.rate) 0.0 members in
      let class_predicate =
        List.fold_left
          (fun acc (_, f) -> P.( ||| ) acc f.predicate)
          (P.never env) members
      in
      let src = List.hd path and dst = List.nth path (List.length path - 1) in
      classes :=
        {
          Types.id = class_id;
          src;
          dst;
          path = Array.of_list path;
          chain = Array.of_list chain;
          src_block = Scenario.src_block_of_class_id class_id;
          rate;
        }
        :: !classes;
      classes_info :=
        {
          class_id;
          members = List.map fst members;
          class_predicate;
          tcam_rules = P.wildcard_rules class_predicate;
        }
        :: !classes_info)
    grouped;
  let scenario =
    {
      Types.topo = named;
      classes = Array.of_list (List.rev !classes);
      host_cores = Array.make (Graph.num_nodes g) host_cores;
      seed = 0;
    }
  in
  let atoms =
    Atoms.compute env (List.map (fun f -> f.predicate) flows)
  in
  { scenario; classes_info = List.rev !classes_info; atoms }

let class_of_packet result packet =
  let rec scan = function
    | [] -> None
    | info :: rest ->
        if P.matches info.class_predicate packet then Some info.class_id
        else scan rest
  in
  scan result.classes_info
