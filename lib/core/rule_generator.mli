(** The Rule Generator (paper Sec. III and V-B): turns the sub-class
    assignment into concrete switch tables.

    With the {b tagging scheme}, the ingress switch of each class carries
    the (wildcard-prefix) classification rules that stamp the sub-class ID
    and the first host ID; every other switch only needs one host-match
    rule per referenced APPLE host plus one pass-by rule (Table III).
    vSwitch rules implement the [<in_port, class, sub-class>] pipeline
    inside each APPLE host.

    {b Without tagging} — the baseline of Fig. 10 — every switch that must
    recognize the flow (each processing hop, and, because wildcard rules
    cannot tell ECMP siblings apart, each corresponding hop on every
    sibling path of the same origin–destination pair) carries the full
    per-sub-class prefix classification, twice (divert and resume). *)

(** Sub-class tag semantics (Sec. V-B vs Sec. X):
    - [`Local]: the tag is a class-local sub-class id, multiplexed across
      classes; vSwitch rules recover the class from the packet header.
      Cheap on tag bits but breaks once a header-rewriting NF (NAT) has
      touched the packet.
    - [`Global]: the tag is a network-unique sub-class id; vSwitch rules
      match the tag alone.  Survives header rewriting at the cost of a
      wider tag space (must fit the 12-bit VLAN field). *)
type tag_mode = [ `Local | `Global ]

type built = {
  network : Apple_dataplane.Tcam.network;
  tcam_with_tagging : int;
  tcam_without_tagging : int;
  vswitch_rules : int;
  split_depth : int;  (** quantization depth used for prefix splitting *)
  tag_mode : tag_mode;  (** the mode the tables were generated with *)
  global_tags_used : int;
      (** distinct global ids consumed (0 in [`Local] mode); must stay
          under {!Apple_dataplane.Tag.max_subclasses} *)
  tag_of : (int, int) Hashtbl.t;
      (** {!Subclass.key} -> sub-class tag value stamped by the emitted
          classification rules (the sub id itself in [`Local] mode, the
          allocated dense id in [`Global] mode).  The static verifier
          checks walks and tag-space collisions against this map. *)
}

val needs_global_tags : Types.scenario -> bool
(** True when some policy chain contains a header-rewriting NF, so
    [`Local] tables would mis-forward (Sec. X). *)

val build :
  ?split_depth:int ->
  ?tag_mode:[ tag_mode | `Auto ] ->
  Types.scenario ->
  Subclass.assignment ->
  built
(** [split_depth] (default 6) bounds sub-class weight quantization to
    multiples of 2^-depth when carving source prefixes.  [tag_mode]
    defaults to [`Auto]: [`Global] iff {!needs_global_tags}. *)

val reduction_ratio : built -> float
(** tcam_without_tagging / tcam_with_tagging — the Fig. 10 metric. *)

val tags_left : built -> int
(** Remaining sub-class tag values in the 12-bit VLAN field: the
    unallocated dense ids for [`Global] tables, the headroom above the
    largest class-local sub id for [`Local] ones.  Negative when the
    tables already overflow the field — the verifier reports that as a
    tag collision; the slice admission gate rejects it as tag-space
    exhaustion before the slice ever commits. *)

val subclass_prefixes :
  Types.flow_class -> Subclass.subclass list -> depth:int ->
  Apple_classifier.Prefix_split.prefix list array
(** The source-prefix realization of the sub-class weights (exposed for
    tests: realized weights must approximate the requested ones). *)
