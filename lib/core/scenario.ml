module Rng = Apple_prelude.Rng
module Graph = Apple_topology.Graph
module Builders = Apple_topology.Builders
module Matrix = Apple_traffic.Matrix
module Prefix = Apple_classifier.Prefix_split

type config = {
  policy_mix : Policy.mix;
  min_rate : float;
  max_classes : int;
  ecmp : bool;
  host_cores : int;
  min_path_hops : int;
}

let default_config =
  {
    policy_mix = Policy.default_mix;
    min_rate = 1.0;
    max_classes = 120;
    ecmp = true;
    host_cores = Types.default_host_cores;
    min_path_hops = 1;
  }

(* Classes get disjoint /24 blocks inside 10.0.0.0/8: class k owns
   10.(k/256).(k mod 256).0/24. *)
let src_block_of_class_id id =
  if id < 0 || id >= 65536 then invalid_arg "Scenario: class id out of range";
  let addr = (10 lsl 24) lor ((id / 256) lsl 16) lor ((id mod 256) lsl 8) in
  { Prefix.addr; len = 24 }

let build ?(config = default_config) ~seed (named : Builders.named) tm =
  Policy.validate config.policy_mix;
  let rng = Rng.create seed in
  let g = named.Builders.graph in
  let n = Graph.num_nodes g in
  if Matrix.size tm <> n then
    invalid_arg "Scenario.build: traffic matrix size does not match topology";
  (* Largest demands first, capped at max_classes pairs. *)
  let demands = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && tm.(i).(j) >= config.min_rate then
        demands := (tm.(i).(j), i, j) :: !demands
    done
  done;
  let sorted =
    List.sort (fun (a, _, _) (b, _, _) -> Float.compare b a) !demands
  in
  let selected = List.filteri (fun k _ -> k < config.max_classes) sorted in
  let classes = ref [] in
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  List.iter
    (fun (rate, src, dst) ->
      let chain = Array.of_list (Policy.draw rng config.policy_mix) in
      let paths =
        if config.ecmp then
          (* Two equal-cost paths when the topology offers them. *)
          let ks = Graph.k_shortest_paths g src dst ~k:2 in
          match ks with
          | [ p1; p2 ] when Graph.path_length g p1 = Graph.path_length g p2 ->
              [ p1; p2 ]
          | p1 :: _ -> [ p1 ]
          | [] -> []
        else
          match Graph.shortest_path g src dst with
          | Some p -> [ p ]
          | None -> []
      in
      let paths =
        List.filter
          (fun p -> List.length p - 1 >= config.min_path_hops)
          paths
      in
      match paths with
      | [] -> ()
      | _ ->
          let share = rate /. float_of_int (List.length paths) in
          List.iter
            (fun path ->
              let id = fresh_id () in
              classes :=
                {
                  Types.id;
                  src;
                  dst;
                  path = Array.of_list path;
                  chain;
                  src_block = src_block_of_class_id id;
                  rate = share;
                }
                :: !classes)
            paths)
    selected;
  {
    Types.topo = named;
    classes = Array.of_list (List.rev !classes);
    host_cores = Array.make n config.host_cores;
    seed;
  }

let update_rates (s : Types.scenario) tm =
  let n = Matrix.size tm in
  if n <> Graph.num_nodes s.Types.topo.Builders.graph then
    invalid_arg "Scenario.update_rates: matrix size mismatch";
  (* Classes of the same pair keep equal shares (they were created as even
     splits of the pair demand). *)
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      let key = Types.pair_group c in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    s.Types.classes;
  Array.iter
    (fun c ->
      let key = Types.pair_group c in
      let k = Hashtbl.find counts key in
      c.Types.rate <- tm.(c.Types.src).(c.Types.dst) /. float_of_int k)
    s.Types.classes
