type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let add_rowf t fmt =
  Format.kasprintf (fun s -> add_row t (String.split_on_char '\t' s)) fmt

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let columns =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let widths = Array.make columns 0 in
  let observe row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter observe all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row =
    let cells = List.mapi pad row in
    let missing = columns - List.length row in
    let cells =
      if missing <= 0 then cells
      else cells @ List.init missing (fun k -> pad (List.length row + k) "")
    in
    String.concat "  " cells
  in
  let sep =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line t.headers :: sep :: List.map line rows)

let print t =
  (* The one sanctioned console sink: experiment tables are the CLI's
     product. *)
  print_string (render t); (* lint: L6 — the one CLI-facing print helper; render stays pure *)
  print_newline () (* lint: L6 — the one CLI-facing print helper; render stays pure *)
