(** Output-path validation shared by the CLI's [--*-out] options. *)

val check_parent : what:string -> string -> (unit, string) result
(** [check_parent ~what path] is [Ok ()] when [path]'s parent directory
    exists and is a directory; otherwise an [Error] with a one-line
    actionable message naming [what] (e.g. ["metrics report"],
    ["trace"]) and the missing directory. *)

val check_outputs : (string * string option) list -> (unit, string) result
(** [check_outputs [(what, path_opt); ...]]: {!check_parent} over every
    [Some] path, returning the first error. *)
