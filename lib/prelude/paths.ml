(* Up-front validation for CLI output paths: a missing parent directory
   should be a one-line actionable error at argument time, not a raw
   [Sys_error] after the run has already done its work. *)

let check_parent ~what path =
  let dir = Filename.dirname path in
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else
      Error
        (Printf.sprintf "cannot write %s %s: %s is not a directory" what path
           dir)
  else
    Error
      (Printf.sprintf
         "cannot write %s %s: parent directory %s does not exist (create it \
          or pass a different path)"
         what path dir)

let check_outputs outputs =
  List.fold_left
    (fun acc (what, path) ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match path with
          | None -> Ok ()
          | Some p -> check_parent ~what p))
    (Ok ()) outputs
