let sum xs =
  (* Kahan compensated summation: experiment series can mix very small loss
     fractions with large byte counts. *)
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n

let stddev xs = sqrt (variance xs)

let require_non_empty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let minimum xs =
  require_non_empty "Stats.minimum" xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  require_non_empty "Stats.maximum" xs;
  Array.fold_left max xs.(0) xs

let percentile xs p =
  require_non_empty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.0

type boxplot = {
  whisker_low : float;
  q1 : float;
  med : float;
  q3 : float;
  whisker_high : float;
}

let boxplot xs =
  {
    whisker_low = percentile xs 5.0;
    q1 = percentile xs 25.0;
    med = percentile xs 50.0;
    q3 = percentile xs 75.0;
    whisker_high = percentile xs 95.0;
  }

let pp_boxplot ppf b =
  Format.fprintf ppf "[%.3f |%.3f %.3f %.3f| %.3f]" b.whisker_low b.q1 b.med
    b.q3 b.whisker_high

let cdf xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  List.init n (fun i -> (sorted.(i), float_of_int (i + 1) /. float_of_int n))

let histogram ~bins xs =
  require_non_empty "Stats.histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo = minimum xs and hi = maximum xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let idx = int_of_float ((x -. lo) /. width) in
      let idx = if idx >= bins then bins - 1 else idx in
      counts.(idx) <- counts.(idx) + 1)
    xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
