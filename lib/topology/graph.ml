type edge = { mutable weight : float; mutable capacity : float }

type t = {
  n : int;
  adj : (int, edge) Hashtbl.t array;  (* adj.(u) maps v -> edge *)
  names : string array;
  by_name : (string, int) Hashtbl.t;
  mutable m : int;
}

let create ~n =
  if n <= 0 then invalid_arg "Graph.create: n must be positive";
  {
    n;
    adj = Array.init n (fun _ -> Hashtbl.create 4);
    names = Array.init n (fun i -> Printf.sprintf "n%d" i);
    by_name = Hashtbl.create n;
    m = 0;
  }

let check_node t u =
  if u < 0 || u >= t.n then invalid_arg "Graph: node out of range"

let add_edge t ?(weight = 1.0) ?(capacity = 10_000.0) u v =
  check_node t u;
  check_node t v;
  if u = v then invalid_arg "Graph.add_edge: self loop";
  if Hashtbl.mem t.adj.(u) v then invalid_arg "Graph.add_edge: duplicate edge";
  let e = { weight; capacity } in
  Hashtbl.add t.adj.(u) v e;
  Hashtbl.add t.adj.(v) u e;
  t.m <- t.m + 1

let remove_edge t u v =
  check_node t u;
  check_node t v;
  if not (Hashtbl.mem t.adj.(u) v) then raise Not_found;
  Hashtbl.remove t.adj.(u) v;
  Hashtbl.remove t.adj.(v) u;
  t.m <- t.m - 1

let set_name t u name =
  check_node t u;
  Hashtbl.remove t.by_name t.names.(u);
  t.names.(u) <- name;
  Hashtbl.replace t.by_name name u

let name t u =
  check_node t u;
  t.names.(u)

let node_by_name t s =
  match Hashtbl.find_opt t.by_name s with
  | Some u -> Some u
  | None ->
      (* fall back to the default "n<i>" names *)
      let rec scan i = if i >= t.n then None else if t.names.(i) = s then Some i else scan (i + 1) in
      scan 0

let num_nodes t = t.n
let num_edges t = t.m
let has_edge t u v = check_node t u; check_node t v; Hashtbl.mem t.adj.(u) v

let neighbors t u =
  check_node t u;
  (* lint: L3 — order erased by the sort below *)
  Hashtbl.fold (fun v e acc -> (v, e.weight) :: acc) t.adj.(u) []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let edge_capacity t u v =
  check_node t u;
  check_node t v;
  match Hashtbl.find_opt t.adj.(u) v with
  | Some e -> e.capacity
  | None -> raise Not_found

let degree t u =
  check_node t u;
  Hashtbl.length t.adj.(u)

let is_connected t =
  let seen = Array.make t.n false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  seen.(0) <- true;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    (* lint: L3 — reachability count; visit order cannot change it *)
    Hashtbl.iter
      (fun v _ ->
        if not seen.(v) then begin
          seen.(v) <- true;
          incr count;
          Queue.add v queue
        end)
      t.adj.(u)
  done;
  !count = t.n

(* Dijkstra with deterministic tie-break: among equal-distance relaxations
   prefer the predecessor path that visits smaller node ids first. *)
module Pq = struct
  (* tiny binary heap of (dist, node) *)
  type heap = { mutable data : (float * int) array; mutable size : int }

  let make () = { data = Array.make 16 (0.0, 0); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h x =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0.0, 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && h.data.((!i - 1) / 2) > h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && h.data.(l) < h.data.(!smallest) then smallest := l;
        if r < h.size && h.data.(r) < h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let dijkstra t src ~blocked_nodes ~blocked_edges =
  let dist = Array.make t.n infinity in
  let prev = Array.make t.n (-1) in
  let heap = Pq.make () in
  dist.(src) <- 0.0;
  Pq.push heap (0.0, src);
  let finished = Array.make t.n false in
  let rec drain () =
    match Pq.pop heap with
    | None -> ()
    | Some (d, u) ->
        if not finished.(u) then begin
          finished.(u) <- true;
          (* lint: L3 — relaxation has an explicit u < prev tie-break; the
             final (dist, prev) arrays are iteration-order-independent *)
          Hashtbl.iter
            (fun v e ->
              let edge_key = if u < v then (u, v) else (v, u) in
              if
                (not blocked_nodes.(v))
                && (not (Hashtbl.mem blocked_edges edge_key))
                && not finished.(v)
              then begin
                let nd = d +. e.weight in
                if
                  nd < dist.(v) -. 1e-12
                  || (abs_float (nd -. dist.(v)) <= 1e-12
                     && prev.(v) >= 0 && u < prev.(v))
                then begin
                  dist.(v) <- nd;
                  prev.(v) <- u;
                  Pq.push heap (nd, v)
                end
              end)
            t.adj.(u);
          drain ()
        end
        else drain ()
  in
  drain ();
  (dist, prev)

let no_blocked_edges : (int * int, unit) Hashtbl.t = Hashtbl.create 1

let shortest_path_internal t src dst ~blocked_nodes ~blocked_edges =
  if blocked_nodes.(src) || blocked_nodes.(dst) then None
  else if src = dst then Some [ src ]
  else begin
    let dist, prev = dijkstra t src ~blocked_nodes ~blocked_edges in
    if dist.(dst) = infinity then None
    else begin
      let rec build acc v = if v = src then src :: acc else build (v :: acc) prev.(v) in
      Some (build [] dst)
    end
  end

let shortest_path t src dst =
  check_node t src;
  check_node t dst;
  let blocked_nodes = Array.make t.n false in
  shortest_path_internal t src dst ~blocked_nodes ~blocked_edges:no_blocked_edges

let path_length t path =
  let rec go acc = function
    | [] | [ _ ] -> acc
    | u :: (v :: _ as rest) -> (
        match Hashtbl.find_opt t.adj.(u) v with
        | Some e -> go (acc +. e.weight) rest
        | None -> raise Not_found)
  in
  go 0.0 path

let k_shortest_paths t src dst ~k =
  check_node t src;
  check_node t dst;
  if k <= 0 then []
  else
    match shortest_path t src dst with
    | None -> []
    | Some first ->
        (* Yen's algorithm. *)
        let accepted = ref [ first ] in
        let candidates = ref [] in
        let path_cost p = path_length t p in
        let rec take_prefix p i =
          match (p, i) with
          | x :: _, 0 -> [ x ]
          | x :: rest, i -> x :: take_prefix rest (i - 1)
          | [], _ -> []
        in
        let rec loop () =
          if List.length !accepted >= k then ()
          else begin
            let last = List.hd !accepted in
            let len_last = List.length last in
            for i = 0 to len_last - 2 do
              let root = take_prefix last i in
              let spur = List.nth last i in
              let blocked_nodes = Array.make t.n false in
              List.iteri
                (fun j v -> if j < i then blocked_nodes.(v) <- true)
                last;
              let blocked_edges = Hashtbl.create 8 in
              List.iter
                (fun p ->
                  (* block the edge following the shared root *)
                  let rec matches a b =
                    match (a, b) with
                    | [], _ -> true
                    | x :: xs, y :: ys -> x = y && matches xs ys
                    | _ :: _, [] -> false
                  in
                  if matches root p then
                    match List.filteri (fun j _ -> j = i || j = i + 1) p with
                    | [ a; b ] ->
                        let key = if a < b then (a, b) else (b, a) in
                        Hashtbl.replace blocked_edges key ()
                    | _ -> ())
                (!accepted @ List.map snd !candidates);
              (match
                 shortest_path_internal t spur dst ~blocked_nodes ~blocked_edges
               with
              | None -> ()
              | Some spur_path ->
                  let total = root @ List.tl spur_path in
                  let rec loopless seen = function
                    | [] -> true
                    | x :: rest -> (not (List.mem x seen)) && loopless (x :: seen) rest
                  in
                  if
                    loopless [] total
                    && (not (List.exists (fun p -> p = total) !accepted))
                    && not (List.exists (fun (_, p) -> p = total) !candidates)
                  then candidates := (path_cost total, total) :: !candidates)
            done;
            match
              List.sort
                (fun (ca, pa) (cb, pb) ->
                  match Float.compare ca cb with
                  | 0 -> List.compare Int.compare pa pb
                  | c -> c)
                !candidates
            with
            | [] -> ()
            | (_, best) :: rest ->
                candidates := rest;
                accepted := best :: !accepted;
                loop ()
          end
        in
        loop ();
        List.rev !accepted

let edges t =
  let acc = ref [] in
  for u = 0 to t.n - 1 do
    (* lint: L3 — order erased by the sort below *)
    Hashtbl.iter
      (fun v e -> if u < v then acc := (u, v, e.weight) :: !acc)
      t.adj.(u)
  done;
  List.sort
    (fun (u1, v1, w1) (u2, v2, w2) ->
      match Int.compare u1 u2 with
      | 0 -> ( match Int.compare v1 v2 with 0 -> Float.compare w1 w2 | c -> c)
      | c -> c)
    !acc

let pp ppf t =
  Format.fprintf ppf "graph(%d nodes, %d links)" t.n t.m
