module T = Apple_telemetry.Telemetry

let m_events = T.Counter.create "apple.sim.events"
let m_queue_high_water = T.Gauge.create "apple.sim.queue_high_water"

type event = { time : float; seq : int; action : t -> unit }

and t = {
  mutable clock : float;
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  {
    clock = 0.0;
    heap = Array.make 64 { time = 0.0; seq = 0; action = (fun _ -> ()) };
    size = 0;
    next_seq = 0;
  }

let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) ev in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  T.Gauge.set_max m_queue_high_water (float_of_int t.size);
  let i = ref (t.size - 1) in
  while !i > 0 && before t.heap.(!i) t.heap.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = t.heap.(p) in
    t.heap.(p) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := p
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some top
  end

let schedule_at t ~time action =
  if time < t.clock -. 1e-12 then invalid_arg "Engine.schedule_at: time in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { time = max time t.clock; seq; action }

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let every t ~period ?until action =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let rec tick world =
    let fire =
      match until with Some limit -> now world <= limit +. 1e-12 | None -> true
    in
    if fire then begin
      action world;
      schedule world ~delay:period tick
    end
  in
  schedule t ~delay:period tick

let run ?until t =
  (* Spans and journal entries opened inside event actions pick up
     virtual timestamps; the previous hook is restored so nested or
     back-to-back engines do not clobber each other. *)
  let prev_clock = T.current_sim_clock () in
  T.set_sim_clock (Some (fun () -> t.clock));
  Fun.protect ~finally:(fun () -> T.set_sim_clock prev_clock) @@ fun () ->
  let continue = ref true in
  while !continue do
    match pop t with
    | None -> continue := false
    | Some ev -> (
        match until with
        | Some limit when ev.time > limit ->
            (* Put nothing back: simulation is over. *)
            t.clock <- limit;
            continue := false
        | _ ->
            t.clock <- ev.time;
            T.Counter.incr m_events;
            ev.action t)
  done

let pending t = t.size

module Series = struct
  type series = { s_name : string; mutable rev_points : (float * float) list }

  let create s_name = { s_name; rev_points = [] }
  let record s ~time v = s.rev_points <- (time, v) :: s.rev_points
  let name s = s.s_name
  let points s = List.rev s.rev_points
  let values s = Array.of_list (List.rev_map snd s.rev_points)

  let between s t0 t1 =
    List.filter (fun (time, _) -> time >= t0 && time < t1) (points s)
end

module Counter = struct
  type counter = { c_name : string; mutable total : float }

  let create c_name = { c_name; total = 0.0 }
  let add c v = c.total <- c.total +. v
  let value c = c.total
  let name c = c.c_name
end
