type prefix = { addr : int; len : int }

let pp_prefix ppf p =
  Format.fprintf ppf "%s/%d" (Header.string_of_ip p.addr) p.len

let prefix_of_string s =
  match String.split_on_char '/' s with
  | [ ip; len ] ->
      let len =
        match int_of_string_opt len with
        | Some l when l >= 0 && l <= 32 -> l
        | _ -> invalid_arg ("Prefix_split.prefix_of_string: " ^ s)
      in
      let addr = Header.ip_of_string ip in
      let mask = if len = 0 then 0 else -1 lsl (32 - len) land 0xFFFFFFFF in
      { addr = addr land mask; len }
  | _ -> invalid_arg ("Prefix_split.prefix_of_string: " ^ s)

let block_size p = 1 lsl (32 - p.len)

let member p addr =
  let mask = if p.len = 0 then 0 else -1 lsl (32 - p.len) land 0xFFFFFFFF in
  addr land mask = p.addr

(* Cover the address range [lo, lo+count) (relative to 32-bit space, already
   absolute) with a minimal list of aligned prefixes — the classic
   range-to-prefix expansion. *)
let cover_range lo count =
  let rec go acc lo count =
    if count = 0 then List.rev acc
    else begin
      let align = if lo = 0 then 32 else
        let rec tz k = if lo land (1 lsl k) <> 0 then k else tz (k + 1) in
        tz 0
      in
      let rec fit k = if 1 lsl k <= count && k <= align then k else fit (k - 1) in
      let k = fit (min align 31) in
      let len = 32 - k in
      go ({ addr = lo; len } :: acc) (lo + (1 lsl k)) (count - (1 lsl k))
    end
  in
  go [] lo count

let split ~base ~weights ~depth =
  let k = Array.length weights in
  if k = 0 then invalid_arg "Prefix_split.split: no weights";
  let depth = min depth (32 - base.len) in
  let quanta_total = 1 lsl depth in
  (* Quantize: floor each weight to quanta, then distribute the remainder
     by largest fractional part; positive weights keep at least 1. *)
  let raw = Array.map (fun w -> w *. float_of_int quanta_total) weights in
  let quanta = Array.map (fun r -> int_of_float (floor r)) raw in
  Array.iteri
    (fun i q -> if q = 0 && weights.(i) > 1e-9 then quanta.(i) <- 1)
    quanta;
  let assigned = Array.fold_left ( + ) 0 quanta in
  let order =
    List.sort
      (fun i j ->
        Float.compare (raw.(j) -. floor raw.(j)) (raw.(i) -. floor raw.(i)))
      (List.init k (fun i -> i))
  in
  let give = ref (quanta_total - assigned) in
  (* Positive remainder: top up by fractional part; negative (over-grant
     from the at-least-one rule): shave the largest allocations. *)
  if !give > 0 then
    List.iter
      (fun i ->
        if !give > 0 then begin
          quanta.(i) <- quanta.(i) + 1;
          decr give
        end)
      order
  else
    while !give < 0 do
      let max_i = ref 0 in
      Array.iteri (fun i q -> if q > quanta.(!max_i) then max_i := i) quanta;
      if quanta.(!max_i) <= 1 then give := 0
      else begin
        quanta.(!max_i) <- quanta.(!max_i) - 1;
        incr give
      end
    done;
  let quantum_size = block_size base / quanta_total in
  let result = Array.make k [] in
  let cursor = ref base.addr in
  Array.iteri
    (fun i q ->
      let count = q * quantum_size in
      result.(i) <- cover_range !cursor count;
      cursor := !cursor + count)
    quanta;
  result

let rule_count split = Array.fold_left (fun acc l -> acc + List.length l) 0 split

let realized_weights split ~base =
  let total = float_of_int (block_size base) in
  Array.map
    (fun prefixes ->
      let covered =
        List.fold_left (fun acc p -> acc + block_size p) 0 prefixes
      in
      float_of_int covered /. total)
    split
