module Rng = Apple_prelude.Rng
module Builders = Apple_topology.Builders

type arrive = {
  tenant : string;
  name : string;
  rate : float;
  demand : float option;
  classes : int;
  weight : float;
  isolated : bool;
  nat : bool;
  seed : int;
}

type event = Arrive of arrive | Depart of { tenant : string; name : string }
type entry = { at : int; event : event }
type t = { cores : int option; entries : entry list }

(* ---- text format ---------------------------------------------------- *)

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun tok -> String.length tok > 0)

let parse text =
  let err line fmt = Format.kasprintf (fun m -> Error (Printf.sprintf "line %d: %s" line m)) fmt in
  let cores = ref None in
  let entries = ref [] in
  let last_at = ref 0 in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok { cores = !cores; entries = List.rev !entries }
    | raw :: rest -> (
        let line =
          match String.index_opt raw '#' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        match split_ws line with
        | [] -> go (lineno + 1) rest
        | [ "cores"; n ] -> (
            match int_of_string_opt n with
            | Some c when c > 0 ->
                cores := Some c;
                go (lineno + 1) rest
            | _ -> err lineno "cores wants a positive integer, got %S" n)
        | "at" :: at :: verb :: args -> (
            match int_of_string_opt at with
            | None -> err lineno "bad event time %S" at
            | Some at when at < 0 -> err lineno "negative event time %d" at
            | Some at when at < !last_at ->
                err lineno "time goes backwards (%d after %d)" at !last_at
            | Some at -> (
                last_at := at;
                match (verb, args) with
                | "depart", [ tenant; name ] ->
                    entries := { at; event = Depart { tenant; name } } :: !entries;
                    go (lineno + 1) rest
                | "depart", _ -> err lineno "depart wants: depart TENANT NAME"
                | "arrive", tenant :: name :: opts -> (
                    let rate = ref None
                    and demand = ref None
                    and classes = ref None
                    and weight = ref 1.0
                    and isolated = ref false
                    and nat = ref false
                    and seed = ref None
                    and bad = ref None in
                    List.iter
                      (fun opt ->
                        if Option.is_some !bad then ()
                        else
                          match String.index_opt opt '=' with
                          | None -> (
                              match opt with
                              | "isolated" -> isolated := true
                              | "nat" -> nat := true
                              | o -> bad := Some (Printf.sprintf "unknown flag %S" o))
                          | Some i -> (
                              let k = String.sub opt 0 i in
                              let v =
                                String.sub opt (i + 1)
                                  (String.length opt - i - 1)
                              in
                              match (k, float_of_string_opt v) with
                              | "rate", Some f -> rate := Some f
                              | "demand", Some f -> demand := Some f
                              | "weight", Some f -> weight := f
                              | "classes", Some _ ->
                                  classes := int_of_string_opt v
                              | "seed", Some _ -> seed := int_of_string_opt v
                              | k, _ ->
                                  bad :=
                                    Some
                                      (Printf.sprintf "bad option %s=%s" k v)))
                      opts;
                    match (!bad, !rate, !classes) with
                    | Some m, _, _ -> err lineno "%s" m
                    | None, None, _ -> err lineno "arrive needs rate=MBPS"
                    | None, _, None -> err lineno "arrive needs classes=N"
                    | None, Some rate, Some classes ->
                        let seed =
                          match !seed with
                          | Some s -> s
                          | None -> 1 + List.length !entries
                        in
                        entries :=
                          {
                            at;
                            event =
                              Arrive
                                {
                                  tenant;
                                  name;
                                  rate;
                                  demand = !demand;
                                  classes;
                                  weight = !weight;
                                  isolated = !isolated;
                                  nat = !nat;
                                  seed;
                                };
                          }
                          :: !entries;
                        go (lineno + 1) rest)
                | "arrive", _ ->
                    err lineno "arrive wants: arrive TENANT NAME rate=.. classes=.."
                | v, _ -> err lineno "unknown event %S" v))
        | tok :: _ -> err lineno "unknown directive %S" tok)
  in
  go 1 lines

let to_string t =
  let b = Buffer.create 256 in
  (match t.cores with
  | Some c -> Printf.bprintf b "cores %d\n" c
  | None -> ());
  List.iter
    (fun e ->
      match e.event with
      | Depart { tenant; name } ->
          Printf.bprintf b "at %d depart %s %s\n" e.at tenant name
      | Arrive a ->
          Printf.bprintf b "at %d arrive %s %s rate=%g classes=%d" e.at a.tenant
            a.name a.rate a.classes;
          (match a.demand with
          | Some d -> Printf.bprintf b " demand=%g" d
          | None -> ());
          if a.weight <> 1.0 then Printf.bprintf b " weight=%g" a.weight;
          if a.isolated then Buffer.add_string b " isolated";
          if a.nat then Buffer.add_string b " nat";
          Printf.bprintf b " seed=%d\n" a.seed)
    t.entries;
  Buffer.contents b

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e

(* ---- synthetic streams ---------------------------------------------- *)

let synth ~seed ~events =
  let rng = Rng.create seed in
  let entries = ref [] in
  let resident = ref [] in
  let now = ref 0 in
  let counter = ref 0 in
  for _ = 1 to events do
    now := !now + Rng.int rng 3;
    let n_res = List.length !resident in
    if n_res > 0 && Rng.uniform rng < 0.3 then begin
      let idx = Rng.int rng n_res in
      let tenant, name = List.nth !resident idx in
      resident := List.filteri (fun i _ -> i <> idx) !resident;
      entries := { at = !now; event = Depart { tenant; name } } :: !entries
    end
    else begin
      let id = !counter in
      incr counter;
      let tenant = Printf.sprintf "t%d" (Rng.int rng 6) in
      let name = Printf.sprintf "s%d" id in
      let rate = 100.0 +. (float_of_int (Rng.int rng 12) *. 100.0) in
      let demand =
        if Rng.bool rng then Some (rate *. (1.2 +. Rng.uniform rng)) else None
      in
      resident := !resident @ [ (tenant, name) ];
      entries :=
        {
          at = !now;
          event =
            Arrive
              {
                tenant;
                name;
                rate;
                demand;
                classes = 1 + Rng.int rng 3;
                weight = float_of_int (1 + Rng.int rng 4);
                isolated = Rng.uniform rng < 0.2;
                nat = Rng.uniform rng < 0.25;
                seed = seed + id + 1;
              };
        }
        :: !entries
    end
  done;
  { cores = None; entries = List.rev !entries }

(* ---- replay ---------------------------------------------------------- *)

type outcome = {
  header : string;
  events : int;
  admitted : int;
  rejected_capacity : int;
  rejected_tag_space : int;
  rejected_verifier : int;
  departed : int;
  ignored : int;
  verifier_passes : int;
  residents : int;
  lines : string list;
  final_top : string;
  final_fingerprint : string;
}

let run ?engine ?jobs ?(gate = true) ?host_cores (topo : Builders.named) tr =
  let cores =
    match (host_cores, tr.cores) with
    | Some c, _ -> c
    | None, Some c -> c
    | None, None -> Slice.Types.default_host_cores
  in
  let mgr = Slice.create ?engine ?jobs ~gate ~host_cores:cores topo in
  let lines = ref [] in
  let admitted = ref 0
  and rej_cap = ref 0
  and rej_tag = ref 0
  and rej_ver = ref 0
  and departed = ref 0
  and ignored = ref 0 in
  let line fmt = Format.kasprintf (fun m -> lines := m :: !lines) fmt in
  List.iter
    (fun e ->
      match e.event with
      | Arrive a -> (
          let key = a.tenant ^ "/" ^ a.name in
          let dup =
            List.exists
              (fun (_, (s : Slice.spec)) ->
                String.equal (s.Slice.tenant ^ "/" ^ s.Slice.name) key)
              (Slice.residents mgr)
          in
          if dup then begin
            incr ignored;
            line "[%4d] arrive %s -> IGNORE already resident" e.at key
          end
          else
            let spec =
              Slice.synth_spec topo ~seed:a.seed ~tenant:a.tenant ~name:a.name
                ~isolated:a.isolated ~weight:a.weight ?demand:a.demand
                ~nat:a.nat ~rate:a.rate ~classes:a.classes ()
            in
            let flags =
              (if a.isolated then " isolated" else "")
              ^ if a.nat then " nat" else ""
            in
            match Slice.admit mgr spec with
            | Ok adm ->
                incr admitted;
                let throttle =
                  match adm.Slice.throttled with
                  | [] -> ""
                  | l ->
                      " throttle["
                      ^ String.concat ","
                          (List.map
                             (fun (k, f) -> Printf.sprintf "%s=%.2f" k f)
                             l)
                      ^ "]"
                in
                line
                  "[%4d] arrive %s rate=%.0f classes=%d%s -> ADMIT slice=%d \
                   residents=%d inst=%d cores=%d tcam=%d tags=%d subs=%d%s"
                  e.at key a.rate a.classes flags adm.Slice.slice_id
                  adm.Slice.residents adm.Slice.instances adm.Slice.cores
                  adm.Slice.tcam_rules adm.Slice.global_tags
                  adm.Slice.verified_subclasses throttle
            | Error reason ->
                (match reason with
                | Slice.Capacity _ -> incr rej_cap
                | Slice.Tag_space _ -> incr rej_tag
                | Slice.Verifier _ -> incr rej_ver);
                line "[%4d] arrive %s rate=%.0f classes=%d%s -> REJECT %s" e.at
                  key a.rate a.classes flags
                  (Format.asprintf "%a" Slice.pp_reason reason))
      | Depart { tenant; name } -> (
          match Slice.depart mgr ~tenant ~name with
          | Ok d ->
              incr departed;
              line
                "[%4d] depart %s/%s -> DEPART residents=%d freed-cores=%d \
                 freed-tcam=%d freed-tags=%d"
                e.at tenant name d.Slice.residents d.Slice.freed_cores
                d.Slice.freed_tcam d.Slice.freed_tags
          | Error msg ->
              incr ignored;
              let resident =
                List.exists
                  (fun (_, (s : Slice.spec)) ->
                    String.equal s.Slice.tenant tenant
                    && String.equal s.Slice.name name)
                  (Slice.residents mgr)
              in
              if resident then
                line "[%4d] depart %s/%s -> ERROR %s" e.at tenant name msg
              else
                line "[%4d] depart %s/%s -> IGNORE not resident" e.at tenant
                  name))
    tr.entries;
  let stats = Slice.stats mgr in
  let header =
    Printf.sprintf
      "APPLE slice trace: %d event(s) on %s (cores=%d/host, gate=%s)"
      (List.length tr.entries)
      topo.Builders.label cores
      (if gate then "on" else "off")
  in
  let outcome =
    {
      header;
      events = List.length tr.entries;
      admitted = !admitted;
      rejected_capacity = !rej_cap;
      rejected_tag_space = !rej_tag;
      rejected_verifier = !rej_ver;
      departed = !departed;
      ignored = !ignored;
      verifier_passes = stats.Slice.verifier_passes;
      residents = List.length (Slice.residents mgr);
      lines = List.rev !lines;
      final_top = Slice.top mgr;
      final_fingerprint = Slice.fingerprint mgr;
    }
  in
  (mgr, outcome)

let render o =
  let b = Buffer.create 2048 in
  Buffer.add_string b o.header;
  Buffer.add_char b '\n';
  List.iter
    (fun l ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    o.lines;
  Printf.bprintf b
    "--\nadmitted=%d rejected=%d (capacity=%d tag-space=%d verifier=%d) \
     departed=%d ignored=%d\nverifier-passes=%d residents=%d\nfingerprint=%s\n"
    o.admitted
    (o.rejected_capacity + o.rejected_tag_space + o.rejected_verifier)
    o.rejected_capacity o.rejected_tag_space o.rejected_verifier o.departed
    o.ignored o.verifier_passes o.residents o.final_fingerprint;
  Buffer.add_string b o.final_top;
  Buffer.contents b
