(** Slice arrival/departure event streams.

    A trace is a deterministic sequence of tenant events played against
    one {!Slice.t} manager:

    {v
    # comments and blank lines are skipped
    cores 24                      # optional per-host core budget
    at 0 arrive alpha web rate=600 classes=3 seed=11
    at 0 arrive beta cdn rate=900 demand=1500 classes=4 weight=2 seed=22
    at 1 arrive gamma pay rate=400 classes=2 isolated nat seed=33
    at 5 depart beta cdn
    v}

    Times are abstract event epochs (integral, non-decreasing); [arrive]
    synthesizes the slice spec from its [seed] via {!Slice.synth_spec},
    so one trace line pins the whole slice deterministically.  [demand]
    defaults to [rate] (inelastic), [weight] to 1.  The [isolated] flag
    demands tenant isolation, [nat] forces a header-rewriting chain
    (global-tag mode). *)

type arrive = {
  tenant : string;
  name : string;
  rate : float;
  demand : float option;
  classes : int;
  weight : float;
  isolated : bool;
  nat : bool;
  seed : int;
}

type event = Arrive of arrive | Depart of { tenant : string; name : string }
type entry = { at : int; event : event }

type t = { cores : int option; entries : entry list }

val parse : string -> (t, string) result
(** Parse the text format; errors carry 1-based line numbers.  Entry
    times must be non-negative and non-decreasing. *)

val to_string : t -> string
(** Render back to the text format ([parse] round-trips). *)

val load : string -> (t, string) result
(** {!parse} a file. *)

val synth : seed:int -> events:int -> t
(** A deterministic synthetic stream: arrivals with seeded specs
    (varying rates, elasticity, weights, isolation and NAT) mixed with
    departures of currently-resident slices. *)

(** {2 Replay} *)

type outcome = {
  header : string;  (** one-line run banner *)
  events : int;
  admitted : int;
  rejected_capacity : int;
  rejected_tag_space : int;
  rejected_verifier : int;
  departed : int;
  ignored : int;  (** duplicate arrivals / departures of non-residents *)
  verifier_passes : int;  (** gate certifications over committed states *)
  residents : int;  (** slices resident after the last event *)
  lines : string list;  (** one deterministic decision line per event *)
  final_top : string;
  final_fingerprint : string;
}

val run :
  ?engine:Slice.Controller.engine ->
  ?jobs:int ->
  ?gate:bool ->
  ?host_cores:int ->
  Apple_topology.Builders.named ->
  t ->
  Slice.t * outcome
(** Play every event through a fresh manager and return it with the
    deterministic outcome.  [host_cores] overrides the trace's [cores]
    directive when given.  Everything in the outcome is byte-identical
    across [jobs] values and repeat runs. *)

val render : outcome -> string
(** Full report: banner, per-event lines, decision tally, substrate
    fingerprint and the final per-tenant top table. *)
