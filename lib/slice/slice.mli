(** Multi-tenant network slicing: dynamic slice lifecycle with verified
    online admission.

    A {e slice} is a tenant-owned bundle of policy chains and traffic
    classes with an SLA (guaranteed rate, loss band, isolation).  Slices
    arrive and depart online against one shared substrate; the manager
    decides admission against substrate headroom with the static
    verifier as the admission gate: the candidate slice's generated
    tables must re-pass the chain-order / interference / isolation
    proofs {e jointly with every resident slice} before the commit, and
    a refused admission leaves the resident configuration untouched —
    byte-identical tables, pinnings and counters ({!fingerprint}).

    Rejections carry a structured {!reason}: substrate capacity
    (pre-admission headroom, optimizer infeasibility or isolation-clone
    budget), sub-class tag-space exhaustion (the 12-bit VLAN field), or
    a verifier violation witness.

    Under contention — aggregate demand above the substrate's core
    budget — admission does not simply fail: every slice is throttled to
    a {b weighted max-min fair} share between its SLA floor and its
    demand (water-filling on estimated cores), so guaranteed rates are
    always honored and slack is split by slice weight.

    A slice whose SLA demands {e isolation} never shares a VNF instance
    with another tenant: a shaping pass ({!Apple_core.Controller.shape})
    re-homes its sub-class stages onto dedicated instance clones before
    rule generation, and the admission gate re-proves exclusivity on the
    final pinning. *)

module Types = Apple_core.Types
module Subclass = Apple_core.Subclass
module Rule_generator = Apple_core.Rule_generator
module Controller = Apple_core.Controller
module Nf = Apple_vnf.Nf

(** {2 Slice specifications} *)

type sla = {
  rate_mbps : float;  (** guaranteed aggregate floor, Mbps *)
  demand_mbps : float;  (** offered demand, [>= rate_mbps] *)
  loss_band : float;  (** tolerated loss fraction, (0, 1] *)
  isolated : bool;  (** no VNF instance shared with other tenants *)
  weight : float;  (** fair-share weight under contention, > 0 *)
}

type class_spec = {
  src : int;  (** ingress switch *)
  dst : int;  (** egress switch *)
  chain : Nf.kind array;  (** policy chain, non-empty *)
  share : float;  (** fraction of the slice's rate, > 0 *)
}

type spec = {
  tenant : string;
  name : string;  (** unique per tenant among residents *)
  sla : sla;
  classes : class_spec list;
}

val validate_spec :
  Apple_topology.Builders.named -> spec -> (unit, string) result
(** Structural checks: non-empty classes with routable src/dst pairs and
    non-empty chains, positive rates/weights/shares (shares summing to 1
    within 1e-6), demand at least the floor, loss band in (0, 1]. *)

val synth_spec :
  Apple_topology.Builders.named ->
  seed:int ->
  tenant:string ->
  name:string ->
  ?isolated:bool ->
  ?weight:float ->
  ?demand:float ->
  ?nat:bool ->
  rate:float ->
  classes:int ->
  unit ->
  spec
(** Deterministic slice synthesis from a seed: routable src/dst pairs
    drawn over the topology, chains from {!Apple_core.Policy.default_mix}
    (with a NAT forced into the first chain when [nat], pushing the
    joint tables into global-tag mode), equal class shares.  [demand]
    defaults to [rate] (inelastic); [weight] to 1. *)

(** {2 Admission decisions} *)

type reason =
  | Capacity of string
      (** headroom precheck, optimizer infeasibility, or the
          isolation-clone pass exceeding a host's core budget *)
  | Tag_space of string
      (** the joint tables exhaust the 12-bit sub-class tag field *)
  | Verifier of string
      (** the static verifier refused the joint configuration; the
          message carries the violation summary and first witness *)

val reason_name : reason -> string
(** ["capacity"] / ["tag-space"] / ["verifier"]. *)

val pp_reason : Format.formatter -> reason -> unit

type admitted = {
  slice_id : int;
  residents : int;  (** resident slices after the commit *)
  instances : int;
  cores : int;
  tcam_rules : int;
  global_tags : int;  (** dense global tag ids consumed (0 = local mode) *)
  tags_left : int;  (** remaining 12-bit tag headroom *)
  verified_subclasses : int;  (** sub-classes certified by the gate *)
  throttled : (string * float) list;
      (** ["tenant/name"], effective/demand — slices throttled below
          demand by weighted fairness in this commit *)
}

type departed = {
  residents : int;
  freed_instances : int;
  freed_cores : int;
  freed_tcam : int;
  freed_tags : int;  (** global tag ids released *)
}

type stats = {
  admitted_total : int;
  rejected_capacity : int;
  rejected_tag_space : int;
  rejected_verifier : int;
  departed_total : int;
  verifier_passes : int;  (** gate certifications over committed states *)
}

(** {2 The slice manager} *)

type t

val create :
  ?engine:Controller.engine ->
  ?jobs:int ->
  ?gate:bool ->
  ?host_cores:int ->
  ?seed:int ->
  Apple_topology.Builders.named ->
  t
(** A manager over an empty substrate.  [gate] (default [true]) runs the
    full static verifier on every commit; tag-space and tenant-isolation
    checks run regardless.  [host_cores] (default
    {!Types.default_host_cores}) is the per-switch core budget. *)

val admit : t -> spec -> (admitted, reason) result
(** Online admission: re-throttle all resident slices plus the candidate
    to weighted-fair rates, jointly re-solve placement, re-pin, isolate,
    regenerate tables and re-pass the admission gate.  [Error] commits
    nothing — the resident configuration (tables, pinnings, counters) is
    byte-identical before and after, cf. {!fingerprint}.  Raises
    [Invalid_argument] on a spec that fails {!validate_spec} or names an
    already-resident tenant/name pair. *)

val depart : t -> tenant:string -> name:string -> (departed, string) result
(** Remove a resident slice and recommit the remainder, freeing its VM
    cores, TCAM rules and tag space.  [Error] when no such slice is
    resident. *)

val residents : t -> (int * spec) list
(** Resident slices in admission order, with their slice ids. *)

val stats : t -> stats

val fingerprint : t -> string
(** Digest of the installed substrate state: resident tenants and
    effective rates, every sub-class pinning with offered instance
    loads, and the full physical + vSwitch tables.  Slice ids are
    excluded on purpose: admit/depart/re-admit of an identical spec
    restores the identical substrate (and proves freed tag space is
    reused).  A rejected admission must not change this digest. *)

val top : t -> string
(** Per-tenant table: slices, classes, guaranteed vs effective Mbps,
    substrate share, sub-classes, instances touched and dedicated. *)

val set_chaos_hook :
  t ->
  (Types.scenario -> Subclass.assignment -> Rule_generator.built -> unit)
  option ->
  unit
(** Test hook: corrupt the candidate configuration after rule generation
    but before the gate inspects it, forcing verifier rejections on
    demand (mirrors the PR-3 mutation-test idiom).  Never used in
    production paths. *)
