module Rng = Apple_prelude.Rng
module Text_table = Apple_prelude.Text_table
module Graph = Apple_topology.Graph
module Builders = Apple_topology.Builders
module Instance = Apple_vnf.Instance
module Nf = Apple_vnf.Nf
module Tag = Apple_dataplane.Tag
module Tcam = Apple_dataplane.Tcam
module Rule = Apple_dataplane.Rule
module Types = Apple_core.Types
module Scenario = Apple_core.Scenario
module Policy = Apple_core.Policy
module Subclass = Apple_core.Subclass
module Rule_generator = Apple_core.Rule_generator
module Optimization_engine = Apple_core.Optimization_engine
module Controller = Apple_core.Controller
module Verify = Apple_verify.Verify
module T = Apple_telemetry.Telemetry
module Tr = Apple_trace.Trace

let tr_admit = Tr.span ~cat:"slice" "slice.admit"
let tr_depart = Tr.span ~cat:"slice" "slice.depart"
let log = Logs.Src.create "apple.slice" ~doc:"APPLE slice manager"

module Log = (val Logs.src_log log : Logs.LOG)

let m_admitted = T.Counter.create "apple.slice.admitted"
let m_rejected = T.Counter.create "apple.slice.rejected"
let m_departed = T.Counter.create "apple.slice.departed"
let m_gate_passes = T.Counter.create "apple.slice.gate_passes"

(* One gauge per tenant, interned on first use (telemetry names are
   global; re-creating with the same name returns the same cell). *)
let tenant_gauges : (string, T.Gauge.t) Hashtbl.t = Hashtbl.create 8

let tenant_gauge tenant =
  match Hashtbl.find_opt tenant_gauges tenant with
  | Some g -> g
  | None ->
      let g = T.Gauge.create ("apple.slice.tenant." ^ tenant ^ ".eff_mbps") in
      Hashtbl.add tenant_gauges tenant g;
      g

(* ---- specifications ------------------------------------------------ *)

type sla = {
  rate_mbps : float;
  demand_mbps : float;
  loss_band : float;
  isolated : bool;
  weight : float;
}

type class_spec = {
  src : int;
  dst : int;
  chain : Nf.kind array;
  share : float;
}

type spec = {
  tenant : string;
  name : string;
  sla : sla;
  classes : class_spec list;
}

let slice_key spec = spec.tenant ^ "/" ^ spec.name

let ident_ok s =
  String.length s > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_')
       s

let validate_spec (topo : Builders.named) spec =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let n = Graph.num_nodes topo.Builders.graph in
  if not (ident_ok spec.tenant) then
    err "tenant %S: use [A-Za-z0-9_-]+" spec.tenant
  else if not (ident_ok spec.name) then
    err "slice name %S: use [A-Za-z0-9_-]+" spec.name
  else if spec.sla.rate_mbps <= 0.0 then
    err "%s: guaranteed rate must be positive" (slice_key spec)
  else if spec.sla.demand_mbps < spec.sla.rate_mbps -. 1e-9 then
    err "%s: demand %.1f below guaranteed rate %.1f" (slice_key spec)
      spec.sla.demand_mbps spec.sla.rate_mbps
  else if spec.sla.weight <= 0.0 then
    err "%s: fair-share weight must be positive" (slice_key spec)
  else if spec.sla.loss_band <= 0.0 || spec.sla.loss_band > 1.0 then
    err "%s: loss band must be in (0, 1]" (slice_key spec)
  else if spec.classes = [] then err "%s: no traffic classes" (slice_key spec)
  else
    let share_sum = List.fold_left (fun a c -> a +. c.share) 0.0 spec.classes in
    if Float.abs (share_sum -. 1.0) > 1e-6 then
      err "%s: class shares sum to %.6f, want 1" (slice_key spec) share_sum
    else
      let rec check i = function
        | [] -> Ok ()
        | c :: rest ->
            if c.share <= 0.0 then
              err "%s class %d: share must be positive" (slice_key spec) i
            else if Array.length c.chain = 0 then
              err "%s class %d: empty policy chain" (slice_key spec) i
            else if c.src < 0 || c.src >= n || c.dst < 0 || c.dst >= n then
              err "%s class %d: endpoints (%d, %d) outside topology (%d nodes)"
                (slice_key spec) i c.src c.dst n
            else if c.src = c.dst then
              err "%s class %d: src = dst" (slice_key spec) i
            else if
              Option.is_none (Graph.shortest_path topo.Builders.graph c.src c.dst)
            then
              err "%s class %d: no route %d -> %d" (slice_key spec) i c.src c.dst
            else check (i + 1) rest
      in
      check 0 spec.classes

let synth_spec (topo : Builders.named) ~seed ~tenant ~name ?(isolated = false)
    ?(weight = 1.0) ?demand ?(nat = false) ~rate ~classes () =
  if classes <= 0 then invalid_arg "Slice.synth_spec: classes must be positive";
  let g = topo.Builders.graph in
  let n = Graph.num_nodes g in
  let rng = Rng.create seed in
  let draw_pair () =
    (* Connected evaluation topologies: a routable distinct pair exists;
       bound the retry loop anyway so a pathological graph fails loud. *)
    let rec go attempts =
      if attempts > 10_000 then
        invalid_arg "Slice.synth_spec: no routable src/dst pair found";
      let src = Rng.int rng n and dst = Rng.int rng n in
      if src <> dst && Option.is_some (Graph.shortest_path g src dst) then
        (src, dst)
      else go (attempts + 1)
    in
    go 0
  in
  let chains =
    List.init classes (fun _ ->
        Array.of_list (Policy.draw rng Policy.default_mix))
  in
  let chains =
    (* NAT forces the joint tables into global-tag mode (Sec. X); make
       sure the slice actually carries one when asked. *)
    if
      nat
      && not
           (List.exists
              (fun ch -> Array.exists (fun k -> Nf.rewrites_header k) ch)
              chains)
    then
      match chains with
      | first :: rest -> Array.append first [| Nf.Nat |] :: rest
      | [] -> chains
    else chains
  in
  let share = 1.0 /. float_of_int classes in
  let classes =
    List.map
      (fun chain ->
        let src, dst = draw_pair () in
        { src; dst; chain; share })
      chains
  in
  {
    tenant;
    name;
    sla =
      {
        rate_mbps = rate;
        demand_mbps = (match demand with Some d -> Float.max d rate | None -> rate);
        loss_band = 0.05;
        isolated;
        weight;
      };
    classes;
  }

(* ---- admission decisions ------------------------------------------- *)

type reason = Capacity of string | Tag_space of string | Verifier of string

let reason_name = function
  | Capacity _ -> "capacity"
  | Tag_space _ -> "tag-space"
  | Verifier _ -> "verifier"

let reason_detail = function
  | Capacity m | Tag_space m | Verifier m -> m

let pp_reason ppf r =
  Format.fprintf ppf "%s: %s" (reason_name r) (reason_detail r)

type admitted = {
  slice_id : int;
  residents : int;
  instances : int;
  cores : int;
  tcam_rules : int;
  global_tags : int;
  tags_left : int;
  verified_subclasses : int;
  throttled : (string * float) list;
}

type departed = {
  residents : int;
  freed_instances : int;
  freed_cores : int;
  freed_tcam : int;
  freed_tags : int;
}

type stats = {
  admitted_total : int;
  rejected_capacity : int;
  rejected_tag_space : int;
  rejected_verifier : int;
  departed_total : int;
  verifier_passes : int;
}

let zero_stats =
  {
    admitted_total = 0;
    rejected_capacity = 0;
    rejected_tag_space = 0;
    rejected_verifier = 0;
    departed_total = 0;
    verifier_passes = 0;
  }

(* ---- the manager --------------------------------------------------- *)

type resident = { slice_id : int; spec : spec }

type installed = {
  res : resident list;  (* admission order *)
  ctrl : Controller.t;
  report : Controller.epoch_report;
  eff : (int * float) list;  (* slice_id -> effective aggregate Mbps *)
  ranges : (int * (int * int)) list;  (* slice_id -> (first class id, count) *)
  verified_subclasses : int;
}

type chaos_hook =
  Types.scenario -> Subclass.assignment -> Rule_generator.built -> unit

type t = {
  topo : Builders.named;
  engine : Controller.engine;
  jobs : int option;
  gate : bool;
  host_cores : int;
  seed : int;
  mutable next_id : int;
  mutable state : installed option;
  mutable stats : stats;
  mutable chaos_hook : chaos_hook option;
}

let create ?(engine = `Best) ?jobs ?(gate = true)
    ?(host_cores = Types.default_host_cores) ?(seed = 1) topo =
  {
    topo;
    engine;
    jobs;
    gate;
    host_cores;
    seed;
    next_id = 0;
    state = None;
    stats = zero_stats;
    chaos_hook = None;
  }

let set_chaos_hook t hook = t.chaos_hook <- hook
let stats t = t.stats
let residents t =
  match t.state with
  | None -> []
  | Some st -> List.map (fun r -> (r.slice_id, r.spec)) st.res

(* ---- cross-slice weighted fairness --------------------------------- *)

(* Cores needed per offered Mbps of a slice: each chain stage of each
   class consumes cores/capacity fractional instances per Mbps.  A lower
   bound (ignores integer instance rounding), so the water-filling runs
   against a 90% budget and the LP keeps the final word. *)
let cores_per_mbps spec =
  List.fold_left
    (fun acc cs ->
      let per_mbps =
        Array.fold_left
          (fun a k ->
            let sp = Nf.spec k in
            a +. (float_of_int sp.Nf.cores /. sp.Nf.capacity_mbps))
          0.0 cs.chain
      in
      acc +. (cs.share *. per_mbps))
    0.0 spec.classes

let budget_fraction = 0.9

(* Weighted max-min between SLA floor and demand: start every slice at
   its guaranteed rate, then water-fill the remaining core budget by
   weight, clamping saturated slices at their demand. *)
let fair_rates t res =
  let budget =
    budget_fraction
    *. float_of_int (t.host_cores * Graph.num_nodes t.topo.Builders.graph)
  in
  let items =
    List.map
      (fun r ->
        let cpm = cores_per_mbps r.spec in
        let floor = r.spec.sla.rate_mbps in
        let cap = Float.max floor r.spec.sla.demand_mbps in
        (r, cpm, ref floor, cap))
      res
  in
  let floor_cores =
    List.fold_left (fun a (_, cpm, fl, _) -> a +. (cpm *. !fl)) 0.0 items
  in
  if floor_cores > budget +. 1e-9 then
    Error
      (Printf.sprintf
         "guaranteed rates need %.1f estimated cores, substrate budget is %.1f"
         floor_cores budget)
  else begin
    let rec fill remaining active =
      if remaining <= 1e-9 then ()
      else
        match active with
        | [] -> ()
        | _ -> (
            let total_w =
              List.fold_left
                (fun a ((r : resident), _, _, _) -> a +. r.spec.sla.weight)
                0.0 active
            in
            let sat =
              List.filter
                (fun ((r : resident), cpm, a, cap) ->
                  remaining *. r.spec.sla.weight /. total_w
                  >= ((cap -. !a) *. cpm) -. 1e-9)
                active
            in
            match sat with
            | [] ->
                List.iter
                  (fun ((r : resident), cpm, a, _) ->
                    a :=
                      !a
                      +. (remaining *. r.spec.sla.weight /. total_w /. cpm))
                  active
            | _ ->
                let used =
                  List.fold_left
                    (fun acc (_, cpm, a, cap) -> acc +. ((cap -. !a) *. cpm))
                    0.0 sat
                in
                List.iter (fun (_, _, a, cap) -> a := cap) sat;
                let active' =
                  List.filter (fun (_, _, a, cap) -> cap -. !a > 1e-9) active
                in
                fill (remaining -. used) active')
    in
    fill (budget -. floor_cores)
      (List.filter (fun (_, _, a, cap) -> cap -. !a > 1e-9) items);
    Ok (List.map (fun (r, _, a, _) -> (r.slice_id, !a)) items)
  end

(* ---- joint candidate construction ---------------------------------- *)

let build_candidate t res eff =
  let classes = ref [] in
  let ranges = ref [] in
  let iso = ref [] in
  let slice_of = ref [] in
  let next = ref 0 in
  let g = t.topo.Builders.graph in
  List.iter
    (fun r ->
      let rate = List.assoc r.slice_id eff in
      let first = !next in
      List.iter
        (fun cs ->
          let id = !next in
          incr next;
          let path =
            match Graph.shortest_path g cs.src cs.dst with
            | Some p -> Array.of_list p
            | None ->
                invalid_arg
                  (Printf.sprintf "Slice: no route %d -> %d" cs.src cs.dst)
          in
          classes :=
            {
              Types.id;
              src = cs.src;
              dst = cs.dst;
              path;
              chain = Array.copy cs.chain;
              src_block = Scenario.src_block_of_class_id id;
              rate = rate *. cs.share;
            }
            :: !classes;
          iso := r.spec.sla.isolated :: !iso;
          slice_of := r.slice_id :: !slice_of)
        r.spec.classes;
      ranges := (r.slice_id, (first, !next - first)) :: !ranges)
    res;
  let scenario =
    {
      Types.topo = t.topo;
      classes = Array.of_list (List.rev !classes);
      host_cores = Array.make (Graph.num_nodes g) t.host_cores;
      seed = t.seed;
    }
  in
  ( scenario,
    List.rev !ranges,
    Array.of_list (List.rev !iso),
    Array.of_list (List.rev !slice_of) )

(* ---- tenant isolation ---------------------------------------------- *)

exception Reject_capacity of string

(* instance id -> slice ids with a stage pinned on it, walked in
   deterministic sub-class order. *)
let instance_slices ~slice_of_class (asg : Subclass.assignment) =
  let m : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (sub : Subclass.subclass) ->
      let sl = slice_of_class.(sub.Subclass.class_id) in
      Array.iteri
        (fun j _ ->
          match Hashtbl.find_opt asg.Subclass.instance_of (Subclass.key sub, j) with
          | None -> ()
          | Some inst -> (
              let id = Instance.id inst in
              match Hashtbl.find_opt m id with
              | Some l -> if not (List.mem sl !l) then l := sl :: !l
              | None -> Hashtbl.add m id (ref [ sl ])))
        sub.Subclass.hops)
    asg.Subclass.subclasses;
  m

(* The shaping pass (Controller ?shape): re-home every stage of an
   isolated slice that landed on an instance shared with another slice
   onto a dedicated clone of that instance, then charge the clones
   against the per-host core budgets. *)
let isolate ~iso_of_class ~slice_of_class (s : Types.scenario)
    (asg : Subclass.assignment) =
  if not (Array.exists (fun b -> b) iso_of_class) then asg
  else begin
    let shared_map = instance_slices ~slice_of_class asg in
    let next_id = ref (Subclass.max_instance_id asg + 1) in
    let clones = ref [] in
    let clone_of : (int * int, Instance.t) Hashtbl.t = Hashtbl.create 16 in
    (* A clone must stay on the original's host: the static verifier
       proves every stage's instance lives at the subclass's hop switch,
       so re-homing a clone elsewhere would trade a capacity overflow
       for a placement violation.  Track usage only to reject cleanly. *)
    let used = Array.make (Array.length s.Types.host_cores) 0 in
    List.iter
      (fun i ->
        let h = Instance.host i in
        used.(h) <- used.(h) + (Instance.spec i).Nf.cores)
      asg.Subclass.instances;
    List.iter
      (fun (sub : Subclass.subclass) ->
        let cls = sub.Subclass.class_id in
        if iso_of_class.(cls) then
          let sl = slice_of_class.(cls) in
          Array.iteri
            (fun j _ ->
              match
                Hashtbl.find_opt asg.Subclass.instance_of (Subclass.key sub, j)
              with
              | None -> ()
              | Some inst ->
                  let shared =
                    match Hashtbl.find_opt shared_map (Instance.id inst) with
                    | Some l -> List.exists (fun x -> x <> sl) !l
                    | None -> false
                  in
                  if shared then begin
                    let clone =
                      match
                        Hashtbl.find_opt clone_of (sl, Instance.id inst)
                      with
                      | Some c -> c
                      | None ->
                          let spec = Instance.spec inst in
                          let host = Instance.host inst in
                          used.(host) <- used.(host) + spec.Nf.cores;
                          let c = Instance.create ~id:!next_id ~spec ~host in
                          incr next_id;
                          Hashtbl.add clone_of (sl, Instance.id inst) c;
                          clones := c :: !clones;
                          c
                    in
                    let rate =
                      s.Types.classes.(cls).Types.rate *. sub.Subclass.weight
                    in
                    Subclass.repin asg sub ~stage:j ~rate clone
                  end)
            sub.Subclass.hops)
      asg.Subclass.subclasses;
    match List.rev !clones with
    | [] -> asg
    | clones ->
        let instances = asg.Subclass.instances @ clones in
        Array.iteri
          (fun h u ->
            if u > s.Types.host_cores.(h) then
              raise
                (Reject_capacity
                   (Printf.sprintf
                      "tenant isolation needs %d cores at host %d (budget %d)"
                      u h s.Types.host_cores.(h))))
          used;
        { asg with Subclass.instances }
  end

(* Exclusivity proof on the final pinning: no isolated slice's instance
   serves another slice. *)
let isolation_breach ~iso_of_class ~slice_of_class (asg : Subclass.assignment) =
  let shared_map = instance_slices ~slice_of_class asg in
  let breach = ref None in
  List.iter
    (fun (sub : Subclass.subclass) ->
      let cls = sub.Subclass.class_id in
      if iso_of_class.(cls) && Option.is_none !breach then
        let sl = slice_of_class.(cls) in
        Array.iteri
          (fun j _ ->
            match
              Hashtbl.find_opt asg.Subclass.instance_of (Subclass.key sub, j)
            with
            | None -> ()
            | Some inst -> (
                match Hashtbl.find_opt shared_map (Instance.id inst) with
                | Some l when List.exists (fun x -> x <> sl) !l ->
                    if Option.is_none !breach then
                      breach :=
                        Some
                          (Printf.sprintf
                             "isolated slice %d shares instance %d with \
                              another tenant"
                             sl (Instance.id inst))
                | _ -> ()))
          sub.Subclass.hops)
    asg.Subclass.subclasses;
  !breach

(* ---- the admission gate -------------------------------------------- *)

let gate_of t ~iso_of_class ~slice_of_class ~verified :
    Controller.gate =
 fun s asg built ->
  (match t.chaos_hook with Some f -> f s asg built | None -> ());
  let left = Rule_generator.tags_left built in
  if left < 0 then
    Error
      (Printf.sprintf
         "tag-space: joint tables need %d sub-class tags, the 12-bit field \
          holds %d"
         (Tag.max_subclasses - left)
         Tag.max_subclasses)
  else
    match isolation_breach ~iso_of_class ~slice_of_class asg with
    | Some msg -> Error ("verifier: " ^ msg)
    | None ->
        if not t.gate then begin
          verified := 0;
          Ok ()
        end
        else
          let report = Verify.check s asg built in
          verified := report.Verify.subclasses;
          if Verify.ok report then Ok ()
          else
            let first =
              match report.Verify.violations with
              | v :: _ -> Format.asprintf " — %a" Verify.pp_violation v
              | [] -> ""
            in
            Error ("verifier: " ^ Verify.summary report ^ first)

(* ---- commit: the joint re-solve + re-verify pipeline ---------------- *)

let strip_prefix ~prefix msg =
  if String.starts_with ~prefix msg then
    String.sub msg (String.length prefix)
      (String.length msg - String.length prefix)
  else msg

let commit t res =
  match fair_rates t res with
  | Error msg -> Error (Capacity msg)
  | Ok eff -> (
      let scenario, ranges, iso_of_class, slice_of_class =
        build_candidate t res eff
      in
      if Array.length scenario.Types.classes = 0 then Ok None
      else
        let verified = ref 0 in
        let gate = gate_of t ~iso_of_class ~slice_of_class ~verified in
        let shape s asg = isolate ~iso_of_class ~slice_of_class s asg in
        let ctrl =
          Controller.create ~engine:t.engine ?jobs:t.jobs ~gate ~shape scenario
        in
        match Controller.run_epoch ctrl with
        | report ->
            Some
              {
                res;
                ctrl;
                report;
                eff;
                ranges;
                verified_subclasses = !verified;
              }
            |> Result.ok
        | exception Optimization_engine.Infeasible msg ->
            Error (Capacity ("optimizer infeasible: " ^ msg))
        | exception Reject_capacity msg -> Error (Capacity msg)
        | exception Controller.Rejected msg ->
            if String.starts_with ~prefix:"tag-space: " msg then
              Error (Tag_space (strip_prefix ~prefix:"tag-space: " msg))
            else
              Error (Verifier (strip_prefix ~prefix:"verifier: " msg)))

let record_rejection t reason =
  T.Counter.incr m_rejected;
  t.stats <-
    (match reason with
    | Capacity _ ->
        { t.stats with rejected_capacity = t.stats.rejected_capacity + 1 }
    | Tag_space _ ->
        { t.stats with rejected_tag_space = t.stats.rejected_tag_space + 1 }
    | Verifier _ ->
        { t.stats with rejected_verifier = t.stats.rejected_verifier + 1 })

let record_commit t (st : installed) =
  if t.gate then begin
    T.Counter.incr m_gate_passes;
    t.stats <- { t.stats with verifier_passes = t.stats.verifier_passes + 1 }
  end;
  List.iter
    (fun r ->
      let eff = List.assoc r.slice_id st.eff in
      T.Gauge.set (tenant_gauge r.spec.tenant) eff)
    st.res

let throttled_of (st : installed) =
  List.filter_map
    (fun r ->
      let eff = List.assoc r.slice_id st.eff in
      let cap = Float.max r.spec.sla.rate_mbps r.spec.sla.demand_mbps in
      if cap -. eff > 1e-6 then Some (slice_key r.spec, eff /. cap) else None)
    st.res

let admit t spec =
  Tr.with_ tr_admit @@ fun () ->
  (match validate_spec t.topo spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Slice.admit: " ^ e));
  let existing = match t.state with None -> [] | Some st -> st.res in
  if
    List.exists
      (fun r -> String.equal (slice_key r.spec) (slice_key spec))
      existing
  then
    invalid_arg
      (Printf.sprintf "Slice.admit: %s is already resident" (slice_key spec));
  let cand = { slice_id = t.next_id; spec } in
  match commit t (existing @ [ cand ]) with
  | Error reason ->
      record_rejection t reason;
      T.Journal.recordf ~kind:"slice" "rejected %s (%s): %s" (slice_key spec)
        (reason_name reason) (reason_detail reason);
      Log.info (fun m ->
          m "rejected %s: %a" (slice_key spec) pp_reason reason);
      Error reason
  | Ok None ->
      (* the candidate always carries classes, so the joint scenario is
         never empty here *)
      assert false
  | Ok (Some st) ->
      t.state <- Some st;
      t.next_id <- t.next_id + 1;
      T.Counter.incr m_admitted;
      t.stats <- { t.stats with admitted_total = t.stats.admitted_total + 1 };
      record_commit t st;
      let rules = st.report.Controller.rules in
      let adm =
        {
          slice_id = cand.slice_id;
          residents = List.length st.res;
          instances = st.report.Controller.instances;
          cores = st.report.Controller.cores;
          tcam_rules = st.report.Controller.tcam_entries;
          global_tags = rules.Rule_generator.global_tags_used;
          tags_left = Rule_generator.tags_left rules;
          verified_subclasses = st.verified_subclasses;
          throttled = throttled_of st;
        }
      in
      T.Journal.recordf ~kind:"slice"
        "admitted %s: slice %d, %d resident(s), %d cores, %d TCAM"
        (slice_key spec) adm.slice_id adm.residents adm.cores adm.tcam_rules;
      Log.info (fun m ->
          m "admitted %s as slice %d (%d resident(s))" (slice_key spec)
            adm.slice_id adm.residents);
      Ok adm

let depart t ~tenant ~name =
  Tr.with_ tr_depart @@ fun () ->
  let key = tenant ^ "/" ^ name in
  match t.state with
  | None -> Error (Printf.sprintf "%s is not resident (substrate empty)" key)
  | Some st -> (
      let gone, rest =
        List.partition (fun r -> String.equal (slice_key r.spec) key) st.res
      in
      match gone with
      | [] -> Error (Printf.sprintf "%s is not resident" key)
      | _ :: _ -> (
          let old = st.report in
          let old_tags =
            old.Controller.rules.Rule_generator.global_tags_used
          in
          let finish residents freed_instances freed_cores freed_tcam
              freed_tags =
            T.Counter.incr m_departed;
            t.stats <-
              { t.stats with departed_total = t.stats.departed_total + 1 };
            T.Gauge.set (tenant_gauge tenant) 0.0;
            T.Journal.recordf ~kind:"slice"
              "departed %s: freed %d cores, %d TCAM, %d tags" key freed_cores
              freed_tcam freed_tags;
            Ok
              { residents; freed_instances; freed_cores; freed_tcam; freed_tags }
          in
          match commit t rest with
          | Error reason ->
              (* A shrinking recommit refusing is a harness bug, not a
                 tenant decision; keep the old state installed. *)
              Error
                (Printf.sprintf "recommit after departing %s failed (%s: %s)"
                   key (reason_name reason) (reason_detail reason))
          | Ok None ->
              t.state <- None;
              finish 0 old.Controller.instances old.Controller.cores
                old.Controller.tcam_entries old_tags
          | Ok (Some st') ->
              t.state <- Some st';
              record_commit t st';
              let nw = st'.report in
              finish (List.length st'.res)
                (old.Controller.instances - nw.Controller.instances)
                (old.Controller.cores - nw.Controller.cores)
                (old.Controller.tcam_entries - nw.Controller.tcam_entries)
                (old_tags - nw.Controller.rules.Rule_generator.global_tags_used)))

(* ---- substrate fingerprint ------------------------------------------ *)

(* Everything a rejected admission must provably leave untouched:
   resident slices with effective rates, the sub-class pinnings with
   instance offered loads, and the full physical + vSwitch tables.
   Slice ids stay out so depart/re-admit of the same spec restores the
   identical digest. *)
let fingerprint t =
  match t.state with
  | None -> Digest.to_hex (Digest.string "empty-substrate")
  | Some st ->
      let b = Buffer.create 8192 in
      List.iter
        (fun r ->
          Printf.bprintf b "slice %s gtd=%h eff=%h iso=%b\n" (slice_key r.spec)
            r.spec.sla.rate_mbps
            (List.assoc r.slice_id st.eff)
            r.spec.sla.isolated)
        st.res;
      (match Controller.assignment st.ctrl with
      | None -> ()
      | Some asg ->
          List.iter
            (fun (sub : Subclass.subclass) ->
              Printf.bprintf b "sub %d.%d w=%h :" sub.Subclass.class_id
                sub.Subclass.sub_id sub.Subclass.weight;
              Array.iteri
                (fun j _ ->
                  match
                    Hashtbl.find_opt asg.Subclass.instance_of
                      (Subclass.key sub, j)
                  with
                  | Some inst -> Printf.bprintf b " %d" (Instance.id inst)
                  | None -> Buffer.add_string b " -")
                sub.Subclass.hops;
              Buffer.add_char b '\n')
            asg.Subclass.subclasses;
          List.iter
            (fun i ->
              Printf.bprintf b "inst %d %s host=%d offered=%h\n"
                (Instance.id i)
                (Nf.name (Instance.kind i))
                (Instance.host i) (Instance.offered i))
            asg.Subclass.instances);
      Array.iter
        (fun table ->
          Printf.bprintf b "sw %d\n" (Tcam.switch table);
          List.iter
            (fun (uid, rule) ->
              Printf.bprintf b "p %d %s\n" uid
                (Format.asprintf "%a" Rule.pp_phys_rule rule))
            (Tcam.phys_entries table);
          List.iter
            (fun rule ->
              Printf.bprintf b "v %s\n"
                (Format.asprintf "%a" Rule.pp_vswitch_rule rule))
            (Tcam.vswitch_rules table))
        st.report.Controller.rules.Rule_generator.network;
      Digest.to_hex (Digest.string (Buffer.contents b))

(* ---- per-tenant top table ------------------------------------------- *)

let top t =
  match t.state with
  | None -> "APPLE slices: substrate empty (0 resident)\n"
  | Some st ->
      let rules = st.report.Controller.rules in
      let header =
        Printf.sprintf
          "APPLE slices: %d resident, %d instance(s), %d core(s), %d TCAM, \
           tags %d/%d\n"
          (List.length st.res)
          st.report.Controller.instances st.report.Controller.cores
          st.report.Controller.tcam_entries
          rules.Rule_generator.global_tags_used Tag.max_subclasses
      in
      (* tenant -> class-id predicate via the slice ranges *)
      let tenants =
        List.fold_left
          (fun acc r ->
            if List.exists (fun x -> String.equal x r.spec.tenant) acc then acc
            else r.spec.tenant :: acc)
          [] st.res
        |> List.rev
      in
      let total_eff =
        List.fold_left (fun a (_, e) -> a +. e) 0.0 st.eff
      in
      let tbl =
        Text_table.create
          [
            "tenant"; "slices"; "classes"; "gtd Mbps"; "eff Mbps"; "share";
            "subcls"; "inst"; "dedicated";
          ]
      in
      let asg = Controller.assignment st.ctrl in
      List.iter
        (fun tenant ->
          let mine =
            List.filter (fun r -> String.equal r.spec.tenant tenant) st.res
          in
          let slices = List.length mine in
          let classes =
            List.fold_left (fun a r -> a + List.length r.spec.classes) 0 mine
          in
          let gtd =
            List.fold_left (fun a r -> a +. r.spec.sla.rate_mbps) 0.0 mine
          in
          let eff =
            List.fold_left
              (fun a r -> a +. List.assoc r.slice_id st.eff)
              0.0 mine
          in
          let class_is_mine cid =
            List.exists
              (fun r ->
                let first, count = List.assoc r.slice_id st.ranges in
                cid >= first && cid < first + count)
              mine
          in
          let subcls, inst_count, dedicated =
            match asg with
            | None -> (0, 0, 0)
            | Some asg ->
                let mine_subs =
                  List.filter
                    (fun (s : Subclass.subclass) ->
                      class_is_mine s.Subclass.class_id)
                    asg.Subclass.subclasses
                in
                let touched : (int, bool) Hashtbl.t = Hashtbl.create 16 in
                let foreign : (int, bool) Hashtbl.t = Hashtbl.create 16 in
                List.iter
                  (fun (sub : Subclass.subclass) ->
                    Array.iteri
                      (fun j _ ->
                        match
                          Hashtbl.find_opt asg.Subclass.instance_of
                            (Subclass.key sub, j)
                        with
                        | None -> ()
                        | Some i ->
                            let id = Instance.id i in
                            if class_is_mine sub.Subclass.class_id then
                              Hashtbl.replace touched id true
                            else Hashtbl.replace foreign id true)
                      sub.Subclass.hops)
                  asg.Subclass.subclasses;
                let inst_count = Hashtbl.length touched in
                let dedicated =
                  (* lint: L3 — commutative count of dedicated instances *)
                  Hashtbl.fold
                    (fun id _ acc ->
                      if Hashtbl.mem foreign id then acc else acc + 1)
                    touched 0
                in
                (List.length mine_subs, inst_count, dedicated)
          in
          Text_table.add_row tbl
            [
              tenant;
              string_of_int slices;
              string_of_int classes;
              Printf.sprintf "%.0f" gtd;
              Printf.sprintf "%.0f" eff;
              Printf.sprintf "%.0f%%"
                (if total_eff > 0.0 then 100.0 *. eff /. total_eff else 0.0);
              string_of_int subcls;
              string_of_int inst_count;
              string_of_int dedicated;
            ])
        tenants;
      header ^ Text_table.render tbl ^ "\n"
