module Engine = Apple_sim.Engine
module Instance = Apple_vnf.Instance
module Nf = Apple_vnf.Nf
module Walk = Apple_dataplane.Walk
module Rng = Apple_prelude.Rng
module Stats = Apple_prelude.Stats
module Obs = Apple_obs.Counters
module Flight = Apple_obs.Flight
module Failmask = Apple_dataplane.Failmask

type config = {
  link_latency : float;
  queue_packets : int;
  packet_bytes : int;
}

let default_config =
  { link_latency = 50e-6; queue_packets = 64; packet_bytes = 1500 }

type source =
  | Cbr of float
  | Poisson of float
  | On_off of { pps : float; on_s : float; off_s : float }

type flow_spec = {
  flow_name : string;
  cls : int;
  src_ip : int;
  path : int list;
  source : source;
  start_at : float;
  stop_at : float;
}

type flow_report = {
  spec : flow_spec;
  sent : int;
  delivered : int;
  dropped : int;
  latencies : float array;
}

type report = {
  flows : flow_report list;
  total_sent : int;
  total_delivered : int;
  loss_rate : float;
  duration : float;
}

exception Unroutable of string

(* Single-server FIFO queue with a drop-tail buffer.  Service time is
   deterministic (per-packet capacity of the instance). *)
type server = {
  inst_id : int;
  service_time : float;
  buffer : int;  (* waiting room, packets (excluding the one in service) *)
  mutable queued : int;
  mutable busy : bool;
  waiters : (Engine.t -> unit) Queue.t;
}

(* One packet's remaining itinerary: alternate link hops and servers. *)
type step = Link | Serve of server

type in_flight = {
  flow_idx : int;
  born : float;
  mutable todo : step list;
}

let service_time_of config inst =
  let mbps = (Instance.spec inst).Nf.capacity_mbps in
  let pps = mbps *. 1e6 /. 8.0 /. float_of_int config.packet_bytes in
  1.0 /. pps

let itinerary config ~servers (spec : flow_spec) walk =
  (* One walk decides the whole flow's route (the walks of all flows run
     as a single Walk.run_batch per (network, epoch) snapshot); per-packet
     steps alternate a link per hop plus the servers of instances applied
     at that hop. *)
  match walk with
  | Error e ->
      raise
        (Unroutable
           (Format.asprintf "%s: %a" spec.flow_name Walk.pp_error e))
  | Ok trace ->
      (* The trace lists instances in traversal order; we charge one link
         per path hop and insert each instance's server after reaching its
         host.  For the latency model the exact interleaving within a hop
         is immaterial, so: links for every hop, then servers in order
         spliced at their positions.  Simplest faithful layout: all hops
         contribute Link steps in order, and instance servers are applied
         in trace order after the first Link. *)
      let links = List.map (fun _ -> Link) (List.tl spec.path) in
      let serves =
        List.map
          (fun inst_id ->
            match Hashtbl.find_opt servers inst_id with
            | Some s -> Serve s
            | None ->
                raise
                  (Unroutable
                     (Printf.sprintf "%s: instance %d has no server"
                        spec.flow_name inst_id)))
          trace.Walk.instances
      in
      ignore config;
      (* servers first (processing happens along the way), links spread
         around them; ordering only shifts constant latency *)
      (serves @ links, trace.Walk.rule_path, trace.Walk.instances)

(* First dead element on a flow's route, in traversal order: the links
   and switches of the path, then the instances its walk applies.
   Checked at emit time, so faults injected mid-run blackhole packets
   without re-routing the flow (routes only change when the controller
   reinstalls rules). *)
let route_blocked mask ~path ~insts ~host_of =
  match mask with
  | None -> fun () -> None
  | Some m ->
      fun () ->
        if Failmask.is_clear m then None
        else begin
          let rec scan prev = function
            | [] -> None
            | sw :: rest ->
                if
                  match prev with
                  | Some p -> Failmask.link_down m p sw
                  | None -> false
                then Some (Option.get prev, sw, 0)
                else if Failmask.switch_down m sw then Some (sw, -1, 1)
                else scan (Some sw) rest
          in
          match scan None path with
          | Some hit -> Some hit
          | None ->
              List.find_map
                (fun i ->
                  if Failmask.instance_down m i then Some (host_of i, i, 2)
                  else None)
                insts
        end

let run ?(config = default_config) ?(seed = 1) ?poll ?mask ~network ~instances
    ~flows ~duration () =
  let world = Engine.create () in
  let rng = Rng.create seed in
  let servers = Hashtbl.create 64 in
  List.iter
    (fun inst ->
      Hashtbl.replace servers (Instance.id inst)
        {
          inst_id = Instance.id inst;
          service_time = service_time_of config inst;
          buffer = config.queue_packets;
          queued = 0;
          busy = false;
          waiters = Queue.create ();
        })
    instances;
  let specs = Array.of_list flows in
  let sent = Array.make (Array.length specs) 0 in
  let delivered = Array.make (Array.length specs) 0 in
  let dropped = Array.make (Array.length specs) 0 in
  let latencies = Array.make (Array.length specs) [] in
  let requests =
    Array.mapi
      (fun idx (spec : flow_spec) ->
        {
          Walk.rq_path = spec.path;
          rq_cls = spec.cls;
          rq_src_ip = spec.src_ip;
          rq_start_in_host = false;
          rq_flow = idx;
        })
      specs
  in
  let walks = Walk.run_batch network ~requests () in
  let routed =
    Array.mapi (fun idx spec -> itinerary config ~servers spec walks.(idx)) specs
  in
  let itineraries = Array.map (fun (steps, _, _) -> steps) routed in
  let rule_paths = Array.map (fun (_, rules, _) -> rules) routed in
  let host_of =
    let hosts = Hashtbl.create 64 in
    List.iter
      (fun inst -> Hashtbl.replace hosts (Instance.id inst) (Instance.host inst))
      instances;
    fun id -> Option.value ~default:(-1) (Hashtbl.find_opt hosts id)
  in
  let blocked =
    Array.mapi
      (fun idx spec ->
        let _, _, insts = routed.(idx) in
        route_blocked mask ~path:spec.path ~insts ~host_of)
      specs
  in
  let obs = Obs.enabled () in
  let rec advance pkt w =
    match pkt.todo with
    | [] ->
        delivered.(pkt.flow_idx) <- delivered.(pkt.flow_idx) + 1;
        latencies.(pkt.flow_idx) <-
          (Engine.now w -. pkt.born) :: latencies.(pkt.flow_idx)
    | Link :: rest ->
        pkt.todo <- rest;
        Engine.schedule w ~delay:config.link_latency (advance pkt)
    | Serve server :: rest ->
        if server.busy then begin
          if server.queued >= server.buffer then begin
            (* drop-tail *)
            dropped.(pkt.flow_idx) <- dropped.(pkt.flow_idx) + 1;
            if obs then begin
              Obs.inst_drop ~id:server.inst_id;
              Flight.record Flight.Pkt_drop ~a:pkt.flow_idx ~b:server.inst_id ()
            end
          end
          else begin
            server.queued <- server.queued + 1;
            if obs then Obs.inst_queue ~id:server.inst_id ~depth:server.queued;
            Queue.add
              (fun w' ->
                server.queued <- server.queued - 1;
                if obs then Obs.inst_queue ~id:server.inst_id ~depth:server.queued;
                serve server pkt rest w')
              server.waiters
          end
        end
        else serve server pkt rest w
  and serve server pkt rest w =
    server.busy <- true;
    if obs then Obs.inst_packet ~id:server.inst_id ~bytes:config.packet_bytes;
    Engine.schedule w ~delay:server.service_time (fun w' ->
        server.busy <- false;
        (* Wake the next waiter before moving on. *)
        (match Queue.take_opt server.waiters with
        | Some k -> k w'
        | None -> ());
        pkt.todo <- rest;
        advance pkt w')
  in
  (* Packet sources. *)
  Array.iteri
    (fun idx spec ->
      let emit w =
        sent.(idx) <- sent.(idx) + 1;
        match blocked.(idx) () with
        | Some (sw, detail, reason) ->
            (* The flow's route crosses a failed element right now: the
               packet falls into the blackhole at that point. *)
            dropped.(idx) <- dropped.(idx) + 1;
            if obs then begin
              Obs.blackhole ~sw ~packets:1;
              Flight.record Flight.Blackhole ~a:idx ~b:sw ~c:detail ~d:reason
                ()
            end
        | None ->
            if obs then
              (* Per-rule match/byte counters: every packet of the flow
                 takes the same TCAM matches its routing walk recorded. *)
              List.iter
                (fun (sw, uid) ->
                  Obs.rule_hit ~sw ~uid ~bytes:config.packet_bytes)
                rule_paths.(idx);
            let pkt =
              { flow_idx = idx; born = Engine.now w; todo = itineraries.(idx) }
            in
            advance pkt w
      in
      let rec cbr_tick period w =
        if Engine.now w < spec.stop_at && Engine.now w < duration then begin
          emit w;
          Engine.schedule w ~delay:period (cbr_tick period)
        end
      in
      let rec poisson_tick pps w =
        if Engine.now w < spec.stop_at && Engine.now w < duration then begin
          emit w;
          Engine.schedule w ~delay:(Rng.exponential rng ~rate:pps) (poisson_tick pps)
        end
      in
      let rec onoff_tick ~pps ~on_s ~off_s ~phase_left w =
        if Engine.now w < spec.stop_at && Engine.now w < duration then begin
          emit w;
          let period = 1.0 /. pps in
          if phase_left > period then
            Engine.schedule w ~delay:period
              (onoff_tick ~pps ~on_s ~off_s ~phase_left:(phase_left -. period))
          else
            Engine.schedule w ~delay:(period +. off_s)
              (onoff_tick ~pps ~on_s ~off_s ~phase_left:on_s)
        end
      in
      let start w =
        match spec.source with
        | Cbr pps -> cbr_tick (1.0 /. pps) w
        | Poisson pps -> poisson_tick pps w
        | On_off { pps; on_s; off_s } ->
            onoff_tick ~pps ~on_s ~off_s ~phase_left:on_s w
      in
      Engine.schedule_at world ~time:spec.start_at start)
    specs;
  (* Controller-side counter polling rides on the same virtual clock. *)
  (match poll with
  | Some (period, f) ->
      Engine.every world ~period ~until:duration (fun w -> f (Engine.now w))
  | None -> ());
  Engine.run ~until:(duration +. 1.0) world;
  let flow_reports =
    Array.to_list
      (Array.mapi
         (fun idx spec ->
           {
             spec;
             sent = sent.(idx);
             delivered = delivered.(idx);
             dropped = dropped.(idx);
             latencies = Array.of_list (List.rev latencies.(idx));
           })
         specs)
  in
  let total_sent = Array.fold_left ( + ) 0 sent in
  let total_delivered = Array.fold_left ( + ) 0 delivered in
  {
    flows = flow_reports;
    total_sent;
    total_delivered;
    loss_rate =
      (if total_sent = 0 then 0.0
       else 1.0 -. (float_of_int total_delivered /. float_of_int total_sent));
    duration;
  }

let find_flow report name =
  match List.find_opt (fun f -> f.spec.flow_name = name) report.flows with
  | Some f -> f
  | None ->
      (* A bare Not_found here cost real debugging time: name the flow
         and the report's actual contents instead. *)
      invalid_arg
        (Printf.sprintf "Packet_sim: no flow named %S (report has: %s)" name
           (String.concat ", "
              (List.map (fun f -> f.spec.flow_name) report.flows)))

let loss_of report name =
  let f = find_flow report name in
  if f.sent = 0 then 0.0
  else float_of_int (f.sent - f.delivered) /. float_of_int f.sent

let latency_percentile report name p =
  let f = find_flow report name in
  Stats.percentile f.latencies p
