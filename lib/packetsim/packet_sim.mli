(** Packet-level data-plane simulation.

    The evaluation-level experiments (Figs. 10–12) use flow-level loss
    models; this module simulates individual packets through the
    installed switch tables and VNF instances so those models can be
    validated and per-packet {e latency} measured:

    - each flow is routed once through {!Apple_dataplane.Walk} to obtain
      its (switch, instances) itinerary — the data plane is exactly the
      one the Rule Generator installed;
    - every VNF instance is a single-server FIFO queue with a finite
      drop-tail buffer and a deterministic per-packet service time
      derived from its Table-IV capacity;
    - links add a constant propagation latency per hop.

    The queueing behaviour reproduces the Fig. 6 knee from first
    principles: below capacity the queue stays short and loss is 0; above
    capacity the buffer fills and the drop rate approaches
    [(rate - capacity) / rate]. *)

type config = {
  link_latency : float;  (** seconds per hop (default 50 us) *)
  queue_packets : int;  (** per-instance buffer, packets (default 64) *)
  packet_bytes : int;  (** payload size (default 1500) *)
}

val default_config : config

type source =
  | Cbr of float  (** constant bit-rate, packets per second *)
  | Poisson of float  (** Poisson arrivals, mean packets per second *)
  | On_off of { pps : float; on_s : float; off_s : float }
      (** CBR bursts of [on_s] seconds separated by [off_s] silences *)

type flow_spec = {
  flow_name : string;
  cls : int;  (** class id for vSwitch matching *)
  src_ip : int;
  path : int list;  (** routing path (switch ids) *)
  source : source;
  start_at : float;
  stop_at : float;
}

type flow_report = {
  spec : flow_spec;
  sent : int;
  delivered : int;
  dropped : int;
  latencies : float array;  (** end-to-end seconds, delivered packets *)
}

type report = {
  flows : flow_report list;
  total_sent : int;
  total_delivered : int;
  loss_rate : float;
  duration : float;
}

exception Unroutable of string
(** A flow's packet walk failed against the installed tables. *)

val run :
  ?config:config ->
  ?seed:int ->
  ?poll:float * (float -> unit) ->
  ?mask:Apple_dataplane.Failmask.t ->
  network:Apple_dataplane.Tcam.network ->
  instances:Apple_vnf.Instance.t list ->
  flows:flow_spec list ->
  duration:float ->
  unit ->
  report
(** Simulate [duration] seconds.  [instances] must cover every instance
    id referenced by the installed vSwitch rules on the flows' paths.
    Deterministic for a given [seed] (default 1).

    [poll = (period, f)] invokes [f now] every [period] virtual seconds
    (e.g. [Apple_obs.Poller.poll]), modelling the controller's counter
    polling loop on the same clock as the packets.

    [mask] injects a live failure mask (the chaos engine's): each packet
    checks its flow's route against the mask at emission time, and if
    the route crosses a dead link, switch or instance the packet counts
    as dropped at the first failed element — credited to
    {!Apple_obs.Counters.blackhole} and recorded as a
    {!Apple_obs.Flight.Blackhole} event — instead of traversing the
    itinerary.  Flips of the mask mid-run take effect on the next
    emitted packet; routes themselves only change when the controller
    reinstalls rules.

    When {!Apple_obs.Counters.enabled}, every packet credits the
    match/byte counters of the TCAM rules on its flow's walk, and every
    instance's packet/drop/queue counters track its server — that is
    the measurement plane [apple top] renders. *)

val loss_of : report -> string -> float
(** Loss rate of the named flow.  Raises [Invalid_argument] naming the
    flow and the report's flows for unknown names (a bare [Not_found]
    here proved undebuggable). *)

val latency_percentile : report -> string -> float -> float
(** Latency percentile of a named flow's delivered packets. *)
