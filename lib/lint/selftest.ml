type fixture = {
  fname : string;
  source : string;
  expect : (string * int) list;
}

(* Keep each fixture minimal: one rule, explicit line numbers.  These
   double as the living documentation of what the catalog catches. *)
let fixtures =
  [
    {
      fname = "lib/demo/poly_compare_ident.ml";
      source = "let sorted xs = List.sort compare xs\n";
      expect = [ ("L1", 1) ];
    };
    {
      fname = "lib/demo/poly_compare_op.ml";
      source = "let same a b = (a, 0) = (b, 0)\nlet opt x = x = Some 3\n";
      expect = [ ("L1", 1); ("L1", 2) ];
    };
    {
      fname = "lib/demo/poly_hash.ml";
      source = "let h v = Hashtbl.hash v\n";
      expect = [ ("L2", 1) ];
    };
    {
      fname = "lib/demo/hashtbl_order.ml";
      source =
        "let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n";
      expect = [ ("L3", 1) ];
    };
    {
      fname = "lib/demo/random_global.ml";
      source =
        "let roll () = Random.int 6\n\
         let ok st = Random.State.int st 6\n";
      expect = [ ("L4", 1) ];
    };
    {
      fname = "lib/demo/wallclock.ml";
      source = "let stamp () = Unix.gettimeofday ()\n";
      expect = [ ("L5", 1) ];
    };
    {
      (* The same read inside lib/telemetry is the sanctioned home. *)
      fname = "lib/telemetry/demo_clock.ml";
      source = "let stamp () = Unix.gettimeofday ()\n";
      expect = [];
    };
    {
      (* The tracer stamps wall time on spans; lib/trace is the other
         sanctioned clock consumer. *)
      fname = "lib/trace/demo_clock.ml";
      source = "let stamp () = Unix.gettimeofday ()\n";
      expect = [];
    };
    {
      fname = "lib/demo/stdout.ml";
      source = "let banner () = print_endline \"hi\"\n";
      expect = [ ("L6", 1) ];
    };
    {
      (* lib/obs prints are rejected annotation or not: the waiver
         attempt itself is flagged (L13) and the print stays active
         under the obs-specific rule (L7). *)
      fname = "lib/obs/demo_render.ml";
      source =
        "(* lint: L7 — rendering is the CLI's job, this cannot pass *)\n\
         let show () = print_endline \"hi\"\n";
      expect = [ ("L13", 1); ("L7", 2) ];
    };
    {
      fname = "lib/demo/catch_all.ml";
      source = "let swallow f = try f () with _ -> ()\n";
      expect = [ ("L8", 1) ];
    };
    {
      fname = "lib/demo/obj_magic.ml";
      source = "let cast x = Obj.magic x\n";
      expect = [ ("L9", 1) ];
    };
    {
      fname = "lib/demo/marshal.ml";
      source = "let save oc v = Marshal.to_channel oc v []\n";
      expect = [ ("L10", 1) ];
    };
    {
      (* Both the type constructor and the value-level use trip L11. *)
      fname = "lib/parallel/demo_table.ml";
      source = "let t : (int, int) Hashtbl.t = Hashtbl.create 8\n";
      expect = [ ("L11", 1); ("L11", 1) ];
    };
    {
      fname = "lib/demo/unparseable.ml";
      source = "let = in\n";
      expect = [ ("L12", 1) ];
    };
    {
      fname = "lib/demo/stale_waiver.ml";
      source = "let x = 1 (* lint: L3 — nothing here to waive *)\n";
      expect = [ ("L13", 1) ];
    };
    {
      (* A reviewed waiver on the line above (alone on its line)
         suppresses the diagnostic: nothing active. *)
      fname = "lib/demo/waived.ml";
      source =
        "let keys t =\n\
        \  (* lint: hashtbl-order — frozen into a sorted list below *)\n\
        \  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort \
         Int.compare\n";
      expect = [];
    };
  ]

let report_json () =
  let units = List.map (fun f -> (f.fname, f.source)) fixtures in
  let { Analyze.files; diagnostics } = Analyze.sources units in
  Diagnostic.report_json ~files diagnostics
