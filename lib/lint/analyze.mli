(** The AST-driven analysis pass: parse each compilation unit with
    compiler-libs ([Parse] + [Lexer] for the comment stream) and walk
    the parsetree with [Ast_iterator], firing the [Rule] catalog and
    honoring [Waiver] annotations.

    Path scoping (paths are analysis-root-relative, '/'-separated):
    the stdout rules (L6/L7) apply only under [lib/]; L5 skips
    [lib/telemetry/] and [lib/trace/]; L10 skips the documented
    checkpoint modules;
    L11 applies only under [lib/parallel/].  Everything else applies
    everywhere the driver points the walker ([lib/], [bin/],
    [bench/], [tools/]). *)

type result = {
  files : int;  (** compilation units analyzed *)
  diagnostics : Diagnostic.t list;  (** sorted; waived ones included *)
}

val source : path:string -> string -> Diagnostic.t list
(** Analyze one unit given as a string.  [path] is the virtual
    root-relative path (it selects the scoped rules and is stamped
    into diagnostics); [.mli] paths parse as interfaces.  Sorted,
    waived diagnostics included. *)

val sources : (string * string) list -> result
(** Analyze a list of [(path, contents)] units — the fixture entry
    point used by the tests and the JSON golden. *)

val tree : root:string -> dirs:string list -> result
(** Walk [dirs] (relative to [root]) recursively, in sorted order,
    analyzing every [.ml]/[.mli]; dot-directories are skipped. *)
