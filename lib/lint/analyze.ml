type result = { files : int; diagnostics : Diagnostic.t list }

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)

let under dir path =
  String.length path > String.length dir
  && String.equal (String.sub path 0 (String.length dir)) dir

let in_lib = under "lib/"
let in_obs = under "lib/obs/"
let in_telemetry = under "lib/telemetry/"
let in_trace = under "lib/trace/"
let in_parallel = under "lib/parallel/"

(* The modules allowed to touch Marshal: the digest-protected soak
   checkpoints and the flight-recorder ring are the only serialization
   boundaries reviewed for it. *)
let marshal_allowed path =
  String.equal path "lib/soak/checkpoint.ml"
  || String.equal path "lib/obs/flight.ml"

(* ------------------------------------------------------------------ *)
(* Per-file collection                                                 *)

type ctx = { path : string; mutable diags : Diagnostic.t list }

let emit ctx (rule : Rule.t) (loc : Location.t) message =
  ctx.diags <-
    {
      Diagnostic.file = ctx.path;
      line = loc.loc_start.pos_lnum;
      col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
      rule;
      message;
      waived = None;
    }
    :: ctx.diags

(* Longident → components, with a leading Stdlib. qualifier dropped so
   Stdlib.compare and Stdlib.Random.int match their bare spellings. *)
let lid_path lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply _ -> []
  in
  match go [] lid with "Stdlib" :: (_ :: _ as rest) -> rest | p -> p

let dotted = String.concat "."

let stdout_idents =
  [
    [ "print_string" ]; [ "print_endline" ]; [ "print_newline" ];
    [ "print_int" ]; [ "print_float" ]; [ "print_char" ]; [ "print_bytes" ];
    [ "Printf"; "printf" ]; [ "Format"; "printf" ];
    [ "Format"; "print_string" ]; [ "Format"; "print_newline" ];
    [ "Format"; "print_flush" ]; [ "Format"; "std_formatter" ];
  ]

let mem_path p l = List.exists (fun q -> List.equal String.equal p q) l

(* Rules fired by a plain identifier occurrence. *)
let check_ident ctx lid (loc : Location.t) =
  let p = lid_path lid in
  (match p with
  | [ "compare" ] | [ "Stdlib"; "compare" ] ->
      emit ctx Rule.poly_compare loc
        "bare polymorphic `compare` — use Int.compare / Float.compare / \
         String.compare or a typed comparator"
  | [ "Hashtbl"; ("hash" | "seeded_hash") ] ->
      emit ctx Rule.poly_hash loc
        "Hashtbl.hash is representation-dependent and unstable across \
         compiler versions — hash a canonical string or derive a typed hash"
  | [ "Hashtbl"; (("iter" | "fold") as fn) ] ->
      emit ctx Rule.hashtbl_order loc
        (Printf.sprintf
           "Hashtbl.%s iteration order is unspecified — sort the keys \
            before consuming, or waive a commutative accumulation"
           fn)
  | [ "Random"; fn ] when not (String.equal fn "State") ->
      emit ctx Rule.random loc
        (Printf.sprintf
           "Random.%s drives the global, implicitly-seeded generator — \
            thread a seeded Rng.t / Random.State.t"
           fn)
  | [ "Sys"; "time" ]
  | [ "Unix"; ("gettimeofday" | "time" | "localtime" | "gmtime") ]
    when not (in_telemetry ctx.path || in_trace ctx.path) ->
      emit ctx Rule.wallclock loc
        (Printf.sprintf
           "%s reads the host clock outside lib/telemetry or lib/trace — \
            inject the clock, or waive a perf-metadata read"
           (dotted p))
  | [ "Obj"; "magic" ] ->
      emit ctx Rule.obj_magic loc "Obj.magic defeats the type system"
  | "Marshal" :: _ :: _ when not (marshal_allowed ctx.path) ->
      emit ctx Rule.marshal loc
        (Printf.sprintf
           "%s outside the checkpoint modules — the Marshal format is \
            compiler-version-specific"
           (dotted p))
  | _ -> ());
  if in_lib ctx.path && mem_path p stdout_idents then
    if in_obs ctx.path then
      emit ctx Rule.obs_stdout loc
        (Printf.sprintf
           "%s prints from lib/obs — the measurement plane renders to \
            strings; printing is the CLI's job (not waivable)"
           (dotted p))
    else
      emit ctx Rule.stdout loc
        (Printf.sprintf
           "%s prints from a library — report through Logs, telemetry or a \
            caller-supplied formatter"
           (dotted p));
  if in_parallel ctx.path then
    match p with
    | "Hashtbl" :: _ ->
        emit ctx Rule.parallel_hashtbl loc
          "Hashtbl in lib/parallel — the domain pool must stay free of \
           shared mutable tables"
    | _ -> ()

let comparison_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

(* A syntactically structural operand: comparing it with a polymorphic
   operator walks an unknown representation (and mis-orders nan,
   closures raise, ...).  Scalar literals and nullary constructors are
   left alone — the untyped pass cannot see through variables. *)
let structural (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some _) -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_variant (_, Some _) -> true
  | _ -> false

let check_expr ctx (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> check_ident ctx txt e.pexp_loc
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, args)
    when List.mem op comparison_ops ->
      if List.exists (fun (_, a) -> structural a) args then
        emit ctx Rule.poly_compare e.pexp_loc
          (Printf.sprintf
             "polymorphic %s on a structural operand — pattern-match or \
              use a typed equality"
             op)
  | Pexp_try (_, cases) ->
      List.iter
        (fun (c : Parsetree.case) ->
          match (c.pc_lhs.ppat_desc, c.pc_guard) with
          | Parsetree.Ppat_any, None ->
              emit ctx Rule.catch_all c.pc_lhs.ppat_loc
                "catch-all `with _ ->` swallows every exception (including \
                 Out_of_memory, Stack_overflow) — match the exceptions you \
                 mean or bind and re-raise"
          | _ -> ())
        cases
  | _ -> ()

(* Hashtbl leaking into lib/parallel through a type is as much a shared
   mutable table as a value-level use. *)
let check_typ ctx (t : Parsetree.core_type) =
  if in_parallel ctx.path then
    match t.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) -> (
        match lid_path txt with
        | "Hashtbl" :: _ ->
            emit ctx Rule.parallel_hashtbl t.ptyp_loc
              "Hashtbl type in lib/parallel — the domain pool must stay \
               free of shared mutable tables"
        | _ -> ())
    | _ -> ()

let iterator ctx =
  let open Ast_iterator in
  {
    default_iterator with
    expr =
      (fun self e ->
        check_expr ctx e;
        default_iterator.expr self e);
    typ =
      (fun self t ->
        check_typ ctx t;
        default_iterator.typ self t);
  }

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let split_lines s = Array.of_list (String.split_on_char '\n' s)

let parse_diag ~path (loc : Location.t) message =
  {
    Diagnostic.file = path;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    rule = Rule.parse_error;
    message;
    waived = None;
  }

let source ~path contents =
  let lexbuf = Lexing.from_string contents in
  Location.init lexbuf path;
  Location.input_name := path;
  Lexer.init ();
  let is_intf = Filename.check_suffix path ".mli" in
  let parsed =
    try
      if is_intf then Ok (`Intf (Parse.interface lexbuf))
      else Ok (`Impl (Parse.implementation lexbuf))
    with
    | Syntaxerr.Error err ->
        Error (parse_diag ~path (Syntaxerr.location_of_error err) "syntax error")
    | Lexer.Error (_, loc) -> Error (parse_diag ~path loc "lexical error")
  in
  match parsed with
  | Error d -> [ d ]
  | Ok ast ->
      let comments = Lexer.comments () in
      let ctx = { path; diags = [] } in
      let it = iterator ctx in
      (match ast with
      | `Impl str -> it.Ast_iterator.structure it str
      | `Intf sg -> it.Ast_iterator.signature it sg);
      let lines = split_lines contents in
      let waivers, bad = Waiver.collect ~file:path ~lines comments in
      let diags = List.rev_map (Waiver.apply waivers) ctx.diags in
      let stale = Waiver.unused ~file:path waivers in
      List.sort Diagnostic.compare (diags @ bad @ stale)

let sources units =
  let diagnostics =
    List.concat_map (fun (path, contents) -> source ~path contents) units
  in
  { files = List.length units; diagnostics = List.sort Diagnostic.compare diagnostics }

(* ------------------------------------------------------------------ *)
(* Tree walking                                                        *)

let read_file abs =
  let ic = open_in_bin abs in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_unit name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

let rec walk ~root rel acc =
  let abs = Filename.concat root rel in
  let entries = Sys.readdir abs in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      if String.length name > 0 && name.[0] = '.' then acc
      else
        let rel' = rel ^ "/" ^ name in
        let abs' = Filename.concat root rel' in
        if Sys.is_directory abs' then walk ~root rel' acc
        else if is_unit name then rel' :: acc
        else acc)
    acc entries

let tree ~root ~dirs =
  let files =
    List.concat_map
      (fun dir ->
        if Sys.file_exists (Filename.concat root dir) then
          List.rev (walk ~root dir [])
        else [])
      (List.sort String.compare dirs)
  in
  let diagnostics =
    List.concat_map
      (fun rel -> source ~path:rel (read_file (Filename.concat root rel)))
      files
  in
  {
    files = List.length files;
    diagnostics = List.sort Diagnostic.compare diagnostics;
  }
