(** Reviewed-waiver annotations, parsed from the lexer's comment
    stream (so they survive reformatting and multi-line comments —
    unlike the retired grep gate's one-line sed hack).

    Form: {v (* lint: <rule> — reason *) v} where [<rule>] is a rule
    id ([L3]) or mnemonic name ([hashtbl-order]); the reason is
    mandatory — a waiver is a reviewed exception and the review goes
    in the comment.  The separator may be an em/en dash, ["--"], ["-"]
    or [":"].

    Placement: at the end of the offending line, or alone on the line
    directly above it.  A waiver that is malformed, names an unknown
    rule, lacks a reason, targets a non-waivable rule, or matches no
    diagnostic is itself reported under rule L13. *)

type t = {
  rule : Rule.t;
  reason : string;
  governs : int;  (** the source line whose diagnostics it suppresses *)
  at_line : int;  (** where the annotation itself sits (L13 anchor) *)
  at_col : int;
  mutable used : bool;
}

val collect :
  file:string ->
  lines:string array ->
  (string * Location.t) list ->
  t list * Diagnostic.t list
(** Partition the comment stream: well-formed waivers, plus an L13
    diagnostic for each malformed [lint:] annotation.  Comments that
    don't start with [lint:] are ignored. *)

val apply : t list -> Diagnostic.t -> Diagnostic.t
(** Mark the diagnostic waived if an applicable waiver governs its
    line (and the rule is waivable); records the waiver as used. *)

val unused : file:string -> t list -> Diagnostic.t list
(** L13 diagnostics for waivers that matched nothing — stale
    annotations must be deleted, not accumulated. *)
