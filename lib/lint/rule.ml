type severity = Error | Warning

type t = { id : string; name : string; severity : severity; summary : string }

let poly_compare =
  {
    id = "L1";
    name = "poly-compare";
    severity = Error;
    summary =
      "polymorphic compare/equality (bare `compare`, Stdlib.compare, or a \
       comparison operator on a structural operand) — mis-orders nan, \
       records and custom types; use a typed comparator";
  }

let poly_hash =
  {
    id = "L2";
    name = "poly-hash";
    severity = Error;
    summary =
      "Hashtbl.hash / Hashtbl.seeded_hash — representation-dependent and \
       unstable across compiler versions; derive a typed hash";
  }

let hashtbl_order =
  {
    id = "L3";
    name = "hashtbl-order";
    severity = Warning;
    summary =
      "Hashtbl.iter / Hashtbl.fold — iteration order is unspecified; sort \
       the keys before consuming, or waive a commutative accumulation";
  }

let random =
  {
    id = "L4";
    name = "random";
    severity = Error;
    summary =
      "global Random state (Random.self_init, Random.int, ...) — thread a \
       seeded Rng.t / Random.State.t instead";
  }

let wallclock =
  {
    id = "L5";
    name = "wallclock";
    severity = Error;
    summary =
      "wall-clock read (Sys.time, Unix.gettimeofday, ...) outside \
       lib/telemetry or lib/trace — results must not depend on the host \
       clock; waive perf-metadata reads";
  }

let stdout =
  {
    id = "L6";
    name = "stdout";
    severity = Error;
    summary =
      "stdout printing in lib/ — libraries report through Logs, telemetry \
       or a caller-supplied formatter";
  }

let obs_stdout =
  {
    id = "L7";
    name = "obs-stdout";
    severity = Error;
    summary =
      "stdout printing in lib/obs — the measurement plane renders to \
       strings (Top.render, Provenance.render); printing is the CLI's \
       job.  Not waivable";
  }

let catch_all =
  {
    id = "L8";
    name = "catch-all";
    severity = Error;
    summary =
      "`try ... with _ ->` swallows every exception (including \
       Out_of_memory and Stack_overflow) — match the exceptions you mean";
  }

let obj_magic =
  {
    id = "L9";
    name = "obj-magic";
    severity = Error;
    summary = "Obj.magic defeats the type system";
  }

let marshal =
  {
    id = "L10";
    name = "marshal";
    severity = Error;
    summary =
      "Marshal outside the checkpoint modules — its format is \
       compiler-version-specific and un-diffable; use the textual \
       checkpoint or flight encodings";
  }

let parallel_hashtbl =
  {
    id = "L11";
    name = "parallel-hashtbl";
    severity = Error;
    summary =
      "Hashtbl in lib/parallel — the domain pool must stay free of shared \
       mutable tables";
  }

let parse_error =
  {
    id = "L12";
    name = "parse-error";
    severity = Error;
    summary = "source does not parse — the analyzer cannot certify it";
  }

let bad_waiver =
  {
    id = "L13";
    name = "bad-waiver";
    severity = Error;
    summary =
      "malformed, unknown, reason-less or unused (* lint: ... *) waiver";
  }

let catalog =
  [
    poly_compare; poly_hash; hashtbl_order; random; wallclock; stdout;
    obs_stdout; catch_all; obj_magic; marshal; parallel_hashtbl; parse_error;
    bad_waiver;
  ]

(* The pre-AST grep gate accepted bare (* lint: hashtbl *) for reviewed
   Hashtbl sites in lib/parallel; keep the token resolving to the same
   rule so old annotations stay meaningful (they still need a reason). *)
let legacy_aliases = [ ("hashtbl", parallel_hashtbl) ]

let find token =
  let eq r = String.equal r.id token || String.equal r.name token in
  match List.find_opt eq catalog with
  | Some r -> Some r
  | None ->
      List.find_opt (fun (a, _) -> String.equal a token) legacy_aliases
      |> Option.map snd

let waivable r =
  not
    (String.equal r.id obs_stdout.id
    || String.equal r.id parse_error.id
    || String.equal r.id bad_waiver.id)

let severity_to_string = function Error -> "error" | Warning -> "warning"
