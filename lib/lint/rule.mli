(** The determinism & purity rule catalog.

    Every guarantee the system sells — byte-identical results across
    [--jobs], digest-protected soak checkpoints, golden diffs,
    depart/re-admit fingerprint equality — rests on the code being
    deterministic and pure.  These rules are the machine-checked form
    of that contract; [Analyze] enforces them over the parsetree of
    every [.ml]/[.mli] under [lib/], [bin/], [bench/] and [tools/].

    A diagnostic can be waived at the offending site with a reviewed
    annotation carrying the rule id (or mnemonic name) and a reason:

    {v (* lint: L3 — commutative sum, order cannot leak *) v}

    except for the rules where [waivable] is [false]. *)

type severity = Error | Warning

type t = {
  id : string;  (** stable short id, ["L1"].. — the waiver token *)
  name : string;  (** mnemonic, also accepted in waivers, e.g. ["stdout"] *)
  severity : severity;
      (** [Error]: a determinism/purity breach.  [Warning]: a
          conservative heuristic (the site may be benign, but must be
          reviewed and waived).  Both gate [make lint]: the analyzer
          exits non-zero on any unwaivered diagnostic. *)
  summary : string;  (** one line for [--list-rules] and the docs *)
}

val poly_compare : t  (** L1 *)

val poly_hash : t  (** L2 *)

val hashtbl_order : t  (** L3 *)

val random : t  (** L4 *)

val wallclock : t  (** L5 *)

val stdout : t  (** L6 *)

val obs_stdout : t  (** L7 — never waivable *)

val catch_all : t  (** L8 *)

val obj_magic : t  (** L9 *)

val marshal : t  (** L10 *)

val parallel_hashtbl : t  (** L11 *)

val parse_error : t  (** L12 — unparseable source; never waivable *)

val bad_waiver : t  (** L13 — malformed/unknown/unused waiver; never waivable *)

val catalog : t list
(** All rules, in id order. *)

val find : string -> t option
(** Look a rule up by [id], by [name], or by a legacy grep-gate alias
    (["hashtbl"] for L11, kept so pre-AST annotations keep meaning the
    same thing). *)

val waivable : t -> bool
(** [false] for L7 (lib/obs prints are rejected annotation or not),
    L12 and L13. *)

val severity_to_string : severity -> string
