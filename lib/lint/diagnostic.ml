type t = {
  file : string;
  line : int;
  col : int;
  rule : Rule.t;
  message : string;
  waived : string option;
}

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule.Rule.id b.rule.Rule.id

let active ds = List.filter (fun d -> Option.is_none d.waived) ds

let to_text d =
  Printf.sprintf "%s:%d:%d: [%s %s] %s" d.file d.line d.col d.rule.Rule.id
    d.rule.Rule.name d.message

let schema = "apple-lint/1"

let count_if p l = List.length (List.filter p l)

let summary ds =
  let act = active ds in
  let errors =
    count_if (fun d -> d.rule.Rule.severity = Rule.Error) act
  and warnings =
    count_if (fun d -> d.rule.Rule.severity = Rule.Warning) act
  in
  (List.length act, List.length ds - List.length act, errors, warnings)

let report_text ~files ds =
  let ds = List.sort compare ds in (* lint: L1 — this module's typed compare, shadowing the polymorphic one *)
  let act_n, waived_n, errors, warnings = summary ds in
  let buf = Buffer.create 1024 in
  List.iter
    (fun d ->
      if Option.is_none d.waived then (
        Buffer.add_string buf (to_text d);
        Buffer.add_char buf '\n'))
    ds;
  if act_n = 0 then
    Buffer.add_string buf
      (Printf.sprintf "lint: clean (%d file(s), %d waived)\n" files waived_n)
  else
    Buffer.add_string buf
      (Printf.sprintf
         "lint: %d active diagnostic(s) (%d error(s), %d warning(s)) in %d \
          file(s), %d waived\n"
         act_n errors warnings files waived_n);
  Buffer.contents buf

(* Hand-rolled JSON, like the bench/telemetry exporters: no dependency,
   deterministic key order. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_json ~files ds =
  let ds = List.sort compare ds in (* lint: L1 — this module's typed compare, shadowing the polymorphic one *)
  let act_n, waived_n, errors, warnings = summary ds in
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add (Printf.sprintf "{\n  \"schema\": \"%s\",\n" schema);
  add (Printf.sprintf "  \"files\": %d,\n" files);
  add "  \"rules\": [\n";
  List.iteri
    (fun i (r : Rule.t) ->
      add
        (Printf.sprintf
           "    {\"id\": \"%s\", \"name\": \"%s\", \"severity\": \"%s\", \
            \"waivable\": %b, \"summary\": \"%s\"}%s\n"
           r.id r.name
           (Rule.severity_to_string r.severity)
           (Rule.waivable r) (json_escape r.summary)
           (if i = List.length Rule.catalog - 1 then "" else ",")))
    Rule.catalog;
  add "  ],\n";
  add "  \"diagnostics\": [\n";
  List.iteri
    (fun i d ->
      let reason =
        match d.waived with
        | None -> "null"
        | Some r -> Printf.sprintf "\"%s\"" (json_escape r)
      in
      add
        (Printf.sprintf
           "    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \
            \"%s\", \"name\": \"%s\", \"severity\": \"%s\", \"waived\": %b, \
            \"reason\": %s, \"message\": \"%s\"}%s\n"
           (json_escape d.file) d.line d.col d.rule.Rule.id d.rule.Rule.name
           (Rule.severity_to_string d.rule.Rule.severity)
           (Option.is_some d.waived) reason (json_escape d.message)
           (if i = List.length ds - 1 then "" else ",")))
    ds;
  add "  ],\n";
  add
    (Printf.sprintf
       "  \"summary\": {\"active\": %d, \"waived\": %d, \"errors\": %d, \
        \"warnings\": %d}\n"
       act_n waived_n errors warnings);
  add "}\n";
  Buffer.contents buf
