(** The demo corpus: one tiny fixture per rule (plus waiver-behavior
    fixtures), each declaring the active diagnostics it must produce.
    [test/test_lint.ml] asserts every expectation and the JSON golden
    ([test/goldens/lint_fixtures.json], refreshed by [make goldens])
    freezes the full [apple-lint/1] report over this corpus. *)

type fixture = {
  fname : string;  (** virtual root-relative path — selects scoped rules *)
  source : string;
  expect : (string * int) list;
      (** active diagnostics as (rule id, 1-based line), in report order *)
}

val fixtures : fixture list

val report_json : unit -> string
(** The [apple-lint/1] report over the whole corpus. *)
