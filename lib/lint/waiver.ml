type t = {
  rule : Rule.t;
  reason : string;
  governs : int;
  at_line : int;
  at_col : int;
  mutable used : bool;
}

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let trim = String.trim

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let drop n s = String.sub s n (String.length s - n)

(* Strip one reason separator: em dash, en dash, "--", "-" or ":". *)
let strip_separator s =
  if has_prefix ~prefix:"\xe2\x80\x94" s || has_prefix ~prefix:"\xe2\x80\x93" s
  then drop 3 s
  else if has_prefix ~prefix:"--" s then drop 2 s
  else if has_prefix ~prefix:"-" s || has_prefix ~prefix:":" s then drop 1 s
  else s

let line_at lines n =
  if n >= 1 && n <= Array.length lines then lines.(n - 1) else ""

let non_ws_in s lo hi =
  let hi = min hi (String.length s) in
  let rec scan i =
    if i >= hi then false else if is_ws s.[i] then scan (i + 1) else true
  in
  scan (max 0 lo)

(* Which line does a comment govern?  Code before it on its own line →
   that line; otherwise the line after the comment ends (code trailing
   the close on the same line counts as that line). *)
let governed_line ~lines (loc : Location.t) =
  let sl = loc.loc_start.pos_lnum and el = loc.loc_end.pos_lnum in
  let scol = loc.loc_start.pos_cnum - loc.loc_start.pos_bol in
  let ecol = loc.loc_end.pos_cnum - loc.loc_end.pos_bol in
  if non_ws_in (line_at lines sl) 0 scol then sl
  else if non_ws_in (line_at lines el) ecol max_int then el
  else el + 1

let bad ~file (loc : Location.t) fmt =
  Printf.ksprintf
    (fun message ->
      {
        Diagnostic.file;
        line = loc.loc_start.pos_lnum;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        rule = Rule.bad_waiver;
        message;
        waived = None;
      })
    fmt

let collect ~file ~lines comments =
  let waivers = ref [] and diags = ref [] in
  List.iter
    (fun (text, loc) ->
      let text = trim text in
      if has_prefix ~prefix:"lint:" text then begin
        let rest = trim (drop 5 text) in
        let token, tail =
          match String.index_opt rest ' ' with
          | None -> (rest, "")
          | Some i -> (String.sub rest 0 i, drop i rest)
        in
        let reason = trim (strip_separator (trim tail)) in
        match Rule.find token with
        | None ->
            diags :=
              bad ~file loc
                "unknown rule %S in waiver — valid tokens are rule ids \
                 (L1..L13) and mnemonic names"
                token
              :: !diags
        | Some rule when not (Rule.waivable rule) ->
            diags :=
              bad ~file loc "rule %s (%s) cannot be waived" rule.Rule.id
                rule.Rule.name
              :: !diags
        | Some rule when String.equal reason "" ->
            diags :=
              bad ~file loc
                "waiver needs a reason: (* lint: %s — why this site is safe *)"
                rule.Rule.id
              :: !diags
        | Some rule ->
            waivers :=
              {
                rule;
                reason;
                governs = governed_line ~lines loc;
                at_line = loc.loc_start.pos_lnum;
                at_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
                used = false;
              }
              :: !waivers
      end)
    comments;
  (List.rev !waivers, List.rev !diags)

let apply waivers (d : Diagnostic.t) =
  if not (Rule.waivable d.rule) then d
  else
    match
      List.find_opt
        (fun w ->
          w.governs = d.line && String.equal w.rule.Rule.id d.rule.Rule.id)
        waivers
    with
    | None -> d
    | Some w ->
        w.used <- true;
        { d with waived = Some w.reason }

let unused ~file waivers =
  List.filter_map
    (fun w ->
      if w.used then None
      else
        Some
          {
            Diagnostic.file;
            line = w.at_line;
            col = w.at_col;
            rule = Rule.bad_waiver;
            message =
              Printf.sprintf
                "waiver for %s (%s) matches no diagnostic on line %d — \
                 delete the stale annotation"
                w.rule.Rule.id w.rule.Rule.name w.governs;
            waived = None;
          })
    waivers
