(** Structured, location-addressed lint diagnostics and the two report
    renderers (human text, versioned JSON).  Pure: everything renders
    to strings; printing is the driver's job. *)

type t = {
  file : string;  (** path relative to the analysis root, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in [file:line:col] compiler output *)
  rule : Rule.t;
  message : string;
  waived : string option;  (** [Some reason] when a reviewed waiver covers it *)
}

val compare : t -> t -> int
(** Order by file, line, col, rule id — the deterministic report order. *)

val active : t list -> t list
(** The diagnostics that gate the build: everything not waived. *)

val to_text : t -> string
(** ["file:line:col: \[L6 stdout\] message"] (one line, no newline). *)

val schema : string
(** The versioned JSON schema identifier, ["apple-lint/1"].  Bump on
    any incompatible change and update EXPERIMENTS.md in step —
    [tools/check_lint_schema.sh] gates that. *)

val report_text : files:int -> t list -> string
(** Human report: active diagnostics one per line, then a summary line
    ([lint: clean ...] or [lint: N active diagnostic(s) ...]). *)

val report_json : files:int -> t list -> string
(** The [apple-lint/1] report: rule catalog, every diagnostic (waived
    ones included, with their reasons) and a summary block.  Keys are
    stable; consumers must key on presence, not position. *)
