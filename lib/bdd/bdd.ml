(* Hash-consed ROBDD implementation.  Nodes live in a growable arena; a
   node is an int index.  Index 0 is FALSE, index 1 is TRUE. *)

type t = int

type man = {
  mutable var_ : int array;  (* variable at node *)
  mutable low : int array;  (* else branch *)
  mutable high : int array;  (* then branch *)
  mutable next_free : int;
  unique : (int * int * int, int) Hashtbl.t;  (* (var, low, high) -> node *)
  and_cache : (int * int, int) Hashtbl.t;
  xor_cache : (int * int, int) Hashtbl.t;
  not_cache : (int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
}

let bdd_false (_ : man) : t = 0
let bdd_true (_ : man) : t = 1

let man ?(cache_size = 1 lsl 12) () =
  let cap = 1024 in
  let m =
    {
      var_ = Array.make cap max_int;
      low = Array.make cap 0;
      high = Array.make cap 0;
      next_free = 2;
      unique = Hashtbl.create cap;
      and_cache = Hashtbl.create cache_size;
      xor_cache = Hashtbl.create cache_size;
      not_cache = Hashtbl.create cache_size;
      ite_cache = Hashtbl.create cache_size;
    }
  in
  (* Terminals carry a sentinel variable greater than any real one. *)
  m.var_.(0) <- max_int;
  m.var_.(1) <- max_int;
  m

let grow m =
  let cap = Array.length m.var_ in
  let ncap = cap * 2 in
  let copy src dflt =
    let dst = Array.make ncap dflt in
    Array.blit src 0 dst 0 cap;
    dst
  in
  m.var_ <- copy m.var_ max_int;
  m.low <- copy m.low 0;
  m.high <- copy m.high 0

let mk m v lo hi =
  if lo = hi then lo
  else
    let key = (v, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        if m.next_free >= Array.length m.var_ then grow m;
        let n = m.next_free in
        m.next_free <- n + 1;
        m.var_.(n) <- v;
        m.low.(n) <- lo;
        m.high.(n) <- hi;
        Hashtbl.add m.unique key n;
        n

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative variable";
  mk m i 0 1

let nvar m i =
  if i < 0 then invalid_arg "Bdd.nvar: negative variable";
  mk m i 1 0

let rec bdd_not m a =
  if a = 0 then 1
  else if a = 1 then 0
  else
    match Hashtbl.find_opt m.not_cache a with
    | Some r -> r
    | None ->
        let r = mk m m.var_.(a) (bdd_not m m.low.(a)) (bdd_not m m.high.(a)) in
        Hashtbl.add m.not_cache a r;
        r

let rec bdd_and m a b =
  if a = b then a
  else if a = 0 || b = 0 then 0
  else if a = 1 then b
  else if b = 1 then a
  else
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.and_cache key with
    | Some r -> r
    | None ->
        let va = m.var_.(a) and vb = m.var_.(b) in
        let v = min va vb in
        let a0 = if va = v then m.low.(a) else a in
        let a1 = if va = v then m.high.(a) else a in
        let b0 = if vb = v then m.low.(b) else b in
        let b1 = if vb = v then m.high.(b) else b in
        let r = mk m v (bdd_and m a0 b0) (bdd_and m a1 b1) in
        Hashtbl.add m.and_cache key r;
        r

let bdd_or m a b = bdd_not m (bdd_and m (bdd_not m a) (bdd_not m b))

let rec bdd_xor m a b =
  if a = b then 0
  else if a = 0 then b
  else if b = 0 then a
  else if a = 1 then bdd_not m b
  else if b = 1 then bdd_not m a
  else
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.xor_cache key with
    | Some r -> r
    | None ->
        let va = m.var_.(a) and vb = m.var_.(b) in
        let v = min va vb in
        let a0 = if va = v then m.low.(a) else a in
        let a1 = if va = v then m.high.(a) else a in
        let b0 = if vb = v then m.low.(b) else b in
        let b1 = if vb = v then m.high.(b) else b in
        let r = mk m v (bdd_xor m a0 b0) (bdd_xor m a1 b1) in
        Hashtbl.add m.xor_cache key r;
        r

let bdd_diff m a b = bdd_and m a (bdd_not m b)
let bdd_imp m a b = bdd_or m (bdd_not m a) b

let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
        let top n = m.var_.(n) in
        let v = min (top f) (min (top g) (top h)) in
        let branch n side =
          if top n = v then if side then m.high.(n) else m.low.(n) else n
        in
        let r =
          mk m v
            (ite m (branch f false) (branch g false) (branch h false))
            (ite m (branch f true) (branch g true) (branch h true))
        in
        Hashtbl.add m.ite_cache key r;
        r

let exists m vars a =
  let vset = List.sort_uniq Int.compare vars in
  let cache = Hashtbl.create 64 in
  let rec go a =
    if a <= 1 then a
    else
      match Hashtbl.find_opt cache a with
      | Some r -> r
      | None ->
          let v = m.var_.(a) in
          let lo = go m.low.(a) and hi = go m.high.(a) in
          let r = if List.mem v vset then bdd_or m lo hi else mk m v lo hi in
          Hashtbl.add cache a r;
          r
  in
  go a

let equal (a : t) (b : t) = a = b
let is_true (_ : man) a = a = 1
let is_false (_ : man) a = a = 0

(* One root-to-terminal descent: O(depth), allocation-free.  This is the
   hot-path primitive the compiled dataplane uses to test a concrete
   header against a predicate. *)
let eval m a f =
  let n = ref a in
  while !n > 1 do
    n := if f m.var_.(!n) then m.high.(!n) else m.low.(!n)
  done;
  !n = 1

let cube m literals =
  List.fold_left
    (fun acc (i, pos) -> bdd_and m acc (if pos then var m i else nvar m i))
    (bdd_true m) literals

let sat_count m ~num_vars a =
  let cache = Hashtbl.create 64 in
  (* count n = satisfying assignments over variables [var_(n), num_vars). *)
  let rec count n =
    if n = 0 then 0.0
    else if n = 1 then 1.0
    else
      match Hashtbl.find_opt cache n with
      | Some c -> c
      | None ->
          let v = m.var_.(n) in
          let weight child =
            let vc = if child <= 1 then num_vars else m.var_.(child) in
            count child *. (2.0 ** float_of_int (vc - v - 1))
          in
          let c = weight m.low.(n) +. weight m.high.(n) in
          Hashtbl.add cache n c;
          c
  in
  if a = 0 then 0.0
  else if a = 1 then 2.0 ** float_of_int num_vars
  else count a *. (2.0 ** float_of_int m.var_.(a))

let any_sat m a =
  let rec go acc n =
    if n = 0 then None
    else if n = 1 then Some (List.rev acc)
    else
      let v = m.var_.(n) in
      if m.high.(n) <> 0 then go ((v, true) :: acc) m.high.(n)
      else go ((v, false) :: acc) m.low.(n)
  in
  go [] a

let fold_paths m a ~init ~f =
  let rec go acc path n =
    if n = 0 then acc
    else if n = 1 then f acc (List.rev path)
    else
      let v = m.var_.(n) in
      let acc = go acc ((v, false) :: path) m.low.(n) in
      go acc ((v, true) :: path) m.high.(n)
  in
  go init [] a

let size m a =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if n > 1 && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      go m.low.(n);
      go m.high.(n)
    end
  in
  go a;
  Hashtbl.length seen

let node_count m = m.next_free
