(** Hash-consed reduced ordered binary decision diagrams.

    The classifier compiles packet-header predicates (prefix and wildcard
    matches) to BDDs and computes {e atomic predicates} (Yang & Lam,
    ICNP 2013) — the coarsest partition of header space such that every
    predicate is a union of atoms.  Flows are then grouped into the paper's
    equivalence classes.

    Variables are identified by non-negative integers; variable order is
    the integer order (smaller index closer to the root).  All operations
    are memoized; a manager owns the unique-table and caches. *)

type man
(** BDD manager (unique table + operation caches). *)

type t
(** A node handle, valid for the manager that created it. *)

val man : ?cache_size:int -> unit -> man
(** Fresh manager. *)

val bdd_true : man -> t
val bdd_false : man -> t

val var : man -> int -> t
(** [var m i] is the predicate "bit [i] is 1". *)

val nvar : man -> int -> t
(** [nvar m i] is the predicate "bit [i] is 0". *)

val bdd_not : man -> t -> t
val bdd_and : man -> t -> t -> t
val bdd_or : man -> t -> t -> t
val bdd_xor : man -> t -> t -> t
val bdd_diff : man -> t -> t -> t
(** [bdd_diff m a b] is [a && not b]. *)

val bdd_imp : man -> t -> t -> t

val ite : man -> t -> t -> t -> t
(** If-then-else combinator. *)

val exists : man -> int list -> t -> t
(** Existential quantification over the listed variables. *)

val equal : t -> t -> bool
(** Constant-time semantic equality (hash-consing). *)

val is_true : man -> t -> bool
val is_false : man -> t -> bool

val eval : man -> t -> (int -> bool) -> bool
(** [eval m a f] decides [a] under the total assignment [f] (bit [i] is
    [f i]) by a single root-to-terminal descent: O(depth),
    allocation-free.  The compiled dataplane's per-entry matcher. *)

val cube : man -> (int * bool) list -> t
(** Conjunction of literals: [(i, true)] means bit i set. *)

val sat_count : man -> num_vars:int -> t -> float
(** Number of satisfying assignments over [num_vars] variables (as float:
    header spaces have up to 2^104 points). *)

val any_sat : man -> t -> (int * bool) list option
(** Some satisfying partial assignment (unlisted variables are free), or
    [None] for the false BDD. *)

val fold_paths : man -> t -> init:'a -> f:('a -> (int * bool) list -> 'a) -> 'a
(** Fold over all true paths (partial assignments / wildcard cubes) of the
    BDD.  Used to turn predicates back into TCAM wildcard rules. *)

val size : man -> t -> int
(** Number of distinct internal nodes reachable from [t]. *)

val node_count : man -> int
(** Total nodes ever created in the manager. *)
