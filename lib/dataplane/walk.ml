module Counters = Apple_obs.Counters
module Flight = Apple_obs.Flight

type trace = {
  visited : int list;
  instances : int list;
  rule_path : (int * int) list;
  final_host_tag : Tag.host_field;
  subclass_tag : int option;
}

type error =
  | No_matching_rule of int
  | Vswitch_miss of int
  | Host_loop of int
  | Wrong_host of { switch : int; wanted : int }
  | Link_dead of { from : int; to_ : int }
  | Switch_dead of int
  | Instance_dead of { switch : int; instance : int }

exception Walk_error of error

(* Integer encodings shared with the flight recorder (documented in
   Apple_obs.Flight and decoded by Apple_obs.Provenance). *)
let host_code = function Tag.Empty -> -1 | Tag.Fin -> -2 | Tag.Host h -> h

let action_code = function
  | Rule.Fwd_to_host _ -> 0
  | Rule.Tag_and_deliver _ -> 1
  | Rule.Tag_and_forward _ -> 2
  | Rule.Set_host_and_forward _ -> 3
  | Rule.Goto_next -> 4

let error_code = function
  | No_matching_rule _ -> 1
  | Vswitch_miss _ -> 2
  | Host_loop _ -> 3
  | Wrong_host _ -> 4
  | Link_dead _ -> 5
  | Switch_dead _ -> 6
  | Instance_dead _ -> 7

let error_switch = function
  | No_matching_rule sw | Vswitch_miss sw | Host_loop sw | Switch_dead sw -> sw
  | Wrong_host { switch; _ } -> switch
  | Link_dead { from; _ } -> from
  | Instance_dead { switch; _ } -> switch

(* Engine dispatch: the interpreted walker is the reference
   implementation, the compiled tables its drop-in replacement; the
   process-wide Compiled.mode (CLI: --dataplane) picks per lookup, so
   every caller — and every Flight/Counter side effect — is shared. *)
let phys_lookup table tags ~src_ip =
  match Compiled.mode () with
  | Compiled.Interp -> Tcam.lookup_phys_entry table tags ~src_ip
  | Compiled.Compiled -> Compiled.lookup_phys_entry table tags ~src_ip

let vswitch_lookup table port ~cls ~subclass =
  match Compiled.mode () with
  | Compiled.Interp -> Tcam.lookup_vswitch table port ~cls ~subclass
  | Compiled.Compiled -> Compiled.lookup_vswitch table port ~cls ~subclass

(* Process the packet inside the APPLE host attached to [sw]: follow
   vSwitch rules from [entry_port] until a Back_to_network action.
   [header_valid] reflects whether header-derived class matching is still
   possible; traversing a rewriting instance clears it. *)
let host_processing net ~sw ~cls ~tags ~entry_port ~record_instance ~rewriters
    ~header_valid ~inst_dead =
  let table = net.(sw) in
  let subclass =
    match tags.Tag.subclass with
    | Some s -> s
    | None -> raise (Walk_error (Vswitch_miss sw))
  in
  let budget = ref 64 in
  let rec step port =
    decr budget;
    if !budget <= 0 then raise (Walk_error (Host_loop sw));
    let cls_match = if !header_valid then Some cls else None in
    match vswitch_lookup table port ~cls:cls_match ~subclass with
    | None -> raise (Walk_error (Vswitch_miss sw))
    | Some (Rule.To_instance inst) ->
        if inst_dead inst then
          raise (Walk_error (Instance_dead { switch = sw; instance = inst }));
        record_instance ~sw inst;
        if rewriters inst then header_valid := false;
        step (Rule.From_instance inst)
    | Some (Rule.Back_to_network next_host) -> tags.Tag.host <- next_host
  in
  step entry_port

let tr_walk = Apple_trace.Trace.span ~cat:"dataplane" "dataplane.walk"

(* Failure-mask predicates; with no mask (or a clear one) every check
   collapses to a constant.  Hoisted out of the walk so a batch pays for
   them once. *)
let mask_preds = function
  | Some m when not (Failmask.is_clear m) ->
      (Failmask.switch_down m, Failmask.link_down m, Failmask.instance_down m)
  | Some _ | None -> ((fun _ -> false), (fun _ _ -> false), fun _ -> false)

let run_one net ~preds ~path ~cls ~src_ip ~start_in_host ~rewriters ~flow () =
  Apple_trace.Trace.with_ ~cls tr_walk @@ fun () ->
  let obs = Counters.enabled () in
  let sw_dead, link_dead, inst_dead = preds in
  let tags = Tag.fresh () in
  let visited = ref [] in
  let stages = ref [] in
  let rules = ref [] in
  let header_valid = ref true in
  let record_instance ~sw i =
    stages := i :: !stages;
    if obs then Flight.record Flight.Inst_enter ~a:flow ~b:sw ~c:i ()
  in
  let record_tag () =
    if obs then
      Flight.record Flight.Tag_set ~a:flow
        ~b:(Option.value ~default:(-1) tags.Tag.subclass)
        ~c:(host_code tags.Tag.host) ()
  in
  (* Physical lookup with per-rule provenance: remember (switch, uid)
     and emit a flight event for every match. *)
  let lookup table ~sw =
    match phys_lookup table tags ~src_ip with
    | None -> None
    | Some (uid, action) ->
        rules := (sw, uid) :: !rules;
        if obs then
          Flight.record Flight.Rule_match ~a:flow ~b:sw ~c:uid
            ~d:(action_code action) ();
        Some action
  in
  let enter_host sw ~entry_port =
    host_processing net ~sw ~cls ~tags ~entry_port ~record_instance ~rewriters
      ~header_valid ~inst_dead
  in
  if obs then
    Flight.record Flight.Walk_start ~a:flow ~b:cls ~c:src_ip
      ~d:(match path with sw :: _ -> sw | [] -> -1) ();
  try
    (match (path, start_in_host) with
    | first :: _, true ->
        if sw_dead first then raise (Walk_error (Switch_dead first));
        (* Traffic born in a production VM inside the first hop's host:
           the vSwitch tags it before it ever reaches the switch.  The
           classification rules live in the vSwitch mirror of the ingress
           table; we model it as the physical classification applied
           immediately, then host processing if the first host is local. *)
        (match lookup net.(first) ~sw:first with
        | Some (Rule.Tag_and_deliver { subclass; host }) ->
            tags.Tag.subclass <- Some subclass;
            record_tag ();
            if host <> first then raise (Walk_error (Wrong_host { switch = first; wanted = host }));
            enter_host first ~entry_port:Rule.From_production_vm
        | Some (Rule.Tag_and_forward { subclass; host }) ->
            tags.Tag.subclass <- Some subclass;
            tags.Tag.host <- host;
            record_tag ()
        | Some (Rule.Fwd_to_host _ | Rule.Set_host_and_forward _ | Rule.Goto_next)
        | None ->
            raise (Walk_error (No_matching_rule first)))
    | _ -> ());
    let rec hop = function
      | [] -> ()
      | sw :: rest ->
          (match !visited with
          | prev :: _ when link_dead prev sw ->
              raise (Walk_error (Link_dead { from = prev; to_ = sw }))
          | _ -> ());
          if sw_dead sw then raise (Walk_error (Switch_dead sw));
          visited := sw :: !visited;
          (match lookup net.(sw) ~sw with
          | None -> raise (Walk_error (No_matching_rule sw))
          | Some (Rule.Goto_next) -> ()
          | Some (Rule.Fwd_to_host host) ->
              if host <> sw then
                raise (Walk_error (Wrong_host { switch = sw; wanted = host }));
              enter_host sw ~entry_port:Rule.From_network
          | Some (Rule.Tag_and_deliver { subclass; host }) ->
              tags.Tag.subclass <- Some subclass;
              record_tag ();
              if host <> sw then
                raise (Walk_error (Wrong_host { switch = sw; wanted = host }));
              enter_host sw ~entry_port:Rule.From_network
          | Some (Rule.Tag_and_forward { subclass; host }) ->
              tags.Tag.subclass <- Some subclass;
              tags.Tag.host <- host;
              record_tag ()
          | Some (Rule.Set_host_and_forward host) ->
              tags.Tag.host <- host;
              record_tag ());
          hop rest
    in
    (* If the packet was pre-tagged inside the first host, the first
       switch still sees it with its (possibly local) host tag. *)
    hop path;
    if obs then Flight.record Flight.Walk_end ~a:flow ~b:0 ();
    Ok
      {
        visited = List.rev !visited;
        instances = List.rev !stages;
        rule_path = List.rev !rules;
        final_host_tag = tags.Tag.host;
        subclass_tag = tags.Tag.subclass;
      }
  with Walk_error e ->
    if obs then begin
      (* Fault-window losses additionally get a structured Blackhole
         event so [apple trace] can name the dead element. *)
      (match e with
      | Link_dead { from; to_ } ->
          Flight.record Flight.Blackhole ~a:flow ~b:from ~c:to_ ~d:0 ()
      | Switch_dead sw ->
          Flight.record Flight.Blackhole ~a:flow ~b:sw ~c:(-1) ~d:1 ()
      | Instance_dead { switch; instance } ->
          Flight.record Flight.Blackhole ~a:flow ~b:switch ~c:instance ~d:2 ()
      | No_matching_rule _ | Vswitch_miss _ | Host_loop _ | Wrong_host _ -> ());
      Flight.record Flight.Walk_end ~a:flow ~b:(error_code e)
        ~c:(error_switch e) ()
    end;
    Error e

let run net ~path ~cls ~src_ip ?(start_in_host = false)
    ?(rewriters = fun _ -> false) ?(flow = -1) ?mask () =
  run_one net ~preds:(mask_preds mask) ~path ~cls ~src_ip ~start_in_host
    ~rewriters ~flow ()

type request = {
  rq_path : int list;
  rq_cls : int;
  rq_src_ip : int;
  rq_start_in_host : bool;
  rq_flow : int;
}

let run_batch net ~requests ?(rewriters = fun _ -> false) ?mask () =
  (* Per-batch amortization: compile every table once up front (a no-op
     under the interpreter) and build the failmask predicates once, so
     the per-walk loop touches only warmed structures.  Each walk still
     opens its own dataplane.walk span and emits the same Flight events
     as a standalone [run] — batch vs sequential is byte-identical. *)
  Compiled.warm net;
  let preds = mask_preds mask in
  Array.map
    (fun rq ->
      run_one net ~preds ~path:rq.rq_path ~cls:rq.rq_cls ~src_ip:rq.rq_src_ip
        ~start_in_host:rq.rq_start_in_host ~rewriters ~flow:rq.rq_flow ())
    requests

let policy_enforced trace ~instance_kind ~chain =
  let kinds = List.map instance_kind trace.instances in
  kinds = chain

let interference_free trace ~path = trace.visited = path

let pp_error ppf = function
  | No_matching_rule sw -> Format.fprintf ppf "no matching rule at switch %d" sw
  | Vswitch_miss sw -> Format.fprintf ppf "vSwitch lookup miss at switch %d" sw
  | Host_loop sw -> Format.fprintf ppf "vSwitch rule loop at switch %d" sw
  | Wrong_host { switch; wanted } ->
      Format.fprintf ppf "switch %d asked to deliver to non-local host %d"
        switch wanted
  | Link_dead { from; to_ } ->
      Format.fprintf ppf "blackhole: link %d-%d is down" from to_
  | Switch_dead sw -> Format.fprintf ppf "blackhole: switch %d is down" sw
  | Instance_dead { switch; instance } ->
      Format.fprintf ppf "blackhole: VNF instance %d at switch %d is dead"
        instance switch
