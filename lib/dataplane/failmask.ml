type t = {
  switches : (int, unit) Hashtbl.t;
  links : (int * int, unit) Hashtbl.t;
  instances : (int, unit) Hashtbl.t;
  (* Cached emptiness so the healthy-network fast path is one branch. *)
  mutable failures : int;
}

let create () =
  {
    switches = Hashtbl.create 8;
    links = Hashtbl.create 8;
    instances = Hashtbl.create 8;
    failures = 0;
  }

let is_clear t = t.failures = 0

let clear t =
  Hashtbl.reset t.switches;
  Hashtbl.reset t.links;
  Hashtbl.reset t.instances;
  t.failures <- 0

let add tbl t key =
  if not (Hashtbl.mem tbl key) then begin
    Hashtbl.replace tbl key ();
    t.failures <- t.failures + 1
  end

let remove tbl t key =
  if Hashtbl.mem tbl key then begin
    Hashtbl.remove tbl key;
    t.failures <- t.failures - 1
  end

let fail_switch t sw = add t.switches t sw
let restore_switch t sw = remove t.switches t sw
let switch_down t sw = t.failures > 0 && Hashtbl.mem t.switches sw

let link_key u v = if u <= v then (u, v) else (v, u)
let fail_link t u v = add t.links t (link_key u v)
let restore_link t u v = remove t.links t (link_key u v)
let link_down t u v = t.failures > 0 && Hashtbl.mem t.links (link_key u v)

let fail_instance t id = add t.instances t id
let restore_instance t id = remove t.instances t id
let instance_down t id = t.failures > 0 && Hashtbl.mem t.instances id

let failed_instances t =
  (* lint: L3 — order erased by the sort below *)
  Hashtbl.fold (fun id () acc -> id :: acc) t.instances []
  |> List.sort Int.compare

let failed_switches t =
  (* lint: L3 — order erased by the sort below *)
  Hashtbl.fold (fun sw () acc -> sw :: acc) t.switches []
  |> List.sort Int.compare

let failed_links t =
  (* lint: L3 — order erased by the sort below *)
  Hashtbl.fold (fun l () acc -> l :: acc) t.links []
  |> List.sort (fun (a, b) (c, d) ->
         match Int.compare a c with 0 -> Int.compare b d | n -> n)
