(** Failure masks: which switches, links and VNF instances are currently
    dead, as seen by the data plane.

    The chaos engine flips entries here on the simulation clock; {!Walk}
    (and through it the packet simulator and the verifier's probe walks)
    consults the mask so a packet hitting a failed element surfaces as a
    structured blackhole instead of a silent wrong answer.  An empty mask
    is free: every check is a hash lookup guarded by an emptiness test.

    Links are undirected: failing (u, v) also fails (v, u). *)

type t

val create : unit -> t
(** Everything healthy. *)

val is_clear : t -> bool
(** No switch, link or instance is currently failed. *)

val clear : t -> unit
(** Restore everything at once (end of a chaos run). *)

(** {2 Switches} *)

val fail_switch : t -> int -> unit
val restore_switch : t -> int -> unit
val switch_down : t -> int -> bool

(** {2 Links} *)

val fail_link : t -> int -> int -> unit
val restore_link : t -> int -> int -> unit
val link_down : t -> int -> int -> bool

(** {2 VNF instances} *)

val fail_instance : t -> int -> unit
val restore_instance : t -> int -> unit
val instance_down : t -> int -> bool

val failed_instances : t -> int list
(** Currently failed instance ids, ascending (deterministic). *)

val failed_switches : t -> int list
(** Currently failed switch ids, ascending. *)

val failed_links : t -> (int * int) list
(** Currently failed links as (min, max) endpoint pairs, ascending. *)
