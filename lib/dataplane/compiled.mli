(** Compiled flow tables: the raw-speed dataplane (ROADMAP item 2).

    {!Tcam} interprets each lookup rule-by-rule over a priority-sorted
    list.  This module compiles a table into a dispatch structure —

    - a {b tag-keyed dispatch array} over the sub-class tag (slot 0 for
      untagged / unnamed tags, slot [s+1] for tag [s]),
    - a host-code dispatch per slot (named host patterns hash to their
      merged candidate list, everything else falls to the
      wildcard-host bucket), and
    - per bucket an {b IP decision stage}: every entry's prefix set is
      compiled to a hash-consed BDD over the 32 source-address bits and
      chained into disjoint first-match guards ([p_i] minus every
      earlier predicate), which prunes shadowed entries outright; small
      buckets are then decided by evaluating the BDD guards directly,
      large ones are flattened into a flat-arena bit trie with an O(32)
      descent —

    and caches the result in the table's {!Tcam.cache_slot}, stamped
    with {!Tcam.generation}: any mutation ([set_phys], [retain_phys],
    [add_*], [set_vswitch]) invalidates the compile, which is rebuilt
    lazily at the next lookup.  Failure masks are deliberately {e not}
    baked in: {!Walk} checks liveness dynamically, so failmask flips
    never require a recompile.

    Lookup results, counter credits ({!Apple_obs.Counters.rule_hit})
    and misses are bit-for-bit identical to the interpreted path —
    [test/test_dataplane_diff.ml] holds the two implementations equal
    under QCheck. *)

type mode = Interp | Compiled

val mode : unit -> mode
val set_mode : mode -> unit
(** Process-wide engine selector (default [Interp]); {!Walk} consults
    it on every lookup.  The CLI exposes it as [--dataplane]. *)

val mode_of_string : string -> (mode, string) result
val mode_to_string : mode -> string

val lookup_phys_entry :
  ?bytes:int -> Tcam.t -> Tag.tags -> src_ip:int -> (int * Rule.phys_action) option
(** Drop-in equivalent of {!Tcam.lookup_phys_entry} over the compiled
    structure (compiling it first if the cache is missing or stale). *)

val lookup_vswitch :
  Tcam.t ->
  Rule.vswitch_port ->
  cls:int option ->
  subclass:int ->
  Rule.vswitch_action option
(** Drop-in equivalent of {!Tcam.lookup_vswitch}: O(1) probes of the
    compiled (port, key) dispatch tables, first-match resolved by
    install-order index. *)

val warm : Tcam.network -> unit
(** Compile every (stale) table up front — a no-op in [Interp] mode.
    {!Walk.run_batch} calls this so the batch loop itself never takes a
    compile hit. *)

val note_epoch : unit -> unit
(** Controller hook: called at every epoch install / rule reinstall.
    Tables rebuilt by the epoch get fresh caches anyway (new
    {!Tcam.t}); the hook keeps the (switch, epoch) compile accounting
    honest in {!stats}. *)

val stats : unit -> int * int
(** [(compiles, epochs)] since the last {!reset_stats} — the number of
    table compiles performed and epoch notes received.  Tests use the
    first to pin the invalidate/rebuild lifecycle. *)

val reset_stats : unit -> unit
