(** Packet-walk verification of the installed data plane.

    Replays the flow chart of Fig. 2 against actual switch tables: a
    packet enters at the ingress switch, gets its sub-class tag, is
    delivered to APPLE hosts named by its host-ID field, traverses VNF
    instances by vSwitch rules, and is retagged on exit.  The walk
    produces the ground truth for the two key properties:

    - {b policy enforcement}: the recorded instance sequence matches the
      class's policy chain in kind and order;
    - {b interference freedom}: the switch sequence equals the routing
      path — APPLE never changed a forwarding decision. *)

type trace = {
  visited : int list;  (** switches traversed, in order *)
  instances : int list;  (** VNF instance ids applied, in order *)
  rule_path : (int * int) list;
      (** (switch, rule uid) of every TCAM match, in order — the flow's
          provenance, and the rules a packet-level simulator should
          credit for each of the flow's packets *)
  final_host_tag : Tag.host_field;
  subclass_tag : int option;
}

type error =
  | No_matching_rule of int  (** switch where the lookup failed *)
  | Vswitch_miss of int
  | Host_loop of int  (** vSwitch rules cycled inside a host *)
  | Wrong_host of { switch : int; wanted : int }
  | Link_dead of { from : int; to_ : int }
      (** blackhole: the next path link is failed in the {!Failmask} *)
  | Switch_dead of int  (** blackhole: the hop switch is failed *)
  | Instance_dead of { switch : int; instance : int }
      (** blackhole: a vSwitch rule steered into a dead VNF instance *)

val run :
  Tcam.network ->
  path:int list ->
  cls:int ->
  src_ip:int ->
  ?start_in_host:bool ->
  ?rewriters:(int -> bool) ->
  ?flow:int ->
  ?mask:Failmask.t ->
  unit ->
  (trace, error) result
(** Walk one packet of class [cls] with the given source address along the
    routing [path].  [start_in_host] models traffic originating in a
    production VM inside the first hop's APPLE host (the ip3 -> ip4
    scenario of Fig. 3).  [rewriters] flags instances that rewrite packet
    headers (e.g. NAT); after traversing one, header-derived class
    matching becomes impossible, so only globally-tagged vSwitch rules
    keep working (Sec. X).  [flow] (default -1) labels the walk's
    {!Apple_obs.Flight} events when observability is enabled, so
    [apple trace] can reconstruct the causal chain per flow.  [mask]
    (default: none) injects the current {!Failmask}: a walk reaching a
    dead link, switch or instance fails with the corresponding blackhole
    error and, when observability is on, additionally records a
    structured {!Apple_obs.Flight.Blackhole} event naming the dead
    element. *)

type request = {
  rq_path : int list;
  rq_cls : int;
  rq_src_ip : int;
  rq_start_in_host : bool;
  rq_flow : int;
}
(** One walk of a batch; fields mirror {!run}'s arguments. *)

val run_batch :
  Tcam.network ->
  requests:request array ->
  ?rewriters:(int -> bool) ->
  ?mask:Failmask.t ->
  unit ->
  (trace, error) result array
(** Walk a whole batch against one (network, epoch) snapshot.
    Equivalent to mapping {!run} over [requests] — same results, same
    spans, same Flight/Counter side effects, in the same order — but
    the batch compiles every table once up front (under [--dataplane
    compiled]; see {!Compiled.warm}) and builds the failmask predicates
    once, so the per-packet loop runs over warmed structures only.
    {!Packet_sim} routes all its flows through this. *)

val policy_enforced :
  trace -> instance_kind:(int -> Apple_vnf.Nf.kind) -> chain:Apple_vnf.Nf.kind list -> bool
(** The instance kinds along the trace equal the chain. *)

val interference_free : trace -> path:int list -> bool
(** The visited switches are exactly the routing path. *)

val pp_error : Format.formatter -> error -> unit

val error_code : error -> int
(** The integer encoding shared with the flight recorder's [Walk_end]
    events (1 no-matching-rule ... 7 instance-dead); see
    {!Apple_obs.Flight}. *)
