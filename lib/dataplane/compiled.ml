module B = Apple_bdd.Bdd
module Counters = Apple_obs.Counters
module Prefix_split = Apple_classifier.Prefix_split

type mode = Interp | Compiled

let mode_ref = ref Interp
let mode () = !mode_ref
let set_mode m = mode_ref := m

let mode_of_string = function
  | "interp" -> Ok Interp
  | "compiled" -> Ok Compiled
  | s -> Error (Printf.sprintf "unknown dataplane %S (expected interp|compiled)" s)

let mode_to_string = function Interp -> "interp" | Compiled -> "compiled"

let compile_count = ref 0
let epoch_count = ref 0
let note_epoch () = incr epoch_count
let stats () = (!compile_count, !epoch_count)

let reset_stats () =
  compile_count := 0;
  epoch_count := 0

(* ------------------------------------------------------------------ *)
(* Compiled physical table.

   Lookup context is (subclass tag, host tag, src_ip); the first two
   dispatch in O(1), the third through a per-bucket IP decision stage.
   Order semantics are inherited from the priority-sorted entry list:
   buckets keep their entries in table order, so "first entry whose IP
   predicate holds" is exactly the interpreter's first match. *)

type entry = {
  e_uid : int;
  e_action : Rule.phys_action;
  e_guard : B.t;
      (* effective first-match guard within the bucket: this entry's
         prefix predicate minus every earlier entry's — disjoint by
         construction, so guard evaluation needs no order *)
}

(* IP decision stage of one bucket.  [Scan] evaluates the disjoint BDD
   guards directly (small buckets); [Trie] is a flat int-arena bit trie
   over the address bits, painted in reverse priority order so an O(32)
   descent yields the first match (large buckets).  Node [k] occupies
   [nodes.(3k) = 0-child], [3k+1 = 1-child] (-1 = absent) and
   [3k+2 = entry index] (-1 = unpainted). *)
type ipdec =
  | Miss
  | Scan of entry array
  | Trie of { nodes : int array; entries : entry array }

type slot = {
  sl_hosts : (int, ipdec) Hashtbl.t;
      (* named host code -> merged (wildcard + that host) bucket *)
  sl_default : ipdec;  (* wildcard-host entries only *)
}

type ctable = {
  ct_gen : int;
  ct_sw : int;
  ct_man : B.man;
  ct_slots : slot array;  (* 0 = untagged/unnamed; s+1 = sub-class s *)
  ct_more : (int, slot) Hashtbl.t;  (* named sub-classes out of array range *)
  ct_v_per : (int * int * int, int * Rule.vswitch_action) Hashtbl.t;
  ct_v_glob : (int * int, int * Rule.vswitch_action) Hashtbl.t;
}

type Tcam.cache += Ctable of ctable

(* Host tags and patterns share one integer namespace; Empty/Fin sit
   far below any real host id. *)
let host_key = function
  | Tag.Empty -> min_int
  | Tag.Fin -> min_int + 1
  | Tag.Host h -> h

let pattern_host_key = function
  | `Empty -> Some min_int
  | `Fin -> Some (min_int + 1)
  | `Host h -> Some h
  | `Any -> None

let port_code = function
  | Rule.From_network -> -1
  | Rule.From_production_vm -> -2
  | Rule.From_instance i -> i

(* Largest sub-class tag the dispatch array covers; Tag.max_subclasses
   is 4096, anything above (hand-built tables) falls to [ct_more]. *)
let sub_array_cap = 2 * Tag.max_subclasses

(* Entries whose guard chain leaves more than this many live candidates
   get the trie; below it, evaluating the BDD guards in place is
   cheaper than a 32-level descent. *)
let scan_max = 4

let bit_of addr j = (addr lsr (31 - j)) land 1 = 1

let prefix_bdd man (p : Prefix_split.prefix) =
  let lits = ref [] in
  for j = p.Prefix_split.len - 1 downto 0 do
    lits := (j, bit_of p.Prefix_split.addr j) :: !lits
  done;
  B.cube man !lits

let pred_bdd man prefixes =
  match prefixes with
  | [] -> B.bdd_true man
  | ps ->
      List.fold_left (fun acc p -> B.bdd_or man acc (prefix_bdd man p)) (B.bdd_false man) ps

(* ---- bit trie ----------------------------------------------------- *)

type trie_builder = { mutable arr : int array; mutable n : int }

let tb_create () = { arr = Array.make 96 (-1); n = 0 }

let tb_node tb =
  if 3 * (tb.n + 1) > Array.length tb.arr then begin
    let bigger = Array.make (2 * Array.length tb.arr) (-1) in
    Array.blit tb.arr 0 bigger 0 (3 * tb.n);
    tb.arr <- bigger
  end;
  let k = tb.n in
  tb.n <- k + 1;
  tb.arr.((3 * k) + 0) <- -1;
  tb.arr.((3 * k) + 1) <- -1;
  tb.arr.((3 * k) + 2) <- -1;
  k

(* Overwrite [node] and every existing descendant with entry [e]:
   painting runs from lowest to highest priority, so the final value of
   a region is its first-matching entry. *)
let rec tb_paint_subtree tb node e =
  tb.arr.((3 * node) + 2) <- e;
  let lo = tb.arr.((3 * node) + 0) and hi = tb.arr.((3 * node) + 1) in
  if lo >= 0 then tb_paint_subtree tb lo e;
  if hi >= 0 then tb_paint_subtree tb hi e

let tb_paint_prefix tb (p : Prefix_split.prefix) e =
  let node = ref 0 in
  for j = 0 to p.Prefix_split.len - 1 do
    let side = if bit_of p.Prefix_split.addr j then 1 else 0 in
    let child = tb.arr.((3 * !node) + side) in
    let child =
      if child >= 0 then child
      else begin
        let k = tb_node tb in
        tb.arr.((3 * !node) + side) <- k;
        k
      end
    in
    node := child
  done;
  tb_paint_subtree tb !node e

let trie_of_entries rules entries =
  (* [rules.(i)] is the original prefix list of [entries.(i)]. *)
  let tb = tb_create () in
  ignore (tb_node tb);
  for i = Array.length entries - 1 downto 0 do
    match rules.(i) with
    | [] -> tb_paint_subtree tb 0 i
    | ps -> List.iter (fun p -> tb_paint_prefix tb p i) ps
  done;
  Trie { nodes = Array.sub tb.arr 0 (3 * tb.n); entries }

let trie_lookup nodes ~src_ip =
  let ans = ref nodes.(2) in
  let node = ref 0 in
  let j = ref 0 in
  let live = ref true in
  while !live && !j < 32 do
    let side = if bit_of src_ip !j then 1 else 0 in
    let child = nodes.((3 * !node) + side) in
    if child < 0 then live := false
    else begin
      node := child;
      let r = nodes.((3 * child) + 2) in
      if r >= 0 then ans := r;
      incr j
    end
  done;
  !ans

(* ---- bucket / slot construction ----------------------------------- *)

(* [rules] are (uid, rule) in table order, already narrowed to the
   bucket's (subclass, host) context, so only the IP stage remains.
   The guard chain prunes entries that earlier entries fully shadow. *)
let compile_bucket man rules =
  match rules with
  | [] -> Miss
  | _ ->
      let live = ref [] in
      let seen = ref (B.bdd_false man) in
      List.iter
        (fun (uid, (r : Rule.phys_rule)) ->
          let pred = pred_bdd man r.Rule.pmatch.Rule.m_prefixes in
          let guard = B.bdd_diff man pred !seen in
          seen := B.bdd_or man !seen pred;
          if not (B.is_false man guard) then
            live :=
              (r.Rule.pmatch.Rule.m_prefixes,
               { e_uid = uid; e_action = r.Rule.action; e_guard = guard })
              :: !live)
        rules;
      let live = Array.of_list (List.rev !live) in
      if Array.length live = 0 then Miss
      else begin
        let entries = Array.map snd live in
        if Array.length entries <= scan_max then Scan entries
        else trie_of_entries (Array.map fst live) entries
      end

let subclass_admits context (pat : [ `Subclass of int | `Any ]) =
  match (pat, context) with
  | `Any, _ -> true
  | `Subclass s, Some s' -> s = s'
  | `Subclass _, None -> false

let compile_slot man phys ~context =
  let admitted =
    List.filter (fun (_, r) -> subclass_admits context r.Rule.pmatch.Rule.m_subclass) phys
  in
  (* Named host codes of this slot, in first-appearance order. *)
  let host_codes = ref [] in
  let seen_hosts = Hashtbl.create 8 in
  List.iter
    (fun (_, r) ->
      match pattern_host_key r.Rule.pmatch.Rule.m_host with
      | None -> ()
      | Some k ->
          if not (Hashtbl.mem seen_hosts k) then begin
            Hashtbl.add seen_hosts k ();
            host_codes := k :: !host_codes
          end)
    admitted;
  let bucket_for code =
    compile_bucket man
      (List.filter
         (fun (_, r) ->
           match pattern_host_key r.Rule.pmatch.Rule.m_host with
           | None -> true
           | Some k -> k = code)
         admitted)
  in
  let sl_hosts = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace sl_hosts k (bucket_for k)) (List.rev !host_codes);
  let sl_default =
    compile_bucket man
      (List.filter
         (fun (_, r) ->
           match pattern_host_key r.Rule.pmatch.Rule.m_host with
           | None -> true
           | Some _ -> false)
         admitted)
  in
  { sl_hosts; sl_default }

let tr_compile = Apple_trace.Trace.span ~cat:"dataplane" "dataplane.compile"

let compile (t : Tcam.t) =
  Apple_trace.Trace.with_ tr_compile @@ fun () ->
  incr compile_count;
  let man = B.man () in
  let phys = Tcam.phys_entries t in
  (* Named sub-class tags, in first-appearance order. *)
  let named = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (_, r) ->
      match r.Rule.pmatch.Rule.m_subclass with
      | `Any -> ()
      | `Subclass s ->
          if not (Hashtbl.mem seen s) then begin
            Hashtbl.add seen s ();
            named := s :: !named
          end)
    phys;
  let named = List.rev !named in
  let slot0 = compile_slot man phys ~context:None in
  let in_range = List.filter (fun s -> s >= 0 && s < sub_array_cap) named in
  let cap = List.fold_left (fun acc s -> max acc (s + 2)) 1 in_range in
  let ct_slots = Array.make cap slot0 in
  List.iter
    (fun s -> ct_slots.(s + 1) <- compile_slot man phys ~context:(Some s))
    in_range;
  let ct_more = Hashtbl.create 4 in
  List.iter
    (fun s ->
      if s < 0 || s >= sub_array_cap then
        Hashtbl.replace ct_more s (compile_slot man phys ~context:(Some s)))
    named;
  (* vSwitch chains: (port, key) dispatch with install-order index;
     keeping the first binding per key is exactly first-match. *)
  let ct_v_per = Hashtbl.create 32 in
  let ct_v_glob = Hashtbl.create 32 in
  List.iteri
    (fun i (r : Rule.vswitch_rule) ->
      let pc = port_code r.Rule.v_port in
      match r.Rule.v_key with
      | Rule.Per_class { cls; subclass } ->
          let key = (pc, cls, subclass) in
          if not (Hashtbl.mem ct_v_per key) then
            Hashtbl.add ct_v_per key (i, r.Rule.v_action)
      | Rule.Global g ->
          let key = (pc, g) in
          if not (Hashtbl.mem ct_v_glob key) then
            Hashtbl.add ct_v_glob key (i, r.Rule.v_action))
    (Tcam.vswitch_rules t);
  {
    ct_gen = Tcam.generation t;
    ct_sw = Tcam.switch t;
    ct_man = man;
    ct_slots;
    ct_more;
    ct_v_per;
    ct_v_glob;
  }

let ctable_of (t : Tcam.t) =
  match Tcam.cache_slot t with
  | Ctable c when c.ct_gen = Tcam.generation t -> c
  | _ ->
      let c = compile t in
      Tcam.set_cache_slot t (Ctable c);
      c

(* ---- lookups ------------------------------------------------------ *)

let bucket_lookup man bucket ~src_ip =
  match bucket with
  | Miss -> None
  | Scan entries ->
      let n = Array.length entries in
      let rec go i =
        if i >= n then None
        else if B.eval man entries.(i).e_guard (bit_of src_ip) then Some entries.(i)
        else go (i + 1)
      in
      go 0
  | Trie { nodes; entries } ->
      let r = trie_lookup nodes ~src_ip in
      if r < 0 then None else Some entries.(r)

let slot_for c sub =
  match sub with
  | None -> c.ct_slots.(0)
  | Some s ->
      if s >= 0 && s + 1 < Array.length c.ct_slots then c.ct_slots.(s + 1)
      else (
        match Hashtbl.find_opt c.ct_more s with
        | Some slot -> slot
        | None -> c.ct_slots.(0))

let lookup_phys_entry ?(bytes = 0) t (tags : Tag.tags) ~src_ip =
  let c = ctable_of t in
  let slot = slot_for c tags.Tag.subclass in
  let bucket =
    match Hashtbl.find_opt slot.sl_hosts (host_key tags.Tag.host) with
    | Some b -> b
    | None -> slot.sl_default
  in
  match bucket_lookup c.ct_man bucket ~src_ip with
  | None -> None
  | Some e ->
      Counters.rule_hit ~sw:c.ct_sw ~uid:e.e_uid ~bytes;
      Some (e.e_uid, e.e_action)

let lookup_vswitch t port ~cls ~subclass =
  let c = ctable_of t in
  let pc = port_code port in
  let glob = Hashtbl.find_opt c.ct_v_glob (pc, subclass) in
  let per =
    match cls with
    | Some cl -> Hashtbl.find_opt c.ct_v_per (pc, cl, subclass)
    | None -> None
  in
  match (glob, per) with
  | None, None -> None
  | Some (_, a), None | None, Some (_, a) -> Some a
  | Some (og, ag), Some (op, ap) -> Some (if op < og then ap else ag)

let warm net =
  match !mode_ref with
  | Interp -> ()
  | Compiled -> Array.iter (fun t -> ignore (ctable_of t)) net
