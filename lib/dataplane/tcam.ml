module Prefix_split = Apple_classifier.Prefix_split
module Counters = Apple_obs.Counters

(* A compiled representation of the table may be cached on it by a
   higher layer (Compiled).  The slot is an extensible variant so this
   module needs no dependency on the compiler; [gen] counts structural
   mutations, so any cached structure stamped with an older generation
   is stale by construction — every mutator below goes through
   [touch]. *)
type cache = ..
type cache += No_cache

(* Every installed physical rule gets a per-table uid at install time,
   the key under which Apple_obs.Counters accumulates its match/byte
   counters (the moral equivalent of an OpenFlow cookie). *)
type t = {
  sw : int;
  mutable next_uid : int;
  mutable phys : (int * Rule.phys_rule) list;  (* kept sorted by descending priority *)
  mutable vsw : Rule.vswitch_rule list;
  mutable gen : int;
  mutable cache : cache;
}

let create ~switch =
  { sw = switch; next_uid = 0; phys = []; vsw = []; gen = 0; cache = No_cache }

let switch t = t.sw
let generation t = t.gen
let cache_slot t = t.cache
let set_cache_slot t c = t.cache <- c

let touch t =
  t.gen <- t.gen + 1;
  t.cache <- No_cache

let fresh_uid t =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  uid

let sort_phys entries =
  List.stable_sort
    (fun (_, a) (_, b) -> Int.compare b.Rule.priority a.Rule.priority)
    entries

let add_phys t r =
  t.phys <- sort_phys ((fresh_uid t, r) :: t.phys);
  touch t

let add_vswitch t r =
  t.vsw <- r :: t.vsw;
  touch t

let phys_rules t = List.map snd t.phys
let phys_entries t = t.phys
let vswitch_rules t = List.rev t.vsw

let set_phys t rules =
  t.phys <- sort_phys (List.map (fun r -> (fresh_uid t, r)) rules);
  touch t

let set_vswitch t rules =
  t.vsw <- List.rev rules;
  touch t

let retain_phys t ~keep =
  let before = List.length t.phys in
  t.phys <- List.filter (fun (uid, _) -> keep uid) t.phys;
  touch t;
  before - List.length t.phys

let tcam_entries t =
  List.fold_left (fun acc (_, r) -> acc + Rule.tcam_entries r) 0 t.phys

let tcam_entries_crossproduct t ~other_table =
  tcam_entries t * max 1 other_table

let vswitch_entries t = List.length t.vsw

type network = t array

let network ~num_switches = Array.init num_switches (fun switch -> create ~switch)

let total_tcam net = Array.fold_left (fun acc t -> acc + tcam_entries t) 0 net

let total_vswitch net =
  Array.fold_left (fun acc t -> acc + vswitch_entries t) 0 net

let host_matches pattern (tags : Tag.tags) =
  match (pattern, tags.Tag.host) with
  | `Any, _ -> true
  | `Empty, Tag.Empty -> true
  | `Fin, Tag.Fin -> true
  | `Host h, Tag.Host h' -> h = h'
  | (`Empty | `Fin | `Host _), _ -> false

let subclass_matches pattern (tags : Tag.tags) =
  match (pattern, tags.Tag.subclass) with
  | `Any, _ -> true
  | `Subclass s, Some s' -> s = s'
  | `Subclass _, None -> false

let prefixes_match prefixes ~src_ip =
  match prefixes with
  | [] -> true
  | ps -> List.exists (fun p -> Prefix_split.member p src_ip) ps

let lookup_phys_entry ?(bytes = 0) t tags ~src_ip =
  let matching (_, r) =
    host_matches r.Rule.pmatch.Rule.m_host tags
    && subclass_matches r.Rule.pmatch.Rule.m_subclass tags
    && prefixes_match r.Rule.pmatch.Rule.m_prefixes ~src_ip
  in
  match List.find_opt matching t.phys with
  | Some (uid, r) ->
      Counters.rule_hit ~sw:t.sw ~uid ~bytes;
      Some (uid, r.Rule.action)
  | None -> None

let lookup_phys t tags ~src_ip =
  Option.map snd (lookup_phys_entry t tags ~src_ip)

let lookup_vswitch t port ~cls ~subclass =
  let matching r =
    r.Rule.v_port = port
    &&
    match r.Rule.v_key with
    | Rule.Per_class { cls = c; subclass = s } ->
        (* Class recovery needs an intact header. *)
        (match cls with Some c' -> c' = c && s = subclass | None -> false)
    | Rule.Global g -> g = subclass
  in
  match List.find_opt matching (List.rev t.vsw) with
  | Some r -> Some r.Rule.v_action
  | None -> None
