(** Per-switch flow tables with TCAM accounting.

    A switch's APPLE table holds host-match, classification and pass-by
    rules (Table III); the vSwitch of its APPLE host holds the three-tuple
    rules.  TCAM cost is what Fig. 10 measures: with pipelining each rule
    costs its own entries; without pipelining the semantics need the
    cross-product of the APPLE table and the next table. *)

type t

val create : switch:int -> t
val switch : t -> int

type cache = ..
(** Slot for a compiled representation of the table, owned by a higher
    layer ({!Compiled}).  Extensible so this module carries no
    dependency on the compiler. *)

type cache += No_cache

val generation : t -> int
(** Structural mutation counter: every {!add_phys}, {!add_vswitch},
    {!set_phys}, {!set_vswitch} and {!retain_phys} bumps it (and resets
    the cache slot to {!No_cache}), so a compiled structure stamped with
    an older generation is stale by construction. *)

val cache_slot : t -> cache
val set_cache_slot : t -> cache -> unit

val add_phys : t -> Rule.phys_rule -> unit
val add_vswitch : t -> Rule.vswitch_rule -> unit

val phys_rules : t -> Rule.phys_rule list
(** Descending priority. *)

val phys_entries : t -> (int * Rule.phys_rule) list
(** Descending priority, with each rule's install-time uid — the key
    under which {!Apple_obs.Counters} accumulates match/byte counters
    (the moral equivalent of an OpenFlow cookie). *)

val vswitch_rules : t -> Rule.vswitch_rule list
(** Match order (first match wins). *)

val set_phys : t -> Rule.phys_rule list -> unit
(** Replace the whole APPLE table (rules are re-sorted by descending
    priority, stable).  Meant for fault injection in verifier tests. *)

val set_vswitch : t -> Rule.vswitch_rule list -> unit
(** Replace the vSwitch table, keeping the given match order. *)

val retain_phys : t -> keep:(int -> bool) -> int
(** Drop every APPLE-table entry whose uid fails [keep], preserving the
    uids (and counters) of survivors; returns the number of entries
    lost.  Models partial TCAM rule loss (e.g. a line-card reset) for
    fault injection — unlike {!set_phys} it does not re-number rules, so
    a subsequent reinstall is observable as fresh uids. *)

val tcam_entries : t -> int
(** Entries in the physical switch's APPLE table (pipelined layout). *)

val tcam_entries_crossproduct : t -> other_table:int -> int
(** Entries if the switch cannot pipeline and must merge the APPLE table
    with a next table of [other_table] rules (upper bound: product). *)

val vswitch_entries : t -> int

type network = t array
(** One table set per switch. *)

val network : num_switches:int -> network
val total_tcam : network -> int
val total_vswitch : network -> int

val host_matches : [ `Empty | `Host of int | `Fin | `Any ] -> Tag.tags -> bool
(** Does the rule's host pattern admit the packet's host tag?  [`Any]
    admits everything; [`Empty], [`Fin] and [`Host h] each admit exactly
    their own tag value. *)

val lookup_phys : t -> Tag.tags -> src_ip:int -> Rule.phys_action option
(** Highest-priority matching rule's action, mimicking the Fig. 2 walk.
    When {!Apple_obs.Counters.enabled}, the matched rule's counter is
    bumped (with zero bytes). *)

val lookup_phys_entry :
  ?bytes:int -> t -> Tag.tags -> src_ip:int -> (int * Rule.phys_action) option
(** Like {!lookup_phys} but also returns the matched rule's uid, and
    credits [bytes] (default 0) to its byte counter when counters are
    enabled. *)

val lookup_vswitch :
  t ->
  Rule.vswitch_port ->
  cls:int option ->
  subclass:int ->
  Rule.vswitch_action option
(** [cls = None] models a packet whose header was rewritten by an NF:
    header-derived class matching is impossible, so only {!Rule.Global}
    keyed rules can match. *)
