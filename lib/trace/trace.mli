(** Causal epoch tracing and continuous profiling.

    Every pipeline unit of work — controller epoch, per-class LP solve,
    rule generation, verifier gate, dataplane walk, heal — runs inside a
    {!with_} region that records one event into a preallocated
    per-domain ring: trace/span/parent ids, wall-clock and sim-clock
    begin/end stamps, and [Gc] minor/major allocation deltas.  Causality
    crosses the [lib/parallel] domain pool via {!capture}/{!branch}:
    the submitter captures its span context once per map and every item
    runs as a [pool.item] child span on whichever domain claimed it.

    Like telemetry, the subsystem is {b off by default} and every
    entry point first reads one boolean, so instrumented hot paths cost
    a load-and-branch when tracing is disabled.  Nothing recorded here
    feeds back into engine decisions.

    {b Determinism.}  Span ids are deterministic mixes of
    [(trace, parent, seq)], sequence numbers are allocated on the
    submitting side, and {!events} sorts on those ids — so the event
    set and its order are independent of [--jobs] and of which domain
    ran which item.  Rendering with {!Sim} additionally zeroes every
    host-dependent field (wall stamps, domain ids, allocation counts,
    which vary across GC timing and compiler versions), making the
    Chrome export byte-identical across [--jobs]
    (see [test/test_trace.ml]). *)

val enabled : unit -> bool
(** Current state of the global switch (default [false]). *)

val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop every recorded event and restart trace-id allocation.  Span
    descriptors stay valid.  Call only while no traced work is in
    flight on other domains. *)

val set_ring_capacity : int -> unit
(** Capacity (events per domain) used for rings created after the call;
    implies {!reset}.  Default: 65536.  Clamped below at 1. *)

val ring_capacity : unit -> int

val dropped : unit -> int
(** Events lost to ring overflow since the last {!reset}. *)

(** {1 Spans} *)

type span
(** An interned span descriptor (name + phase category).  Create once at
    module initialisation, not per use. *)

val span : ?cat:string -> string -> span
(** [span ~cat name] interns a descriptor.  [cat] is the pipeline phase
    used for profile attribution (["epoch"], ["solve"], ["rulegen"],
    ["verify"], ["dataplane"], ["heal"], ...); default ["misc"].
    Registry-idempotent on [name]; the first [cat] wins. *)

val with_ : ?cls:int -> span -> (unit -> 'a) -> 'a
(** Run [f] as a span: a child of the innermost enclosing span on this
    domain, or the root of a fresh trace.  Records one event when [f]
    returns or raises.  [cls] tags the event with a class/tenant/epoch
    index ([-1] when absent).  When tracing is disabled this is [f ()]
    with no clock reads. *)

(** {1 Pool propagation} *)

type context
(** A captured parent-span identity, safe to share across domains. *)

val capture : unit -> context option
(** Capture the current span context (allocating one deterministic
    branch token from the enclosing span), or [None] when tracing is
    disabled.  With no enclosing span, a fresh orphan trace id is
    allocated so branched items still trace deterministically. *)

val branch : context -> index:int -> (unit -> 'a) -> 'a
(** Run one fanned-out item as a [pool.item] span whose parent is the
    captured context, on whatever domain is executing.  [index] is the
    item's position in the map; together with the capture token it
    determines the span id, so ids are identical however items are
    scheduled. *)

val wrap_items : (int -> 'a) -> int -> 'a
(** [wrap_items f] captures the current context once and returns [f]
    with every item wrapped in {!branch}; the identity when tracing is
    disabled.  This is the pool's hook: [map_range] instruments its
    item function with it. *)

(** {1 Export} *)

type event = {
  ev_trace : int;  (** trace (root-span) id, allocation order *)
  ev_id : int;  (** span id, deterministic mix of (trace, parent, seq) *)
  ev_parent : int;  (** parent span id; 0 for roots *)
  ev_seq : int;  (** child index under the parent *)
  ev_name : string;
  ev_cat : string;
  ev_cls : int;  (** class/tenant/epoch tag; -1 when absent *)
  ev_domain : int;  (** domain that executed the span *)
  ev_wall0 : float;  (** [Unix.gettimeofday] at begin *)
  ev_wall1 : float;  (** ... and at end *)
  ev_sim0 : float;  (** sim clock at begin; [nan] when uninstalled *)
  ev_sim1 : float;  (** ... and at end *)
  ev_minor : float;  (** minor words allocated during the span *)
  ev_major : float;  (** major words allocated during the span *)
}

val events : unit -> event list
(** Every completed span, in the deterministic
    [(trace, parent, seq, ...)] order.  Collect only after traced work
    has drained (e.g. after the pool map returned). *)

type mode =
  | Wall  (** host profiling view: wall stamps, domains, allocations *)
  | Sim  (** deterministic view: sim stamps only, host fields zeroed *)

val mode_of_string : string -> (mode, string) result
val mode_to_string : mode -> string

val render_chrome : ?mode:mode -> unit -> string
(** Chrome trace-event JSON (schema [apple-trace/1]): one complete
    ["ph":"X"] event per span, loadable in Perfetto / speedscope /
    [chrome://tracing].  Timestamps and durations are microseconds:
    wall time rebased to the earliest event ({!Wall}) or sim time
    ({!Sim}, default).  In {!Sim} mode [tid] is 0 and the wall and
    allocation args are zeroed — the render is byte-identical across
    [--jobs]. *)

type row = {
  r_name : string;
  r_cat : string;
  r_count : int;
  r_total : float;  (** summed span duration, seconds *)
  r_self : float;  (** total minus direct children, clamped at 0 *)
  r_minor : float;  (** minor words allocated (0 in {!Sim} mode) *)
}

val rows : ?mode:mode -> unit -> row list
(** Self-time attribution per span name, sorted by self time
    descending (ties by name). *)

type phase = {
  ph_cat : string;
  ph_count : int;
  ph_self : float;  (** summed self time of the phase's spans, seconds *)
  ph_share : float;  (** fraction of all self time, in [0, 1] *)
}

val phases : ?mode:mode -> unit -> phase list
(** {!rows} aggregated by category, sorted by share descending (ties by
    category name). *)

val render_table : ?mode:mode -> unit -> string
(** Aligned text table of {!rows} with a phase-share summary — the
    [apple profile] report. *)
