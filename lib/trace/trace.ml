(* Causal tracing: per-span events in per-domain rings.

   Determinism is structural, not temporal: every id below is a pure
   function of (trace, parent, seq) where sequence numbers are handed
   out by the submitting side, so the set of events and their sort
   order cannot depend on --jobs or on domain scheduling.  Only the
   wall stamps, executing-domain ids and allocation counters are
   host-dependent, and the Sim render zeroes exactly those. *)

module T = Apple_telemetry.Telemetry

(* ------------------------------------------------------------------ *)
(* Global switch                                                       *)

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled v = enabled_flag := v

(* ------------------------------------------------------------------ *)
(* Span descriptors (interned name + category)                         *)

type span = int

let registry_mu = Mutex.create ()
let span_names : string array ref = ref [||]
let span_cats : string array ref = ref [||]
let span_index : (string, int) Hashtbl.t = Hashtbl.create 64

let span ?(cat = "misc") name =
  Mutex.lock registry_mu;
  let id =
    match Hashtbl.find_opt span_index name with
    | Some i -> i
    | None ->
        let i = Array.length !span_names in
        span_names := Array.append !span_names [| name |];
        span_cats := Array.append !span_cats [| cat |];
        Hashtbl.add span_index name i;
        i
  in
  Mutex.unlock registry_mu;
  id

(* ------------------------------------------------------------------ *)
(* Deterministic ids                                                   *)

(* A splitmix-style finalizer over OCaml's 63-bit ints (constants kept
   under 2^62 so the literals fit; wraparound is well-defined and
   identical on every 64-bit platform).  Quality only has to be good
   enough that independently-derived (parent, seq) pairs do not
   collide in practice — ids are names, not hashes of content. *)
let mix a b =
  let x = (a * 0x1E3779B97F4A7C15) + b in
  let x = x lxor (x lsr 30) in
  let x = x * 0x3F58476D1CE4E5B9 in
  let x = x lxor (x lsr 27) in
  let x = x * 0x14D049BB133111EB in
  (x lxor (x lsr 31)) land max_int

let span_id ~trace ~parent ~seq = mix (mix (trace + 1) (parent + 1)) (seq + 1)

(* ------------------------------------------------------------------ *)
(* Per-domain current frame                                            *)

type frame = { f_trace : int; f_span : int; mutable f_next : int }

let frame_key : frame option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let trace_counter = Atomic.make 0

(* ------------------------------------------------------------------ *)
(* Per-domain event rings                                              *)

type ring = {
  born : int;  (* registry epoch this ring belongs to *)
  cap : int;
  rg_domain : int;
  rg_trace : int array;
  rg_id : int array;
  rg_parent : int array;
  rg_seq : int array;
  rg_span : int array;
  rg_cls : int array;
  rg_w0 : float array;
  rg_w1 : float array;
  rg_s0 : float array;
  rg_s1 : float array;
  rg_minor : float array;
  rg_major : float array;
  mutable total : int;  (* events ever recorded; ring keeps the last cap *)
}

let default_capacity = 65536
let capacity = ref default_capacity
let ring_capacity () = !capacity
let epoch = Atomic.make 0
let rings : ring list ref = ref []

let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let make_ring () =
  let cap = !capacity in
  {
    born = Atomic.get epoch;
    cap;
    rg_domain = (Domain.self () :> int);
    rg_trace = Array.make cap 0;
    rg_id = Array.make cap 0;
    rg_parent = Array.make cap 0;
    rg_seq = Array.make cap 0;
    rg_span = Array.make cap 0;
    rg_cls = Array.make cap 0;
    rg_w0 = Array.make cap 0.0;
    rg_w1 = Array.make cap 0.0;
    rg_s0 = Array.make cap 0.0;
    rg_s1 = Array.make cap 0.0;
    rg_minor = Array.make cap 0.0;
    rg_major = Array.make cap 0.0;
    total = 0;
  }

(* The ring a record lands in: this domain's, re-provisioned when a
   [reset] has obsoleted the one cached in domain-local storage. *)
let my_ring () =
  let slot = Domain.DLS.get ring_key in
  match !slot with
  | Some r when r.born = Atomic.get epoch -> r
  | Some _ | None ->
      let r = make_ring () in
      slot := Some r;
      Mutex.lock registry_mu;
      rings := r :: !rings;
      Mutex.unlock registry_mu;
      r

let reset () =
  Mutex.lock registry_mu;
  Atomic.incr epoch;
  rings := [];
  Atomic.set trace_counter 0;
  Mutex.unlock registry_mu

let set_ring_capacity n =
  capacity := max 1 n;
  reset ()

let live_rings () =
  Mutex.lock registry_mu;
  let rs = !rings in
  Mutex.unlock registry_mu;
  let e = Atomic.get epoch in
  List.filter (fun r -> r.born = e) rs

let dropped () =
  List.fold_left (fun acc r -> acc + max 0 (r.total - r.cap)) 0 (live_rings ())

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)

let sim_stamp () = match T.sim_now () with Some v -> v | None -> Float.nan

let record ~trace ~id ~parent ~seq ~sp ~cls ~w0 ~w1 ~s0 ~s1 ~minor ~major =
  let r = my_ring () in
  let i = r.total mod r.cap in
  r.rg_trace.(i) <- trace;
  r.rg_id.(i) <- id;
  r.rg_parent.(i) <- parent;
  r.rg_seq.(i) <- seq;
  r.rg_span.(i) <- sp;
  r.rg_cls.(i) <- cls;
  r.rg_w0.(i) <- w0;
  r.rg_w1.(i) <- w1;
  r.rg_s0.(i) <- s0;
  r.rg_s1.(i) <- s1;
  r.rg_minor.(i) <- minor;
  r.rg_major.(i) <- major;
  r.total <- r.total + 1

let run_span ~slot ~saved ~trace ~id ~parent ~seq ~sp ~cls f =
  slot := Some { f_trace = trace; f_span = id; f_next = 0 };
  let minor0, _, major0 = Gc.counters () in
  let s0 = sim_stamp () in
  let w0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let w1 = Unix.gettimeofday () in
      let s1 = sim_stamp () in
      let minor1, _, major1 = Gc.counters () in
      slot := saved;
      record ~trace ~id ~parent ~seq ~sp ~cls ~w0 ~w1 ~s0 ~s1
        ~minor:(minor1 -. minor0) ~major:(major1 -. major0))
    f

let with_ ?(cls = -1) sp f =
  if not !enabled_flag then f ()
  else begin
    let slot = Domain.DLS.get frame_key in
    let saved = !slot in
    let trace, parent, seq =
      match saved with
      | Some fr ->
          let s = fr.f_next in
          fr.f_next <- s + 1;
          (fr.f_trace, fr.f_span, s)
      | None -> (Atomic.fetch_and_add trace_counter 1, 0, 0)
    in
    let id = span_id ~trace ~parent ~seq in
    run_span ~slot ~saved ~trace ~id ~parent ~seq ~sp ~cls f
  end

(* ------------------------------------------------------------------ *)
(* Pool propagation                                                    *)

type context = { c_trace : int; c_span : int; c_token : int }

let capture () =
  if not !enabled_flag then None
  else
    let slot = Domain.DLS.get frame_key in
    match !slot with
    | Some fr ->
        let tok = fr.f_next in
        fr.f_next <- tok + 1;
        Some { c_trace = fr.f_trace; c_span = fr.f_span; c_token = tok }
    | None ->
        (* Fan-out with no enclosing span: give the items a trace of
           their own.  The id is allocated on the submitting side, so it
           is as deterministic as a root span's. *)
        let t = Atomic.fetch_and_add trace_counter 1 in
        Some { c_trace = t; c_span = 0; c_token = 0 }

let sp_pool_item = span ~cat:"parallel" "pool.item"

let branch ctx ~index f =
  if not !enabled_flag then f ()
  else begin
    let slot = Domain.DLS.get frame_key in
    let saved = !slot in
    (* Sequence numbers under the captured parent must not collide with
       the parent frame's sequential children (small ints) or with other
       maps' items: mixing (token, index) spreads them over 63 bits. *)
    let seq = mix (ctx.c_token + 1) (index + 1) in
    let id = span_id ~trace:ctx.c_trace ~parent:ctx.c_span ~seq in
    run_span ~slot ~saved ~trace:ctx.c_trace ~id ~parent:ctx.c_span ~seq
      ~sp:sp_pool_item ~cls:index f
  end

let wrap_items f =
  match capture () with
  | None -> f
  | Some ctx -> fun i -> branch ctx ~index:i (fun () -> f i)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

type event = {
  ev_trace : int;
  ev_id : int;
  ev_parent : int;
  ev_seq : int;
  ev_name : string;
  ev_cat : string;
  ev_cls : int;
  ev_domain : int;
  ev_wall0 : float;
  ev_wall1 : float;
  ev_sim0 : float;
  ev_sim1 : float;
  ev_minor : float;
  ev_major : float;
}

let compare_event a b =
  let c = Int.compare a.ev_trace b.ev_trace in
  if c <> 0 then c
  else
    let c = Int.compare a.ev_parent b.ev_parent in
    if c <> 0 then c
    else
      let c = Int.compare a.ev_seq b.ev_seq in
      if c <> 0 then c
      else
        let c = Int.compare a.ev_id b.ev_id in
        if c <> 0 then c
        else
          let c = String.compare a.ev_name b.ev_name in
          if c <> 0 then c else Int.compare a.ev_cls b.ev_cls

let events () =
  let names = !span_names and cats = !span_cats in
  let of_ring r acc =
    let kept = min r.total r.cap in
    let rec go i acc =
      if i >= kept then acc
      else
        let sp = r.rg_span.(i) in
        go (i + 1)
          ({
             ev_trace = r.rg_trace.(i);
             ev_id = r.rg_id.(i);
             ev_parent = r.rg_parent.(i);
             ev_seq = r.rg_seq.(i);
             ev_name = names.(sp);
             ev_cat = cats.(sp);
             ev_cls = r.rg_cls.(i);
             ev_domain = r.rg_domain;
             ev_wall0 = r.rg_w0.(i);
             ev_wall1 = r.rg_w1.(i);
             ev_sim0 = r.rg_s0.(i);
             ev_sim1 = r.rg_s1.(i);
             ev_minor = r.rg_minor.(i);
             ev_major = r.rg_major.(i);
           }
          :: acc)
    in
    go 0 acc
  in
  List.sort compare_event (List.fold_left (fun acc r -> of_ring r acc) [] (live_rings ()))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

type mode = Wall | Sim

let mode_of_string = function
  | "wall" -> Ok Wall
  | "sim" -> Ok Sim
  | s -> Error (Printf.sprintf "unknown trace mode %S (expected sim or wall)" s)

let mode_to_string = function Wall -> "wall" | Sim -> "sim"

let sim_ts e = if Float.is_nan e.ev_sim0 then 0.0 else e.ev_sim0

let sim_dur e =
  if Float.is_nan e.ev_sim0 || Float.is_nan e.ev_sim1 then 0.0
  else max 0.0 (e.ev_sim1 -. e.ev_sim0)

let dur_seconds mode e =
  match mode with Wall -> max 0.0 (e.ev_wall1 -. e.ev_wall0) | Sim -> sim_dur e

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let render_chrome ?(mode = Sim) () =
  let evs = events () in
  let wall_base =
    List.fold_left (fun m e -> min m e.ev_wall0) infinity evs
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"apple-trace/1\",\"mode\":\"%s\",\"events\":%d,\"dropped\":%d,\"traceEvents\":[\n"
       (mode_to_string mode) (List.length evs) (dropped ()));
  let first = ref true in
  List.iter
    (fun e ->
      if !first then first := false else Buffer.add_string b ",\n";
      let ts, dur, tid, wall_us, minor, major =
        match mode with
        | Wall ->
            ( (e.ev_wall0 -. wall_base) *. 1e6,
              dur_seconds Wall e *. 1e6,
              e.ev_domain,
              dur_seconds Wall e *. 1e6,
              e.ev_minor,
              e.ev_major )
        | Sim ->
            (sim_ts e *. 1e6, sim_dur e *. 1e6, 0, 0.0, 0.0, 0.0)
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"trace\":%d,\"id\":\"%d\",\"parent\":\"%d\",\"seq\":\"%d\",\"cls\":%d,\"wall_us\":%.3f,\"sim_us\":%.3f,\"minor_words\":%.0f,\"major_words\":%.0f}}"
           (json_string e.ev_name) (json_string e.ev_cat) ts dur tid e.ev_trace
           e.ev_id e.ev_parent e.ev_seq e.ev_cls wall_us (sim_dur e *. 1e6)
           minor major))
    evs;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Self-time attribution                                               *)

type row = {
  r_name : string;
  r_cat : string;
  r_count : int;
  r_total : float;
  r_self : float;
  r_minor : float;
}

(* Per-event self time: duration minus the summed durations of direct
   children, clamped at zero (clock granularity can make a child appear
   longer than its parent). *)
let self_times mode evs =
  let child_sum : (int, float ref) Hashtbl.t =
    Hashtbl.create (List.length evs)
  in
  List.iter
    (fun e ->
      let d = dur_seconds mode e in
      match Hashtbl.find_opt child_sum e.ev_parent with
      | Some r -> r := !r +. d
      | None -> Hashtbl.add child_sum e.ev_parent (ref d))
    evs;
  List.map
    (fun e ->
      let children =
        match Hashtbl.find_opt child_sum e.ev_id with
        | Some r -> !r
        | None -> 0.0
      in
      (e, max 0.0 (dur_seconds mode e -. children)))
    evs

let rows ?(mode = Wall) () =
  let evs = events () in
  let acc : (string, row ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (e, self) ->
      let minor = match mode with Wall -> e.ev_minor | Sim -> 0.0 in
      match Hashtbl.find_opt acc e.ev_name with
      | Some r ->
          r :=
            {
              !r with
              r_count = !r.r_count + 1;
              r_total = !r.r_total +. dur_seconds mode e;
              r_self = !r.r_self +. self;
              r_minor = !r.r_minor +. minor;
            }
      | None ->
          order := e.ev_name :: !order;
          Hashtbl.add acc e.ev_name
            (ref
               {
                 r_name = e.ev_name;
                 r_cat = e.ev_cat;
                 r_count = 1;
                 r_total = dur_seconds mode e;
                 r_self = self;
                 r_minor = minor;
               }))
    (self_times mode evs);
  let collected =
    List.rev_map
      (fun name ->
        match Hashtbl.find_opt acc name with
        | Some r -> !r
        | None -> assert false)
      !order
  in
  List.sort
    (fun a b ->
      let c = Float.compare b.r_self a.r_self in
      if c <> 0 then c else String.compare a.r_name b.r_name)
    collected

type phase = {
  ph_cat : string;
  ph_count : int;
  ph_self : float;
  ph_share : float;
}

let phases ?(mode = Wall) () =
  let rs = rows ~mode () in
  let acc : (string, (int * float) ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      match Hashtbl.find_opt acc r.r_cat with
      | Some cell ->
          let n, s = !cell in
          cell := (n + r.r_count, s +. r.r_self)
      | None ->
          order := r.r_cat :: !order;
          Hashtbl.add acc r.r_cat (ref (r.r_count, r.r_self)))
    rs;
  let total =
    List.fold_left (fun t r -> t +. r.r_self) 0.0 rs
  in
  let collected =
    List.rev_map
      (fun cat ->
        match Hashtbl.find_opt acc cat with
        | Some cell ->
            let n, s = !cell in
            {
              ph_cat = cat;
              ph_count = n;
              ph_self = s;
              ph_share = (if total > 0.0 then s /. total else 0.0);
            }
        | None -> assert false)
      !order
  in
  List.sort
    (fun a b ->
      let c = Float.compare b.ph_share a.ph_share in
      if c <> 0 then c else String.compare a.ph_cat b.ph_cat)
    collected

let render_table ?(mode = Wall) () =
  let module Tt = Apple_prelude.Text_table in
  let rs = rows ~mode () in
  let total = List.fold_left (fun t r -> t +. r.r_self) 0.0 rs in
  let spans_t =
    Tt.create [ "span"; "phase"; "count"; "total s"; "self s"; "self %"; "minor Mw" ]
  in
  List.iter
    (fun r ->
      Tt.add_row spans_t
        [
          r.r_name;
          r.r_cat;
          string_of_int r.r_count;
          Printf.sprintf "%.6f" r.r_total;
          Printf.sprintf "%.6f" r.r_self;
          Printf.sprintf "%5.1f"
            (if total > 0.0 then 100.0 *. r.r_self /. total else 0.0);
          Printf.sprintf "%.2f" (r.r_minor /. 1e6);
        ])
    rs;
  let phases_t = Tt.create [ "phase"; "count"; "self s"; "share %" ] in
  List.iter
    (fun p ->
      Tt.add_row phases_t
        [
          p.ph_cat;
          string_of_int p.ph_count;
          Printf.sprintf "%.6f" p.ph_self;
          Printf.sprintf "%5.1f" (100.0 *. p.ph_share);
        ])
    (phases ~mode ());
  Printf.sprintf
    "APPLE profile (%s time, %d event(s), %d dropped)\n\n%s\n\n%s"
    (mode_to_string mode)
    (List.length (events ()))
    (dropped ()) (Tt.render spans_t) (Tt.render phases_t)
