(* Enterprise scenario: the GEANT backbone with a realistic policy mix and
   periodic re-optimization.

     dune exec examples/enterprise.exe

   This is the large-time-scale loop of the paper (Sec. VI): every epoch
   the Optimization Engine re-solves against the latest average traffic
   matrix and the Resource Orchestrator re-provisions. *)

module C = Apple_core
module B = Apple_topology.Builders
module Tr = Apple_traffic
module Rng = Apple_prelude.Rng

let () =
  let named = B.geant () in
  let rng = Rng.create 2016 in
  let profile =
    {
      Tr.Synth.default_profile with
      Tr.Synth.snapshots = 96 * 3;  (* three synthetic days *)
      total_rate = 3_000.0;
    }
  in
  let snapshots = Tr.Synth.for_topology rng profile named in
  (* Policies: a custom mix biased toward inspected web traffic. *)
  let mix =
    C.Policy.mix_of_strings
      [
        ("firewall -> proxy", 0.35);
        ("firewall -> ids -> proxy", 0.25);
        ("firewall -> ids", 0.2);
        ("nat -> firewall", 0.2);
      ]
  in
  let config =
    { C.Scenario.default_config with C.Scenario.policy_mix = mix; max_classes = 80 }
  in
  (* One epoch per synthetic day: re-optimize on that day's mean matrix. *)
  let days =
    List.init 3 (fun d ->
        List.filteri (fun i _ -> i / 96 = d) snapshots)
  in
  List.iteri
    (fun day day_snapshots ->
      let mean = Tr.Matrix.mean_of day_snapshots in
      let scenario = C.Scenario.build ~config ~seed:(2016 + day) named mean in
      let controller = C.Controller.create scenario in
      let report = C.Controller.run_epoch controller in
      (* Small-time-scale loop within the day: replay each snapshot. *)
      let losses =
        List.map (fun tm -> C.Controller.handle_snapshot controller tm) day_snapshots
      in
      let arr = Array.of_list losses in
      Format.printf
        "day %d: %3d classes, %2d instances (%3d cores), solve %.2fs, \
         loss mean %.4f%% / max %.4f%%@."
        (day + 1)
        (Array.length scenario.C.Types.classes)
        report.C.Controller.instances report.C.Controller.cores
        report.C.Controller.solve_seconds
        (100.0 *. Apple_prelude.Stats.mean arr)
        (100.0 *. Apple_prelude.Stats.maximum arr))
    days;
  Format.printf "done: 3 epochs of global optimization + per-second failover.@."
