(* Quickstart: enforce policy chains on a 4-switch line without touching
   any forwarding path.

     dune exec examples/quickstart.exe

   We declare two traffic classes by hand, run the Optimization Engine,
   and walk a packet through the generated tables to show the two headline
   properties: the policy chain is applied in order, and the switches
   visited are exactly the routing path. *)

module C = Apple_core
module Nf = Apple_vnf.Nf

let () =
  (* A 4-switch line: 0 - 1 - 2 - 3.  Every switch has an APPLE host with
     64 CPU cores. *)
  let topo = Apple_topology.Builders.linear ~n:4 in
  let class_ id ~src ~dst ~path ~chain ~rate =
    {
      C.Types.id;
      src;
      dst;
      path = Array.of_list path;
      chain = Array.of_list (Nf.chain_of_string chain);
      src_block = C.Scenario.src_block_of_class_id id;
      rate;
    }
  in
  let scenario =
    {
      C.Types.topo;
      classes =
        [|
          class_ 0 ~src:0 ~dst:3 ~path:[ 0; 1; 2; 3 ] ~chain:"firewall -> ids"
            ~rate:500.0;
          class_ 1 ~src:1 ~dst:3 ~path:[ 1; 2; 3 ] ~chain:"nat -> firewall"
            ~rate:400.0;
        |];
      host_cores = Array.make 4 C.Types.default_host_cores;
      seed = 1;
    }
  in
  let controller = C.Controller.create scenario in
  let report = C.Controller.run_epoch controller in
  Format.printf "Placed %d VNF instances (%d cores) for %d classes.@."
    report.C.Controller.instances report.C.Controller.cores
    (Array.length scenario.C.Types.classes);
  Array.iteri
    (fun v row ->
      Array.iteri
        (fun k count ->
          if count > 0 then
            Format.printf "  switch %d: %d x %s@." v count
              (Nf.name (Nf.kind_of_index k)))
        row)
    report.C.Controller.placement.C.Optimization_engine.counts;
  Format.printf "TCAM: %d entries with flow tagging (vs %d without, %.1fx saved)@."
    report.C.Controller.rules.C.Rule_generator.tcam_with_tagging
    report.C.Controller.rules.C.Rule_generator.tcam_without_tagging
    (C.Rule_generator.reduction_ratio report.C.Controller.rules);
  (* End-to-end check: every sub-class of every class traverses its chain
     in order along the unchanged routing path. *)
  (match C.Controller.verify controller with
  | Ok () ->
      Format.printf
        "verified: policy enforcement + interference freedom for all flows@."
  | Error e -> Format.printf "verification failed: %s@." e);
  (* Walk one concrete packet and print its trace. *)
  let c = scenario.C.Types.classes.(0) in
  let src_ip = c.C.Types.src_block.C.Types.Prefix.addr + 7 in
  match
    Apple_dataplane.Walk.run report.C.Controller.rules.C.Rule_generator.network
      ~path:(Array.to_list c.C.Types.path)
      ~cls:c.C.Types.id ~src_ip ()
  with
  | Error e -> Format.printf "walk failed: %a@." Apple_dataplane.Walk.pp_error e
  | Ok trace ->
      Format.printf "packet from %s: switches [%s], VNF instances [%s]@."
        (Apple_classifier.Header.string_of_ip src_ip)
        (String.concat "; " (List.map string_of_int trace.Apple_dataplane.Walk.visited))
        (String.concat "; "
           (List.map string_of_int trace.Apple_dataplane.Walk.instances))
