(* Multi-resource fair packet scheduling inside an APPLE host — the
   Discussion-section extension (paper Sec. X): VNFs consume several
   hardware resources at once, and a CPU-fair or FIFO scheduler lets one
   resource-hungry VNF starve the others.  DRFQ equalizes *dominant*
   shares instead.

     dune exec examples/multi_resource.exe *)

module D = Apple_sched.Drfq

(* Three co-located VNF packet streams with very different profiles
   (seconds of resource time per KB):
     - the firewall is cheap everywhere,
     - the IDS burns CPU (deep inspection),
     - the proxy burns NIC/memory bandwidth (caching).  *)
let profiles =
  [
    ("firewall", [| 1.0e-4; 1.0e-4 |]);
    ("ids", [| 8.0e-4; 1.0e-4 |]);
    ("proxy", [| 1.0e-4; 6.0e-4 |]);
  ]

let fill scheduler flows =
  List.iter
    (fun f ->
      for _ = 1 to 50_000 do
        D.enqueue scheduler f ~bytes:1024
      done)
    flows

let run_drfq () =
  let s = D.create ~resources:[| "cpu"; "nic" |] in
  let flows =
    List.map (fun (name, cost_per_kb) -> D.add_flow s ~name ~cost_per_kb) profiles
  in
  fill s flows;
  let served = D.run s ~duration:2.0 in
  (s, flows, served)

(* FIFO baseline: round-robin by arrival order = packets interleaved
   1:1:1, so the expensive flows hog their dominant resources. *)
let run_fifo () =
  let elapsed = ref 0.0 in
  let consumed = List.map (fun (name, _) -> (name, ref 0.0)) profiles in
  let packets = ref 0 in
  while !elapsed < 2.0 do
    List.iter
      (fun (name, cost) ->
        let dom = Array.fold_left max 0.0 cost in
        elapsed := !elapsed +. dom;
        incr packets;
        let c = List.assoc name consumed in
        c := !c +. dom)
      profiles
  done;
  (consumed, !elapsed)

let () =
  let s, flows, served = run_drfq () in
  Format.printf "DRFQ over %d packets (%.2f s of processing):@."
    (List.length served) (D.elapsed s);
  List.iter
    (fun f ->
      let packets =
        List.length (List.filter (fun (g, _) -> D.flow_name g = D.flow_name f) served)
      in
      Format.printf "  %-8s dominant share %.3f  packets %5d@." (D.flow_name f)
        (D.dominant_share s f) packets)
    flows;
  Format.printf
    "  -> equal dominant shares: the cheap firewall pushes ~6x more packets@.";
  let consumed, elapsed = run_fifo () in
  Format.printf "@.FIFO (1:1:1 interleave) over the same %.2f s:@." elapsed;
  List.iter
    (fun (name, c) ->
      Format.printf "  %-8s dominant share %.3f@." name (!c /. elapsed))
    consumed;
  Format.printf
    "  -> the expensive VNFs take ~3x the firewall's share: unfair to light flows@."
