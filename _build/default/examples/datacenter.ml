(* Data-center scenario: the UNIV1 2-tier campus network with ECMP
   multipath traffic, showing why the tagging scheme matters most there
   (paper Fig. 10).

     dune exec examples/datacenter.exe *)

module C = Apple_core
module B = Apple_topology.Builders
module Tr = Apple_traffic
module Rng = Apple_prelude.Rng

let () =
  let named = B.univ1 () in
  let rng = Rng.create 42 in
  let n = Apple_topology.Graph.num_nodes named.B.graph in
  let tm = Tr.Synth.gravity rng ~n ~total:8_000.0 in
  (* Zero the core switches' demands: only edge switches host servers. *)
  List.iter
    (fun core ->
      for j = 0 to n - 1 do
        tm.(core).(j) <- 0.0;
        tm.(j).(core) <- 0.0
      done)
    named.B.core;
  let scenario = C.Scenario.build ~seed:42 named tm in
  (* Count ECMP sibling pairs: classes of the same src-dst pair split
     across the two core switches. *)
  let pairs = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      let key = C.Types.pair_group c in
      Hashtbl.replace pairs key
        (1 + Option.value ~default:0 (Hashtbl.find_opt pairs key)))
    scenario.C.Types.classes;
  let multipath = Hashtbl.fold (fun _ k acc -> if k > 1 then acc + 1 else acc) pairs 0 in
  Format.printf "%d classes over %d pairs (%d pairs use both core paths)@."
    (Array.length scenario.C.Types.classes)
    (Hashtbl.length pairs) multipath;
  let controller = C.Controller.create scenario in
  let report = C.Controller.run_epoch controller in
  (* Where did the instances land?  The cores are on every path, so APPLE
     concentrates processing there until their 64-core budget runs out. *)
  let core_insts = ref 0 and edge_insts = ref 0 in
  Array.iteri
    (fun v row ->
      let total = Array.fold_left ( + ) 0 row in
      if List.mem v named.B.core then core_insts := !core_insts + total
      else edge_insts := !edge_insts + total)
    report.C.Controller.placement.C.Optimization_engine.counts;
  Format.printf "placement: %d instances at the 2 cores, %d at the 21 edges@."
    !core_insts !edge_insts;
  Format.printf "TCAM with tagging: %d entries; without: %d (%.1fx reduction)@."
    report.C.Controller.rules.C.Rule_generator.tcam_with_tagging
    report.C.Controller.rules.C.Rule_generator.tcam_without_tagging
    (C.Rule_generator.reduction_ratio report.C.Controller.rules);
  match C.Controller.verify controller with
  | Ok () -> Format.printf "verified on every ECMP sibling.@."
  | Error e -> Format.printf "verification failed: %s@." e
