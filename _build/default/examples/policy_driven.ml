(* The full operator workflow, end to end:

     policy file -> equivalence classes (atomic predicates)
                 -> Optimization Engine placement
                 -> tagging-scheme switch tables
                 -> packet-level traffic through the installed data plane

     dune exec examples/policy_driven.exe *)

module C = Apple_core
module P = Apple_classifier.Predicate
module PS = Apple_packetsim.Packet_sim

let () =
  let env = P.env () in
  let topo = Apple_topology.Builders.internet2 () in
  (* 1. Parse the policy file (see Apple_core.Policy_file for grammar). *)
  let flows =
    match C.Policy_file.parse ~env ~topology:topo C.Policy_file.example with
    | Ok flows -> flows
    | Error e -> Format.kasprintf failwith "%a" C.Policy_file.pp_error e
  in
  Format.printf "parsed %d policies@." (List.length flows);
  (* 2. Aggregate into equivalence classes (same path + same chain). *)
  let agg = C.Flow_aggregation.aggregate ~env topo flows in
  Format.printf "aggregated into %d classes over %d atomic predicates@."
    (Array.length agg.C.Flow_aggregation.scenario.C.Types.classes)
    (List.length agg.C.Flow_aggregation.atoms);
  (* 3. Optimize, generate rules, verify. *)
  let controller = C.Controller.create agg.C.Flow_aggregation.scenario in
  let report = C.Controller.run_epoch controller in
  Format.printf "placed %d instances (%d cores), %d TCAM entries@."
    report.C.Controller.instances report.C.Controller.cores
    report.C.Controller.tcam_entries;
  (match C.Controller.verify controller with
  | Ok () -> Format.printf "verified: all classes enforced on unchanged paths@."
  | Error e -> Format.printf "VERIFY FAILED: %s@." e);
  (* 4. Push packet-level traffic through the installed tables. *)
  let scenario = agg.C.Flow_aggregation.scenario in
  let network = report.C.Controller.rules.C.Rule_generator.network in
  let instances =
    match C.Controller.netstate controller with
    | Some state ->
        C.Resource_orchestrator.instances state.C.Netstate.orchestrator
    | None -> []
  in
  let specs =
    Array.to_list
      (Array.map
         (fun cls ->
           (* offered at the provisioned rate: 1500-byte packets *)
           let pps = cls.C.Types.rate *. 1e6 /. 8.0 /. 1500.0 in
           {
             PS.flow_name = Printf.sprintf "class%d" cls.C.Types.id;
             cls = cls.C.Types.id;
             src_ip = cls.C.Types.src_block.C.Types.Prefix.addr + 1;
             path = Array.to_list cls.C.Types.path;
             source = PS.Cbr pps;
             start_at = 0.0;
             stop_at = 1.0;
           })
         scenario.C.Types.classes)
  in
  let r = PS.run ~network ~instances ~flows:specs ~duration:1.0 () in
  Format.printf "packet simulation: %d packets sent, %.3f%% lost@."
    r.PS.total_sent (100.0 *. r.PS.loss_rate);
  List.iter
    (fun (f : PS.flow_report) ->
      let p50 =
        if Array.length f.PS.latencies = 0 then nan
        else Apple_prelude.Stats.median f.PS.latencies
      in
      Format.printf "  %-8s sent %6d  delivered %6d  p50 latency %.0f us@."
        f.PS.spec.PS.flow_name f.PS.sent f.PS.delivered (1e6 *. p50))
    r.PS.flows
