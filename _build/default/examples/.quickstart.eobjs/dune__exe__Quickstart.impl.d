examples/quickstart.ml: Apple_classifier Apple_core Apple_dataplane Apple_topology Apple_vnf Array Format List String
