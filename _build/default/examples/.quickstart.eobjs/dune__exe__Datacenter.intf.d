examples/datacenter.mli:
