examples/failover_demo.ml: Apple_core Apple_prelude Apple_topology Apple_traffic Apple_vnf Array Format List
