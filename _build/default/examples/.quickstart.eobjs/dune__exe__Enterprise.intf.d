examples/enterprise.mli:
