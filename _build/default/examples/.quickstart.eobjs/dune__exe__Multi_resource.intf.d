examples/multi_resource.mli:
