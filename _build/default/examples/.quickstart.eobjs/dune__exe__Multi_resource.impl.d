examples/multi_resource.ml: Apple_sched Array Format List
