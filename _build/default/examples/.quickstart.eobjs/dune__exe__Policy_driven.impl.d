examples/policy_driven.ml: Apple_classifier Apple_core Apple_packetsim Apple_prelude Apple_topology Array Format List Printf
