examples/policy_driven.mli:
