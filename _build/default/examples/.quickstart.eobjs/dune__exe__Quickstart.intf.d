examples/quickstart.mli:
