examples/datacenter.ml: Apple_core Apple_prelude Apple_topology Apple_traffic Array Format Hashtbl List Option
