(* Fast-failover timeline: a traffic burst overloads a VNF instance; the
   Dynamic Handler halves the hot sub-classes, spills onto siblings,
   spawns ClickOS instances for the remainder, then rolls everything back
   when the burst subsides (paper Sec. VI, Fig. 4).

     dune exec examples/failover_demo.exe *)

module C = Apple_core
module B = Apple_topology.Builders
module Tr = Apple_traffic
module Rng = Apple_prelude.Rng

let () =
  let named = B.internet2 () in
  let rng = Rng.create 7 in
  let tm = Tr.Synth.gravity rng ~n:12 ~total:4_000.0 in
  let scenario = C.Scenario.build ~seed:7 named tm in
  let placement = C.Optimization_engine.solve scenario in
  let assignment = C.Subclass.assign scenario placement in
  let state = C.Netstate.of_assignment scenario assignment in
  let handler = C.Dynamic_handler.create state in
  (* The victim: the largest class gets a 5x burst for 5 "seconds". *)
  let victim = ref scenario.C.Types.classes.(0) in
  Array.iter
    (fun c -> if c.C.Types.rate > !victim.C.Types.rate then victim := c)
    scenario.C.Types.classes;
  let base_rate = !victim.C.Types.rate in
  Format.printf
    "victim class #%d: %.0f Mbps, chain %s, path of %d switches@."
    !victim.C.Types.id base_rate
    (Apple_vnf.Nf.chain_to_string (Array.to_list !victim.C.Types.chain))
    (Array.length !victim.C.Types.path);
  let step t =
    C.Dynamic_handler.step handler;
    let events = C.Dynamic_handler.events handler in
    Format.printf
      "t=%2ds rate=%5.0f Mbps  loss=%6.3f%%  extra_cores=%2d  \
       (overloads=%d spawns=%d rollbacks=%d)@."
      t !victim.C.Types.rate
      (100.0 *. C.Netstate.network_loss state)
      (C.Netstate.extra_cores state)
      (List.assoc "overloads" events)
      (List.assoc "spawns" events)
      (List.assoc "rollbacks" events)
  in
  for t = 0 to 12 do
    if t = 3 then begin
      Format.printf "--- burst begins (5x) ---@.";
      !victim.C.Types.rate <- base_rate *. 5.0
    end;
    if t = 8 then begin
      Format.printf "--- burst ends ---@.";
      !victim.C.Types.rate <- base_rate
    end;
    step t
  done;
  Format.printf "final extra cores: %d (all failover instances cancelled)@."
    (C.Netstate.extra_cores state)
