lib/bdd/bdd.mli:
