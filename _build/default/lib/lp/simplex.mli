(** Bounded-variable two-phase revised simplex on computational standard
    form.

    The problem solved is

    {v minimize    c . x
       subject to  A x = b
                   l <= x <= u v}

    where [A] already contains one slack column per original row (the
    {!Model} layer performs that lowering).  The basis inverse is kept as a
    dense matrix updated in product form; Dantzig pricing with an automatic
    switch to Bland's rule guards against cycling.  This is the engine
    behind the paper's Optimization Engine (Sec. IV-D), replacing CPLEX. *)

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit  (** gave up after [max_iters] pivots *)

type problem = {
  num_vars : int;  (** total columns, slacks included *)
  num_rows : int;
  (* Sparse columns: [col_index.(j)] and [col_value.(j)] hold the nonzero
     pattern of column [j]. *)
  col_index : int array array;
  col_value : float array array;
  rhs : float array;
  obj : float array;
  lower : float array;  (** may be [neg_infinity] *)
  upper : float array;  (** may be [infinity] *)
}

type result = {
  status : status;
  objective : float;
  primal : float array;  (** length [num_vars]; meaningful when Optimal *)
  duals : float array;
      (** length [num_rows]; the simplex multipliers [y = c_B B^-1] at the
          final basis — the shadow price of each row's right-hand side in
          the (minimization) standard form.  Meaningful when Optimal. *)
  iterations : int;
}

val solve : ?max_iters:int -> problem -> result
(** Solve the standard-form problem.  [max_iters] defaults to a generous
    multiple of the problem size. *)
