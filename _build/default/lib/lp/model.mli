(** Linear / integer-linear program builder and solver front-end.

    This is the CPLEX-replacement surface the Optimization Engine talks to:
    declare variables with bounds and optional integrality, add linear
    constraints, then solve the LP relaxation, the exact ILP (branch and
    bound), or the paper's LP-relax-and-round heuristic. *)

type t
(** A model under construction.  Mutable; not thread-safe. *)

type var
(** Handle to a declared variable. *)

type sense = Le | Ge | Eq

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Limit  (** iteration or node budget exhausted; best effort returned *)

type solution = {
  status : status;
  objective : float;
  values : float array;  (** indexed by {!var_index} *)
  duals : float array;
      (** shadow prices, indexed by constraint insertion order: the
          marginal change of the optimal objective per unit increase of a
          constraint's right-hand side.  Meaningful for [Optimal] LP
          solutions; zeros otherwise (including after branch and bound,
          where no single dual vector exists). *)
}

val create : ?maximize:bool -> unit -> t
(** Fresh model.  Default objective sense is minimization. *)

val add_var :
  t ->
  ?lb:float ->
  ?ub:float ->
  ?integer:bool ->
  ?obj:float ->
  ?name:string ->
  unit ->
  var
(** Declare a variable.  Defaults: [lb = 0.], [ub = infinity],
    [integer = false], [obj = 0.]. *)

val add_constraint : t -> ?name:string -> (float * var) list -> sense -> float -> unit
(** [add_constraint t terms sense rhs] adds [sum terms (sense) rhs].
    Duplicate variables in [terms] are summed. *)

val set_obj : t -> var -> float -> unit
(** Overwrite a variable's objective coefficient. *)

val var_index : var -> int
(** Stable dense index of a variable (order of declaration). *)

val var_name : t -> var -> string
val num_vars : t -> int
val num_constraints : t -> int

val value : solution -> var -> float
(** Variable value in a solution. *)

val solve_lp : ?max_iters:int -> t -> solution
(** Solve the LP relaxation (integrality dropped). *)

val solve_ilp : ?max_nodes:int -> ?max_iters:int -> t -> solution
(** Exact branch and bound over the integer variables.  [Limit] is
    returned with the incumbent when the node budget runs out; if no
    incumbent was found the relaxation answer is reported with [Limit]. *)

val solve_round_up : ?max_iters:int -> t -> solution
(** The paper's heuristic: solve the LP relaxation and round every integer
    variable up to the next integer.  Always integral and, for covering
    structures like Eq. (5)–(6) with upward-closed feasibility, feasible;
    callers with richer structure should repair with
    {!feasible_with}. *)

val feasible_with : t -> float array -> bool
(** [feasible_with t x] checks all constraints and bounds of [t] at the
    point [x] (1e-6 tolerance).  Integrality is also checked for integer
    variables. *)

val objective_at : t -> float array -> float
(** Objective value of an arbitrary point. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line size summary (vars / int vars / constraints / nonzeros). *)
