lib/lp/model.ml: Array Float Format Hashtbl List Printf Simplex
