lib/lp/simplex.mli:
