(** The evaluation topologies of the paper (Sec. IX-A) plus generic
    generators used by tests and examples.

    The real datasets (Abilene TM archive, TOTEM, UNIV1 traces, Rocketfuel
    maps) are not redistributable, so each builder synthesizes a
    deterministic graph with the node/link counts the paper reports:
    Internet2 12/15, GEANT 23/74 directed (37 undirected), UNIV1 23/43,
    AS-3679 79/147.  Structure follows the published descriptions (Abilene
    ring-of-meshes, GEANT mesh, 2-tier data center, power-law ISP). *)

type named = {
  graph : Graph.t;
  label : string;
  ingress : int list;  (** nodes where traffic enters (all, for WANs) *)
  core : int list;  (** designated core switches (data center only) *)
}

val internet2 : unit -> named
(** 12 nodes, 15 links — the Abilene/Internet2 research backbone. *)

val geant : unit -> named
(** 23 nodes, 37 undirected links (74 directed as counted by TOTEM). *)

val univ1 : unit -> named
(** 23 nodes, 43 links — 2-tier campus data center: 2 cores, 21 edge
    switches dual-homed to both cores, plus one core-core link. *)

val as3679 : unit -> named
(** 79 nodes, 147 links — Rocketfuel-style router-level ISP synthesized
    with preferential attachment from a fixed seed.  (The paper labels it
    AS-3679; the node/link counts match Rocketfuel's reduced backbone map
    of AS 3967, Exodus.) *)

val rocketfuel : asn:int -> nodes:int -> links:int -> named
(** Synthesize a Rocketfuel-style ISP backbone with the given size:
    preferential-attachment spanning tree plus degree-biased chords,
    deterministic in [asn].  [links] must be at least [nodes - 1]. *)

val as1221 : unit -> named
(** 104 nodes / 151 links (Telstra's reduced backbone map). *)

val as1755 : unit -> named
(** 87 nodes / 161 links (Ebone). *)

val as3257 : unit -> named
(** 161 nodes / 328 links (Tiscali) — the "gigantic network" regime the
    paper defers to heuristics. *)

val all_paper_topologies : unit -> named list
(** The four above, in the paper's order. *)

val simulation_topologies : unit -> named list
(** The three used in Fig. 10–12 (Internet2, GEANT, UNIV1). *)

val fat_tree : k:int -> named
(** Standard k-ary fat-tree (k even): k²/4 cores, k pods. *)

val waxman : Apple_prelude.Rng.t -> n:int -> alpha:float -> beta:float -> named
(** Random geometric Waxman graph, retried until connected. *)

val linear : n:int -> named
(** Path topology for unit tests. *)

val ring : n:int -> named
