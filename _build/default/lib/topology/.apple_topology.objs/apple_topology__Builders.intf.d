lib/topology/builders.mli: Apple_prelude Graph
