lib/topology/builders.ml: Apple_prelude Array Graph List Printf
