module Rng = Apple_prelude.Rng

type named = {
  graph : Graph.t;
  label : string;
  ingress : int list;
  core : int list;
}

let all_nodes g = List.init (Graph.num_nodes g) (fun i -> i)

(* Internet2/Abilene-style backbone: 12 PoPs, 15 links.  The node names are
   the historical PoP cities; the link set follows the published backbone
   shape (two coastal chains bridged across the middle). *)
let internet2 () =
  let cities =
    [|
      "Seattle"; "Sunnyvale"; "LosAngeles"; "Denver"; "KansasCity"; "Houston";
      "Chicago"; "Indianapolis"; "Atlanta"; "WashingtonDC"; "NewYork"; "Dallas";
    |]
  in
  let g = Graph.create ~n:12 in
  Array.iteri (fun i c -> Graph.set_name g i c) cities;
  let links =
    [
      (0, 1); (0, 3); (1, 2); (1, 3); (2, 5); (3, 4); (4, 6); (4, 5); (5, 8);
      (6, 7); (7, 8); (8, 9); (9, 10); (6, 10); (5, 11);
    ]
  in
  List.iter (fun (u, v) -> Graph.add_edge g u v ~capacity:10_000.0) links;
  assert (Graph.num_edges g = 15);
  assert (Graph.is_connected g);
  { graph = g; label = "Internet2"; ingress = all_nodes g; core = [] }

(* GEANT-style pan-European research mesh: 23 nodes, 37 undirected links
   (74 unidirectional as TOTEM counts them).  Built deterministically:
   a backbone ring over the large PoPs with chords and leaf attachments
   mirroring the real degree distribution (min 2, max 9). *)
let geant () =
  let g = Graph.create ~n:23 in
  let labels =
    [|
      "AT"; "BE"; "CH"; "CZ"; "DE"; "ES"; "FR"; "GR"; "HR"; "HU"; "IE"; "IL";
      "IT"; "LU"; "NL"; "PL"; "PT"; "SE"; "SI"; "SK"; "UK"; "NY"; "RO";
    |]
  in
  Array.iteri (fun i c -> Graph.set_name g i c) labels;
  let links =
    [
      (* central European high-degree core: DE, FR, IT, NL, UK *)
      (4, 6); (4, 12); (4, 14); (4, 20); (6, 12); (6, 20); (12, 14); (14, 20);
      (* ring of mid-size PoPs through the core *)
      (0, 4); (0, 9); (0, 18); (1, 14); (1, 6); (2, 6); (2, 12); (3, 4);
      (3, 15); (3, 19); (5, 6); (5, 16); (5, 12); (7, 12); (7, 22); (8, 9);
      (8, 18); (9, 19); (10, 20); (10, 14); (11, 12); (11, 20); (13, 4);
      (13, 6); (15, 4); (16, 20); (17, 4); (21, 20); (22, 9);
    ]
  in
  List.iter (fun (u, v) -> Graph.add_edge g u v ~capacity:10_000.0) links;
  assert (Graph.num_edges g = 37);
  assert (Graph.is_connected g);
  { graph = g; label = "GEANT"; ingress = all_nodes g; core = [] }

(* UNIV1: 2-tier campus data center, 23 switches and 43 links: 2 cores,
   21 edge switches each dual-homed to both cores (42 links) plus the
   core-core link. *)
let univ1 () =
  let g = Graph.create ~n:23 in
  Graph.set_name g 0 "core1";
  Graph.set_name g 1 "core2";
  for i = 2 to 22 do
    Graph.set_name g i (Printf.sprintf "edge%d" (i - 1))
  done;
  Graph.add_edge g 0 1 ~capacity:40_000.0;
  for i = 2 to 22 do
    Graph.add_edge g 0 i ~capacity:10_000.0;
    Graph.add_edge g 1 i ~capacity:10_000.0
  done;
  assert (Graph.num_edges g = 43);
  { graph = g; label = "UNIV1"; ingress = List.init 21 (fun i -> i + 2); core = [ 0; 1 ] }

(* Rocketfuel-style router-level ISP backbone: a fixed-seed
   preferential-attachment process builds a spanning tree plus
   degree-biased chords, giving the heavy-tailed degree distribution of
   measured ISP maps. *)
let rocketfuel ~asn ~nodes ~links =
  if links < nodes - 1 then invalid_arg "Builders.rocketfuel: too few links";
  let n = nodes in
  let g = Graph.create ~n in
  let rng = Rng.create asn in
  for i = 0 to n - 1 do
    Graph.set_name g i (Printf.sprintf "r%d" i)
  done;
  (* Preferential-attachment spanning tree. *)
  let degree_weight u = float_of_int (1 + Graph.degree g u) in
  for v = 1 to n - 1 do
    let candidates = List.init v (fun u -> (u, degree_weight u)) in
    let u = Rng.sample_weighted rng candidates in
    Graph.add_edge g u v ~capacity:10_000.0
  done;
  (* Extra chords up to the target link count. *)
  let added = ref 0 in
  while !added < links - (n - 1) do
    let candidates = List.init n (fun u -> (u, degree_weight u)) in
    let u = Rng.sample_weighted rng candidates in
    let v = Rng.sample_weighted rng candidates in
    if u <> v && not (Graph.has_edge g u v) then begin
      Graph.add_edge g u v ~capacity:10_000.0;
      incr added
    end
  done;
  assert (Graph.num_edges g = links);
  assert (Graph.is_connected g);
  {
    graph = g;
    label = Printf.sprintf "AS-%d" asn;
    ingress = all_nodes g;
    core = [];
  }

(* The paper's 79-router ISP (its counts match Rocketfuel's AS 3967
   reduced map; we keep the paper's AS-3679 label). *)
let as3679 () =
  { (rocketfuel ~asn:3679 ~nodes:79 ~links:147) with label = "AS-3679" }

let as1221 () = rocketfuel ~asn:1221 ~nodes:104 ~links:151
let as1755 () = rocketfuel ~asn:1755 ~nodes:87 ~links:161
let as3257 () = rocketfuel ~asn:3257 ~nodes:161 ~links:328

let all_paper_topologies () = [ internet2 (); geant (); univ1 (); as3679 () ]
let simulation_topologies () = [ internet2 (); geant (); univ1 () ]

let fat_tree ~k =
  if k <= 0 || k mod 2 <> 0 then invalid_arg "Builders.fat_tree: k must be even";
  let cores = k * k / 4 in
  let aggs = k * k / 2 in
  let edges_count = k * k / 2 in
  let n = cores + aggs + edges_count in
  let g = Graph.create ~n in
  let core i = i in
  let agg pod j = cores + (pod * (k / 2)) + j in
  let edge pod j = cores + aggs + (pod * (k / 2)) + j in
  for i = 0 to cores - 1 do
    Graph.set_name g (core i) (Printf.sprintf "core%d" i)
  done;
  for pod = 0 to k - 1 do
    for j = 0 to (k / 2) - 1 do
      Graph.set_name g (agg pod j) (Printf.sprintf "agg%d_%d" pod j);
      Graph.set_name g (edge pod j) (Printf.sprintf "edge%d_%d" pod j);
      (* edge-agg full bipartite within the pod *)
      for j' = 0 to (k / 2) - 1 do
        Graph.add_edge g (edge pod j) (agg pod j') ~capacity:10_000.0
      done;
      (* agg j connects to core group j *)
      for c = 0 to (k / 2) - 1 do
        Graph.add_edge g (agg pod j) (core ((j * (k / 2)) + c)) ~capacity:40_000.0
      done
    done
  done;
  {
    graph = g;
    label = Printf.sprintf "fat-tree-k%d" k;
    ingress = List.init edges_count (fun i -> cores + aggs + i);
    core = List.init cores (fun i -> i);
  }

let waxman rng ~n ~alpha ~beta =
  let rec attempt () =
    let g = Graph.create ~n in
    let xs = Array.init n (fun _ -> Rng.uniform rng) in
    let ys = Array.init n (fun _ -> Rng.uniform rng) in
    let max_dist = sqrt 2.0 in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let d = sqrt (((xs.(u) -. xs.(v)) ** 2.0) +. ((ys.(u) -. ys.(v)) ** 2.0)) in
        let p = alpha *. exp (-.d /. (beta *. max_dist)) in
        if Rng.uniform rng < p then Graph.add_edge g u v
      done
    done;
    if Graph.is_connected g then g else attempt ()
  in
  let g = attempt () in
  { graph = g; label = "waxman"; ingress = all_nodes g; core = [] }

let linear ~n =
  let g = Graph.create ~n in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1)
  done;
  { graph = g; label = "linear"; ingress = all_nodes g; core = [] }

let ring ~n =
  if n < 3 then invalid_arg "Builders.ring: need n >= 3";
  let g = Graph.create ~n in
  for i = 0 to n - 1 do
    Graph.add_edge g i ((i + 1) mod n)
  done;
  { graph = g; label = "ring"; ingress = all_nodes g; core = [] }
