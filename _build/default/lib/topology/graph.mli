(** Undirected network graphs with weighted, capacitated links.

    Nodes are dense integers [0 .. num_nodes-1]; the paper's topologies
    attach human-readable names.  Links are undirected (each stored once);
    routing treats them as bidirectional. *)

type t

val create : n:int -> t
(** Graph with [n] isolated nodes. *)

val add_edge : t -> ?weight:float -> ?capacity:float -> int -> int -> unit
(** Add an undirected link.  Default [weight = 1.], [capacity = 10_000.]
    (Mbps).  Self-loops and duplicate edges are rejected. *)

val remove_edge : t -> int -> int -> unit
(** Remove an undirected link (e.g. to model a link failure).  Raises
    [Not_found] if absent. *)

val set_name : t -> int -> string -> unit
val name : t -> int -> string
(** Node name; defaults to ["n<i>"]. *)

val node_by_name : t -> string -> int option

val num_nodes : t -> int
val num_edges : t -> int
(** Undirected link count. *)

val has_edge : t -> int -> int -> bool
val neighbors : t -> int -> (int * float) list
(** [(neighbor, weight)] pairs, ascending by neighbor id. *)

val edge_capacity : t -> int -> int -> float
(** Raises [Not_found] for a missing link. *)

val degree : t -> int -> int
val is_connected : t -> bool

val shortest_path : t -> int -> int -> int list option
(** Dijkstra by weight; deterministic tie-break on smaller node id.
    Includes both endpoints; [Some [src]] when [src = dst]. *)

val path_length : t -> int list -> float
(** Sum of link weights along a node sequence.  Raises [Not_found] if a
    hop is not a link. *)

val k_shortest_paths : t -> int -> int -> k:int -> int list list
(** Yen's algorithm; loopless paths, shortest first, at most [k]. *)

val edges : t -> (int * int * float) list
(** All undirected links [(u, v, weight)] with [u < v]. *)

val pp : Format.formatter -> t -> unit
