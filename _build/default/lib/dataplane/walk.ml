type trace = {
  visited : int list;
  instances : int list;
  final_host_tag : Tag.host_field;
  subclass_tag : int option;
}

type error =
  | No_matching_rule of int
  | Vswitch_miss of int
  | Host_loop of int
  | Wrong_host of { switch : int; wanted : int }

exception Walk_error of error

(* Process the packet inside the APPLE host attached to [sw]: follow
   vSwitch rules from [entry_port] until a Back_to_network action.
   [header_valid] reflects whether header-derived class matching is still
   possible; traversing a rewriting instance clears it. *)
let host_processing net ~sw ~cls ~tags ~entry_port ~record_instance ~rewriters
    ~header_valid =
  let table = net.(sw) in
  let subclass =
    match tags.Tag.subclass with
    | Some s -> s
    | None -> raise (Walk_error (Vswitch_miss sw))
  in
  let budget = ref 64 in
  let rec step port =
    decr budget;
    if !budget <= 0 then raise (Walk_error (Host_loop sw));
    let cls_match = if !header_valid then Some cls else None in
    match Tcam.lookup_vswitch table port ~cls:cls_match ~subclass with
    | None -> raise (Walk_error (Vswitch_miss sw))
    | Some (Rule.To_instance inst) ->
        record_instance inst;
        if rewriters inst then header_valid := false;
        step (Rule.From_instance inst)
    | Some (Rule.Back_to_network next_host) -> tags.Tag.host <- next_host
  in
  step entry_port

let run net ~path ~cls ~src_ip ?(start_in_host = false)
    ?(rewriters = fun _ -> false) () =
  let tags = Tag.fresh () in
  let visited = ref [] in
  let stages = ref [] in
  let header_valid = ref true in
  let record_instance i = stages := i :: !stages in
  let enter_host sw ~entry_port =
    host_processing net ~sw ~cls ~tags ~entry_port ~record_instance ~rewriters
      ~header_valid
  in
  try
    (match (path, start_in_host) with
    | first :: _, true ->
        (* Traffic born in a production VM inside the first hop's host:
           the vSwitch tags it before it ever reaches the switch.  The
           classification rules live in the vSwitch mirror of the ingress
           table; we model it as the physical classification applied
           immediately, then host processing if the first host is local. *)
        let table = net.(first) in
        (match Tcam.lookup_phys table tags ~src_ip with
        | Some (Rule.Tag_and_deliver { subclass; host }) ->
            tags.Tag.subclass <- Some subclass;
            if host <> first then raise (Walk_error (Wrong_host { switch = first; wanted = host }));
            enter_host first ~entry_port:Rule.From_production_vm
        | Some (Rule.Tag_and_forward { subclass; host }) ->
            tags.Tag.subclass <- Some subclass;
            tags.Tag.host <- host
        | Some (Rule.Fwd_to_host _ | Rule.Set_host_and_forward _ | Rule.Goto_next)
        | None ->
            raise (Walk_error (No_matching_rule first)))
    | _ -> ());
    let rec hop = function
      | [] -> ()
      | sw :: rest ->
          visited := sw :: !visited;
          let table = net.(sw) in
          (match Tcam.lookup_phys table tags ~src_ip with
          | None -> raise (Walk_error (No_matching_rule sw))
          | Some (Rule.Goto_next) -> ()
          | Some (Rule.Fwd_to_host host) ->
              if host <> sw then
                raise (Walk_error (Wrong_host { switch = sw; wanted = host }));
              enter_host sw ~entry_port:Rule.From_network
          | Some (Rule.Tag_and_deliver { subclass; host }) ->
              tags.Tag.subclass <- Some subclass;
              if host <> sw then
                raise (Walk_error (Wrong_host { switch = sw; wanted = host }));
              enter_host sw ~entry_port:Rule.From_network
          | Some (Rule.Tag_and_forward { subclass; host }) ->
              tags.Tag.subclass <- Some subclass;
              tags.Tag.host <- host
          | Some (Rule.Set_host_and_forward host) -> tags.Tag.host <- host);
          hop rest
    in
    (* If the packet was pre-tagged inside the first host, the first
       switch still sees it with its (possibly local) host tag. *)
    hop path;
    Ok
      {
        visited = List.rev !visited;
        instances = List.rev !stages;
        final_host_tag = tags.Tag.host;
        subclass_tag = tags.Tag.subclass;
      }
  with Walk_error e -> Error e

let policy_enforced trace ~instance_kind ~chain =
  let kinds = List.map instance_kind trace.instances in
  kinds = chain

let interference_free trace ~path = trace.visited = path

let pp_error ppf = function
  | No_matching_rule sw -> Format.fprintf ppf "no matching rule at switch %d" sw
  | Vswitch_miss sw -> Format.fprintf ppf "vSwitch lookup miss at switch %d" sw
  | Host_loop sw -> Format.fprintf ppf "vSwitch rule loop at switch %d" sw
  | Wrong_host { switch; wanted } ->
      Format.fprintf ppf "switch %d asked to deliver to non-local host %d"
        switch wanted
