module Prefix_split = Apple_classifier.Prefix_split

type phys_match = {
  m_host : [ `Empty | `Host of int | `Fin | `Any ];
  m_subclass : [ `Subclass of int | `Any ];
  m_prefixes : Prefix_split.prefix list;
}

type phys_action =
  | Fwd_to_host of int
  | Tag_and_deliver of { subclass : int; host : int }
  | Tag_and_forward of { subclass : int; host : Tag.host_field }
  | Set_host_and_forward of Tag.host_field
  | Goto_next

type phys_rule = { priority : int; pmatch : phys_match; action : phys_action }

let tcam_entries r = max 1 (List.length r.pmatch.m_prefixes)

type vswitch_port = From_network | From_instance of int | From_production_vm

type vswitch_action =
  | To_instance of int
  | Back_to_network of Tag.host_field

type vswitch_key =
  | Per_class of { cls : int; subclass : int }
  | Global of int

type vswitch_rule = {
  v_port : vswitch_port;
  v_key : vswitch_key;
  v_action : vswitch_action;
}

let pp_host_match ppf = function
  | `Empty -> Format.pp_print_string ppf "host=empty"
  | `Host h -> Format.fprintf ppf "host=%d" h
  | `Fin -> Format.pp_print_string ppf "host=fin"
  | `Any -> Format.pp_print_string ppf "host=*"

let pp_phys_rule ppf r =
  let action_str =
    match r.action with
    | Fwd_to_host h -> Printf.sprintf "fwd-to-host %d" h
    | Tag_and_deliver { subclass; host } ->
        Printf.sprintf "tag sub=%d, fwd-to-host %d" subclass host
    | Tag_and_forward { subclass; host } ->
        Format.asprintf "tag sub=%d host=%a, goto-next" subclass
          Tag.pp_host_field host
    | Set_host_and_forward h ->
        Format.asprintf "set host=%a, goto-next" Tag.pp_host_field h
    | Goto_next -> "goto-next"
  in
  Format.fprintf ppf "prio=%d %a sub=%s prefixes=%d -> %s" r.priority
    pp_host_match r.pmatch.m_host
    (match r.pmatch.m_subclass with
    | `Any -> "*"
    | `Subclass s -> string_of_int s)
    (List.length r.pmatch.m_prefixes)
    action_str

let pp_vswitch_rule ppf r =
  let port =
    match r.v_port with
    | From_network -> "net"
    | From_instance i -> Printf.sprintf "inst%d" i
    | From_production_vm -> "vm"
  in
  let key =
    match r.v_key with
    | Per_class { cls; subclass } -> Printf.sprintf "class=%d sub=%d" cls subclass
    | Global g -> Printf.sprintf "gtag=%d" g
  in
  let action =
    match r.v_action with
    | To_instance i -> Printf.sprintf "to-inst%d" i
    | Back_to_network h -> Format.asprintf "out host=%a" Tag.pp_host_field h
  in
  Format.fprintf ppf "in=%s %s -> %s" port key action
