(** The two packet tag fields of the APPLE tagging scheme (Sec. V-B).

    A packet carries a {b host-ID} field naming the next APPLE host that
    must process it (or [Fin] once the chain is complete) and a
    {b sub-class ID} that is written once at the ingress switch and never
    changes.  The paper maps them onto the 6-bit DS field and the 12-bit
    VLAN ID. *)

type host_field =
  | Empty  (** packet just entered the network *)
  | Host of int  (** next APPLE host (identified by its switch) *)
  | Fin  (** all required VNF instances visited *)

val host_field_bits : int
(** 6 — the DS field. *)

val subclass_bits : int
(** 12 — the VLAN ID. *)

val max_subclasses : int
(** 2^12; sub-class IDs are local to a class so this bounds sub-classes
    per class, not per network. *)

val pp_host_field : Format.formatter -> host_field -> unit

type tags = { mutable host : host_field; mutable subclass : int option }

val fresh : unit -> tags
(** Untagged packet state. *)

val pp_tags : Format.formatter -> tags -> unit
