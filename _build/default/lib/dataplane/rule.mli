(** Flow-table rules: the physical-switch TCAM layout of Table III and
    the vSwitch three-tuple rules of Sec. V-B.

    A physical switch runs a pipelined pair of tables: the APPLE table
    (host-match, classification, pass-by) and then the "next table"
    holding other applications' rules.  A classification entry matches a
    sub-class by a set of source prefixes, so its TCAM footprint is the
    number of prefixes. *)

type phys_match = {
  m_host : [ `Empty | `Host of int | `Fin | `Any ];
  m_subclass : [ `Subclass of int | `Any ];
  m_prefixes : Apple_classifier.Prefix_split.prefix list;
      (** empty list = wildcard on the header *)
}

type phys_action =
  | Fwd_to_host of int  (** deliver to the APPLE host at this switch *)
  | Tag_and_deliver of { subclass : int; host : int }
      (** ingress classification, first processing host is local *)
  | Tag_and_forward of { subclass : int; host : Tag.host_field }
      (** ingress classification, processing starts downstream; fall
          through to the next table for normal forwarding *)
  | Set_host_and_forward of Tag.host_field
      (** retag the next host when a packet leaves an APPLE host *)
  | Goto_next  (** pass-by: no APPLE processing at this switch *)

type phys_rule = {
  priority : int;
  pmatch : phys_match;
  action : phys_action;
}

val tcam_entries : phys_rule -> int
(** TCAM entries the rule occupies: [max 1 (List.length m_prefixes)]. *)

(** vSwitch rules match [<in_port, class, sub-class>].  [in_port] is
    enough to know which instances the packet has already traversed.

    The {e class} part of the triple is recovered from the packet header,
    so it breaks once a header-rewriting NF (e.g. NAT) has touched the
    packet.  The Sec.-X fix is the {!Global} key: a network-unique
    sub-class identifier written at the ingress, which needs no header
    matching at all. *)
type vswitch_port =
  | From_network
  | From_instance of int  (** local VNF instance id *)
  | From_production_vm

type vswitch_action =
  | To_instance of int
  | Back_to_network of Tag.host_field  (** retag the next host and emit *)

type vswitch_key =
  | Per_class of { cls : int; subclass : int }
      (** class from the header + the class-local sub-class tag *)
  | Global of int  (** network-unique sub-class tag; header-independent *)

type vswitch_rule = {
  v_port : vswitch_port;
  v_key : vswitch_key;
  v_action : vswitch_action;
}

val pp_phys_rule : Format.formatter -> phys_rule -> unit
val pp_vswitch_rule : Format.formatter -> vswitch_rule -> unit
