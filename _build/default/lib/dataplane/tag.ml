type host_field = Empty | Host of int | Fin

let host_field_bits = 6
let subclass_bits = 12
let max_subclasses = 1 lsl subclass_bits

let pp_host_field ppf = function
  | Empty -> Format.pp_print_string ppf "empty"
  | Host h -> Format.fprintf ppf "host:%d" h
  | Fin -> Format.pp_print_string ppf "fin"

type tags = { mutable host : host_field; mutable subclass : int option }

let fresh () = { host = Empty; subclass = None }

let pp_tags ppf t =
  Format.fprintf ppf "<%a, %a>" pp_host_field t.host
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "untagged")
       Format.pp_print_int)
    t.subclass
