lib/dataplane/tag.mli: Format
