lib/dataplane/walk.ml: Array Format List Rule Tag Tcam
