lib/dataplane/tcam.mli: Rule Tag
