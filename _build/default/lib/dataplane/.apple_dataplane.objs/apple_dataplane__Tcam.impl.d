lib/dataplane/tcam.ml: Apple_classifier Array List Rule Tag
