lib/dataplane/rule.ml: Apple_classifier Format List Printf Tag
