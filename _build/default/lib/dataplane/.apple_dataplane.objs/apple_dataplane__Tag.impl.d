lib/dataplane/tag.ml: Format
