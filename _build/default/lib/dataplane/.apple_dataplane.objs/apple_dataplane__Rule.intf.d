lib/dataplane/rule.mli: Apple_classifier Format Tag
