lib/dataplane/walk.mli: Apple_vnf Format Tag Tcam
