(** Network-function catalog (paper Table IV).

    Four NF kinds are evaluated: firewall, proxy, NAT and IDS.  Capacity
    and core requirements come from the VNF-OP survey the paper cites
    (Bari et al., CNSM 2015); the firewall and NAT run as ClickOS
    unikernels, the proxy and IDS as normal VMs. *)

type kind = Firewall | Proxy | Nat | Ids

val all_kinds : kind list
(** In Table IV order. *)

val kind_index : kind -> int
(** Dense 0..3 index, Table IV order. *)

val kind_of_index : int -> kind
val num_kinds : int

val name : kind -> string
val kind_of_name : string -> kind option
(** Case-insensitive; accepts "fw"/"firewall", "ids", "nat", "proxy". *)

type spec = {
  kind : kind;
  cores : int;  (** CPU cores one instance occupies *)
  capacity_mbps : float;  (** processing capacity of one instance *)
  clickos : bool;  (** boots as a ClickOS unikernel *)
}

val spec : kind -> spec
(** Table IV data sheet for a kind. *)

val rewrites_header : kind -> bool
(** Whether instances of this NF change packet headers (true for NAT).
    Header-rewriting NFs invalidate downstream header-based sub-class
    classification; the paper's fix (Sec. X) is the global sub-class tag
    mode of the Rule Generator. *)

val chain_of_string : string -> kind list
(** Parse a policy chain like ["fw -> ids -> proxy"].  Raises
    [Invalid_argument] on unknown NF names or an empty chain. *)

val chain_to_string : kind list -> string

val pp_kind : Format.formatter -> kind -> unit
val pp_chain : Format.formatter -> kind list -> unit
