(** A running VNF instance and its load/loss model.

    The prototype measurement behind Fig. 6 found that for most VNFs the
    loss rate depends on the packet {e receiving rate}, not the packet
    size: essentially zero below a capacity knee, then climbing steeply as
    the instance saturates.  We model an M/D/1-style overload: the
    delivered rate is capped slightly above nominal capacity (a small
    burst-absorption headroom), everything beyond is dropped. *)

type t

val create :
  id:int -> spec:Nf.spec -> host:int -> t
(** [host] is the switch id whose APPLE host runs the instance. *)

val id : t -> int
val spec : t -> Nf.spec
val kind : t -> Nf.kind
val host : t -> int

val offered : t -> float
(** Current offered load in Mbps. *)

val set_offered : t -> float -> unit
val add_offered : t -> float -> unit

val utilization : t -> float
(** offered / capacity. *)

val loss_fraction : t -> float
(** Fraction of offered traffic dropped at the current load. *)

val loss_at : spec:Nf.spec -> offered:float -> float
(** Stateless version of {!loss_fraction}: the Fig. 6 curve. *)

val loss_at_pps :
  capacity_pps:float -> offered_pps:float -> float
(** Same curve in packets per second, for the passive-monitor experiments
    that reason in Kpps (Fig. 6 and Fig. 9). *)

val overloaded : t -> high_watermark:float -> bool
(** offered > high_watermark * capacity. *)

val pp : Format.formatter -> t -> unit
