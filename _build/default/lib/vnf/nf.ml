type kind = Firewall | Proxy | Nat | Ids

let all_kinds = [ Firewall; Proxy; Nat; Ids ]

let kind_index = function Firewall -> 0 | Proxy -> 1 | Nat -> 2 | Ids -> 3

let kind_of_index = function
  | 0 -> Firewall
  | 1 -> Proxy
  | 2 -> Nat
  | 3 -> Ids
  | i -> invalid_arg (Printf.sprintf "Nf.kind_of_index: %d" i)

let num_kinds = 4

let name = function
  | Firewall -> "firewall"
  | Proxy -> "proxy"
  | Nat -> "nat"
  | Ids -> "ids"

let kind_of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "firewall" | "fw" -> Some Firewall
  | "proxy" -> Some Proxy
  | "nat" -> Some Nat
  | "ids" -> Some Ids
  | _ -> None

type spec = { kind : kind; cores : int; capacity_mbps : float; clickos : bool }

(* Table IV. *)
let spec = function
  | Firewall -> { kind = Firewall; cores = 4; capacity_mbps = 900.0; clickos = true }
  | Proxy -> { kind = Proxy; cores = 4; capacity_mbps = 900.0; clickos = false }
  | Nat -> { kind = Nat; cores = 2; capacity_mbps = 900.0; clickos = true }
  | Ids -> { kind = Ids; cores = 8; capacity_mbps = 600.0; clickos = false }

let rewrites_header = function
  | Nat -> true
  | Firewall | Proxy | Ids -> false

let chain_of_string s =
  let parts =
    (* accept both "a -> b" and "a,b" separators *)
    String.split_on_char '>' (String.concat "" (String.split_on_char '-' s))
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then invalid_arg "Nf.chain_of_string: empty chain";
  List.map
    (fun p ->
      match kind_of_name p with
      | Some k -> k
      | None -> invalid_arg ("Nf.chain_of_string: unknown NF " ^ p))
    parts

let chain_to_string chain = String.concat " -> " (List.map name chain)

let pp_kind ppf k = Format.pp_print_string ppf (name k)

let pp_chain ppf chain =
  Format.pp_print_string ppf (chain_to_string chain)
