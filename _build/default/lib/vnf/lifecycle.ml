module Rng = Apple_prelude.Rng
module Engine = Apple_sim.Engine

type boot_path = Raw_clickos | Openstack | Reconfigure | Normal_vm

let rule_install_time = 0.070
let reconfigure_time = 0.030
let raw_clickos_boot = 0.030
let normal_vm_boot = 30.0

let boot_time rng = function
  | Raw_clickos -> raw_clickos_boot
  | Reconfigure -> reconfigure_time
  | Openstack -> 3.9 +. Rng.float rng 0.7
  | Normal_vm -> normal_vm_boot

let provision world rng path ~on_ready =
  let delay = boot_time rng path +. rule_install_time in
  Engine.schedule world ~delay on_ready
