(** Overload detection with hysteresis (prototype Sec. VII-B, Fig. 9).

    The prototype polls per-port packet counters of Open vSwitch (the
    per-port counters update almost instantly, unlike per-flow counters
    which refresh about once a second) and declares a VNF overloaded when
    its receive rate exceeds a high watermark; the workload distribution
    rolls back when the rate drops below a low watermark. *)

type state = Normal | Overloaded

type t

val create :
  ?poll_period:float ->
  high_watermark:float ->
  low_watermark:float ->
  unit ->
  t
(** Watermarks are absolute rates (e.g. Kpps or Mbps — the caller picks
    the unit and sticks to it).  [poll_period] defaults to 0.05 s, the
    effective refresh granularity of the per-port counters. *)

val poll_period : t -> float
val state : t -> state

val observe : t -> rate:float -> state * [ `Went_overloaded | `Recovered | `No_change ]
(** Feed one counter sample; returns the new state and the transition. *)

val attach :
  t ->
  Apple_sim.Engine.t ->
  rate:(unit -> float) ->
  on_overload:(Apple_sim.Engine.t -> unit) ->
  on_recover:(Apple_sim.Engine.t -> unit) ->
  until:float ->
  unit
(** Install the polling loop on a simulation world: every [poll_period]
    the current [rate] is observed and the transition callbacks fire. *)
