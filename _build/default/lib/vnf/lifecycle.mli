(** VM lifecycle latency model, calibrated to the prototype measurements
    of Sections VII–VIII:

    - a raw ClickOS unikernel boots on Xen in ~30 ms;
    - booting the same VM through the OpenStack + OpenDaylight pipeline
      takes 3.9–4.6 s (mean 4.2 s), dominated by network orchestration
      (prototype Steps 1–5);
    - installing forwarding rules on Open vSwitch takes ~70 ms;
    - reconfiguring an already-running ClickOS VM into a different NF
      takes ~30 ms. *)

type boot_path =
  | Raw_clickos  (** direct Xen toolstack boot: 30 ms *)
  | Openstack  (** full orchestration pipeline: 3.9–4.6 s *)
  | Reconfigure  (** reuse a pre-booted ClickOS VM: 30 ms *)
  | Normal_vm  (** a full guest (proxy/IDS images): tens of seconds *)

val rule_install_time : float
(** 0.070 s. *)

val reconfigure_time : float
(** 0.030 s. *)

val raw_clickos_boot : float
(** 0.030 s. *)

val normal_vm_boot : float
(** 30 s — documented assumption; the paper only notes that non-ClickOS
    VMs boot "much longer", which is why fast failover spawns ClickOS. *)

val boot_time : Apple_prelude.Rng.t -> boot_path -> float
(** Sampled boot latency.  [Openstack] draws uniformly from the measured
    [3.9, 4.6] s range; the others are deterministic. *)

val provision :
  Apple_sim.Engine.t ->
  Apple_prelude.Rng.t ->
  boot_path ->
  on_ready:(Apple_sim.Engine.t -> unit) ->
  unit
(** Schedule [on_ready] after the sampled boot latency plus the rule
    installation time, mirroring prototype Steps 1–11. *)
