type t = {
  id : int;
  spec : Nf.spec;
  host : int;
  mutable offered : float;
}

let create ~id ~spec ~host = { id; spec; host; offered = 0.0 }

let id t = t.id
let spec t = t.spec
let kind t = t.spec.Nf.kind
let host t = t.host
let offered t = t.offered
let set_offered t v = t.offered <- max 0.0 v
let add_offered t v = t.offered <- max 0.0 (t.offered +. v)

let utilization t =
  if t.spec.Nf.capacity_mbps <= 0.0 then 0.0
  else t.offered /. t.spec.Nf.capacity_mbps

(* Loss knee: the instance forwards up to [headroom * capacity]; the
   excess is dropped.  headroom = 1.02 reflects the small buffer the
   prototype measured before the loss rate "soars rapidly". *)
let headroom = 1.02

let loss_curve ~capacity ~offered =
  if offered <= 0.0 then 0.0
  else
    let deliverable = headroom *. capacity in
    if offered <= deliverable then 0.0
    else (offered -. deliverable) /. offered

let loss_at ~spec ~offered = loss_curve ~capacity:spec.Nf.capacity_mbps ~offered

let loss_at_pps ~capacity_pps ~offered_pps =
  loss_curve ~capacity:capacity_pps ~offered:offered_pps

let loss_fraction t = loss_at ~spec:t.spec ~offered:t.offered

let overloaded t ~high_watermark =
  t.offered > high_watermark *. t.spec.Nf.capacity_mbps

let pp ppf t =
  Format.fprintf ppf "%s#%d@sw%d load=%.1f/%.1f Mbps" (Nf.name t.spec.Nf.kind)
    t.id t.host t.offered t.spec.Nf.capacity_mbps
