lib/vnf/nf.mli: Format
