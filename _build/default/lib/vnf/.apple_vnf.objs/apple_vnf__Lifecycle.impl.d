lib/vnf/lifecycle.ml: Apple_prelude Apple_sim
