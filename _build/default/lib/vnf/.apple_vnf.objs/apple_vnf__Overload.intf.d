lib/vnf/overload.mli: Apple_sim
