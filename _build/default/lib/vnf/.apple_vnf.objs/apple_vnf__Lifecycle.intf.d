lib/vnf/lifecycle.mli: Apple_prelude Apple_sim
