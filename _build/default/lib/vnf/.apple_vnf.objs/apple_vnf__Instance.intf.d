lib/vnf/instance.mli: Format Nf
