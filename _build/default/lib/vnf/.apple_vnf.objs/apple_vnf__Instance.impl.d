lib/vnf/instance.ml: Format Nf
