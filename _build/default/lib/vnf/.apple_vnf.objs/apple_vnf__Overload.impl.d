lib/vnf/overload.ml: Apple_sim
