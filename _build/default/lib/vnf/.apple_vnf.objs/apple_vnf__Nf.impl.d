lib/vnf/nf.ml: Format List Printf String
