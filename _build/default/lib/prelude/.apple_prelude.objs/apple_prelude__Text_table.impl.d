lib/prelude/text_table.ml: Array Format List String
