lib/prelude/rng.mli:
