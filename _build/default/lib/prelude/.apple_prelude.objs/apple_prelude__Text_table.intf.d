lib/prelude/text_table.mli: Format
