(** Descriptive statistics over float samples.

    Used by every experiment driver to summarise time series and repeated
    runs the way the paper reports them (means, CDFs, boxplots). *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val variance : float array -> float
(** Population variance; 0 for arrays of size < 2. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val minimum : float array -> float
(** Smallest element. Raises [Invalid_argument] on empty input. *)

val maximum : float array -> float
(** Largest element. Raises [Invalid_argument] on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. Raises [Invalid_argument] on empty input. *)

val median : float array -> float
(** 50th {!percentile}. *)

type boxplot = {
  whisker_low : float;
  q1 : float;
  med : float;
  q3 : float;
  whisker_high : float;
}
(** Five-number summary (whiskers at 5th/95th percentile, matching the
    style of the paper's Fig. 10). *)

val boxplot : float array -> boxplot
(** Five-number summary of a non-empty sample. *)

val pp_boxplot : Format.formatter -> boxplot -> unit

val cdf : float array -> (float * float) list
(** Empirical CDF as sorted [(value, cumulative_probability)] points. *)

val histogram : bins:int -> float array -> (float * int) array
(** [histogram ~bins xs] returns [(bin_left_edge, count)] for equal-width
    bins spanning the sample range. *)

val sum : float array -> float
(** Compensated (Kahan) summation. *)
