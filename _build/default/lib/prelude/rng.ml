type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: one additive step plus two xor-shift-multiply
   mixing rounds. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let uniform t =
  (* 53 random bits into the mantissa. *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = uniform t *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let u1 = ref (uniform t) in
  while !u1 <= 1e-300 do
    u1 := uniform t
  done;
  let u2 = uniform t in
  let r = sqrt (-2.0 *. log !u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let exponential t ~rate =
  assert (rate > 0.0);
  let u = ref (uniform t) in
  while !u <= 1e-300 do
    u := uniform t
  done;
  -.log !u /. rate

let pareto t ~shape ~scale =
  assert (shape > 0.0 && scale > 0.0);
  let u = ref (uniform t) in
  while !u <= 1e-300 do
    u := uniform t
  done;
  scale /. (!u ** (1.0 /. shape))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let sample_weighted t items =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 items in
  assert (total > 0.0);
  let target = float t total in
  let rec walk acc = function
    | [] -> invalid_arg "Rng.sample_weighted: empty"
    | [ (x, _) ] -> x
    | (x, w) :: rest ->
        let acc = acc +. w in
        if target < acc then x else walk acc rest
  in
  walk 0.0 items
