(** Minimal aligned plain-text table rendering for benchmark output.

    Every bench target prints the paper's tables/figures as rows; this
    module keeps the formatting uniform. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells. *)

val add_rowf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats a single string and splits it on ['\t']
    into cells, then appends it as a row. *)

val render : t -> string
(** Render with column alignment and a header separator. *)

val print : t -> unit
(** [print t] writes {!render} to stdout followed by a newline. *)
