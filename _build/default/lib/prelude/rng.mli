(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is reproducible bit-for-bit from an explicit seed.  The
    generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny state,
    excellent statistical quality for simulation purposes, and trivially
    splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and derives an independent child generator.
    Used to give sub-experiments their own streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** [uniform t] is uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1/rate]). *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto deviate; heavy-tailed sizes for flow-size models. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_weighted : t -> ('a * float) list -> 'a
(** [sample_weighted t items] draws proportionally to the (positive)
    weights. The list must be non-empty with positive total weight. *)
