lib/sim/engine.mli:
