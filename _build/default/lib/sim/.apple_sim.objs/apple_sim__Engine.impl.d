lib/sim/engine.ml: Array List
