(** Discrete-event simulation kernel.

    Drives the prototype-style experiments (Fig. 6–9): VM boot delays, rule
    installation latencies, counter-polling loops and traffic sources are
    all events on a single virtual clock.  Deterministic: ties in time are
    broken by insertion order. *)

type t
(** A simulation world with its own clock and event queue. *)

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay].  Negative delays
    are rejected. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Absolute-time variant; the time must not be in the past. *)

val every : t -> period:float -> ?until:float -> (t -> unit) -> unit
(** Periodic callback starting one period from now, stopping after
    [until] (absolute) when given. *)

val run : ?until:float -> t -> unit
(** Process events until the queue is empty or the clock passes [until]. *)

val pending : t -> int
(** Number of queued events. *)

(** Time-series recorder: samples of (time, value). *)
module Series : sig
  type series

  val create : string -> series
  val record : series -> time:float -> float -> unit
  val name : series -> string
  val points : series -> (float * float) list
  (** Chronological samples. *)

  val values : series -> float array
  val between : series -> float -> float -> (float * float) list
  (** Samples with [t0 <= time < t1]. *)
end

(** Monotone counters (packets sent/received/dropped...). *)
module Counter : sig
  type counter

  val create : string -> counter
  val add : counter -> float -> unit
  val value : counter -> float
  val name : counter -> string
end
