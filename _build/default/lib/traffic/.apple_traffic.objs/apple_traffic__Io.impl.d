lib/traffic/io.ml: Array Buffer Filename Float List Printf String Sys
