lib/traffic/io.mli: Matrix
