lib/traffic/matrix.ml: Array Format List
