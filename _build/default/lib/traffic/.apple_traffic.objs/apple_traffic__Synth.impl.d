lib/traffic/synth.ml: Apple_prelude Apple_topology Array Float List Matrix
