lib/traffic/synth.mli: Apple_prelude Apple_topology Matrix
