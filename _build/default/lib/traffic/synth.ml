module Rng = Apple_prelude.Rng

type profile = {
  snapshots : int;
  period : int;
  total_rate : float;
  diurnal_depth : float;
  mvr_scale : float;
  mvr_exponent : float;
  burst_probability : float;
  burst_factor : float;
  burst_length : int;
}

let default_profile =
  {
    snapshots = 672;
    period = 96;
    total_rate = 20_000.0;
    diurnal_depth = 0.35;
    mvr_scale = 0.5;
    mvr_exponent = 1.6;
    burst_probability = 0.02;
    burst_factor = 6.0;
    burst_length = 4;
  }

let gravity rng ~n ~total =
  if n < 2 then invalid_arg "Synth.gravity: need at least 2 nodes";
  (* Lognormal activity levels: exp(N(0,1)). *)
  let activity = Array.init n (fun _ -> exp (Rng.gaussian rng ~mu:0.0 ~sigma:1.0)) in
  let tm = Matrix.zeros n in
  let weight_sum = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        tm.(i).(j) <- activity.(i) *. activity.(j);
        weight_sum := !weight_sum +. tm.(i).(j)
      end
    done
  done;
  Matrix.map (fun w -> w /. !weight_sum *. total) tm

type burst = { mutable remaining : int; src : int; dst : int }

let sequence rng profile ~base =
  let n = Matrix.size base in
  let bursts : burst list ref = ref [] in
  List.init profile.snapshots (fun t ->
      let phase =
        2.0 *. Float.pi *. float_of_int (t mod profile.period)
        /. float_of_int profile.period
      in
      (* Peak near midday of each cycle. *)
      let diurnal = 1.0 +. (profile.diurnal_depth *. sin phase) in
      (* Start new bursts, age old ones. *)
      bursts := List.filter (fun b -> b.remaining > 0) !bursts;
      if Rng.uniform rng < profile.burst_probability then begin
        let src = Rng.int rng n and dst = Rng.int rng n in
        if src <> dst then
          bursts := { remaining = profile.burst_length; src; dst } :: !bursts
      end;
      let snapshot = Matrix.zeros n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && base.(i).(j) > 0.0 then begin
            let mean = base.(i).(j) *. diurnal in
            let sigma = sqrt (profile.mvr_scale *. (mean ** profile.mvr_exponent)) in
            let v = Rng.gaussian rng ~mu:mean ~sigma in
            snapshot.(i).(j) <- max 0.0 v
          end
        done
      done;
      List.iter
        (fun b ->
          b.remaining <- b.remaining - 1;
          snapshot.(b.src).(b.dst) <-
            snapshot.(b.src).(b.dst) *. profile.burst_factor)
        !bursts;
      snapshot)

let for_topology rng profile (named : Apple_topology.Builders.named) =
  let n = Apple_topology.Graph.num_nodes named.Apple_topology.Builders.graph in
  let ingress = named.Apple_topology.Builders.ingress in
  let base_full = gravity rng ~n ~total:profile.total_rate in
  (* Zero out demands whose endpoints are not ingress-capable (e.g. the
     UNIV1 core switches originate no traffic). *)
  let allowed = Array.make n false in
  List.iter (fun i -> allowed.(i) <- true) ingress;
  let masked =
    Array.mapi
      (fun i row ->
        Array.mapi (fun j v -> if allowed.(i) && allowed.(j) then v else 0.0) row)
      base_full
  in
  (* Re-normalize to the requested total. *)
  let t = Matrix.total masked in
  let base =
    if t > 0.0 then Matrix.scale masked (profile.total_rate /. t) else masked
  in
  sequence rng profile ~base

let mean = Matrix.mean_of
