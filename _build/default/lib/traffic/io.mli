(** Traffic-matrix serialization.

    Real deployments would feed measured matrices (Abilene/TOTEM style)
    into the Optimization Engine; this module reads and writes the
    simple CSV convention those archives use: one row per origin, one
    column per destination, demands in Mbps, [#]-prefixed comment lines
    ignored. *)

val to_csv : Matrix.t -> string
(** Render with 6 significant digits. *)

val of_csv : string -> (Matrix.t, string) result
(** Parse; the matrix must be square with non-negative finite entries.
    Errors carry a human-readable reason with the offending line. *)

val save : Matrix.t -> path:string -> unit
(** Write {!to_csv} to a file. *)

val load : path:string -> (Matrix.t, string) result
(** Read a file through {!of_csv}. *)

val save_sequence : Matrix.t list -> dir:string -> unit
(** Write snapshots as [dir/tm_0000.csv], [dir/tm_0001.csv], ...
    creating [dir] if needed. *)

val load_sequence : dir:string -> (Matrix.t list, string) result
(** Read back every [tm_*.csv] in lexicographic order. *)
