(** Traffic matrices: [tm.(i).(j)] is the offered load (Mbps) from ingress
    node [i] to egress node [j]. *)

type t = float array array

val zeros : int -> t
val size : t -> int
val copy : t -> t
val total : t -> float
(** Sum of all demands. *)

val scale : t -> float -> t
val add : t -> t -> t

val mean_of : t list -> t
(** Element-wise mean of a non-empty list (the paper feeds the mean of all
    672 snapshots to the Optimization Engine). *)

val max_entry : t -> float
val map : (float -> float) -> t -> t
val pp : Format.formatter -> t -> unit
