type t = float array array

let zeros n = Array.make_matrix n n 0.0
let size t = Array.length t
let copy t = Array.map Array.copy t

let total t =
  Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 t

let scale t f = Array.map (Array.map (fun x -> x *. f)) t

let add a b =
  if Array.length a <> Array.length b then invalid_arg "Matrix.add: size mismatch";
  Array.mapi (fun i row -> Array.mapi (fun j x -> x +. b.(i).(j)) row) a

let mean_of = function
  | [] -> invalid_arg "Matrix.mean_of: empty list"
  | first :: rest ->
      let acc = List.fold_left add (copy first) rest in
      scale acc (1.0 /. float_of_int (1 + List.length rest))

let max_entry t =
  Array.fold_left (fun acc row -> Array.fold_left max acc row) 0.0 t

let map f t = Array.map (Array.map f) t

let pp ppf t =
  let n = size t in
  Format.fprintf ppf "tm %dx%d total=%.1f Mbps" n n (total t)
