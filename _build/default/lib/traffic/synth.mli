(** Synthetic time-varying traffic matrices.

    Replaces the paper's trace archives (Abilene TM collection, TOTEM
    GEANT matrices, UNIV1 packet traces, FNSS-synthesized AS-3679
    matrices) with the standard generative pipeline those toolchains use:

    + a {b gravity model} gives the spatial structure (demand between two
      nodes proportional to the product of their activity levels);
    + a {b diurnal cycle} modulates the total over time;
    + {b mean–variance power-law noise} (Gunnar et al., IMC 2004; the MVR
      relation the paper invokes in Sec. IV-A) gives per-snapshot jitter;
    + optional {b bursts} multiply a random demand for a short interval —
      the small-time-scale dynamics that fast failover must absorb. *)

type profile = {
  snapshots : int;  (** number of matrices in the sequence (paper: 672) *)
  period : int;  (** snapshots per diurnal cycle (paper: 96 = 1 day) *)
  total_rate : float;  (** network-wide offered load at the diurnal mean *)
  diurnal_depth : float;  (** peak-to-mean swing in [0,1) *)
  mvr_scale : float;  (** a in var = a * mean^b *)
  mvr_exponent : float;  (** b; measured backbones give b in [1.5, 2] *)
  burst_probability : float;  (** chance a snapshot starts a burst *)
  burst_factor : float;  (** multiplicative burst height *)
  burst_length : int;  (** snapshots a burst lasts *)
}

val default_profile : profile
(** 672 snapshots, 96-per-day cycle, moderate MVR noise and bursts. *)

val gravity : Apple_prelude.Rng.t -> n:int -> total:float -> Matrix.t
(** Spatial base matrix.  Node activities are lognormal, so a few nodes
    dominate — matching measured ISP matrices.  Diagonal is zero. *)

val sequence :
  Apple_prelude.Rng.t -> profile -> base:Matrix.t -> Matrix.t list
(** Time-varying snapshots derived from a base matrix. *)

val for_topology :
  Apple_prelude.Rng.t -> profile -> Apple_topology.Builders.named -> Matrix.t list
(** Gravity base restricted to the topology's ingress nodes, then
    {!sequence}.  For UNIV1 this reproduces the paper's replay "between
    random source-destination pairs" among edge switches. *)

val mean : Matrix.t list -> Matrix.t
(** Convenience alias for {!Matrix.mean_of}. *)
