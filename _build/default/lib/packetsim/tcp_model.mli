(** TCP Reno transfer model.

    The prototype's Fig. 8 measures 20 MB netcat transfers under three
    failover strategies.  This model reproduces the transport dynamics
    those measurements rest on: slow start, AIMD congestion avoidance,
    drop-tail buffer overflow at the bottleneck, retransmission timeouts
    — and, crucially, a {e service outage} window (the throughput
    blackout of Fig. 7 when forwarding rules point at a VM that is still
    booting).  During an outage every in-flight packet is lost, the
    sender backs off with exponential RTO and re-enters slow start.

    The simulation advances RTT by RTT (a standard fluid approximation of
    Reno), which is deterministic and fast. *)

type params = {
  bottleneck_mbps : float;  (** capacity of the path's slowest element *)
  rtt : float;  (** base round-trip time, seconds *)
  buffer_packets : int;  (** bottleneck queue depth *)
  mss_bytes : int;  (** segment size *)
  initial_rto : float;  (** retransmission timeout, seconds *)
}

val default_params : params
(** 100 Mbps, 20 ms RTT, 64-packet buffer, 1448-byte MSS, 1 s RTO. *)

type outage = { outage_start : float; outage_duration : float }

type trace_point = {
  at : float;  (** seconds since transfer start *)
  cwnd : float;  (** congestion window, segments *)
  acked_bytes : float;
}

type outcome = {
  completion_time : float;
  trace : trace_point list;  (** chronological *)
  timeouts : int;  (** RTO events (0 without an outage) *)
  loss_events : int;  (** AIMD halvings from buffer overflow *)
}

val transfer :
  ?params:params -> ?outage:outage -> bytes:int -> unit -> outcome
(** Simulate one transfer of [bytes].  With an [outage], rounds that fall
    inside the window deliver nothing and trigger timeout/backoff. *)

val goodput_mbps : outcome -> bytes:int -> float
(** Average goodput of a completed transfer. *)
