type params = {
  bottleneck_mbps : float;
  rtt : float;
  buffer_packets : int;
  mss_bytes : int;
  initial_rto : float;
}

let default_params =
  {
    bottleneck_mbps = 100.0;
    rtt = 0.020;
    buffer_packets = 64;
    mss_bytes = 1448;
    initial_rto = 1.0;
  }

type outage = { outage_start : float; outage_duration : float }

type trace_point = { at : float; cwnd : float; acked_bytes : float }

type outcome = {
  completion_time : float;
  trace : trace_point list;
  timeouts : int;
  loss_events : int;
}

let transfer ?(params = default_params) ?outage ~bytes () =
  if bytes <= 0 then invalid_arg "Tcp_model.transfer: empty file";
  let mss = float_of_int params.mss_bytes in
  (* Bandwidth-delay product in segments; the pipe plus the buffer bounds
     the usable window. *)
  let bdp =
    params.bottleneck_mbps *. 1e6 /. 8.0 *. params.rtt /. mss
  in
  let max_window = bdp +. float_of_int params.buffer_packets in
  let in_outage t =
    match outage with
    | None -> false
    | Some o -> t >= o.outage_start && t < o.outage_start +. o.outage_duration
  in
  let total = float_of_int bytes in
  let acked = ref 0.0 in
  let cwnd = ref 2.0 in
  let ssthresh = ref max_window in
  let now = ref 0.0 in
  let rto = ref params.initial_rto in
  let timeouts = ref 0 in
  let loss_events = ref 0 in
  let trace = ref [] in
  let record () =
    trace := { at = !now; cwnd = !cwnd; acked_bytes = !acked } :: !trace
  in
  record ();
  let guard = ref 0 in
  while !acked < total && !guard < 2_000_000 do
    incr guard;
    if in_outage !now then begin
      (* Whole window lost: exponential backoff, restart from slow start
         once the path heals. *)
      incr timeouts;
      let o = Option.get outage in
      let heal = o.outage_start +. o.outage_duration in
      (* The sender sleeps for its RTO; repeated timeouts double it. *)
      now := !now +. !rto;
      rto := min 60.0 (!rto *. 2.0);
      if !now >= heal then begin
        (* Retransmission after healing succeeds; slow-start restart. *)
        ssthresh := max 2.0 (!cwnd /. 2.0);
        cwnd := 2.0;
        rto := params.initial_rto
      end;
      record ()
    end
    else begin
      (* One RTT round: send cwnd segments. *)
      let usable = min !cwnd max_window in
      (* Queueing inflates the RTT once the pipe is full. *)
      let queue = max 0.0 (usable -. bdp) in
      let rtt_now = params.rtt +. (queue *. mss *. 8.0 /. (params.bottleneck_mbps *. 1e6)) in
      let delivered = min (usable *. mss) (total -. !acked) in
      acked := !acked +. delivered;
      now := !now +. rtt_now;
      if !cwnd >= max_window then begin
        (* Buffer overflow: Reno halves. *)
        incr loss_events;
        ssthresh := max 2.0 (!cwnd /. 2.0);
        cwnd := !ssthresh
      end
      else if !cwnd < !ssthresh then
        (* slow start *)
        cwnd := min (2.0 *. !cwnd) max_window
      else
        (* congestion avoidance *)
        cwnd := min (!cwnd +. 1.0) max_window;
      record ()
    end
  done;
  {
    completion_time = !now;
    trace = List.rev !trace;
    timeouts = !timeouts;
    loss_events = !loss_events;
  }

let goodput_mbps outcome ~bytes =
  if outcome.completion_time <= 0.0 then 0.0
  else float_of_int bytes *. 8.0 /. 1e6 /. outcome.completion_time
