lib/packetsim/packet_sim.mli: Apple_dataplane Apple_vnf
