lib/packetsim/packet_sim.ml: Apple_dataplane Apple_prelude Apple_sim Apple_vnf Array Format Hashtbl List Printf Queue
