lib/packetsim/tcp_model.ml: List Option
