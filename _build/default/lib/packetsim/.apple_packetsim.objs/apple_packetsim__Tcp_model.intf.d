lib/packetsim/tcp_model.mli:
