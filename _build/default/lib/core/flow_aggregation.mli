(** Traffic aggregation into equivalence classes (paper Sec. IV-A).

    The Optimization Engine cannot reason about 100K individual flows per
    second, so APPLE aggregates: {e flows having the same forwarding path
    and the same policy chain form one class}.  This module performs that
    aggregation from raw flow descriptions — a header-space predicate, an
    ingress/egress pair and a policy chain — using the atomic-predicate
    machinery (Yang & Lam) to keep class predicates canonical and to
    bound the TCAM cost of classifying each class.

    {!Scenario.build} remains the synthetic-matrix shortcut; this is the
    faithful front door for policy-driven inputs. *)

type raw_flow = {
  description : string;  (** free-form label ("tenant-A web out") *)
  predicate : Apple_classifier.Predicate.t;  (** header space of the flows *)
  ingress : int;
  egress : int;
  chain : Apple_vnf.Nf.kind list;
  rate : float;  (** Mbps *)
}

type class_info = {
  class_id : int;
  members : int list;  (** indices into the input flow list *)
  class_predicate : Apple_classifier.Predicate.t;  (** union of members *)
  tcam_rules : int;  (** wildcard rules to classify the predicate *)
}

type result = {
  scenario : Types.scenario;
  classes_info : class_info list;
  atoms : Apple_classifier.Predicate.t list;
      (** the atomic predicates of all member predicates: the minimal
          header-space alphabet distinguishing the classes *)
}

exception No_route of string
(** An ingress/egress pair is disconnected. *)

val aggregate :
  ?host_cores:int ->
  env:Apple_classifier.Predicate.env ->
  Apple_topology.Builders.named ->
  raw_flow list ->
  result
(** Group raw flows by (shortest path, chain), sum their rates, union
    their predicates, and compute the atoms.  Deterministic routing ties
    are broken toward smaller node ids, as everywhere else. *)

val class_of_packet :
  result -> Apple_classifier.Header.packet -> int option
(** The class id whose predicate matches the packet (classes are checked
    in id order; overlapping predicates resolve to the lowest id, like a
    priority-ordered TCAM). *)
