(** Engine selection: run both approximations of the Eq. (1)–(8) ILP —
    the paper's LP-relaxation pipeline and the greedy hub-consolidating
    heuristic — and keep the better placement.

    Both are upper bounds on the same integer optimum, so taking the
    minimum is still a valid approximation and tracks CPLEX's
    branch-and-cut answer more closely than either alone (the LP wins on
    sparse WAN instances, the greedy on dense data-center instances with
    few consolidation points). *)

type choice = Lp_pipeline | Greedy

val solve :
  ?objective:Optimization_engine.objective ->
  Types.scenario ->
  Optimization_engine.placement * choice
(** Raises {!Optimization_engine.Infeasible} only when both engines fail. *)

val solve_best :
  ?objective:Optimization_engine.objective ->
  Types.scenario ->
  Optimization_engine.placement
(** {!solve} without the provenance tag. *)
