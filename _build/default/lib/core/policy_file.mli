(** Text format for NF policies — the operator-facing front door.

    One policy per line:

    {v
    # comment
    web-out:    src 10.1.0.0/16 dport 80  from Seattle to NewYork  via firewall, proxy      rate 120
    dmz:        src 10.3.0.0/16           from Seattle to NewYork  via firewall, ids        rate 50
    east-nat:   src 10.4.0.0/16 proto 17  from NewYork to Seattle  via nat, firewall        rate 60
    v}

    Grammar per line (whitespace-separated, order of clauses fixed):

    {v <name> ':' <match>* 'from' <node> 'to' <node> 'via' <chain> 'rate' <mbps> v}

    where [<match>] is any of [src A.B.C.D/L], [dst A.B.C.D/L],
    [proto N], [sport N], [dport N], [dport N-M], [sport N-M] (no match
    clause means "all traffic"), [<node>] is a node name or numeric id of
    the topology, and [<chain>] is a comma-separated NF list accepted by
    {!Apple_vnf.Nf.chain_of_string}.

    Parsed policies feed {!Flow_aggregation.aggregate} directly. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse :
  env:Apple_classifier.Predicate.env ->
  topology:Apple_topology.Builders.named ->
  string ->
  (Flow_aggregation.raw_flow list, error) result
(** Parse a whole policy file (the string contents).  Stops at the first
    error, reporting its 1-based line number. *)

val parse_file :
  env:Apple_classifier.Predicate.env ->
  topology:Apple_topology.Builders.named ->
  path:string ->
  (Flow_aggregation.raw_flow list, error) result

val example : string
(** A syntactically-valid example file for documentation and tests. *)
