(** Trace-replay simulation (paper Sec. IX): run the Optimization Engine
    on the mean traffic matrix, place VNFs, then replay the time-varying
    snapshots while APPLE reacts — with or without fast failover.

    Produces the series behind Fig. 11 (hardware usage vs the ingress
    strawman), Fig. 12 (packet loss over time with/without fast failover)
    and the "< 17 extra cores" claim of Sec. IX-E. *)

type replay_result = {
  label : string;
  loss_with_failover : float array;  (** per-snapshot network loss rate *)
  loss_without_failover : float array;
  extra_cores_series : float array;  (** failover cores per snapshot *)
  mean_extra_cores : float;
  failover_events : (string * int) list;  (** Dynamic Handler counters *)
  apple_cores : int;  (** cores of the optimized placement *)
  ingress_cores : int;  (** cores of the ingress strawman *)
  apple_instances : int;
  ingress_instances : int;
}

val replay :
  ?config:Scenario.config ->
  ?failover_config:Dynamic_handler.config ->
  seed:int ->
  Apple_topology.Builders.named ->
  profile:Apple_traffic.Synth.profile ->
  replay_result
(** Full pipeline for one topology: synthesize snapshots, build the
    scenario from the mean matrix, optimize, assign sub-classes, then
    replay every snapshot twice (frozen weights vs Dynamic Handler). *)

val tcam_samples :
  ?config:Scenario.config ->
  seed:int ->
  runs:int ->
  Apple_topology.Builders.named ->
  profile:Apple_traffic.Synth.profile ->
  float array
(** Fig. 10: the TCAM reduction ratio of the tagging scheme over [runs]
    different traffic matrices. *)
