module Nf = Apple_vnf.Nf
module Prefix = Apple_classifier.Prefix_split

type flow_class = {
  id : int;
  src : int;
  dst : int;
  path : int array;
  chain : Nf.kind array;
  src_block : Prefix.prefix;
  mutable rate : float;
}

let pp_flow_class ppf c =
  Format.fprintf ppf "class#%d %d->%d path=[%s] chain=%s rate=%.1f block=%a"
    c.id c.src c.dst
    (String.concat ";" (Array.to_list (Array.map string_of_int c.path)))
    (Nf.chain_to_string (Array.to_list c.chain))
    c.rate Prefix.pp_prefix c.src_block

type scenario = {
  topo : Apple_topology.Builders.named;
  classes : flow_class array;
  host_cores : int array;
  seed : int;
}

let pair_group c = (c.src, c.dst)

let total_rate s = Array.fold_left (fun acc c -> acc +. c.rate) 0.0 s.classes

let pp_scenario ppf s =
  Format.fprintf ppf "%s: %d classes, %.1f Mbps total"
    s.topo.Apple_topology.Builders.label (Array.length s.classes) (total_rate s)

let default_host_cores = 64
