(** Shared vocabulary of the APPLE framework.

    A {e flow class} (paper Sec. IV-A) aggregates all flows that share a
    forwarding path and a policy chain; it is the unit the Optimization
    Engine reasons about.  A {e scenario} is a complete problem instance:
    topology, classes and per-host hardware budget. *)

module Nf = Apple_vnf.Nf
module Prefix = Apple_classifier.Prefix_split

type flow_class = {
  id : int;
  src : int;  (** ingress switch *)
  dst : int;  (** egress switch *)
  path : int array;  (** routing path including both endpoints *)
  chain : Nf.kind array;  (** policy chain, in traversal order *)
  src_block : Prefix.prefix;  (** source-address block identifying the class *)
  mutable rate : float;  (** current offered load, Mbps *)
}

val pp_flow_class : Format.formatter -> flow_class -> unit

type scenario = {
  topo : Apple_topology.Builders.named;
  classes : flow_class array;
  host_cores : int array;  (** CPU cores available at each switch's host *)
  seed : int;
}

val pair_group : flow_class -> int * int
(** The (src, dst) pair — classes of the same pair may be ECMP siblings. *)

val total_rate : scenario -> float
val pp_scenario : Format.formatter -> scenario -> unit

val default_host_cores : int
(** 64, the paper's per-host assumption (Sec. IX-A). *)
