module Builders = Apple_topology.Builders
module Synth = Apple_traffic.Synth
module Matrix = Apple_traffic.Matrix
module Rng = Apple_prelude.Rng
module Stats = Apple_prelude.Stats

type replay_result = {
  label : string;
  loss_with_failover : float array;
  loss_without_failover : float array;
  extra_cores_series : float array;
  mean_extra_cores : float;
  failover_events : (string * int) list;
  apple_cores : int;
  ingress_cores : int;
  apple_instances : int;
  ingress_instances : int;
}

let ingress_core_count placement =
  Optimization_engine.core_count placement

let replay ?config ?failover_config ~seed (named : Builders.named) ~profile =
  let rng = Rng.create seed in
  let snapshots = Synth.for_topology rng profile named in
  let mean_tm = Matrix.mean_of snapshots in
  let scenario = Scenario.build ?config ~seed named mean_tm in
  let placement = Engine_select.solve_best scenario in
  let ingress = Baselines.ingress_placement scenario in
  (* Two independent states: frozen weights vs fast failover. *)
  let make_state () = Netstate.of_assignment scenario (Subclass.assign scenario placement) in
  let state_static = make_state () in
  let state_failover = make_state () in
  let handler = Dynamic_handler.create ?config:failover_config state_failover in
  let n_snapshots = List.length snapshots in
  let loss_with = Array.make n_snapshots 0.0 in
  let loss_without = Array.make n_snapshots 0.0 in
  let extra = Array.make n_snapshots 0.0 in
  List.iteri
    (fun t tm ->
      Scenario.update_rates scenario tm;
      (* Static: loads follow rates, weights frozen. *)
      Netstate.recompute_loads state_static;
      loss_without.(t) <- Netstate.network_loss state_static;
      (* Failover: one Dynamic Handler round per snapshot. *)
      Dynamic_handler.step handler;
      loss_with.(t) <- Netstate.network_loss state_failover;
      extra.(t) <- float_of_int (Netstate.extra_cores state_failover))
    snapshots;
  (* Restore the mean rates so callers see the scenario unperturbed. *)
  Scenario.update_rates scenario mean_tm;
  {
    label = named.Builders.label;
    loss_with_failover = loss_with;
    loss_without_failover = loss_without;
    extra_cores_series = extra;
    mean_extra_cores = Stats.mean extra;
    failover_events = Dynamic_handler.events handler;
    apple_cores = Optimization_engine.core_count placement;
    ingress_cores = ingress_core_count ingress;
    apple_instances = Optimization_engine.instance_count placement;
    ingress_instances = Optimization_engine.instance_count ingress;
  }

let tcam_samples ?config ~seed ~runs (named : Builders.named) ~profile =
  Array.init runs (fun r ->
      let rng = Rng.create (seed + (1000 * r)) in
      let snapshots =
        Synth.for_topology rng { profile with snapshots = 16 } named
      in
      let mean_tm = Matrix.mean_of snapshots in
      let scenario = Scenario.build ?config ~seed:(seed + r) named mean_tm in
      let placement = Engine_select.solve_best scenario in
      let asg = Subclass.assign scenario placement in
      let built = Rule_generator.build scenario asg in
      Rule_generator.reduction_ratio built)
