(** Problem-instance generation: topology + traffic matrix + policy mix
    -> flow classes with routing paths and address blocks.

    Mirrors Sec. IX-A: demands come from a (synthetic) traffic matrix;
    each significant origin–destination demand becomes one or more
    classes, each with a chain drawn from the policy mix and the path
    given by deterministic shortest-path routing.  On the UNIV1 data
    center, pairs whose two equal-cost core paths both exist are split
    into two ECMP sibling classes, which is what makes the tagging
    scheme's Fig.-10 advantage largest there. *)

type config = {
  policy_mix : Policy.mix;
  min_rate : float;  (** demands below this (Mbps) carry no policy *)
  max_classes : int;  (** cap on generated classes (largest demands win) *)
  ecmp : bool;  (** split pairs across 2 equal-cost paths when available *)
  host_cores : int;  (** per-switch CPU budget *)
  min_path_hops : int;
      (** drop origin–destination pairs whose route has fewer links than
          this; backbone policy traffic is transit traffic, and measured
          WAN matrices (Abilene in particular) are dominated by long
          paths *)
}

val default_config : config
(** default mix, 1 Mbps floor, 120 classes, ECMP on, 64 cores, >= 1 hop. *)

val build :
  ?config:config ->
  seed:int ->
  Apple_topology.Builders.named ->
  Apple_traffic.Matrix.t ->
  Types.scenario
(** Deterministic for a given seed.  Each class receives a disjoint
    source block carved from 10.0.0.0/8. *)

val update_rates :
  Types.scenario -> Apple_traffic.Matrix.t -> unit
(** Refresh class rates from a new traffic-matrix snapshot, preserving
    each class's share of its origin–destination pair. *)

val src_block_of_class_id : int -> Types.Prefix.prefix
(** The /16 block assigned to class [id] (10.{id/256}.{id mod 256}.0/24
    layout packed into 10.0.0.0/8). *)
