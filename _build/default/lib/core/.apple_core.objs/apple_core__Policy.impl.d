lib/core/policy.ml: Apple_prelude Apple_vnf List
