lib/core/netstate.mli: Apple_vnf Resource_orchestrator Subclass Types
