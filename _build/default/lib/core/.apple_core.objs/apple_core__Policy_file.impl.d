lib/core/policy_file.ml: Apple_classifier Apple_topology Apple_vnf Flow_aggregation Format List String
