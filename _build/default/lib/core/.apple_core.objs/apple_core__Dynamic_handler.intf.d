lib/core/dynamic_handler.mli: Apple_vnf Netstate
