lib/core/resource_orchestrator.ml: Apple_prelude Apple_sim Apple_vnf Array Hashtbl List
