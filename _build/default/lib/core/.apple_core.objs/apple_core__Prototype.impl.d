lib/core/prototype.ml: Apple_packetsim Apple_prelude Apple_sim Apple_vnf Array Hashtbl List
