lib/core/dynamic_handler.ml: Apple_vnf Array List Logs Netstate Resource_orchestrator Types
