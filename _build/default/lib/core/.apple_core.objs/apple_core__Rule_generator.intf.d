lib/core/rule_generator.mli: Apple_classifier Apple_dataplane Subclass Types
