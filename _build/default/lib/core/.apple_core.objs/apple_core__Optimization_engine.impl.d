lib/core/optimization_engine.ml: Apple_lp Apple_topology Apple_vnf Array Float Format List Printf String Types Unix
