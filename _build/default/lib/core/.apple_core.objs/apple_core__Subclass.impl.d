lib/core/subclass.ml: Apple_vnf Array Hashtbl List Optimization_engine Printf Queue Types
