lib/core/engine_select.mli: Optimization_engine Types
