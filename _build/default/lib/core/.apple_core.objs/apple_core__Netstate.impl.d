lib/core/netstate.ml: Apple_vnf Array Hashtbl List Resource_orchestrator Subclass Types
