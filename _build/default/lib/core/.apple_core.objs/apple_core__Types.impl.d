lib/core/types.ml: Apple_classifier Apple_topology Apple_vnf Array Format String
