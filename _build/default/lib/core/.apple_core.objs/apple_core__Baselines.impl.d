lib/core/baselines.ml: Apple_dataplane Apple_prelude Apple_topology Apple_vnf Array Engine_select Hashtbl List Optimization_engine Rule_generator Subclass Types
