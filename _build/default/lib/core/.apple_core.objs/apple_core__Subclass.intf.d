lib/core/subclass.mli: Apple_vnf Hashtbl Optimization_engine Types
