lib/core/heuristic_engine.ml: Apple_topology Apple_vnf Array Optimization_engine Printf Types Unix
