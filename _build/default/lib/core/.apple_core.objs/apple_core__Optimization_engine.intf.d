lib/core/optimization_engine.mli: Types
