lib/core/scenario.mli: Apple_topology Apple_traffic Policy Types
