lib/core/controller.ml: Apple_dataplane Apple_traffic Apple_vnf Array Dynamic_handler Engine_select Format Hashtbl List Logs Netstate Optimization_engine Rule_generator Scenario String Subclass Types
