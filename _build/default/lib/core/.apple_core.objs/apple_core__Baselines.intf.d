lib/core/baselines.mli: Optimization_engine Types
