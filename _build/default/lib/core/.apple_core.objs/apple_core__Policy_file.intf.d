lib/core/policy_file.mli: Apple_classifier Apple_topology Flow_aggregation Format
