lib/core/engine_select.ml: Heuristic_engine Optimization_engine Types
