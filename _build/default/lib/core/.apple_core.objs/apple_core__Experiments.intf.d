lib/core/experiments.mli: Apple_prelude
