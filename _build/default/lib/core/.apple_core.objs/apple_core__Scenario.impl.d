lib/core/scenario.ml: Apple_classifier Apple_prelude Apple_topology Apple_traffic Array Hashtbl List Option Policy Types
