lib/core/online_engine.mli: Apple_vnf Netstate Types
