lib/core/flow_aggregation.ml: Apple_classifier Apple_topology Apple_vnf Array Hashtbl List Option Printf Scenario Types
