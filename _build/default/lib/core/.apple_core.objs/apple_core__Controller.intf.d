lib/core/controller.mli: Apple_traffic Dynamic_handler Netstate Optimization_engine Rule_generator Types
