lib/core/resource_orchestrator.mli: Apple_prelude Apple_sim Apple_vnf
