lib/core/heuristic_engine.mli: Optimization_engine Types
