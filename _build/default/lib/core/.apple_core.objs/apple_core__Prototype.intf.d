lib/core/prototype.mli: Apple_packetsim
