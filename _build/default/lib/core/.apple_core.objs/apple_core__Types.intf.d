lib/core/types.mli: Apple_classifier Apple_topology Apple_vnf Format
