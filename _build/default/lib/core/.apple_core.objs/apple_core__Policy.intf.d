lib/core/policy.mli: Apple_prelude Apple_vnf
