lib/core/simulation.mli: Apple_topology Apple_traffic Dynamic_handler Scenario
