lib/core/flow_aggregation.mli: Apple_classifier Apple_topology Apple_vnf Types
