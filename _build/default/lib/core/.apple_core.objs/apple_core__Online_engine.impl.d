lib/core/online_engine.ml: Apple_vnf Array Hashtbl List Netstate Option Resource_orchestrator Types
