lib/core/rule_generator.ml: Apple_classifier Apple_dataplane Apple_topology Apple_vnf Array Hashtbl List Option Subclass Types
