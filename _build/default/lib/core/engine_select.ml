type choice = Lp_pipeline | Greedy

let solve ?objective (s : Types.scenario) =
  let lp =
    try Some (Optimization_engine.solve ?objective s)
    with Optimization_engine.Infeasible _ -> None
  in
  let greedy =
    try
      let p = Heuristic_engine.solve ?objective s in
      (* Trust but verify: the greedy is only kept when the validator
         passes (the LP pipeline is already validated by construction
         and by tests). *)
      match Optimization_engine.check_distribution s p with
      | Ok () -> Some p
      | Error _ -> None
    with Optimization_engine.Infeasible _ -> None
  in
  match (lp, greedy) with
  | None, None ->
      raise
        (Optimization_engine.Infeasible
           "both the LP pipeline and the greedy heuristic failed")
  | Some p, None -> (p, Lp_pipeline)
  | None, Some p -> (p, Greedy)
  | Some a, Some b ->
      if
        b.Optimization_engine.objective_value
        < a.Optimization_engine.objective_value -. 1e-9
      then
        (* Keep the LP's bound and total time for honest reporting. *)
        ( {
            b with
            Optimization_engine.lp_objective = a.Optimization_engine.lp_objective;
            solve_seconds =
              a.Optimization_engine.solve_seconds
              +. b.Optimization_engine.solve_seconds;
          },
          Greedy )
      else (a, Lp_pipeline)

let solve_best ?objective s = fst (solve ?objective s)
