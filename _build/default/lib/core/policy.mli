(** Policy-chain synthesis (paper Sec. IX-A).

    Public NF-policy datasets do not exist, so — like the paper — we
    synthesize chains over the four Table-IV NFs following the middlebox
    deployment studies it cites (Sekar et al., HotNets 2011) and the IETF
    SFC data-center use cases: most traffic crosses a firewall; a large
    share adds IDS inspection and/or a proxy; NAT fronts outbound chains. *)

type mix = (Apple_vnf.Nf.kind list * float) list
(** Chains with relative weights. *)

val default_mix : mix
(** Six chains of length 1–3 over firewall/proxy/NAT/IDS. *)

val draw : Apple_prelude.Rng.t -> mix -> Apple_vnf.Nf.kind list
(** Weighted draw of one chain. *)

val mix_of_strings : (string * float) list -> mix
(** Parse chains like [("fw -> ids", 0.3)]. *)

val validate : mix -> unit
(** Raises [Invalid_argument] on empty mixes, non-positive weights or an
    NF repeated inside one chain (a packet must not traverse the same
    instance twice, Sec. V-B). *)
