(** Baselines the paper compares against.

    {b Ingress strawman} (Sec. IX-D): consolidate every VNF of a class's
    chain at the class's ingress switch.  Simple, interference-free, but
    it forgoes the spatial multiplexing APPLE gets from sharing instances
    along paths, so it needs more hardware (Fig. 11).  The strawman is
    allowed to exceed a host's core budget (the paper compares raw
    hardware demand).

    {b Traffic steering} (Table I context): enforcing the chain by
    rerouting flows through statically-placed NFs, as SIMPLE/StEERING do.
    We quantify its interference — extra path length and the fraction of
    flows whose forwarding path had to change — to reproduce the
    qualitative comparison of Table I mechanically. *)

val ingress_placement : Types.scenario -> Optimization_engine.placement
(** All processing at hop 0 of every class.  The returned distribution is
    valid for {!Subclass.assign}; counts ignore the core budget. *)

type steering_stats = {
  flows_rerouted : float;  (** fraction of traffic whose path changed *)
  mean_stretch : float;  (** mean (steered length / routing length) *)
  max_stretch : float;
}

val steering_stats :
  ?instances_per_kind:int -> seed:int -> Types.scenario -> steering_stats
(** Place [instances_per_kind] (default 2) instances of each NF at random
    switches, route every class through its chain's nearest instances, and
    measure the interference vs the routing path. *)

val properties_table :
  Types.scenario ->
  (string * bool * bool * bool) list
(** Table I rows reproduced mechanically on this scenario:
    [(framework, policy_enforcement, interference_free, isolation)].
    APPLE's entries are verified by construction (packet walks), the
    others follow from their mechanism (steering changes paths; CoMb uses
    threads). *)
