module Nf = Apple_vnf.Nf
module Graph = Apple_topology.Graph
module Builders = Apple_topology.Builders
module Rng = Apple_prelude.Rng

let ingress_placement (s : Types.scenario) =
  let n = Graph.num_nodes s.Types.topo.Builders.graph in
  let classes = s.Types.classes in
  (* Everything at hop 0. *)
  let distribution =
    Array.map
      (fun c ->
        let plen = Array.length c.Types.path in
        let clen = Array.length c.Types.chain in
        Array.init plen (fun i ->
            Array.init clen (fun _ -> if i = 0 then 1.0 else 0.0)))
      classes
  in
  (* Loads per (ingress, kind). *)
  let load = Array.make_matrix n Nf.num_kinds 0.0 in
  Array.iter
    (fun c ->
      let v = c.Types.path.(0) in
      Array.iter
        (fun kind ->
          let k = Nf.kind_index kind in
          load.(v).(k) <- load.(v).(k) +. c.Types.rate)
        c.Types.chain)
    classes;
  let counts = Array.make_matrix n Nf.num_kinds 0 in
  for v = 0 to n - 1 do
    for k = 0 to Nf.num_kinds - 1 do
      let cap = (Nf.spec (Nf.kind_of_index k)).Nf.capacity_mbps in
      if load.(v).(k) > 1e-9 then
        counts.(v).(k) <- int_of_float (ceil ((load.(v).(k) /. cap) -. 1e-9))
    done
  done;
  let objective_value =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun a c -> a +. float_of_int c) acc row)
      0.0 counts
  in
  {
    Optimization_engine.counts;
    distribution;
    objective_value;
    lp_objective = objective_value;
    solve_seconds = 0.0;
    model_size = "ingress strawman (no optimization)";
  }

type steering_stats = {
  flows_rerouted : float;
  mean_stretch : float;
  max_stretch : float;
}

let steering_stats ?(instances_per_kind = 2) ~seed (s : Types.scenario) =
  let g = s.Types.topo.Builders.graph in
  let n = Graph.num_nodes g in
  let rng = Rng.create seed in
  (* Static NF sites, as a hardware-middlebox deployment would have. *)
  let sites =
    Array.init Nf.num_kinds (fun _ ->
        Array.init instances_per_kind (fun _ -> Rng.int rng n))
  in
  let dist_cache = Hashtbl.create 64 in
  let path_between u v =
    match Hashtbl.find_opt dist_cache (u, v) with
    | Some p -> p
    | None ->
        let p = Graph.shortest_path g u v in
        Hashtbl.add dist_cache (u, v) p;
        p
  in
  let hops p = float_of_int (List.length p - 1) in
  let rerouted = ref 0.0 and total = ref 0.0 in
  let stretches = ref [] in
  Array.iter
    (fun c ->
      total := !total +. c.Types.rate;
      let src = c.Types.src and dst = c.Types.dst in
      let direct =
        match path_between src dst with Some p -> p | None -> [ src ]
      in
      (* Steer through the nearest instance of each chain NF in order. *)
      let rec thread current acc_len = function
        | [] -> (
            match path_between current dst with
            | Some p -> Some (acc_len +. hops p)
            | None -> None)
        | kind :: rest ->
            let k = Nf.kind_index kind in
            let best =
              Array.fold_left
                (fun best site ->
                  match path_between current site with
                  | None -> best
                  | Some p -> (
                      match best with
                      | Some (_, len) when len <= hops p -> best
                      | _ -> Some (site, hops p)))
                None sites.(k)
            in
            (match best with
            | None -> None
            | Some (site, len) -> thread site (acc_len +. len) rest)
      in
      match thread src 0.0 (Array.to_list c.Types.chain) with
      | None -> ()
      | Some steered_len ->
          let direct_len = max 1.0 (hops direct) in
          let stretch = max 1.0 (steered_len /. direct_len) in
          stretches := stretch :: !stretches;
          if steered_len > hops direct +. 0.5 then
            rerouted := !rerouted +. c.Types.rate)
    s.Types.classes;
  let stretch_arr = Array.of_list !stretches in
  {
    flows_rerouted = (if !total > 0.0 then !rerouted /. !total else 0.0);
    mean_stretch =
      (if Array.length stretch_arr = 0 then 1.0
       else Apple_prelude.Stats.mean stretch_arr);
    max_stretch =
      (if Array.length stretch_arr = 0 then 1.0
       else Apple_prelude.Stats.maximum stretch_arr);
  }

let properties_table (s : Types.scenario) =
  (* APPLE's three properties are checked mechanically on this scenario;
     the other rows restate each framework's mechanism (Table I). *)
  let apple_ok =
    try
      let placement = Engine_select.solve_best s in
      let asg = Subclass.assign s placement in
      let built = Rule_generator.build s asg in
      let inst_kind = Hashtbl.create 64 in
      List.iter
        (fun i ->
          Hashtbl.replace inst_kind (Apple_vnf.Instance.id i)
            (Apple_vnf.Instance.kind i))
        asg.Subclass.instances;
      let ok = ref true in
      Array.iter
        (fun c ->
          let subs =
            List.filter
              (fun sub -> sub.Subclass.class_id = c.Types.id)
              asg.Subclass.subclasses
          in
          let prefixes =
            Rule_generator.subclass_prefixes c subs
              ~depth:built.Rule_generator.split_depth
          in
          List.iteri
            (fun idx _ ->
              match prefixes.(idx) with
              | [] -> ()
              | p :: _ -> (
                  let path = Array.to_list c.Types.path in
                  match
                    Apple_dataplane.Walk.run built.Rule_generator.network ~path
                      ~cls:c.Types.id ~src_ip:p.Types.Prefix.addr ()
                  with
                  | Error _ -> ok := false
                  | Ok trace ->
                      if
                        not
                          (Apple_dataplane.Walk.policy_enforced trace
                             ~instance_kind:(Hashtbl.find inst_kind)
                             ~chain:(Array.to_list c.Types.chain))
                      then ok := false;
                      if not (Apple_dataplane.Walk.interference_free trace ~path)
                      then ok := false))
            subs)
        s.Types.classes;
      !ok
    with Optimization_engine.Infeasible _ -> false
  in
  [
    ("StEERING", true, false, true);
    ("SIMPLE", true, false, true);
    ("PACE", false, true, true);
    ("CoMb", true, true, false);
    ("Stratos", true, false, true);
    ("E2", true, false, true);
    ("VNF-OP", true, false, true);
    ("APPLE", apple_ok, apple_ok, true);
  ]
