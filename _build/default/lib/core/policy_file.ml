module P = Apple_classifier.Predicate
module Graph = Apple_topology.Graph
module Builders = Apple_topology.Builders
module Nf = Apple_vnf.Nf

type error = { line : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse of string

let fail fmt = Format.kasprintf (fun m -> raise (Parse m)) fmt

let parse_node topology token =
  match Graph.node_by_name topology.Builders.graph token with
  | Some v -> v
  | None -> (
      match int_of_string_opt token with
      | Some v when v >= 0 && v < Graph.num_nodes topology.Builders.graph -> v
      | Some _ -> fail "node id %s out of range" token
      | None -> fail "unknown node %S" token)

let parse_prefix token =
  match String.split_on_char '/' token with
  | [ ip; len ] -> (
      match int_of_string_opt len with
      | Some l when l >= 0 && l <= 32 -> (
          try (Apple_classifier.Header.ip_of_string ip, l)
          with Invalid_argument _ -> fail "bad address %S" ip)
      | _ -> fail "bad prefix length in %S" token)
  | _ -> fail "expected A.B.C.D/len, got %S" token

let parse_int token =
  match int_of_string_opt token with
  | Some v -> v
  | None -> fail "expected a number, got %S" token

let parse_port_spec token =
  match String.index_opt token '-' with
  | Some i ->
      let lo = parse_int (String.sub token 0 i) in
      let hi = parse_int (String.sub token (i + 1) (String.length token - i - 1)) in
      (lo, hi)
  | None ->
      let v = parse_int token in
      (v, v)

(* Parse the match clauses up to the 'from' keyword, returning the
   predicate and the remaining tokens. *)
let rec parse_matches ~env acc = function
  | "from" :: rest -> (acc, rest)
  | "src" :: v :: rest ->
      let addr, len = parse_prefix v in
      parse_matches ~env (P.( &&& ) acc (P.src_prefix_int env addr len)) rest
  | "dst" :: v :: rest ->
      let addr, len = parse_prefix v in
      parse_matches ~env (P.( &&& ) acc (P.dst_prefix_int env addr len)) rest
  | "proto" :: v :: rest ->
      parse_matches ~env (P.( &&& ) acc (P.proto env (parse_int v))) rest
  | "sport" :: v :: rest ->
      let lo, hi = parse_port_spec v in
      parse_matches ~env (P.( &&& ) acc (P.src_port_range env lo hi)) rest
  | "dport" :: v :: rest ->
      let lo, hi = parse_port_spec v in
      parse_matches ~env (P.( &&& ) acc (P.dst_port_range env lo hi)) rest
  | tok :: _ -> fail "unexpected token %S (expected a match clause or 'from')" tok
  | [] -> fail "missing 'from <node>'"

let parse_line ~env ~topology line =
  (* name: clauses... *)
  match String.index_opt line ':' with
  | None -> fail "missing ':' after the policy name"
  | Some i ->
      let name = String.trim (String.sub line 0 i) in
      if name = "" then fail "empty policy name";
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      let tokens =
        String.split_on_char ' ' rest
        |> List.concat_map (String.split_on_char '\t')
        |> List.map String.trim
        |> List.filter (fun t -> t <> "")
      in
      let predicate, tokens = parse_matches ~env (P.always env) tokens in
      let ingress, tokens =
        match tokens with
        | node :: rest -> (parse_node topology node, rest)
        | [] -> fail "missing source node after 'from'"
      in
      let tokens =
        match tokens with
        | "to" :: rest -> rest
        | tok :: _ -> fail "expected 'to', got %S" tok
        | [] -> fail "missing 'to <node>'"
      in
      let egress, tokens =
        match tokens with
        | node :: rest -> (parse_node topology node, rest)
        | [] -> fail "missing destination node after 'to'"
      in
      let tokens =
        match tokens with
        | "via" :: rest -> rest
        | tok :: _ -> fail "expected 'via', got %S" tok
        | [] -> fail "missing 'via <chain>'"
      in
      (* chain tokens run until 'rate' *)
      let rec split_chain acc = function
        | "rate" :: rest -> (List.rev acc, rest)
        | tok :: rest -> split_chain (tok :: acc) rest
        | [] -> fail "missing 'rate <mbps>'"
      in
      let chain_tokens, tokens = split_chain [] tokens in
      let chain =
        try Nf.chain_of_string (String.concat " " chain_tokens)
        with Invalid_argument m -> fail "%s" m
      in
      let rate =
        match tokens with
        | [ v ] -> (
            match float_of_string_opt v with
            | Some r when r >= 0.0 -> r
            | _ -> fail "bad rate %S" v)
        | [] -> fail "missing rate value"
        | _ -> fail "trailing tokens after the rate"
      in
      {
        Flow_aggregation.description = name;
        predicate;
        ingress;
        egress;
        chain;
        rate;
      }

let parse ~env ~topology text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
        else (
          match parse_line ~env ~topology trimmed with
          | flow -> go (lineno + 1) (flow :: acc) rest
          | exception Parse message -> Error { line = lineno; message })
  in
  go 1 [] lines

let parse_file ~env ~topology ~path =
  try
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    parse ~env ~topology text
  with Sys_error m -> Error { line = 0; message = m }

let example =
  "# APPLE policy file\n\
   web-out:  src 10.1.0.0/16 dport 80   from Seattle to NewYork  via firewall, proxy  rate 120\n\
   web-alt:  src 10.2.0.0/16 dport 80   from Seattle to NewYork  via firewall, proxy  rate 80\n\
   dmz:      src 10.3.0.0/16            from Seattle to NewYork  via firewall, ids    rate 50\n\
   east-nat: src 10.4.0.0/16 proto 17   from NewYork to Seattle  via nat, firewall    rate 60\n"
