lib/sched/drfq.mli:
