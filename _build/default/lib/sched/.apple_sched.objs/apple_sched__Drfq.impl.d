lib/sched/drfq.ml: Array List Queue
