(** Dominant-resource fair queueing for VNF packet processing.

    The paper's Discussion (Sec. X) notes that VNF instances consume
    multiple hardware resources (CPU cycles, NIC bandwidth, memory
    bandwidth) while hypervisor schedulers only share CPU/memory
    statically, and names integrating a max-min fair multi-resource
    packet scheduler (the authors' INFOCOM'15 work) as future work.
    This module supplies that scheduler: start-time DRFQ in the style of
    Ghodsi et al. (SIGCOMM 2012).

    Each flow declares a per-packet {e cost vector} — the time the packet
    occupies each resource.  A packet's processing time is the maximum
    over resources (resources are used in parallel inside the box).
    DRFQ assigns each packet a virtual start tag
    [S(p) = max (V(now), F(prev packet of flow))] and a finish tag
    [F(p) = S(p) + (max_r cost_r) / weight]; packets are served in
    ascending start-tag order, which equalizes {e dominant shares} across
    backlogged flows — the multi-resource analogue of max-min fairness. *)

type t
type flow

val create : resources:string array -> t
(** Name the resource dimensions (e.g. [|"cpu"; "nic"; "membw"|]). *)

val num_resources : t -> int
val resource_names : t -> string array

val add_flow : ?weight:float -> t -> name:string -> cost_per_kb:float array -> flow
(** Register a flow.  [cost_per_kb.(r)] is the seconds resource [r] is
    occupied per kilobyte of this flow's traffic.  [weight] defaults to
    1.  Raises [Invalid_argument] on dimension mismatch, non-positive
    weight, or an all-zero cost vector. *)

val flow_name : flow -> string

val enqueue : t -> flow -> bytes:int -> unit
(** Add one packet to the flow's FIFO. *)

val backlog : t -> flow -> int
(** Queued packets of a flow. *)

val dequeue : t -> (flow * int) option
(** Pop the next packet to process (smallest virtual start tag; ties by
    registration order).  Advances virtual time and charges the flow's
    resource usage.  [None] when all queues are empty. *)

val run : t -> duration:float -> (flow * int) list
(** Serve packets until the accumulated wall-clock processing time (the
    per-packet [max_r cost_r]) exceeds [duration] or queues drain.
    Returns the served packets in order. *)

val dominant_share : t -> flow -> float
(** Fraction of the scheduler's elapsed processing time that this flow's
    {e dominant} resource usage represents — the quantity DRFQ equalizes.
    0 before anything is served. *)

val work_processed : t -> flow -> float array
(** Cumulative resource seconds consumed by the flow, per resource. *)

val elapsed : t -> float
(** Total processing time served so far. *)
