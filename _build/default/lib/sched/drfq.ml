type flow = {
  id : int;
  f_name : string;
  weight : float;
  cost_per_kb : float array;
  queue : int Queue.t;  (* packet sizes, bytes *)
  mutable last_finish : float;  (* virtual finish tag of latest packet *)
  mutable consumed : float array;  (* resource seconds served *)
}

type t = {
  resources : string array;
  mutable flows : flow list;  (* registration order *)
  mutable next_id : int;
  mutable virtual_time : float;
  mutable total_elapsed : float;
}

let create ~resources =
  if Array.length resources = 0 then invalid_arg "Drfq.create: no resources";
  {
    resources;
    flows = [];
    next_id = 0;
    virtual_time = 0.0;
    total_elapsed = 0.0;
  }

let num_resources t = Array.length t.resources
let resource_names t = t.resources

let add_flow ?(weight = 1.0) t ~name ~cost_per_kb =
  if Array.length cost_per_kb <> num_resources t then
    invalid_arg "Drfq.add_flow: cost vector dimension mismatch";
  if weight <= 0.0 then invalid_arg "Drfq.add_flow: non-positive weight";
  if Array.for_all (fun c -> c <= 0.0) cost_per_kb then
    invalid_arg "Drfq.add_flow: all-zero cost vector";
  Array.iter
    (fun c -> if c < 0.0 then invalid_arg "Drfq.add_flow: negative cost")
    cost_per_kb;
  let flow =
    {
      id = t.next_id;
      f_name = name;
      weight;
      cost_per_kb;
      queue = Queue.create ();
      last_finish = 0.0;
      consumed = Array.make (num_resources t) 0.0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.flows <- t.flows @ [ flow ];
  flow

let flow_name f = f.f_name

let costs_of f ~bytes =
  let kb = float_of_int bytes /. 1024.0 in
  Array.map (fun c -> c *. kb) f.cost_per_kb

let enqueue t f ~bytes =
  if bytes <= 0 then invalid_arg "Drfq.enqueue: non-positive packet size";
  ignore t;
  Queue.add bytes f.queue

let backlog (_ : t) f = Queue.length f.queue

(* Virtual start tag of a flow's head packet. *)
let head_start t f =
  if Queue.is_empty f.queue then None
  else Some (max t.virtual_time f.last_finish)

let dequeue t =
  (* Pick the backlogged flow with the smallest head start tag. *)
  let best = ref None in
  List.iter
    (fun f ->
      match head_start t f with
      | None -> ()
      | Some s -> (
          match !best with
          | Some (s', _) when s' <= s -> ()
          | _ -> best := Some (s, f)))
    t.flows;
  match !best with
  | None -> None
  | Some (start, f) ->
      let bytes = Queue.pop f.queue in
      let costs = costs_of f ~bytes in
      let dom = Array.fold_left max 0.0 costs in
      (* Charge the flow and advance both clocks. *)
      Array.iteri (fun r c -> f.consumed.(r) <- f.consumed.(r) +. c) costs;
      f.last_finish <- start +. (dom /. f.weight);
      t.virtual_time <- start;
      t.total_elapsed <- t.total_elapsed +. dom;
      Some (f, bytes)

let run t ~duration =
  let stop_at = t.total_elapsed +. duration in
  let served = ref [] in
  let continue = ref true in
  while !continue do
    if t.total_elapsed >= stop_at then continue := false
    else
      match dequeue t with
      | None -> continue := false
      | Some (f, bytes) -> served := (f, bytes) :: !served
  done;
  List.rev !served

let work_processed (_ : t) f = Array.copy f.consumed

let dominant_share t f =
  if t.total_elapsed <= 0.0 then 0.0
  else Array.fold_left max 0.0 f.consumed /. t.total_elapsed

let elapsed t = t.total_elapsed
