let compute env preds =
  (* Iteratively refine the partition {true} by splitting each block on
     each predicate.  Keeping only non-empty blocks yields the atoms. *)
  let split blocks p =
    List.concat_map
      (fun b ->
        let inside = Predicate.(b &&& p) in
        let outside = Predicate.(diff b p) in
        List.filter (fun q -> not (Predicate.is_empty q)) [ inside; outside ])
      blocks
  in
  List.fold_left split [ Predicate.always env ] preds

let decompose p atoms =
  let indexed = List.mapi (fun i a -> (i, a)) atoms in
  let selected =
    List.filter
      (fun (_, a) -> not (Predicate.is_empty Predicate.(a &&& p)))
      indexed
  in
  (* Every intersecting atom must lie entirely inside p — atoms never
     straddle a predicate of their generating family — and the selected
     atoms must cover p exactly. *)
  List.iter
    (fun (_, a) ->
      if not (Predicate.subset a p) then
        invalid_arg "Atoms.decompose: predicate is not a union of the atoms")
    selected;
  let covered =
    List.fold_left (fun acc (_, a) -> Predicate.(acc ||| a)) (Predicate.neg p)
      selected
  in
  if not (Predicate.is_empty (Predicate.neg covered)) then
    invalid_arg "Atoms.decompose: atoms do not cover the predicate";
  List.map fst selected

let same_atom atoms p1 p2 =
  List.exists
    (fun a -> Predicate.matches a p1 && Predicate.matches a p2)
    atoms
