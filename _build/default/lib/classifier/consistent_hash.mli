(** Consistent-hash sub-class assignment (paper Sec. V-A, first method).

    Flows are hashed to the unit interval; each sub-class owns a
    sub-interval proportional to its weight.  This is the scheme APPLE
    would use on switches with programmable hash functions; the prototype
    falls back to {!Prefix_split}.  We keep it for simulation and for the
    fairness comparison between the two methods. *)

type t

val create : weights:float array -> t
(** Partition [\[0,1)] into consecutive intervals proportional to the
    weights (which must be non-negative with positive sum). *)

val assign : t -> Header.packet -> int
(** Sub-class index owning the packet's hash point. *)

val assign_point : t -> float -> int
(** Sub-class owning an explicit point of [\[0,1)]. *)

val hash_packet : Header.packet -> float
(** Deterministic 5-tuple hash to [\[0,1)]. *)

val weights : t -> float array
(** The normalized interval lengths. *)

val reweight : t -> float array -> t
(** New partition with different weights; flows move only as much as the
    weight change requires (interval boundaries shift monotonically). *)
