type env = Apple_bdd.Bdd.man

type t = { env : env; node : Apple_bdd.Bdd.t }

module B = Apple_bdd.Bdd

let env () = B.man ()

let always e = { env = e; node = B.bdd_true e }
let never e = { env = e; node = B.bdd_false e }

let of_literals e lits = { env = e; node = B.cube e lits }

let prefix_pred e field addr len =
  if len < 0 || len > Header.width field then
    invalid_arg "Predicate: bad prefix length";
  of_literals e (Header.field_bits field ~value:addr ~prefix_len:len)

let src_prefix_int e addr len = prefix_pred e Header.Src_ip addr len
let dst_prefix_int e addr len = prefix_pred e Header.Dst_ip addr len
let src_prefix e s len = src_prefix_int e (Header.ip_of_string s) len
let dst_prefix e s len = dst_prefix_int e (Header.ip_of_string s) len

let proto e v = prefix_pred e Header.Proto v 8
let src_port e v = prefix_pred e Header.Src_port v 16
let dst_port e v = prefix_pred e Header.Dst_port v 16

(* A port range as the union of maximal aligned power-of-two blocks, the
   standard prefix-expansion of range matches. *)
let port_range_pred e field lo hi =
  if lo < 0 || hi > 65535 || lo > hi then
    invalid_arg "Predicate: bad port range";
  let rec blocks acc lo =
    if lo > hi then acc
    else begin
      (* Largest aligned block starting at lo that fits within [lo, hi]. *)
      let max_align = if lo = 0 then 16 else
        let rec tz k = if lo land (1 lsl k) <> 0 then k else tz (k + 1) in
        tz 0
      in
      let rec fit size_log =
        if size_log < 0 then 0
        else if size_log <= max_align && lo + (1 lsl size_log) - 1 <= hi then size_log
        else fit (size_log - 1)
      in
      let size_log = fit 16 in
      let prefix_len = 16 - size_log in
      blocks ((lo, prefix_len) :: acc) (lo + (1 lsl size_log))
    end
  in
  let cubes = blocks [] lo in
  List.fold_left
    (fun acc (value, prefix_len) ->
      B.bdd_or e acc (B.cube e (Header.field_bits field ~value ~prefix_len)))
    (B.bdd_false e) cubes

let dst_port_range e lo hi = { env = e; node = port_range_pred e Header.Dst_port lo hi }
let src_port_range e lo hi = { env = e; node = port_range_pred e Header.Src_port lo hi }

let check_env a b =
  if a.env != b.env then invalid_arg "Predicate: mixed environments"

let ( &&& ) a b =
  check_env a b;
  { a with node = B.bdd_and a.env a.node b.node }

let ( ||| ) a b =
  check_env a b;
  { a with node = B.bdd_or a.env a.node b.node }

let neg a = { a with node = B.bdd_not a.env a.node }

let diff a b =
  check_env a b;
  { a with node = B.bdd_diff a.env a.node b.node }

let is_empty a = B.is_false a.env a.node
let equal a b =
  check_env a b;
  B.equal a.node b.node

let subset a b =
  check_env a b;
  B.is_false a.env (B.bdd_diff a.env a.node b.node)

let matches a p =
  (* The packet's full cube intersects the predicate iff the packet
     satisfies it (the cube denotes exactly one point). *)
  let cube_lits = List.init Header.total_bits (fun k -> (k, Header.packet_bit p k)) in
  let cube = B.cube a.env cube_lits in
  not (B.is_false a.env (B.bdd_and a.env cube a.node))

let fraction_of_space a =
  B.sat_count a.env ~num_vars:Header.total_bits a.node
  /. (2.0 ** float_of_int Header.total_bits)

let wildcard_rules a =
  B.fold_paths a.env a.node ~init:0 ~f:(fun acc _ -> acc + 1)

let witness a =
  match B.any_sat a.env a.node with
  | None -> None
  | Some lits ->
      let bits = Array.make Header.total_bits false in
      List.iter (fun (i, v) -> bits.(i) <- v) lits;
      let field_value field =
        let base = Header.offset field and w = Header.width field in
        let v = ref 0 in
        for k = 0 to w - 1 do
          v := (!v lsl 1) lor (if bits.(base + k) then 1 else 0)
        done;
        !v
      in
      Some
        {
          Header.src_ip = field_value Header.Src_ip;
          dst_ip = field_value Header.Dst_ip;
          proto = field_value Header.Proto;
          src_port = field_value Header.Src_port;
          dst_port = field_value Header.Dst_port;
        }
