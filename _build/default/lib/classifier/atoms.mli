(** Atomic predicates (Yang & Lam, ICNP 2013).

    Given a family of predicates, the atomic predicates are the coarsest
    partition of header space such that every input predicate is exactly a
    union of atoms.  APPLE uses them to aggregate flows into equivalence
    classes cheaply: two packets in the same atom are indistinguishable to
    every classification rule in the network. *)

val compute : Predicate.env -> Predicate.t list -> Predicate.t list
(** [compute env preds] returns the non-empty atoms.  The result partitions
    the full header space: atoms are pairwise disjoint and their union is
    the [always] predicate. *)

val decompose : Predicate.t -> Predicate.t list -> int list
(** [decompose p atoms] lists the indices of the atoms whose union is [p].
    Raises [Invalid_argument] if [p] is not a union of the given atoms
    (i.e. [atoms] was not computed from a family containing [p]). *)

val same_atom : Predicate.t list -> Header.packet -> Header.packet -> bool
(** Whether two packets fall into the same atom of the partition. *)
