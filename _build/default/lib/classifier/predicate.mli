(** Header-space predicates compiled to BDDs.

    A predicate denotes a set of packets.  Predicates support full boolean
    algebra plus emptiness, membership, and conversion back to wildcard
    cubes (for TCAM rule counting). *)

type env
(** Shared BDD manager for a family of predicates. *)

type t
(** A predicate bound to its environment. *)

val env : unit -> env

val always : env -> t
val never : env -> t

val src_prefix : env -> string -> int -> t
(** [src_prefix e "10.1.0.0" 16] matches packets whose source address lies
    in 10.1.0.0/16. *)

val dst_prefix : env -> string -> int -> t

val src_prefix_int : env -> int -> int -> t
(** Same with a numeric address. *)

val dst_prefix_int : env -> int -> int -> t

val proto : env -> int -> t
val src_port : env -> int -> t
val dst_port : env -> int -> t

val dst_port_range : env -> int -> int -> t
(** [dst_port_range e lo hi] matches destination ports in [\[lo, hi\]]. *)

val src_port_range : env -> int -> int -> t

val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val neg : t -> t
val diff : t -> t -> t

val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool

val matches : t -> Header.packet -> bool
(** Concrete-packet membership (evaluates the BDD along one path). *)

val fraction_of_space : t -> float
(** |t| / 2^104 — the fraction of header space covered. *)

val wildcard_rules : t -> int
(** Number of ternary (wildcard) rules needed to express the predicate as a
    TCAM match list, i.e. the number of true paths of its BDD. *)

val witness : t -> Header.packet option
(** Some packet satisfying the predicate, or [None] if empty. *)
