(** Splitting an IPv4 prefix into sub-prefixes that realize sub-class
    weights (paper Sec. V-A, second method).

    The Optimization Engine assigns each sub-class a fractional share of
    its class's traffic.  Hardware switches cannot hash programmatically,
    so APPLE realizes the shares by partitioning the class's source-address
    block into aligned sub-blocks: e.g. a 50% sub-class of
    [10.1.1.0/24] becomes [10.1.1.128/25].  A share that is not a power of
    two needs several prefixes, which is exactly the TCAM cost the flow
    tagging scheme then amortizes. *)

type prefix = { addr : int; len : int }
(** An aligned IPv4 block [addr/len]; [addr]'s low (32-len) bits are 0. *)

val pp_prefix : Format.formatter -> prefix -> unit
val prefix_of_string : string -> prefix
(** Parse "a.b.c.d/len". *)

val split : base:prefix -> weights:float array -> depth:int -> prefix list array
(** [split ~base ~weights ~depth] quantizes [weights] (which must sum to
    ~1) to multiples of [2^-depth] — every sub-class receives at least one
    quantum if its weight is positive — and carves [base] into consecutive
    address ranges, each returned as a minimal list of aligned prefixes.
    [depth] is limited by [32 - base.len]. *)

val rule_count : prefix list array -> int
(** Total TCAM rules needed by a split (one per prefix). *)

val realized_weights : prefix list array -> base:prefix -> float array
(** Fraction of the base block each sub-class actually received. *)

val member : prefix -> int -> bool
(** [member p addr] tests whether the address falls inside the block. *)
