lib/classifier/prefix_split.ml: Array Format Header List String
