lib/classifier/predicate.ml: Apple_bdd Array Header List
