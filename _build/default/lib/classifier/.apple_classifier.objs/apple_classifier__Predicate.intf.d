lib/classifier/predicate.mli: Header
