lib/classifier/consistent_hash.ml: Array Header Int64
