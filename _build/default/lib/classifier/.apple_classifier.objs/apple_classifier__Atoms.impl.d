lib/classifier/atoms.ml: List Predicate
