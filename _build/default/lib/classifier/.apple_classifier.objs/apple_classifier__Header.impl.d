lib/classifier/header.ml: Format List Printf String
