lib/classifier/consistent_hash.mli: Header
