lib/classifier/header.mli: Format
