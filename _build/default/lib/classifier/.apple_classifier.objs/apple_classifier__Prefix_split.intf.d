lib/classifier/prefix_split.mli: Format
