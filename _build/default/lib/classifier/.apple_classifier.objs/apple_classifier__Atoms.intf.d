lib/classifier/atoms.mli: Header Predicate
