(** Packet-header bit layout for the classifier.

    A header point is the 5-tuple (src IP, dst IP, protocol, src port,
    dst port) laid out as 104 bits, most significant bit of each field
    first.  BDD variable [k] is bit [k] of this layout. *)

type field = Src_ip | Dst_ip | Proto | Src_port | Dst_port

val width : field -> int
(** Bit width of a field (32/32/8/16/16). *)

val offset : field -> int
(** First BDD variable index of the field. *)

val total_bits : int
(** 104. *)

val field_bits : field -> value:int -> prefix_len:int -> (int * bool) list
(** [field_bits f ~value ~prefix_len] is the literal list constraining the
    top [prefix_len] bits of field [f] to the top bits of [value].
    [prefix_len = width f] is an exact match; [0] matches anything. *)

type packet = {
  src_ip : int;  (** 32-bit value in an int *)
  dst_ip : int;
  proto : int;
  src_port : int;
  dst_port : int;
}

val packet_bit : packet -> int -> bool
(** Value of BDD variable [k] for a concrete packet. *)

val ip_of_string : string -> int
(** Parse dotted-quad notation. Raises [Invalid_argument] on bad input. *)

val string_of_ip : int -> string

val pp_packet : Format.formatter -> packet -> unit
