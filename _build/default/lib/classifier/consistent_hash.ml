type t = { weights : float array; boundaries : float array }
(* boundaries.(i) is the exclusive upper end of sub-class i's interval. *)

let create ~weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Consistent_hash.create: zero total weight";
  Array.iter
    (fun w -> if w < 0.0 then invalid_arg "Consistent_hash.create: negative weight")
    weights;
  let normalized = Array.map (fun w -> w /. total) weights in
  let boundaries = Array.make (Array.length weights) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      boundaries.(i) <- !acc)
    normalized;
  boundaries.(Array.length weights - 1) <- 1.0;
  { weights = normalized; boundaries }

(* Mix the 5-tuple with a splitmix64-style finalizer into [0,1). *)
let hash_packet (p : Header.packet) =
  let mix h v =
    let h = Int64.add h (Int64.of_int v) in
    let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 30)) 0xBF58476D1CE4E5B9L in
    Int64.logxor h (Int64.shift_right_logical h 27)
  in
  let h = 0x243F6A8885A308D3L in
  let h = mix h p.Header.src_ip in
  let h = mix h p.Header.dst_ip in
  let h = mix h p.Header.proto in
  let h = mix h p.Header.src_port in
  let h = mix h p.Header.dst_port in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 31)) 0x94D049BB133111EBL in
  let bits = Int64.shift_right_logical h 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let assign_point t x =
  let n = Array.length t.boundaries in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if x < t.boundaries.(mid) then search lo mid else search (mid + 1) hi
  in
  min (search 0 (n - 1)) (n - 1)

let assign t p = assign_point t (hash_packet p)

let weights t = t.weights

let reweight _t new_weights = create ~weights:new_weights
