type field = Src_ip | Dst_ip | Proto | Src_port | Dst_port

let width = function
  | Src_ip | Dst_ip -> 32
  | Proto -> 8
  | Src_port | Dst_port -> 16

let offset = function
  | Src_ip -> 0
  | Dst_ip -> 32
  | Proto -> 64
  | Src_port -> 72
  | Dst_port -> 88

let total_bits = 104

let field_bits f ~value ~prefix_len =
  let w = width f in
  if prefix_len < 0 || prefix_len > w then
    invalid_arg "Header.field_bits: prefix length out of range";
  let base = offset f in
  List.init prefix_len (fun k ->
      let bit = (value lsr (w - 1 - k)) land 1 in
      (base + k, bit = 1))

type packet = {
  src_ip : int;
  dst_ip : int;
  proto : int;
  src_port : int;
  dst_port : int;
}

let packet_bit p k =
  let field, f_val =
    if k < 32 then (Src_ip, p.src_ip)
    else if k < 64 then (Dst_ip, p.dst_ip)
    else if k < 72 then (Proto, p.proto)
    else if k < 88 then (Src_port, p.src_port)
    else (Dst_port, p.dst_port)
  in
  let pos = k - offset field in
  let w = width field in
  (f_val lsr (w - 1 - pos)) land 1 = 1

let ip_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let byte x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> v
        | _ -> invalid_arg ("Header.ip_of_string: " ^ s)
      in
      (byte a lsl 24) lor (byte b lsl 16) lor (byte c lsl 8) lor byte d
  | _ -> invalid_arg ("Header.ip_of_string: " ^ s)

let string_of_ip v =
  Printf.sprintf "%d.%d.%d.%d"
    ((v lsr 24) land 0xff)
    ((v lsr 16) land 0xff)
    ((v lsr 8) land 0xff)
    (v land 0xff)

let pp_packet ppf p =
  Format.fprintf ppf "%s:%d -> %s:%d proto=%d" (string_of_ip p.src_ip)
    p.src_port (string_of_ip p.dst_ip) p.dst_port p.proto
