module C = Apple_core
module DH = C.Dynamic_handler
module NS = C.Netstate
module OE = C.Optimization_engine
module SC = C.Subclass

let setup ?(total = 4000.0) () =
  let s = Helpers.small_scenario ~total () in
  let p = OE.solve s in
  let asg = SC.assign s p in
  let state = NS.of_assignment s asg in
  NS.recompute_loads state;
  (s, state)

let burst_rates (s : C.Types.scenario) factor =
  (* Multiply the largest class's rate. *)
  let largest = ref s.C.Types.classes.(0) in
  Array.iter
    (fun c -> if c.C.Types.rate > !largest.C.Types.rate then largest := c)
    s.C.Types.classes;
  !largest.C.Types.rate <- !largest.C.Types.rate *. factor;
  !largest

let test_quiet_network_no_events () =
  let _, state = setup () in
  let handler = DH.create state in
  DH.step handler;
  Alcotest.(check int) "no overloads at base load" 0
    (List.assoc "overloads" (DH.events handler));
  Alcotest.(check bool) "weights valid" true (NS.weights_valid state)

let test_burst_triggers_failover () =
  let s, state = setup () in
  let handler = DH.create state in
  let loss_before = (NS.recompute_loads state; NS.network_loss state) in
  Alcotest.(check (float 1e-9)) "no loss at base" 0.0 loss_before;
  let _ = burst_rates s 10.0 in
  NS.recompute_loads state;
  let loss_static = NS.network_loss state in
  Alcotest.(check bool) "static drops packets under burst" true (loss_static > 0.0);
  (* One control round per snapshot: a large burst converges over a few
     rounds of halving and spawning. *)
  for _ = 1 to 4 do
    DH.step handler
  done;
  let loss_failover = NS.network_loss state in
  Alcotest.(check bool) "failover reduces loss" true
    (loss_failover < loss_static /. 2.0);
  Alcotest.(check bool) "an overload was handled" true
    (List.assoc "overloads" (DH.events handler) > 0);
  Alcotest.(check bool) "weights still valid" true (NS.weights_valid state)

let test_rollback_restores () =
  let s, state = setup () in
  let handler = DH.create state in
  let original_weights =
    Array.map
      (fun subs -> List.map (fun p -> p.NS.weight) subs)
      state.NS.per_class
  in
  let victim = burst_rates s 10.0 in
  let base_rate = victim.C.Types.rate /. 10.0 in
  for _ = 1 to 3 do
    DH.step handler
  done;
  Alcotest.(check bool) "spawn or rebalance happened" true
    (List.assoc "overloads" (DH.events handler) > 0);
  (* Burst subsides. *)
  victim.C.Types.rate <- base_rate;
  DH.step handler;
  Alcotest.(check bool) "episode rolled back" true
    (List.assoc "rollbacks" (DH.events handler) > 0);
  Alcotest.(check int) "extra cores released" 0 (DH.spawned_cores handler);
  (* Weights back to the original distribution. *)
  Array.iteri
    (fun h subs ->
      let restored = List.map (fun p -> p.NS.weight) subs in
      let original = original_weights.(h) in
      if List.length restored = List.length original then
        List.iter2
          (fun a b ->
            Alcotest.(check bool) "weight restored" true (abs_float (a -. b) < 1e-9))
          restored original)
    state.NS.per_class;
  Alcotest.(check bool) "weights valid" true (NS.weights_valid state)

let test_spawn_disallowed_still_rebalances () =
  let s, state = setup () in
  let config = { DH.default_config with DH.spawn_allowed = false } in
  let handler = DH.create ~config state in
  let _ = burst_rates s 20.0 in
  DH.step handler;
  Alcotest.(check int) "no spawns" 0 (List.assoc "spawns" (DH.events handler));
  Alcotest.(check int) "no extra cores" 0 (DH.spawned_cores handler);
  Alcotest.(check bool) "weights valid" true (NS.weights_valid state)

let test_extra_cores_accounting () =
  let s, state = setup () in
  let handler = DH.create state in
  let _ = burst_rates s 25.0 in
  DH.step handler;
  let spawns = List.assoc "spawns" (DH.events handler) in
  if spawns > 0 then
    Alcotest.(check bool) "cores tracked when spawning" true
      (DH.spawned_cores handler > 0)
  else
    Alcotest.(check int) "no cores without spawns" 0 (DH.spawned_cores handler)

let test_netstate_loss_model () =
  let _, state = setup () in
  NS.recompute_loads state;
  let loss = NS.network_loss state in
  Alcotest.(check bool) "loss in [0,1]" true (loss >= 0.0 && loss <= 1.0)

let test_netstate_instances_in_use () =
  let _, state = setup () in
  let used = NS.instances_in_use state in
  Alcotest.(check bool) "some instances used" true (used <> []);
  (* every used instance is referenced by a positive-weight subclass *)
  List.iter
    (fun inst ->
      let referenced =
        Array.exists
          (fun subs ->
            List.exists
              (fun p ->
                p.NS.weight > 0.0
                && Array.exists
                     (fun i -> Apple_vnf.Instance.id i = Apple_vnf.Instance.id inst)
                     p.NS.stage_instances)
              subs)
          state.NS.per_class
      in
      Alcotest.(check bool) "referenced" true referenced)
    used

let test_repeated_steps_stable () =
  let s, state = setup () in
  let handler = DH.create state in
  let _ = burst_rates s 20.0 in
  for _ = 1 to 10 do
    DH.step handler;
    Alcotest.(check bool) "weights remain valid" true (NS.weights_valid state)
  done

let suite =
  [
    Alcotest.test_case "quiet network" `Quick test_quiet_network_no_events;
    Alcotest.test_case "burst triggers failover" `Quick test_burst_triggers_failover;
    Alcotest.test_case "rollback restores" `Quick test_rollback_restores;
    Alcotest.test_case "rebalance without spawning" `Quick test_spawn_disallowed_still_rebalances;
    Alcotest.test_case "extra cores accounting" `Quick test_extra_cores_accounting;
    Alcotest.test_case "loss model bounds" `Quick test_netstate_loss_model;
    Alcotest.test_case "instances in use" `Quick test_netstate_instances_in_use;
    Alcotest.test_case "repeated steps stable" `Quick test_repeated_steps_stable;
  ]
