module E = Apple_sim.Engine

let test_event_order () =
  let w = E.create () in
  let log = ref [] in
  E.schedule w ~delay:2.0 (fun _ -> log := "b" :: !log);
  E.schedule w ~delay:1.0 (fun _ -> log := "a" :: !log);
  E.schedule w ~delay:3.0 (fun _ -> log := "c" :: !log);
  E.run w;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let test_tie_break_fifo () =
  let w = E.create () in
  let log = ref [] in
  for i = 1 to 5 do
    E.schedule w ~delay:1.0 (fun _ -> log := i :: !log)
  done;
  E.run w;
  Alcotest.(check (list int)) "insertion order at same time" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_clock_advances () =
  let w = E.create () in
  let seen = ref [] in
  E.schedule w ~delay:1.5 (fun w' -> seen := E.now w' :: !seen);
  E.schedule w ~delay:0.5 (fun w' -> seen := E.now w' :: !seen);
  E.run w;
  Alcotest.(check (list (float 1e-9))) "times" [ 0.5; 1.5 ] (List.rev !seen)

let test_nested_scheduling () =
  let w = E.create () in
  let fired = ref 0.0 in
  E.schedule w ~delay:1.0 (fun w' ->
      E.schedule w' ~delay:2.0 (fun w'' -> fired := E.now w''));
  E.run w;
  Alcotest.(check (float 1e-9)) "relative to firing time" 3.0 !fired

let test_negative_delay_rejected () =
  let w = E.create () in
  Alcotest.(check bool) "negative rejected" true
    (try
       E.schedule w ~delay:(-1.0) (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_schedule_at_past_rejected () =
  let w = E.create () in
  E.schedule w ~delay:5.0 (fun w' ->
      Alcotest.(check bool) "past rejected" true
        (try
           E.schedule_at w' ~time:1.0 (fun _ -> ());
           false
         with Invalid_argument _ -> true));
  E.run w

let test_run_until () =
  let w = E.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    E.schedule w ~delay:(float_of_int i) (fun _ -> incr count)
  done;
  E.run ~until:5.5 w;
  Alcotest.(check int) "only first five" 5 !count;
  Alcotest.(check (float 1e-9)) "clock parked at limit" 5.5 (E.now w)

let test_every () =
  let w = E.create () in
  let count = ref 0 in
  E.every w ~period:1.0 ~until:5.0 (fun _ -> incr count);
  E.run w;
  Alcotest.(check int) "five ticks" 5 !count

let test_every_unbounded_with_run_until () =
  let w = E.create () in
  let count = ref 0 in
  E.every w ~period:0.5 (fun _ -> incr count);
  E.run ~until:3.2 w;
  Alcotest.(check int) "six ticks before 3.2" 6 !count

let test_pending () =
  let w = E.create () in
  Alcotest.(check int) "empty" 0 (E.pending w);
  E.schedule w ~delay:1.0 (fun _ -> ());
  E.schedule w ~delay:2.0 (fun _ -> ());
  Alcotest.(check int) "two queued" 2 (E.pending w)

let test_series () =
  let s = E.Series.create "loss" in
  E.Series.record s ~time:1.0 0.5;
  E.Series.record s ~time:2.0 0.7;
  Alcotest.(check string) "name" "loss" (E.Series.name s);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "points"
    [ (1.0, 0.5); (2.0, 0.7) ]
    (E.Series.points s);
  Alcotest.(check (array (float 1e-9))) "values" [| 0.5; 0.7 |] (E.Series.values s);
  Alcotest.(check int) "between" 1 (List.length (E.Series.between s 1.5 2.5))

let test_counter () =
  let c = E.Counter.create "pkts" in
  E.Counter.add c 10.0;
  E.Counter.add c 2.5;
  Alcotest.(check (float 1e-9)) "accumulates" 12.5 (E.Counter.value c)

let test_heap_stress () =
  (* Push many events in random order; they must fire sorted. *)
  let w = E.create () in
  let rng = Apple_prelude.Rng.create 123 in
  let last = ref (-1.0) in
  let monotone = ref true in
  for _ = 1 to 2000 do
    let t = Apple_prelude.Rng.float rng 100.0 in
    E.schedule w ~delay:t (fun w' ->
        if E.now w' < !last then monotone := false;
        last := E.now w')
  done;
  E.run w;
  Alcotest.(check bool) "monotone firing" true !monotone

let suite =
  [
    Alcotest.test_case "event order" `Quick test_event_order;
    Alcotest.test_case "fifo tie-break" `Quick test_tie_break_fifo;
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
    Alcotest.test_case "past schedule_at" `Quick test_schedule_at_past_rejected;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "every bounded" `Quick test_every;
    Alcotest.test_case "every unbounded" `Quick test_every_unbounded_with_run_until;
    Alcotest.test_case "pending" `Quick test_pending;
    Alcotest.test_case "series" `Quick test_series;
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "heap stress" `Quick test_heap_stress;
  ]
