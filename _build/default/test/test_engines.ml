(* Tests for the heuristic engine, the engine selector and the online
   placement engine. *)

module C = Apple_core
module OE = C.Optimization_engine
module HE = C.Heuristic_engine
module ES = C.Engine_select
module OL = C.Online_engine
module Nf = Apple_vnf.Nf

let test_heuristic_feasible_all_topologies () =
  List.iter
    (fun named ->
      let s = Helpers.small_scenario ~named () in
      let p = HE.solve s in
      match OE.check_distribution s p with
      | Ok () -> ()
      | Error e -> Alcotest.fail (s.C.Types.topo.Apple_topology.Builders.label ^ ": " ^ e))
    [
      Apple_topology.Builders.internet2 ();
      Apple_topology.Builders.geant ();
      Apple_topology.Builders.univ1 ();
    ]

let test_heuristic_tiny_optimum () =
  let s = Helpers.tiny_scenario () in
  let p = HE.solve s in
  (match OE.check_distribution s p with Ok () -> () | Error e -> Alcotest.fail e);
  (* 500 fw+ids and 400 fw fit in 1 firewall + 1 IDS. *)
  Alcotest.(check int) "tiny optimum" 2 (OE.instance_count p)

let test_heuristic_fast () =
  let s = Helpers.small_scenario ~named:(Apple_topology.Builders.as3679 ()) () in
  let t0 = Unix.gettimeofday () in
  let p = HE.solve s in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "sub-100ms on AS-3679" true (dt < 0.1);
  match OE.check_distribution s p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_heuristic_infeasible () =
  let s = Helpers.tiny_scenario () in
  let starved = { s with C.Types.host_cores = Array.make 4 2 } in
  Alcotest.(check bool) "raises" true
    (try
       ignore (HE.solve starved);
       false
     with OE.Infeasible _ -> true)

let test_selector_never_worse () =
  List.iter
    (fun seed ->
      let s = Helpers.small_scenario ~seed () in
      let lp = OE.solve s in
      let best, _ = ES.solve s in
      Alcotest.(check bool) "selector <= lp pipeline" true
        (best.OE.objective_value <= lp.OE.objective_value +. 1e-9);
      match OE.check_distribution s best with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ 7; 8; 9 ]

let test_selector_reports_choice () =
  let s = Helpers.small_scenario () in
  let _, choice = ES.solve s in
  (* either is fine; the call must succeed and tag provenance *)
  match choice with ES.Lp_pipeline | ES.Greedy -> ()

(* --- online engine -------------------------------------------------- *)

let online_state () =
  let s = Helpers.small_scenario ~max_classes:20 () in
  let p = ES.solve_best s in
  let asg = C.Subclass.assign s p in
  let state = C.Netstate.of_assignment s asg in
  C.Netstate.recompute_loads state;
  state

let fresh_class (state : C.Netstate.t) ~rate ~chain =
  let s = state.C.Netstate.scenario in
  let id = Array.length s.C.Types.classes in
  let g = s.C.Types.topo.Apple_topology.Builders.graph in
  let src = 0 and dst = Apple_topology.Graph.num_nodes g - 1 in
  let path =
    match Apple_topology.Graph.shortest_path g src dst with
    | Some p -> Array.of_list p
    | None -> Alcotest.fail "disconnected topology"
  in
  {
    C.Types.id;
    src;
    dst;
    path;
    chain = Array.of_list (Nf.chain_of_string chain);
    src_block = C.Scenario.src_block_of_class_id id;
    rate;
  }

let test_online_admit_small () =
  let state = online_state () in
  let before = OL.total_instances state in
  let cls = fresh_class state ~rate:10.0 ~chain:"firewall" in
  let outcome = OL.admit state cls in
  Alcotest.(check bool) "accepted" true outcome.OL.accepted;
  (* 10 Mbps slots into spare capacity when the path crosses an existing
     firewall; at worst it opens a single new instance. *)
  Alcotest.(check bool) "at most one new instance" true
    (OL.total_instances state - before <= 1);
  Alcotest.(check bool) "weights valid" true (C.Netstate.weights_valid state)

let test_online_admit_large_spawns () =
  let state = online_state () in
  let before = OL.total_instances state in
  (* Near the IDS capacity of 600 Mbps, but still single-instance. *)
  let cls = fresh_class state ~rate:550.0 ~chain:"firewall -> ids" in
  let outcome = OL.admit state cls in
  Alcotest.(check bool) "accepted" true outcome.OL.accepted;
  Alcotest.(check bool) "spawned instances for a near-capacity flow" true
    (OL.total_instances state > before);
  (* chain order: the pinned hops must be non-decreasing *)
  match outcome.OL.subclass with
  | None -> Alcotest.fail "expected a sub-class"
  | Some p ->
      let hops = p.C.Netstate.hops in
      for j = 1 to Array.length hops - 1 do
        Alcotest.(check bool) "order" true (hops.(j) >= hops.(j - 1))
      done;
      (* and the pinned instances match the chain kinds *)
      Array.iteri
        (fun j inst ->
          Alcotest.(check bool) "kind matches" true
            (Apple_vnf.Instance.kind inst = cls.C.Types.chain.(j)))
        p.C.Netstate.stage_instances

let test_online_reject_when_starved () =
  let s = Helpers.tiny_scenario () in
  let starved = { s with C.Types.host_cores = Array.make 4 14 } in
  (* tiny budget: the base placement (fw 4 + ids 8 cores at one host = 12)
     fits, but a huge arrival cannot spawn what it needs. *)
  let p = ES.solve_best starved in
  let asg = C.Subclass.assign starved p in
  let state = C.Netstate.of_assignment starved asg in
  C.Netstate.recompute_loads state;
  let before_instances = OL.total_instances state in
  let cls =
    {
      C.Types.id = Array.length starved.C.Types.classes;
      src = 0;
      dst = 3;
      path = [| 0; 1; 2; 3 |];
      chain = [| Nf.Ids; Nf.Ids |];
      (* no IDS pair can fit: 8+8 cores per host exceed what remains *)
      src_block = C.Scenario.src_block_of_class_id 2;
      rate = 5000.0;
    }
  in
  let outcome = OL.admit state cls in
  Alcotest.(check bool) "rejected" false outcome.OL.accepted;
  Alcotest.(check int) "state untouched" before_instances (OL.total_instances state);
  Alcotest.(check int) "scenario untouched" 2
    (Array.length state.C.Netstate.scenario.C.Types.classes)

let test_online_interleaves_with_failover () =
  let state = online_state () in
  let handler = C.Dynamic_handler.create state in
  let cls = fresh_class state ~rate:100.0 ~chain:"nat -> firewall" in
  let outcome = OL.admit state cls in
  Alcotest.(check bool) "accepted" true outcome.OL.accepted;
  (* The handler must keep operating on the extended state. *)
  for _ = 1 to 3 do
    C.Dynamic_handler.step handler
  done;
  Alcotest.(check bool) "weights valid after steps" true
    (C.Netstate.weights_valid state)

let test_online_sequence_fill () =
  (* Admit many flows until a rejection; accepted ones must never break
     capacity. *)
  let state = online_state () in
  let rejected = ref false in
  let i = ref 0 in
  while (not !rejected) && !i < 40 do
    let cls = fresh_class state ~rate:300.0 ~chain:"firewall -> ids" in
    let outcome = OL.admit state cls in
    if not outcome.OL.accepted then rejected := true;
    incr i
  done;
  (* every instance within capacity *)
  List.iter
    (fun inst ->
      Alcotest.(check bool) "within capacity" true
        (Apple_vnf.Instance.offered inst
        <= (Apple_vnf.Instance.spec inst).Nf.capacity_mbps +. 1e-6))
    (C.Resource_orchestrator.instances state.C.Netstate.orchestrator);
  Alcotest.(check bool) "weights valid" true (C.Netstate.weights_valid state)

let suite =
  [
    Alcotest.test_case "heuristic feasible" `Quick test_heuristic_feasible_all_topologies;
    Alcotest.test_case "heuristic tiny optimum" `Quick test_heuristic_tiny_optimum;
    Alcotest.test_case "heuristic fast on AS-3679" `Quick test_heuristic_fast;
    Alcotest.test_case "heuristic infeasible" `Quick test_heuristic_infeasible;
    Alcotest.test_case "selector never worse" `Quick test_selector_never_worse;
    Alcotest.test_case "selector choice" `Quick test_selector_reports_choice;
    Alcotest.test_case "online small flow" `Quick test_online_admit_small;
    Alcotest.test_case "online large flow" `Quick test_online_admit_large_spawns;
    Alcotest.test_case "online rejection" `Quick test_online_reject_when_starved;
    Alcotest.test_case "online + failover" `Quick test_online_interleaves_with_failover;
    Alcotest.test_case "online fill sequence" `Quick test_online_sequence_fill;
  ]

let test_selector_matches_ilp_on_tiny () =
  (* On the analyzable tiny scenario the selector must reach the exact
     integer optimum. *)
  let s = Helpers.tiny_scenario () in
  let ilp = OE.solve ~method_:(OE.Ilp 2000) s in
  let best = ES.solve_best s in
  Alcotest.(check int) "selector = ILP optimum" (OE.instance_count ilp)
    (OE.instance_count best)

let test_heuristic_min_cores_objective () =
  let s = Helpers.small_scenario () in
  let p = HE.solve ~objective:OE.Min_cores s in
  match OE.check_distribution s p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let suite =
  suite
  @ [
      Alcotest.test_case "selector matches ILP on tiny" `Quick
        test_selector_matches_ilp_on_tiny;
      Alcotest.test_case "heuristic min-cores" `Quick test_heuristic_min_cores_objective;
    ]
