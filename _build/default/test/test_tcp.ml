module T = Apple_packetsim.Tcp_model

let mb = 1024 * 1024

let test_goodput_near_bottleneck () =
  (* A long transfer converges to most of the bottleneck bandwidth. *)
  let bytes = 100 * mb in
  let o = T.transfer ~bytes () in
  let goodput = T.goodput_mbps o ~bytes in
  Alcotest.(check bool) "within [70%, 100%] of 100 Mbps" true
    (goodput > 70.0 && goodput <= 100.0)

let test_monotone_in_size () =
  let t bytes = (T.transfer ~bytes ()).T.completion_time in
  Alcotest.(check bool) "bigger takes longer" true
    (t (1 * mb) < t (10 * mb) && t (10 * mb) < t (50 * mb))

let test_tiny_transfer_one_rtt () =
  let o = T.transfer ~bytes:1000 () in
  Alcotest.(check bool) "about one RTT" true
    (o.T.completion_time >= 0.019 && o.T.completion_time <= 0.05)

let test_aimd_sawtooth () =
  (* Loss events must occur on a long transfer, and each one halves the
     window. *)
  let o = T.transfer ~bytes:(50 * mb) () in
  Alcotest.(check bool) "losses happen" true (o.T.loss_events > 0);
  Alcotest.(check int) "no timeouts without outage" 0 o.T.timeouts;
  (* find a halving in the trace *)
  let rec halving = function
    | a :: (b :: _ as rest) ->
        if b.T.cwnd < a.T.cwnd *. 0.6 then true else halving rest
    | _ -> false
  in
  Alcotest.(check bool) "sawtooth visible" true (halving o.T.trace)

let test_slow_start_doubles () =
  let o = T.transfer ~bytes:(50 * mb) () in
  match o.T.trace with
  | p0 :: p1 :: _ ->
      Alcotest.(check (float 1e-9)) "initial window" 2.0 p0.T.cwnd;
      Alcotest.(check (float 1e-9)) "doubles" 4.0 p1.T.cwnd
  | _ -> Alcotest.fail "trace too short"

let test_outage_costs_at_least_its_duration () =
  let bytes = 20 * mb in
  let clean = (T.transfer ~bytes ()).T.completion_time in
  let o =
    T.transfer ~outage:{ T.outage_start = 0.5; outage_duration = 4.2 } ~bytes ()
  in
  Alcotest.(check bool) "timeouts recorded" true (o.T.timeouts > 0);
  Alcotest.(check bool) "at least the blackout is lost" true
    (o.T.completion_time >= clean +. 4.2);
  Alcotest.(check bool) "but bounded (backoff is not unbounded)" true
    (o.T.completion_time <= clean +. 15.0)

let test_outage_after_completion_is_free () =
  let bytes = 5 * mb in
  let clean = (T.transfer ~bytes ()).T.completion_time in
  let o =
    T.transfer
      ~outage:{ T.outage_start = clean +. 10.0; outage_duration = 4.0 }
      ~bytes ()
  in
  Alcotest.(check (float 1e-9)) "unaffected" clean o.T.completion_time

let test_acked_monotone () =
  let o = T.transfer ~bytes:(10 * mb) () in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.T.acked_bytes <= b.T.acked_bytes && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "acked bytes never regress" true (monotone o.T.trace)

let test_bigger_buffer_fewer_losses () =
  let run buffer =
    (T.transfer
       ~params:{ T.default_params with T.buffer_packets = buffer }
       ~bytes:(50 * mb) ())
      .T.loss_events
  in
  Alcotest.(check bool) "512-packet buffer loses less often" true
    (run 512 <= run 16)

let test_rejects_empty () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (T.transfer ~bytes:0 ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "goodput near bottleneck" `Quick test_goodput_near_bottleneck;
    Alcotest.test_case "monotone in size" `Quick test_monotone_in_size;
    Alcotest.test_case "tiny transfer" `Quick test_tiny_transfer_one_rtt;
    Alcotest.test_case "AIMD sawtooth" `Quick test_aimd_sawtooth;
    Alcotest.test_case "slow start" `Quick test_slow_start_doubles;
    Alcotest.test_case "outage cost" `Quick test_outage_costs_at_least_its_duration;
    Alcotest.test_case "outage after completion" `Quick test_outage_after_completion_is_free;
    Alcotest.test_case "acked monotone" `Quick test_acked_monotone;
    Alcotest.test_case "buffer vs losses" `Quick test_bigger_buffer_fewer_losses;
    Alcotest.test_case "rejects empty" `Quick test_rejects_empty;
  ]
