(* Header-rewriting NFs (Sec. X): NAT invalidates header-based class
   matching downstream; the global sub-class tag mode keeps the data
   plane working. *)

module C = Apple_core
module Rule = Apple_dataplane.Rule
module Tcam = Apple_dataplane.Tcam
module Walk = Apple_dataplane.Walk
module Tag = Apple_dataplane.Tag
module Pfx = Apple_classifier.Prefix_split
module Nf = Apple_vnf.Nf

let prefix s = Pfx.prefix_of_string s

(* One switch, pipeline nat(7) -> fw(8), with either key mode. *)
let tiny_net key =
  let net = Tcam.network ~num_switches:1 in
  Tcam.add_phys net.(0)
    {
      Rule.priority = 100;
      pmatch =
        { Rule.m_host = `Empty; m_subclass = `Any; m_prefixes = [ prefix "10.5.0.0/24" ] };
      action = Rule.Tag_and_deliver { subclass = 0; host = 0 };
    };
  Tcam.add_phys net.(0)
    {
      Rule.priority = 0;
      pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
      action = Rule.Goto_next;
    };
  Tcam.add_vswitch net.(0)
    { Rule.v_port = Rule.From_network; v_key = key; v_action = Rule.To_instance 7 };
  Tcam.add_vswitch net.(0)
    { Rule.v_port = Rule.From_instance 7; v_key = key; v_action = Rule.To_instance 8 };
  Tcam.add_vswitch net.(0)
    { Rule.v_port = Rule.From_instance 8; v_key = key; v_action = Rule.Back_to_network Tag.Fin };
  net

let src_ip = Apple_classifier.Header.ip_of_string "10.5.0.9"
let nat_rewrites i = i = 7

let test_local_tags_break_after_nat () =
  let net = tiny_net (Rule.Per_class { cls = 5; subclass = 0 }) in
  (* Without a rewriter everything works... *)
  (match Walk.run net ~path:[ 0 ] ~cls:5 ~src_ip () with
  | Ok trace -> Alcotest.(check (list int)) "clean walk" [ 7; 8 ] trace.Walk.instances
  | Error e -> Alcotest.failf "unexpected: %a" Walk.pp_error e);
  (* ...but the NAT rewrite kills the post-NAT lookup. *)
  match Walk.run net ~path:[ 0 ] ~cls:5 ~src_ip ~rewriters:nat_rewrites () with
  | Error (Walk.Vswitch_miss 0) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Walk.pp_error e
  | Ok _ -> Alcotest.fail "local tags must break after a rewrite"

let test_global_tags_survive_nat () =
  let net = tiny_net (Rule.Global 0) in
  match Walk.run net ~path:[ 0 ] ~cls:5 ~src_ip ~rewriters:nat_rewrites () with
  | Ok trace ->
      Alcotest.(check (list int)) "full chain applied" [ 7; 8 ] trace.Walk.instances
  | Error e -> Alcotest.failf "global tags should survive: %a" Walk.pp_error e

let nat_scenario () =
  (* All chains start with NAT so rewriting is pervasive. *)
  let mix = C.Policy.mix_of_strings [ ("nat -> firewall", 0.6); ("nat -> firewall -> ids", 0.4) ] in
  let config = { C.Scenario.default_config with C.Scenario.policy_mix = mix; max_classes = 25 } in
  let named = Apple_topology.Builders.internet2 () in
  let rng = Apple_prelude.Rng.create 5 in
  let tm = Apple_traffic.Synth.gravity rng ~n:12 ~total:4000.0 in
  C.Scenario.build ~config ~seed:5 named tm

let test_needs_global_detection () =
  let s = nat_scenario () in
  Alcotest.(check bool) "NAT chains need global tags" true
    (C.Rule_generator.needs_global_tags s);
  let pure =
    {
      s with
      C.Types.classes =
        Array.map
          (fun c -> { c with C.Types.chain = [| Nf.Firewall |] })
          s.C.Types.classes;
    }
  in
  Alcotest.(check bool) "firewall-only chains do not" false
    (C.Rule_generator.needs_global_tags pure)

let test_auto_mode_selects_global () =
  let s = nat_scenario () in
  let p = C.Engine_select.solve_best s in
  let asg = C.Subclass.assign s p in
  let built = C.Rule_generator.build s asg in
  Alcotest.(check bool) "auto -> global" true
    (built.C.Rule_generator.tag_mode = `Global);
  Alcotest.(check bool) "ids allocated" true
    (built.C.Rule_generator.global_tags_used > 0);
  Alcotest.(check bool) "ids fit the VLAN field" true
    (built.C.Rule_generator.global_tags_used <= Tag.max_subclasses)

let test_end_to_end_with_rewriting () =
  let s = nat_scenario () in
  let p = C.Engine_select.solve_best s in
  let asg = C.Subclass.assign s p in
  let built = C.Rule_generator.build s asg in
  let rewriters i =
    List.exists
      (fun inst ->
        Apple_vnf.Instance.id inst = i
        && Nf.rewrites_header (Apple_vnf.Instance.kind inst))
      asg.C.Subclass.instances
  in
  let inst_kind = Hashtbl.create 64 in
  List.iter
    (fun i -> Hashtbl.replace inst_kind (Apple_vnf.Instance.id i) (Apple_vnf.Instance.kind i))
    asg.C.Subclass.instances;
  Array.iter
    (fun c ->
      let subs = Helpers.subclasses_of asg c.C.Types.id in
      let prefixes =
        C.Rule_generator.subclass_prefixes c subs
          ~depth:built.C.Rule_generator.split_depth
      in
      List.iteri
        (fun idx _ ->
          match prefixes.(idx) with
          | [] -> ()
          | pfx :: _ -> (
              let path = Array.to_list c.C.Types.path in
              match
                Walk.run built.C.Rule_generator.network ~path ~cls:c.C.Types.id
                  ~src_ip:pfx.Pfx.addr ~rewriters ()
              with
              | Error e ->
                  Alcotest.failf "class %d: %a" c.C.Types.id Walk.pp_error e
              | Ok trace ->
                  Alcotest.(check bool) "policy enforced despite NAT" true
                    (Walk.policy_enforced trace
                       ~instance_kind:(Hashtbl.find inst_kind)
                       ~chain:(Array.to_list c.C.Types.chain));
                  Alcotest.(check bool) "interference free" true
                    (Walk.interference_free trace ~path)))
        subs)
    s.C.Types.classes

let test_local_mode_fails_end_to_end () =
  (* Forcing Local mode on a NAT scenario must produce walks that break
     once rewriting is modelled — the negative control. *)
  let s = nat_scenario () in
  let p = C.Engine_select.solve_best s in
  let asg = C.Subclass.assign s p in
  let built = C.Rule_generator.build ~tag_mode:`Local s asg in
  let rewriters i =
    List.exists
      (fun inst ->
        Apple_vnf.Instance.id inst = i
        && Nf.rewrites_header (Apple_vnf.Instance.kind inst))
      asg.C.Subclass.instances
  in
  let failures = ref 0 and total = ref 0 in
  Array.iter
    (fun c ->
      let subs = Helpers.subclasses_of asg c.C.Types.id in
      let prefixes =
        C.Rule_generator.subclass_prefixes c subs
          ~depth:built.C.Rule_generator.split_depth
      in
      List.iteri
        (fun idx _ ->
          match prefixes.(idx) with
          | [] -> ()
          | pfx :: _ -> (
              incr total;
              let path = Array.to_list c.C.Types.path in
              match
                Walk.run built.C.Rule_generator.network ~path ~cls:c.C.Types.id
                  ~src_ip:pfx.Pfx.addr ~rewriters ()
              with
              | Error (Walk.Vswitch_miss _) -> incr failures
              | Error e -> Alcotest.failf "unexpected: %a" Walk.pp_error e
              | Ok _ -> ()))
        subs)
    s.C.Types.classes;
  Alcotest.(check bool) "every NAT walk breaks in local mode" true
    (!failures = !total && !total > 0)

let suite =
  [
    Alcotest.test_case "local tags break after NAT" `Quick test_local_tags_break_after_nat;
    Alcotest.test_case "global tags survive NAT" `Quick test_global_tags_survive_nat;
    Alcotest.test_case "needs_global_tags detection" `Quick test_needs_global_detection;
    Alcotest.test_case "auto selects global" `Quick test_auto_mode_selects_global;
    Alcotest.test_case "end-to-end with rewriting" `Quick test_end_to_end_with_rewriting;
    Alcotest.test_case "local mode negative control" `Quick test_local_mode_fails_end_to_end;
  ]
