module D = Apple_sched.Drfq

let mk () = D.create ~resources:[| "cpu"; "nic" |]

let test_rejects_bad_flows () =
  let t = mk () in
  Alcotest.(check bool) "dimension mismatch" true
    (try
       ignore (D.add_flow t ~name:"x" ~cost_per_kb:[| 1.0 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero costs" true
    (try
       ignore (D.add_flow t ~name:"x" ~cost_per_kb:[| 0.0; 0.0 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad weight" true
    (try
       ignore (D.add_flow t ~weight:0.0 ~name:"x" ~cost_per_kb:[| 1.0; 1.0 |]);
       false
     with Invalid_argument _ -> true)

let test_fifo_within_flow () =
  let t = mk () in
  let f = D.add_flow t ~name:"a" ~cost_per_kb:[| 1e-3; 1e-4 |] in
  D.enqueue t f ~bytes:100;
  D.enqueue t f ~bytes:200;
  D.enqueue t f ~bytes:300;
  let sizes =
    List.filter_map
      (fun _ -> match D.dequeue t with Some (_, b) -> Some b | None -> None)
      [ (); (); () ]
  in
  Alcotest.(check (list int)) "in order" [ 100; 200; 300 ] sizes

let test_work_conservation () =
  let t = mk () in
  let f = D.add_flow t ~name:"a" ~cost_per_kb:[| 2e-3; 1e-3 |] in
  (* 1024-byte packets: dominant cost = 2e-3 s each. *)
  for _ = 1 to 5 do
    D.enqueue t f ~bytes:1024
  done;
  let served = D.run t ~duration:1.0 in
  Alcotest.(check int) "all served" 5 (List.length served);
  Alcotest.(check (float 1e-9)) "elapsed = sum of dominant costs" 0.01 (D.elapsed t)

let test_equal_dominant_shares () =
  (* One CPU-heavy and one NIC-heavy flow, both backlogged: DRFQ equalizes
     their dominant shares. *)
  let t = mk () in
  let cpu = D.add_flow t ~name:"cpu-heavy" ~cost_per_kb:[| 4e-3; 1e-3 |] in
  let nic = D.add_flow t ~name:"nic-heavy" ~cost_per_kb:[| 1e-3; 4e-3 |] in
  for _ = 1 to 2000 do
    D.enqueue t cpu ~bytes:1024;
    D.enqueue t nic ~bytes:1024
  done;
  let _ = D.run t ~duration:1.0 in
  let s1 = D.dominant_share t cpu and s2 = D.dominant_share t nic in
  Alcotest.(check bool) "both still backlogged" true
    (D.backlog t cpu > 0 && D.backlog t nic > 0);
  Alcotest.(check bool) "dominant shares within 5%" true
    (abs_float (s1 -. s2) < 0.05);
  Alcotest.(check bool) "shares sum to ~1" true (s1 +. s2 > 0.9)

let test_weighted_shares () =
  let t = mk () in
  let heavy = D.add_flow t ~weight:2.0 ~name:"w2" ~cost_per_kb:[| 2e-3; 1e-3 |] in
  let light = D.add_flow t ~weight:1.0 ~name:"w1" ~cost_per_kb:[| 2e-3; 1e-3 |] in
  for _ = 1 to 3000 do
    D.enqueue t heavy ~bytes:1024;
    D.enqueue t light ~bytes:1024
  done;
  let _ = D.run t ~duration:1.0 in
  let sh = D.dominant_share t heavy and sl = D.dominant_share t light in
  Alcotest.(check bool) "2:1 ratio" true (abs_float ((sh /. sl) -. 2.0) < 0.1)

let test_varying_packet_sizes () =
  (* Fairness must hold in resource-time, not packet counts: a flow of
     small packets gets more packets through, same dominant share. *)
  let t = mk () in
  let small = D.add_flow t ~name:"small" ~cost_per_kb:[| 2e-3; 1e-3 |] in
  let large = D.add_flow t ~name:"large" ~cost_per_kb:[| 2e-3; 1e-3 |] in
  for _ = 1 to 20_000 do
    D.enqueue t small ~bytes:128
  done;
  for _ = 1 to 3000 do
    D.enqueue t large ~bytes:1500
  done;
  let served = D.run t ~duration:1.0 in
  let count f =
    List.length (List.filter (fun (g, _) -> D.flow_name g = f) served)
  in
  Alcotest.(check bool) "both backlogged" true
    (D.backlog t small > 0 && D.backlog t large > 0);
  Alcotest.(check bool) "shares equal" true
    (abs_float (D.dominant_share t small -. D.dominant_share t large) < 0.05);
  Alcotest.(check bool) "small-packet flow sends more packets" true
    (count "small" > count "large" * 5)

let test_idle_flow_no_credit () =
  (* A flow that was idle must not burst ahead when it wakes up: its start
     tag is max(V, own finish), so it resumes at the current virtual time
     rather than claiming the past. *)
  let t = mk () in
  let busy = D.add_flow t ~name:"busy" ~cost_per_kb:[| 1e-3; 1e-3 |] in
  let sleeper = D.add_flow t ~name:"sleeper" ~cost_per_kb:[| 1e-3; 1e-3 |] in
  for _ = 1 to 1000 do
    D.enqueue t busy ~bytes:1024
  done;
  let _ = D.run t ~duration:0.5 in
  (* sleeper wakes with a big burst *)
  for _ = 1 to 1000 do
    D.enqueue t sleeper ~bytes:1024
  done;
  let served = D.run t ~duration:0.1 in
  let busy_served =
    List.length (List.filter (fun (g, _) -> D.flow_name g = "busy") served)
  in
  let sleeper_served = List.length served - busy_served in
  (* After waking, service alternates (roughly 50/50) rather than the
     sleeper monopolizing to catch up. *)
  Alcotest.(check bool) "no catch-up monopoly" true
    (busy_served > sleeper_served / 3)

let test_empty_dequeue () =
  let t = mk () in
  let _ = D.add_flow t ~name:"a" ~cost_per_kb:[| 1e-3; 1e-3 |] in
  Alcotest.(check bool) "none when empty" true (D.dequeue t = None)

let test_work_processed_accounting () =
  let t = mk () in
  let f = D.add_flow t ~name:"a" ~cost_per_kb:[| 2e-3; 1e-3 |] in
  D.enqueue t f ~bytes:2048;
  ignore (D.dequeue t);
  let w = D.work_processed t f in
  Alcotest.(check (float 1e-9)) "cpu seconds" 4e-3 w.(0);
  Alcotest.(check (float 1e-9)) "nic seconds" 2e-3 w.(1)

let suite =
  [
    Alcotest.test_case "rejects bad flows" `Quick test_rejects_bad_flows;
    Alcotest.test_case "fifo within flow" `Quick test_fifo_within_flow;
    Alcotest.test_case "work conservation" `Quick test_work_conservation;
    Alcotest.test_case "equal dominant shares" `Quick test_equal_dominant_shares;
    Alcotest.test_case "weighted shares" `Quick test_weighted_shares;
    Alcotest.test_case "varying packet sizes" `Quick test_varying_packet_sizes;
    Alcotest.test_case "no idle credit" `Quick test_idle_flow_no_credit;
    Alcotest.test_case "empty dequeue" `Quick test_empty_dequeue;
    Alcotest.test_case "work accounting" `Quick test_work_processed_accounting;
  ]
