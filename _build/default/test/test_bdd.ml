module B = Apple_bdd.Bdd

let num_vars = 6

(* Random BDD expression generator over [num_vars] variables. *)
type expr =
  | Var of int
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr
  | True
  | False

let expr_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof [ map (fun i -> Var i) (int_range 0 (num_vars - 1)); return True; return False ]
        else
          frequency
            [
              (2, map (fun i -> Var i) (int_range 0 (num_vars - 1)));
              (1, map (fun e -> Not e) (self (n / 2)));
              (2, map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2)));
              (2, map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map2 (fun a b -> Xor (a, b)) (self (n / 2)) (self (n / 2)));
            ]))

let rec build m = function
  | Var i -> B.var m i
  | Not e -> B.bdd_not m (build m e)
  | And (a, b) -> B.bdd_and m (build m a) (build m b)
  | Or (a, b) -> B.bdd_or m (build m a) (build m b)
  | Xor (a, b) -> B.bdd_xor m (build m a) (build m b)
  | True -> B.bdd_true m
  | False -> B.bdd_false m

let rec eval env = function
  | Var i -> env.(i)
  | Not e -> not (eval env e)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Xor (a, b) -> eval env a <> eval env b
  | True -> true
  | False -> false

let all_envs =
  List.init (1 lsl num_vars) (fun bits ->
      Array.init num_vars (fun i -> (bits lsr i) land 1 = 1))

let bdd_eval m node env =
  let cube = B.cube m (List.init num_vars (fun i -> (i, env.(i)))) in
  not (B.is_false m (B.bdd_and m cube node))

let test_terminals () =
  let m = B.man () in
  Alcotest.(check bool) "true is true" true (B.is_true m (B.bdd_true m));
  Alcotest.(check bool) "false is false" true (B.is_false m (B.bdd_false m));
  Alcotest.(check bool) "not true = false" true
    (B.equal (B.bdd_not m (B.bdd_true m)) (B.bdd_false m))

let test_var_semantics () =
  let m = B.man () in
  let x = B.var m 0 in
  Alcotest.(check bool) "x(1)" true (bdd_eval m x [| true; false; false; false; false; false |]);
  Alcotest.(check bool) "x(0)" false (bdd_eval m x [| false; false; false; false; false; false |]);
  Alcotest.(check bool) "nvar = not var" true (B.equal (B.nvar m 0) (B.bdd_not m x))

let test_hash_consing () =
  let m = B.man () in
  let a = B.bdd_and m (B.var m 0) (B.var m 1) in
  let b = B.bdd_and m (B.var m 1) (B.var m 0) in
  Alcotest.(check bool) "commutative results share node" true (B.equal a b)

let test_ite () =
  let m = B.man () in
  let f = B.var m 0 and g = B.var m 1 and h = B.var m 2 in
  let ite = B.ite m f g h in
  let manual = B.bdd_or m (B.bdd_and m f g) (B.bdd_and m (B.bdd_not m f) h) in
  Alcotest.(check bool) "ite = (f&g)|(~f&h)" true (B.equal ite manual)

let test_exists () =
  let m = B.man () in
  (* exists x0. (x0 & x1) = x1 *)
  let e = B.exists m [ 0 ] (B.bdd_and m (B.var m 0) (B.var m 1)) in
  Alcotest.(check bool) "projects away" true (B.equal e (B.var m 1));
  (* exists x0. (x0 | x1) = true *)
  let e2 = B.exists m [ 0 ] (B.bdd_or m (B.var m 0) (B.var m 1)) in
  Alcotest.(check bool) "saturates" true (B.is_true m e2)

let test_sat_count () =
  let m = B.man () in
  Alcotest.(check (float 1e-9)) "var splits space" (2.0 ** 5.0)
    (B.sat_count m ~num_vars (B.var m 0));
  Alcotest.(check (float 1e-9)) "true is full space" (2.0 ** 6.0)
    (B.sat_count m ~num_vars (B.bdd_true m));
  Alcotest.(check (float 1e-9)) "false is empty" 0.0
    (B.sat_count m ~num_vars (B.bdd_false m));
  let cube = B.cube m [ (0, true); (3, false) ] in
  Alcotest.(check (float 1e-9)) "cube fixes two bits" (2.0 ** 4.0)
    (B.sat_count m ~num_vars cube)

let test_any_sat () =
  let m = B.man () in
  Alcotest.(check bool) "false has no witness" true (B.any_sat m (B.bdd_false m) = None);
  let f = B.bdd_and m (B.var m 1) (B.nvar m 3) in
  match B.any_sat m f with
  | None -> Alcotest.fail "expected witness"
  | Some lits ->
      let env = Array.make num_vars false in
      List.iter (fun (i, v) -> env.(i) <- v) lits;
      Alcotest.(check bool) "witness satisfies" true (bdd_eval m f env)

let test_fold_paths_count () =
  let m = B.man () in
  let f = B.bdd_or m (B.var m 0) (B.var m 1) in
  let paths = B.fold_paths m f ~init:0 ~f:(fun acc _ -> acc + 1) in
  (* ROBDD for x0|x1: paths {x0=1}, {x0=0,x1=1} *)
  Alcotest.(check int) "two true paths" 2 paths

let test_size () =
  let m = B.man () in
  Alcotest.(check int) "terminal size" 0 (B.size m (B.bdd_true m));
  Alcotest.(check int) "single var" 1 (B.size m (B.var m 2))

(* Property: BDD operations agree with boolean evaluation on all envs. *)
let prop_semantics =
  QCheck.Test.make ~name:"bdd agrees with boolean semantics" ~count:100
    (QCheck.make ~print:(fun _ -> "<expr>") expr_gen) (fun e ->
      let m = B.man () in
      let node = build m e in
      List.for_all (fun env -> bdd_eval m node env = eval env e) all_envs)

let prop_sat_count_complement =
  QCheck.Test.make ~name:"sat_count f + sat_count ~f = 2^n" ~count:100
    (QCheck.make ~print:(fun _ -> "<expr>") expr_gen) (fun e ->
      let m = B.man () in
      let node = build m e in
      let total =
        B.sat_count m ~num_vars node +. B.sat_count m ~num_vars (B.bdd_not m node)
      in
      abs_float (total -. (2.0 ** float_of_int num_vars)) < 1e-6)

let prop_de_morgan =
  QCheck.Test.make ~name:"de morgan" ~count:100
    (QCheck.make ~print:(fun _ -> "<expr>") QCheck.Gen.(pair expr_gen expr_gen))
    (fun (ea, eb) ->
      let m = B.man () in
      let a = build m ea and b = build m eb in
      B.equal
        (B.bdd_not m (B.bdd_and m a b))
        (B.bdd_or m (B.bdd_not m a) (B.bdd_not m b)))

let prop_xor_definition =
  QCheck.Test.make ~name:"xor = (a&~b)|(~a&b)" ~count:100
    (QCheck.make ~print:(fun _ -> "<expr>") QCheck.Gen.(pair expr_gen expr_gen))
    (fun (ea, eb) ->
      let m = B.man () in
      let a = build m ea and b = build m eb in
      B.equal (B.bdd_xor m a b)
        (B.bdd_or m (B.bdd_diff m a b) (B.bdd_diff m b a)))

let prop_fold_paths_disjoint_cover =
  QCheck.Test.make ~name:"true paths partition the on-set" ~count:60
    (QCheck.make ~print:(fun _ -> "<expr>") expr_gen) (fun e ->
      let m = B.man () in
      let node = build m e in
      (* Sum of cube sizes over true paths equals sat_count. *)
      let total =
        B.fold_paths m node ~init:0.0 ~f:(fun acc lits ->
            acc +. (2.0 ** float_of_int (num_vars - List.length lits)))
      in
      abs_float (total -. B.sat_count m ~num_vars node) < 1e-6)

let suite =
  [
    Alcotest.test_case "terminals" `Quick test_terminals;
    Alcotest.test_case "var semantics" `Quick test_var_semantics;
    Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "ite" `Quick test_ite;
    Alcotest.test_case "exists" `Quick test_exists;
    Alcotest.test_case "sat count" `Quick test_sat_count;
    Alcotest.test_case "any_sat" `Quick test_any_sat;
    Alcotest.test_case "fold_paths count" `Quick test_fold_paths_count;
    Alcotest.test_case "size" `Quick test_size;
    QCheck_alcotest.to_alcotest prop_semantics;
    QCheck_alcotest.to_alcotest prop_sat_count_complement;
    QCheck_alcotest.to_alcotest prop_de_morgan;
    QCheck_alcotest.to_alcotest prop_xor_definition;
    QCheck_alcotest.to_alcotest prop_fold_paths_disjoint_cover;
  ]
