(* Shared scenario builders for the core test suites. *)

module C = Apple_core
module B = Apple_topology.Builders
module Tr = Apple_traffic
module Rng = Apple_prelude.Rng

let small_scenario ?(seed = 77) ?(total = 4000.0) ?(max_classes = 40)
    ?(named = B.internet2 ()) () =
  let rng = Rng.create seed in
  let n = Apple_topology.Graph.num_nodes named.B.graph in
  let tm = Tr.Synth.gravity rng ~n ~total in
  let config = { C.Scenario.default_config with C.Scenario.max_classes } in
  C.Scenario.build ~config ~seed named tm

(* A 4-node line with two hand-written classes: deterministic and small
   enough for exact reasoning (and for the exact ILP). *)
let tiny_scenario () =
  let named = B.linear ~n:4 in
  let mk id src dst path chain rate =
    {
      C.Types.id;
      src;
      dst;
      path = Array.of_list path;
      chain = Array.of_list chain;
      src_block = C.Scenario.src_block_of_class_id id;
      rate;
    }
  in
  let classes =
    [|
      mk 0 0 3 [ 0; 1; 2; 3 ] [ Apple_vnf.Nf.Firewall; Apple_vnf.Nf.Ids ] 500.0;
      mk 1 1 3 [ 1; 2; 3 ] [ Apple_vnf.Nf.Firewall ] 400.0;
    |]
  in
  {
    C.Types.topo = named;
    classes;
    host_cores = Array.make 4 C.Types.default_host_cores;
    seed = 0;
  }

let subclasses_of (asg : C.Subclass.assignment) class_id =
  List.filter
    (fun s -> s.C.Subclass.class_id = class_id)
    asg.C.Subclass.subclasses
