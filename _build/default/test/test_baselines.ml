module C = Apple_core
module OE = C.Optimization_engine

let test_ingress_distribution_valid () =
  let s = Helpers.small_scenario () in
  let p = C.Baselines.ingress_placement s in
  (* All mass at hop 0 trivially satisfies Eq. (2)-(4); capacity counts
     are computed from the same loads, so the whole check must pass apart
     from Eq. (6), which the strawman is allowed to ignore.  Check the
     policy-side constraints directly. *)
  Array.iteri
    (fun h c ->
      let d = p.OE.distribution.(h) in
      Array.iteri
        (fun j _ ->
          Alcotest.(check (float 1e-9)) "all at ingress" 1.0 d.(0).(j);
          let rest = ref 0.0 in
          for i = 1 to Array.length c.C.Types.path - 1 do
            rest := !rest +. d.(i).(j)
          done;
          Alcotest.(check (float 1e-9)) "nothing downstream" 0.0 !rest)
        c.C.Types.chain)
    s.C.Types.classes

let test_ingress_covers_load () =
  let s = Helpers.small_scenario () in
  let p = C.Baselines.ingress_placement s in
  let n = Apple_topology.Graph.num_nodes s.C.Types.topo.Apple_topology.Builders.graph in
  for v = 0 to n - 1 do
    for k = 0 to Apple_vnf.Nf.num_kinds - 1 do
      let offered = OE.load s p ~v ~k in
      let cap = (Apple_vnf.Nf.spec (Apple_vnf.Nf.kind_of_index k)).Apple_vnf.Nf.capacity_mbps in
      Alcotest.(check bool) "capacity covered" true
        (offered <= (float_of_int p.OE.counts.(v).(k) *. cap) +. 1e-3)
    done
  done

let test_apple_beats_ingress () =
  let s = Helpers.small_scenario () in
  let apple = OE.solve s in
  let ingress = C.Baselines.ingress_placement s in
  Alcotest.(check bool) "APPLE uses fewer or equal cores" true
    (OE.core_count apple <= OE.core_count ingress);
  Alcotest.(check bool) "APPLE uses fewer or equal instances" true
    (OE.instance_count apple <= OE.instance_count ingress)

let test_steering_stats () =
  let s = Helpers.small_scenario () in
  let st = C.Baselines.steering_stats ~seed:5 s in
  Alcotest.(check bool) "stretch >= 1" true (st.C.Baselines.mean_stretch >= 1.0);
  Alcotest.(check bool) "max >= mean" true
    (st.C.Baselines.max_stretch >= st.C.Baselines.mean_stretch -. 1e-9);
  Alcotest.(check bool) "steering reroutes some traffic" true
    (st.C.Baselines.flows_rerouted > 0.0);
  Alcotest.(check bool) "fraction" true
    (st.C.Baselines.flows_rerouted <= 1.0)

let test_properties_table () =
  let s = Helpers.small_scenario ~max_classes:15 () in
  let rows = C.Baselines.properties_table s in
  Alcotest.(check int) "eight frameworks" 8 (List.length rows);
  let name, pe, ifree, iso = List.nth rows 7 in
  Alcotest.(check string) "last row is APPLE" "APPLE" name;
  Alcotest.(check bool) "policy enforcement verified" true pe;
  Alcotest.(check bool) "interference freedom verified" true ifree;
  Alcotest.(check bool) "isolation" true iso;
  (* Table I: the steering frameworks are not interference-free. *)
  List.iter
    (fun fw ->
      let _, _, ifree, _ = List.find (fun (n, _, _, _) -> n = fw) rows in
      Alcotest.(check bool) (fw ^ " interferes") false ifree)
    [ "StEERING"; "SIMPLE"; "Stratos"; "E2"; "VNF-OP" ];
  let _, _, _, comb_iso = List.find (fun (n, _, _, _) -> n = "CoMb") rows in
  Alcotest.(check bool) "CoMb lacks isolation" false comb_iso

let suite =
  [
    Alcotest.test_case "ingress distribution" `Quick test_ingress_distribution_valid;
    Alcotest.test_case "ingress covers load" `Quick test_ingress_covers_load;
    Alcotest.test_case "APPLE beats ingress" `Quick test_apple_beats_ingress;
    Alcotest.test_case "steering stats" `Quick test_steering_stats;
    Alcotest.test_case "properties table" `Quick test_properties_table;
  ]
