module Nf = Apple_vnf.Nf
module I = Apple_vnf.Instance
module L = Apple_vnf.Lifecycle
module O = Apple_vnf.Overload
module E = Apple_sim.Engine

let test_table4 () =
  let check kind cores cap clickos =
    let s = Nf.spec kind in
    Alcotest.(check int) (Nf.name kind ^ " cores") cores s.Nf.cores;
    Alcotest.(check (float 1e-9)) (Nf.name kind ^ " cap") cap s.Nf.capacity_mbps;
    Alcotest.(check bool) (Nf.name kind ^ " clickos") clickos s.Nf.clickos
  in
  check Nf.Firewall 4 900.0 true;
  check Nf.Proxy 4 900.0 false;
  check Nf.Nat 2 900.0 true;
  check Nf.Ids 8 600.0 false

let test_kind_index_roundtrip () =
  List.iter
    (fun k -> Alcotest.(check bool) "roundtrip" true (Nf.kind_of_index (Nf.kind_index k) = k))
    Nf.all_kinds;
  Alcotest.(check int) "4 kinds" 4 Nf.num_kinds

let test_chain_parsing () =
  Alcotest.(check bool) "arrow form" true
    (Nf.chain_of_string "fw -> ids -> proxy" = [ Nf.Firewall; Nf.Ids; Nf.Proxy ]);
  Alcotest.(check bool) "comma form" true
    (Nf.chain_of_string "nat, firewall" = [ Nf.Nat; Nf.Firewall ]);
  Alcotest.(check bool) "case insensitive" true
    (Nf.chain_of_string "FW -> IDS" = [ Nf.Firewall; Nf.Ids ]);
  Alcotest.(check bool) "unknown rejected" true
    (try
       ignore (Nf.chain_of_string "fw -> dpi");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Nf.chain_of_string "  ");
       false
     with Invalid_argument _ -> true)

let test_chain_roundtrip () =
  let c = [ Nf.Firewall; Nf.Ids; Nf.Proxy ] in
  Alcotest.(check bool) "to_string/of_string" true
    (Nf.chain_of_string (Nf.chain_to_string c) = c)

let test_loss_curve () =
  let spec = Nf.spec Nf.Firewall in
  Alcotest.(check (float 1e-12)) "zero below capacity" 0.0
    (I.loss_at ~spec ~offered:800.0);
  Alcotest.(check (float 1e-12)) "zero at capacity" 0.0
    (I.loss_at ~spec ~offered:900.0);
  Alcotest.(check bool) "positive above knee" true
    (I.loss_at ~spec ~offered:1200.0 > 0.2);
  (* monotone in offered load *)
  let prev = ref 0.0 in
  for rate = 1 to 30 do
    let l = I.loss_at ~spec ~offered:(float_of_int rate *. 100.0) in
    Alcotest.(check bool) "monotone" true (l >= !prev -. 1e-12);
    prev := l
  done

let test_loss_pps_size_independent () =
  (* Fig 6: loss depends on packet rate, not size -- the pps entry point
     uses the same knee for any size. *)
  let a = I.loss_at_pps ~capacity_pps:9.0 ~offered_pps:12.0 in
  Alcotest.(check bool) "loses at 12Kpps over 9" true (a > 0.2 && a < 0.3)

let test_instance_accounting () =
  let inst = I.create ~id:7 ~spec:(Nf.spec Nf.Ids) ~host:3 in
  Alcotest.(check int) "id" 7 (I.id inst);
  Alcotest.(check int) "host" 3 (I.host inst);
  Alcotest.(check bool) "kind" true (I.kind inst = Nf.Ids);
  I.set_offered inst 300.0;
  Alcotest.(check (float 1e-9)) "util" 0.5 (I.utilization inst);
  I.add_offered inst (-500.0);
  Alcotest.(check (float 1e-9)) "clamped at zero" 0.0 (I.offered inst);
  I.set_offered inst 600.0;
  Alcotest.(check bool) "overloaded at cap" true (I.overloaded inst ~high_watermark:0.95);
  I.set_offered inst 500.0;
  Alcotest.(check bool) "not overloaded below" false (I.overloaded inst ~high_watermark:0.95)

let test_boot_times () =
  let rng = Apple_prelude.Rng.create 5 in
  Alcotest.(check (float 1e-12)) "raw clickos 30ms" 0.030 (L.boot_time rng L.Raw_clickos);
  Alcotest.(check (float 1e-12)) "reconfigure 30ms" 0.030 (L.boot_time rng L.Reconfigure);
  for _ = 1 to 50 do
    let t = L.boot_time rng L.Openstack in
    Alcotest.(check bool) "openstack in [3.9,4.6]" true (t >= 3.9 && t <= 4.6)
  done;
  Alcotest.(check bool) "normal vm slowest" true
    (L.boot_time rng L.Normal_vm > L.boot_time rng L.Openstack)

let test_provision_schedules () =
  let w = E.create () in
  let rng = Apple_prelude.Rng.create 6 in
  let ready_at = ref nan in
  L.provision w rng L.Raw_clickos ~on_ready:(fun w' -> ready_at := E.now w');
  E.run w;
  Alcotest.(check (float 1e-9)) "boot + rule install" 0.100 !ready_at

let test_overload_hysteresis () =
  let d = O.create ~high_watermark:8.5 ~low_watermark:4.0 () in
  Alcotest.(check bool) "starts normal" true (O.state d = O.Normal);
  let _, t1 = O.observe d ~rate:5.0 in
  Alcotest.(check bool) "below high: no change" true (t1 = `No_change);
  let _, t2 = O.observe d ~rate:9.0 in
  Alcotest.(check bool) "overload transition" true (t2 = `Went_overloaded);
  let _, t3 = O.observe d ~rate:6.0 in
  Alcotest.(check bool) "hysteresis holds" true (t3 = `No_change && O.state d = O.Overloaded);
  let _, t4 = O.observe d ~rate:3.0 in
  Alcotest.(check bool) "recovery" true (t4 = `Recovered && O.state d = O.Normal)

let test_overload_bad_config () =
  Alcotest.(check bool) "low > high rejected" true
    (try
       ignore (O.create ~high_watermark:4.0 ~low_watermark:8.0 ());
       false
     with Invalid_argument _ -> true)

let test_overload_attach () =
  let w = E.create () in
  let d = O.create ~poll_period:0.1 ~high_watermark:8.0 ~low_watermark:4.0 () in
  let rate = ref 1.0 in
  let overloads = ref 0 and recoveries = ref 0 in
  O.attach d w
    ~rate:(fun () -> !rate)
    ~on_overload:(fun _ -> incr overloads)
    ~on_recover:(fun _ -> incr recoveries)
    ~until:3.0;
  E.schedule w ~delay:1.0 (fun _ -> rate := 10.0);
  E.schedule w ~delay:2.0 (fun _ -> rate := 1.0);
  E.run w;
  Alcotest.(check int) "one overload" 1 !overloads;
  Alcotest.(check int) "one recovery" 1 !recoveries

let suite =
  [
    Alcotest.test_case "table IV" `Quick test_table4;
    Alcotest.test_case "kind index" `Quick test_kind_index_roundtrip;
    Alcotest.test_case "chain parsing" `Quick test_chain_parsing;
    Alcotest.test_case "chain roundtrip" `Quick test_chain_roundtrip;
    Alcotest.test_case "loss curve" `Quick test_loss_curve;
    Alcotest.test_case "loss pps" `Quick test_loss_pps_size_independent;
    Alcotest.test_case "instance accounting" `Quick test_instance_accounting;
    Alcotest.test_case "boot times" `Quick test_boot_times;
    Alcotest.test_case "provision" `Quick test_provision_schedules;
    Alcotest.test_case "overload hysteresis" `Quick test_overload_hysteresis;
    Alcotest.test_case "overload bad config" `Quick test_overload_bad_config;
    Alcotest.test_case "overload attach" `Quick test_overload_attach;
  ]
