(* Cross-module fuzzing: whole-pipeline invariants under random seeds,
   topologies, policy mixes and traffic dynamics. *)

module C = Apple_core
module B = Apple_topology.Builders
module Tr = Apple_traffic
module Rng = Apple_prelude.Rng
module Instance = Apple_vnf.Instance
module Nf = Apple_vnf.Nf

let topo_of = function
  | 0 -> B.internet2 ()
  | 1 -> B.geant ()
  | 2 -> B.univ1 ()
  | _ -> B.linear ~n:6

let build_random seed =
  let named = topo_of (seed mod 4) in
  let rng = Rng.create seed in
  let n = Apple_topology.Graph.num_nodes named.B.graph in
  let total = 1000.0 +. Rng.float rng 6000.0 in
  let tm = Tr.Synth.gravity rng ~n ~total in
  let config =
    { C.Scenario.default_config with C.Scenario.max_classes = 15 + Rng.int rng 25 }
  in
  C.Scenario.build ~config ~seed named tm

(* End-to-end pipeline: every random scenario must verify. *)
let prop_pipeline_verifies =
  QCheck.Test.make ~name:"pipeline verifies on random scenarios" ~count:10
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let s = build_random seed in
      let controller = C.Controller.create s in
      match C.Controller.run_epoch controller with
      | exception C.Optimization_engine.Infeasible _ -> true (* acceptable *)
      | _ -> (
          match C.Controller.verify controller with
          | Ok () -> true
          | Error _ -> false))

(* Dynamic handler: under arbitrary rate trajectories the sub-class
   weights stay a valid distribution and extra cores return to zero when
   rates return to base. *)
let prop_failover_invariants =
  QCheck.Test.make ~name:"failover invariants under random rate swings"
    ~count:8
    QCheck.(pair (int_range 0 10_000) (list_of_size (Gen.int_range 3 8) (float_range 0.5 12.0)))
    (fun (seed, swings) ->
      let s = build_random seed in
      match C.Engine_select.solve_best s with
      | exception C.Optimization_engine.Infeasible _ -> true
      | p ->
          let asg = C.Subclass.assign s p in
          let state = C.Netstate.of_assignment s asg in
          let handler = C.Dynamic_handler.create state in
          let base = Array.map (fun c -> c.C.Types.rate) s.C.Types.classes in
          let rng = Rng.create (seed + 1) in
          let ok = ref true in
          List.iter
            (fun factor ->
              (* random class gets the swing *)
              let h = Rng.int rng (Array.length s.C.Types.classes) in
              s.C.Types.classes.(h).C.Types.rate <- base.(h) *. factor;
              C.Dynamic_handler.step handler;
              if not (C.Netstate.weights_valid state) then ok := false;
              let loss = C.Netstate.network_loss state in
              if loss < 0.0 || loss > 1.0 then ok := false)
            swings;
          (* restore all rates; after a few rounds the episodes unwind *)
          Array.iteri (fun h r -> s.C.Types.classes.(h).C.Types.rate <- r) base;
          for _ = 1 to 4 do
            C.Dynamic_handler.step handler
          done;
          if C.Netstate.extra_cores state <> 0 then ok := false;
          if not (C.Netstate.weights_valid state) then ok := false;
          !ok)

(* Walks: every sub-class of every random scenario traverses its chain in
   order on its own path — with a witness packet from every prefix of the
   sub-class, not just the first. *)
let prop_every_prefix_walks =
  QCheck.Test.make ~name:"every classification prefix routes correctly"
    ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let s = build_random seed in
      match C.Engine_select.solve_best s with
      | exception C.Optimization_engine.Infeasible _ -> true
      | p ->
          let asg = C.Subclass.assign s p in
          let built = C.Rule_generator.build s asg in
          let inst_kind = Hashtbl.create 64 in
          List.iter
            (fun i -> Hashtbl.replace inst_kind (Instance.id i) (Instance.kind i))
            asg.C.Subclass.instances;
          let rewriters i =
            match Hashtbl.find_opt inst_kind i with
            | Some k -> Nf.rewrites_header k
            | None -> false
          in
          let ok = ref true in
          Array.iter
            (fun c ->
              let subs = Helpers.subclasses_of asg c.C.Types.id in
              let prefixes =
                C.Rule_generator.subclass_prefixes c subs
                  ~depth:built.C.Rule_generator.split_depth
              in
              List.iteri
                (fun idx _ ->
                  List.iter
                    (fun (pfx : C.Types.Prefix.prefix) ->
                      let path = Array.to_list c.C.Types.path in
                      (* last address of the block, not just the first *)
                      let last =
                        pfx.C.Types.Prefix.addr + (1 lsl (32 - pfx.C.Types.Prefix.len)) - 1
                      in
                      List.iter
                        (fun src_ip ->
                          match
                            Apple_dataplane.Walk.run
                              built.C.Rule_generator.network ~path
                              ~cls:c.C.Types.id ~src_ip ~rewriters ()
                          with
                          | Error _ -> ok := false
                          | Ok trace ->
                              if
                                not
                                  (Apple_dataplane.Walk.policy_enforced trace
                                     ~instance_kind:(Hashtbl.find inst_kind)
                                     ~chain:(Array.to_list c.C.Types.chain))
                              then ok := false;
                              if
                                not
                                  (Apple_dataplane.Walk.interference_free trace
                                     ~path)
                              then ok := false)
                        [ pfx.C.Types.Prefix.addr; last ])
                    prefixes.(idx))
                subs)
            s.C.Types.classes;
          !ok)

(* Online arrivals on top of random scenarios: accepted flows never break
   instance capacity. *)
let prop_online_never_overloads =
  QCheck.Test.make ~name:"online admissions never overload instances"
    ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let s = build_random seed in
      match C.Engine_select.solve_best s with
      | exception C.Optimization_engine.Infeasible _ -> true
      | p ->
          let asg = C.Subclass.assign s p in
          let state = C.Netstate.of_assignment s asg in
          C.Netstate.recompute_loads state;
          let rng = Rng.create (seed + 7) in
          let g = s.C.Types.topo.B.graph in
          let n = Apple_topology.Graph.num_nodes g in
          for _ = 1 to 10 do
            let src = Rng.int rng n and dst = Rng.int rng n in
            if src <> dst then
              match Apple_topology.Graph.shortest_path g src dst with
              | None -> ()
              | Some path ->
                  let id = Array.length state.C.Netstate.scenario.C.Types.classes in
                  let cls =
                    {
                      C.Types.id;
                      src;
                      dst;
                      path = Array.of_list path;
                      chain =
                        Array.of_list
                          (C.Policy.draw rng C.Policy.default_mix);
                      src_block = C.Scenario.src_block_of_class_id id;
                      rate = 20.0 +. Rng.float rng 400.0;
                    }
                  in
                  ignore (C.Online_engine.admit state cls)
          done;
          List.for_all
            (fun inst ->
              Instance.offered inst
              <= (Instance.spec inst).Nf.capacity_mbps +. 1e-6)
            (C.Resource_orchestrator.instances state.C.Netstate.orchestrator))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_pipeline_verifies;
    QCheck_alcotest.to_alcotest prop_failover_invariants;
    QCheck_alcotest.to_alcotest prop_every_prefix_walks;
    QCheck_alcotest.to_alcotest prop_online_never_overloads;
  ]
