module M = Apple_lp.Model

let status_pp = function
  | M.Optimal -> "optimal"
  | M.Infeasible -> "infeasible"
  | M.Unbounded -> "unbounded"
  | M.Limit -> "limit"

let check_status expected (sol : M.solution) =
  Alcotest.(check string) "status" (status_pp expected) (status_pp sol.M.status)

let test_basic_max () =
  (* max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6 -> (4, 0), obj 12 *)
  let t = M.create ~maximize:true () in
  let x = M.add_var t ~obj:3.0 () in
  let y = M.add_var t ~obj:2.0 () in
  M.add_constraint t [ (1.0, x); (1.0, y) ] M.Le 4.0;
  M.add_constraint t [ (1.0, x); (3.0, y) ] M.Le 6.0;
  let s = M.solve_lp t in
  check_status M.Optimal s;
  Alcotest.(check (float 1e-6)) "objective" 12.0 s.M.objective;
  Alcotest.(check (float 1e-6)) "x" 4.0 (M.value s x);
  Alcotest.(check (float 1e-6)) "y" 0.0 (M.value s y)

let test_equality_and_ge () =
  (* min x + y  s.t. x + y >= 3, x - y = 1 -> (2, 1) *)
  let t = M.create () in
  let x = M.add_var t ~obj:1.0 () in
  let y = M.add_var t ~obj:1.0 () in
  M.add_constraint t [ (1.0, x); (1.0, y) ] M.Ge 3.0;
  M.add_constraint t [ (1.0, x); (-1.0, y) ] M.Eq 1.0;
  let s = M.solve_lp t in
  check_status M.Optimal s;
  Alcotest.(check (float 1e-6)) "objective" 3.0 s.M.objective;
  Alcotest.(check (float 1e-6)) "x" 2.0 (M.value s x);
  Alcotest.(check (float 1e-6)) "y" 1.0 (M.value s y)

let test_variable_bounds () =
  (* max x + y with x <= 2.5, y <= 1.5, x + y <= 3.5 *)
  let t = M.create ~maximize:true () in
  let x = M.add_var t ~ub:2.5 ~obj:1.0 () in
  let y = M.add_var t ~ub:1.5 ~obj:1.0 () in
  M.add_constraint t [ (1.0, x); (1.0, y) ] M.Le 3.5;
  let s = M.solve_lp t in
  check_status M.Optimal s;
  Alcotest.(check (float 1e-6)) "objective" 3.5 s.M.objective

let test_negative_lower_bound () =
  (* min x with x >= -5 -> -5 *)
  let t = M.create () in
  let x = M.add_var t ~lb:(-5.0) ~ub:10.0 ~obj:1.0 () in
  M.add_constraint t [ (1.0, x) ] M.Le 100.0;
  let s = M.solve_lp t in
  check_status M.Optimal s;
  Alcotest.(check (float 1e-6)) "x at lower bound" (-5.0) (M.value s x)

let test_infeasible () =
  let t = M.create () in
  let x = M.add_var t ~ub:1.0 ~obj:1.0 () in
  M.add_constraint t [ (1.0, x) ] M.Ge 2.0;
  check_status M.Infeasible (M.solve_lp t)

let test_unbounded () =
  let t = M.create ~maximize:true () in
  let x = M.add_var t ~obj:1.0 () in
  M.add_constraint t [ (1.0, x) ] M.Ge 0.0;
  check_status M.Unbounded (M.solve_lp t)

let test_degenerate_duplicate_terms () =
  (* Terms with a repeated variable must be merged: x + x <= 4 -> x <= 2. *)
  let t = M.create ~maximize:true () in
  let x = M.add_var t ~obj:1.0 () in
  M.add_constraint t [ (1.0, x); (1.0, x) ] M.Le 4.0;
  let s = M.solve_lp t in
  Alcotest.(check (float 1e-6)) "merged" 2.0 (M.value s x)

let test_ilp_basic () =
  (* min x + y  s.t. 2x + 3y >= 7, integer -> obj 3 *)
  let t = M.create () in
  let x = M.add_var t ~obj:1.0 ~integer:true () in
  let y = M.add_var t ~obj:1.0 ~integer:true () in
  M.add_constraint t [ (2.0, x); (3.0, y) ] M.Ge 7.0;
  let s = M.solve_ilp t in
  check_status M.Optimal s;
  Alcotest.(check (float 1e-6)) "objective" 3.0 s.M.objective

let test_ilp_knapsack () =
  (* max 10a + 6b + 4c s.t. a+b+c <= 2, 5a+4b+3c <= 8; binary.
     best: a=1,b=0,c=1 -> 14?  check: a+c=2 ok, 5+3=8 ok -> 14.
     a=1,b=1: 2 items, 9 <= 8? no. So 14. *)
  let t = M.create ~maximize:true () in
  let a = M.add_var t ~ub:1.0 ~obj:10.0 ~integer:true () in
  let b = M.add_var t ~ub:1.0 ~obj:6.0 ~integer:true () in
  let c = M.add_var t ~ub:1.0 ~obj:4.0 ~integer:true () in
  M.add_constraint t [ (1.0, a); (1.0, b); (1.0, c) ] M.Le 2.0;
  M.add_constraint t [ (5.0, a); (4.0, b); (3.0, c) ] M.Le 8.0;
  let s = M.solve_ilp t in
  check_status M.Optimal s;
  Alcotest.(check (float 1e-6)) "objective" 14.0 s.M.objective

let test_ilp_matches_exhaustive () =
  (* Fixed small ILP cross-checked against brute force. *)
  let t = M.create () in
  let x = M.add_var t ~ub:5.0 ~obj:3.0 ~integer:true () in
  let y = M.add_var t ~ub:5.0 ~obj:2.0 ~integer:true () in
  let z = M.add_var t ~ub:5.0 ~obj:4.0 ~integer:true () in
  M.add_constraint t [ (1.0, x); (2.0, y); (1.0, z) ] M.Ge 6.0;
  M.add_constraint t [ (2.0, x); (1.0, y); (3.0, z) ] M.Ge 8.0;
  let s = M.solve_ilp t in
  check_status M.Optimal s;
  (* brute force *)
  let best = ref infinity in
  for x' = 0 to 5 do
    for y' = 0 to 5 do
      for z' = 0 to 5 do
        let xf = float_of_int x' and yf = float_of_int y' and zf = float_of_int z' in
        if xf +. (2.0 *. yf) +. zf >= 6.0 && (2.0 *. xf) +. yf +. (3.0 *. zf) >= 8.0
        then best := min !best ((3.0 *. xf) +. (2.0 *. yf) +. (4.0 *. zf))
      done
    done
  done;
  Alcotest.(check (float 1e-6)) "matches brute force" !best s.M.objective

let test_round_up_feasible_covering () =
  (* Covering structure: rounding the relaxation up stays feasible. *)
  let t = M.create () in
  let x = M.add_var t ~obj:1.0 ~integer:true () in
  let y = M.add_var t ~obj:1.0 ~integer:true () in
  M.add_constraint t [ (3.0, x); (2.0, y) ] M.Ge 7.5;
  let s = M.solve_round_up t in
  Alcotest.(check bool) "feasible" true (M.feasible_with t s.M.values);
  Alcotest.(check bool) "integral" true
    (Array.for_all (fun v -> abs_float (v -. Float.round v) < 1e-9) s.M.values)

let test_feasible_with () =
  let t = M.create () in
  let x = M.add_var t ~ub:2.0 () in
  M.add_constraint t [ (1.0, x) ] M.Ge 1.0;
  Alcotest.(check bool) "interior point" true (M.feasible_with t [| 1.5 |]);
  Alcotest.(check bool) "violates row" false (M.feasible_with t [| 0.5 |]);
  Alcotest.(check bool) "violates bound" false (M.feasible_with t [| 2.5 |])

let test_objective_at () =
  let t = M.create () in
  let _x = M.add_var t ~obj:2.0 () in
  let _y = M.add_var t ~obj:(-1.0) () in
  Alcotest.(check (float 1e-9)) "dot product" 5.0 (M.objective_at t [| 3.0; 1.0 |])

let test_many_constraints () =
  (* A chain of 50 constraints x_i >= x_{i+1} + 1 with x_50 >= 0:
     min x_0 = 50. *)
  let t = M.create () in
  let vars = Array.init 51 (fun i -> M.add_var t ~obj:(if i = 0 then 1.0 else 0.0) ()) in
  for i = 0 to 49 do
    M.add_constraint t [ (1.0, vars.(i)); (-1.0, vars.(i + 1)) ] M.Ge 1.0
  done;
  let s = M.solve_lp t in
  check_status M.Optimal s;
  Alcotest.(check (float 1e-4)) "chain" 50.0 s.M.objective

(* --- property tests ------------------------------------------------ *)

(* Random covering LPs: min c.x, A x >= b with positive data.  The LP
   solution must be feasible and no worse than a reference feasible point,
   and the ILP must be >= the LP bound and match exhaustive search on a
   small integer box. *)
let random_cover_gen =
  QCheck.Gen.(
    let pos = float_range 0.5 5.0 in
    let n = 3 in
    let m_gen = int_range 1 3 in
    m_gen >>= fun m ->
    list_repeat m (list_repeat n pos) >>= fun rows ->
    list_repeat m (float_range 1.0 8.0) >>= fun rhs ->
    list_repeat n (float_range 0.5 4.0) >>= fun obj ->
    return (rows, rhs, obj))

let build_cover (rows, rhs, obj) ~integer =
  let t = M.create () in
  let vars = List.map (fun c -> M.add_var t ~ub:6.0 ~obj:c ~integer ()) obj in
  List.iter2
    (fun row b ->
      M.add_constraint t (List.map2 (fun coef v -> (coef, v)) row vars) M.Ge b)
    rows rhs;
  (t, vars)

let prop_lp_feasible_and_bounded =
  QCheck.Test.make ~name:"random covering LP: optimal is feasible" ~count:120
    (QCheck.make random_cover_gen) (fun input ->
      let t, _ = build_cover input ~integer:false in
      let s = M.solve_lp t in
      s.M.status = M.Optimal && M.feasible_with t s.M.values)

let prop_ilp_dominates_lp =
  QCheck.Test.make ~name:"random covering: ILP objective >= LP bound" ~count:80
    (QCheck.make random_cover_gen) (fun input ->
      let tl, _ = build_cover input ~integer:false in
      let ti, _ = build_cover input ~integer:true in
      let sl = M.solve_lp tl in
      let si = M.solve_ilp ti in
      si.M.status = M.Optimal
      && M.feasible_with ti si.M.values
      && si.M.objective >= sl.M.objective -. 1e-6)

let prop_ilp_matches_exhaustive =
  QCheck.Test.make ~name:"random covering ILP matches exhaustive search"
    ~count:60 (QCheck.make random_cover_gen) (fun ((rows, rhs, obj) as input) ->
      let t, _ = build_cover input ~integer:true in
      let s = M.solve_ilp t in
      (* exhaustive over [0,6]^3 *)
      let best = ref infinity in
      for a = 0 to 6 do
        for b = 0 to 6 do
          for c = 0 to 6 do
            let x = [ float_of_int a; float_of_int b; float_of_int c ] in
            let ok =
              List.for_all2
                (fun row rhs_v ->
                  List.fold_left2 (fun acc coef xv -> acc +. (coef *. xv)) 0.0 row x
                  >= rhs_v -. 1e-9)
                rows rhs
            in
            if ok then
              best :=
                min !best
                  (List.fold_left2 (fun acc cv xv -> acc +. (cv *. xv)) 0.0 obj x)
          done
        done
      done;
      s.M.status = M.Optimal && abs_float (s.M.objective -. !best) < 1e-6)

let prop_round_up_feasible =
  QCheck.Test.make ~name:"round-up heuristic stays feasible on coverings"
    ~count:120 (QCheck.make random_cover_gen) (fun input ->
      let t, _ = build_cover input ~integer:true in
      let s = M.solve_round_up t in
      M.feasible_with t s.M.values)

let suite =
  [
    Alcotest.test_case "basic max" `Quick test_basic_max;
    Alcotest.test_case "equality and >=" `Quick test_equality_and_ge;
    Alcotest.test_case "variable bounds" `Quick test_variable_bounds;
    Alcotest.test_case "negative lower bound" `Quick test_negative_lower_bound;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "duplicate terms merged" `Quick test_degenerate_duplicate_terms;
    Alcotest.test_case "ILP basic" `Quick test_ilp_basic;
    Alcotest.test_case "ILP knapsack" `Quick test_ilp_knapsack;
    Alcotest.test_case "ILP vs brute force" `Quick test_ilp_matches_exhaustive;
    Alcotest.test_case "round-up covering" `Quick test_round_up_feasible_covering;
    Alcotest.test_case "feasible_with" `Quick test_feasible_with;
    Alcotest.test_case "objective_at" `Quick test_objective_at;
    Alcotest.test_case "long chain" `Quick test_many_constraints;
    QCheck_alcotest.to_alcotest prop_lp_feasible_and_bounded;
    QCheck_alcotest.to_alcotest prop_ilp_dominates_lp;
    QCheck_alcotest.to_alcotest prop_ilp_matches_exhaustive;
    QCheck_alcotest.to_alcotest prop_round_up_feasible;
  ]

(* --- dual values ---------------------------------------------------- *)

let test_duals_known_example () =
  (* max 3x + 2y st x + y <= 4, x + 3y <= 6: optimum x=4, y=0.
     Shadow prices: relaxing the first constraint by 1 gains 3
     (x grows); the second constraint is slack, price 0. *)
  let t = M.create ~maximize:true () in
  let x = M.add_var t ~obj:3.0 () in
  let y = M.add_var t ~obj:2.0 () in
  M.add_constraint t [ (1.0, x); (1.0, y) ] M.Le 4.0;
  M.add_constraint t [ (1.0, x); (3.0, y) ] M.Le 6.0;
  let s = M.solve_lp t in
  Alcotest.(check (float 1e-6)) "binding row priced" 3.0 s.M.duals.(0);
  Alcotest.(check (float 1e-6)) "slack row free" 0.0 s.M.duals.(1)

let test_duals_min_example () =
  (* min 2x + 3y st x + y >= 5 (binding): shadow price = 2 (cheapest
     variable absorbs the extra requirement). *)
  let t = M.create () in
  let x = M.add_var t ~obj:2.0 () in
  let y = M.add_var t ~obj:3.0 () in
  M.add_constraint t [ (1.0, x); (1.0, y) ] M.Ge 5.0;
  let s = M.solve_lp t in
  Alcotest.(check (float 1e-6)) "shadow price" 2.0 s.M.duals.(0)

let test_duals_shadow_price_prediction () =
  (* The dual predicts the objective change for a small rhs perturbation. *)
  let build rhs =
    let t = M.create () in
    let x = M.add_var t ~obj:1.0 () in
    let y = M.add_var t ~obj:4.0 () in
    M.add_constraint t [ (2.0, x); (1.0, y) ] M.Ge rhs;
    M.add_constraint t [ (1.0, x); (3.0, y) ] M.Ge 6.0;
    t
  in
  let s0 = M.solve_lp (build 8.0) in
  let s1 = M.solve_lp (build 9.0) in
  Alcotest.(check bool) "dual predicts delta" true
    (abs_float (s1.M.objective -. s0.M.objective -. s0.M.duals.(0)) < 1e-6)

let prop_complementary_slackness =
  QCheck.Test.make ~name:"complementary slackness on random coverings"
    ~count:80 (QCheck.make random_cover_gen)
    (fun ((rows, rhs, _) as input) ->
      let t, vars = build_cover input ~integer:false in
      let s = M.solve_lp t in
      s.M.status = M.Optimal
      && List.for_all2
           (fun row rhs_v ->
             (* either the row is tight or its dual is ~0 *)
             let i =
               (* recover the row index by position *)
               let rec idx k = function
                 | r :: _ when r == row -> k
                 | _ :: rest -> idx (k + 1) rest
                 | [] -> -1
               in
               idx 0 rows
             in
             let lhs =
               List.fold_left2
                 (fun acc coef v -> acc +. (coef *. M.value s v))
                 0.0 row vars
             in
             let slack = lhs -. rhs_v in
             abs_float (s.M.duals.(i) *. slack) < 1e-4)
           rows rhs)

let prop_strong_duality =
  QCheck.Test.make ~name:"strong duality: y.b = c.x on random coverings"
    ~count:80 (QCheck.make random_cover_gen)
    (fun ((_, rhs, _) as input) ->
      let t, _ = build_cover input ~integer:false in
      let s = M.solve_lp t in
      (* At a covering optimum with variables strictly inside their upper
         bounds, the dual objective y.b equals the primal objective. *)
      let at_ub = Array.exists (fun v -> v > 6.0 -. 1e-6) s.M.values in
      s.M.status <> M.Optimal || at_ub
      ||
      let dual_obj =
        List.fold_left2 (fun acc y b -> acc +. (y *. b)) 0.0
          (Array.to_list s.M.duals) rhs
      in
      abs_float (dual_obj -. s.M.objective) < 1e-5)

let dual_suite =
  [
    Alcotest.test_case "duals known max" `Quick test_duals_known_example;
    Alcotest.test_case "duals known min" `Quick test_duals_min_example;
    Alcotest.test_case "duals predict perturbation" `Quick test_duals_shadow_price_prediction;
    QCheck_alcotest.to_alcotest prop_complementary_slackness;
    QCheck_alcotest.to_alcotest prop_strong_duality;
  ]

let suite = suite @ dual_suite
