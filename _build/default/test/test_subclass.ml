module C = Apple_core
module SC = C.Subclass
module OE = C.Optimization_engine
module Rng = Apple_prelude.Rng

let test_decompose_trivial () =
  let s = Helpers.tiny_scenario () in
  let c = s.C.Types.classes.(1) in
  (* single-stage class, all processing at hop 0 *)
  let d = [| [| 1.0 |]; [| 0.0 |]; [| 0.0 |] |] in
  let subs = SC.decompose c d in
  Alcotest.(check int) "one subclass" 1 (List.length subs);
  let sub = List.hd subs in
  Alcotest.(check (float 1e-9)) "weight 1" 1.0 sub.SC.weight;
  Alcotest.(check (array int)) "hops" [| 0 |] sub.SC.hops

let test_decompose_split () =
  let s = Helpers.tiny_scenario () in
  let c = s.C.Types.classes.(1) in
  let d = [| [| 0.3 |]; [| 0.5 |]; [| 0.2 |] |] in
  let subs = SC.decompose c d in
  Alcotest.(check int) "three subclasses" 3 (List.length subs);
  Alcotest.(check bool) "weights realize d" true (SC.weights_consistent c d subs)

let test_decompose_chain_order () =
  let s = Helpers.tiny_scenario () in
  let c = s.C.Types.classes.(0) in
  (* two-stage class: fw split 0.5/0.5 at hops 0,2; ids all at hop 3 *)
  let d =
    [| [| 0.5; 0.0 |]; [| 0.0; 0.0 |]; [| 0.5; 0.0 |]; [| 0.0; 1.0 |] |]
  in
  let subs = SC.decompose c d in
  Alcotest.(check bool) "consistent" true (SC.weights_consistent c d subs);
  List.iter
    (fun sub ->
      let hops = sub.SC.hops in
      for j = 1 to Array.length hops - 1 do
        Alcotest.(check bool) "non-decreasing hops" true (hops.(j) >= hops.(j - 1))
      done)
    subs

let test_decompose_sums_to_one () =
  let s = Helpers.tiny_scenario () in
  let c = s.C.Types.classes.(0) in
  let d =
    [| [| 0.25; 0.1 |]; [| 0.25; 0.2 |]; [| 0.25; 0.3 |]; [| 0.25; 0.4 |] |]
  in
  let subs = SC.decompose c d in
  let total = List.fold_left (fun acc sub -> acc +. sub.SC.weight) 0.0 subs in
  Alcotest.(check (float 1e-6)) "weights sum to 1" 1.0 total;
  Alcotest.(check bool) "consistent" true (SC.weights_consistent c d subs)

let test_empty_chain_class () =
  let named = Apple_topology.Builders.linear ~n:2 in
  let c =
    {
      C.Types.id = 0;
      src = 0;
      dst = 1;
      path = [| 0; 1 |];
      chain = [||];
      src_block = C.Scenario.src_block_of_class_id 0;
      rate = 10.0;
    }
  in
  ignore named;
  let subs = SC.decompose c [| [||]; [||] |] in
  Alcotest.(check int) "one trivial subclass" 1 (List.length subs);
  Alcotest.(check (float 1e-9)) "full weight" 1.0 (List.hd subs).SC.weight

(* Property: decomposition of real LP outputs is always consistent and
   order-respecting. *)
let prop_decompose_on_lp_outputs =
  QCheck.Test.make ~name:"decompose realizes every LP distribution" ~count:12
    QCheck.(int_range 0 1000)
    (fun seed ->
      let s = Helpers.small_scenario ~seed ~max_classes:25 () in
      let p = OE.solve s in
      Array.for_all
        (fun c ->
          let d = p.OE.distribution.(c.C.Types.id) in
          let subs = SC.decompose c d in
          SC.weights_consistent c d subs
          && List.for_all
               (fun sub ->
                 let ok = ref true in
                 Array.iteri
                   (fun j i ->
                     if j > 0 && i < sub.SC.hops.(j - 1) then ok := false)
                   sub.SC.hops;
                 !ok)
               subs)
        s.C.Types.classes)

let test_assign_all_pinned () =
  let s = Helpers.small_scenario () in
  let p = OE.solve s in
  let asg = SC.assign s p in
  List.iter
    (fun sub ->
      Array.iteri
        (fun j _ ->
          Alcotest.(check bool) "stage pinned" true
            (Hashtbl.mem asg.SC.instance_of (SC.key sub, j)))
        sub.SC.hops)
    asg.SC.subclasses

let test_assign_respects_capacity () =
  let s = Helpers.small_scenario () in
  let p = OE.solve s in
  let asg = SC.assign s p in
  Alcotest.(check bool) "no instance overloaded" true
    (SC.instance_load_ok asg ~slack:1.0001)

let test_assign_instance_host_matches_hop () =
  let s = Helpers.small_scenario () in
  let p = OE.solve s in
  let asg = SC.assign s p in
  List.iter
    (fun sub ->
      let c = s.C.Types.classes.(sub.SC.class_id) in
      Array.iteri
        (fun j i ->
          let inst = Hashtbl.find asg.SC.instance_of (SC.key sub, j) in
          Alcotest.(check int) "instance at the hop's switch"
            c.C.Types.path.(i)
            (Apple_vnf.Instance.host inst);
          Alcotest.(check bool) "instance of the right kind" true
            (Apple_vnf.Instance.kind inst = c.C.Types.chain.(j)))
        sub.SC.hops)
    asg.SC.subclasses

let test_assign_weights_still_sum () =
  let s = Helpers.small_scenario () in
  let p = OE.solve s in
  let asg = SC.assign s p in
  Array.iter
    (fun c ->
      let subs = Helpers.subclasses_of asg c.C.Types.id in
      let total = List.fold_left (fun acc sub -> acc +. sub.SC.weight) 0.0 subs in
      Alcotest.(check (float 1e-6)) "per-class sum 1" 1.0 total)
    s.C.Types.classes

let test_assign_offered_matches_weights () =
  let s = Helpers.small_scenario () in
  let p = OE.solve s in
  let asg = SC.assign s p in
  (* Recompute each instance's offered load from scratch. *)
  let expected = Hashtbl.create 64 in
  List.iter
    (fun sub ->
      let c = s.C.Types.classes.(sub.SC.class_id) in
      Array.iteri
        (fun j _ ->
          let inst = Hashtbl.find asg.SC.instance_of (SC.key sub, j) in
          let id = Apple_vnf.Instance.id inst in
          Hashtbl.replace expected id
            ((c.C.Types.rate *. sub.SC.weight)
            +. Option.value ~default:0.0 (Hashtbl.find_opt expected id)))
        sub.SC.hops)
    asg.SC.subclasses;
  List.iter
    (fun inst ->
      let id = Apple_vnf.Instance.id inst in
      let want = Option.value ~default:0.0 (Hashtbl.find_opt expected id) in
      Alcotest.(check bool) "offered bookkeeping" true
        (abs_float (Apple_vnf.Instance.offered inst -. want) < 1e-6))
    asg.SC.instances

let suite =
  [
    Alcotest.test_case "decompose trivial" `Quick test_decompose_trivial;
    Alcotest.test_case "decompose split" `Quick test_decompose_split;
    Alcotest.test_case "decompose chain order" `Quick test_decompose_chain_order;
    Alcotest.test_case "decompose sums to one" `Quick test_decompose_sums_to_one;
    Alcotest.test_case "empty chain" `Quick test_empty_chain_class;
    QCheck_alcotest.to_alcotest prop_decompose_on_lp_outputs;
    Alcotest.test_case "assign pins all stages" `Quick test_assign_all_pinned;
    Alcotest.test_case "assign respects capacity" `Quick test_assign_respects_capacity;
    Alcotest.test_case "assign host/kind correct" `Quick test_assign_instance_host_matches_hop;
    Alcotest.test_case "assign weights sum" `Quick test_assign_weights_still_sum;
    Alcotest.test_case "assign offered bookkeeping" `Quick test_assign_offered_matches_weights;
  ]
