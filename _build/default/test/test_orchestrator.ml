module RO = Apple_core.Resource_orchestrator
module Nf = Apple_vnf.Nf
module I = Apple_vnf.Instance
module E = Apple_sim.Engine

let mk ?(cores = 16) ?(hosts = 3) () =
  RO.create ~host_cores:(Array.make hosts cores)

let test_accounting () =
  let t = mk () in
  Alcotest.(check int) "total" 48 (RO.total_cores t);
  Alcotest.(check int) "all free" 16 (RO.available_cores t 0);
  let fw = RO.launch t Nf.Firewall ~host:0 in
  Alcotest.(check int) "4 cores used" 4 (RO.used_cores t 0);
  Alcotest.(check int) "12 free" 12 (RO.available_cores t 0);
  Alcotest.(check int) "other hosts untouched" 16 (RO.available_cores t 1);
  RO.destroy t fw;
  Alcotest.(check int) "released" 0 (RO.used_cores t 0)

let test_out_of_resources () =
  let t = mk ~cores:10 () in
  let _ = RO.launch t Nf.Ids ~host:0 in
  (* 8 cores used; another IDS (8) cannot fit *)
  Alcotest.(check bool) "raises" true
    (try
       ignore (RO.launch t Nf.Ids ~host:0);
       false
     with RO.Out_of_resources { host = 0; wanted = 8; available = 2 } -> true);
  (* a NAT (2 cores) still fits exactly *)
  let _ = RO.launch t Nf.Nat ~host:0 in
  Alcotest.(check int) "full" 0 (RO.available_cores t 0)

let test_instances_listing () =
  let t = mk () in
  let a = RO.launch t Nf.Firewall ~host:0 in
  let b = RO.launch t Nf.Nat ~host:1 in
  let c = RO.launch t Nf.Proxy ~host:0 in
  Alcotest.(check (list int)) "launch order" [ I.id a; I.id b; I.id c ]
    (List.map I.id (RO.instances t));
  Alcotest.(check (list int)) "per host" [ I.id a; I.id c ]
    (List.map I.id (RO.instances_at t 0))

let test_destroy_idempotent () =
  let t = mk () in
  let a = RO.launch t Nf.Firewall ~host:0 in
  RO.destroy t a;
  RO.destroy t a;
  Alcotest.(check int) "not double-released" 0 (RO.used_cores t 0)

let test_adopt () =
  let t = mk () in
  let pre =
    [
      I.create ~id:100 ~spec:(Nf.spec Nf.Firewall) ~host:0;
      I.create ~id:101 ~spec:(Nf.spec Nf.Ids) ~host:1;
    ]
  in
  RO.adopt t pre;
  Alcotest.(check int) "fw cores" 4 (RO.used_cores t 0);
  Alcotest.(check int) "ids cores" 8 (RO.used_cores t 1);
  (* new launches get fresh ids above the adopted ones *)
  let n = RO.launch t Nf.Nat ~host:2 in
  Alcotest.(check bool) "id continues" true (I.id n >= 102)

let test_adopt_overflow () =
  let t = mk ~cores:4 () in
  Alcotest.(check bool) "adoption checks budgets" true
    (try
       RO.adopt t
         [
           I.create ~id:0 ~spec:(Nf.spec Nf.Ids) ~host:0;
         ];
       false
     with RO.Out_of_resources _ -> true)

let test_boot_readiness () =
  let t = mk () in
  let world = E.create () in
  let rng = Apple_prelude.Rng.create 4 in
  let inst = RO.launch t ~world ~rng ~boot:Apple_vnf.Lifecycle.Raw_clickos Nf.Firewall ~host:0 in
  Alcotest.(check bool) "not ready before boot" false (RO.is_ready t inst);
  E.run world;
  Alcotest.(check bool) "ready after boot + rules" true (RO.is_ready t inst);
  (* without a world, ready immediately *)
  let now = RO.launch t Nf.Nat ~host:1 in
  Alcotest.(check bool) "instant without world" true (RO.is_ready t now)

let test_snapshot_available () =
  let t = mk () in
  let _ = RO.launch t Nf.Ids ~host:2 in
  Alcotest.(check (array int)) "A_v vector" [| 16; 16; 8 |] (RO.snapshot_available t)

let suite =
  [
    Alcotest.test_case "accounting" `Quick test_accounting;
    Alcotest.test_case "out of resources" `Quick test_out_of_resources;
    Alcotest.test_case "instances listing" `Quick test_instances_listing;
    Alcotest.test_case "destroy idempotent" `Quick test_destroy_idempotent;
    Alcotest.test_case "adopt" `Quick test_adopt;
    Alcotest.test_case "adopt overflow" `Quick test_adopt_overflow;
    Alcotest.test_case "boot readiness" `Quick test_boot_readiness;
    Alcotest.test_case "snapshot available" `Quick test_snapshot_available;
  ]
