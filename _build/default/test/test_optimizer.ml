module C = Apple_core
module OE = C.Optimization_engine
module Nf = Apple_vnf.Nf

let test_tiny_solves () =
  let s = Helpers.tiny_scenario () in
  let p = OE.solve s in
  (match OE.check_distribution s p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* 500 Mbps fw+ids and 400 Mbps fw: one firewall covers 900, one IDS
     covers 500 -> 2 instances is the optimum. *)
  Alcotest.(check int) "optimal count" 2 (OE.instance_count p)

let test_tiny_ilp_matches () =
  let s = Helpers.tiny_scenario () in
  let lp = OE.solve ~method_:OE.Lp_round s in
  let ilp = OE.solve ~method_:(OE.Ilp 2000) s in
  Alcotest.(check int) "heuristic meets exact optimum on the tiny case"
    (OE.instance_count ilp) (OE.instance_count lp);
  match OE.check_distribution s ilp with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("ilp: " ^ e)

let test_lp_bound_respected () =
  let s = Helpers.small_scenario () in
  let p = OE.solve s in
  Alcotest.(check bool) "rounded >= relaxation" true
    (p.OE.objective_value >= p.OE.lp_objective -. 1e-6)

let test_feasibility_small () =
  let s = Helpers.small_scenario () in
  let p = OE.solve s in
  match OE.check_distribution s p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_feasibility_geant () =
  let s = Helpers.small_scenario ~named:(Apple_topology.Builders.geant ()) () in
  let p = OE.solve s in
  match OE.check_distribution s p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_capacity_eq5 () =
  let s = Helpers.small_scenario () in
  let p = OE.solve s in
  let n = Apple_topology.Graph.num_nodes s.C.Types.topo.Apple_topology.Builders.graph in
  for v = 0 to n - 1 do
    for k = 0 to Nf.num_kinds - 1 do
      let offered = OE.load s p ~v ~k in
      let cap = (Nf.spec (Nf.kind_of_index k)).Nf.capacity_mbps in
      Alcotest.(check bool) "Eq. (5)" true
        (offered <= (float_of_int p.OE.counts.(v).(k) *. cap) +. 1e-3)
    done
  done

let test_resource_eq6 () =
  let s = Helpers.small_scenario () in
  let p = OE.solve s in
  Array.iteri
    (fun v row ->
      let cores =
        Array.to_list row
        |> List.mapi (fun k c -> c * (Nf.spec (Nf.kind_of_index k)).Nf.cores)
        |> List.fold_left ( + ) 0
      in
      Alcotest.(check bool) "Eq. (6)" true (cores <= s.C.Types.host_cores.(v)))
    p.OE.counts

let test_infeasible_raises () =
  let s = Helpers.tiny_scenario () in
  let starved = { s with C.Types.host_cores = Array.make 4 2 } in
  Alcotest.(check bool) "raises Infeasible" true
    (try
       ignore (OE.solve starved);
       false
     with OE.Infeasible _ -> true)

let test_min_cores_objective () =
  let s = Helpers.small_scenario () in
  let pi = OE.solve ~objective:OE.Min_instances s in
  let pc = OE.solve ~objective:OE.Min_cores s in
  (* optimizing cores never yields more cores than optimizing counts
     (up to rounding noise, which we bound loosely) *)
  Alcotest.(check bool) "cores objective helps cores" true
    (OE.core_count pc <= OE.core_count pi + 8);
  match OE.check_distribution s pc with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_instances_on_path_only () =
  let s = Helpers.tiny_scenario () in
  let p = OE.solve s in
  (* class paths cover switches 0..3; nothing can be placed elsewhere
     (there is no elsewhere on the line) — but kinds not in any chain must
     have zero instances. *)
  Array.iteri
    (fun _ row ->
      Alcotest.(check int) "no proxy" 0 row.(Nf.kind_index Nf.Proxy);
      Alcotest.(check int) "no nat" 0 row.(Nf.kind_index Nf.Nat))
    p.OE.counts

let test_solve_deterministic () =
  let s1 = Helpers.small_scenario () in
  let s2 = Helpers.small_scenario () in
  let p1 = OE.solve s1 and p2 = OE.solve s2 in
  Alcotest.(check int) "same instances" (OE.instance_count p1) (OE.instance_count p2);
  Alcotest.(check bool) "same counts" true (p1.OE.counts = p2.OE.counts)

let test_zero_rate_class () =
  let s = Helpers.tiny_scenario () in
  s.C.Types.classes.(1).C.Types.rate <- 0.0;
  let p = OE.solve s in
  match OE.check_distribution s p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "tiny optimum" `Quick test_tiny_solves;
    Alcotest.test_case "tiny ILP agreement" `Quick test_tiny_ilp_matches;
    Alcotest.test_case "LP bound respected" `Quick test_lp_bound_respected;
    Alcotest.test_case "feasible internet2" `Quick test_feasibility_small;
    Alcotest.test_case "feasible geant" `Quick test_feasibility_geant;
    Alcotest.test_case "capacity Eq5" `Quick test_capacity_eq5;
    Alcotest.test_case "resources Eq6" `Quick test_resource_eq6;
    Alcotest.test_case "infeasible raises" `Quick test_infeasible_raises;
    Alcotest.test_case "min-cores objective" `Quick test_min_cores_objective;
    Alcotest.test_case "kind pruning" `Quick test_instances_on_path_only;
    Alcotest.test_case "deterministic" `Quick test_solve_deterministic;
    Alcotest.test_case "zero-rate class" `Quick test_zero_rate_class;
  ]
