module C = Apple_core
module FA = C.Flow_aggregation
module P = Apple_classifier.Predicate
module H = Apple_classifier.Header
module Nf = Apple_vnf.Nf
module B = Apple_topology.Builders

let mk_flows e =
  (* Four flow families on Internet2 (0=Seattle ... 10=NewYork):
     two share (path, chain) and must merge. *)
  [
    {
      FA.description = "web-a";
      predicate = P.(src_prefix e "10.1.0.0" 16 &&& dst_port e 80);
      ingress = 0;
      egress = 10;
      chain = [ Nf.Firewall; Nf.Proxy ];
      rate = 120.0;
    };
    {
      FA.description = "web-b";
      predicate = P.(src_prefix e "10.2.0.0" 16 &&& dst_port e 80);
      ingress = 0;
      egress = 10;
      chain = [ Nf.Firewall; Nf.Proxy ];
      rate = 80.0;
    };
    {
      FA.description = "dmz-inspect";
      predicate = P.(src_prefix e "10.3.0.0" 16);
      ingress = 0;
      egress = 10;
      chain = [ Nf.Firewall; Nf.Ids ];
      rate = 50.0;
    };
    {
      FA.description = "east-out";
      predicate = P.(src_prefix e "10.4.0.0" 16);
      ingress = 10;
      egress = 0;
      chain = [ Nf.Nat; Nf.Firewall ];
      rate = 60.0;
    };
  ]

let test_merging () =
  let e = P.env () in
  let r = FA.aggregate ~env:e (B.internet2 ()) (mk_flows e) in
  (* web-a and web-b merge: 3 classes from 4 flows *)
  Alcotest.(check int) "3 classes" 3 (Array.length r.FA.scenario.C.Types.classes);
  let merged =
    List.find (fun i -> List.length i.FA.members = 2) r.FA.classes_info
  in
  Alcotest.(check (list int)) "members 0 and 1" [ 0; 1 ] merged.FA.members;
  let cls = r.FA.scenario.C.Types.classes.(merged.FA.class_id) in
  Alcotest.(check (float 1e-9)) "rates summed" 200.0 cls.C.Types.rate

let test_distinct_chains_stay_separate () =
  let e = P.env () in
  let r = FA.aggregate ~env:e (B.internet2 ()) (mk_flows e) in
  (* same path but different chain (dmz) stays its own class *)
  let singles = List.filter (fun i -> List.length i.FA.members = 1) r.FA.classes_info in
  Alcotest.(check int) "two singleton classes" 2 (List.length singles)

let test_class_predicate_union () =
  let e = P.env () in
  let flows = mk_flows e in
  let r = FA.aggregate ~env:e (B.internet2 ()) flows in
  let merged = List.find (fun i -> List.length i.FA.members = 2) r.FA.classes_info in
  let p_a = (List.nth flows 0).FA.predicate in
  let p_b = (List.nth flows 1).FA.predicate in
  Alcotest.(check bool) "covers member a" true (P.subset p_a merged.FA.class_predicate);
  Alcotest.(check bool) "covers member b" true (P.subset p_b merged.FA.class_predicate);
  Alcotest.(check bool) "nothing extra" true
    (P.equal merged.FA.class_predicate P.(p_a ||| p_b))

let test_class_of_packet () =
  let e = P.env () in
  let r = FA.aggregate ~env:e (B.internet2 ()) (mk_flows e) in
  let packet src dport =
    {
      H.src_ip = H.ip_of_string src;
      dst_ip = H.ip_of_string "8.8.8.8";
      proto = 6;
      src_port = 1234;
      dst_port = dport;
    }
  in
  (* 10.1.x with dport 80 -> merged web class (id 0) *)
  Alcotest.(check (option int)) "web-a packet" (Some 0)
    (FA.class_of_packet r (packet "10.1.5.5" 80));
  Alcotest.(check (option int)) "web-b packet" (Some 0)
    (FA.class_of_packet r (packet "10.2.1.1" 80));
  (* 10.3.x any port -> dmz class *)
  (match FA.class_of_packet r (packet "10.3.0.9" 443) with
  | Some id -> Alcotest.(check bool) "dmz class distinct" true (id <> 0)
  | None -> Alcotest.fail "dmz packet unclassified");
  (* unrelated traffic matches nothing *)
  Alcotest.(check (option int)) "miss" None
    (FA.class_of_packet r (packet "11.0.0.1" 80))

let test_atoms_partition () =
  let e = P.env () in
  let r = FA.aggregate ~env:e (B.internet2 ()) (mk_flows e) in
  (* atoms partition header space *)
  let union =
    List.fold_left (fun acc a -> P.(acc ||| a)) (P.never e) r.FA.atoms
  in
  Alcotest.(check bool) "atoms cover" true (P.equal union (P.always e));
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool) "atoms disjoint" true (P.is_empty P.(a &&& b)))
        r.FA.atoms)
    r.FA.atoms

let test_tcam_rule_counts () =
  let e = P.env () in
  let r = FA.aggregate ~env:e (B.internet2 ()) (mk_flows e) in
  List.iter
    (fun info ->
      Alcotest.(check bool) "positive rule count" true (info.FA.tcam_rules >= 1))
    r.FA.classes_info

let test_no_route () =
  let e = P.env () in
  let named = B.linear ~n:3 in
  Apple_topology.Graph.remove_edge named.B.graph 0 1;
  let flows =
    [
      {
        FA.description = "stranded";
        predicate = P.src_prefix e "10.0.0.0" 8;
        ingress = 0;
        egress = 2;
        chain = [ Nf.Firewall ];
        rate = 1.0;
      };
    ]
  in
  Alcotest.(check bool) "raises No_route" true
    (try
       ignore (FA.aggregate ~env:e named flows);
       false
     with FA.No_route _ -> true)

let test_aggregated_scenario_solves () =
  let e = P.env () in
  let r = FA.aggregate ~env:e (B.internet2 ()) (mk_flows e) in
  let controller = C.Controller.create r.FA.scenario in
  let _ = C.Controller.run_epoch controller in
  match C.Controller.verify controller with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "same path+chain merge" `Quick test_merging;
    Alcotest.test_case "distinct chains separate" `Quick test_distinct_chains_stay_separate;
    Alcotest.test_case "class predicate union" `Quick test_class_predicate_union;
    Alcotest.test_case "class_of_packet" `Quick test_class_of_packet;
    Alcotest.test_case "atoms partition" `Quick test_atoms_partition;
    Alcotest.test_case "tcam rule counts" `Quick test_tcam_rule_counts;
    Alcotest.test_case "no route" `Quick test_no_route;
    Alcotest.test_case "aggregated scenario solves" `Quick test_aggregated_scenario_solves;
  ]
