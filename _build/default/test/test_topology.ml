module G = Apple_topology.Graph
module B = Apple_topology.Builders

let test_paper_counts () =
  let expect = [ ("Internet2", 12, 15); ("GEANT", 23, 37); ("UNIV1", 23, 43); ("AS-3679", 79, 147) ] in
  List.iter2
    (fun (label, nodes, links) (t : B.named) ->
      Alcotest.(check string) "label" label t.B.label;
      Alcotest.(check int) "nodes" nodes (G.num_nodes t.B.graph);
      Alcotest.(check int) "links" links (G.num_edges t.B.graph);
      Alcotest.(check bool) "connected" true (G.is_connected t.B.graph))
    expect
    (B.all_paper_topologies ())

let test_geant_directed_count () =
  (* TOTEM counts 74 unidirectional links. *)
  let t = B.geant () in
  Alcotest.(check int) "74 directed" 74 (2 * G.num_edges t.B.graph)

let test_univ1_structure () =
  let t = B.univ1 () in
  let g = t.B.graph in
  Alcotest.(check int) "2 cores" 2 (List.length t.B.core);
  List.iter
    (fun edge ->
      Alcotest.(check bool) "edge dual-homed" true
        (G.has_edge g 0 edge && G.has_edge g 1 edge))
    t.B.ingress;
  Alcotest.(check bool) "core-core link" true (G.has_edge g 0 1)

let test_self_loop_rejected () =
  let g = G.create ~n:3 in
  Alcotest.(check bool) "self loop" true
    (try
       G.add_edge g 1 1;
       false
     with Invalid_argument _ -> true)

let test_duplicate_edge_rejected () =
  let g = G.create ~n:3 in
  G.add_edge g 0 1;
  Alcotest.(check bool) "duplicate" true
    (try
       G.add_edge g 1 0;
       false
     with Invalid_argument _ -> true)

let test_shortest_path_basic () =
  let t = B.linear ~n:5 in
  match G.shortest_path t.B.graph 0 4 with
  | Some p -> Alcotest.(check (list int)) "straight line" [ 0; 1; 2; 3; 4 ] p
  | None -> Alcotest.fail "no path"

let test_shortest_path_self () =
  let t = B.linear ~n:3 in
  Alcotest.(check (option (list int))) "src=dst" (Some [ 1 ]) (G.shortest_path t.B.graph 1 1)

let test_shortest_path_disconnected () =
  let g = G.create ~n:4 in
  G.add_edge g 0 1;
  G.add_edge g 2 3;
  Alcotest.(check (option (list int))) "no path" None (G.shortest_path g 0 3)

let test_shortest_respects_weights () =
  let g = G.create ~n:4 in
  G.add_edge g 0 1 ~weight:1.0;
  G.add_edge g 1 3 ~weight:1.0;
  G.add_edge g 0 2 ~weight:0.5;
  G.add_edge g 2 3 ~weight:0.5;
  match G.shortest_path g 0 3 with
  | Some p -> Alcotest.(check (list int)) "cheap detour" [ 0; 2; 3 ] p
  | None -> Alcotest.fail "no path"

let test_path_length () =
  let g = G.create ~n:3 in
  G.add_edge g 0 1 ~weight:2.0;
  G.add_edge g 1 2 ~weight:3.0;
  Alcotest.(check (float 1e-9)) "sum" 5.0 (G.path_length g [ 0; 1; 2 ]);
  Alcotest.(check (float 1e-9)) "trivial" 0.0 (G.path_length g [ 0 ]);
  Alcotest.check_raises "not a link" Not_found (fun () ->
      ignore (G.path_length g [ 0; 2 ]))

let test_k_shortest () =
  let t = B.ring ~n:6 in
  let ks = G.k_shortest_paths t.B.graph 0 3 ~k:2 in
  Alcotest.(check int) "two paths in a ring" 2 (List.length ks);
  (match ks with
  | [ p1; p2 ] ->
      Alcotest.(check bool) "sorted by length" true
        (G.path_length t.B.graph p1 <= G.path_length t.B.graph p2);
      Alcotest.(check bool) "distinct" true (p1 <> p2);
      List.iter
        (fun p ->
          let sorted = List.sort_uniq compare p in
          Alcotest.(check int) "loopless" (List.length p) (List.length sorted))
        ks
  | _ -> Alcotest.fail "expected 2 paths");
  (* both ring directions have the same endpoints *)
  List.iter
    (fun p ->
      Alcotest.(check int) "starts at src" 0 (List.hd p);
      Alcotest.(check int) "ends at dst" 3 (List.nth p (List.length p - 1)))
    ks

let test_k_shortest_k1 () =
  let t = B.internet2 () in
  let ks = G.k_shortest_paths t.B.graph 0 10 ~k:1 in
  let sp = G.shortest_path t.B.graph 0 10 in
  Alcotest.(check (option (list int))) "k=1 is shortest path" sp
    (match ks with [ p ] -> Some p | _ -> None)

let test_names () =
  let t = B.internet2 () in
  Alcotest.(check (option int)) "by name" (Some 0) (G.node_by_name t.B.graph "Seattle");
  Alcotest.(check string) "name" "NewYork" (G.name t.B.graph 10)

let test_fat_tree () =
  let t = B.fat_tree ~k:4 in
  let g = t.B.graph in
  Alcotest.(check int) "k=4 nodes" 20 (G.num_nodes g);
  (* 4 cores + 8 agg + 8 edge; links: edges-agg 4*(2*2)=16, agg-core 8*2=16 *)
  Alcotest.(check int) "links" 32 (G.num_edges g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  Alcotest.(check bool) "odd k rejected" true
    (try
       ignore (B.fat_tree ~k:3);
       false
     with Invalid_argument _ -> true)

let test_waxman_connected () =
  let rng = Apple_prelude.Rng.create 99 in
  let t = B.waxman rng ~n:20 ~alpha:0.8 ~beta:0.3 in
  Alcotest.(check bool) "connected by construction" true (G.is_connected t.B.graph)

let test_as3679_deterministic () =
  let a = B.as3679 () and b = B.as3679 () in
  Alcotest.(check (list (triple int int (float 1e-9)))) "same edges"
    (G.edges a.B.graph) (G.edges b.B.graph)

let test_degree_sum () =
  let t = B.geant () in
  let g = t.B.graph in
  let sum = List.fold_left (fun acc v -> acc + G.degree g v) 0 (List.init 23 Fun.id) in
  Alcotest.(check int) "handshake lemma" (2 * G.num_edges g) sum

let prop_shortest_path_is_shortest =
  (* Compare Dijkstra with BFS hop counts on unit-weight random graphs. *)
  QCheck.Test.make ~name:"dijkstra matches bfs on unit weights" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Apple_prelude.Rng.create seed in
      let t = B.waxman rng ~n:12 ~alpha:0.9 ~beta:0.4 in
      let g = t.B.graph in
      let bfs_dist src =
        let dist = Array.make 12 max_int in
        let q = Queue.create () in
        dist.(src) <- 0;
        Queue.add src q;
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          List.iter
            (fun (v, _) ->
              if dist.(v) = max_int then begin
                dist.(v) <- dist.(u) + 1;
                Queue.add v q
              end)
            (G.neighbors g u)
        done;
        dist
      in
      let ok = ref true in
      for src = 0 to 11 do
        let dist = bfs_dist src in
        for dst = 0 to 11 do
          match G.shortest_path g src dst with
          | Some p -> if List.length p - 1 <> dist.(dst) then ok := false
          | None -> if dist.(dst) <> max_int then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "paper counts" `Quick test_paper_counts;
    Alcotest.test_case "geant directed count" `Quick test_geant_directed_count;
    Alcotest.test_case "univ1 structure" `Quick test_univ1_structure;
    Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
    Alcotest.test_case "duplicate rejected" `Quick test_duplicate_edge_rejected;
    Alcotest.test_case "shortest path basic" `Quick test_shortest_path_basic;
    Alcotest.test_case "shortest path self" `Quick test_shortest_path_self;
    Alcotest.test_case "disconnected" `Quick test_shortest_path_disconnected;
    Alcotest.test_case "weights respected" `Quick test_shortest_respects_weights;
    Alcotest.test_case "path length" `Quick test_path_length;
    Alcotest.test_case "k-shortest ring" `Quick test_k_shortest;
    Alcotest.test_case "k-shortest k=1" `Quick test_k_shortest_k1;
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "fat tree" `Quick test_fat_tree;
    Alcotest.test_case "waxman connected" `Quick test_waxman_connected;
    Alcotest.test_case "as3679 deterministic" `Quick test_as3679_deterministic;
    Alcotest.test_case "handshake lemma" `Quick test_degree_sum;
    QCheck_alcotest.to_alcotest prop_shortest_path_is_shortest;
  ]

let test_remove_edge () =
  let t = B.ring ~n:4 in
  let g = t.B.graph in
  G.remove_edge g 0 1;
  Alcotest.(check bool) "edge gone" false (G.has_edge g 0 1);
  Alcotest.(check int) "count drops" 3 (G.num_edges g);
  (* path now goes the long way around *)
  (match G.shortest_path g 0 1 with
  | Some p -> Alcotest.(check (list int)) "detour" [ 0; 3; 2; 1 ] p
  | None -> Alcotest.fail "still connected");
  Alcotest.check_raises "absent edge" Not_found (fun () -> G.remove_edge g 0 1)

let suite = suite @ [ Alcotest.test_case "remove edge" `Quick test_remove_edge ]

let test_rocketfuel_suite () =
  List.iter
    (fun ((t : B.named), nodes, links) ->
      Alcotest.(check int) (t.B.label ^ " nodes") nodes (G.num_nodes t.B.graph);
      Alcotest.(check int) (t.B.label ^ " links") links (G.num_edges t.B.graph);
      Alcotest.(check bool) (t.B.label ^ " connected") true (G.is_connected t.B.graph))
    [ (B.as1221 (), 104, 151); (B.as1755 (), 87, 161); (B.as3257 (), 161, 328) ];
  Alcotest.(check bool) "too few links rejected" true
    (try
       ignore (B.rocketfuel ~asn:1 ~nodes:10 ~links:5);
       false
     with Invalid_argument _ -> true)

let test_rocketfuel_heavy_tail () =
  (* ISP maps have hubs: max degree far above the mean. *)
  let t = B.as3257 () in
  let g = t.B.graph in
  let n = G.num_nodes g in
  let degrees = Array.init n (G.degree g) in
  let mean = float_of_int (Array.fold_left ( + ) 0 degrees) /. float_of_int n in
  let dmax = Array.fold_left max 0 degrees in
  Alcotest.(check bool) "hubby" true (float_of_int dmax > 4.0 *. mean)

let suite =
  suite
  @ [
      Alcotest.test_case "rocketfuel suite" `Quick test_rocketfuel_suite;
      Alcotest.test_case "rocketfuel heavy tail" `Quick test_rocketfuel_heavy_tail;
    ]
