module P = Apple_core.Prototype

let test_fig6_knee () =
  let points = P.monitor_loss_curve ~capacity_kpps:9.0 () in
  List.iter
    (fun pt ->
      if pt.P.rate_kpps <= 9.0 then
        Alcotest.(check (float 1e-9)) "no loss below capacity" 0.0 pt.P.loss_1500
      else if pt.P.rate_kpps > 9.5 then
        Alcotest.(check bool) "loss above knee" true (pt.P.loss_1500 > 0.0))
    points

let test_fig6_size_independence () =
  List.iter
    (fun pt ->
      Alcotest.(check (float 1e-12)) "64B = 1500B" pt.P.loss_64 pt.P.loss_1500;
      Alcotest.(check (float 1e-12)) "512B = 1500B" pt.P.loss_512 pt.P.loss_1500)
    (P.monitor_loss_curve ())

let test_fig7_blackout_range () =
  let runs = P.vm_setup_experiment ~seed:1 ~runs:10 in
  Alcotest.(check int) "ten runs" 10 (List.length runs);
  List.iter
    (fun r ->
      (* blackout = openstack boot [3.9,4.6] minus rule install 70ms
         offset; the measured window is boot - install + install = boot +
         install - install... we assert the paper's reported band with
         margin. *)
      Alcotest.(check bool) "within measured band" true
        (r.P.blackout_seconds >= 3.8 && r.P.blackout_seconds <= 4.8))
    runs;
  let mean =
    List.fold_left (fun acc r -> acc +. r.P.blackout_seconds) 0.0 runs /. 10.0
  in
  Alcotest.(check bool) "mean near 4.2" true (abs_float (mean -. 4.25) < 0.35)

let test_fig7_throughput_drops () =
  let runs = P.vm_setup_experiment ~seed:2 ~runs:1 in
  let r = List.hd runs in
  let zero_samples = List.filter (fun (_, v) -> v = 0.0) r.P.throughput in
  let full_samples = List.filter (fun (_, v) -> v > 0.0) r.P.throughput in
  Alcotest.(check bool) "has blackout samples" true (List.length zero_samples > 30);
  Alcotest.(check bool) "has live samples" true (List.length full_samples > 10)

let test_fig8_three_variants () =
  let results = P.file_transfer_experiment ~seed:3 ~runs:10 in
  Alcotest.(check int) "three variants" 3 (List.length results);
  List.iter
    (fun (variant, durations) ->
      Alcotest.(check int) "ten runs" 10 (Array.length durations);
      Array.iter
        (fun d ->
          (* 20MB at ~85-95 Mbps: between 1.5 and 2.2 seconds *)
          Alcotest.(check bool) "plausible duration" true (d > 1.4 && d < 2.3))
        durations;
      Alcotest.(check (float 1e-12)) "UDP loss zero" 0.0
        (P.udp_loss_during_failover variant))
    results

let test_fig8_indistinguishable () =
  (* The paper's point: the three CDFs overlap (differences are
     statistical fluctuation). Compare medians. *)
  let results = P.file_transfer_experiment ~seed:4 ~runs:10 in
  let medians =
    List.map (fun (_, d) -> Apple_prelude.Stats.median d) results
  in
  match medians with
  | [ a; b; c ] ->
      Alcotest.(check bool) "medians within 10%" true
        (abs_float (a -. b) < 0.1 *. a && abs_float (a -. c) < 0.1 *. a)
  | _ -> Alcotest.fail "expected three medians"

let test_fig9_event_sequence () =
  let run = P.overload_detection_experiment ~seed:5 () in
  let kinds = List.map (fun e -> e.P.kind) run.P.det_events in
  Alcotest.(check bool) "overload then ready then rollback" true
    (kinds = [ `Overload_detected; `New_instance_ready; `Rolled_back ]);
  (* detection happens quickly after the rate soars at t=2 *)
  (match run.P.det_events with
  | { P.time; kind = `Overload_detected } :: _ ->
      Alcotest.(check bool) "detected within 150ms of the surge" true
        (time >= 2.0 && time <= 2.15)
  | _ -> Alcotest.fail "missing detection event");
  (* rollback happens after the rate drops at t=7 *)
  (match List.rev run.P.det_events with
  | { P.time; kind = `Rolled_back } :: _ ->
      Alcotest.(check bool) "rollback after the drop" true (time >= 7.0 && time <= 7.2)
  | _ -> Alcotest.fail "missing rollback event")

let test_fig9_loss_negligible () =
  let run = P.overload_detection_experiment ~seed:6 () in
  Alcotest.(check bool) "loss under 1%" true (run.P.packet_loss < 0.01)

let test_fig9_split_while_overloaded () =
  let run = P.overload_detection_experiment ~seed:7 () in
  (* while the failover instance is live, master and sibling each see
     half the 10 Kpps *)
  let mid t = t > 3.0 && t < 6.0 in
  List.iter
    (fun (t, v) ->
      if mid t then
        Alcotest.(check (float 1e-6)) "master at half" 5.0 v)
    run.P.master_rate;
  List.iter
    (fun (t, v) ->
      if mid t then Alcotest.(check (float 1e-6)) "sibling at half" 5.0 v)
    run.P.sibling_rate

let suite =
  [
    Alcotest.test_case "fig6 knee" `Quick test_fig6_knee;
    Alcotest.test_case "fig6 size independence" `Quick test_fig6_size_independence;
    Alcotest.test_case "fig7 blackout range" `Quick test_fig7_blackout_range;
    Alcotest.test_case "fig7 throughput shape" `Quick test_fig7_throughput_drops;
    Alcotest.test_case "fig8 variants" `Quick test_fig8_three_variants;
    Alcotest.test_case "fig8 indistinguishable" `Quick test_fig8_indistinguishable;
    Alcotest.test_case "fig9 event sequence" `Quick test_fig9_event_sequence;
    Alcotest.test_case "fig9 loss" `Quick test_fig9_loss_negligible;
    Alcotest.test_case "fig9 split" `Quick test_fig9_split_while_overloaded;
  ]

let test_naive_switch_costs () =
  (* The naive contrast: switching rules before the VM is up costs the
     transfer at least the blackout duration in timeouts/backoff. *)
  let clean =
    let results = P.file_transfer_experiment ~seed:42 ~runs:1 in
    match results with
    | (_, durations) :: _ -> durations.(0)
    | [] -> Alcotest.fail "no variants"
  in
  let naive = P.naive_switch_transfer ~seed:42 in
  Alcotest.(check bool) "timeouts happened" true
    (naive.Apple_packetsim.Tcp_model.timeouts > 0);
  Alcotest.(check bool) "costs at least ~4s more" true
    (naive.Apple_packetsim.Tcp_model.completion_time > clean +. 3.5)

let suite =
  suite
  @ [ Alcotest.test_case "naive switch contrast" `Quick test_naive_switch_costs ]
