test/test_aggregation.ml: Alcotest Apple_classifier Apple_core Apple_topology Apple_vnf Array List
