test/test_traffic.ml: Alcotest Apple_prelude Apple_topology Apple_traffic Array Filename List Sys
