test/test_baselines.ml: Alcotest Apple_core Apple_topology Apple_vnf Array Helpers List
