test/test_tcp.ml: Alcotest Apple_packetsim
