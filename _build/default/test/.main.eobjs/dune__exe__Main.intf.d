test/main.mli:
