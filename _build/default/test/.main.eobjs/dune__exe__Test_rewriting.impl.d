test/test_rewriting.ml: Alcotest Apple_classifier Apple_core Apple_dataplane Apple_prelude Apple_topology Apple_traffic Apple_vnf Array Hashtbl Helpers List
