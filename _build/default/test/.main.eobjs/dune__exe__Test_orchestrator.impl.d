test/test_orchestrator.ml: Alcotest Apple_core Apple_prelude Apple_sim Apple_vnf Array List
