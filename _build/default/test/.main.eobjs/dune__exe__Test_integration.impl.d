test/test_integration.ml: Alcotest Apple_core Apple_dataplane Apple_prelude Apple_topology Apple_traffic Array Hashtbl List Option String
