test/test_engines.ml: Alcotest Apple_core Apple_topology Apple_vnf Array Helpers List Unix
