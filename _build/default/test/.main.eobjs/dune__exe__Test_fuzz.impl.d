test/test_fuzz.ml: Apple_core Apple_dataplane Apple_prelude Apple_topology Apple_traffic Apple_vnf Array Gen Hashtbl Helpers List QCheck QCheck_alcotest
