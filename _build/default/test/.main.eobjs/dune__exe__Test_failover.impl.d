test/test_failover.ml: Alcotest Apple_core Apple_vnf Array Helpers List
