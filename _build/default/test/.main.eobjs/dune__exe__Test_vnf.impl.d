test/test_vnf.ml: Alcotest Apple_prelude Apple_sim Apple_vnf List
