test/test_sched.ml: Alcotest Apple_sched Array List
