test/test_dataplane.ml: Alcotest Apple_classifier Apple_dataplane Apple_vnf Array
