test/test_bdd.ml: Alcotest Apple_bdd Array List QCheck QCheck_alcotest
