test/test_prototype.ml: Alcotest Apple_core Apple_packetsim Apple_prelude Array List
