test/test_optimizer.ml: Alcotest Apple_core Apple_topology Apple_vnf Array Helpers List
