test/test_stats.ml: Alcotest Apple_prelude Array Gen List QCheck QCheck_alcotest String
