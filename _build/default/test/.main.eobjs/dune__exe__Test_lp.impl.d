test/test_lp.ml: Alcotest Apple_lp Array Float List QCheck QCheck_alcotest
