test/test_policy_file.ml: Alcotest Apple_classifier Apple_core Apple_topology Apple_vnf Array Filename List Sys
