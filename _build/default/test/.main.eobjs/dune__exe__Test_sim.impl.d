test/test_sim.ml: Alcotest Apple_prelude Apple_sim List
