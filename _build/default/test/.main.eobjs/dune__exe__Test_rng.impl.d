test/test_rng.ml: Alcotest Apple_prelude Array Hashtbl Option
