test/test_subclass.ml: Alcotest Apple_core Apple_prelude Apple_topology Apple_vnf Array Hashtbl Helpers List Option QCheck QCheck_alcotest
