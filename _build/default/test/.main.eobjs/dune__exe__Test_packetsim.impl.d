test/test_packetsim.ml: Alcotest Apple_classifier Apple_core Apple_dataplane Apple_packetsim Apple_vnf Array Helpers List Printf
