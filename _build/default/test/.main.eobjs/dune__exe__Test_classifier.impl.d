test/test_classifier.ml: Alcotest Apple_classifier Array Gen List Printf QCheck QCheck_alcotest
