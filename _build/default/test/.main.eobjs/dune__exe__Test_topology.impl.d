test/test_topology.ml: Alcotest Apple_prelude Apple_topology Array Fun List QCheck QCheck_alcotest Queue
