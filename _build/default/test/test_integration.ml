module C = Apple_core
module B = Apple_topology.Builders
module Tr = Apple_traffic
module Rng = Apple_prelude.Rng

let run_controller named =
  let rng = Rng.create 20160627 in
  let n = Apple_topology.Graph.num_nodes named.B.graph in
  let tm = Tr.Synth.gravity rng ~n ~total:4000.0 in
  let config = { C.Scenario.default_config with C.Scenario.max_classes = 50 } in
  let scenario = C.Scenario.build ~config ~seed:1 named tm in
  let controller = C.Controller.create scenario in
  let report = C.Controller.run_epoch controller in
  (controller, report)

let test_epoch_internet2 () =
  let controller, report = run_controller (B.internet2 ()) in
  Alcotest.(check bool) "instances placed" true (report.C.Controller.instances > 0);
  Alcotest.(check bool) "tcam rules installed" true (report.C.Controller.tcam_entries > 0);
  match C.Controller.verify controller with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_epoch_geant () =
  let controller, _ = run_controller (B.geant ()) in
  match C.Controller.verify controller with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_epoch_univ1 () =
  let controller, _ = run_controller (B.univ1 ()) in
  match C.Controller.verify controller with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_snapshot_loop () =
  let named = B.internet2 () in
  let controller, _ = run_controller named in
  let rng = Rng.create 9 in
  let profile = { Tr.Synth.default_profile with Tr.Synth.snapshots = 20; total_rate = 4000.0 } in
  let snapshots = Tr.Synth.for_topology rng profile named in
  List.iter
    (fun tm ->
      let loss = C.Controller.handle_snapshot controller tm in
      Alcotest.(check bool) "loss bounded" true (loss >= 0.0 && loss <= 1.0))
    snapshots

let test_snapshot_requires_epoch () =
  let named = B.internet2 () in
  let rng = Rng.create 3 in
  let tm = Tr.Synth.gravity rng ~n:12 ~total:1000.0 in
  let scenario = C.Scenario.build ~seed:2 named tm in
  let controller = C.Controller.create scenario in
  Alcotest.(check bool) "raises without epoch" true
    (try
       ignore (C.Controller.handle_snapshot controller tm);
       false
     with Invalid_argument _ -> true)

let test_update_rates_conservation () =
  let named = B.internet2 () in
  let rng = Rng.create 4 in
  let tm = Tr.Synth.gravity rng ~n:12 ~total:5000.0 in
  let config = { C.Scenario.default_config with C.Scenario.min_rate = 0.0; max_classes = 1000 } in
  let scenario = C.Scenario.build ~config ~seed:3 named tm in
  let tm2 = Tr.Matrix.scale tm 2.0 in
  C.Scenario.update_rates scenario tm2;
  (* every pair's class rates sum to the pair demand *)
  let by_pair = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      let key = C.Types.pair_group c in
      Hashtbl.replace by_pair key
        (c.C.Types.rate +. Option.value ~default:0.0 (Hashtbl.find_opt by_pair key)))
    scenario.C.Types.classes;
  Hashtbl.iter
    (fun (src, dst) total ->
      Alcotest.(check bool) "pair demand preserved" true
        (abs_float (total -. tm2.(src).(dst)) < 1e-6))
    by_pair

let test_scenario_block_disjointness () =
  let a = C.Scenario.src_block_of_class_id 0 in
  let b = C.Scenario.src_block_of_class_id 1 in
  let c = C.Scenario.src_block_of_class_id 256 in
  Alcotest.(check bool) "0 and 1 differ" true (a.C.Types.Prefix.addr <> b.C.Types.Prefix.addr);
  Alcotest.(check bool) "0 and 256 differ" true (a.C.Types.Prefix.addr <> c.C.Types.Prefix.addr);
  (* all /24 aligned *)
  List.iter
    (fun p ->
      Alcotest.(check int) "24-bit prefix" 24 p.C.Types.Prefix.len;
      Alcotest.(check int) "aligned" 0 (p.C.Types.Prefix.addr land 0xff))
    [ a; b; c ]

let test_scenario_ecmp_siblings () =
  let named = B.univ1 () in
  let rng = Rng.create 8 in
  let tm = Tr.Synth.gravity rng ~n:23 ~total:5000.0 in
  (* mask core rows like for_topology does *)
  for j = 0 to 22 do
    tm.(0).(j) <- 0.0;
    tm.(1).(j) <- 0.0;
    tm.(j).(0) <- 0.0;
    tm.(j).(1) <- 0.0
  done;
  let scenario = C.Scenario.build ~seed:5 named tm in
  (* UNIV1 edge pairs have two equal-cost paths through the two cores ->
     ECMP siblings must exist *)
  let pairs = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      let key = C.Types.pair_group c in
      Hashtbl.replace pairs key
        (1 + Option.value ~default:0 (Hashtbl.find_opt pairs key)))
    scenario.C.Types.classes;
  let has_siblings = Hashtbl.fold (fun _ n acc -> acc || n = 2) pairs false in
  Alcotest.(check bool) "ECMP siblings exist" true has_siblings

let test_experiment_scaled_smoke () =
  (* A severely scaled-down pass over the cheap experiment drivers. *)
  let opts = { C.Experiments.seed = 1; scale = 0.02 } in
  let rendered =
    [
      C.Experiments.table4 opts;
      C.Experiments.fig6 opts;
      C.Experiments.fig7 opts;
      C.Experiments.fig8 opts;
      C.Experiments.fig9 opts;
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "has title" true (String.length r.C.Experiments.title > 0);
      Alcotest.(check bool) "has body" true (String.length r.C.Experiments.body > 0))
    rendered

let suite =
  [
    Alcotest.test_case "epoch internet2" `Quick test_epoch_internet2;
    Alcotest.test_case "epoch geant" `Quick test_epoch_geant;
    Alcotest.test_case "epoch univ1" `Quick test_epoch_univ1;
    Alcotest.test_case "snapshot loop" `Quick test_snapshot_loop;
    Alcotest.test_case "snapshot requires epoch" `Quick test_snapshot_requires_epoch;
    Alcotest.test_case "rate conservation" `Quick test_update_rates_conservation;
    Alcotest.test_case "block disjointness" `Quick test_scenario_block_disjointness;
    Alcotest.test_case "ecmp siblings" `Quick test_scenario_ecmp_siblings;
    Alcotest.test_case "experiments smoke" `Quick test_experiment_scaled_smoke;
  ]

let test_production_vm_origin () =
  (* Fig. 3's ip3 -> ip4 case: traffic born inside an APPLE host.  Pick a
     class whose first processing hop is its ingress switch and start the
     walk inside that host. *)
  let controller, report = run_controller (B.internet2 ()) in
  match
    ( C.Controller.last_report controller,
      C.Controller.netstate controller )
  with
  | Some _, Some state ->
      let scenario = C.Controller.scenario controller in
      let network = report.C.Controller.rules.C.Rule_generator.network in
      let candidates =
        Array.to_list scenario.C.Types.classes
        |> List.filter_map (fun cls ->
               let subs =
                 List.concat_map
                   (fun p ->
                     if p.C.Netstate.p_class = cls.C.Types.id then [ p ] else [])
                   (Array.to_list state.C.Netstate.per_class
                   |> List.concat_map (fun l -> [ l ])
                   |> List.concat)
               in
               match subs with
               | p :: _
                 when Array.length p.C.Netstate.hops > 0
                      && p.C.Netstate.hops.(0) = 0 ->
                   Some cls
               | _ -> None)
      in
      (match candidates with
      | [] -> () (* no class processes at its ingress in this draw *)
      | cls :: _ -> (
          let src_ip = cls.C.Types.src_block.C.Types.Prefix.addr in
          match
            Apple_dataplane.Walk.run network
              ~path:(Array.to_list cls.C.Types.path)
              ~cls:cls.C.Types.id ~src_ip ~start_in_host:true ()
          with
          | Error e ->
              Alcotest.failf "vm-origin walk: %a" Apple_dataplane.Walk.pp_error e
          | Ok trace ->
              Alcotest.(check bool) "processed full chain" true
                (List.length trace.Apple_dataplane.Walk.instances
                = Array.length cls.C.Types.chain);
              Alcotest.(check bool) "path unchanged" true
                (Apple_dataplane.Walk.interference_free trace
                   ~path:(Array.to_list cls.C.Types.path))))
  | _ -> Alcotest.fail "epoch missing"

let suite =
  suite
  @ [ Alcotest.test_case "production-VM origin" `Quick test_production_vm_origin ]
