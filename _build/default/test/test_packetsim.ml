module PS = Apple_packetsim.Packet_sim
module Tcam = Apple_dataplane.Tcam
module Rule = Apple_dataplane.Rule
module Tag = Apple_dataplane.Tag
module I = Apple_vnf.Instance
module Nf = Apple_vnf.Nf
module C = Apple_core

(* Single switch, single firewall monitor (900 Mbps = 75 Kpps at 1500 B). *)
let monitor_net () =
  let net = Tcam.network ~num_switches:1 in
  let pfx = Apple_classifier.Prefix_split.prefix_of_string "10.0.0.0/24" in
  Tcam.add_phys net.(0)
    {
      Rule.priority = 100;
      pmatch = { Rule.m_host = `Empty; m_subclass = `Any; m_prefixes = [ pfx ] };
      action = Rule.Tag_and_deliver { subclass = 0; host = 0 };
    };
  Tcam.add_phys net.(0)
    {
      Rule.priority = 0;
      pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
      action = Rule.Goto_next;
    };
  Tcam.add_vswitch net.(0)
    { Rule.v_port = Rule.From_network; v_key = Rule.Per_class { cls = 0; subclass = 0 };
      v_action = Rule.To_instance 1 };
  Tcam.add_vswitch net.(0)
    { Rule.v_port = Rule.From_instance 1; v_key = Rule.Per_class { cls = 0; subclass = 0 };
      v_action = Rule.Back_to_network Tag.Fin };
  (net, I.create ~id:1 ~spec:(Nf.spec Nf.Firewall) ~host:0)

let flow ?(name = "f") ?(pps = 10_000.0) ?(src = "10.0.0.5") () =
  {
    PS.flow_name = name;
    cls = 0;
    src_ip = Apple_classifier.Header.ip_of_string src;
    path = [ 0 ];
    source = PS.Cbr pps;
    start_at = 0.0;
    stop_at = 1.0;
  }

let test_no_loss_below_capacity () =
  let net, inst = monitor_net () in
  let r =
    PS.run ~network:net ~instances:[ inst ] ~flows:[ flow ~pps:50_000.0 () ]
      ~duration:1.0 ()
  in
  Alcotest.(check (float 1e-9)) "no loss" 0.0 (PS.loss_of r "f");
  Alcotest.(check bool) "packets flowed" true (r.PS.total_sent > 40_000)

let test_loss_above_capacity_matches_analytic () =
  let net, inst = monitor_net () in
  List.iter
    (fun pps ->
      let r =
        PS.run ~network:net ~instances:[ inst ] ~flows:[ flow ~pps () ]
          ~duration:1.0 ()
      in
      let measured = PS.loss_of r "f" in
      let analytic = 1.0 -. (75_000.0 /. pps) in
      Alcotest.(check bool)
        (Printf.sprintf "knee shape at %.0f pps" pps)
        true
        (abs_float (measured -. analytic) < 0.04))
    [ 90_000.0; 110_000.0; 150_000.0 ]

let test_latency_grows_with_load () =
  let net, inst = monitor_net () in
  let p50 pps =
    let r =
      PS.run ~network:net ~instances:[ inst ] ~flows:[ flow ~pps () ]
        ~duration:0.5 ()
    in
    PS.latency_percentile r "f" 50.0
  in
  Alcotest.(check bool) "queueing delay appears at saturation" true
    (p50 100_000.0 > 10.0 *. p50 20_000.0)

let test_conservation () =
  let net, inst = monitor_net () in
  let r =
    PS.run ~network:net ~instances:[ inst ] ~flows:[ flow ~pps:100_000.0 () ]
      ~duration:0.5 ()
  in
  let f = List.hd r.PS.flows in
  (* Everything sent is delivered, dropped, or (a handful) still queued at
     the end of the drain window. *)
  Alcotest.(check bool) "conservation" true
    (f.PS.sent - f.PS.delivered - f.PS.dropped <= 70)

let test_two_flows_share () =
  let net, inst = monitor_net () in
  (* Poisson sources: synchronized CBR phase-locks the drop pattern onto
     one flow (a real artifact of deterministic traffic), Poisson mixing
     exposes the fair FIFO share. *)
  let flows =
    [
      { (flow ~name:"a" ~pps:0.0 ~src:"10.0.0.10" ()) with PS.source = PS.Poisson 60_000.0 };
      { (flow ~name:"b" ~pps:0.0 ~src:"10.0.0.20" ()) with PS.source = PS.Poisson 60_000.0 };
    ]
  in
  let r = PS.run ~network:net ~instances:[ inst ] ~flows ~duration:0.5 () in
  (* 120 Kpps offered on a 75 Kpps server: both flows lose, roughly
     equally. *)
  let la = PS.loss_of r "a" and lb = PS.loss_of r "b" in
  Alcotest.(check bool) "both lose" true (la > 0.2 && lb > 0.2);
  Alcotest.(check bool) "even split" true (abs_float (la -. lb) < 0.1)

let test_poisson_some_loss_near_capacity () =
  let net, inst = monitor_net () in
  (* A small buffer makes the M/D/1 overflow probability visible at 97%
     utilization (CBR at the same rate would lose nothing). *)
  let config = { PS.default_config with PS.queue_packets = 8 } in
  let flows =
    [ { (flow ~pps:0.0 ()) with PS.source = PS.Poisson 73_000.0 } ]
  in
  let r = PS.run ~config ~network:net ~instances:[ inst ] ~flows ~duration:1.0 () in
  Alcotest.(check bool) "stochastic loss visible" true (PS.loss_of r "f" > 0.0);
  let cbr =
    PS.run ~config ~network:net ~instances:[ inst ]
      ~flows:[ flow ~pps:73_000.0 () ]
      ~duration:1.0 ()
  in
  Alcotest.(check (float 1e-9)) "CBR at same rate loses nothing" 0.0
    (PS.loss_of cbr "f")

let test_onoff_bursts () =
  let net, inst = monitor_net () in
  let flows =
    [
      {
        (flow ~pps:0.0 ()) with
        PS.source = PS.On_off { pps = 150_000.0; on_s = 0.05; off_s = 0.05 };
      };
    ]
  in
  let r = PS.run ~network:net ~instances:[ inst ] ~flows ~duration:1.0 () in
  (* During bursts the instance is 2x oversubscribed; averaged with the
     silences, loss sits between 0 and the burst-time 50%. *)
  let loss = PS.loss_of r "f" in
  Alcotest.(check bool) "bursty loss" true (loss > 0.2 && loss < 0.6)

let test_unroutable () =
  let net = Tcam.network ~num_switches:1 in
  (* no rules at all -> the walk fails *)
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (PS.run ~network:net ~instances:[] ~flows:[ flow () ] ~duration:0.1 ());
       false
     with PS.Unroutable _ -> true)

let test_end_to_end_generated_dataplane () =
  (* Drive packets through tables generated by the real pipeline. *)
  let s = Helpers.tiny_scenario () in
  let p = C.Engine_select.solve_best s in
  let asg = C.Subclass.assign s p in
  let built = C.Rule_generator.build s asg in
  let c = s.C.Types.classes.(0) in
  let flows =
    [
      {
        PS.flow_name = "cls0";
        cls = c.C.Types.id;
        src_ip = c.C.Types.src_block.C.Types.Prefix.addr + 3;
        path = Array.to_list c.C.Types.path;
        (* 500 Mbps at 1500B ~ 41.7 Kpps: the provisioned rate *)
        source = PS.Cbr 41_000.0;
        start_at = 0.0;
        stop_at = 0.5;
      };
    ]
  in
  let r =
    PS.run ~network:built.C.Rule_generator.network
      ~instances:asg.C.Subclass.instances ~flows ~duration:0.5 ()
  in
  Alcotest.(check (float 1e-9)) "no loss at provisioned rate" 0.0
    (PS.loss_of r "cls0");
  (* end-to-end latency = 3 links + fw + ids service, well under 1 ms *)
  Alcotest.(check bool) "latency sane" true
    (PS.latency_percentile r "cls0" 99.0 < 1e-3)

let suite =
  [
    Alcotest.test_case "no loss below capacity" `Quick test_no_loss_below_capacity;
    Alcotest.test_case "knee matches analytic" `Quick test_loss_above_capacity_matches_analytic;
    Alcotest.test_case "latency vs load" `Quick test_latency_grows_with_load;
    Alcotest.test_case "conservation" `Quick test_conservation;
    Alcotest.test_case "two flows share" `Quick test_two_flows_share;
    Alcotest.test_case "poisson loss" `Quick test_poisson_some_loss_near_capacity;
    Alcotest.test_case "on-off bursts" `Quick test_onoff_bursts;
    Alcotest.test_case "unroutable" `Quick test_unroutable;
    Alcotest.test_case "generated data plane" `Quick test_end_to_end_generated_dataplane;
  ]
