module C = Apple_core
module PF = C.Policy_file
module FA = C.Flow_aggregation
module P = Apple_classifier.Predicate
module H = Apple_classifier.Header
module Nf = Apple_vnf.Nf
module B = Apple_topology.Builders

let parse text =
  let e = P.env () in
  (e, PF.parse ~env:e ~topology:(B.internet2 ()) text)

let test_example_parses () =
  let _, r = parse PF.example in
  match r with
  | Ok flows ->
      Alcotest.(check int) "four policies" 4 (List.length flows);
      let web = List.hd flows in
      Alcotest.(check string) "name" "web-out" web.FA.description;
      Alcotest.(check int) "ingress Seattle" 0 web.FA.ingress;
      Alcotest.(check int) "egress NewYork" 10 web.FA.egress;
      Alcotest.(check bool) "chain" true
        (web.FA.chain = [ Nf.Firewall; Nf.Proxy ]);
      Alcotest.(check (float 1e-9)) "rate" 120.0 web.FA.rate
  | Error e -> Alcotest.failf "parse: %a" PF.pp_error e

let test_predicate_semantics () =
  let _, r = parse PF.example in
  match r with
  | Error e -> Alcotest.failf "parse: %a" PF.pp_error e
  | Ok flows ->
      let web = List.hd flows in
      let pkt ~src ~dport =
        {
          H.src_ip = H.ip_of_string src;
          dst_ip = H.ip_of_string "1.1.1.1";
          proto = 6;
          src_port = 999;
          dst_port = dport;
        }
      in
      Alcotest.(check bool) "matches" true
        (P.matches web.FA.predicate (pkt ~src:"10.1.7.7" ~dport:80));
      Alcotest.(check bool) "wrong port" false
        (P.matches web.FA.predicate (pkt ~src:"10.1.7.7" ~dport:81));
      Alcotest.(check bool) "wrong block" false
        (P.matches web.FA.predicate (pkt ~src:"10.9.7.7" ~dport:80))

let test_numeric_nodes_and_ranges () =
  let _, r =
    parse "a: dport 1000-2000 from 3 to 7 via firewall rate 10\n"
  in
  match r with
  | Error e -> Alcotest.failf "parse: %a" PF.pp_error e
  | Ok [ f ] ->
      Alcotest.(check int) "numeric from" 3 f.FA.ingress;
      Alcotest.(check int) "numeric to" 7 f.FA.egress;
      let pkt dport =
        { H.src_ip = 1; dst_ip = 2; proto = 6; src_port = 1; dst_port = dport }
      in
      Alcotest.(check bool) "in range" true (P.matches f.FA.predicate (pkt 1500));
      Alcotest.(check bool) "out of range" false (P.matches f.FA.predicate (pkt 2500))
  | Ok _ -> Alcotest.fail "expected one flow"

let test_comments_and_blanks () =
  let _, r = parse "# hello\n\n  \na: from 0 to 1 via nat rate 1\n# bye\n" in
  match r with
  | Ok flows -> Alcotest.(check int) "one flow" 1 (List.length flows)
  | Error e -> Alcotest.failf "parse: %a" PF.pp_error e

let expect_error text want_line =
  let _, r = parse text in
  match r with
  | Ok _ -> Alcotest.failf "accepted %S" text
  | Error e -> Alcotest.(check int) "line number" want_line e.PF.line

let test_error_lines () =
  expect_error "a from 0 to 1 via nat rate 1\n" 1;  (* missing ':' *)
  expect_error "# ok\nbad: from 0 to 1 via nat\n" 2;  (* missing rate *)
  expect_error "x: from Atlantis to 1 via nat rate 1\n" 1;  (* bad node *)
  expect_error "x: from 0 to 1 via dpi rate 1\n" 1;  (* unknown NF *)
  expect_error "x: src 10.0.0.0/40 from 0 to 1 via nat rate 1\n" 1;  (* bad prefix *)
  expect_error "x: from 0 to 99 via nat rate 1\n" 1  (* node out of range *)

let test_end_to_end_policy_pipeline () =
  (* Policy file -> aggregation -> optimization -> verified data plane. *)
  let e = P.env () in
  let topo = B.internet2 () in
  match PF.parse ~env:e ~topology:topo PF.example with
  | Error err -> Alcotest.failf "parse: %a" PF.pp_error err
  | Ok flows ->
      let r = FA.aggregate ~env:e topo flows in
      (* web-out and web-alt share (path, chain): 3 classes *)
      Alcotest.(check int) "aggregated classes" 3
        (Array.length r.FA.scenario.C.Types.classes);
      let controller = C.Controller.create r.FA.scenario in
      let _ = C.Controller.run_epoch controller in
      (match C.Controller.verify controller with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)

let test_parse_file_roundtrip () =
  let path = Filename.temp_file "apple_policy" ".txt" in
  let oc = open_out path in
  output_string oc PF.example;
  close_out oc;
  let e = P.env () in
  (match PF.parse_file ~env:e ~topology:(B.internet2 ()) ~path with
  | Ok flows -> Alcotest.(check int) "four flows" 4 (List.length flows)
  | Error err -> Alcotest.failf "parse_file: %a" PF.pp_error err);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "example parses" `Quick test_example_parses;
    Alcotest.test_case "predicate semantics" `Quick test_predicate_semantics;
    Alcotest.test_case "numeric nodes and ranges" `Quick test_numeric_nodes_and_ranges;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "error lines" `Quick test_error_lines;
    Alcotest.test_case "policy pipeline end-to-end" `Quick test_end_to_end_policy_pipeline;
    Alcotest.test_case "parse_file" `Quick test_parse_file_roundtrip;
  ]
