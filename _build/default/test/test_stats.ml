module Stats = Apple_prelude.Stats

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.mean [||])

let test_variance () =
  Alcotest.(check (float 1e-9)) "variance" (2.0 /. 3.0)
    (Stats.variance [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "singleton" 0.0 (Stats.variance [| 5.0 |])

let test_minmax () =
  Alcotest.(check (float 1e-9)) "min" (-1.0) (Stats.minimum [| 3.0; -1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Stats.maximum [| 3.0; -1.0; 2.0 |]);
  Alcotest.check_raises "empty min" (Invalid_argument "Stats.minimum: empty sample")
    (fun () -> ignore (Stats.minimum [||]))

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Stats.percentile xs 25.0);
  Alcotest.(check (float 1e-9)) "interpolates" 1.5 (Stats.percentile xs 12.5)

let test_median_unsorted () =
  Alcotest.(check (float 1e-9)) "median of shuffled" 3.0
    (Stats.median [| 5.0; 1.0; 3.0; 2.0; 4.0 |])

let test_boxplot () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  let b = Stats.boxplot xs in
  Alcotest.(check (float 1e-9)) "median" 50.0 b.Stats.med;
  Alcotest.(check (float 1e-9)) "q1" 25.0 b.Stats.q1;
  Alcotest.(check (float 1e-9)) "q3" 75.0 b.Stats.q3;
  Alcotest.(check (float 1e-9)) "whisker low" 5.0 b.Stats.whisker_low;
  Alcotest.(check (float 1e-9)) "whisker high" 95.0 b.Stats.whisker_high

let test_cdf () =
  let cdf = Stats.cdf [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check int) "points" 3 (List.length cdf);
  (match cdf with
  | (x1, p1) :: _ ->
      Alcotest.(check bool) "first sorted" true (feq x1 1.0 && feq p1 (1.0 /. 3.0))
  | [] -> Alcotest.fail "empty cdf");
  let last_x, last_p = List.nth cdf 2 in
  Alcotest.(check bool) "last is max with p=1" true (feq last_x 3.0 && feq last_p 1.0)

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.0; 0.1; 0.9; 1.0 |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples counted" 4 total

let test_kahan_sum () =
  let xs = Array.make 10_000 0.1 in
  Alcotest.(check bool) "compensated" true (abs_float (Stats.sum xs -. 1000.0) < 1e-9)

(* qcheck properties *)
let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 30) (float_range (-100.) 100.)) (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let arr = Array.of_list xs in
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile arr lo <= Stats.percentile arr hi +. 1e-9)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 30) (float_range (-100.) 100.))
    (fun xs ->
      let arr = Array.of_list xs in
      let m = Stats.mean arr in
      m >= Stats.minimum arr -. 1e-9 && m <= Stats.maximum arr +. 1e-9)

let prop_boxplot_ordered =
  QCheck.Test.make ~name:"boxplot five numbers are ordered" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-50.) 50.))
    (fun xs ->
      let b = Stats.boxplot (Array.of_list xs) in
      b.Stats.whisker_low <= b.Stats.q1 +. 1e-9
      && b.Stats.q1 <= b.Stats.med +. 1e-9
      && b.Stats.med <= b.Stats.q3 +. 1e-9
      && b.Stats.q3 <= b.Stats.whisker_high +. 1e-9)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "min/max" `Quick test_minmax;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "median unsorted" `Quick test_median_unsorted;
    Alcotest.test_case "boxplot" `Quick test_boxplot;
    Alcotest.test_case "cdf" `Quick test_cdf;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "kahan sum" `Quick test_kahan_sum;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_mean_bounded;
    QCheck_alcotest.to_alcotest prop_boxplot_ordered;
  ]

(* ---- Text_table ---- *)

module Tbl = Apple_prelude.Text_table

let test_table_render () =
  let t = Tbl.create [ "a"; "bb" ] in
  Tbl.add_row t [ "1"; "2" ];
  Tbl.add_row t [ "333"; "4" ];
  let s = Tbl.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + sep + 2 rows" 4 (List.length lines);
  (* all lines equally wide (alignment) *)
  (match lines with
  | header :: _ ->
      Alcotest.(check bool) "header padded" true
        (String.length header >= String.length "a   bb")
  | [] -> Alcotest.fail "empty render");
  Alcotest.(check bool) "first column padded to 3" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 3))

let test_table_short_rows_padded () =
  let t = Tbl.create [ "x"; "y"; "z" ] in
  Tbl.add_row t [ "only" ];
  let s = Tbl.render t in
  Alcotest.(check bool) "renders without exception" true (String.length s > 0)

let test_table_rowf () =
  let t = Tbl.create [ "k"; "v" ] in
  Tbl.add_rowf t "%s\t%d" "answer" 42;
  let s = Tbl.render t in
  Alcotest.(check bool) "formatted cells split on tab" true
    (let rec contains_sub h n i =
       if i + String.length n > String.length h then false
       else if String.sub h i (String.length n) = n then true
       else contains_sub h n (i + 1)
     in
     contains_sub s "answer  42" 0 || contains_sub s "answer" 0)

let table_suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table short rows" `Quick test_table_short_rows_padded;
    Alcotest.test_case "table rowf" `Quick test_table_rowf;
  ]

let suite = suite @ table_suite
