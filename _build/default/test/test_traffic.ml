module M = Apple_traffic.Matrix
module S = Apple_traffic.Synth
module B = Apple_topology.Builders
module Rng = Apple_prelude.Rng
module Stats = Apple_prelude.Stats

let test_matrix_ops () =
  let a = M.zeros 3 in
  a.(0).(1) <- 2.0;
  a.(2).(0) <- 3.0;
  Alcotest.(check (float 1e-9)) "total" 5.0 (M.total a);
  let b = M.scale a 2.0 in
  Alcotest.(check (float 1e-9)) "scale" 10.0 (M.total b);
  Alcotest.(check (float 1e-9)) "original untouched" 5.0 (M.total a);
  let c = M.add a b in
  Alcotest.(check (float 1e-9)) "add" 15.0 (M.total c);
  Alcotest.(check (float 1e-9)) "max entry" 9.0 (M.max_entry (M.scale a 3.0))

let test_mean_of () =
  let a = M.zeros 2 and b = M.zeros 2 in
  a.(0).(1) <- 2.0;
  b.(0).(1) <- 4.0;
  let m = M.mean_of [ a; b ] in
  Alcotest.(check (float 1e-9)) "mean entry" 3.0 m.(0).(1);
  Alcotest.check_raises "empty" (Invalid_argument "Matrix.mean_of: empty list")
    (fun () -> ignore (M.mean_of []))

let test_gravity_total () =
  let rng = Rng.create 1 in
  let tm = S.gravity rng ~n:10 ~total:5000.0 in
  Alcotest.(check bool) "total preserved" true (abs_float (M.total tm -. 5000.0) < 1e-6)

let test_gravity_zero_diagonal () =
  let rng = Rng.create 2 in
  let tm = S.gravity rng ~n:8 ~total:100.0 in
  for i = 0 to 7 do
    Alcotest.(check (float 1e-12)) "diagonal" 0.0 tm.(i).(i)
  done

let test_gravity_nonnegative () =
  let rng = Rng.create 3 in
  let tm = S.gravity rng ~n:8 ~total:100.0 in
  Array.iter (Array.iter (fun v -> Alcotest.(check bool) "nonneg" true (v >= 0.0))) tm

let test_sequence_length_and_nonneg () =
  let rng = Rng.create 4 in
  let base = S.gravity rng ~n:6 ~total:1000.0 in
  let profile = { S.default_profile with S.snapshots = 50 } in
  let seq = S.sequence rng profile ~base in
  Alcotest.(check int) "snapshot count" 50 (List.length seq);
  List.iter
    (fun tm ->
      Array.iter (Array.iter (fun v -> Alcotest.(check bool) "nonneg" true (v >= 0.0))) tm)
    seq

let test_diurnal_cycle_visible () =
  let rng = Rng.create 5 in
  let base = S.gravity rng ~n:6 ~total:10_000.0 in
  let profile =
    {
      S.default_profile with
      S.snapshots = 96;
      period = 96;
      diurnal_depth = 0.5;
      mvr_scale = 0.0;
      burst_probability = 0.0;
    }
  in
  let seq = S.sequence rng profile ~base in
  let totals = Array.of_list (List.map M.total seq) in
  (* peak near t=24 (quarter cycle), trough near t=72 *)
  Alcotest.(check bool) "peak > trough" true (totals.(24) > totals.(72) *. 1.5)

let test_bursts_raise_max () =
  let rng1 = Rng.create 6 and rng2 = Rng.create 6 in
  let base = S.gravity (Rng.create 7) ~n:6 ~total:1000.0 in
  let quiet =
    { S.default_profile with S.snapshots = 100; burst_probability = 0.0; mvr_scale = 0.0; diurnal_depth = 0.0 }
  in
  let bursty = { quiet with S.burst_probability = 0.3; burst_factor = 10.0 } in
  let max_of profile rng =
    S.sequence rng profile ~base
    |> List.fold_left (fun acc tm -> max acc (M.max_entry tm)) 0.0
  in
  Alcotest.(check bool) "bursts visible" true
    (max_of bursty rng2 > max_of quiet rng1 *. 3.0)

let test_mvr_noise_scales () =
  let base = S.gravity (Rng.create 8) ~n:6 ~total:1000.0 in
  let profile scale =
    { S.default_profile with S.snapshots = 200; mvr_scale = scale; burst_probability = 0.0; diurnal_depth = 0.0 }
  in
  let variance_of scale seed =
    let seq = S.sequence (Rng.create seed) (profile scale) ~base in
    let entry = Array.of_list (List.map (fun tm -> tm.(0).(1)) seq) in
    Stats.variance entry
  in
  Alcotest.(check bool) "more mvr, more variance" true
    (variance_of 1.0 9 > variance_of 0.01 10)

let test_for_topology_masks_cores () =
  let univ1 = B.univ1 () in
  let rng = Rng.create 11 in
  let profile = { S.default_profile with S.snapshots = 3 } in
  let seq = S.for_topology rng profile univ1 in
  List.iter
    (fun tm ->
      (* core switches 0 and 1 neither send nor receive *)
      for j = 0 to M.size tm - 1 do
        Alcotest.(check (float 1e-12)) "core sends nothing" 0.0 tm.(0).(j);
        Alcotest.(check (float 1e-12)) "core receives nothing" 0.0 tm.(j).(1)
      done)
    seq

let test_for_topology_deterministic () =
  let named = B.internet2 () in
  let profile = { S.default_profile with S.snapshots = 5 } in
  let s1 = S.for_topology (Rng.create 42) profile named in
  let s2 = S.for_topology (Rng.create 42) profile named in
  List.iter2
    (fun a b ->
      Alcotest.(check (float 1e-12)) "same totals" (M.total a) (M.total b))
    s1 s2

let suite =
  [
    Alcotest.test_case "matrix ops" `Quick test_matrix_ops;
    Alcotest.test_case "mean_of" `Quick test_mean_of;
    Alcotest.test_case "gravity total" `Quick test_gravity_total;
    Alcotest.test_case "gravity zero diagonal" `Quick test_gravity_zero_diagonal;
    Alcotest.test_case "gravity nonnegative" `Quick test_gravity_nonnegative;
    Alcotest.test_case "sequence shape" `Quick test_sequence_length_and_nonneg;
    Alcotest.test_case "diurnal cycle" `Quick test_diurnal_cycle_visible;
    Alcotest.test_case "bursts" `Quick test_bursts_raise_max;
    Alcotest.test_case "mvr noise" `Quick test_mvr_noise_scales;
    Alcotest.test_case "topology masking" `Quick test_for_topology_masks_cores;
    Alcotest.test_case "deterministic" `Quick test_for_topology_deterministic;
  ]

(* ---- CSV I/O ---- *)

module Io = Apple_traffic.Io

let test_csv_roundtrip () =
  let rng = Rng.create 12 in
  let tm = S.gravity rng ~n:5 ~total:1234.5 in
  match Io.of_csv (Io.to_csv tm) with
  | Error e -> Alcotest.fail e
  | Ok tm' ->
      Alcotest.(check int) "size" (M.size tm) (M.size tm');
      for i = 0 to 4 do
        for j = 0 to 4 do
          Alcotest.(check bool) "entry" true
            (abs_float (tm.(i).(j) -. tm'.(i).(j)) < 1e-3)
        done
      done

let test_csv_rejects_garbage () =
  List.iter
    (fun (label, text) ->
      match Io.of_csv text with
      | Ok _ -> Alcotest.fail ("accepted " ^ label)
      | Error _ -> ())
    [
      ("empty", "");
      ("non-square", "1,2\n3,4,5\n");
      ("non-number", "1,x\n2,3\n");
      ("negative", "1,-2\n3,4\n");
      ("nan", "1,nan\n3,4\n");
    ]

let test_csv_comments_ignored () =
  match Io.of_csv "# a comment\n1,2\n# another\n3,4\n" with
  | Ok tm ->
      Alcotest.(check int) "2x2" 2 (M.size tm);
      Alcotest.(check (float 1e-9)) "entry" 3.0 tm.(1).(0)
  | Error e -> Alcotest.fail e

let test_file_roundtrip () =
  let rng = Rng.create 13 in
  let tm = S.gravity rng ~n:4 ~total:100.0 in
  let path = Filename.temp_file "apple_tm" ".csv" in
  Io.save tm ~path;
  (match Io.load ~path with
  | Ok tm' -> Alcotest.(check bool) "same total" true (abs_float (M.total tm -. M.total tm') < 1e-2)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_sequence_roundtrip () =
  let rng = Rng.create 14 in
  let base = S.gravity rng ~n:4 ~total:100.0 in
  let seq = S.sequence rng { S.default_profile with S.snapshots = 5 } ~base in
  let dir = Filename.temp_file "apple_seq" "" in
  Sys.remove dir;
  Io.save_sequence seq ~dir;
  (match Io.load_sequence ~dir with
  | Ok seq' ->
      Alcotest.(check int) "count" 5 (List.length seq');
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "totals" true (abs_float (M.total a -. M.total b) < 1e-2))
        seq seq'
  | Error e -> Alcotest.fail e);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let io_suite =
  [
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv rejects garbage" `Quick test_csv_rejects_garbage;
    Alcotest.test_case "csv comments" `Quick test_csv_comments_ignored;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "sequence roundtrip" `Quick test_sequence_roundtrip;
  ]

let suite = suite @ io_suite
